file(REMOVE_RECURSE
  "libkylix_cluster.a"
)
