#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace kylix {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkProducesIndependentStreams) {
  Rng base(7);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = base.fork(1);
  EXPECT_EQ(f1(), f1_again());
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (f1() == f2()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 100000, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBoundAndCoversRange) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t x = rng.below(7);
    ASSERT_LT(x, 7u);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, BelowIsUnbiasedForAwkwardBounds) {
  Rng rng(15);
  constexpr std::uint64_t kBound = 3;
  constexpr int kDraws = 300000;
  int counts[kBound] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBound)];
  for (std::uint64_t b = 0; b < kBound; ++b) {
    EXPECT_NEAR(counts[b], kDraws / 3.0, kDraws * 0.01);
  }
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MatchesMeanAndVariance) {
  const double rate = GetParam();
  Rng rng(17);
  constexpr int kDraws = 200000;
  double sum = 0;
  double sum_sq = 0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = static_cast<double>(rng.poisson(rate));
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, rate, std::max(0.05, rate * 0.03));
  EXPECT_NEAR(var, rate, std::max(0.1, rate * 0.08));
}

INSTANTIATE_TEST_SUITE_P(Rates, RngPoissonTest,
                         ::testing::Values(0.1, 0.5, 1.0, 5.0, 20.0, 50.0,
                                           200.0));

TEST(Rng, PoissonZeroOrNegativeRateIsZero) {
  Rng rng(19);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

}  // namespace
}  // namespace kylix
