# Empty compiler generated dependencies file for ablation_combined.
# This may be replaced when dependencies are built.
