# Empty dependencies file for kylix_core.
# This may be replaced when dependencies are built.
