#include "apps/sgd.hpp"

#include <gtest/gtest.h>

#include "comm/bsp.hpp"

namespace kylix {
namespace {

using Engine = BspEngine<real_t>;

DistributedSgd<Engine>::Options small_options() {
  DistributedSgd<Engine>::Options options;
  options.num_features = 1 << 10;
  options.samples_per_batch = 128;
  options.features_per_sample = 8;
  options.alpha = 1.1;
  options.learning_rate = 0.3;
  options.steps = 25;
  options.seed = 61;
  return options;
}

TEST(DistributedSgd, LossDecreasesUnderTraining) {
  const Topology topo({4, 2});
  Engine engine(topo.num_machines());
  DistributedSgd<Engine> sgd(&engine, topo, small_options());
  const auto stats = sgd.run();
  ASSERT_EQ(stats.size(), 25u);
  double early = 0;
  double late = 0;
  for (int i = 0; i < 5; ++i) early += stats[i].loss;
  for (int i = 20; i < 25; ++i) late += stats[i].loss;
  // Starts near ln 2 ≈ 0.69 (random labels vs zero weights) and improves.
  EXPECT_GT(early / 5, 0.5);
  EXPECT_LT(late / 5, early / 5 * 0.9);
}

TEST(DistributedSgd, DeterministicAcrossRuns) {
  const Topology topo({2, 2});
  const auto options = small_options();
  std::vector<double> first;
  {
    Engine engine(4);
    DistributedSgd<Engine> sgd(&engine, topo, options);
    for (const auto& s : sgd.run()) first.push_back(s.loss);
  }
  std::vector<double> second;
  {
    Engine engine(4);
    DistributedSgd<Engine> sgd(&engine, topo, options);
    for (const auto& s : sgd.run()) second.push_back(s.loss);
  }
  EXPECT_EQ(first, second);
}

TEST(DistributedSgd, PlanReuseWithCyclingBatchesHitsCacheAndStillLearns) {
  // With distinct_batches = 4, step t's {in, out} fingerprint repeats with
  // period 4: the first cycle misses, every later step replays a cached
  // plan — and training still converges like the combined mode.
  const Topology topo({4, 2});
  Engine engine(topo.num_machines());
  auto options = small_options();
  options.reuse_plans = true;
  options.distinct_batches = 4;
  DistributedSgd<Engine> sgd(&engine, topo, options);
  const auto stats = sgd.run();
  ASSERT_EQ(stats.size(), 25u);
  for (std::size_t step = 0; step < stats.size(); ++step) {
    EXPECT_EQ(stats[step].plan_cache_hit, step >= 4) << "step " << step;
  }
  double early = 0;
  double late = 0;
  for (int i = 0; i < 5; ++i) early += stats[i].loss;
  for (int i = 20; i < 25; ++i) late += stats[i].loss;
  EXPECT_LT(late / 5, early / 5 * 0.9);
}

TEST(DistributedSgd, PlanReuseWithFreshBatchesNeverHits) {
  const Topology topo({2, 2});
  Engine engine(4);
  auto options = small_options();
  options.steps = 5;
  options.reuse_plans = true;  // distinct_batches stays 0: fresh sets
  DistributedSgd<Engine> sgd(&engine, topo, options);
  for (const auto& step : sgd.run()) {
    EXPECT_FALSE(step.plan_cache_hit);
  }
}

TEST(DistributedSgd, HomeStoresStayConsistentWithTraining) {
  // After training, hot (head) features should have moved away from zero
  // toward the planted signal; weight() reads the authoritative store.
  const Topology topo({4});
  Engine engine(4);
  DistributedSgd<Engine> sgd(&engine, topo, small_options());
  (void)sgd.run();
  double moved = 0;
  for (index_t f = 0; f < 20; ++f) {  // the Zipf head gets heavy traffic
    moved += std::abs(static_cast<double>(sgd.weight(f)));
  }
  EXPECT_GT(moved, 0.1);
}

TEST(DistributedSgd, RecordsCommTimingWhenAttached) {
  const Topology topo({2, 2});
  const NetworkModel net = NetworkModel::ec2_like();
  const ComputeModel compute;
  TimingAccumulator timing(4, net, compute, 16);
  Engine engine(4, nullptr, nullptr, &timing);
  auto options = small_options();
  options.steps = 3;
  DistributedSgd<Engine> sgd(&engine, topo, options, &compute, &timing);
  for (const auto& step : sgd.run()) {
    EXPECT_GT(step.comm_s, 0.0);
  }
}

TEST(DistributedSgd, SingleMachineStillLearns) {
  const Topology topo({});
  Engine engine(1);
  auto options = small_options();
  options.steps = 20;
  DistributedSgd<Engine> sgd(&engine, topo, options);
  const auto stats = sgd.run();
  EXPECT_LT(stats.back().loss, stats.front().loss);
}

}  // namespace
}  // namespace kylix
