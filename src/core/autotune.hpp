// Bridging the §IV design workflow to a runnable Topology.
//
// "Measure the density of the input data … find the largest d such that
// P/d is at least [the minimum efficient packet size]": autotune() measures
// (or accepts) the workload density, derives the packet floor from the
// NetworkModel, runs choose_degrees(), and returns a Topology ready to hand
// to SparseAllreduce.
#pragma once

#include <span>

#include "cluster/netmodel.hpp"
#include "core/topology.hpp"
#include "powerlaw/design.hpp"

namespace kylix {

struct AutotuneInput {
  std::uint64_t num_features = 0;
  rank_t num_machines = 0;
  double alpha = 1.0;
  double partition_density = 0;  ///< mean density of one machine's out set
  NetworkModel network;          ///< supplies the packet-size floor
  double target_utilization = 0.84;  ///< the paper's ~5 MB point on Fig. 2
  double bytes_per_element = 12;     ///< 8-byte key + 4-byte value
};

/// Mean density over machines: |set| / n averaged over the sets.
[[nodiscard]] double measure_density(std::span<const KeySet> sets,
                                     std::uint64_t num_features);

/// Run the full workflow; the returned report carries per-layer expectations
/// for printing, and degrees with product == num_machines.
[[nodiscard]] DesignResult autotune(const AutotuneInput& input);

/// Shorthand: run autotune() and wrap the degrees in a Topology.
[[nodiscard]] Topology autotune_topology(const AutotuneInput& input);

}  // namespace kylix
