// Compacted CSR storage for one machine's edge partition.
//
// Distributed graph apps (PageRank, BFS, components, diameter) hold a random
// edge partition per machine (§II-B: random edge partitioning). LocalGraph
// compacts the global source/destination vertex ids that actually appear in
// the partition into dense local ranges and stores the edges in CSR form
// grouped by destination, so a local multiply is a cache-friendly pass:
//
//   for each local dst d: for each incident local src s: w[d] += v[s] * a
//
// The compacted id spaces double as the machine's allreduce in/out sets:
// sources are the *in* set (values the multiply consumes) and destinations
// are the *out* set (values the multiply produces) — exactly the PageRank
// wiring of §I-A.2.
#pragma once

#include <span>
#include <vector>

#include "sparse/key_set.hpp"
#include "sparse/ops.hpp"

namespace kylix {

/// A directed edge src -> dst over global vertex ids.
struct Edge {
  index_t src = 0;
  index_t dst = 0;
  friend bool operator==(const Edge&, const Edge&) = default;
};

class LocalGraph {
 public:
  LocalGraph() = default;

  /// Build from this machine's edge list. Parallel edges are kept (their
  /// multiplicity contributes to the multiply, as in an adjacency count).
  explicit LocalGraph(std::span<const Edge> edges);

  /// Unique sources present locally, as a key set (the allreduce *in* set).
  [[nodiscard]] const KeySet& sources() const { return sources_; }
  /// Unique destinations present locally (the allreduce *out* set).
  [[nodiscard]] const KeySet& destinations() const { return destinations_; }

  [[nodiscard]] std::size_t num_edges() const { return cols_.size(); }
  [[nodiscard]] std::size_t num_local_sources() const {
    return sources_.size();
  }
  [[nodiscard]] std::size_t num_local_destinations() const {
    return destinations_.size();
  }

  /// Local out-degree counts: for each local source position, the number of
  /// edges here that leave it. Summed across machines via allreduce this
  /// yields global out-degrees (needed to column-normalize PageRank).
  [[nodiscard]] std::vector<float> local_out_degrees() const;

  /// w[d] += sum over edges (s -> d) of v[s] * scale[s], where v and scale
  /// are aligned with sources() and w with destinations(). `scale` may be
  /// empty (treated as all-ones).
  template <typename V>
  void multiply_into(std::span<const V> v, std::span<const V> scale,
                     std::span<V> w) const {
    KYLIX_CHECK(v.size() == sources_.size());
    KYLIX_CHECK(w.size() == destinations_.size());
    KYLIX_CHECK(scale.empty() || scale.size() == v.size());
    for (std::size_t d = 0; d < destinations_.size(); ++d) {
      V acc = w[d];
      for (std::size_t e = row_ptr_[d]; e < row_ptr_[d + 1]; ++e) {
        const pos_t s = cols_[e];
        acc += scale.empty() ? v[s] : static_cast<V>(v[s] * scale[s]);
      }
      w[d] = acc;
    }
  }

  /// Min-semiring multiply for label propagation: w[d] = min(w[d], v[s])
  /// over local edges s -> d.
  template <typename V>
  void min_propagate_into(std::span<const V> v, std::span<V> w) const {
    KYLIX_CHECK(v.size() == sources_.size());
    KYLIX_CHECK(w.size() == destinations_.size());
    for (std::size_t d = 0; d < destinations_.size(); ++d) {
      V acc = w[d];
      for (std::size_t e = row_ptr_[d]; e < row_ptr_[d + 1]; ++e) {
        acc = std::min(acc, v[cols_[e]]);
      }
      w[d] = acc;
    }
  }

  /// Bit-or multiply for Flajolet–Martin style sketches: w[d] |= v[s].
  template <typename V>
  void or_propagate_into(std::span<const V> v, std::span<V> w) const {
    KYLIX_CHECK(v.size() == sources_.size());
    KYLIX_CHECK(w.size() == destinations_.size());
    for (std::size_t d = 0; d < destinations_.size(); ++d) {
      V acc = w[d];
      for (std::size_t e = row_ptr_[d]; e < row_ptr_[d + 1]; ++e) {
        acc |= v[cols_[e]];
      }
      w[d] = acc;
    }
  }

 private:
  KeySet sources_;
  KeySet destinations_;
  std::vector<std::size_t> row_ptr_;  ///< per local destination, into cols_
  std::vector<pos_t> cols_;           ///< local source position per edge
};

}  // namespace kylix
