// AsyncChannel — barrier-free letter transport for multiplexed replays
// (DESIGN §11).
//
// The barriered engines deliver inside round(): produce everything, apply
// faults, sort, consume everything. The async runtime has no such fence, so
// this channel gives every (lane, rank, slot) its own mailbox: a letter
// produced by a node two slots ahead of its peer simply parks in the peer's
// future-slot box until the peer gets there. A box "completes" when its
// arrived count reaches the expected count precomputed by the fault script;
// completion is the only wakeup condition the async executor needs.
//
// Fault-delay semantics without round barriers: the barriered engines
// redeliver a kDelay letter at the *next round with the same {phase,
// layer} signature* — which, within a single reduce, never recurs. A
// delayed letter therefore contributes nothing to the reduce it was sent
// in, on any engine; the script simply marks it undelivered (and the
// observer still sees the on_fault). This is what makes per-stream fault
// schedules replayable with no barrier to drain a delay queue at.
//
// The fault script is the async twin of FaultChannel: at stream admission
// the FaultPlan is replayed in the exact canonical order the barriered
// BspEngine would consult it (begin_round per slot; ranks ascending;
// letters in (digit, chunk) produce order; loopback and dead-destination
// copies never classified), freezing per-slot alive masks, per-letter
// fates, and per-box expected counts. Because classify() is a seeded
// sequential RNG, the frozen decisions are bit-identical to what a serial
// replay against an identically-configured FaultPlan would see — the fuzz
// suite asserts exactly that, fault stats included.
//
// Modeled clock (single-worker mode): per-rank tx/rx NIC clocks shared by
// every in-flight stream. A send occupies the sender's NIC for
// stack_overhead + bytes/bandwidth (serializing, per NetworkModel's
// stack/handshake split), then lands after the thread-hideable handshake +
// propagation latency, serialized against the receiver's NIC clock. This
// is where overlapping k streams wins: while one stream's nodes wait out
// latency, another stream's letters keep the NICs busy.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/fault_plan.hpp"
#include "cluster/netmodel.hpp"
#include "comm/packet.hpp"
#include "common/check.hpp"
#include "core/async_node.hpp"
#include "core/plan.hpp"
#include "obs/observer.hpp"

namespace kylix {

/// What the fault script decided for one transmitted letter, in canonical
/// produce order. Splits FaultAction by outcome: a kFaultDup letter arrives
/// once but is charged twice; kDeadDrop never consulted the RNG.
enum class LetterFate : std::uint8_t {
  kDeliver = 0,
  kDeadDrop = 1,    ///< destination dead; sender paid, nothing arrives
  kFaultDrop = 2,   ///< classified kDrop
  kFaultDup = 3,    ///< classified kDuplicate (delivered once, paid twice)
  kFaultDelay = 4,  ///< classified kDelay (never redelivered in-stream)
};

/// A stream's frozen fault schedule: per-slot alive masks, expected letter
/// counts per destination, and per-letter fates in canonical produce order.
/// Clean streams share one script with empty fates (faulted == false).
struct AsyncFaultScript {
  struct Slot {
    std::vector<std::uint8_t> alive;       ///< per rank, after begin_round
    std::vector<std::uint32_t> expected;   ///< delivered letters per dst
    /// Per source rank: offset of its first letter's fate in `fates`.
    std::vector<std::uint32_t> fate_offset;
    std::vector<LetterFate> fates;  ///< canonical (src, digit, chunk) order
  };
  std::vector<Slot> slots;
  bool faulted = false;  ///< false: clean (fates empty, everyone alive)
  FaultStats stats;      ///< the plan's counters after the precompute

  [[nodiscard]] bool alive(std::size_t slot, rank_t r) const {
    return slots[slot].alive[r] != 0;
  }
};

namespace detail {
inline std::uint32_t async_chunks_for(std::size_t chunk_positions,
                                      std::size_t positions) {
  if (chunk_positions == 0 || positions <= chunk_positions) return 1;
  return static_cast<std::uint32_t>((positions + chunk_positions - 1) /
                                    chunk_positions);
}
}  // namespace detail

/// Freeze one stream's fault schedule. `faults` may be null (clean stream:
/// all alive, everything delivered, no fates stored). With faults, the plan
/// is consumed by this replay — hand each stream its own identically-seeded
/// FaultPlan, exactly as a serial oracle run would. Scripted revivals
/// mid-stream are rejected: with no barrier there is no round at which a
/// revived rank could rejoin the protocol (matches the plain engines, where
/// a mid-reduce revive corrupts the replay state).
inline void build_async_fault_script(const CollectivePlan& plan,
                                     std::size_t chunk_positions,
                                     FaultPlan* faults,
                                     AsyncFaultScript& script) {
  const Topology& topo = plan.topology();
  const std::uint16_t layers = topo.num_layers();
  const rank_t m = plan.num_ranks();
  const std::size_t slots = AsyncSlots::count(layers);
  script.slots.resize(slots);
  script.faulted = faults != nullptr;
  script.stats = FaultStats{};
  for (std::size_t t = 0; t < slots; ++t) {
    const Phase phase = AsyncSlots::phase(t, layers);
    const std::uint16_t layer = AsyncSlots::layer(t, layers);
    AsyncFaultScript::Slot& slot = script.slots[t];
    if (faults != nullptr) faults->begin_round(phase, layer);
    slot.alive.assign(m, 1);
    slot.expected.assign(m, 0);
    slot.fate_offset.assign(m, 0);
    slot.fates.clear();
    for (rank_t r = 0; r < m; ++r) {
      const bool dead =
          faults != nullptr && faults->failures().is_dead(r);
      slot.alive[r] = dead || !plan.rank_plan(r).configured ? 0 : 1;
      if (t > 0) {
        // Monotone deaths only: the async protocol has no round barrier a
        // revived rank could re-synchronize at.
        KYLIX_CHECK_MSG(slot.alive[r] <= script.slots[t - 1].alive[r],
                        "async streams do not support mid-stream revival");
      }
    }
    for (rank_t q = 0; q < m; ++q) {
      slot.fate_offset[q] = static_cast<std::uint32_t>(slot.fates.size());
      if (slot.alive[q] == 0) continue;
      const PlanLayer& cfg = plan.rank_plan(q).layers[layer - 1];
      for (std::uint32_t d = 0; d < cfg.group.size(); ++d) {
        const std::size_t piece =
            phase == Phase::kReduceDown
                ? cfg.out_split[d + 1] - cfg.out_split[d]
                : cfg.in_maps[d].size();
        const std::uint32_t chunks =
            detail::async_chunks_for(chunk_positions, piece);
        const rank_t dst = cfg.group[d];
        for (std::uint32_t c = 0; c < chunks; ++c) {
          LetterFate fate = LetterFate::kDeliver;
          if (dst != q) {  // loopback copies are immune, like FaultChannel
            if (slot.alive[dst] == 0) {
              fate = LetterFate::kDeadDrop;
            } else if (faults != nullptr) {
              switch (faults->classify(q, dst).action) {
                case FaultAction::kDeliver:
                  fate = LetterFate::kDeliver;
                  break;
                case FaultAction::kDrop:
                  fate = LetterFate::kFaultDrop;
                  break;
                case FaultAction::kDuplicate:
                  fate = LetterFate::kFaultDup;
                  break;
                case FaultAction::kDelay:
                  fate = LetterFate::kFaultDelay;
                  break;
              }
            }
          }
          slot.fates.push_back(fate);
          if (fate == LetterFate::kDeliver ||
              fate == LetterFate::kFaultDup) {
            ++slot.expected[dst];
          }
        }
      }
    }
  }
  if (faults != nullptr) script.stats = faults->stats();
}

/// One modeled NIC direction as a work-conserving timeline of busy
/// intervals. A scalar free-clock NIC commits wire time in *claim* order —
/// which is node-step order, not virtual-time order — so one lane's burst
/// fences off wire time that another lane's earlier-in-virtual-time letter
/// could have used, and the in-flight streams convoy into slot waves that
/// leave the wire idle while every lane computes. First-fit gap claiming
/// models the NIC real hardware gives k independent send queues: a letter
/// departs in the earliest idle interval at or after its send time, no
/// matter which order the simulator happened to discover the sends in.
struct NicTimeline {
  /// Sorted, disjoint busy intervals [start, end).
  std::vector<std::pair<double, double>> busy;

  void clear() { busy.clear(); }

  /// Occupy the earliest `duration`-long idle window starting at or after
  /// `t`; returns the chosen start time.
  double claim(double t, double duration) {
    auto it = std::upper_bound(
        busy.begin(), busy.end(), t,
        [](double v, const std::pair<double, double>& iv) {
          return v < iv.second;
        });
    // `it` is the first interval ending after t: the candidate gap starts
    // at max(t, previous end) and must reach the next interval's start.
    double start = t;
    while (it != busy.end()) {
      if (start + duration <= it->first) break;  // fits before this interval
      start = std::max(start, it->second);
      ++it;
    }
    busy.insert(it, {start, start + duration});
    return start;
  }
};

/// The shared transport: per-(lane, rank, slot) mailboxes plus the modeled
/// NIC clocks. One channel serves every lane of one AsyncExecutor; it is
/// not thread-safe by itself (the executor serializes route/take under its
/// scheduler lock in multi-worker mode).
template <typename V>
class AsyncChannel {
 public:
  /// One mailbox: arrived letters (shells reused across streams), the
  /// script's expected count, and the modeled time the box completed.
  struct SlotBox {
    std::vector<Letter<V>> letters;
    std::uint32_t expected = 0;
    double ready_time = 0;
  };

  void configure(rank_t num_ranks, std::uint16_t layers, std::size_t lanes) {
    num_ranks_ = num_ranks;
    slots_ = AsyncSlots::count(layers);
    boxes_.resize(lanes);
    for (auto& lane : boxes_) {
      lane.resize(std::size_t{num_ranks} * slots_);
    }
    tx_line_.resize(num_ranks);
    for (NicTimeline& line : tx_line_) line.clear();
    tx_busy_.assign(num_ranks, 0.0);
    rx_busy_.assign(num_ranks, 0.0);
  }

  /// Modeled clock on/off (off in multi-worker mode, where interleaving
  /// makes modeled timestamps meaningless; results are unaffected).
  void set_network(const NetworkModel* net) { net_ = net; }
  void set_observer(EngineObserver* observer) { observer_ = observer; }

  /// Reset one lane's mailboxes for a new stream: expected counts from the
  /// stream's script, letter shells reserved once and reused.
  void open_lane(std::size_t lane, const AsyncFaultScript& script) {
    for (std::size_t t = 0; t < slots_; ++t) {
      for (rank_t r = 0; r < num_ranks_; ++r) {
        SlotBox& box = box_at(lane, r, t);
        box.letters.clear();
        box.expected = script.slots[t].expected[r];
        box.letters.reserve(box.expected);
        box.ready_time = 0;
      }
    }
  }

  [[nodiscard]] SlotBox& box_at(std::size_t lane, rank_t r, std::size_t t) {
    return boxes_[lane][std::size_t{r} * slots_ + t];
  }
  [[nodiscard]] bool complete(std::size_t lane, rank_t r, std::size_t t) {
    const SlotBox& box = box_at(lane, r, t);
    return box.letters.size() == box.expected;
  }

  /// Route one produced batch from (lane, src, slot) at modeled `send_time`
  /// (ignored without a network model). Delivered letters move into their
  /// destination boxes; dropped/delayed letters keep their value buffers in
  /// the producer's shells (same recycling as the barriered engines).
  /// `on_ready(dst, ready_time)` fires for each box the batch completed.
  template <typename ReadyFn>
  void route(std::size_t lane, std::size_t slot, const AsyncFaultScript& script,
             std::uint16_t layers, std::vector<Letter<V>>& letters,
             double send_time, ReadyFn&& on_ready) {
    const AsyncFaultScript::Slot& sslot = script.slots[slot];
    const Phase phase = AsyncSlots::phase(slot, layers);
    const std::uint16_t layer = AsyncSlots::layer(slot, layers);
    std::uint32_t fate_index = 0;
    for (Letter<V>& letter : letters) {
      const std::uint64_t bytes = letter.packet.wire_bytes();
      LetterFate fate = LetterFate::kDeliver;
      if (script.faulted) {
        fate = sslot.fates[sslot.fate_offset[letter.src] + fate_index];
      }
      ++fate_index;
      if (observer_ != nullptr) {
        const MsgEvent event{phase, layer, letter.src, letter.dst, bytes};
        observer_->on_message(event);
        if (fate == LetterFate::kDeadDrop) {
          observer_->on_drop(event);
        } else if (fate != LetterFate::kDeliver) {
          observer_->on_fault(event, fate == LetterFate::kFaultDrop
                                         ? FaultAction::kDrop
                                         : fate == LetterFate::kFaultDup
                                               ? FaultAction::kDuplicate
                                               : FaultAction::kDelay);
          if (fate == LetterFate::kFaultDup) observer_->on_message(event);
        }
      }
      double arrival = send_time;
      double transfer = 0;
      if (net_ != nullptr && letter.src != letter.dst) {
        // The NIC serializes stack traversal + serialization; handshake
        // and propagation ride as thread-hideable latency.
        const double copies = fate == LetterFate::kFaultDup ? 2.0 : 1.0;
        transfer = copies * static_cast<double>(bytes) /
                   net_->bandwidth_bytes_per_s;
        const double duration = copies * net_->stack_overhead_s + transfer;
        const double start = tx_line_[letter.src].claim(send_time, duration);
        tx_busy_[letter.src] += duration;
        arrival =
            start + duration + net_->handshake_latency_s + net_->base_latency_s;
      }
      if (fate != LetterFate::kDeliver && fate != LetterFate::kFaultDup) {
        continue;  // buffer stays in the producer's shell for recycling
      }
      const rank_t dst = letter.dst;
      if (net_ != nullptr && letter.src != dst) {
        // Receive occupancy is accounted (for the utilization report) but
        // not serialized: letters are routed in sender-step order, not
        // arrival order, so a lazy claim-order rx clock would impose a
        // false FIFO that herds every in-flight stream toward the global
        // max arrival. Arrival is sender-NIC-serialized plus latency
        // (LogP-style); receive overhead is charged on the compute clock
        // when the box is consumed.
        rx_busy_[dst] += transfer;
      }
      SlotBox& box = box_at(lane, dst, slot);
      box.ready_time = std::max(box.ready_time, arrival);
      box.letters.push_back(std::move(letter));
      if (box.letters.size() == box.expected) {
        on_ready(dst, box.ready_time);
      }
    }
  }

  /// Sort a completed box by (src, chunk) — the barriered consume order —
  /// and hand it to the node. The vector (and its shells) stays owned by
  /// the channel; the consume kernels strip only the value buffers.
  [[nodiscard]] std::vector<Letter<V>>& take_inbox(std::size_t lane, rank_t r,
                                                   std::size_t t) {
    SlotBox& box = box_at(lane, r, t);
    std::sort(box.letters.begin(), box.letters.end(), letter_before<V>);
    return box.letters;
  }

  /// Accumulated modeled NIC occupancy per rank since configure() — the
  /// utilization denominators for the async-overlap bench (busy / makespan
  /// shows how much of the recovered idle the overlap actually claimed).
  [[nodiscard]] const std::vector<double>& tx_busy_seconds() const {
    return tx_busy_;
  }
  [[nodiscard]] const std::vector<double>& rx_busy_seconds() const {
    return rx_busy_;
  }

 private:
  rank_t num_ranks_ = 0;
  std::size_t slots_ = 0;
  const NetworkModel* net_ = nullptr;
  EngineObserver* observer_ = nullptr;
  std::vector<std::vector<SlotBox>> boxes_;  ///< [lane][rank * slots + slot]
  std::vector<NicTimeline> tx_line_;  ///< per-rank NIC send timeline
  std::vector<double> tx_busy_;  ///< per-rank accumulated send occupancy
  std::vector<double> rx_busy_;  ///< per-rank accumulated receive occupancy
};

}  // namespace kylix
