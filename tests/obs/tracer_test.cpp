#include "obs/span_tracer.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

namespace kylix::obs {
namespace {

std::string chrome_trace(const SpanTracer& tracer) {
  std::ostringstream out;
  tracer.write_chrome_trace(out);
  return out.str();
}

TEST(SpanTracer, RecordsCompleteCounterAndInstantEvents) {
  SpanTracer tracer;
  tracer.complete("config/L1", 3, 10.0, 25.0, true, 4096, 8);
  tracer.counter("wire bytes", 35.0, 4096);
  tracer.instant("drop", 3, 40.0);
  EXPECT_EQ(tracer.num_events(), 3u);

  const std::string json = chrome_trace(tracer);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"config/L1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":25"), std::string::npos);
  EXPECT_NE(json.find("\"bytes\":4096"), std::string::npos);
  EXPECT_NE(json.find("\"messages\":8"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(SpanTracer, TrackNamesBecomeThreadMetadata) {
  SpanTracer tracer;
  tracer.set_track_name(0, "rank 0");
  tracer.set_track_name(7, "rank 7");
  const std::string json = chrome_trace(tracer);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"rank 7\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
}

TEST(SpanTracer, RaiiSpanMeasuresItsScope) {
  SpanTracer tracer;
  {
    auto span = tracer.span("scatter-reduce", 2);
    (void)span;
  }
  EXPECT_EQ(tracer.num_events(), 1u);
  const std::string json = chrome_trace(tracer);
  EXPECT_NE(json.find("\"name\":\"scatter-reduce\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
}

TEST(SpanTracer, MovedFromSpanDoesNotDoubleRecord) {
  SpanTracer tracer;
  {
    auto a = tracer.span("outer");
    auto b = std::move(a);
    (void)b;
  }
  EXPECT_EQ(tracer.num_events(), 1u);
}

TEST(SpanTracer, ClockIsMonotonic) {
  SpanTracer tracer;
  const double a = tracer.now_us();
  const double b = tracer.now_us();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(SpanTracer, EscapesJsonSpecialCharactersInNames) {
  SpanTracer tracer;
  tracer.complete("weird \"name\"\\with\nnewline", 0, 0.0, 1.0);
  const std::string json = chrome_trace(tracer);
  EXPECT_NE(json.find("weird \\\"name\\\"\\\\with\\nnewline"),
            std::string::npos);
}

TEST(SpanTracer, ClearDropsEvents) {
  SpanTracer tracer;
  tracer.instant("x", 0, 1.0);
  tracer.clear();
  EXPECT_EQ(tracer.num_events(), 0u);
}

TEST(SpanTracer, ConcurrentRecordingIsSafe) {
  SpanTracer tracer;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < 250; ++i) {
        tracer.complete("span", static_cast<std::uint32_t>(t), i, 1.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracer.num_events(), 1000u);
}

}  // namespace
}  // namespace kylix::obs
