// AsyncNode — a resumable per-rank replay state machine (DESIGN §11).
//
// The round-barriered drivers call one produce/consume pair per rank per
// round and rely on the engine's barrier to know every input has arrived.
// AsyncNode inverts that: each node owns a tiny program counter over the
// reduce's 2l communication slots ({scatter-reduce down layers 1..l, then
// allgather up layers l..1}) and exposes step(), which advances as far as
// arrived letters allow and *suspends* when its current slot's inbox is
// incomplete. The driver re-steps a node whenever new letters complete the
// slot it is parked on, so many sequence-tagged streams interleave over the
// same channels with no global barrier anywhere.
//
// The control flow uses the save-state / goto-phase continuation idiom of
// non-blocking collective schedules (a switch dispatching on the saved
// phase into a straight-line body; suspending saves the phase and returns,
// resuming jumps back to exactly where the node blocked). The kernel calls
// themselves are the shared ReplayOps (core/replay_node.hpp) — the same
// functions the serial executor runs in the same per-consume order, so an
// async stream's results are bit-identical to a serial replay of the same
// plan by construction.
//
// The Port concept supplies the node's environment (mailboxes, liveness,
// send): see core/async_executor.hpp for the driver-side implementation.
//
//   bool  alive(slot)              node may act in this slot (fault script)
//   void  send(slot, letters&)     route one produced batch (letters keep
//                                  their shells; values move to mailboxes)
//   bool  inbox_complete(slot)     every expected letter has arrived
//   std::vector<Letter<V>>& take_inbox(slot)   sorted by letter_before
//   void  consumed(slot)           post-consume hook (compute charge,
//                                  spent-buffer return)
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"
#include "core/replay_node.hpp"

namespace kylix {

/// Slot arithmetic shared by the node, the engine's mailboxes, and the
/// fault-script precompute: the reduce's rounds in protocol order are
/// slot i-1   <- {kReduceDown, layer i},   i in [1, l]
/// slot 2l-i  <- {kReduceUp,   layer i},   i in [1, l]
struct AsyncSlots {
  static constexpr std::size_t count(std::uint16_t layers) {
    return 2u * std::size_t{layers};
  }
  static constexpr Phase phase(std::size_t slot, std::uint16_t layers) {
    return slot < layers ? Phase::kReduceDown : Phase::kReduceUp;
  }
  static constexpr std::uint16_t layer(std::size_t slot,
                                       std::uint16_t layers) {
    return slot < layers
               ? static_cast<std::uint16_t>(slot + 1)
               : static_cast<std::uint16_t>(2u * layers - slot);
  }
};

template <typename V, typename Op = OpSum>
class AsyncNode {
 public:
  enum class NodePhase : std::uint8_t {
    kDownProduce = 0,  ///< about to emit this layer's scatter-reduce letters
    kDownWait = 1,     ///< parked on an incomplete scatter-reduce inbox
    kUpProduce = 2,    ///< about to emit this layer's allgather letters
    kUpWait = 3,       ///< parked on an incomplete allgather inbox
    kDone = 4,         ///< finished (or dead); result in scratch.vin
  };

  /// Rebind this node to a (stream, rank) replay. The caller has already
  /// loaded the rank's contribution into scratch->v (ReplayOps::load_input)
  /// and cleared scratch->stream.
  void reset(const ReplayContext* ctx, rank_t rank,
             ReplayScratch<V>* scratch) {
    ctx_ = ctx;
    rank_ = rank;
    scratch_ = scratch;
    layers_ = ctx->plan->topology().num_layers();
    layer_ = 1;
    phase_ = NodePhase::kDownProduce;
    dead_ = false;
  }

  [[nodiscard]] bool done() const { return phase_ == NodePhase::kDone; }
  /// Died mid-stream (fault script); the result is empty, like the
  /// barriered engines' dead-rank handling.
  [[nodiscard]] bool dead() const { return dead_; }
  [[nodiscard]] rank_t rank() const { return rank_; }
  /// The slot this node acts in next (valid while !done()).
  [[nodiscard]] std::size_t slot() const {
    return phase_ <= NodePhase::kDownWait
               ? std::size_t{layer_} - 1
               : 2u * std::size_t{layers_} - layer_;
  }

  /// Advance until blocked or finished. Returns true when the node is done
  /// (the driver retires it); false means it is parked on slot() awaiting
  /// letters. Mirrors the barriered protocol exactly, including the
  /// liveness checks: a rank dead at a round neither produces nor consumes
  /// in it, and begin_up runs right after the last down consume — before
  /// the first up round's crashes can fire.
  template <typename Port>
  bool step(Port& port) {
// Continuation plumbing: suspending saves the phase and returns to the
// driver; transitions save and jump. Expanded inline (not hidden behind a
// conditional in the body) so each label reads as one protocol phase.
#define KYLIX_NODE_SAVE_STATE(p) \
  do {                           \
    phase_ = NodePhase::p;       \
    return false;                \
  } while (0)
#define KYLIX_NODE_GOTO_PHASE(p) \
  do {                           \
    phase_ = NodePhase::p;       \
    goto label_##p;              \
  } while (0)

    switch (phase_) {
      case NodePhase::kDownProduce:
        goto label_kDownProduce;
      case NodePhase::kDownWait:
        goto label_kDownWait;
      case NodePhase::kUpProduce:
        goto label_kUpProduce;
      case NodePhase::kUpWait:
        goto label_kUpWait;
      case NodePhase::kDone:
        return true;
    }

  label_kDownProduce:
    if (!port.alive(slot())) return finish_dead();
    port.send(slot(), Ops::down_produce(*ctx_, *scratch_, rank_, layer_));
  label_kDownWait:
    if (!port.inbox_complete(slot())) KYLIX_NODE_SAVE_STATE(kDownWait);
    Ops::down_consume(*ctx_, *scratch_, rank_, layer_,
                      std::move(port.take_inbox(slot())));
    port.consumed(slot());
    if (layer_ == layers_) {
      // The bottom gather belongs to the last down round: it must run even
      // when the rank dies at the first up round (the barriered drivers
      // gather before that round's crash events fire).
      Ops::begin_up(*ctx_, *scratch_, rank_);
      port.consumed(slot());  // charge the gather to the same slot
      KYLIX_NODE_GOTO_PHASE(kUpProduce);
    }
    ++layer_;
    KYLIX_NODE_GOTO_PHASE(kDownProduce);

  label_kUpProduce:
    if (!port.alive(slot())) return finish_dead();
    port.send(slot(), Ops::up_produce(*ctx_, *scratch_, rank_, layer_));
  label_kUpWait:
    if (!port.inbox_complete(slot())) KYLIX_NODE_SAVE_STATE(kUpWait);
    Ops::up_consume(*ctx_, *scratch_, rank_, layer_,
                    std::move(port.take_inbox(slot())));
    port.consumed(slot());
    if (layer_ == 1) {
      phase_ = NodePhase::kDone;
      return true;
    }
    --layer_;
    KYLIX_NODE_GOTO_PHASE(kUpProduce);

#undef KYLIX_NODE_SAVE_STATE
#undef KYLIX_NODE_GOTO_PHASE
  }

 private:
  using Ops = ReplayOps<V, Op>;

  bool finish_dead() {
    phase_ = NodePhase::kDone;
    dead_ = true;
    return true;
  }

  const ReplayContext* ctx_ = nullptr;
  ReplayScratch<V>* scratch_ = nullptr;
  rank_t rank_ = 0;
  std::uint16_t layers_ = 0;
  std::uint16_t layer_ = 1;
  NodePhase phase_ = NodePhase::kDone;
  bool dead_ = false;
};

}  // namespace kylix
