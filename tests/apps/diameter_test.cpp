#include "apps/diameter.hpp"

#include <gtest/gtest.h>

#include "comm/bsp.hpp"
#include "powerlaw/graphgen.hpp"

namespace kylix {
namespace {

using Engine = BspEngine<std::uint64_t>;

TEST(DistributedDiameter, NeighborhoodFunctionIsNonDecreasing) {
  GraphSpec spec;
  spec.num_vertices = 1000;
  spec.num_edges = 3000;
  spec.seed = 71;
  const auto edges = generate_zipf_graph(spec);
  const Topology topo({2, 2});
  Engine engine(4);
  const auto parts = random_edge_partition(edges, 4, 72);
  DistributedDiameter<Engine> diameter(&engine, topo, parts);
  const auto result = diameter.run(32, 4, 73);
  ASSERT_FALSE(result.neighborhood.empty());
  for (std::size_t h = 1; h < result.neighborhood.size(); ++h) {
    EXPECT_GE(result.neighborhood[h], result.neighborhood[h - 1] * 0.999);
  }
}

TEST(DistributedDiameter, PathGraphHasLargeDiameter) {
  std::vector<Edge> path;
  constexpr index_t kLength = 48;
  for (index_t v = 0; v + 1 < kLength; ++v) path.push_back(Edge{v, v + 1});
  const Topology topo({2});
  Engine engine(2);
  const auto parts = random_edge_partition(path, 2, 74);
  DistributedDiameter<Engine> diameter(&engine, topo, parts);
  const auto result = diameter.run(64, 2, 75);
  // Sketches spread one hop per round; a path needs many rounds.
  EXPECT_GT(result.diameter, kLength / 4);
}

TEST(DistributedDiameter, StarGraphSaturatesInTwoHops) {
  std::vector<Edge> star;
  for (index_t v = 1; v < 200; ++v) star.push_back(Edge{0, v});
  const Topology topo({2, 2});
  Engine engine(4);
  const auto parts = random_edge_partition(star, 4, 76);
  DistributedDiameter<Engine> diameter(&engine, topo, parts);
  const auto result = diameter.run(32, 4, 77);
  EXPECT_LE(result.diameter, 4u);
}

TEST(DistributedDiameter, EstimateIsInTheRightBallpark) {
  // After saturation the neighborhood function approximates sum over
  // vertices of |component| = n^2 for a connected graph; the FM estimator
  // with 64 single-bit sketches is noisy, so accept a wide band.
  std::vector<Edge> clique;
  constexpr index_t kN = 64;
  for (index_t a = 0; a < kN; ++a) {
    for (index_t b = a + 1; b < kN; ++b) clique.push_back(Edge{a, b});
  }
  const Topology topo({2});
  Engine engine(2);
  const auto parts = random_edge_partition(clique, 2, 78);
  DistributedDiameter<Engine> diameter(&engine, topo, parts);
  const auto result = diameter.run(8, 8, 79);
  const double final_estimate = result.neighborhood.back();
  EXPECT_GT(final_estimate, kN * kN / 4.0);
  EXPECT_LT(final_estimate, kN * kN * 4.0);
}

TEST(DistributedDiameter, DeterministicInSeed) {
  const auto edges = generate_rmat(9, 3000, 80);
  const Topology topo({2, 2});
  const auto parts = random_edge_partition(edges, 4, 81);
  std::vector<double> first;
  {
    Engine engine(4);
    DistributedDiameter<Engine> d(&engine, topo, parts);
    first = d.run(16, 2, 82).neighborhood;
  }
  std::vector<double> second;
  {
    Engine engine(4);
    DistributedDiameter<Engine> d(&engine, topo, parts);
    second = d.run(16, 2, 82).neighborhood;
  }
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace kylix
