// Figure 2 — network throughput vs. packet size on the (modeled) 64-node
// EC2 cluster with 10 Gb/s interconnect.
//
// Paper reading: ~5 MB is the smallest efficient packet; a 0.4 MB packet
// (the Twitter direct-allreduce operating point) reaches only ~30% of the
// rated bandwidth. Both the closed-form utilization curve and a replayed
// 64-node round-robin exchange are reported; they agree by construction of
// the model, and the replay demonstrates the TimingAccumulator path end to
// end.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace kylix;

double replayed_throughput(double packet_bytes, std::uint32_t threads) {
  // One round of a 64-node circular exchange: every node sends one packet
  // of the given size to its successor and receives one from its
  // predecessor (Fig. 1b's schedule, one step).
  constexpr rank_t m = 64;
  TimingAccumulator timing(m, NetworkModel::ec2_like(), ComputeModel{},
                           threads);
  for (rank_t src = 0; src < m; ++src) {
    timing.on_message({Phase::kReduceDown, 1, src,
                       static_cast<rank_t>((src + 1) % m),
                       static_cast<std::uint64_t>(packet_bytes)});
  }
  return packet_bytes / timing.times().reduce_down;
}

}  // namespace

int main() {
  const NetworkModel net = NetworkModel::ec2_like();
  std::printf("# Figure 2: throughput vs packet size (64-node EC2 model)\n");
  std::printf("# rated bandwidth: %s/s, min efficient packet (84%%): %s\n",
              format_bytes(net.bandwidth_bytes_per_s).c_str(),
              format_bytes(net.min_efficient_packet(0.84)).c_str());
  std::printf("%-14s %-16s %-14s %-18s\n", "packet", "util_model",
              "gbps_model", "gbps_replayed_1t");
  for (double packet = 64e3; packet <= 64e6; packet *= 2) {
    const double util = net.utilization(packet);
    const double gbps = util * net.bandwidth_bytes_per_s * 8 / 1e9;
    const double replay_gbps = replayed_throughput(packet, 1) * 8 / 1e9;
    std::printf("%-14s %-16.3f %-14.2f %-18.2f\n",
                format_bytes(packet).c_str(), util, gbps, replay_gbps);
  }
  std::printf("\n# paper checkpoints\n");
  std::printf("0.4 MB packet utilization: %.2f (paper: ~0.30)\n",
              net.utilization(0.4e6));
  std::printf("5 MB packet utilization:   %.2f (paper: 'smallest "
              "efficient')\n",
              net.utilization(5e6));
  return 0;
}
