// MembershipView state machine + BackoffSchedule + lost-mass guard.

#include <gtest/gtest.h>

#include "cluster/failure.hpp"
#include "cluster/membership.hpp"
#include "comm/recovery.hpp"
#include "comm/replicated.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace kylix {
namespace {

TEST(BackoffScheduleTest, ExponentialWithCap) {
  const BackoffSchedule sched{1.0, 2.0, 5.0};
  EXPECT_DOUBLE_EQ(sched.delay(1), 1.0);
  EXPECT_DOUBLE_EQ(sched.delay(2), 2.0);
  EXPECT_DOUBLE_EQ(sched.delay(3), 4.0);
  EXPECT_DOUBLE_EQ(sched.delay(4), 5.0);  // 8 capped to 5
  EXPECT_DOUBLE_EQ(sched.delay(9), 5.0);
  EXPECT_DOUBLE_EQ(sched.delay(0), 1.0);  // 0 maps to attempt 1
  EXPECT_DOUBLE_EQ(sched.total(4), 1.0 + 2.0 + 4.0 + 5.0);
}

TEST(BackoffScheduleTest, DefaultsEscalate) {
  const BackoffSchedule sched{};
  EXPECT_GT(sched.delay(2), sched.delay(1));
  EXPECT_LE(sched.delay(64), sched.cap_s);
}

TEST(MembershipViewTest, SuspectThenDeadAdvancesEpoch) {
  FailureModel fm(4);
  MembershipOptions opts;
  opts.max_probes = 3;
  opts.probe_backoff = BackoffSchedule{1.0, 2.0, 4.0};  // delays 1, 2, 4
  MembershipView view(4, &fm, opts);
  EXPECT_EQ(view.epoch(), 0u);
  EXPECT_FALSE(view.poll(0.0));

  fm.kill(2);
  // First poll after the kill: suspect, not dead — no epoch change yet.
  EXPECT_FALSE(view.poll(10.0));
  EXPECT_EQ(view.state(2), MembershipView::State::kSuspect);
  EXPECT_FALSE(view.is_dead(2));
  EXPECT_EQ(view.epoch(), 0u);

  // Probes accumulate from the suspicion time: death only after the whole
  // schedule (10 + 1 + 2 + 4 = 17) ran dry.
  EXPECT_FALSE(view.poll(16.9));
  EXPECT_EQ(view.state(2), MembershipView::State::kSuspect);
  EXPECT_TRUE(view.poll(17.0));
  EXPECT_TRUE(view.is_dead(2));
  EXPECT_EQ(view.epoch(), 1u);
  EXPECT_EQ(view.alive_members().size(), 3u);
  EXPECT_EQ(view.dead_members(), std::vector<rank_t>{2});
  EXPECT_EQ(view.stats().deaths, 1u);
  EXPECT_EQ(view.stats().probes, 3u);
}

TEST(MembershipViewTest, FlapRecoversWithoutEpochChange) {
  FailureModel fm(4);
  MembershipOptions opts;
  opts.probe_backoff = BackoffSchedule{1.0, 2.0, 4.0};
  MembershipView view(4, &fm, opts);
  fm.kill(1);
  EXPECT_FALSE(view.poll(0.0));
  EXPECT_EQ(view.state(1), MembershipView::State::kSuspect);
  fm.revive(1);  // answered a probe before the schedule ran out
  EXPECT_FALSE(view.poll(0.5));
  EXPECT_EQ(view.state(1), MembershipView::State::kAlive);
  EXPECT_EQ(view.epoch(), 0u);
  EXPECT_EQ(view.stats().flaps, 1u);
  EXPECT_EQ(view.stats().deaths, 0u);
}

TEST(MembershipViewTest, RejoinBumpsEpoch) {
  FailureModel fm(4);
  MembershipView view(4, &fm);
  fm.kill(3);
  EXPECT_FALSE(view.poll(0.0));
  EXPECT_TRUE(view.poll_settled(0.0));
  EXPECT_EQ(view.epoch(), 1u);
  fm.revive(3);
  EXPECT_TRUE(view.poll(1.0));
  EXPECT_EQ(view.epoch(), 2u);
  EXPECT_EQ(view.state(3), MembershipView::State::kAlive);
  EXPECT_EQ(view.stats().joins, 1u);
  ASSERT_EQ(view.history().size(), 3u);
  EXPECT_EQ(view.history()[1].dead, std::vector<rank_t>{3});
  EXPECT_TRUE(view.history()[2].dead.empty());
}

TEST(MembershipViewTest, ReplicaGroupSemantics) {
  // 3 logical members, replication 2: member j down iff both j and j+3 die.
  FailureModel fm(6);
  MembershipOptions opts;
  opts.replication = 2;
  MembershipView view(3, &fm, opts);
  fm.kill(1);
  EXPECT_FALSE(view.poll_settled(0.0));
  EXPECT_EQ(view.state(1), MembershipView::State::kAlive);
  fm.kill(4);  // second replica of member 1 — group now dead
  EXPECT_TRUE(view.poll_settled(1.0));
  EXPECT_TRUE(view.is_dead(1));
  EXPECT_EQ(view.epoch(), 1u);
}

TEST(MembershipViewTest, AliveFingerprintTracksDeadSet) {
  FailureModel fm(4);
  MembershipView view(4, &fm);
  EXPECT_EQ(view.alive_fingerprint(), 0u);
  fm.kill(0);
  (void)view.poll_settled(0.0);
  const std::uint64_t fp_dead0 = view.alive_fingerprint();
  EXPECT_NE(fp_dead0, 0u);
  fm.kill(2);
  (void)view.poll_settled(1.0);
  EXPECT_NE(view.alive_fingerprint(), fp_dead0);
  fm.revive(0);
  fm.revive(2);
  (void)view.poll(2.0);
  EXPECT_EQ(view.alive_fingerprint(), 0u);
}

TEST(MembershipViewTest, EmitsMetricsAndFlightEvents) {
  FailureModel fm(4);
  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(4);
  MembershipOptions opts;
  opts.metrics = &metrics;
  opts.recorder = &recorder;
  MembershipView view(4, &fm, opts);
  fm.kill(2);
  (void)view.poll_settled(0.0);
  fm.revive(2);
  (void)view.poll(1.0);
  EXPECT_EQ(metrics.counter("membership.suspects").value(), 1u);
  EXPECT_EQ(metrics.counter("membership.deaths").value(), 1u);
  EXPECT_EQ(metrics.counter("membership.joins").value(), 1u);
  EXPECT_EQ(metrics.counter("membership.epoch_changes").value(), 2u);
  EXPECT_DOUBLE_EQ(metrics.gauge("membership.epoch").value(), 2.0);
  EXPECT_GE(metrics.counter("membership.probes").value(), 1u);

  int suspects = 0, deaths = 0, joins = 0, epochs = 0;
  for (const obs::FlightEvent& e : recorder.merged_events()) {
    switch (e.kind) {
      case obs::FlightEventKind::kRankSuspect: ++suspects; break;
      case obs::FlightEventKind::kRankDead: ++deaths; break;
      case obs::FlightEventKind::kRankJoined: ++joins; break;
      case obs::FlightEventKind::kEpochChange: ++epochs; break;
      default: break;
    }
  }
  EXPECT_EQ(suspects, 1);
  EXPECT_EQ(deaths, 1);
  EXPECT_EQ(joins, 1);
  EXPECT_EQ(epochs, 2);
}

// Satellite: mass_lost_fraction divide-by-zero guard. All-zero reported
// masses with a dead group must price the loss as total (1.0), not 0/0.
TEST(LostMassFractionTest, ZeroTotalMassWithDeadGroupReportsOne) {
  FailureModel fm(4);
  ReplicatedBsp<float> engine(2, 2, &fm);
  engine.note_input_mass(0, 0.0);
  engine.note_input_mass(1, 0.0);
  EXPECT_DOUBLE_EQ(engine.lost_mass_fraction(), 0.0);  // nobody dead
  fm.kill(1);
  fm.kill(3);  // whole group of logical 1
  EXPECT_DOUBLE_EQ(engine.lost_mass_fraction(), 1.0);
}

TEST(LostMassFractionTest, UnreportedMassesStayZero) {
  FailureModel fm(4);
  ReplicatedBsp<float> engine(2, 2, &fm);
  fm.kill(1);
  fm.kill(3);
  EXPECT_DOUBLE_EQ(engine.lost_mass_fraction(), 0.0);
}

}  // namespace
}  // namespace kylix
