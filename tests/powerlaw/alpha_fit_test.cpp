#include "powerlaw/alpha_fit.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "powerlaw/zipf.hpp"

namespace kylix {
namespace {

TEST(FitAlphaMle, RecoversPlantedExponent) {
  // Draw degree-like samples from P(x) ∝ x^-alpha and recover alpha. The
  // CSN continuity-corrected MLE is accurate for x_min >= ~6 (Clauset et
  // al. 2009, §3.1), so the fit starts there.
  for (double alpha : {1.5, 2.0, 2.5}) {
    const ZipfSampler zipf(1000000, alpha);
    Rng rng(static_cast<std::uint64_t>(alpha * 100));
    std::vector<std::uint64_t> samples;
    for (int i = 0; i < 400000; ++i) samples.push_back(zipf(rng));
    const double fitted = fit_alpha_mle(samples, 6);
    EXPECT_NEAR(fitted, alpha, 0.1) << "alpha " << alpha;
  }
}

TEST(FitAlphaMle, XminFiltersTheHead) {
  const ZipfSampler zipf(100000, 2.0);
  Rng rng(9);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 50000; ++i) samples.push_back(zipf(rng));
  // Fitting from a higher x_min should still land near the exponent.
  EXPECT_NEAR(fit_alpha_mle(samples, 3), 2.0, 0.25);
}

TEST(FitAlphaMle, RejectsDegenerateInput) {
  const std::vector<std::uint64_t> one = {5};
  EXPECT_THROW(fit_alpha_mle(one, 1), check_error);
  const std::vector<std::uint64_t> below = {1, 1, 1};
  EXPECT_THROW(fit_alpha_mle(below, 10), check_error);
}

TEST(FitAlphaRankFrequency, RecoversExactPowerLaw) {
  // Noise-free rank-frequency table F = C r^-alpha.
  for (double alpha : {0.7, 1.0, 1.4}) {
    std::vector<std::uint64_t> freq;
    for (int r = 1; r <= 2000; ++r) {
      freq.push_back(static_cast<std::uint64_t>(
          1e9 * std::pow(static_cast<double>(r), -alpha)));
    }
    EXPECT_NEAR(fit_alpha_rank_frequency(freq), alpha, 0.02)
        << "alpha " << alpha;
  }
}

TEST(FitAlphaRankFrequency, IgnoresTrailingZeros) {
  std::vector<std::uint64_t> freq = {1000, 250, 111, 62, 0, 0, 0};
  EXPECT_NEAR(fit_alpha_rank_frequency(freq), 2.0, 0.05);
}

TEST(FitAlphaRankFrequency, RejectsUnsortedOrDegenerate) {
  const std::vector<std::uint64_t> unsorted = {10, 50, 5};
  EXPECT_THROW(fit_alpha_rank_frequency(unsorted), check_error);
  const std::vector<std::uint64_t> single = {42};
  EXPECT_THROW(fit_alpha_rank_frequency(single), check_error);
}

TEST(FitAlphaRankFrequency, MatchesZipfSamples) {
  const double alpha = 1.1;
  const ZipfSampler zipf(5000, alpha);
  Rng rng(13);
  std::vector<std::uint64_t> counts(5001, 0);
  for (int i = 0; i < 2000000; ++i) ++counts[zipf(rng)];
  std::sort(counts.begin(), counts.end(), std::greater<>());
  // Fit the head only (the sampled tail flattens from discreteness).
  counts.resize(200);
  EXPECT_NEAR(fit_alpha_rank_frequency(counts), alpha, 0.1);
}

}  // namespace
}  // namespace kylix
