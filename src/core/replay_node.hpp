// Shared per-rank replay kernels for compiled CollectivePlans.
//
// ReduceExecutor (core/executor.hpp) and the async resumable path
// (core/async_node.hpp + core/async_executor.hpp) replay the same frozen
// schedule; this header is the single definition of what one rank does at
// one layer — slice by out_split, scatter_combine by out_maps in ascending
// sender digit, bottom gather, gather by in_maps — plus the chunk framing
// (DESIGN §9) and the buffer economy both drivers share. Because every
// driver funnels through these kernels with the same (src, chunk)-sorted
// inboxes, async multi-stream replay is bit-identical to serial replay by
// construction, not by test alone (the fuzz suite then asserts it anyway).
//
// ReplayScratch mirrors NodeScratch's buffer discipline: letter shells per
// layer, recycled value pools, ping-pong merge/below buffers, pooled
// block-watermark scratch, and the spent list that returns consumed buffers
// to their sender's pool at a quiescent point. Warm replays allocate
// nothing inside the rounds (tests/core/alloc_test).
#pragma once

#include <algorithm>
#include <span>
#include <utility>
#include <vector>

#include "comm/packet.hpp"
#include "core/node.hpp"  // NodeWork + the kernels the replay must mirror
#include "core/plan.hpp"
#include "core/stream_stats.hpp"
#include "sparse/ops.hpp"

namespace kylix {

/// Everything a replay kernel needs to know about the reduce in flight.
/// Frozen at the top of a reduce (serial) or at stream admission (async);
/// one plan serves every value type and stride because the payload-bytes ->
/// key-positions conversion happens in the driver, not at compile time.
struct ReplayContext {
  const CollectivePlan* plan = nullptr;
  std::uint32_t stride = 1;
  /// Chunk length in key positions (0 means letter-at-once).
  std::size_t chunk_positions = 0;
};

/// Mutable per-rank replay state; same buffer economy as NodeScratch.
template <typename V>
struct ReplayScratch {
  std::vector<std::vector<Letter<V>>> letters;  ///< per comm layer shells
  std::vector<std::vector<V>> value_pool;       ///< recycled packet buffers
  std::vector<V> v;       ///< downward (scatter-reduce) buffer
  std::vector<V> vin;     ///< upward (allgather) buffer
  std::vector<V> merged;  ///< ping-pong partner
  std::vector<std::uint32_t> last_touch;  ///< block-watermark scratch
  /// Consumed value buffers awaiting return to their sender's pool. Only
  /// the buffers move here — the inbox vector and its letter shells stay
  /// with the engine, which pools them round to round.
  std::vector<std::pair<rank_t, std::vector<V>>> spent;
  NodeWork work;
  StreamStats stream;  ///< this rank's round-local telemetry
};

/// The per-rank replay kernels, shared verbatim by every driver. All
/// methods are static and take the context + scratch explicitly so one
/// rank's state can belong to a serial executor slot or to an async
/// stream lane interchangeably.
template <typename V, typename Op = OpSum>
struct ReplayOps {
  /// Chunks a piece of `positions` key positions splits into (>= 1: empty
  /// pieces still send one letter so blocking receives stay balanced).
  [[nodiscard]] static std::uint32_t chunks_for(const ReplayContext& ctx,
                                                std::size_t positions) {
    if (ctx.chunk_positions == 0 || positions <= ctx.chunk_positions) {
      return 1;
    }
    return static_cast<std::uint32_t>(
        (positions + ctx.chunk_positions - 1) / ctx.chunk_positions);
  }

  template <typename T>
  static void refill(std::vector<std::vector<T>>& pool, std::vector<T>& buf) {
    if (buf.capacity() == 0 && !pool.empty()) {
      buf = std::move(pool.back());
      pool.pop_back();
      buf.clear();
    }
  }
  template <typename T>
  static void recycle(std::vector<std::vector<T>>& pool, std::vector<T>& buf) {
    if (buf.capacity() > 0) pool.push_back(std::move(buf));
  }

  /// Load one rank's contribution into the downward buffer, recycling the
  /// caller's vector into the pool (the API-boundary buffer exchange that
  /// keeps warm replays allocation-free).
  static void load_input(ReplayScratch<V>& s, std::vector<V>& out_values) {
    refill(s.value_pool, s.v);
    s.v.assign(out_values.begin(), out_values.end());
    recycle(s.value_pool, out_values);
  }

  /// Resize a letter-shell vector, recycling the value buffers of shells
  /// about to be destroyed (mode switches shrink the chunk count; their
  /// capacity must flow back to the pool, not to the heap).
  static void resize_letters(ReplayScratch<V>& s,
                             std::vector<Letter<V>>& letters,
                             std::size_t count) {
    for (std::size_t i = count; i < letters.size(); ++i) {
      recycle(s.value_pool, letters[i].packet.values);
    }
    letters.resize(count);
  }

  static std::vector<Letter<V>>& down_produce(const ReplayContext& ctx,
                                              ReplayScratch<V>& s, rank_t r,
                                              std::uint16_t layer) {
    const PlanLayer& cfg = ctx.plan->rank_plan(r).layers[layer - 1];
    std::vector<Letter<V>>& letters = s.letters[layer - 1];
    std::size_t total = 0;
    for (std::uint32_t q = 0; q < cfg.group.size(); ++q) {
      total += chunks_for(ctx, cfg.out_split[q + 1] - cfg.out_split[q]);
    }
    resize_letters(s, letters, total);
    std::size_t slot = 0;
    for (std::uint32_t q = 0; q < cfg.group.size(); ++q) {
      const std::size_t piece = cfg.out_split[q + 1] - cfg.out_split[q];
      const std::uint32_t k = chunks_for(ctx, piece);
      for (std::uint32_t c = 0; c < k; ++c) {
        Letter<V>& letter = letters[slot++];
        letter.src = r;
        letter.dst = cfg.group[q];
        letter.packet.in_keys.clear();
        letter.packet.out_keys.clear();
        letter.packet.stride = ctx.stride;
        letter.packet.chunk_index = c;
        letter.packet.chunk_count = k;
        const std::size_t lo =
            cfg.out_split[q] + std::size_t{c} * ctx.chunk_positions;
        const std::size_t hi =
            k == 1 ? cfg.out_split[q + 1]
                   : std::min(cfg.out_split[q + 1], lo + ctx.chunk_positions);
        refill(s.value_pool, letter.packet.values);
        letter.packet.values.assign(
            s.v.begin() + static_cast<std::ptrdiff_t>(lo * ctx.stride),
            s.v.begin() + static_cast<std::ptrdiff_t>(hi * ctx.stride));
        s.work.gather_elements +=
            static_cast<double>(letter.packet.values.size());
      }
      ++s.stream.letters;
      s.stream.chunks += k;
      s.stream.max_chunks_per_letter =
          std::max(s.stream.max_chunks_per_letter, k);
    }
    return letters;
  }

  static void down_consume(const ReplayContext& ctx, ReplayScratch<V>& s,
                           rank_t r, std::uint16_t layer,
                           std::vector<Letter<V>>&& inbox) {
    const PlanLayer& cfg = ctx.plan->rank_plan(r).layers[layer - 1];
    note_buffer_envelopes(ctx, s, inbox);
    note_block_flushes(ctx, s, inbox, cfg.out_union_size,
                       [&](const Letter<V>& letter, std::size_t offset,
                           std::size_t positions) {
                         const std::uint32_t q =
                             ctx.plan->topology().digit(layer, letter.src);
                         const std::span<const pos_t> map(cfg.out_maps[q]);
                         // Maps are strictly increasing within one piece,
                         // so the chunk's union footprint is [front, back].
                         return std::pair<std::size_t, std::size_t>(
                             map[offset], map[offset + positions - 1]);
                       });
    std::vector<V>& merged = s.merged;
    merged.assign(cfg.out_union_size * ctx.stride, Op::template identity<V>());
    // Inbox is sorted by (src, chunk): ascending sender digit, ascending
    // chunk within a sender — the letter-at-once per-position combine order
    // exactly, so eager chunk scatters are bit-identical.
    for (Letter<V>& letter : inbox) {
      const std::uint32_t q = ctx.plan->topology().digit(layer, letter.src);
      const std::size_t piece = cfg.recv_out_sizes[q];
      const auto [offset, positions] =
          chunk_slice(ctx, letter.packet, piece,
                      "reduce payload does not match planned piece size");
      scatter_combine_strided<V, Op>(
          std::span<V>(merged), std::span<const V>(letter.packet.values),
          std::span<const pos_t>(cfg.out_maps[q]).subspan(offset, positions),
          ctx.stride);
      s.work.combine_elements +=
          static_cast<double>(letter.packet.values.size());
      s.spent.emplace_back(letter.src, std::move(letter.packet.values));
    }
    std::swap(s.v, merged);
  }

  static void begin_up(const ReplayContext& ctx, ReplayScratch<V>& s,
                       rank_t r) {
    const RankPlan& rp = ctx.plan->rank_plan(r);
    KYLIX_DCHECK(s.v.size() ==
                 rp.out_sizes[ctx.plan->topology().num_layers()] * ctx.stride);
    refill(s.value_pool, s.vin);
    s.vin.reserve(std::max(rp.up_capacity, rp.bottom_map.size()) * ctx.stride);
    if (rp.missing_bottom.empty()) {
      gather_strided_into(std::span<const V>(s.v), rp.bottom_map, ctx.stride,
                          s.vin);
    } else {
      // Degraded cold path: kMissingPos entries resolve to identity.
      s.vin.clear();
      for (const pos_t pos : rp.bottom_map) {
        for (std::uint32_t c = 0; c < ctx.stride; ++c) {
          s.vin.push_back(pos == kMissingPos
                              ? Op::template identity<V>()
                              : s.v[pos * ctx.stride + c]);
        }
      }
    }
    s.work.gather_elements += static_cast<double>(rp.bottom_map.size());
  }

  static std::vector<Letter<V>>& up_produce(const ReplayContext& ctx,
                                            ReplayScratch<V>& s, rank_t r,
                                            std::uint16_t layer) {
    const PlanLayer& cfg = ctx.plan->rank_plan(r).layers[layer - 1];
    std::vector<Letter<V>>& letters = s.letters[layer - 1];
    std::size_t total = 0;
    for (std::uint32_t q = 0; q < cfg.group.size(); ++q) {
      total += chunks_for(ctx, cfg.in_maps[q].size());
    }
    resize_letters(s, letters, total);
    std::size_t slot = 0;
    for (std::uint32_t q = 0; q < cfg.group.size(); ++q) {
      const std::size_t piece = cfg.in_maps[q].size();
      const std::uint32_t k = chunks_for(ctx, piece);
      for (std::uint32_t c = 0; c < k; ++c) {
        Letter<V>& letter = letters[slot++];
        letter.src = r;
        letter.dst = cfg.group[q];
        letter.packet.in_keys.clear();
        letter.packet.out_keys.clear();
        letter.packet.stride = ctx.stride;
        letter.packet.chunk_index = c;
        letter.packet.chunk_count = k;
        const std::size_t lo = std::size_t{c} * ctx.chunk_positions;
        const std::size_t hi =
            k == 1 ? piece : std::min(piece, lo + ctx.chunk_positions);
        refill(s.value_pool, letter.packet.values);
        gather_strided_into(
            std::span<const V>(s.vin),
            std::span<const pos_t>(cfg.in_maps[q]).subspan(lo, hi - lo),
            ctx.stride, letter.packet.values);
        s.work.gather_elements +=
            static_cast<double>(letter.packet.values.size());
      }
      ++s.stream.letters;
      s.stream.chunks += k;
      s.stream.max_chunks_per_letter =
          std::max(s.stream.max_chunks_per_letter, k);
    }
    return letters;
  }

  static void up_consume(const ReplayContext& ctx, ReplayScratch<V>& s,
                         rank_t r, std::uint16_t layer,
                         std::vector<Letter<V>>&& inbox) {
    const PlanLayer& cfg = ctx.plan->rank_plan(r).layers[layer - 1];
    note_buffer_envelopes(ctx, s, inbox);
    note_block_flushes(ctx, s, inbox, cfg.in_prev_size,
                       [&](const Letter<V>& letter, std::size_t offset,
                           std::size_t positions) {
                         const std::uint32_t q =
                             ctx.plan->topology().digit(layer, letter.src);
                         // Allgather chunks land contiguously at the piece's
                         // split boundary.
                         const std::size_t lo = cfg.in_split[q] + offset;
                         return std::pair<std::size_t, std::size_t>(
                             lo, lo + positions - 1);
                       });
    std::vector<V>& below = s.merged;
    below.assign(cfg.in_prev_size * ctx.stride, Op::template identity<V>());
    for (Letter<V>& letter : inbox) {
      const std::uint32_t q = ctx.plan->topology().digit(layer, letter.src);
      const std::size_t piece = cfg.in_split[q + 1] - cfg.in_split[q];
      const auto [offset, positions] =
          chunk_slice(ctx, letter.packet, piece,
                      "allgather payload does not match planned piece size");
      const std::size_t first = (cfg.in_split[q] + offset) * ctx.stride;
      std::copy(letter.packet.values.begin(), letter.packet.values.end(),
                below.begin() + static_cast<std::ptrdiff_t>(first));
      s.spent.emplace_back(letter.src, std::move(letter.packet.values));
    }
    std::swap(s.vin, below);
  }

  /// Validate one letter's chunk framing against the planned piece length
  /// and return its {position offset, position count} within the piece.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> chunk_slice(
      const ReplayContext& ctx, const Packet<V>& packet, std::size_t piece,
      const char* what) {
    std::size_t offset = 0;
    std::size_t positions = piece;
    if (packet.chunk_count > 1) {
      KYLIX_CHECK_MSG(ctx.chunk_positions != 0 &&
                          packet.chunk_count == chunks_for(ctx, piece) &&
                          packet.chunk_index < packet.chunk_count,
                      "chunk framing does not match the plan's schedule");
      offset = std::size_t{packet.chunk_index} * ctx.chunk_positions;
      positions = std::min(ctx.chunk_positions, piece - offset);
    }
    KYLIX_CHECK_MSG(packet.values.size() == positions * ctx.stride, what);
    return {offset, positions};
  }

  /// Record what this consume had to buffer: the whole inbox (letter-at-once
  /// envelope) vs. one in-flight chunk per sender (streamed envelope, the
  /// O(chunk x in-degree) cap eager combining buys). Requires the inbox to
  /// be (src, chunk)-sorted, which every driver guarantees.
  static void note_buffer_envelopes(const ReplayContext& ctx,
                                    ReplayScratch<V>& s,
                                    const std::vector<Letter<V>>& inbox) {
    std::uint64_t letter_bytes = 0;
    std::uint64_t stream_bytes = 0;
    std::uint64_t src_max = 0;
    rank_t src = 0;
    bool first = true;
    for (const Letter<V>& letter : inbox) {
      const std::uint64_t bytes =
          sizeof(V) * std::uint64_t{letter.packet.values.size()};
      letter_bytes += bytes;
      if (first || letter.src != src) {
        stream_bytes += src_max;
        src_max = 0;
        src = letter.src;
        first = false;
      }
      src_max = std::max(src_max, bytes);
    }
    stream_bytes += src_max;
    s.stream.peak_letter_buffer_bytes =
        std::max(s.stream.peak_letter_buffer_bytes, letter_bytes);
    s.stream.peak_stream_buffer_bytes =
        std::max(s.stream.peak_stream_buffer_bytes,
                 ctx.chunk_positions == 0 ? letter_bytes : stream_bytes);
  }

  /// Block watermarks: the round's target buffer is partitioned into blocks
  /// of chunk_positions key positions; block b flushes downstream after the
  /// last chunk touching it (index t_b in the deterministic processing
  /// order) combines. `range` maps (letter, piece offset, positions) to the
  /// inclusive target-position range the chunk writes. The flush timeline is
  /// what pipelined_reduce_time prices; here it feeds blocks_flushed and the
  /// overlap ratio. Scratch is pooled (last_touch keeps capacity), so warm
  /// streamed rounds allocate nothing.
  template <typename RangeFn>
  static void note_block_flushes(const ReplayContext& ctx, ReplayScratch<V>& s,
                                 const std::vector<Letter<V>>& inbox,
                                 std::size_t target_positions,
                                 RangeFn&& range) {
    const std::size_t span = ctx.chunk_positions;
    if (span == 0 || target_positions == 0 || inbox.empty()) return;
    const std::size_t blocks = (target_positions + span - 1) / span;
    s.last_touch.assign(blocks, 0);
    for (std::uint32_t i = 0; i < inbox.size(); ++i) {
      const Letter<V>& letter = inbox[i];
      if (letter.packet.values.empty()) continue;
      const std::size_t positions = letter.packet.values.size() / ctx.stride;
      const std::size_t offset = std::size_t{letter.packet.chunk_index} * span;
      const auto [lo, hi] = range(letter, offset, positions);
      for (std::size_t b = lo / span; b <= hi / span; ++b) {
        s.last_touch[b] = i;
      }
    }
    const double last = static_cast<double>(inbox.size()) - 1.0;
    for (std::size_t b = 0; b < blocks; ++b) {
      ++s.stream.blocks_flushed;
      ++s.stream.overlap_blocks;
      if (last > 0.0) {
        s.stream.overlap_weight +=
            (last - static_cast<double>(s.last_touch[b])) / last;
      }
    }
  }
};

}  // namespace kylix
