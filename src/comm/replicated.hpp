// The §V replication layer: s-fold data replication with packet racing.
//
// A logical network of m nodes is mapped onto s·m physical machines; the
// data of logical node j lives on physical machines j, j+m, …, j+(s-1)m.
// Every message from logical j to logical k is transmitted by *each alive
// replica* of j to *each replica* of k (s copies per physical sender, s²
// per logical edge, the "per-node communication increases by s" worst case).
// A receiver listens to the whole replica group of the expected sender and
// uses the first copy that arrives, canceling the rest — so it pays receive
// cost for the winning copy only, while every transmitted copy costs its
// sender.
//
// Chaos engine (set_fault_channel): every physical copy is classified
// independently. A dropped copy is lost, a delayed copy loses its race (late
// copies are canceled, never redelivered), a duplicated copy arrives once
// but is charged twice. When *all* copies of a letter fault away while both
// replica groups still live, the receiver recovers it (RecoveryPolicy):
// bounded re-requests round-robin over surviving sender replicas, each
// attempt paying control headers and an escalating backoff stall, with a
// reliable-path fallback on the last attempt — so the protocol still
// completes bit-identically whenever no whole group is dead.
//
// When an entire replica group is dead (≈ √m failures at s = 2 by the
// birthday argument), nothing can be recovered: the engine records a
// DeathRecord per {phase, layer} in which an alive node expected the dead
// group, and the allreduce completes in degraded mode over surviving key
// ranges (core/degraded.hpp) instead of aborting.
//
// Exposes the same round() interface as BspEngine, addressed in *logical*
// ranks, so the identical node algorithm runs unmodified on top of it.
// Alive-replica lookups are cached and revalidated against
// FailureModel::version(), so steady-state rounds allocate nothing
// (tests/core/alloc_test).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/timing.hpp"
#include "cluster/trace.hpp"
#include "comm/fault_channel.hpp"
#include "comm/packet.hpp"
#include "comm/recovery.hpp"
#include "common/check.hpp"
#include "common/hash.hpp"
#include "obs/observer.hpp"

namespace kylix {

template <typename V>
class ReplicatedBsp {
 public:
  /// `failures`, `trace`, `timing` all address *physical* ranks in
  /// [0, logical_nodes * replication). Observers optional, not owned.
  ReplicatedBsp(rank_t logical_nodes, std::uint32_t replication,
                const FailureModel* failures = nullptr,
                Trace* trace = nullptr, TimingAccumulator* timing = nullptr)
      : logical_(logical_nodes),
        replication_(replication),
        failures_(failures),
        trace_(trace),
        timing_(timing) {
    KYLIX_CHECK(logical_nodes >= 1);
    KYLIX_CHECK(replication >= 1);
    KYLIX_CHECK_MSG(
        failures == nullptr || failures->num_nodes() >= num_physical(),
        "FailureModel covers fewer ranks than the physical network");
  }

  [[nodiscard]] rank_t num_ranks() const { return logical_; }
  [[nodiscard]] rank_t num_physical() const {
    return logical_ * replication_;
  }
  [[nodiscard]] std::uint32_t replication() const { return replication_; }

  /// Physical rank of replica r of logical node j.
  [[nodiscard]] rank_t physical(rank_t logical, std::uint32_t replica) const {
    return logical + replica * logical_;
  }

  /// Alive replicas of a logical node, in replica order. Returns a cached
  /// vector revalidated against FailureModel::version() — no allocation on
  /// the steady-state path.
  [[nodiscard]] const std::vector<rank_t>& alive_replicas(
      rank_t logical) const {
    refresh_alive();
    return alive_phys_[logical];
  }

  /// A logical node fails only when its whole replica group is dead.
  [[nodiscard]] bool is_dead(rank_t logical) const {
    refresh_alive();
    return alive_count_[logical] == 0;
  }

  /// True if any logical node has lost all replicas (the allreduce can only
  /// complete in degraded mode).
  [[nodiscard]] bool has_failed() const {
    refresh_alive();
    return dead_groups_ > 0;
  }

  /// Logical ranks whose whole replica group is currently dead (cold path).
  [[nodiscard]] std::vector<rank_t> dead_logical_ranks() const {
    refresh_alive();
    std::vector<rank_t> dead;
    for (rank_t j = 0; j < logical_; ++j) {
      if (alive_count_[j] == 0) dead.push_back(j);
    }
    return dead;
  }

  /// Telemetry hook (src/obs); optional, not owned. Sees one on_message per
  /// transmitted copy, in physical ranks, mirroring the trace.
  void set_observer(EngineObserver* observer) { observer_ = observer; }

  /// Attach a chaos-engine fault channel (optional, not owned). The plan
  /// must cover all num_physical() ranks; when the engine has no
  /// FailureModel of its own it adopts the plan's.
  void set_fault_channel(FaultChannel<V>* channel) {
    channel_ = channel;
    if (channel_ != nullptr && failures_ == nullptr) {
      failures_ = &channel_->plan().failures();
      cache_built_ = false;
    }
    KYLIX_CHECK_MSG(
        channel_ == nullptr ||
            channel_->plan().num_nodes() >= num_physical(),
        "FaultPlan covers fewer ranks than the physical network");
  }

  void set_recovery_policy(const RecoveryPolicy& policy) {
    KYLIX_CHECK(policy.max_attempts >= 1);
    policy_ = policy;
  }
  [[nodiscard]] const RecoveryPolicy& recovery_policy() const {
    return policy_;
  }

  /// §V-B racing outcomes since construction: a receiver consumes the first
  /// arriving copy (win) and cancels the rest (losses); copies addressed to
  /// dead physical receivers — or lost to injected drops — are drops, and
  /// injected delays count as canceled race losses.
  struct RaceStats {
    std::uint64_t wins = 0;
    std::uint64_t losses = 0;
    std::uint64_t drops = 0;
  };
  [[nodiscard]] const RaceStats& race_stats() const { return races_; }

  /// Copies transmitted to dead physical destinations since construction.
  [[nodiscard]] std::uint64_t dropped_messages() const { return races_.drops; }

  [[nodiscard]] const RecoveryStats& recovery_stats() const {
    return recovery_;
  }

  /// Replica groups observed fully dead while an alive node expected a
  /// letter from them, one record per distinct {phase, layer, group}.
  [[nodiscard]] const std::vector<DeathRecord>& death_records() const {
    return deaths_;
  }

  /// True if the group was already fully dead when the first round ran —
  /// its data never entered the reduction, so its loss is exactly the
  /// uncovered bottom keys rather than a partially-merged key range.
  [[nodiscard]] bool was_dead_at_start(rank_t logical) const {
    return snapshot_taken_ && dead_at_start_[logical];
  }

  [[nodiscard]] bool degraded_allowed() const {
    return policy_.degraded_completion;
  }

  /// Epoch barrier (elastic membership, cluster/membership.hpp): forget the
  /// previous epoch's degraded bookkeeping so post-heal DegradedReports
  /// describe only rounds run on the new plan. Groups still dead when the
  /// next round runs are re-snapshotted as dead-at-start — exactly what a
  /// fresh configure on the survivor set would see. Race/recovery wire
  /// counters keep accumulating across epochs; only loss attribution resets.
  void begin_epoch() {
    deaths_.clear();
    recovery_.group_deaths = 0;
    snapshot_taken_ = false;
  }

  /// The allreduce reports each logical rank's input mass Σ|v| here before
  /// the run, so lost_mass_fraction() can price a group death.
  void note_input_mass(rank_t logical, double mass) {
    if (input_masses_.size() < static_cast<std::size_t>(logical_)) {
      input_masses_.assign(logical_, 0.0);
    }
    input_masses_[logical] = mass;
  }

  /// Fraction of total input mass contributed by currently-dead groups
  /// (0 when masses were never reported). When the reported total is zero —
  /// every input key range lost, or all-identity inputs — a dead group still
  /// means the whole reduction is unrecoverable, so report 1.0 rather than
  /// dividing by zero.
  [[nodiscard]] double lost_mass_fraction() const {
    if (input_masses_.empty()) return 0.0;
    refresh_alive();
    double total = 0.0;
    double lost = 0.0;
    for (rank_t j = 0; j < logical_; ++j) {
      total += input_masses_[j];
      if (alive_count_[j] == 0) lost += input_masses_[j];
    }
    if (total > 0.0) return lost / total;
    return dead_groups_ > 0 ? 1.0 : 0.0;
  }

  /// Modeled compute runs on every alive replica of the logical rank.
  void charge_compute(Phase phase, std::uint16_t layer, rank_t logical,
                      double seconds) {
    if (timing_ == nullptr) return;
    for (rank_t p : alive_replicas(logical)) {
      timing_->on_compute(phase, layer, p, seconds);
    }
  }

  /// Intra-node (shared-memory tier) time runs on every alive replica of
  /// the logical rank, like charge_compute: replicas execute the same
  /// intra-host schedule against their own copies of the member buffers.
  void charge_intra(Phase phase, rank_t logical, double seconds) {
    if (timing_ == nullptr) return;
    for (rank_t p : alive_replicas(logical)) {
      timing_->on_intra(phase, p, seconds);
    }
  }

  /// Intra-node stage of a hierarchical topology, over *logical* hosts:
  /// runs sequentially on the calling thread (no wire traffic to race, so
  /// replication adds nothing to observe here).
  template <typename Fn>
  void intra_round(Phase phase, rank_t num_hosts, Fn&& fn) {
    (void)phase;
    for (rank_t h = 0; h < num_hosts; ++h) fn(h);
  }

  template <typename ProduceFn, typename ExpectedFn, typename ConsumeFn>
  void round(Phase phase, std::uint16_t layer, ProduceFn&& produce,
             ExpectedFn&& expected, ConsumeFn&& consume) {
    // Groups dead before any round ran contribute nothing to the reduction;
    // the snapshot lets the degraded report price them exactly. Taken
    // before scripted crashes fire, so a crash at round 1 is mid-run.
    if (!snapshot_taken_) snapshot_dead_at_start();
    if (channel_ != nullptr) channel_->begin_round(phase, layer);
    if (observer_ != nullptr) observer_->on_round_begin(phase, layer);
    refresh_alive();
    // Inboxes and the undelivered stash persist across rounds: clear()
    // keeps capacity, so steady-state rounds allocate nothing.
    if (inboxes_.size() < static_cast<std::size_t>(logical_)) {
      inboxes_.resize(logical_);
    }
    for (auto& inbox : inboxes_) inbox.clear();
    undelivered_.clear();
    for (rank_t j = 0; j < logical_; ++j) {
      if (alive_count_[j] == 0) continue;
      for (Letter<V>& letter : produce(j)) {
        KYLIX_DCHECK(letter.src == j);
        KYLIX_CHECK_MSG(letter.dst < logical_, "letter to invalid rank");
        transmit(phase, layer, std::move(letter));
      }
    }
    if (!undelivered_.empty()) recover(phase, layer);
    detect_group_deaths(phase, layer, expected);
    for (rank_t j = 0; j < logical_; ++j) {
      if (alive_count_[j] == 0) continue;
      auto& inbox = inboxes_[j];
      std::sort(inbox.begin(), inbox.end(), letter_before<V>);
#ifndef NDEBUG
      if (!inbox.empty()) {
        // Sanity: only expected senders may appear (sorted + binary search).
        std::vector<rank_t> senders(expected(j).begin(), expected(j).end());
        std::sort(senders.begin(), senders.end());
        for (const Letter<V>& letter : inbox) {
          KYLIX_DCHECK(
              std::binary_search(senders.begin(), senders.end(), letter.src));
        }
      }
#endif
      consume(j, std::move(inbox));
    }
    if (observer_ != nullptr) observer_->on_round_end(phase, layer);
  }

 private:
  void transmit(Phase phase, std::uint16_t layer, Letter<V>&& letter) {
    const std::uint64_t bytes = letter.packet.wire_bytes();
    const std::vector<rank_t>& senders = alive_phys_[letter.src];
    KYLIX_DCHECK(!senders.empty());

    if (letter.src == letter.dst) {
      // Replicas run identical programs, so each already has its own copy
      // of a self-message: no wire traffic, and nothing to fault.
      inboxes_[letter.dst].push_back(std::move(letter));
      return;
    }

    bool delivered_anywhere = false;
    for (std::uint32_t r = 0; r < replication_; ++r) {
      const rank_t dst_phys = physical(letter.dst, r);
      const bool dst_dead =
          failures_ != nullptr && failures_->is_dead(dst_phys);
      // Every alive sender replica transmits a copy (charged to it), even
      // to dead destinations. With a fault channel each copy is classified
      // independently; `arrived` counts copies that reach this receiver.
      std::uint64_t arrived = 0;
      for (rank_t src_phys : senders) {
        const MsgEvent event{phase, layer, src_phys, dst_phys, bytes};
        if (trace_ != nullptr) trace_->add(event);
        if (timing_ != nullptr) {
          timing_->on_send(phase, layer, src_phys, bytes);
        }
        if (observer_ != nullptr) observer_->on_message(event);
        if (dst_dead) {
          ++races_.drops;
          if (observer_ != nullptr) observer_->on_drop(event);
          continue;
        }
        if (channel_ == nullptr) {
          ++arrived;
          continue;
        }
        switch (channel_->classify_copy(src_phys, dst_phys)) {
          case FaultAction::kDeliver:
            ++arrived;
            break;
          case FaultAction::kDuplicate:
            // Arrives once, but the wire carried it twice.
            ++arrived;
            if (observer_ != nullptr) {
              observer_->on_fault(event, FaultAction::kDuplicate);
            }
            if (trace_ != nullptr) trace_->add(event);
            if (timing_ != nullptr) {
              timing_->on_send(phase, layer, src_phys, bytes);
            }
            if (observer_ != nullptr) observer_->on_message(event);
            break;
          case FaultAction::kDrop:
            ++races_.drops;
            if (observer_ != nullptr) {
              observer_->on_fault(event, FaultAction::kDrop);
              observer_->on_drop(event);
            }
            break;
          case FaultAction::kDelay:
            // A late copy loses its race and is canceled, never redelivered
            // (the §V receiver has moved on); recovery handles total loss.
            ++races_.losses;
            if (observer_ != nullptr) {
              observer_->on_fault(event, FaultAction::kDelay);
            }
            break;
        }
      }
      // The receiver races the surviving copies and pays for the winner.
      if (dst_dead || arrived == 0) continue;
      races_.wins += 1;
      races_.losses += arrived - 1;
      delivered_anywhere = true;
      if (timing_ != nullptr) {
        timing_->on_recv(phase, layer, dst_phys, bytes);
      }
    }
    if (delivered_anywhere) {
      inboxes_[letter.dst].push_back(std::move(letter));
    } else if (alive_count_[letter.dst] != 0) {
      // Every copy faulted away but the destination group lives: the
      // receivers noticed nothing arrived and will re-request (recover()).
      undelivered_.push_back(std::move(letter));
    }
    // A fully dead destination group behaves as before: all copies paid
    // for and dropped, nothing to recover.
  }

  /// Re-request each totally-lost letter from surviving sender replicas:
  /// bounded retries (control header each way + escalating backoff stall on
  /// the stalled receiver), reliable-path fallback on the last attempt.
  /// Sender groups are always alive here — crashes only fire at round
  /// begins, so whoever produced a letter survives the round.
  void recover(Phase phase, std::uint16_t layer) {
    for (Letter<V>& letter : undelivered_) {
      const std::vector<rank_t>& senders = alive_phys_[letter.src];
      const std::vector<rank_t>& receivers = alive_phys_[letter.dst];
      KYLIX_DCHECK(!senders.empty());
      KYLIX_DCHECK(!receivers.empty());
      const rank_t dst_phys = receivers.front();
      const std::uint64_t bytes = letter.packet.wire_bytes();
      ++recovery_.detections;
      if (observer_ != nullptr) {
        observer_->on_recovery(RecoveryEvent{
            phase, layer, letter.src, letter.dst, RecoveryAction::kDetect, 0});
      }
      for (std::uint32_t attempt = 1; attempt <= policy_.max_attempts;
           ++attempt) {
        const rank_t src_phys =
            senders[(attempt - 1) % senders.size()];
        ++recovery_.retries;
        if (timing_ != nullptr) {
          timing_->on_send(phase, layer, dst_phys, policy_.request_bytes);
          timing_->on_recv(phase, layer, src_phys, policy_.request_bytes);
          timing_->on_compute(phase, layer, dst_phys,
                              policy_.backoff.delay(attempt));
        }
        if (observer_ != nullptr) {
          observer_->on_recovery(RecoveryEvent{phase, layer, letter.src,
                                               letter.dst,
                                               RecoveryAction::kRetry,
                                               attempt});
        }
        bool ok = true;
        if (channel_ != nullptr) {
          const FaultAction a = channel_->classify_copy(src_phys, dst_phys);
          ok = a == FaultAction::kDeliver || a == FaultAction::kDuplicate;
          if (!ok && observer_ != nullptr) {
            // A fault ate this retry copy too — without this hook the
            // black box would show retries that silently went nowhere.
            observer_->on_fault(MsgEvent{phase, layer, src_phys, dst_phys,
                                         bytes},
                                a);
          }
        }
        if (!ok && attempt == policy_.max_attempts) {
          // Retries exhausted: fall back to the reliable path (the
          // simulator's stand-in for TCP eventually delivering), so
          // recovery cannot fail while any replica lives.
          ok = true;
          ++recovery_.forced;
          if (observer_ != nullptr) {
            observer_->on_recovery(RecoveryEvent{phase, layer, letter.src,
                                                 letter.dst,
                                                 RecoveryAction::kForce,
                                                 attempt});
          }
        }
        if (!ok) continue;
        ++recovery_.promotions;
        const MsgEvent event{phase, layer, src_phys, dst_phys, bytes};
        if (trace_ != nullptr) trace_->add(event);
        if (timing_ != nullptr) {
          timing_->on_send(phase, layer, src_phys, bytes);
          timing_->on_recv(phase, layer, dst_phys, bytes);
        }
        if (observer_ != nullptr) {
          observer_->on_message(event);
          observer_->on_recovery(RecoveryEvent{phase, layer, letter.src,
                                               letter.dst,
                                               RecoveryAction::kPromote,
                                               attempt});
        }
        inboxes_[letter.dst].push_back(std::move(letter));
        break;
      }
    }
    undelivered_.clear();
  }

  /// Record every fully-dead replica group an alive node expected a letter
  /// from this round (once per distinct {phase, layer, group}).
  template <typename ExpectedFn>
  void detect_group_deaths(Phase phase, std::uint16_t layer,
                           ExpectedFn&& expected) {
    if (dead_groups_ == 0) return;
    for (rank_t j = 0; j < logical_; ++j) {
      if (alive_count_[j] == 0) continue;
      for (rank_t s : expected(j)) {
        if (s == j || s >= logical_ || alive_count_[s] != 0) continue;
        note_death(phase, layer, s, j);
      }
    }
  }

  void note_death(Phase phase, std::uint16_t layer, rank_t dead,
                  rank_t requester) {
    for (const DeathRecord& d : deaths_) {
      if (d.phase == phase && d.layer == layer && d.logical == dead) return;
    }
    KYLIX_CHECK_MSG(policy_.degraded_completion,
                    "replica group fully dead and degraded completion is "
                    "disabled (RecoveryPolicy)");
    deaths_.push_back(DeathRecord{phase, layer, dead});
    ++recovery_.group_deaths;
    if (observer_ != nullptr) {
      observer_->on_recovery(RecoveryEvent{
          phase, layer, dead, requester, RecoveryAction::kGroupDeath, 0});
    }
  }

  void snapshot_dead_at_start() {
    refresh_alive();
    dead_at_start_.assign(logical_, false);
    for (rank_t j = 0; j < logical_; ++j) {
      dead_at_start_[j] = alive_count_[j] == 0;
    }
    snapshot_taken_ = true;
  }

  /// Rebuild the per-group alive cache iff the FailureModel changed (its
  /// version() bumps on every kill/revive). clear()+push_back keeps each
  /// vector's capacity, so even rebuilds stop allocating once warm.
  void refresh_alive() const {
    const std::uint64_t version =
        failures_ == nullptr ? 0 : failures_->version();
    if (cache_built_ && version == cache_version_) return;
    if (alive_phys_.size() != static_cast<std::size_t>(logical_)) {
      alive_phys_.resize(logical_);
      alive_count_.resize(logical_);
    }
    dead_groups_ = 0;
    for (rank_t j = 0; j < logical_; ++j) {
      auto& alive = alive_phys_[j];
      alive.clear();
      for (std::uint32_t r = 0; r < replication_; ++r) {
        const rank_t p = physical(j, r);
        if (failures_ == nullptr || !failures_->is_dead(p)) {
          alive.push_back(p);
        }
      }
      alive_count_[j] = static_cast<std::uint32_t>(alive.size());
      if (alive.empty()) ++dead_groups_;
    }
    cache_version_ = version;
    cache_built_ = true;
  }

  rank_t logical_;
  std::uint32_t replication_;
  const FailureModel* failures_;
  Trace* trace_;
  TimingAccumulator* timing_;
  EngineObserver* observer_ = nullptr;
  FaultChannel<V>* channel_ = nullptr;
  RecoveryPolicy policy_;
  RaceStats races_;
  RecoveryStats recovery_;
  std::vector<DeathRecord> deaths_;
  std::vector<double> input_masses_;
  std::vector<bool> dead_at_start_;
  bool snapshot_taken_ = false;

  // Alive cache, revalidated against FailureModel::version().
  mutable std::vector<std::vector<rank_t>> alive_phys_;
  mutable std::vector<std::uint32_t> alive_count_;
  mutable rank_t dead_groups_ = 0;
  mutable std::uint64_t cache_version_ = 0;
  mutable bool cache_built_ = false;

  std::vector<std::vector<Letter<V>>> inboxes_;  ///< reused across rounds
  std::vector<Letter<V>> undelivered_;           ///< reused across rounds
};

}  // namespace kylix
