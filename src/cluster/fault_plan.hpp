// Deterministic, seeded fault schedules (the chaos engine's script).
//
// A FaultPlan extends the static FailureModel into a dynamic one: scripted
// crash/revive events fire at round boundaries (addressed by absolute round
// index or by the k-th occurrence of a {phase, layer} round), and per-edge
// transient faults — drop, duplicate, delay-by-k-rounds — perturb individual
// message copies. Everything is derived from one seed, so a chaos schedule
// replays bit-exactly: the same plan driven through the same engine produces
// the same crashes, the same classify() decisions, and the same stats.
//
// Engines consult the plan through one shared hook (comm/fault_channel.hpp):
// begin_round() at every round boundary, classify() once per transmitted
// copy. The plan owns its FailureModel, so scripted crashes are visible to
// the engine's ordinary dead-node handling with no extra plumbing.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/trace.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"

namespace kylix {

/// What happens to one transmitted message copy.
enum class FaultAction : std::uint8_t {
  kDeliver = 0,   ///< arrives normally
  kDrop = 1,      ///< lost on the wire; the sender still pays
  kDuplicate = 2, ///< arrives once but is retransmitted (double wire cost)
  kDelay = 3,     ///< misses this round; redelivered k rounds later
};

[[nodiscard]] const char* fault_action_name(FaultAction action);

struct FaultStats {
  std::uint64_t crashes = 0;     ///< scripted kill events fired
  std::uint64_t revivals = 0;    ///< scripted revive events fired
  std::uint64_t dropped = 0;     ///< copies classified kDrop
  std::uint64_t duplicated = 0;  ///< copies classified kDuplicate
  std::uint64_t delayed = 0;     ///< copies classified kDelay
};

class FaultPlan {
 public:
  explicit FaultPlan(rank_t num_nodes, std::uint64_t seed = 0);

  /// The plan's mutable failure state; hand `&plan.failures()` to engines
  /// (FaultChannel does this automatically when the engine has no model).
  [[nodiscard]] FailureModel& failures() { return failures_; }
  [[nodiscard]] const FailureModel& failures() const { return failures_; }
  [[nodiscard]] rank_t num_nodes() const { return failures_.num_nodes(); }

  // ---- scripted node events (fire at begin_round) ----

  /// Crash/revive `node` when round `round` (0-based, counted across every
  /// begin_round of the consuming engine's lifetime) begins.
  void crash_at_round(rank_t node, std::uint64_t round);
  void revive_at_round(rank_t node, std::uint64_t round);

  /// Crash/revive `node` when the `occurrence`-th round of {phase, layer}
  /// begins (occurrence 0 is the first such round; reduce() iterations
  /// revisit the same {phase, layer} signature, bumping the count).
  void crash_at(rank_t node, Phase phase, std::uint16_t layer,
                std::uint32_t occurrence = 0);
  void revive_at(rank_t node, Phase phase, std::uint16_t layer,
                 std::uint32_t occurrence = 0);

  /// Schedule `count` crashes of distinct uniformly-chosen victims, each at
  /// a uniform round in [0, round_horizon). Drawn from the plan's seed.
  void random_crashes(rank_t count, std::uint64_t round_horizon);

  // ---- per-edge transient faults (consulted by classify) ----

  /// A scripted fault on a specific physical edge; applies to the next
  /// `count` copies classified on (src, dst), then expires.
  struct EdgeRule {
    rank_t src = 0;
    rank_t dst = 0;
    FaultAction action = FaultAction::kDrop;
    std::uint32_t delay_rounds = 1;  ///< used when action == kDelay
    std::uint32_t count = 1;
  };
  void add_edge_rule(const EdgeRule& rule);

  /// Seeded background fault rates, applied per copy to edges with no
  /// matching rule. Phases can be masked out (e.g. keep configuration
  /// clean while battering the reduce passes).
  struct TransientRates {
    double drop = 0;
    double duplicate = 0;
    double delay = 0;
    std::uint32_t delay_rounds = 1;
    bool config = true;
    bool reduce_down = true;
    bool reduce_up = true;
  };
  void set_transient_rates(const TransientRates& rates);

  // ---- the shared delivery hook ----

  /// Round boundary: fires every scripted crash/revive event scheduled for
  /// this round, and arms/disarms the transient rates per the phase mask.
  void begin_round(Phase phase, std::uint16_t layer);

  struct Decision {
    FaultAction action = FaultAction::kDeliver;
    std::uint32_t delay_rounds = 0;
  };

  /// Classify one transmitted copy on edge (src, dst). Deterministic given
  /// the seed and the call sequence; sequential engines therefore replay
  /// exactly (the threaded engine's interleaving varies the sequence).
  [[nodiscard]] Decision classify(rank_t src, rank_t dst);

  /// Rounds begun so far; current_round() is the 0-based index of the round
  /// most recently begun (valid once rounds_begun() > 0).
  [[nodiscard]] std::uint64_t rounds_begun() const { return rounds_begun_; }
  [[nodiscard]] std::uint64_t current_round() const;

  /// True when the plan can ever perturb anything (events, rules, or
  /// rates); engines skip the hook entirely when no plan is attached.
  [[nodiscard]] bool scripted() const;

  [[nodiscard]] const FaultStats& stats() const { return stats_; }

 private:
  struct Event {
    bool crash = true;  ///< false: revive
    rank_t node = 0;
    bool by_round = true;
    std::uint64_t round = 0;  ///< when by_round
    Phase phase = Phase::kConfig;
    std::uint16_t layer = 0;
    std::uint32_t occurrence = 0;
    bool fired = false;
  };

  void note_action(FaultAction action);
  std::uint32_t bump_occurrence(Phase phase, std::uint16_t layer);

  FailureModel failures_;
  Rng rng_;
  std::vector<Event> events_;
  std::vector<EdgeRule> edge_rules_;
  TransientRates rates_;
  bool has_rates_ = false;
  bool rates_live_ = false;  ///< rates armed for the current round's phase
  FaultStats stats_;
  std::uint64_t rounds_begun_ = 0;
  /// Occurrence counters per (phase << 16 | layer); layers are few, so a
  /// linear-scanned flat vector beats a map.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> occurrences_;
};

}  // namespace kylix
