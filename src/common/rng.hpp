// Deterministic random number generation.
//
// All stochastic pieces of the library (graph generators, partitioners,
// failure injection) take an explicit Rng so every experiment is exactly
// reproducible from a seed. xoshiro256** is used for speed; independent
// streams are derived by splitmix64-jumping the seed.
#pragma once

#include <array>
#include <cstdint>

#include "common/hash.hpp"

namespace kylix {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x6b796c6978ULL) { reseed(seed); }

  /// Re-initialize state from a single 64-bit seed via splitmix64 expansion.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) {
      seed += 0x9e3779b97f4a7c15ULL;
      word = hash_index(seed);
    }
  }

  /// Derive an independent stream for sub-component `id` (e.g. per machine).
  [[nodiscard]] Rng fork(std::uint64_t id) const {
    return Rng(mix64(state_[0] ^ mix64(id)));
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire's nearly-divisionless bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Poisson sample; Knuth for small rates, normal approximation above.
  std::uint64_t poisson(double rate) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace kylix
