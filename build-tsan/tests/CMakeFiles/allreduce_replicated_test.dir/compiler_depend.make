# Empty compiler generated dependencies file for allreduce_replicated_test.
# This may be replaced when dependencies are built.
