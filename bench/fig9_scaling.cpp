// Figure 9 — PageRank compute/communication breakdown and speedup vs.
// cluster size (4 … 64 machines), both datasets.
//
// Paper result: roughly linear scaling with 7-11x speedup at 64 nodes over
// the 4-node baseline (ideal 16x), with communication dominating beyond 32
// nodes (75-90% of iteration time at 64). Butterfly degrees are re-tuned
// per cluster size by the §IV workflow, as in the paper.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace kylix;

void run(const std::string& which) {
  std::printf("\n== %s ==\n", which.c_str());
  std::printf("%-10s %-14s %-12s %-12s %-10s %-10s\n", "machines",
              "degrees", "compute_s", "comm_s", "total_s", "speedup");
  double base_total = 0;
  for (rank_t m : {4u, 8u, 16u, 32u, 64u}) {
    const bench::Dataset data = bench::make_dataset(which, m);
    const Topology topo(bench::tune(data.spec.num_vertices,
                                    data.spec.alpha_in,
                                    data.measured_density, m)
                            .degrees);

    const NetworkModel net = bench::scaled_network();
    const ComputeModel compute;
    TimingAccumulator timing(m, net, compute, 16);
    BspEngine<real_t> engine(m, nullptr, nullptr, &timing);
    DistributedPageRank<BspEngine<real_t>> pagerank(
        &engine, topo, data.partitions, data.spec.num_vertices, &compute,
        &timing);
    DistributedPageRank<BspEngine<real_t>>::Options options;
    options.iterations = 3;
    const auto result = pagerank.run(options);

    const double compute_s = result.mean_compute_s();
    const double comm_s = result.mean_comm_s();
    const double total = compute_s + comm_s;
    if (m == 4) base_total = total;
    std::printf("%-10u %-14s %-12.4f %-12.4f %-10.4f %-10.2fx\n", m,
                topo.to_string().c_str(), compute_s, comm_s, total,
                base_total / total);
  }
  std::printf("(paper: 7-11x speedup at 64 nodes, comm takes 75-90%% of "
              "the iteration there)\n");
}

}  // namespace

int main() {
  std::printf("# Figure 9: compute/comm breakdown and speedup vs cluster "
              "size\n");
  run("twitter");
  run("yahoo");
  return 0;
}
