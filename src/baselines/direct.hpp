// The comparison topologies of §II-A and Fig. 6.
//
// Direct all-to-all allreduce (every feature has a home node, m-1 messages
// per machine per round) is exactly a one-layer degree-m butterfly, and the
// binary butterfly is the all-twos schedule — so both baselines are the
// same verified SparseAllreduce code on degenerate topologies, mirroring how
// the paper frames them as endpoints of the design space ("the best
// approach is a hybrid between butterfly and direct all-to-all", §IX).
#pragma once

#include "core/allreduce.hpp"

namespace kylix {

/// One-layer degree-m butterfly == direct all-to-all with hashed home nodes.
template <typename V, typename Op, typename Engine>
[[nodiscard]] SparseAllreduce<V, Op, Engine> make_direct_allreduce(
    Engine* engine, const ComputeModel* compute = nullptr) {
  return SparseAllreduce<V, Op, Engine>(
      engine, Topology::direct(engine->num_ranks()), compute);
}

/// log2(m) layers of degree 2; m must be a power of two.
template <typename V, typename Op, typename Engine>
[[nodiscard]] SparseAllreduce<V, Op, Engine> make_binary_allreduce(
    Engine* engine, const ComputeModel* compute = nullptr) {
  return SparseAllreduce<V, Op, Engine>(
      engine, Topology::binary(engine->num_ranks()), compute);
}

}  // namespace kylix
