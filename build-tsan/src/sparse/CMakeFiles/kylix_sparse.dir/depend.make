# Empty dependencies file for kylix_sparse.
# This may be replaced when dependencies are built.
