# Empty compiler generated dependencies file for mailbox_test.
# This may be replaced when dependencies are built.
