// Minimal streaming JSON emitter shared by the telemetry exporters (metrics
// registry, Chrome traces, run reports, BENCH_*.json artifacts).
//
// Handles nesting and comma placement; numbers print with enough digits to
// round-trip doubles. No external dependency (the container only has the C++
// toolchain). Writes to any std::ostream so the same code serves files,
// string buffers in tests, and stdout.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string>

namespace kylix::obs {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(const std::string& name) {
    comma();
    quote(name);
    out_ << ':';
    pending_value_ = true;
  }

  void value(const std::string& s) {
    scalar([&] { quote(s); });
  }
  void value(const char* s) { value(std::string(s)); }
  void value(double v) {
    scalar([&] {
      // JSON has no Infinity/NaN literals; clamp to null.
      if (!std::isfinite(v)) {
        out_ << "null";
        return;
      }
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out_ << buf;
    });
  }
  void value(std::uint64_t v) {
    scalar([&] { out_ << v; });
  }
  void value(int v) {
    scalar([&] { out_ << v; });
  }
  void value(unsigned v) {
    scalar([&] { out_ << v; });
  }
  void value(bool v) {
    scalar([&] { out_ << (v ? "true" : "false"); });
  }

  template <typename T>
  void key_value(const std::string& name, T v) {
    key(name);
    value(v);
  }
  void key_value(const std::string& name, const std::string& v) {
    key(name);
    value(v);
  }

 private:
  template <typename Fn>
  void scalar(Fn&& emit) {
    if (!pending_value_) comma();
    pending_value_ = false;
    emit();
    first_ = false;
  }

  void open(char c) {
    if (!pending_value_) comma();
    pending_value_ = false;
    out_ << c;
    first_ = true;
  }

  void close(char c) {
    out_ << c;
    first_ = false;
  }

  void comma() {
    if (!first_) out_ << ',';
    first_ = false;
  }

  void quote(const std::string& s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\t':
          out_ << "\\t";
          break;
        case '\r':
          out_ << "\\r";
          break;
        case '\b':
          out_ << "\\b";
          break;
        case '\f':
          out_ << "\\f";
          break;
        default:
          // RFC 8259: all other control characters must be \u-escaped.
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostream& out_;
  bool first_ = true;
  bool pending_value_ = false;
};

}  // namespace kylix::obs
