#include "sparse/merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"

namespace kylix {
namespace {

std::vector<key_t> random_sorted_unique(Rng& rng, std::size_t size,
                                        key_t universe) {
  std::set<key_t> keys;
  while (keys.size() < size) keys.insert(rng.below(universe));
  return std::vector<key_t>(keys.begin(), keys.end());
}

/// The defining property of a union-with-maps: union[map[p]] == input[p].
void expect_maps_valid(const UnionResult& result,
                       const std::vector<std::vector<key_t>>& inputs) {
  ASSERT_EQ(result.maps.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_EQ(result.maps[i].size(), inputs[i].size()) << "input " << i;
    for (std::size_t p = 0; p < inputs[i].size(); ++p) {
      ASSERT_LT(result.maps[i][p], result.keys.size());
      EXPECT_EQ(result.keys[result.maps[i][p]], inputs[i][p])
          << "input " << i << " position " << p;
    }
  }
}

std::vector<key_t> set_union_oracle(
    const std::vector<std::vector<key_t>>& inputs) {
  std::set<key_t> u;
  for (const auto& in : inputs) u.insert(in.begin(), in.end());
  return std::vector<key_t>(u.begin(), u.end());
}

TEST(MergeUnion, DisjointInputsConcatenate) {
  const UnionResult r = merge_union(std::vector<key_t>{1, 3, 5},
                                    std::vector<key_t>{2, 4, 6});
  EXPECT_EQ(r.keys, (std::vector<key_t>{1, 2, 3, 4, 5, 6}));
  expect_maps_valid(r, {{1, 3, 5}, {2, 4, 6}});
}

TEST(MergeUnion, OverlappingKeysCollapse) {
  const UnionResult r = merge_union(std::vector<key_t>{1, 2, 3},
                                    std::vector<key_t>{2, 3, 4});
  EXPECT_EQ(r.keys, (std::vector<key_t>{1, 2, 3, 4}));
  expect_maps_valid(r, {{1, 2, 3}, {2, 3, 4}});
  // Shared keys map to the same union slot (this is what makes reduction
  // collapse sparse contributions).
  EXPECT_EQ(r.maps[0][1], r.maps[1][0]);
  EXPECT_EQ(r.maps[0][2], r.maps[1][1]);
}

TEST(MergeUnion, EmptySides) {
  const std::vector<key_t> some = {7, 9};
  UnionResult r = merge_union(some, {});
  EXPECT_EQ(r.keys, some);
  r = merge_union({}, some);
  EXPECT_EQ(r.keys, some);
  r = merge_union({}, {});
  EXPECT_TRUE(r.keys.empty());
}

TEST(MergeUnion, IdenticalInputsGiveIdentityMaps) {
  const std::vector<key_t> keys = {1, 5, 9};
  const UnionResult r = merge_union(keys, keys);
  EXPECT_EQ(r.keys, keys);
  for (std::size_t p = 0; p < keys.size(); ++p) {
    EXPECT_EQ(r.maps[0][p], p);
    EXPECT_EQ(r.maps[1][p], p);
  }
}

class TreeMergeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeMergeTest, MatchesOracleWithValidMaps) {
  const std::size_t ways = GetParam();
  Rng rng(ways);
  std::vector<std::vector<key_t>> inputs;
  for (std::size_t i = 0; i < ways; ++i) {
    inputs.push_back(random_sorted_unique(rng, 20 + rng.below(50), 300));
  }
  const UnionResult r = tree_merge(inputs);
  EXPECT_EQ(r.keys, set_union_oracle(inputs));
  expect_maps_valid(r, inputs);
}

INSTANTIATE_TEST_SUITE_P(Ways, TreeMergeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 64));

TEST(TreeMerge, ZeroInputsGivesEmpty) {
  const UnionResult r = tree_merge(std::vector<std::vector<key_t>>{});
  EXPECT_TRUE(r.keys.empty());
  EXPECT_TRUE(r.maps.empty());
}

TEST(TreeMerge, SomeInputsEmpty) {
  std::vector<std::vector<key_t>> inputs = {{}, {1, 2}, {}, {2, 3}, {}};
  const UnionResult r = tree_merge(inputs);
  EXPECT_EQ(r.keys, (std::vector<key_t>{1, 2, 3}));
  expect_maps_valid(r, inputs);
}

TEST(TreeMerge, HeavilyOverlappingPowerLawLikeInputs) {
  // Mimics the workload the merge exists for: many sets sharing a hot head.
  Rng rng(77);
  std::vector<std::vector<key_t>> inputs;
  for (int i = 0; i < 16; ++i) {
    std::set<key_t> keys;
    for (int j = 0; j < 40; ++j) keys.insert(rng.below(30));    // hot head
    for (int j = 0; j < 10; ++j) keys.insert(rng.below(10000));  // tail
    inputs.emplace_back(keys.begin(), keys.end());
  }
  const UnionResult r = tree_merge(inputs);
  EXPECT_EQ(r.keys, set_union_oracle(inputs));
  expect_maps_valid(r, inputs);
  // Collapse happened: the union is far smaller than the total input.
  std::size_t total = 0;
  for (const auto& in : inputs) total += in.size();
  EXPECT_LT(r.keys.size(), total / 2);
}

TEST(TreeMergeScratch, ReusedScratchMatchesFreshCallsAcrossShapes) {
  // One scratch + one output driven through wildly varying input shapes —
  // exactly how KylixNode reuses them layer after layer — must produce the
  // same result as a fresh allocating call every time.
  Rng rng(123);
  MergeScratch scratch;
  UnionResult out;
  for (std::size_t ways : {5u, 1u, 16u, 2u, 64u, 3u, 0u, 7u}) {
    std::vector<std::vector<key_t>> inputs;
    for (std::size_t i = 0; i < ways; ++i) {
      inputs.push_back(random_sorted_unique(rng, 5 + rng.below(80), 400));
    }
    std::vector<std::span<const key_t>> spans(inputs.begin(), inputs.end());
    tree_merge_into(spans, out, scratch);
    const UnionResult fresh = tree_merge(spans);
    EXPECT_EQ(out.keys, fresh.keys) << ways << " ways";
    EXPECT_EQ(out.maps, fresh.maps) << ways << " ways";
    expect_maps_valid(out, inputs);
  }
}

TEST(TreeMergeScratch, EmptyAndSingleInputEdgeCases) {
  MergeScratch scratch;
  UnionResult out;
  // Pre-dirty the output with an unrelated merge.
  const std::vector<std::vector<key_t>> dirty = {{1, 2, 3}, {4, 5}};
  std::vector<std::span<const key_t>> dirty_spans(dirty.begin(), dirty.end());
  tree_merge_into(dirty_spans, out, scratch);

  // k == 0: everything clears.
  tree_merge_into({}, out, scratch);
  EXPECT_TRUE(out.keys.empty());
  EXPECT_TRUE(out.maps.empty());

  // k == 1: identity map, keys copied.
  const std::vector<key_t> single = {10, 20, 30};
  const std::span<const key_t> single_span(single);
  tree_merge_into(std::span<const std::span<const key_t>>(&single_span, 1),
                  out, scratch);
  EXPECT_EQ(out.keys, single);
  ASSERT_EQ(out.maps.size(), 1u);
  EXPECT_EQ(out.maps[0], (PosMap{0, 1, 2}));

  // All-empty inputs: empty union with empty-but-present maps.
  const std::vector<std::vector<key_t>> empties(5);
  std::vector<std::span<const key_t>> empty_spans(empties.begin(),
                                                  empties.end());
  tree_merge_into(empty_spans, out, scratch);
  EXPECT_TRUE(out.keys.empty());
  ASSERT_EQ(out.maps.size(), 5u);
  for (const PosMap& map : out.maps) EXPECT_TRUE(map.empty());
}

TEST(MergeUnionInto, ReusesCallerBuffers) {
  const std::vector<key_t> a = {1, 4, 6};
  const std::vector<key_t> b = {2, 4, 9};
  std::vector<key_t> keys = {99, 98, 97, 96, 95};  // stale content
  PosMap map_a = {7, 7, 7, 7};
  PosMap map_b;
  merge_union_into(a, b, keys, map_a, map_b);
  EXPECT_EQ(keys, (std::vector<key_t>{1, 2, 4, 6, 9}));
  EXPECT_EQ(map_a, (PosMap{0, 2, 3}));
  EXPECT_EQ(map_b, (PosMap{1, 2, 4}));
}

class HashUnionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashUnionTest, SameSetAsTreeMergeWithValidMaps) {
  const std::size_t ways = GetParam();
  Rng rng(1000 + ways);
  std::vector<std::vector<key_t>> input_vecs;
  for (std::size_t i = 0; i < ways; ++i) {
    input_vecs.push_back(random_sorted_unique(rng, 30, 200));
  }
  std::vector<std::span<const key_t>> inputs(input_vecs.begin(),
                                             input_vecs.end());
  const UnionResult r = hash_union(inputs);
  // hash_union's union is insertion-ordered, not sorted; compare as sets.
  std::vector<key_t> sorted = r.keys;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, set_union_oracle(input_vecs));
  expect_maps_valid(r, input_vecs);
}

INSTANTIATE_TEST_SUITE_P(Ways, HashUnionTest, ::testing::Values(1, 2, 8, 16));

}  // namespace
}  // namespace kylix
