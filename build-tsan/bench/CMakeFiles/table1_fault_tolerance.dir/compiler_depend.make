# Empty compiler generated dependencies file for table1_fault_tolerance.
# This may be replaced when dependencies are built.
