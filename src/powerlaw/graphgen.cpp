#include "powerlaw/graphgen.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "powerlaw/model.hpp"
#include "powerlaw/zipf.hpp"

namespace kylix {

std::vector<Edge> generate_zipf_graph(const GraphSpec& spec) {
  KYLIX_CHECK(spec.num_vertices >= 1);
  Rng rng(spec.seed);
  const ZipfSampler src_sampler(spec.num_vertices, spec.alpha_out);
  const ZipfSampler dst_sampler(spec.num_vertices, spec.alpha_in);
  std::vector<Edge> edges;
  edges.reserve(spec.num_edges);
  for (std::uint64_t e = 0; e < spec.num_edges; ++e) {
    edges.push_back(Edge{src_sampler(rng) - 1, dst_sampler(rng) - 1});
  }
  return edges;
}

std::vector<Edge> generate_rmat(std::uint32_t scale, std::uint64_t num_edges,
                                std::uint64_t seed, double a, double b,
                                double c) {
  KYLIX_CHECK(scale >= 1 && scale < 63);
  KYLIX_CHECK(a > 0 && b >= 0 && c >= 0 && a + b + c < 1.0);
  Rng rng(seed);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (std::uint64_t e = 0; e < num_edges; ++e) {
    std::uint64_t src = 0;
    std::uint64_t dst = 0;
    for (std::uint32_t bit = 0; bit < scale; ++bit) {
      const double u = rng.uniform();
      src <<= 1;
      dst <<= 1;
      if (u < a) {
        // top-left quadrant: neither bit set
      } else if (u < a + b) {
        dst |= 1;
      } else if (u < a + b + c) {
        src |= 1;
      } else {
        src |= 1;
        dst |= 1;
      }
    }
    edges.push_back(Edge{src, dst});
  }
  return edges;
}

std::vector<std::vector<Edge>> random_edge_partition(
    std::span<const Edge> edges, std::uint32_t num_machines,
    std::uint64_t seed) {
  KYLIX_CHECK(num_machines >= 1);
  Rng rng(mix64(seed));
  std::vector<std::vector<Edge>> parts(num_machines);
  const std::size_t expected = edges.size() / num_machines + 1;
  for (auto& p : parts) p.reserve(expected);
  for (const Edge& e : edges) {
    parts[rng.below(num_machines)].push_back(e);
  }
  return parts;
}

std::uint64_t edges_for_partition_density(std::uint64_t num_vertices,
                                          double alpha_in,
                                          std::uint32_t num_machines,
                                          double target_density) {
  const PowerLawModel model(num_vertices, alpha_in);
  const double lambda0 = model.lambda_for_density(target_density);
  const double edges =
      static_cast<double>(num_machines) * lambda0 * model.harmonic();
  return static_cast<std::uint64_t>(edges);
}

GraphSpec twitter_like(std::uint64_t num_vertices) {
  GraphSpec spec;
  spec.num_vertices = num_vertices;
  spec.alpha_out = 1.25;  // follower out-degrees are a bit steeper
  spec.alpha_in = 1.1;
  spec.num_edges =
      edges_for_partition_density(num_vertices, spec.alpha_in, 64, 0.21);
  spec.seed = 20140901;  // ICPP'14
  spec.name = "twitter-like";
  return spec;
}

GraphSpec yahoo_like(std::uint64_t num_vertices) {
  GraphSpec spec;
  spec.num_vertices = num_vertices;
  spec.alpha_out = 1.0;
  spec.alpha_in = 0.9;
  spec.num_edges =
      edges_for_partition_density(num_vertices, spec.alpha_in, 64, 0.035);
  spec.seed = 20140902;
  spec.name = "yahoo-like";
  return spec;
}

double measure_partition_density(
    const std::vector<std::vector<Edge>>& partitions,
    std::uint64_t num_vertices) {
  KYLIX_CHECK(!partitions.empty());
  KYLIX_CHECK(num_vertices >= 1);
  double total = 0.0;
  for (const auto& part : partitions) {
    std::vector<index_t> dsts;
    dsts.reserve(part.size());
    for (const Edge& e : part) dsts.push_back(e.dst);
    const KeySet unique = KeySet::from_indices(dsts);
    total += static_cast<double>(unique.size()) /
             static_cast<double>(num_vertices);
  }
  return total / static_cast<double>(partitions.size());
}

}  // namespace kylix
