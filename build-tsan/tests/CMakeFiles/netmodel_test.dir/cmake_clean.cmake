file(REMOVE_RECURSE
  "CMakeFiles/netmodel_test.dir/cluster/netmodel_test.cpp.o"
  "CMakeFiles/netmodel_test.dir/cluster/netmodel_test.cpp.o.d"
  "netmodel_test"
  "netmodel_test.pdb"
  "netmodel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
