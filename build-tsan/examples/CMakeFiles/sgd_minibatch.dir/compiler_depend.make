# Empty compiler generated dependencies file for sgd_minibatch.
# This may be replaced when dependencies are built.
