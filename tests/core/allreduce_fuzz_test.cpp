// Randomized end-to-end fuzzing of the sparse allreduce: arbitrary degree
// schedules, skewed and degenerate workloads, all reduction ops, both
// separate and combined modes — every run checked against the brute-force
// oracle. The mode-equivalence suite additionally pins the three execution
// paths to each other: reduce_with_config() == configure()+reduce() ==
// cached-plan replay, bit for bit, across iterations.
#include <gtest/gtest.h>

#include "comm/bsp.hpp"
#include "core/allreduce.hpp"
#include "core/plan_cache.hpp"
#include "powerlaw/zipf.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

std::vector<std::uint32_t> random_schedule(Rng& rng) {
  // 0-4 layers of degree 2-5: machine counts from 1 to 625.
  const std::uint64_t layers = rng.below(5);
  std::vector<std::uint32_t> degrees;
  for (std::uint64_t i = 0; i < layers; ++i) {
    degrees.push_back(static_cast<std::uint32_t>(2 + rng.below(4)));
  }
  return degrees;
}

class AllreduceFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllreduceFuzzTest, RandomTopologyAndWorkloadMatchesOracle) {
  Rng rng(mix64(GetParam()));
  const Topology topo(random_schedule(rng));
  const rank_t m = topo.num_machines();
  const auto features = 20 + rng.below(300);
  const double out_prob = 0.02 + rng.uniform() * 0.6;
  const double in_prob = 0.02 + rng.uniform() * 0.8;
  const auto w = testing::random_workload<float>(m, features, out_prob,
                                                 in_prob, rng());
  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  if (rng.below(2) == 0) {
    allreduce.configure(w.in_sets, w.out_sets);
    testing::expect_matches_oracle<float>(w, allreduce.reduce(w.out_values));
  } else {
    testing::expect_matches_oracle<float>(
        w,
        allreduce.reduce_with_config(w.in_sets, w.out_sets, w.out_values));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllreduceFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 40));

class ModeEquivalenceFuzzTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModeEquivalenceFuzzTest, AllThreePathsAgreeBitForBitAcrossIterations) {
  // Per seed: random topology, then 4 iterations of changing values over
  // changing set sequences. Iterations alternate between two workloads, so
  // the cached-plan path sees misses (fresh sets) and real hits (repeats);
  // every iteration asserts reduce_with_config == configure+reduce ==
  // cached replay, element for element.
  Rng rng(mix64(GetParam() + 5000));
  const Topology topo(random_schedule(rng));
  const rank_t m = topo.num_machines();
  auto wa = testing::random_workload<float>(m, 20 + rng.below(200),
                                            0.05 + rng.uniform() * 0.5,
                                            0.05 + rng.uniform() * 0.7,
                                            rng());
  auto wb = testing::random_workload<float>(m, 20 + rng.below(200),
                                            0.05 + rng.uniform() * 0.5,
                                            0.05 + rng.uniform() * 0.7,
                                            rng());
  BspEngine<float> engine(m);
  PlanCache cache(4);
  SparseAllreduce<float, OpSum, BspEngine<float>> cached(&engine, topo);
  std::uint64_t expected_hits = 0;
  for (int iter = 0; iter < 4; ++iter) {
    SCOPED_TRACE("iteration " + std::to_string(iter));
    auto& w = iter % 2 == 0 ? wa : wb;
    for (auto& values : w.out_values) {
      for (auto& v : values) v += static_cast<float>(iter);
    }

    SparseAllreduce<float, OpSum, BspEngine<float>> fresh(&engine, topo);
    fresh.configure(w.in_sets, w.out_sets);
    const auto separate = fresh.reduce(w.out_values);
    testing::expect_matches_oracle<float>(w, separate);

    SparseAllreduce<float, OpSum, BspEngine<float>> combined(&engine, topo);
    EXPECT_EQ(
        combined.reduce_with_config(w.in_sets, w.out_sets, w.out_values),
        separate);

    const bool hit = cached.configure_cached(cache, w.in_sets, w.out_sets);
    EXPECT_EQ(hit, iter >= 2) << "set sequence repeats with period 2";
    if (hit) ++expected_hits;
    EXPECT_EQ(cached.reduce(w.out_values), separate);
  }
  EXPECT_EQ(cache.hits(), expected_hits);
  EXPECT_EQ(cache.misses(), 4 - expected_hits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModeEquivalenceFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 25));

class ZipfWorkloadFuzzTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ZipfWorkloadFuzzTest, PowerLawSkewedSetsMatchOracle) {
  // Heavily skewed sets (the production workload shape): a hot head shared
  // by everyone, plus machine-specific tails.
  Rng rng(mix64(GetParam() + 1000));
  const Topology topo(random_schedule(rng));
  const rank_t m = topo.num_machines();
  const ZipfSampler zipf(5000, 0.8 + rng.uniform());

  testing::Workload<std::uint32_t> w;
  for (rank_t r = 0; r < m; ++r) {
    std::vector<index_t> ids;
    const std::uint64_t draws = 30 + rng.below(400);
    for (std::uint64_t d = 0; d < draws; ++d) {
      ids.push_back(zipf(rng) - 1);
    }
    w.out_sets.push_back(KeySet::from_indices(ids));
    std::vector<std::uint32_t> values;
    for (std::size_t p = 0; p < w.out_sets.back().size(); ++p) {
      values.push_back(static_cast<std::uint32_t>(rng.below(1000)));
    }
    w.out_values.push_back(std::move(values));
    // Request a prefix-biased subset of what this machine contributed.
    std::vector<index_t> wanted;
    for (index_t id : ids) {
      if (rng.below(3) != 0) wanted.push_back(id);
    }
    if (wanted.empty()) wanted.push_back(ids.front());
    w.in_sets.push_back(KeySet::from_indices(wanted));
  }

  BspEngine<std::uint32_t> engine(m);
  SparseAllreduce<std::uint32_t, OpMin, BspEngine<std::uint32_t>> allreduce(
      &engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  testing::expect_matches_oracle<std::uint32_t, OpMin>(
      w, allreduce.reduce(w.out_values));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZipfWorkloadFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace kylix
