// The host-parallel simulation engine.
//
// Same round semantics and observer behavior as BspEngine, but the two
// embarrassingly-parallel halves of a round — every rank's produce and every
// rank's consume — run across a persistent ThreadPool. The sequential parts
// that define observable order (trace events, modeled send/receive timing,
// failure drops) stay on the calling thread, so results, traces, and timing
// reports are bit-identical to BspEngine:
//
//   1. Parallel produce: rank r's letters are staged into outboxes_[r] in
//      production order. Workers touch only their own rank's node.
//   2. Sequential delivery: outboxes are drained in (rank, production) order
//      — exactly the order BspEngine emits trace/timing events in — applying
//      failure drops and appending to the destination inboxes.
//   3. Parallel consume: each rank sorts its inbox by source and consumes
//      it. charge_compute() calls made by consumers land in per-rank buffers
//      (no contention: one consume per rank) and are flushed to the timing
//      accumulator in ascending rank order after the batch, matching the
//      sequential engine's accumulation order exactly (floating-point
//      addition order included).
//
// Inboxes and outboxes persist across rounds, so the steady-state letter
// recycling economy of the node layer is preserved: shells keep their
// capacity, and rounds allocate nothing once warm.
//
// Scaling: the pool claims contiguous rank shards (one atomic per shard, not
// per rank), debug sender checks reuse per-worker scratch indexed by
// ThreadPool::worker_id(), and pin_workers() optionally binds workers to
// CPUs so a rank's node state keeps its cache home across rounds. The
// hierarchical intra-node stage (intra_round) runs hosts across the pool —
// hosts are independent by construction (each leader touches only its own
// members' buffers, and the timing accumulator preallocates distinct
// per-rank slots), so no buffering or locking is needed there.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/timing.hpp"
#include "cluster/trace.hpp"
#include "comm/fault_channel.hpp"
#include "comm/packet.hpp"
#include "common/check.hpp"
#include "common/thread_pool.hpp"
#include "obs/observer.hpp"

namespace kylix {

template <typename V>
class ParallelBspEngine {
 public:
  /// `threads` counts the calling thread (0 = hardware concurrency); all
  /// observer pointers are optional and not owned. With threads == 1 the
  /// engine degenerates to BspEngine's exact control flow.
  explicit ParallelBspEngine(rank_t num_nodes, unsigned threads = 0,
                             const FailureModel* failures = nullptr,
                             Trace* trace = nullptr,
                             TimingAccumulator* timing = nullptr)
      : num_nodes_(num_nodes),
        pool_(threads),
        failures_(failures),
        trace_(trace),
        timing_(timing),
        outboxes_(num_nodes),
        inboxes_(num_nodes),
        pending_compute_(num_nodes),
        debug_senders_(pool_.num_threads()) {
    KYLIX_CHECK(num_nodes >= 1);
    KYLIX_CHECK_MSG(failures == nullptr || failures->num_nodes() >= num_nodes,
                    "FailureModel covers fewer ranks than the engine");
  }

  [[nodiscard]] rank_t num_ranks() const { return num_nodes_; }
  [[nodiscard]] unsigned num_threads() const { return pool_.num_threads(); }

  /// Affinity-aware placement: bind each pool worker to a CPU so rank
  /// shards keep their cache home across rounds (Linux; no-op elsewhere).
  void pin_workers() { pool_.pin_workers(); }

  [[nodiscard]] bool is_dead(rank_t rank) const {
    return failures_ != nullptr && failures_->is_dead(rank);
  }

  /// Degraded completion around dead ranks; see BspEngine::has_failed().
  [[nodiscard]] bool has_failed() const {
    return failures_ != nullptr && failures_->num_dead() > 0;
  }
  [[nodiscard]] bool degraded_allowed() const { return true; }

  /// Telemetry hook (src/obs); optional and not owned, like trace/timing.
  /// Hooks fire from the sequential half of the round, so observers see the
  /// same event order as with BspEngine.
  void set_observer(EngineObserver* observer) { observer_ = observer; }

  /// Attach a chaos-engine fault channel (optional, not owned, one engine
  /// per channel). Classification happens in the sequential delivery stage,
  /// so the plan's RNG is consumed in the same order as with BspEngine and
  /// results stay bit-identical across the two engines.
  void set_fault_channel(FaultChannel<V>* channel) {
    channel_ = channel;
    if (channel_ != nullptr && failures_ == nullptr) {
      failures_ = &channel_->plan().failures();
    }
    KYLIX_CHECK_MSG(
        channel_ == nullptr ||
            channel_->plan().num_nodes() >= num_nodes_,
        "FaultPlan covers fewer ranks than the engine");
  }

  /// Messages transmitted to dead destinations (sender paid, nothing
  /// arrived) since construction.
  [[nodiscard]] std::uint64_t dropped_messages() const { return dropped_; }

  /// Outside a round (e.g. the begin_up charge) this forwards directly to
  /// the accumulator; during the parallel consume half it buffers per rank.
  void charge_compute(Phase phase, std::uint16_t layer, rank_t rank,
                      double seconds) {
    if (timing_ == nullptr) return;
    if (collecting_) {
      pending_compute_[rank].push_back(ComputeEvent{phase, layer, seconds});
    } else {
      timing_->on_compute(phase, layer, rank, seconds);
    }
  }

  /// Intra-tier charges always forward directly: the accumulator holds
  /// preallocated per-rank slots and each host's ranks are charged by
  /// exactly one intra_round worker, so concurrent charges never alias.
  void charge_intra(Phase phase, rank_t rank, double seconds) {
    if (timing_ != nullptr) timing_->on_intra(phase, rank, seconds);
  }

  /// Intra-node stage of a hierarchical topology: hosts are mutually
  /// independent (a leader reduces only from its own members' buffers), so
  /// they run across the pool. No letters, trace, or observer events — the
  /// shared-memory tier has nothing on the wire to record.
  template <typename Fn>
  void intra_round(Phase phase, rank_t num_hosts, Fn&& fn) {
    (void)phase;
    pool_.parallel_for(num_hosts,
                       [&](std::size_t h) { fn(static_cast<rank_t>(h)); });
  }

  template <typename ProduceFn, typename ExpectedFn, typename ConsumeFn>
  void round(Phase phase, std::uint16_t layer, ProduceFn&& produce,
             ExpectedFn&& expected, ConsumeFn&& consume) {
    // Scripted crashes fire before produce, exactly as in BspEngine.
    if (channel_ != nullptr) channel_->begin_round(phase, layer);
    if (observer_ != nullptr) observer_->on_round_begin(phase, layer);
    // 1. Parallel produce into per-rank staging outboxes.
    pool_.parallel_for(num_nodes_, [&](std::size_t r) {
      const rank_t rank = static_cast<rank_t>(r);
      auto& outbox = outboxes_[rank];
      outbox.clear();
      if (is_dead(rank)) return;
      for (Letter<V>& letter : produce(rank)) {
        KYLIX_DCHECK(letter.src == rank);
        KYLIX_CHECK_MSG(letter.dst < num_nodes_, "letter to invalid rank");
        outbox.push_back(std::move(letter));
      }
    });

    // 2. Sequential delivery in (rank, production) order — the event order
    // BspEngine produces — so traces and modeled timing match exactly.
    // The staged outboxes give the exact round size up front, so the trace
    // can reserve once instead of growing mid-round.
    if (trace_ != nullptr) {
      std::size_t staged = 0;
      for (const auto& outbox : outboxes_) staged += outbox.size();
      trace_->reserve(staged);
    }
    for (auto& inbox : inboxes_) inbox.clear();
    for (rank_t rank = 0; rank < num_nodes_; ++rank) {
      for (Letter<V>& letter : outboxes_[rank]) {
        const std::uint64_t bytes = letter.packet.wire_bytes();
        const MsgEvent event{phase, layer, letter.src, letter.dst, bytes};
        if (trace_ != nullptr) trace_->add(event);
        if (timing_ != nullptr) timing_->on_message(event);
        if (observer_ != nullptr) observer_->on_message(event);
        // A send to a dead node costs the sender but never arrives.
        if (failures_ != nullptr && failures_->is_dead(letter.dst)) {
          ++dropped_;
          if (observer_ != nullptr) observer_->on_drop(event);
          continue;
        }
        if (channel_ != nullptr) {
          const FaultAction action = channel_->route(phase, layer, letter);
          if (action != FaultAction::kDeliver) {
            if (observer_ != nullptr) observer_->on_fault(event, action);
            if (action == FaultAction::kDuplicate) {
              // The wire carried the letter twice; charge the second copy.
              if (trace_ != nullptr) trace_->add(event);
              if (timing_ != nullptr) timing_->on_message(event);
              if (observer_ != nullptr) observer_->on_message(event);
            } else {
              continue;  // kDrop is lost; kDelay is stashed in the channel.
            }
          }
        }
        inboxes_[letter.dst].push_back(std::move(letter));
      }
    }
    if (channel_ != nullptr) drain_due(phase, layer);

    // 3. Parallel consume; compute charges buffer per rank (one consumer
    // per rank, so the buffers are contention-free).
    collecting_ = timing_ != nullptr;
    pool_.parallel_for(num_nodes_, [&](std::size_t r) {
      const rank_t rank = static_cast<rank_t>(r);
      if (is_dead(rank)) return;
      auto& inbox = inboxes_[rank];
      std::sort(inbox.begin(), inbox.end(), letter_before<V>);
#ifndef NDEBUG
      if (!inbox.empty()) {
        // Sanity: only expected senders may appear (sorted + binary
        // search). Per-worker scratch: no allocation once warm, no locks.
        auto& senders = debug_senders_[ThreadPool::worker_id()];
        senders.assign(expected(rank).begin(), expected(rank).end());
        std::sort(senders.begin(), senders.end());
        for (const Letter<V>& letter : inbox) {
          KYLIX_DCHECK(
              std::binary_search(senders.begin(), senders.end(), letter.src));
        }
      }
#else
      (void)expected;
#endif
      consume(rank, std::move(inbox));
    });
    collecting_ = false;

    // Flush buffered charges in ascending rank order: identical per-slot
    // accumulation order to the sequential consume loop.
    if (timing_ != nullptr) {
      for (rank_t rank = 0; rank < num_nodes_; ++rank) {
        for (const ComputeEvent& e : pending_compute_[rank]) {
          timing_->on_compute(e.phase, e.layer, rank, e.seconds);
        }
        pending_compute_[rank].clear();
      }
    }
    if (observer_ != nullptr) observer_->on_round_end(phase, layer);
  }

 private:
  struct ComputeEvent {
    Phase phase;
    std::uint16_t layer;
    double seconds;
  };

  /// Same redelivery rules as BspEngine::drain_due (stale when the dst died
  /// or a fresh letter for the same (sender, chunk) slot already arrived).
  void drain_due(Phase phase, std::uint16_t layer) {
    for (Letter<V>& letter : channel_->due()) {
      const MsgEvent event{phase, layer, letter.src, letter.dst,
                           letter.packet.wire_bytes()};
      if (letter.dst >= num_nodes_ ||
          (failures_ != nullptr && failures_->is_dead(letter.dst))) {
        channel_->note_stale();
        if (observer_ != nullptr) observer_->on_redelivery(event, true);
        continue;
      }
      auto& inbox = inboxes_[letter.dst];
      const bool superseded =
          std::any_of(inbox.begin(), inbox.end(), [&](const Letter<V>& l) {
            return same_slot(l, letter);
          });
      if (superseded) {
        channel_->note_stale();
        if (observer_ != nullptr) observer_->on_redelivery(event, true);
        continue;
      }
      inbox.push_back(std::move(letter));
      channel_->note_redelivered();
      if (observer_ != nullptr) observer_->on_redelivery(event, false);
    }
    channel_->due().clear();
  }

  rank_t num_nodes_;
  ThreadPool pool_;
  const FailureModel* failures_;
  Trace* trace_;
  TimingAccumulator* timing_;
  EngineObserver* observer_ = nullptr;
  FaultChannel<V>* channel_ = nullptr;
  std::uint64_t dropped_ = 0;

  std::vector<std::vector<Letter<V>>> outboxes_;  ///< staged by produce
  std::vector<std::vector<Letter<V>>> inboxes_;   ///< reused across rounds
  std::vector<std::vector<ComputeEvent>> pending_compute_;
  std::vector<std::vector<rank_t>> debug_senders_;  ///< per-worker scratch
  bool collecting_ = false;  ///< true only during the consume batch
};

}  // namespace kylix
