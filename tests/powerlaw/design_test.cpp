#include "powerlaw/design.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <numeric>

namespace kylix {
namespace {

TEST(Divisors, DescendingAndComplete) {
  EXPECT_EQ(divisors_descending(64),
            (std::vector<std::uint32_t>{64, 32, 16, 8, 4, 2}));
  EXPECT_EQ(divisors_descending(12),
            (std::vector<std::uint32_t>{12, 6, 4, 3, 2}));
  EXPECT_EQ(divisors_descending(7), (std::vector<std::uint32_t>{7}));
  EXPECT_TRUE(divisors_descending(1).empty());
}

TEST(SmallestPrimeFactor, Basics) {
  EXPECT_EQ(smallest_prime_factor(2), 2u);
  EXPECT_EQ(smallest_prime_factor(9), 3u);
  EXPECT_EQ(smallest_prime_factor(35), 5u);
  EXPECT_EQ(smallest_prime_factor(97), 97u);
  EXPECT_THROW(smallest_prime_factor(1), check_error);
}

DesignInput base_input() {
  DesignInput input;
  input.num_features = 1 << 20;
  input.num_machines = 64;
  input.alpha = 1.1;
  input.partition_density = 0.21;
  input.bytes_per_element = 12;
  input.min_packet_bytes = 300e3;
  return input;
}

TEST(ChooseDegrees, ProductAlwaysEqualsMachineCount) {
  for (std::uint32_t m : {1u, 2u, 6u, 8u, 12u, 64u, 60u, 97u}) {
    DesignInput input = base_input();
    input.num_machines = m;
    const DesignResult result = choose_degrees(input);
    const std::uint64_t product = std::accumulate(
        result.degrees.begin(), result.degrees.end(), std::uint64_t{1},
        std::multiplies<>());
    EXPECT_EQ(product, m) << "m = " << m;
  }
}

TEST(ChooseDegrees, DegreesDecreaseDownThePowerLawNetwork) {
  // "For optimum performance, the butterfly degrees also decrease down the
  // layers" (abstract) — data shrinks, so later layers afford fewer peers.
  const DesignResult result = choose_degrees(base_input());
  ASSERT_GE(result.degrees.size(), 2u);
  for (std::size_t i = 1; i < result.degrees.size(); ++i) {
    EXPECT_LE(result.degrees[i], result.degrees[i - 1]);
  }
}

TEST(ChooseDegrees, ZeroFloorCollapsesToDirect) {
  // With no packet-size floor the greedy rule takes all of m at once:
  // direct all-to-all is optimal when latency is free.
  DesignInput input = base_input();
  input.min_packet_bytes = 0;
  const DesignResult result = choose_degrees(input);
  EXPECT_EQ(result.degrees, (std::vector<std::uint32_t>{64}));
}

TEST(ChooseDegrees, HugeFloorFallsBackToBinary) {
  // Packets can never reach the floor: every layer is latency-bound and the
  // fallback picks the smallest prime factor (binary butterfly for 2^k).
  DesignInput input = base_input();
  input.min_packet_bytes = 1e12;
  const DesignResult result = choose_degrees(input);
  EXPECT_EQ(result.degrees,
            (std::vector<std::uint32_t>{2, 2, 2, 2, 2, 2}));
  for (const DesignLayer& layer : result.layers) {
    EXPECT_TRUE(layer.latency_bound);
  }
}

TEST(ChooseDegrees, MessageSizesRespectTheFloorWhenPossible) {
  const DesignInput input = base_input();
  const DesignResult result = choose_degrees(input);
  for (const DesignLayer& layer : result.layers) {
    if (!layer.latency_bound) {
      EXPECT_GE(layer.message_bytes, input.min_packet_bytes * 0.999);
    }
  }
}

TEST(ChooseDegrees, DenserDataAffordsLargerTopDegree) {
  DesignInput sparse_in = base_input();
  sparse_in.partition_density = 0.01;
  DesignInput dense_in = base_input();
  dense_in.partition_density = 0.4;
  const DesignResult sparse_out = choose_degrees(sparse_in);
  const DesignResult dense_out = choose_degrees(dense_in);
  EXPECT_GE(dense_out.degrees[0], sparse_out.degrees[0]);
}

TEST(ChooseDegrees, SingleMachineNeedsNoLayers) {
  DesignInput input = base_input();
  input.num_machines = 1;
  EXPECT_TRUE(choose_degrees(input).degrees.empty());
}

TEST(ChooseDegrees, RejectsInvalidInput) {
  DesignInput input = base_input();
  input.num_machines = 0;
  EXPECT_THROW(choose_degrees(input), check_error);
  input = base_input();
  input.partition_density = 0;
  EXPECT_THROW(choose_degrees(input), check_error);
  input = base_input();
  input.bytes_per_element = 0;
  EXPECT_THROW(choose_degrees(input), check_error);
}

TEST(ChooseDegrees, ReportsPerLayerExpectations) {
  const DesignResult result = choose_degrees(base_input());
  ASSERT_EQ(result.layers.size(), result.degrees.size());
  EXPECT_GT(result.lambda0, 0.0);
  for (std::size_t i = 0; i < result.layers.size(); ++i) {
    EXPECT_EQ(result.layers[i].degree, result.degrees[i]);
    EXPECT_GT(result.layers[i].density, 0.0);
    EXPECT_GT(result.layers[i].message_bytes, 0.0);
    EXPECT_NEAR(result.layers[i].message_bytes * result.layers[i].degree,
                result.layers[i].node_bytes, 1e-6);
  }
  EXPECT_NE(result.to_string().find("degrees:"), std::string::npos);
}

}  // namespace
}  // namespace kylix
