// Online anomaly watchdog (DESIGN.md "Observability v2").
//
// Watches the round stream as it happens and flags three anomaly classes
// without storing history:
//   * slow rounds    — round wall time far above an EWMA baseline (mean +
//                      EWMA absolute deviation, robust to the baseline
//                      drifting as payloads change);
//   * stragglers     — a rank whose last send this round trails the median
//                      rank-completion offset by many MADs *and* by an
//                      absolute floor (so microsecond jitter on sequential
//                      engines never fires);
//   * byte imbalance — a rank whose send volume sits many MADs off the
//                      round's median (skew the planner should know about).
// Verdicts land as `engine.anomaly.*` metrics and as structured
// FlightRecorder events, so a postmortem shows *when* the run went bad,
// not just that it did. All per-round work runs in pre-sized scratch
// (nth_element medians) — zero allocation after construction.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/trace.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace kylix::obs {

class AnomalyWatchdog {
 public:
  struct Options {
    /// EWMA smoothing for the round-time baseline (mean and deviation).
    double ewma_alpha = 0.2;
    /// Rounds observed before any verdict is issued (baseline warmup).
    std::uint32_t min_samples = 8;
    /// Slow-round trigger: x - mean > slow_k * max(deviation, min_round_s).
    double slow_k = 6.0;
    double min_round_s = 1e-4;
    /// Straggler trigger: offset - median > straggler_k * max(MAD,
    /// min_mad_us) and offset - median > min_straggler_us.
    double straggler_k = 8.0;
    double min_mad_us = 50.0;
    double min_straggler_us = 5000.0;
    /// Byte-imbalance trigger, same shape over per-rank send bytes.
    double imbalance_k = 16.0;
    double min_imbalance_bytes = 65536.0;
    /// Sinks; either may be null.
    MetricsRegistry* metrics = nullptr;
    FlightRecorder* recorder = nullptr;
  };

  AnomalyWatchdog(rank_t num_ranks, const Options& options);

  /// Feed one finished round. `completion_offset_us[r]` is rank r's last
  /// send time relative to round start (negative or zero for silent
  /// ranks); `send_bytes[r]` is what r put on the wire this round. Both
  /// must have num_ranks entries.
  void observe_round(Phase phase, std::uint16_t layer, double round_s,
                     const std::vector<double>& completion_offset_us,
                     const std::vector<std::uint64_t>& send_bytes);

  [[nodiscard]] std::uint64_t slow_rounds() const { return slow_rounds_; }
  [[nodiscard]] std::uint64_t stragglers() const { return stragglers_; }
  [[nodiscard]] std::uint64_t byte_imbalances() const {
    return byte_imbalances_;
  }
  /// Most recently flagged straggler rank, or kGlobalRank if none yet.
  [[nodiscard]] rank_t last_straggler() const { return last_straggler_; }
  [[nodiscard]] std::uint64_t rounds_seen() const { return rounds_seen_; }

 private:
  /// Median of `values` via nth_element into scratch_; MAD likewise.
  double median_into_scratch(const std::vector<double>& values);

  rank_t num_ranks_;
  Options opts_;

  // Round-time baseline.
  std::uint64_t rounds_seen_ = 0;
  double ewma_mean_s_ = 0;
  double ewma_dev_s_ = 0;

  std::uint64_t slow_rounds_ = 0;
  std::uint64_t stragglers_ = 0;
  std::uint64_t byte_imbalances_ = 0;
  rank_t last_straggler_ = kGlobalRank;

  std::vector<double> scratch_;   ///< pre-sized; medians
  std::vector<double> deviat_;    ///< pre-sized; abs deviations for MAD
  std::vector<double> active_;    ///< pre-sized; the round's active samples

  Counter* slow_counter_ = nullptr;
  Counter* straggler_counter_ = nullptr;
  Counter* imbalance_counter_ = nullptr;
  Gauge* last_straggler_gauge_ = nullptr;
};

}  // namespace kylix::obs
