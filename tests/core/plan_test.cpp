// Plan/executor split (ISSUE: compiled CollectivePlan). Covers the three
// contracts the refactor promises:
//
//   1. Replaying a compiled plan — in the compiling allreduce or adopted by
//      another (even across engines and value types) — is bit-identical to
//      configure()+reduce(), including under FaultPlan schedules with
//      surviving replicas.
//   2. reduce_strided(k) is bit-identical to k independent reduce() calls,
//      component by component.
//   3. PlanCache keys plans by fingerprint with LRU eviction and exact
//      hit/miss/evict accounting.
#include "core/plan.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "cluster/fault_plan.hpp"
#include "comm/bsp.hpp"
#include "comm/fault_channel.hpp"
#include "comm/parallel.hpp"
#include "comm/replicated.hpp"
#include "comm/threaded.hpp"
#include "common/check.hpp"
#include "core/allreduce.hpp"
#include "core/plan_cache.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

using testing::random_workload;
using testing::Workload;

const std::vector<std::vector<std::uint32_t>> kSchedules = {
    {}, {2}, {8}, {2, 2, 2}, {4, 2}, {3, 5}, {4, 1, 2},
};

class PlanScheduleTest
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(PlanScheduleTest, AdoptedPlanReplayMatchesCompilingAllreduce) {
  const Topology topo(GetParam());
  const rank_t m = topo.num_machines();
  auto w = random_workload<float>(m, 150, 0.2, 0.4, 6000 + m);
  BspEngine<float> engine(m);

  SparseAllreduce<float, OpSum, BspEngine<float>> compiler(&engine, topo);
  auto plan = compiler.compile(w.in_sets, w.out_sets);
  ASSERT_NE(plan, nullptr);
  const auto reference = compiler.reduce(w.out_values);
  testing::expect_matches_oracle<float>(w, reference);

  SparseAllreduce<float, OpSum, BspEngine<float>> replayer(&engine, topo);
  replayer.configure(plan);
  EXPECT_EQ(replayer.reduce(w.out_values), reference);

  // New values, same plan: repeated replays track the oracle.
  for (int round = 1; round <= 3; ++round) {
    for (auto& values : w.out_values) {
      for (auto& v : values) v += static_cast<float>(round);
    }
    const auto again = replayer.reduce(w.out_values);
    EXPECT_EQ(again, compiler.reduce(w.out_values));
    testing::expect_matches_oracle<float>(w, again);
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, PlanScheduleTest,
                         ::testing::ValuesIn(kSchedules));

TEST(Plan, ReplayIsBitIdenticalAcrossAllFourEngines) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 200, 0.15, 0.3, 42);

  std::vector<std::vector<float>> reference;
  std::shared_ptr<const CollectivePlan> plan;
  {
    BspEngine<float> engine(m);
    SparseAllreduce<float, OpSum, BspEngine<float>> ar(&engine, topo);
    plan = ar.compile(w.in_sets, w.out_sets);
    reference = ar.reduce(w.out_values);
  }
  testing::expect_matches_oracle<float>(w, reference);
  {
    ParallelBspEngine<float> engine(m);
    SparseAllreduce<float, OpSum, ParallelBspEngine<float>> ar(&engine, topo);
    ar.configure(plan);
    EXPECT_EQ(ar.reduce(w.out_values), reference) << "parallel replay";
  }
  {
    ThreadedBsp<float> engine(m);
    SparseAllreduce<float, OpSum, ThreadedBsp<float>> ar(&engine, topo);
    ar.configure(plan);
    EXPECT_EQ(ar.reduce(w.out_values), reference) << "threaded replay";
  }
  {
    ReplicatedBsp<float> engine(m, 2);
    SparseAllreduce<float, OpSum, ReplicatedBsp<float>> ar(&engine, topo);
    ar.configure(plan);
    EXPECT_EQ(ar.reduce(w.out_values), reference) << "replicated replay";
  }
}

TEST(Plan, IsValueTypeIndependent) {
  // One plan compiled through the float allreduce drives a double reduce:
  // routing state never touches V.
  const Topology topo({3, 2});
  const rank_t m = topo.num_machines();
  const auto wf = random_workload<float>(m, 120, 0.25, 0.4, 77);
  BspEngine<float> fengine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> compiler(&fengine, topo);
  const auto plan = compiler.compile(wf.in_sets, wf.out_sets);

  Workload<double> wd;
  wd.in_sets = wf.in_sets;
  wd.out_sets = wf.out_sets;
  for (const auto& values : wf.out_values) {
    wd.out_values.emplace_back(values.begin(), values.end());
  }
  BspEngine<double> dengine(m);
  SparseAllreduce<double, OpSum, BspEngine<double>> replayer(&dengine, topo);
  replayer.configure(plan);
  testing::expect_matches_oracle<double>(wd, replayer.reduce(wd.out_values));
}

TEST(Plan, AdoptedReplayUnderSurvivableFaultsMatchesCleanRun) {
  // Invariant: with replication 2 and no whole group dead, transient faults
  // and single-replica crashes are invisible — so an adopted-plan replay on
  // a faulty engine must still be bit-identical to the clean run.
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const auto w = random_workload<float>(m, 100, 0.2, 0.4, 7000 + seed);

    ReplicatedBsp<float> clean(m, 2);
    SparseAllreduce<float, OpSum, ReplicatedBsp<float>> clean_ar(&clean,
                                                                 topo);
    const auto plan = clean_ar.compile(w.in_sets, w.out_sets);
    const auto reference = clean_ar.reduce(w.out_values);

    FaultPlan faults(m * 2, seed);
    FaultPlan::TransientRates rates;
    rates.drop = 0.08;
    rates.duplicate = 0.05;
    rates.delay = 0.05;
    faults.set_transient_rates(rates);
    const rank_t crashes = seed % 3;
    for (rank_t c = 0; c < crashes; ++c) {
      // Distinct logical groups, one replica each: no group dies.
      faults.crash_at_round((seed + 2 * c) % m + ((seed + c) % 2) * m,
                            (seed + c) % 4);
    }
    FaultChannel<float> channel(&faults);
    ReplicatedBsp<float> engine(m, 2);
    engine.set_fault_channel(&channel);
    SparseAllreduce<float, OpSum, ReplicatedBsp<float>> ar(&engine, topo);
    ar.configure(plan);
    ASSERT_FALSE(engine.has_failed());
    EXPECT_EQ(ar.reduce(w.out_values), reference);
  }
}

// ---- Multi-payload: strided == k independent reduces ----

template <typename V>
std::vector<std::vector<V>> interleave(
    const std::vector<std::vector<std::vector<V>>>& per_payload) {
  const std::size_t k = per_payload.size();
  std::vector<std::vector<V>> out(per_payload[0].size());
  for (std::size_t r = 0; r < out.size(); ++r) {
    out[r].resize(per_payload[0][r].size() * k);
    for (std::size_t p = 0; p < per_payload[0][r].size(); ++p) {
      for (std::size_t c = 0; c < k; ++c) {
        out[r][p * k + c] = per_payload[c][r][p];
      }
    }
  }
  return out;
}

template <typename V>
void expect_strided_matches_independent(std::uint32_t k, std::uint64_t seed) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<V>(m, 150, 0.2, 0.4, seed);
  BspEngine<V> engine(m);
  SparseAllreduce<V, OpSum, BspEngine<V>> ar(&engine, topo);
  ar.configure(w.in_sets, w.out_sets);

  // Payload c = base values shifted by c (still exact small integers).
  std::vector<std::vector<std::vector<V>>> payloads(k);
  std::vector<std::vector<std::vector<V>>> independent(k);
  for (std::uint32_t c = 0; c < k; ++c) {
    payloads[c] = w.out_values;
    for (auto& values : payloads[c]) {
      for (auto& v : values) v += static_cast<V>(c);
    }
    independent[c] = ar.reduce(payloads[c]);
  }

  const auto strided = ar.reduce_strided(interleave(payloads), k);
  ASSERT_EQ(strided.size(), m);
  for (rank_t r = 0; r < m; ++r) {
    ASSERT_EQ(strided[r].size(), independent[0][r].size() * k);
    for (std::size_t p = 0; p < independent[0][r].size(); ++p) {
      for (std::uint32_t c = 0; c < k; ++c) {
        EXPECT_EQ(strided[r][p * k + c], independent[c][r][p])
            << "rank " << r << " key " << p << " payload " << c;
      }
    }
  }
  // The executor resets to stride 1 cleanly.
  EXPECT_EQ(ar.reduce(payloads[0]), independent[0]);
}

TEST(PlanStrided, MatchesIndependentReducesFloat) {
  expect_strided_matches_independent<float>(3, 21);
}

TEST(PlanStrided, MatchesIndependentReducesDouble) {
  expect_strided_matches_independent<double>(4, 22);
}

TEST(PlanStrided, StrideOneIsPlainReduce) {
  const Topology topo({2, 2});
  const auto w = random_workload<float>(4, 80, 0.3, 0.5, 23);
  BspEngine<float> engine(4);
  SparseAllreduce<float, OpSum, BspEngine<float>> ar(&engine, topo);
  ar.configure(w.in_sets, w.out_sets);
  EXPECT_EQ(ar.reduce_strided(w.out_values, 1), ar.reduce(w.out_values));
}

TEST(PlanStrided, WrongLengthOrModeThrows) {
  const Topology topo({2});
  const auto w = random_workload<float>(2, 30, 0.5, 0.5, 24);
  BspEngine<float> engine(2);
  SparseAllreduce<float, OpSum, BspEngine<float>> ar(&engine, topo);
  // Before any configure: no plan to replay.
  EXPECT_THROW((void)ar.reduce_strided({{1.0f}, {2.0f}}, 2), check_error);
  ar.configure(w.in_sets, w.out_sets);
  auto bad = w.out_values;  // not multiplied by the stride
  EXPECT_THROW((void)ar.reduce_strided(std::move(bad), 2), check_error);
  EXPECT_THROW((void)ar.reduce_strided(w.out_values, 0), check_error);
  // Combined mode retains nodes, not a plan.
  SparseAllreduce<float, OpSum, BspEngine<float>> combined(&engine, topo);
  (void)combined.reduce_with_config(w.in_sets, w.out_sets, w.out_values);
  EXPECT_THROW((void)combined.reduce_strided(w.out_values, 1), check_error);
}

// ---- Fingerprints and the PlanCache ----

TEST(PlanFingerprint, IsDeterministicRoleAndSetSensitive) {
  const auto w = random_workload<float>(4, 60, 0.3, 0.5, 31);
  const auto base = fingerprint_key_sets(w.in_sets, w.out_sets);
  EXPECT_NE(base, 0u);
  EXPECT_EQ(base, fingerprint_key_sets(w.in_sets, w.out_sets));
  // Swapping roles must not collide.
  EXPECT_NE(base, fingerprint_key_sets(w.out_sets, w.in_sets));
  // Any set change must not collide.
  auto other = w.in_sets;
  other[0] = KeySet::from_indices(std::vector<index_t>{1, 2, 3});
  EXPECT_NE(base, fingerprint_key_sets(other, w.out_sets));
}

TEST(PlanCacheTest, ConfigureCachedHitsAfterMissAndTracksCounters) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 100, 0.25, 0.4, 32);
  BspEngine<float> engine(m);
  PlanCache cache(4);

  SparseAllreduce<float, OpSum, BspEngine<float>> ar(&engine, topo);
  EXPECT_FALSE(ar.configure_cached(cache, w.in_sets, w.out_sets));
  const auto reference = ar.reduce(w.out_values);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.size(), 1u);

  // Same sets from a fresh allreduce: served from cache, same results.
  SparseAllreduce<float, OpSum, BspEngine<float>> again(&engine, topo);
  EXPECT_TRUE(again.configure_cached(cache, w.in_sets, w.out_sets));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(again.reduce(w.out_values), reference);

  // Different sets: miss, second entry.
  const auto w2 = random_workload<float>(m, 100, 0.25, 0.4, 33);
  EXPECT_FALSE(again.configure_cached(cache, w2.in_sets, w2.out_sets));
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 2u);
  testing::expect_matches_oracle<float>(w2, again.reduce(w2.out_values));
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  const Topology topo({2});
  BspEngine<float> engine(2);
  PlanCache cache(2);
  std::vector<std::uint64_t> fps;
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto w = random_workload<float>(2, 40, 0.4, 0.5, 40 + seed);
    SparseAllreduce<float, OpSum, BspEngine<float>> ar(&engine, topo);
    fps.push_back(PlanCache::fingerprint(w.in_sets, w.out_sets));
    if (seed == 2) {
      // Touch the oldest entry first so the middle one becomes LRU.
      EXPECT_NE(cache.find(fps[0]), nullptr);
    }
    cache.insert(ar.compile(w.in_sets, w.out_sets));
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_NE(cache.find(fps[0]), nullptr) << "recently-touched entry evicted";
  EXPECT_EQ(cache.find(fps[1]), nullptr) << "LRU entry survived";
  EXPECT_NE(cache.find(fps[2]), nullptr);
}

TEST(PlanCacheTest, AnonymousPlansAreNotCached) {
  PlanCache cache(2);
  cache.insert(std::make_shared<CollectivePlan>(Topology({2}), 0));
  EXPECT_EQ(cache.size(), 0u);
}

// ---- Plan introspection ----

TEST(Plan, ExposesScheduleAndAmortizedWireBytes) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 120, 0.25, 0.4, 50);
  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> ar(&engine, topo);
  const auto plan = ar.compile(w.in_sets, w.out_sets);

  EXPECT_EQ(plan->fingerprint(),
            fingerprint_key_sets(w.in_sets, w.out_sets));
  EXPECT_FALSE(plan->degraded());
  ASSERT_TRUE(plan->any_configured());

  const auto schedule = plan->message_schedule();
  ASSERT_FALSE(schedule.empty());
  bool saw_config = false, saw_down = false, saw_up = false;
  for (const ScheduledMessage& msg : schedule) {
    saw_config |= msg.phase == Phase::kConfig;
    saw_down |= msg.phase == Phase::kReduceDown;
    saw_up |= msg.phase == Phase::kReduceUp;
    EXPECT_GE(msg.layer, 1u);
    EXPECT_LE(msg.layer, topo.num_layers());
  }
  EXPECT_TRUE(saw_config && saw_down && saw_up);

  // Keys are never resent, so doubling the payload count less than doubles
  // the wire bytes — the whole point of multi-payload replay.
  const auto one = plan->reduce_wire_bytes(sizeof(float), 1);
  const auto two = plan->reduce_wire_bytes(sizeof(float), 2);
  EXPECT_GT(one, 0u);
  EXPECT_GT(two, one);
  EXPECT_LT(two, 2 * one);
}

TEST(Plan, NodeIntrospectionUnavailableAfterAdoption) {
  const Topology topo({2, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 80, 0.3, 0.5, 51);
  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> compiler(&engine, topo);
  const auto plan = compiler.compile(w.in_sets, w.out_sets);

  SparseAllreduce<float, OpSum, BspEngine<float>> adopted(&engine, topo);
  adopted.configure(plan);
  EXPECT_THROW((void)adopted.node(0), check_error);
  // Layer measurements still work, served off the frozen plan.
  EXPECT_EQ(adopted.measured_layer_elements(),
            compiler.measured_layer_elements());
}

TEST(Plan, AdoptionRequiresMatchingTopology) {
  const auto w = random_workload<float>(4, 60, 0.3, 0.5, 52);
  BspEngine<float> engine(4);
  SparseAllreduce<float, OpSum, BspEngine<float>> compiler(&engine,
                                                           Topology({4}));
  const auto plan = compiler.compile(w.in_sets, w.out_sets);
  SparseAllreduce<float, OpSum, BspEngine<float>> other(&engine,
                                                        Topology({2, 2}));
  EXPECT_THROW(other.configure(plan), check_error);
}

}  // namespace
}  // namespace kylix
