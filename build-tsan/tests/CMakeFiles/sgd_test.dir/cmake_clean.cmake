file(REMOVE_RECURSE
  "CMakeFiles/sgd_test.dir/apps/sgd_test.cpp.o"
  "CMakeFiles/sgd_test.dir/apps/sgd_test.cpp.o.d"
  "sgd_test"
  "sgd_test.pdb"
  "sgd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
