#include "sparse/kernels/kernels.hpp"

namespace kylix::kernels {

namespace {
KernelTuning g_tuning;
}  // namespace

const KernelTuning& kernel_tuning() { return g_tuning; }

void set_kernel_tuning(const KernelTuning& tuning) { g_tuning = tuning; }

UnionKernel choose_union_kernel(std::size_t ways,
                                std::size_t total_elements) {
  const KernelTuning& t = g_tuning;
  if (ways >= t.kway_min_ways && total_elements >= t.kway_min_elements) {
    return UnionKernel::kKWay;
  }
  return UnionKernel::kTree;
}

}  // namespace kylix::kernels
