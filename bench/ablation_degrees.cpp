// Ablation — does the §IV degree *ordering* matter, and how close is the
// workflow's schedule to the best factorization?
//
// The paper argues degrees should decrease down the network (abstract).
// This bench runs every way to order a fixed factor multiset plus several
// other factorizations of 64, and reports modeled allreduce time for each,
// alongside what the autotuner picked.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace kylix;

void report(const bench::Dataset& data, const std::vector<std::uint32_t>& d,
            const char* note) {
  const auto times = bench::run_allreduce(data, Topology(d), 16);
  std::printf("%-16s %-12.4f %-12.4f %-12.4f %s\n",
              Topology(d).to_string().c_str(), times.config, times.reduce(),
              times.total(), note);
}

}  // namespace

int main() {
  std::printf("# Ablation: butterfly degree schedules for m = 64 "
              "(twitter-like)\n");
  const bench::Dataset data = bench::make_dataset("twitter");

  const DesignResult tuned = bench::tune(
      data.spec.num_vertices, data.spec.alpha_in, data.measured_density, 64);
  std::printf("autotuned schedule: %s\n\n",
              Topology(tuned.degrees).to_string().c_str());

  std::printf("%-16s %-12s %-12s %-12s %s\n", "degrees", "config_s",
              "reduce_s", "total_s", "note");
  // Orderings of the paper's {8,4,2} multiset.
  std::vector<std::uint32_t> degrees = {8, 4, 2};
  std::sort(degrees.begin(), degrees.end());
  do {
    report(data, degrees,
           std::is_sorted(degrees.rbegin(), degrees.rend())
               ? "<- decreasing (paper's rule)"
               : "");
  } while (std::next_permutation(degrees.begin(), degrees.end()));

  // Other factorizations of 64.
  report(data, {64}, "direct");
  report(data, {16, 4}, "");
  report(data, {4, 16}, "");
  report(data, {4, 4, 4}, "homogeneous");
  report(data, {2, 2, 2, 2, 2, 2}, "binary");
  report(data, tuned.degrees, "<- autotuned");
  return 0;
}
