# Empty compiler generated dependencies file for ablation_roce.
# This may be replaced when dependencies are built.
