// The engine observer hook (DESIGN.md "Observability").
//
// Every engine already carries optional Trace / TimingAccumulator pointers;
// EngineObserver is the third — and last — slot of that pattern: a virtual
// interface the telemetry layer (src/obs) implements so the engines stay
// ignorant of metrics registries and span tracers. All hooks are no-ops by
// default; engines guard every call with a null check, so the hot path stays
// zero-allocation (and virtually call-free) when no observer is attached,
// exactly like the trace/timing slots (asserted by tests/core/alloc_test).
//
// Hook order within one engine round:
//   on_round_begin -> {on_message | on_drop}* -> on_round_end
// ThreadedBsp calls on_message/on_drop from worker threads (serialized by
// its observer mutex); all other engines call every hook from the driving
// thread. ReplicatedBsp reports one on_message per transmitted *copy*, in
// physical ranks, mirroring what it records into the Trace.
#pragma once

#include <cstdint>

#include "cluster/trace.hpp"

namespace kylix {

class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  /// A communication round (one phase × layer) is starting.
  virtual void on_round_begin(Phase phase, std::uint16_t layer) {
    (void)phase;
    (void)layer;
  }

  /// One message was put on the (simulated) wire.
  virtual void on_message(const MsgEvent& event) { (void)event; }

  /// A transmitted message was dropped (dead destination): the sender paid,
  /// nothing arrives.
  virtual void on_drop(const MsgEvent& event) { (void)event; }

  /// The round completed; every inbox has been consumed.
  virtual void on_round_end(Phase phase, std::uint16_t layer) {
    (void)phase;
    (void)layer;
  }
};

}  // namespace kylix
