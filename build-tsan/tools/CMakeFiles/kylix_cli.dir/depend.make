# Empty dependencies file for kylix_cli.
# This may be replaced when dependencies are built.
