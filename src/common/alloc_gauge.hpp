// Allocation-counting test hook.
//
// The counter is only ever incremented by binaries that install a counting
// global operator new (tests/core/alloc_test.cpp does); for every other
// binary it is a dead inline atomic. This is how the zero-allocation claims
// about the node/merge hot paths are *asserted* rather than assumed.
#pragma once

#include <atomic>
#include <cstdint>

namespace kylix {

/// Total heap allocations observed by the installed counting operator new.
inline std::atomic<std::uint64_t> g_allocation_count{0};

/// Allocations made between construction and count().
class AllocGauge {
 public:
  AllocGauge() : start_(g_allocation_count.load(std::memory_order_relaxed)) {}

  [[nodiscard]] std::uint64_t count() const {
    return g_allocation_count.load(std::memory_order_relaxed) - start_;
  }

 private:
  std::uint64_t start_;
};

}  // namespace kylix
