// A persistent host thread pool with a parallel_for primitive.
//
// Built for the parallel simulation engine (comm/parallel.hpp): one pool per
// engine, woken once per produce/consume phase, so thread startup cost is
// paid once per engine instead of once per round. Work is claimed in
// contiguous *shards* — one atomic fetch_add per shard instead of per index
// — so a round over m ranks costs O(threads) synchronization, not O(m), and
// consecutive indices (whose node state is adjacent in memory) run on the
// same worker. Dynamic shard claiming still balances skewed per-rank costs:
// a worker that finishes its shard early claims another.
//
// Batch protocol: the caller publishes the loop body under the mutex, bumps
// a generation counter, and wakes every worker. Each worker checks in
// (arrived), claims shards until the counter is exhausted, and checks out
// (busy back to zero). The caller participates in the batch itself, then
// waits until every worker has both arrived *and* finished — guaranteeing no
// straggler from batch N can observe state being written for batch N+1.
//
// Workers carry a stable id (worker_id(): caller = 0, spawned workers
// 1..threads-1) so engines can keep per-worker scratch without locks, and
// pin_workers() optionally binds each worker to a CPU (Linux) for
// affinity-stable placement across rounds.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "common/check.hpp"

namespace kylix {

class ThreadPool {
 public:
  /// `threads` counts the calling thread too: the pool spawns threads - 1
  /// workers. 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(unsigned threads = 0) {
    if (threads == 0) {
      threads = std::thread::hardware_concurrency();
      if (threads == 0) threads = 1;
    }
    threads_ = threads;
    workers_.reserve(threads_ - 1);
    for (unsigned i = 1; i < threads_; ++i) {
      workers_.emplace_back([this, i] {
        tls_worker_id_ = i;
        worker_loop();
      });
    }
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
      ++generation_;
    }
    start_cv_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned num_threads() const { return threads_; }

  /// Stable id of the thread currently inside a parallel_for body: 0 for
  /// the calling thread, 1..num_threads()-1 for pool workers. Valid only
  /// inside a batch; lets callers index per-worker scratch without locks.
  [[nodiscard]] static unsigned worker_id() { return tls_worker_id_; }

  /// Pin each spawned worker to a CPU (worker i -> cpu i mod ncpu) so rank
  /// shards keep their cache line ownership across rounds. Linux-only;
  /// silently a no-op elsewhere or when the affinity call fails (e.g.
  /// restricted cpusets). Call once, outside a batch.
  void pin_workers() {
#if defined(__linux__)
    const unsigned ncpu = std::max(1u, std::thread::hardware_concurrency());
    for (std::size_t i = 0; i < workers_.size(); ++i) {
      cpu_set_t set;
      CPU_ZERO(&set);
      CPU_SET((i + 1) % ncpu, &set);
      (void)pthread_setaffinity_np(workers_[i].native_handle(), sizeof(set),
                                   &set);
    }
#endif
  }

  /// Run fn(0), …, fn(n - 1) across the pool; contiguous shards of indices
  /// are claimed dynamically, the calling thread participates, and the call
  /// returns only when every index has finished. The first exception thrown
  /// by any call is rethrown here (remaining indices still run to
  /// completion). Runs inline when the pool has one thread or n <= 1.
  template <typename Fn>
  void parallel_for(std::size_t n, Fn&& fn) {
    if (n == 0) return;
    if (threads_ == 1 || n == 1) {
      for (std::size_t i = 0; i < n; ++i) fn(i);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ctx_ = &fn;
      invoke_ = [](void* ctx, std::size_t i) {
        (*static_cast<std::remove_reference_t<Fn>*>(ctx))(i);
      };
      count_ = n;
      // One shard per worker wave, at least 1: claiming costs one atomic
      // per shard, and equal contiguous shards give affinity-stable
      // placement when n is a multiple of the thread count.
      grain_ = (n + threads_ - 1) / threads_;
      next_.store(0, std::memory_order_relaxed);
      arrived_ = 0;
      busy_ = 0;
      ++generation_;
    }
    start_cv_.notify_all();
    tls_worker_id_ = 0;  // the caller is worker 0 inside its own batch
    run_batch();
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock,
                  [this] { return arrived_ == workers_.size() && busy_ == 0; });
    if (error_) {
      std::exception_ptr error = error_;
      error_ = nullptr;
      std::rethrow_exception(error);
    }
  }

 private:
  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        ++arrived_;
        ++busy_;
      }
      run_batch();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --busy_;
      }
      done_cv_.notify_all();
    }
  }

  void run_batch() {
    for (;;) {
      const std::size_t base = next_.fetch_add(grain_,
                                               std::memory_order_relaxed);
      if (base >= count_) return;
      const std::size_t end = std::min(count_, base + grain_);
      for (std::size_t i = base; i < end; ++i) {
        try {
          invoke_(ctx_, i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(mutex_);
          if (!error_) error_ = std::current_exception();
        }
      }
    }
  }

  unsigned threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;  ///< bumped per batch (and at shutdown)
  std::size_t arrived_ = 0;       ///< workers that woke for this batch
  std::size_t busy_ = 0;          ///< workers currently inside run_batch
  bool stop_ = false;

  std::atomic<std::size_t> next_{0};  ///< next unclaimed index
  std::size_t count_ = 0;   ///< batch size (read under happens-before)
  std::size_t grain_ = 1;   ///< shard length per claim
  void* ctx_ = nullptr;
  void (*invoke_)(void*, std::size_t) = nullptr;
  std::exception_ptr error_;

  inline static thread_local unsigned tls_worker_id_ = 0;
};

}  // namespace kylix
