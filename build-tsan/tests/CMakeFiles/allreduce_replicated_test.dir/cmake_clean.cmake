file(REMOVE_RECURSE
  "CMakeFiles/allreduce_replicated_test.dir/core/allreduce_replicated_test.cpp.o"
  "CMakeFiles/allreduce_replicated_test.dir/core/allreduce_replicated_test.cpp.o.d"
  "allreduce_replicated_test"
  "allreduce_replicated_test.pdb"
  "allreduce_replicated_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allreduce_replicated_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
