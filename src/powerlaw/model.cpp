#include "powerlaw/model.hpp"

#include <cmath>

#include "common/check.hpp"

namespace kylix {

namespace {

/// Σ_{r=a..b} r^-α approximated by ∫_{a-1/2}^{b+1/2} x^-α dx (midpoint rule
/// in reverse; relative error < 1e-4 for a >= 3, and we only use it where
/// each term is further multiplied by a tiny factor).
double power_sum_integral(double a, double b, double alpha) {
  if (b < a) return 0.0;
  const double lo = a - 0.5;
  const double hi = b + 0.5;
  if (std::abs(alpha - 1.0) < 1e-12) return std::log(hi / lo);
  return (std::pow(hi, 1.0 - alpha) - std::pow(lo, 1.0 - alpha)) /
         (1.0 - alpha);
}

}  // namespace

PowerLawModel::PowerLawModel(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  KYLIX_CHECK(n >= 1);
  KYLIX_CHECK(alpha > 0.0);
}

double PowerLawModel::density(double lambda) const {
  if (lambda <= 0.0) return 0.0;
  // Terms with λ r^-α below `kTiny` satisfy 1-exp(-x) = x to 5e-7 relative
  // accuracy, so the tail collapses to λ Σ r^-α, which has a closed-ish form.
  constexpr double kTiny = 1e-6;
  const auto nd = static_cast<double>(n_);
  // r_cut: smallest r with λ r^-α < kTiny, i.e. r > (λ/kTiny)^(1/α).
  double r_cut = std::pow(lambda / kTiny, 1.0 / alpha_);
  if (!(r_cut >= 0)) r_cut = nd;  // overflow guard
  const auto head_end =
      static_cast<std::uint64_t>(std::min(nd, std::ceil(r_cut)));

  double sum = 0.0;
  for (std::uint64_t r = 1; r <= head_end; ++r) {
    sum += -std::expm1(-lambda * std::pow(static_cast<double>(r), -alpha_));
  }
  if (head_end < n_) {
    sum += lambda * power_sum_integral(static_cast<double>(head_end + 1), nd,
                                       alpha_);
  }
  return sum / nd;
}

double PowerLawModel::lambda_for_density(double target) const {
  KYLIX_CHECK_MSG(target > 0.0 && target < 1.0,
                  "density must be in (0,1), got " << target);
  // Bracket the root by doubling, then bisect on log λ.
  double lo = 1e-12;
  double hi = 1.0;
  while (density(hi) < target) {
    hi *= 4.0;
    KYLIX_CHECK_MSG(hi < 1e30, "density target unreachable");
  }
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = std::sqrt(lo * hi);  // geometric mid: λ spans decades
    if (density(mid) < target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi / lo < 1.0 + 1e-10) break;
  }
  return std::sqrt(lo * hi);
}

double PowerLawModel::harmonic() const {
  // Exact head + integral tail, mirroring density()'s accuracy strategy.
  const std::uint64_t head_end = std::min<std::uint64_t>(n_, 100000);
  double sum = 0.0;
  for (std::uint64_t r = 1; r <= head_end; ++r) {
    sum += std::pow(static_cast<double>(r), -alpha_);
  }
  if (head_end < n_) {
    sum += power_sum_integral(static_cast<double>(head_end + 1),
                              static_cast<double>(n_), alpha_);
  }
  return sum;
}

std::vector<PowerLawModel::LayerStats> PowerLawModel::layer_stats(
    double lambda0, std::span<const std::uint32_t> degrees) const {
  KYLIX_CHECK(lambda0 > 0.0);
  std::vector<LayerStats> stats;
  stats.reserve(degrees.size() + 1);
  std::uint64_t fan_in = 1;  // K_1 = d_0 = 1 (paper's convention)
  for (std::size_t i = 0; i <= degrees.size(); ++i) {
    LayerStats s;
    s.fan_in = fan_in;
    s.density = density(static_cast<double>(fan_in) * lambda0);
    s.elements_per_node =
        static_cast<double>(n_) * s.density / static_cast<double>(fan_in);
    stats.push_back(s);
    if (i < degrees.size()) {
      KYLIX_CHECK(degrees[i] >= 1);
      fan_in *= degrees[i];
    }
  }
  return stats;
}

}  // namespace kylix
