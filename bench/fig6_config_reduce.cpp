// Figure 6 — average configuration and reduction time per iteration for
// direct all-to-all, the optimal (heterogeneous) butterfly, and the binary
// butterfly, on both datasets at 64 machines.
//
// Paper result: the optimal butterfly is 3-5x faster than the other two —
// direct all-to-all drowns in sub-minimum packets (0.4 MB at paper scale,
// ~30% utilization), and the binary butterfly pays for extra layers of
// latency and routed replicas. Times come from the calibrated cost model
// replaying the real message trace of a real run (16 message threads).
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace kylix;

void run(const bench::Dataset& data) {
  std::printf("\n== %s (m = 64) ==\n", data.name.c_str());
  std::printf("%-22s %-12s %-12s %-12s\n", "topology", "config_s",
              "reduce_s", "total_s");

  struct Row {
    const char* label;
    Topology topo;
  };
  const Row rows[] = {
      {"direct all-to-all", Topology::direct(64)},
      {"optimal butterfly", data.paper_topology},
      {"binary butterfly", Topology::binary(64)},
  };
  double best = 0;
  double direct_total = 0;
  for (const Row& row : rows) {
    const auto times = bench::run_allreduce(data, row.topo, 16);
    std::printf("%-22s %-12.4f %-12.4f %-12.4f\n", row.label, times.config,
                times.reduce(), times.total());
    if (row.topo.num_layers() > 1 &&
        row.topo.degrees()[0] != 2) {  // the optimal row
      best = times.total();
    }
    if (row.topo.num_layers() == 1) direct_total = times.total();
  }
  std::printf("speedup of optimal over direct: %.2fx (paper: 3-5x)\n",
              direct_total / best);
}

}  // namespace

int main() {
  std::printf("# Figure 6: config/reduce time by topology "
              "(modeled 10Gb/s-class network, scaled dataset)\n");
  run(bench::make_dataset("twitter"));
  run(bench::make_dataset("yahoo"));
  return 0;
}
