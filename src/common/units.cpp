#include "common/units.hpp"

#include <cstdio>

namespace kylix {

std::string format_bytes(double bytes) {
  const char* suffix = "B";
  double value = bytes;
  if (value >= 1e9) {
    value /= 1e9;
    suffix = "GB";
  } else if (value >= 1e6) {
    value /= 1e6;
    suffix = "MB";
  } else if (value >= 1e3) {
    value /= 1e3;
    suffix = "KB";
  }
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.2f %s", value, suffix);
  return buffer;
}

std::string format_seconds(double seconds) {
  const char* suffix = "s";
  double value = seconds;
  if (value < 1e-3) {
    value *= 1e6;
    suffix = "us";
  } else if (value < 1.0) {
    value *= 1e3;
    suffix = "ms";
  }
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.3g %s", value, suffix);
  return buffer;
}

}  // namespace kylix
