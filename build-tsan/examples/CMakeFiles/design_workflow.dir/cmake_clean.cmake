file(REMOVE_RECURSE
  "CMakeFiles/design_workflow.dir/design_workflow.cpp.o"
  "CMakeFiles/design_workflow.dir/design_workflow.cpp.o.d"
  "design_workflow"
  "design_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
