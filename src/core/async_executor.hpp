// AsyncExecutor — many in-flight plan replays over shared channels
// (DESIGN §11).
//
// Where ReduceExecutor walks one reduce through round barriers, this
// executor keeps a window of `window` concurrent streams in flight: each
// admitted stream occupies one *lane* (per-rank ReplayScratch + AsyncNode
// state machines + a frozen fault script) and all lanes share one
// AsyncChannel — the mailboxes, the modeled NIC clocks, and, in the real
// cluster this models, the wires. Streams are sequence-tagged at submit();
// completion, per-stream latency, StreamStats, FaultStats, and results are
// tracked per tag, and finished lanes immediately admit the next pending
// stream, so the channel never idles between reduces the way the
// serialized path does.
//
// Scheduling. Single-worker mode (the default, and the deterministic one)
// runs an event loop over a min-heap of (modeled time, lane, rank): pop the
// earliest runnable node, step() it until it parks on an incomplete inbox,
// and wake parked nodes when a routed batch completes their box. With a
// NetworkModel bound, the heap order IS the modeled cluster timeline: each
// rank's tx NIC is a gap-filling busy-interval timeline shared across
// lanes (work-conserving regardless of claim order — see NicTimeline),
// arrivals are sender-serialized plus handshake/propagation latency, and
// compute runs per-lane (one core per in-flight stream; within a stream
// the node clock serializes it). k overlapped streams thus fill the wire
// gaps a serialized run leaves idle — that gap recovery is the aggregate
// reduces/sec headline in bench/wall_engines. Admission is paced at the
// per-slot pipeline initiation interval, which bounds per-stream latency
// without costing throughput.
// Multi-worker mode (workers > 1) drives the same nodes from a thread pool
// behind one scheduler lock — kernels run outside the lock — and exists to
// let tsan/asan hunt races in the multiplexing; modeled time is disabled
// there (latencies read 0), and because every stream's values depend only
// on its sorted inboxes, results are bit-identical to single-worker runs
// regardless of interleaving.
//
// Buffer economy. Lanes pool everything (scratch, letter shells, mailbox
// shells, value pools); a consumed buffer returns to its sender's pool
// immediately in single-worker mode and at stream completion in threaded
// mode (the quiescent points that need no cross-rank synchronization).
// After the first batch warms the pools, submit()/drain() cycles are
// allocation-free, same as the serial executor (tests/core/alloc_test).
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/fault_plan.hpp"
#include "cluster/netmodel.hpp"
#include "comm/async_engine.hpp"
#include "comm/packet.hpp"
#include "core/async_node.hpp"
#include "core/degraded.hpp"
#include "core/plan.hpp"
#include "core/replay_node.hpp"
#include "obs/flight_recorder.hpp"  // header-only; no kylix_obs link needed
#include "sparse/ops.hpp"

namespace kylix {

template <typename V, typename Op = OpSum>
class AsyncExecutor {
 public:
  struct Options {
    std::uint32_t window = 4;   ///< max concurrent in-flight streams (lanes)
    std::uint32_t workers = 1;  ///< >1: thread pool (sanitizer lane; no clock)
    std::uint32_t stride = 1;   ///< payloads per key, interleaved key-major
    bool streaming = false;     ///< chunked letters (plan's chunk_bytes)
    std::uint64_t chunk_bytes_override = 0;
    const NetworkModel* network = nullptr;  ///< modeled clock (workers == 1)
    const ComputeModel* compute = nullptr;  ///< per-consume compute charge
    EngineObserver* observer = nullptr;     ///< per-letter message/fault hooks
    obs::FlightRecorder* recorder = nullptr;  ///< stream admit/complete marks
  };

  static constexpr std::uint32_t kNoStream =
      std::numeric_limits<std::uint32_t>::max();

  AsyncExecutor() = default;

  /// Bind a compiled plan (shared with the plan cache) and freeze the run
  /// options. Rebinding keeps warmed lane buffers when the plan shape
  /// allows it; in-flight streams must be drained first.
  void bind(std::shared_ptr<const CollectivePlan> plan, const Options& opts) {
    KYLIX_CHECK(plan != nullptr);
    KYLIX_CHECK_MSG(plan->any_configured(),
                    "plan holds no configured rank to replay");
    KYLIX_CHECK_MSG(!plan->hierarchical(),
                    "async replay supports flat plans only (the intra-node "
                    "stage is a round barrier; see DESIGN §13)");
    KYLIX_CHECK(opts.window >= 1 && opts.workers >= 1 && opts.stride >= 1);
    KYLIX_CHECK_MSG(active_streams_ == 0, "bind while streams in flight");
    plan_ = std::move(plan);
    opts_ = opts;
    layers_ = plan_->topology().num_layers();
    slots_ = AsyncSlots::count(layers_);
    const rank_t m = plan_->num_ranks();
    const std::uint64_t chunk_bytes = opts_.chunk_bytes_override != 0
                                          ? opts_.chunk_bytes_override
                                          : plan_->chunk_bytes();
    ctx_.plan = plan_.get();
    ctx_.stride = opts_.stride;
    ctx_.chunk_positions =
        opts_.streaming && chunk_bytes != 0
            ? std::max<std::size_t>(
                  1, static_cast<std::size_t>(
                         chunk_bytes /
                         (sizeof(V) * std::uint64_t{opts_.stride})))
            : 0;
    channel_.configure(m, layers_, opts_.window);
    channel_.set_network(opts_.workers == 1 ? opts_.network : nullptr);
    channel_.set_observer(opts_.observer);
    // The clean script is shared by every fault-free stream: built once,
    // per-lane fault scripts are only populated on the faulted cold path.
    build_async_fault_script(*plan_, ctx_.chunk_positions, nullptr,
                             clean_script_);
    lanes_.resize(opts_.window);
    for (Lane& lane : lanes_) {
      if (lane.scratch.size() < m) lane.scratch.resize(m);
      for (ReplayScratch<V>& s : lane.scratch) {
        if (s.letters.size() < layers_) s.letters.resize(layers_);
      }
      lane.nodes.resize(m);
      lane.node_clock.assign(m, 0.0);
      lane.parked_slot.assign(m, kNotParked);
      lane.stream = kNoStream;
    }
    cpu_busy_.assign(m, 0.0);
    pace_ = modeled() ? admission_pace() : 0.0;
    heap_.reserve(std::size_t{opts_.window} * m * (slots_ + 1));
    reset();
  }

  [[nodiscard]] bool bound() const { return plan_ != nullptr; }
  [[nodiscard]] const std::shared_ptr<const CollectivePlan>& plan() const {
    return plan_;
  }

  /// Membership epoch stamped on subsequent submissions (elastic
  /// membership, core/epoch_manager.hpp). The manager drains in-flight
  /// streams at the round barrier, rebinds the healed plan, then advances
  /// this — so every stream completes against the plan of the epoch it was
  /// admitted under (the executor's shared_ptr keeps an old-epoch plan
  /// alive even after the PlanCache evicts it).
  void set_epoch(std::uint64_t epoch) { epoch_ = epoch; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  /// The membership epoch stream `tag` was admitted under.
  [[nodiscard]] std::uint64_t stream_epoch(std::uint32_t tag) const {
    return streams_[tag - stream_base_].epoch;
  }

  /// Submit one reduce as a new stream; returns its sequence tag. Admitted
  /// to a free lane immediately, else queued until one frees up during
  /// drain(). `faults` (optional, not owned, must outlive drain()) is this
  /// stream's private fault schedule — it is consumed by the admission
  /// precompute, so hand each stream its own identically-seeded plan when
  /// comparing against a serial oracle.
  std::uint32_t submit(std::vector<std::vector<V>> out_values,
                       FaultPlan* faults = nullptr) {
    KYLIX_CHECK(bound());
    KYLIX_CHECK(out_values.size() == plan_->num_ranks());
    for (rank_t r = 0; r < plan_->num_ranks(); ++r) {
      const RankPlan& rp = plan_->rank_plan(r);
      if (!rp.configured) {
        // Same contract as the serial executor: a rank the plan does not
        // cover may only replay while dead.
        KYLIX_CHECK_MSG(faults != nullptr && faults->failures().is_dead(r),
                        "alive rank not covered by the bound plan");
        continue;
      }
      KYLIX_CHECK_MSG(out_values[r].size() == rp.out0_size * ctx_.stride,
                      "contribution length does not match plan out set");
    }
    const std::uint32_t tag = next_stream_++;
    Stream& st = stream_at(tag);
    st.done = false;
    st.taken = false;
    st.admit_time = 0;
    st.finish_time = 0;
    st.stats = StreamStats{};
    st.faults = FaultStats{};
    st.epoch = epoch_;
    if (st.results.size() != plan_->num_ranks()) {
      st.results.resize(plan_->num_ranks());
    }
    ++active_streams_;
    const std::size_t lane_id = free_lane();
    if (lane_id != kNoLane) {
      admit(lane_id, tag, std::move(out_values), faults, /*now=*/0.0);
    } else {
      Pending& p = pending_at(pending_tail_++);
      p.values = std::move(out_values);
      p.faults = faults;
      p.stream = tag;
    }
    return tag;
  }

  /// Run until every submitted stream has completed.
  void drain() {
    if (active_streams_ == 0) return;
    if (opts_.workers == 1) {
      run_single();
    } else {
      run_threaded();
    }
    KYLIX_CHECK(active_streams_ == 0);
  }

  /// Move stream `tag`'s per-rank results out (empty vectors for ranks dead
  /// or unconfigured at completion). Valid once after drain().
  [[nodiscard]] std::vector<std::vector<V>> take_result(std::uint32_t tag) {
    Stream& st = stream_at(tag);
    KYLIX_CHECK_MSG(st.done && !st.taken, "stream not completed or taken");
    st.taken = true;
    return std::move(st.results);
  }

  /// Modeled completion latency of stream `tag` in seconds (admission to
  /// last node retiring); 0 without a NetworkModel or with workers > 1.
  [[nodiscard]] double completion_seconds(std::uint32_t tag) const {
    const Stream& st = streams_[tag - stream_base_];
    return st.finish_time - st.admit_time;
  }
  /// Modeled end of the whole batch (max stream finish time).
  [[nodiscard]] double makespan_seconds() const { return makespan_; }
  /// Completion latencies of the batch in completion order — feed these to
  /// an obs::Histogram for the p50/p99 machinery.
  [[nodiscard]] const std::vector<double>& completion_latencies() const {
    return latencies_;
  }
  /// Peak modeled per-rank resource occupancy this batch: how busy the
  /// busiest NIC direction and compute clock were. busy / makespan is the
  /// utilization the async-overlap bench reports; the max over the three
  /// is the lower bound no schedule can beat.
  [[nodiscard]] double max_tx_busy_seconds() const {
    return *std::max_element(channel_.tx_busy_seconds().begin(),
                             channel_.tx_busy_seconds().end());
  }
  [[nodiscard]] double max_rx_busy_seconds() const {
    return *std::max_element(channel_.rx_busy_seconds().begin(),
                             channel_.rx_busy_seconds().end());
  }
  [[nodiscard]] double max_cpu_busy_seconds() const {
    return *std::max_element(cpu_busy_.begin(), cpu_busy_.end());
  }
  /// The admission initiation interval bind() derived from the plan (0
  /// without a modeled clock).
  [[nodiscard]] double admission_pace_seconds() const { return pace_; }

  [[nodiscard]] const StreamStats& stream_stats(std::uint32_t tag) const {
    return streams_[tag - stream_base_].stats;
  }
  /// The stream's frozen fault-schedule counters (what its FaultPlan
  /// classified during the admission precompute).
  [[nodiscard]] const FaultStats& fault_stats(std::uint32_t tag) const {
    return streams_[tag - stream_base_].faults;
  }

  /// Per-stream completion report. Plain-channel semantics, exactly like
  /// the serial executor on the non-chaos engines: faults degrade
  /// individual ranks (empty results), never whole replica groups, so the
  /// run is exact for every surviving rank.
  [[nodiscard]] DegradedReport degraded_report(std::uint32_t tag) const {
    (void)tag;
    return DegradedReport{};
  }

  /// Forget completed streams and restart the modeled clock at zero. Keeps
  /// every warmed buffer (lanes, pools, mailboxes, stream slots), so the
  /// next batch replays allocation-free.
  void reset() {
    KYLIX_CHECK_MSG(active_streams_ == 0, "reset while streams in flight");
    stream_base_ = next_stream_;
    stream_count_ = 0;
    pending_head_ = 0;
    pending_tail_ = 0;
    latencies_.clear();
    makespan_ = 0;
    next_admit_ = 0;
    for (Lane& lane : lanes_) {
      lane.stream = kNoStream;
      std::fill(lane.node_clock.begin(), lane.node_clock.end(), 0.0);
      std::fill(lane.parked_slot.begin(), lane.parked_slot.end(), kNotParked);
    }
    std::fill(cpu_busy_.begin(), cpu_busy_.end(), 0.0);
    channel_.configure(plan_->num_ranks(), layers_, opts_.window);
    channel_.set_network(opts_.workers == 1 ? opts_.network : nullptr);
    channel_.set_observer(opts_.observer);
  }

 private:
  using Ops = ReplayOps<V, Op>;
  static constexpr std::size_t kNoLane =
      std::numeric_limits<std::size_t>::max();
  static constexpr std::size_t kNotParked =
      std::numeric_limits<std::size_t>::max();

  struct Stream {
    std::vector<std::vector<V>> results;
    StreamStats stats;
    FaultStats faults;
    double admit_time = 0;
    double finish_time = 0;
    std::uint64_t epoch = 0;  ///< membership epoch at submit()
    bool done = false;
    bool taken = false;
  };

  struct Lane {
    std::vector<ReplayScratch<V>> scratch;  ///< per rank
    std::vector<AsyncNode<V, Op>> nodes;    ///< per rank
    std::vector<double> node_clock;         ///< per rank modeled "now"
    std::vector<std::size_t> parked_slot;   ///< per rank; kNotParked if not
    AsyncFaultScript fault_script;          ///< populated on faulted streams
    const AsyncFaultScript* script = nullptr;
    std::uint32_t stream = kNoStream;
    rank_t done_nodes = 0;
    double admit_time = 0;
    double finish_time = 0;
  };

  struct Pending {
    std::vector<std::vector<V>> values;
    FaultPlan* faults = nullptr;
    std::uint32_t stream = kNoStream;
  };

  /// Heap entry: earliest modeled time wins; (lane, rank) tie-break keeps
  /// the unmodeled (all-zero times) schedule deterministic too.
  struct Ready {
    double t = 0;
    std::uint32_t lane = 0;
    rank_t rank = 0;
    [[nodiscard]] bool operator>(const Ready& o) const {
      if (t != o.t) return t > o.t;
      if (lane != o.lane) return lane > o.lane;
      return rank > o.rank;
    }
  };

  /// The AsyncNode Port: binds one (lane, rank) step() to the shared
  /// channel and carries the node-local modeled clock through the step.
  struct Port {
    AsyncExecutor* ex;
    std::uint32_t lane_id;
    Lane* lane;
    rank_t rank;
    double now;  ///< node-local modeled time, advanced by consumed()

    [[nodiscard]] bool alive(std::size_t slot) const {
      return lane->script->alive(slot, rank);
    }
    void send(std::size_t slot, std::vector<Letter<V>>& letters) {
      std::unique_lock<std::mutex> lock = ex->maybe_lock();
      ex->channel_.route(
          lane_id, slot, *lane->script, ex->layers_, letters, now,
          [&](rank_t dst, double ready) {
            ex->wake(*lane, lane_id, dst, slot, ready);
          });
    }
    [[nodiscard]] bool inbox_complete(std::size_t slot) {
      std::unique_lock<std::mutex> lock = ex->maybe_lock();
      return ex->channel_.complete(lane_id, rank, slot);
    }
    /// Box is complete: no more writers, safe to sort and consume without
    /// the scheduler lock (the completing push happened-before our pop).
    [[nodiscard]] std::vector<Letter<V>>& take_inbox(std::size_t slot) {
      return ex->channel_.take_inbox(lane_id, rank, slot);
    }
    void consumed(std::size_t slot) {
      ReplayScratch<V>& s = lane->scratch[rank];
      const NodeWork work = std::exchange(s.work, NodeWork{});
      if (ex->modeled()) {
        const double arrived =
            ex->channel_.box_at(lane_id, rank, slot).ready_time;
        // Compute serializes within a stream (the node clock carries it)
        // but not across lanes: each in-flight stream replays on its own
        // core, the way a window of concurrent reduces lands on a
        // multicore machine. Only the NIC clocks are shared resources.
        const double start = std::max(now, arrived);
        const double cost =
            ex->opts_.compute == nullptr
                ? 0.0
                : ex->opts_.compute->merge_time(work.merge_elements,
                                                work.merge_ways) +
                      ex->opts_.compute->combine_time(work.combine_elements) +
                      ex->opts_.compute->gather_time(work.gather_elements);
        now = start + cost;
        ex->cpu_busy_[rank] += cost;
      }
      if (ex->opts_.workers == 1) {
        // Immediate sender-pool return; threaded mode defers to stream
        // completion (the quiescent point needing no cross-rank locking).
        ex->return_spent(*lane, s);
      }
    }
  };

  [[nodiscard]] bool modeled() const {
    return opts_.network != nullptr && opts_.workers == 1;
  }
  [[nodiscard]] std::unique_lock<std::mutex> maybe_lock() {
    return opts_.workers == 1 ? std::unique_lock<std::mutex>()
                              : std::unique_lock<std::mutex>(mu_);
  }

  [[nodiscard]] Stream& stream_at(std::uint32_t tag) {
    const std::size_t index = tag - stream_base_;
    KYLIX_CHECK(index < stream_count_ || index == stream_count_);
    if (index == stream_count_) {
      ++stream_count_;
      if (streams_.size() < stream_count_) streams_.resize(stream_count_);
    }
    return streams_[index];
  }
  [[nodiscard]] Pending& pending_at(std::size_t index) {
    if (pending_.size() <= index) pending_.resize(index + 1);
    return pending_[index];
  }
  [[nodiscard]] std::size_t free_lane() const {
    for (std::size_t i = 0; i < lanes_.size(); ++i) {
      if (lanes_[i].stream == kNoStream) return i;
    }
    return kNoLane;
  }

  /// The pipeline initiation interval: the modeled tx occupancy one clean
  /// stream puts on its busiest NIC. Admitting streams any faster than this
  /// cannot raise throughput (the bottleneck NIC is already saturated) but
  /// does synchronize the lanes into slot-convoys — every lane's slot-s
  /// burst queues ahead of every lane's slot-s+1, so all lanes think (and
  /// leave the NICs idle) at the same time. Pacing admissions by this
  /// interval staggers the lanes into a software pipeline instead.
  [[nodiscard]] double admission_pace() const {
    const rank_t m = plan_->num_ranks();
    double pace = 0;
    std::vector<double> tx(m, 0.0);
    for (std::size_t t = 0; t < slots_; ++t) {
      std::fill(tx.begin(), tx.end(), 0.0);
      const Phase phase = AsyncSlots::phase(t, layers_);
      const std::uint16_t layer = AsyncSlots::layer(t, layers_);
      for (rank_t q = 0; q < m; ++q) {
        if (!plan_->rank_plan(q).configured) continue;
        const PlanLayer& cfg = plan_->rank_plan(q).layers[layer - 1];
        for (std::uint32_t d = 0; d < cfg.group.size(); ++d) {
          if (cfg.group[d] == q) continue;  // loopback never hits the NIC
          const std::size_t piece =
              phase == Phase::kReduceDown
                  ? cfg.out_split[d + 1] - cfg.out_split[d]
                  : cfg.in_maps[d].size();
          const std::uint32_t chunks =
              detail::async_chunks_for(ctx_.chunk_positions, piece);
          for (std::uint32_t c = 0; c < chunks; ++c) {
            const std::size_t positions =
                chunks == 1 ? piece
                            : std::min(ctx_.chunk_positions,
                                       piece - c * ctx_.chunk_positions);
            const std::uint64_t payload =
                sizeof(V) * std::uint64_t{positions} * opts_.stride;
            const std::uint64_t bytes =
                wire_frames(payload) * kPacketHeaderBytes + payload;
            tx[q] += opts_.network->stack_overhead_s +
                     static_cast<double>(bytes) /
                         opts_.network->bandwidth_bytes_per_s;
          }
        }
      }
      pace = std::max(pace, *std::max_element(tx.begin(), tx.end()));
    }
    return pace;
  }

  /// Admit a stream to a free lane at modeled time `now`: freeze its fault
  /// script, reset mailboxes and nodes, load inputs, and schedule every
  /// participating node. Caller holds the lock in threaded mode.
  void admit(std::size_t lane_id, std::uint32_t tag,
             std::vector<std::vector<V>> values, FaultPlan* faults,
             double now) {
    now = std::max(now, next_admit_);
    next_admit_ = now + pace_;
    Lane& lane = lanes_[lane_id];
    KYLIX_CHECK(lane.stream == kNoStream);
    lane.stream = tag;
    lane.done_nodes = 0;
    lane.admit_time = now;
    lane.finish_time = now;
    if (faults != nullptr) {
      build_async_fault_script(*plan_, ctx_.chunk_positions, faults,
                               lane.fault_script);
      lane.script = &lane.fault_script;
    } else {
      lane.script = &clean_script_;
    }
    Stream& st = streams_[tag - stream_base_];
    st.admit_time = now;
    st.faults = lane.script->stats;
    channel_.open_lane(lane_id, *lane.script);
    const rank_t m = plan_->num_ranks();
    for (rank_t r = 0; r < m; ++r) {
      ReplayScratch<V>& s = lane.scratch[r];
      s.stream = StreamStats{};
      lane.node_clock[r] = now;
      lane.parked_slot[r] = kNotParked;
      if (!plan_->rank_plan(r).configured) {
        // Checked dead at submit(); retires on its first step.
        lane.nodes[r].reset(&ctx_, r, &s);
        continue;
      }
      Ops::load_input(s, values[r]);
      lane.nodes[r].reset(&ctx_, r, &s);
    }
    for (rank_t r = 0; r < m; ++r) {
      push_ready({now, static_cast<std::uint32_t>(lane_id), r});
    }
    if (opts_.recorder != nullptr) {
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kStreamAdmit;
      e.code = tag;
      e.value = static_cast<double>(st.epoch);  ///< admission epoch tag
      e.bytes = plan_->fingerprint();
      opts_.recorder->record(e);
    }
  }

  /// A routed batch completed (lane, dst, slot)'s box: if that node is
  /// parked exactly there, reschedule it. Nodes not yet at the slot will
  /// see the complete box when they arrive. Caller holds the lock in
  /// threaded mode (route runs under it).
  void wake(Lane& lane, std::uint32_t lane_id, rank_t dst, std::size_t slot,
            double ready) {
    if (lane.parked_slot[dst] != slot) return;
    lane.parked_slot[dst] = kNotParked;
    push_ready({std::max(ready, lane.node_clock[dst]), lane_id, dst});
  }

  void push_ready(Ready item) {
    heap_.push_back(item);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    if (opts_.workers > 1) cv_.notify_one();
  }

  /// Return one rank's consumed buffers to their senders' pools.
  void return_spent(Lane& lane, ReplayScratch<V>& s) {
    for (auto& [src, buf] : s.spent) {
      Ops::recycle(lane.scratch[src].value_pool, buf);
    }
    s.spent.clear();
  }

  /// Step one node; park or retire it. Returns under the lock in threaded
  /// mode only for the bookkeeping edges (park/retire/admit).
  void step_node(std::uint32_t lane_id, rank_t rank) {
    Lane& lane = lanes_[lane_id];
    AsyncNode<V, Op>& node = lane.nodes[rank];
    if (node.done()) return;  // stale wakeup after retirement
    Port port{this, lane_id, &lane, rank, lane.node_clock[rank]};
    const bool finished = node.step(port);
    lane.node_clock[rank] = port.now;
    if (finished) {
      retire_node(lane, lane_id, rank);
      return;
    }
    // Parked. Re-check completion under the lock: a concurrent route may
    // have completed the box between the node's check and this park (the
    // classic lost wakeup); single-worker mode cannot race but shares the
    // code path.
    const std::size_t slot = node.slot();
    std::unique_lock<std::mutex> lock = maybe_lock();
    if (channel_.complete(lane_id, rank, slot)) {
      const double ready = channel_.box_at(lane_id, rank, slot).ready_time;
      push_ready({std::max(ready, lane.node_clock[rank]), lane_id, rank});
    } else {
      lane.parked_slot[rank] = slot;
    }
  }

  /// Node finished (or died). When it is the lane's last, finalize the
  /// stream and hand the lane to the next pending submission.
  void retire_node(Lane& lane, std::uint32_t lane_id, rank_t rank) {
    std::unique_lock<std::mutex> lock = maybe_lock();
    lane.finish_time = std::max(lane.finish_time, lane.node_clock[rank]);
    if (++lane.done_nodes < plan_->num_ranks()) return;
    const std::uint32_t tag = lane.stream;
    Stream& st = streams_[tag - stream_base_];
    st.finish_time = lane.finish_time;
    st.done = true;
    makespan_ = std::max(makespan_, lane.finish_time);
    latencies_.push_back(lane.finish_time - lane.admit_time);
    for (rank_t r = 0; r < plan_->num_ranks(); ++r) {
      ReplayScratch<V>& s = lane.scratch[r];
      if (opts_.workers > 1) return_spent(lane, s);
      const AsyncNode<V, Op>& node = lane.nodes[r];
      if (!node.dead() && plan_->rank_plan(r).configured) {
        st.results[r] = std::move(s.vin);
      } else {
        st.results[r].clear();
      }
      st.stats.merge(s.stream);
    }
    st.stats.streamed = ctx_.chunk_positions != 0;
    st.stats.chunk_bytes =
        ctx_.chunk_positions == 0
            ? 0
            : std::uint64_t{ctx_.chunk_positions} * sizeof(V) * ctx_.stride;
    if (opts_.recorder != nullptr) {
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kStreamComplete;
      e.code = tag;
      e.value = st.finish_time - st.admit_time;
      e.bytes = plan_->fingerprint();
      opts_.recorder->record(e);
    }
    lane.stream = kNoStream;
    --active_streams_;
    if (pending_head_ < pending_tail_) {
      Pending& p = pending_[pending_head_++];
      admit(lane_id, p.stream, std::move(p.values), p.faults,
            lane.finish_time);
      p.values.clear();
    }
    if (opts_.workers > 1 && active_streams_ == 0) cv_.notify_all();
  }

  void run_single() {
    while (!heap_.empty()) {
      std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
      const Ready item = heap_.back();
      heap_.pop_back();
      step_node(item.lane, item.rank);
    }
  }

  void run_threaded() {
    std::vector<std::thread> pool;
    pool.reserve(opts_.workers);
    for (std::uint32_t w = 0; w < opts_.workers; ++w) {
      pool.emplace_back([this] { worker_loop(); });
    }
    for (std::thread& t : pool) t.join();
  }

  void worker_loop() {
    for (;;) {
      Ready item;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock,
                 [this] { return !heap_.empty() || active_streams_ == 0; });
        if (heap_.empty()) {
          if (active_streams_ == 0) return;
          continue;
        }
        std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
        item = heap_.back();
        heap_.pop_back();
      }
      step_node(item.lane, item.rank);
    }
  }

  std::shared_ptr<const CollectivePlan> plan_;
  Options opts_;
  ReplayContext ctx_;
  std::uint16_t layers_ = 0;
  std::size_t slots_ = 0;
  AsyncChannel<V> channel_;
  AsyncFaultScript clean_script_;  ///< shared by every fault-free stream
  std::vector<Lane> lanes_;
  std::vector<double> cpu_busy_;  ///< per-rank accumulated compute occupancy
  std::vector<Ready> heap_;       ///< min-heap via push_heap/pop_heap

  /// Stream table: slot i holds tag stream_base_ + i; reset() rebases and
  /// reuses the slots (and their vectors' capacity) for the next batch.
  std::vector<Stream> streams_;
  std::uint32_t stream_base_ = 0;
  std::size_t stream_count_ = 0;
  std::uint32_t next_stream_ = 0;
  std::size_t active_streams_ = 0;
  std::vector<Pending> pending_;
  std::size_t pending_head_ = 0;
  std::size_t pending_tail_ = 0;
  std::vector<double> latencies_;
  double makespan_ = 0;
  double pace_ = 0;        ///< admission initiation interval (modeled s)
  double next_admit_ = 0;  ///< earliest modeled time the next admit may use
  std::uint64_t epoch_ = 0;  ///< membership epoch for new submissions

  std::mutex mu_;  ///< scheduler lock (threaded mode only)
  std::condition_variable cv_;
};

}  // namespace kylix
