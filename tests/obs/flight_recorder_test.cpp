#include "obs/flight_recorder.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

namespace kylix::obs {
namespace {

FlightEvent make_event(FlightEventKind kind, rank_t rank) {
  FlightEvent e;
  e.kind = kind;
  e.rank = rank;
  return e;
}

TEST(FlightRecorder, RecordsAndMergesInSequenceOrder) {
  FlightRecorder recorder(4);
  recorder.record(make_event(FlightEventKind::kRoundBegin, kGlobalRank));
  recorder.record(make_event(FlightEventKind::kFault, 2));
  recorder.record(make_event(FlightEventKind::kDrop, 0));
  recorder.record(make_event(FlightEventKind::kRoundEnd, kGlobalRank));
  EXPECT_EQ(recorder.recorded(), 4u);
  EXPECT_EQ(recorder.dropped(), 0u);

  const auto events = recorder.merged_events();
  ASSERT_EQ(events.size(), 4u);
  // Per-rank rings merge back into one global-sequence timeline.
  EXPECT_EQ(events[0].kind, FlightEventKind::kRoundBegin);
  EXPECT_EQ(events[1].kind, FlightEventKind::kFault);
  EXPECT_EQ(events[1].rank, 2u);
  EXPECT_EQ(events[2].kind, FlightEventKind::kDrop);
  EXPECT_EQ(events[3].kind, FlightEventKind::kRoundEnd);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LT(events[i - 1].seq, events[i].seq);
    EXPECT_LE(events[i - 1].t_us, events[i].t_us);
  }
}

TEST(FlightRecorder, WrapKeepsMostRecentHistory) {
  FlightRecorder recorder(1, /*per_rank_capacity=*/4, /*global_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    FlightEvent e = make_event(FlightEventKind::kDrop, 0);
    e.bytes = static_cast<std::uint64_t>(i);
    recorder.record(e);
  }
  EXPECT_EQ(recorder.recorded(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);
  const auto events = recorder.merged_events();
  ASSERT_EQ(events.size(), 4u);
  // The black box holds the tail, not the head: events 6..9 survive.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].bytes, 6u + i);
  }
}

TEST(FlightRecorder, OutOfRangeRankLandsInGlobalRing) {
  FlightRecorder recorder(2, /*per_rank_capacity=*/2, /*global_capacity=*/8);
  for (int i = 0; i < 6; ++i) {
    recorder.record(make_event(FlightEventKind::kRecovery, 99));
  }
  // Six events through a capacity-2 rank ring would have dropped four; the
  // global ring (capacity 8) held them all.
  EXPECT_EQ(recorder.dropped(), 0u);
  EXPECT_EQ(recorder.merged_events().size(), 6u);
}

TEST(FlightRecorder, DisabledRecordsNothing) {
  FlightRecorder recorder(2);
  recorder.set_enabled(false);
  recorder.record(make_event(FlightEventKind::kFault, 0));
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.merged_events().empty());
  recorder.set_enabled(true);
  recorder.record(make_event(FlightEventKind::kFault, 0));
  EXPECT_EQ(recorder.recorded(), 1u);
}

TEST(FlightRecorder, EnvVarDisablesAtConstruction) {
  ::setenv("KYLIX_METRICS", "off", 1);
  FlightRecorder off(2);
  EXPECT_FALSE(off.enabled());
  off.record(make_event(FlightEventKind::kFault, 0));
  EXPECT_EQ(off.recorded(), 0u);
  ::unsetenv("KYLIX_METRICS");
  FlightRecorder on(2);
  EXPECT_TRUE(on.enabled());
}

TEST(FlightRecorder, ClearDropsHistoryButKeepsNumbering) {
  FlightRecorder recorder(2);
  recorder.record(make_event(FlightEventKind::kDrop, 0));
  recorder.record(make_event(FlightEventKind::kDrop, 1));
  recorder.clear();
  EXPECT_TRUE(recorder.merged_events().empty());
  recorder.record(make_event(FlightEventKind::kDrop, 0));
  const auto events = recorder.merged_events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 2u);  // sequence numbering continues across clear
}

TEST(FlightRecorder, ConcurrentWritersLoseNothingBelowCapacity) {
  constexpr rank_t kRanks = 4;
  constexpr int kPerThread = 200;
  FlightRecorder recorder(kRanks, /*per_rank_capacity=*/kPerThread,
                          /*global_capacity=*/kPerThread);
  std::vector<std::thread> threads;
  for (rank_t r = 0; r < kRanks; ++r) {
    threads.emplace_back([&recorder, r] {
      for (int i = 0; i < kPerThread; ++i) {
        FlightEvent e = make_event(FlightEventKind::kStreamFlush, r);
        e.value = static_cast<double>(i);
        recorder.record(e);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(recorder.recorded(), static_cast<std::uint64_t>(kRanks) *
                                     kPerThread);
  EXPECT_EQ(recorder.dropped(), 0u);
  const auto events = recorder.merged_events();
  ASSERT_EQ(events.size(), static_cast<std::size_t>(kRanks) * kPerThread);
  // Every writer targets its own ring, so all sequence numbers are distinct
  // and every per-rank subsequence arrives intact and in order.
  std::vector<int> per_rank_next(kRanks, 0);
  for (const FlightEvent& e : events) {
    ASSERT_LT(e.rank, kRanks);
    EXPECT_EQ(e.value, per_rank_next[e.rank]);
    ++per_rank_next[e.rank];
  }
}

}  // namespace
}  // namespace kylix::obs
