# Empty dependencies file for kylix_apps.
# This may be replaced when dependencies are built.
