// Elastic membership: an epoch-numbered alive view over the FailureModel.
//
// The chaos machinery (FailureModel / FaultPlan) is ground truth about who
// is actually down; MembershipView is what the *control plane* believes. A
// rank that stops acking heartbeats is first marked kSuspect and probed on a
// bounded exponential-backoff schedule (BackoffSchedule, shared with the
// replica-recovery retry loop); only when every probe goes unanswered is it
// declared kDead and the membership epoch advanced. A suspect that answers a
// probe (revived before the schedule ran out) returns to kAlive with no
// epoch change — transient flaps don't trigger re-planning. A confirmed-dead
// rank coming back is a *join*: it re-enters the alive set at a new epoch.
//
// Epochs are what the planning layer keys on: every epoch bump means "the
// alive set changed, the current CollectivePlan may be stale" and the
// EpochedPlanManager (core/epoch_manager.hpp) re-plans at the next round
// barrier. With replication > 1 a member is a *logical* rank and it is down
// only when its whole replica group is dead, matching ReplicatedBsp's
// is_dead; with replication == 1 members are physical ranks.
//
// Deliberately header-only (like the flight recorder): the obs library links
// kylix_cluster, so membership reaching back into obs for metrics/events
// must not create a link-order cycle.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/failure.hpp"
#include "comm/recovery.hpp"
#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace kylix {

struct MembershipOptions {
  /// Replica-group size: member j is down iff physical ranks j, j+n, …,
  /// j+(s-1)n are all dead (n = number of members). 1 = physical ranks.
  std::uint32_t replication = 1;
  /// Unanswered probes before a suspect is declared dead.
  std::uint32_t max_probes = 4;
  /// Delay before probe k of a suspect: probe_backoff.delay(k) seconds of
  /// view time. Total suspicion window = probe_backoff.total(max_probes).
  BackoffSchedule probe_backoff{};
  /// Optional telemetry (not owned): kEpochChange / kRankSuspect /
  /// kRankDead / kRankJoined flight events and membership.* metrics.
  obs::FlightRecorder* recorder = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

class MembershipView {
 public:
  enum class State : std::uint8_t { kAlive, kSuspect, kDead };

  struct Stats {
    std::uint64_t suspects = 0;  ///< alive -> suspect transitions
    std::uint64_t flaps = 0;     ///< suspect -> alive (probe answered)
    std::uint64_t deaths = 0;    ///< suspect -> dead declarations
    std::uint64_t joins = 0;     ///< dead -> alive re-admissions
    std::uint64_t probes = 0;    ///< heartbeat probes issued
  };

  /// One row of the epoch timeline, appended at every epoch bump.
  struct EpochRecord {
    std::uint64_t epoch = 0;
    double at_s = 0;                ///< poll() time the epoch opened
    std::vector<rank_t> dead;       ///< confirmed-dead members at this epoch
  };

  /// `failures` (not owned, may be null = nobody ever dies) must cover
  /// num_members * replication physical ranks.
  MembershipView(rank_t num_members, const FailureModel* failures,
                 MembershipOptions options = {})
      : num_members_(num_members), failures_(failures), opts_(options) {
    KYLIX_CHECK(num_members >= 1);
    KYLIX_CHECK(opts_.replication >= 1);
    KYLIX_CHECK(opts_.max_probes >= 1);
    KYLIX_CHECK_MSG(
        failures == nullptr ||
            failures->num_nodes() >=
                num_members * static_cast<rank_t>(opts_.replication),
        "FailureModel covers fewer ranks than the membership");
    members_.resize(num_members);
    timeline_.push_back(EpochRecord{0, 0.0, {}});
    if (opts_.metrics != nullptr) opts_.metrics->gauge("membership.epoch").set(0);
  }

  [[nodiscard]] rank_t num_members() const { return num_members_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] State state(rank_t member) const {
    return members_[member].state;
  }

  /// Confirmed dead at the current epoch (suspects still count as alive —
  /// the plan only changes once the detector has made up its mind).
  [[nodiscard]] bool is_dead(rank_t member) const {
    return members_[member].state == State::kDead;
  }

  [[nodiscard]] std::vector<rank_t> alive_members() const {
    std::vector<rank_t> alive;
    for (rank_t j = 0; j < num_members_; ++j) {
      if (members_[j].state != State::kDead) alive.push_back(j);
    }
    return alive;
  }

  [[nodiscard]] std::vector<rank_t> dead_members() const {
    std::vector<rank_t> dead;
    for (rank_t j = 0; j < num_members_; ++j) {
      if (members_[j].state == State::kDead) dead.push_back(j);
    }
    return dead;
  }

  /// Order-independent digest of the confirmed-dead set; 0 when everyone is
  /// alive. The plan compiler folds the same shape of digest into plan
  /// fingerprints so per-epoch plans never collide in the PlanCache.
  [[nodiscard]] std::uint64_t alive_fingerprint() const {
    std::uint64_t fp = 0;
    for (rank_t j = 0; j < num_members_; ++j) {
      if (members_[j].state == State::kDead) {
        fp ^= mix64(0x6d656d62ULL ^ static_cast<std::uint64_t>(j));
      }
    }
    return fp;
  }

  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Epoch history, one record per epoch since construction (index 0 is the
  /// initial full-membership epoch). Powers `kylix_cli heal`'s timeline.
  [[nodiscard]] const std::vector<EpochRecord>& history() const {
    return timeline_;
  }

  /// Advance the detector to view-time `now_s` and reconcile against the
  /// FailureModel. Returns true iff the membership epoch advanced (a rank
  /// was confirmed dead or a dead rank rejoined) — the caller's cue to
  /// re-plan at the next round barrier. Cheap when nothing changed: a
  /// FailureModel::version() check short-circuits unless probes are pending.
  bool poll(double now_s) {
    const std::uint64_t version =
        failures_ == nullptr ? 0 : failures_->version();
    if (version == last_version_ && pending_suspects_ == 0) return false;
    last_version_ = version;

    bool epoch_dirty = false;
    for (rank_t j = 0; j < num_members_; ++j) {
      Member& m = members_[j];
      const bool down = member_down(j);
      switch (m.state) {
        case State::kAlive:
          if (down) {
            m.state = State::kSuspect;
            m.probes_sent = 1;
            m.next_probe_s = now_s + opts_.probe_backoff.delay(1);
            ++pending_suspects_;
            ++stats_.suspects;
            ++stats_.probes;
            count("membership.suspects");
            event(obs::FlightEventKind::kRankSuspect, j, now_s, 0);
          }
          break;
        case State::kSuspect:
          if (!down) {
            // Probe answered: a flap, not a failure. No epoch change.
            m.state = State::kAlive;
            --pending_suspects_;
            ++stats_.flaps;
            count("membership.flaps");
            break;
          }
          // Still silent: issue every probe whose backoff deadline passed;
          // when the schedule is exhausted, declare the member dead.
          while (m.state == State::kSuspect && now_s >= m.next_probe_s) {
            if (m.probes_sent >= opts_.max_probes) {
              m.state = State::kDead;
              --pending_suspects_;
              ++stats_.deaths;
              epoch_dirty = true;
              count("membership.deaths");
              event(obs::FlightEventKind::kRankDead, j, now_s,
                    m.probes_sent);
            } else {
              ++m.probes_sent;
              ++stats_.probes;
              // Deadlines accumulate from the previous one, not from now_s:
              // one poll() far enough in the future drains the whole
              // schedule instead of advancing a single probe per call.
              m.next_probe_s += opts_.probe_backoff.delay(m.probes_sent);
            }
          }
          break;
        case State::kDead:
          if (!down) {
            m.state = State::kAlive;
            m.probes_sent = 0;
            ++stats_.joins;
            epoch_dirty = true;
            count("membership.joins");
            event(obs::FlightEventKind::kRankJoined, j, now_s, 0);
          }
          break;
      }
    }
    if (epoch_dirty) {
      ++epoch_;
      timeline_.push_back(EpochRecord{epoch_, now_s, dead_members()});
      count("membership.epoch_changes");
      if (opts_.metrics != nullptr) {
        opts_.metrics->gauge("membership.epoch").set(
            static_cast<double>(epoch_));
      }
      event(obs::FlightEventKind::kEpochChange, obs::kGlobalRank, now_s,
            static_cast<std::uint32_t>(epoch_));
    }
    if (opts_.metrics != nullptr && stats_.probes != probes_reported_) {
      opts_.metrics->counter("membership.probes")
          .add(stats_.probes - probes_reported_);
      probes_reported_ = stats_.probes;
    }
    return epoch_dirty;
  }

  /// Convenience for drivers with no heartbeat clock of their own: poll at
  /// `now_s` (so fresh failures enter suspicion), then again past every
  /// probe deadline so the new suspects resolve to dead within this call.
  bool poll_settled(double now_s) {
    bool changed = poll(now_s);
    changed |= poll(now_s + opts_.probe_backoff.total(opts_.max_probes + 1));
    return changed;
  }

 private:
  struct Member {
    State state = State::kAlive;
    std::uint32_t probes_sent = 0;
    double next_probe_s = 0;
  };

  /// Ground truth: all replicas of member j dead (group death), matching
  /// ReplicatedBsp::is_dead when replication > 1.
  [[nodiscard]] bool member_down(rank_t j) const {
    if (failures_ == nullptr) return false;
    for (std::uint32_t r = 0; r < opts_.replication; ++r) {
      const rank_t p = j + static_cast<rank_t>(r) * num_members_;
      if (!failures_->is_dead(p)) return false;
    }
    return true;
  }

  void count(const char* name) {
    if (opts_.metrics != nullptr) opts_.metrics->counter(name).add(1);
  }

  void event(obs::FlightEventKind kind, rank_t rank, double now_s,
             std::uint32_t code) {
    if (opts_.recorder == nullptr) return;
    obs::FlightEvent e;
    e.kind = kind;
    e.rank = rank;
    e.code = code;
    e.value = now_s;
    opts_.recorder->record(e);
  }

  rank_t num_members_;
  const FailureModel* failures_;
  MembershipOptions opts_;
  std::vector<Member> members_;
  std::vector<EpochRecord> timeline_;
  Stats stats_;
  std::uint64_t epoch_ = 0;
  std::uint64_t last_version_ = 0;
  std::uint64_t probes_reported_ = 0;
  std::uint32_t pending_suspects_ = 0;
};

}  // namespace kylix
