#include "core/autotune.hpp"

#include "common/check.hpp"

namespace kylix {

double measure_density(std::span<const KeySet> sets,
                       std::uint64_t num_features) {
  KYLIX_CHECK(!sets.empty());
  KYLIX_CHECK(num_features >= 1);
  double total = 0.0;
  for (const KeySet& s : sets) {
    total += static_cast<double>(s.size());
  }
  return total / (static_cast<double>(sets.size()) *
                  static_cast<double>(num_features));
}

DesignResult autotune(const AutotuneInput& input) {
  DesignInput design;
  design.num_features = input.num_features;
  design.num_machines = input.num_machines;
  design.alpha = input.alpha;
  design.partition_density = input.partition_density;
  design.bytes_per_element = input.bytes_per_element;
  design.min_packet_bytes =
      input.network.min_efficient_packet(input.target_utilization);
  return choose_degrees(design);
}

Topology autotune_topology(const AutotuneInput& input) {
  return Topology(autotune(input).degrees);
}

std::vector<UnionKernel> union_kernel_plan(
    const Topology& topology, std::span<const double> layer_elements) {
  KYLIX_CHECK(layer_elements.empty() ||
              layer_elements.size() == topology.num_layers());
  std::vector<UnionKernel> plan(topology.num_layers());
  for (std::uint16_t i = 1; i <= topology.num_layers(); ++i) {
    const std::size_t elements =
        layer_elements.empty()
            ? kernel_tuning().kway_min_elements
            : static_cast<std::size_t>(layer_elements[i - 1]);
    plan[i - 1] = choose_union_kernel(topology.degree(i), elements);
  }
  return plan;
}

}  // namespace kylix
