file(REMOVE_RECURSE
  "CMakeFiles/fig7_threads.dir/fig7_threads.cpp.o"
  "CMakeFiles/fig7_threads.dir/fig7_threads.cpp.o.d"
  "fig7_threads"
  "fig7_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
