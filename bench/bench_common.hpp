// Shared workload construction for the figure/table benches.
//
// The benches run the paper's experiments at a scaled-down size (DESIGN.md
// §2): vertex counts shrink from 60 M / 1.4 B to 2^18 / 2^20, edge counts
// are re-derived so the 64-way partition densities match the paper's
// measured 0.21 / 0.035, and the network model's per-message overhead
// shrinks proportionally so the minimum-efficient-packet boundary cuts
// through the degree choices the same way it does at paper scale (~50 KB
// floor instead of ~5 MB). Fig. 2 alone uses the unscaled EC2 constants,
// since it reproduces the raw hardware curve.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "kylix.hpp"

namespace kylix::bench {

/// Wall-clock stopwatch for the host-time benches (the figure benches use
/// the *modeled* network clock instead; never mix the two in one column).
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Minimal streaming JSON emitter for the BENCH_*.json artifacts. Handles
/// nesting and comma placement; numbers print with enough digits to
/// round-trip doubles. No external dependency (the container only has the
/// C++ toolchain).
class JsonWriter {
 public:
  explicit JsonWriter(const std::string& path) : out_(path) {}

  void begin_object() { open('{'); }
  void end_object() { close('}'); }
  void begin_array() { open('['); }
  void end_array() { close(']'); }

  void key(const std::string& name) {
    comma();
    quote(name);
    out_ << ':';
    pending_value_ = true;
  }

  void value(const std::string& s) { scalar([&] { quote(s); }); }
  void value(const char* s) { value(std::string(s)); }
  void value(double v) {
    scalar([&] {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out_ << buf;
    });
  }
  void value(std::uint64_t v) { scalar([&] { out_ << v; }); }
  void value(int v) { scalar([&] { out_ << v; }); }
  void value(bool v) { scalar([&] { out_ << (v ? "true" : "false"); }); }

  void key_value(const std::string& name, double v) { key(name); value(v); }
  void key_value(const std::string& name, std::uint64_t v) {
    key(name);
    value(v);
  }
  void key_value(const std::string& name, int v) { key(name); value(v); }
  void key_value(const std::string& name, bool v) { key(name); value(v); }
  void key_value(const std::string& name, const std::string& v) {
    key(name);
    value(v);
  }

  /// Flush and report stream health (false: unwritable path / disk error).
  bool finish() {
    out_ << '\n';
    out_.flush();
    return out_.good();
  }

 private:
  template <typename Fn>
  void scalar(Fn&& emit) {
    if (!pending_value_) comma();
    pending_value_ = false;
    emit();
    first_ = false;
  }

  void open(char c) {
    if (!pending_value_) comma();
    pending_value_ = false;
    out_ << c;
    first_ = true;
  }

  void close(char c) {
    out_ << c;
    first_ = false;
  }

  void comma() {
    if (!first_) out_ << ',';
    first_ = false;
  }

  void quote(const std::string& s) {
    out_ << '"';
    for (char c : s) {
      if (c == '"' || c == '\\') out_ << '\\';
      out_ << c;
    }
    out_ << '"';
  }

  std::ofstream out_;
  bool first_ = true;
  bool pending_value_ = false;
};

inline constexpr rank_t kMachines = 64;

/// The scaled testbed NIC. Calibration targets (EXPERIMENTS.md):
///  * direct all-to-all packets (~10 KB here, 0.4 MB in the paper) run well
///    below the efficient size, at ~20% utilization (paper: ~30%);
///  * the §IV workflow with kPacketFloorUtil reproduces the paper's degree
///    schedules (8x4x2 twitter-like, 16x4 yahoo-like) at this scale.
inline NetworkModel scaled_network() {
  NetworkModel net = NetworkModel::ec2_like();
  // Total per-message overhead 4e-5 s, weighted toward the unhideable
  // stack share (commodity-TCP copies dominate at this packet scale).
  net.stack_overhead_s = 3.2e-5;
  net.handshake_latency_s = 0.8e-5;
  net.base_latency_s = 5e-5;
  return net;
}

/// Packet-floor target for the scaled testbed: the packet size whose
/// transfer time equals the per-message overhead (τ = 0.5). The paper's own
/// 8x4x2 schedule implies a similar effective operating point — its layer-1
/// messages (~3 MB) sit below the quoted 5 MB floor.
inline constexpr double kPacketFloorUtil = 0.5;

/// Run the §IV workflow for a dataset at a given machine count.
inline DesignResult tune(std::uint64_t num_features, double alpha,
                         double density, rank_t machines) {
  AutotuneInput input;
  input.num_features = num_features;
  input.num_machines = machines;
  input.alpha = alpha;
  input.partition_density = density;
  input.network = scaled_network();
  input.target_utilization = kPacketFloorUtil;
  return autotune(input);
}

struct Dataset {
  std::string name;
  GraphSpec spec;
  std::vector<Edge> edges;
  std::vector<std::vector<Edge>> partitions;
  double measured_density = 0;      ///< destination-set density per machine
  Topology paper_topology{{}};      ///< the degrees the paper reports
  std::vector<KeySet> in_sets;      ///< per machine: local sources
  std::vector<KeySet> out_sets;     ///< per machine: sources ∪ destinations
  std::vector<std::vector<real_t>> out_values;  ///< deterministic payloads
};

/// Build one of the two scaled datasets ("twitter" or "yahoo") partitioned
/// over `machines` nodes. Generated edge lists are cached per preset so
/// sweeps over cluster sizes (Fig. 9) pay generation once.
inline Dataset make_dataset(const std::string& which,
                            rank_t machines = kMachines) {
  Dataset data;
  data.name = which + "-like";
  if (which == "twitter") {
    data.spec = twitter_like(1u << 18);
    data.paper_topology = Topology({8, 4, 2});
  } else {
    data.spec = yahoo_like(1u << 21);
    data.paper_topology = Topology({16, 4});
  }
  static std::map<std::string, std::vector<Edge>> edge_cache;
  auto cached = edge_cache.find(which);
  if (cached == edge_cache.end()) {
    cached =
        edge_cache.emplace(which, generate_zipf_graph(data.spec)).first;
  }
  data.edges = cached->second;
  data.partitions = random_edge_partition(data.edges, machines,
                                          data.spec.seed + 1);
  data.measured_density =
      measure_partition_density(data.partitions, data.spec.num_vertices);
  for (const auto& part : data.partitions) {
    const LocalGraph g{std::span<const Edge>(part)};
    UnionResult u = merge_union(g.sources().keys(), g.destinations().keys());
    data.in_sets.push_back(g.sources());
    data.out_sets.push_back(KeySet::from_sorted_keys(std::move(u.keys)));
    std::vector<real_t> values(data.out_sets.back().size());
    for (std::size_t p = 0; p < values.size(); ++p) {
      values[p] = static_cast<real_t>((p % 9) + 1) * 0.125f;
    }
    data.out_values.push_back(std::move(values));
  }
  return data;
}

/// Run one configure+reduce on `topology` and return the phase times under
/// the scaled network model; optionally expose the trace.
inline TimingAccumulator::PhaseTimes run_allreduce(
    const Dataset& data, const Topology& topology, std::uint32_t threads,
    Trace* trace_out = nullptr) {
  const NetworkModel net = scaled_network();
  const ComputeModel compute;
  TimingAccumulator timing(topology.num_machines(), net, compute, threads);
  BspEngine<real_t> engine(topology.num_machines(), nullptr, trace_out,
                           &timing);
  SparseAllreduce<real_t, OpSum, BspEngine<real_t>> allreduce(
      &engine, topology, &compute);
  allreduce.configure(data.in_sets, data.out_sets);
  (void)allreduce.reduce(data.out_values);
  return timing.times();
}

}  // namespace kylix::bench
