#!/usr/bin/env bash
# Thread-sanitized test run: configures a dedicated build tree with
# -DKYLIX_SANITIZE=thread, builds everything, and runs the concurrency-
# sensitive ctest lanes under TSan (the address-sanitized twin is
# tools/asan_ctest.sh).
#
# Only the labeled lanes run — TSan's ~10x slowdown makes the full suite
# wasteful when most tests are single-threaded by construction:
#   chaos       fault injection over the real-thread engines
#   membership  epoch swaps + heal/rejoin over threaded engines
#   async       the overlapped executor's scheduler park/wake edges
#   hierarchy   the intra-node single-copy stage over sharded pool workers
#   tsan        everything else that spawns real host threads
#
# Usage: tools/tsan_ctest.sh [build-dir] [ctest-args...]
#   build-dir defaults to build-tsan (kept separate from the plain and asan
#   trees so switching sanitizers never forces a full reconfigure).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-tsan"}"
shift || true

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DKYLIX_SANITIZE=thread
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error: the first report fails the test instead of scrolling past.
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"

ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
  -L chaos "$@"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
  -L membership "$@"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
  -L async "$@"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
  -L hierarchy "$@"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" \
  -L tsan "$@"
