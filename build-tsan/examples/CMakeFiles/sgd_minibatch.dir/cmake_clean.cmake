file(REMOVE_RECURSE
  "CMakeFiles/sgd_minibatch.dir/sgd_minibatch.cpp.o"
  "CMakeFiles/sgd_minibatch.dir/sgd_minibatch.cpp.o.d"
  "sgd_minibatch"
  "sgd_minibatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sgd_minibatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
