// Tree allreduce (§II-A.1, Fig. 1a) — implemented so its pathology is
// measurable, exactly as the paper describes it: "intermediate reductions
// grow in size … the middle (full reduction) node will have complete (fully
// dense) data which will often be intractably large."
//
// Upward pass: a binary aggregation tree over ranks; at level t every node
// whose low t bits are zero absorbs the (in set, out set, values) of the
// node 2^(t-1) above it. The root ends with the complete union. Downward
// pass: each parent answers its child's requested in-set from its own
// accumulated out-values.
//
// Phases map onto the trace as kReduceDown for aggregation and kReduceUp for
// distribution, with layer = tree level, so TimingAccumulator and Fig.-style
// volume charts work unchanged.
#pragma once

#include <cmath>
#include <vector>

#include "comm/bsp.hpp"
#include "core/topology.hpp"
#include "sparse/merge.hpp"
#include "sparse/ops.hpp"

namespace kylix {

template <typename V, typename Op = OpSum, typename Engine = BspEngine<V>>
class TreeAllreduce {
 public:
  explicit TreeAllreduce(Engine* engine) : engine_(engine) {
    KYLIX_CHECK(engine_ != nullptr);
    const rank_t m = engine_->num_ranks();
    KYLIX_CHECK_MSG((m & (m - 1)) == 0,
                    "tree allreduce requires a power-of-two machine count");
    levels_ = 0;
    for (rank_t x = m; x > 1; x /= 2) ++levels_;
  }

  /// One-shot sparse allreduce. result[r] aligns with in_sets[r] key order.
  [[nodiscard]] std::vector<std::vector<V>> reduce(
      std::vector<KeySet> in_sets, std::vector<KeySet> out_sets,
      std::vector<std::vector<V>> out_values) {
    const rank_t m = engine_->num_ranks();
    KYLIX_CHECK(in_sets.size() == m && out_sets.size() == m &&
                out_values.size() == m);
    states_.assign(m, State{});
    peak_out_ = 0;
    for (rank_t r = 0; r < m; ++r) {
      KYLIX_CHECK(out_values[r].size() == out_sets[r].size());
      states_[r].in = std::move(in_sets[r]);
      states_[r].subtree_in = states_[r].in;
      states_[r].out = std::move(out_sets[r]);
      states_[r].values = std::move(out_values[r]);
    }

    // Aggregate to the root. At level t, senders are ranks with bit t-1 set
    // and lower bits clear; receiver clears that bit.
    for (std::uint16_t level = 1; level <= levels_; ++level) {
      const rank_t bit = rank_t{1} << (level - 1);
      const rank_t mask = (rank_t{1} << level) - 1;
      engine_->round(
          Phase::kReduceDown, level,
          [&](rank_t r) {
            std::vector<Letter<V>> letters;
            if ((r & mask) == bit) {
              Letter<V> letter;
              letter.src = r;
              letter.dst = r ^ bit;
              letter.packet.in_keys.assign(states_[r].subtree_in.begin(),
                                           states_[r].subtree_in.end());
              letter.packet.out_keys.assign(states_[r].out.begin(),
                                            states_[r].out.end());
              letter.packet.values = states_[r].values;
              letters.push_back(std::move(letter));
            }
            return letters;
          },
          [&](rank_t r) {
            std::vector<rank_t> senders;
            if ((r & mask) == 0) senders.push_back(r | bit);
            return senders;
          },
          [&](rank_t r, std::vector<Letter<V>>&& inbox) {
            for (Letter<V>& letter : inbox) absorb(r, std::move(letter));
          });
    }

    // Distribute answers back down, deepest level last.
    for (std::uint16_t level = levels_; level >= 1; --level) {
      const rank_t bit = rank_t{1} << (level - 1);
      const rank_t mask = (rank_t{1} << level) - 1;
      engine_->round(
          Phase::kReduceUp, level,
          [&](rank_t r) {
            std::vector<Letter<V>> letters;
            if ((r & mask) == 0) {
              const rank_t child = r | bit;
              Letter<V> letter;
              letter.src = r;
              letter.dst = child;
              // Answer everything the child's subtree asked for (its
              // request set arrived over the wire during aggregation).
              for (key_t k : states_[r].child_requests[level - 1]) {
                const std::size_t pos = states_[r].out.find(k);
                KYLIX_CHECK_MSG(pos != KeySet::npos,
                                "requested index contributed by no machine");
                letter.packet.in_keys.push_back(k);
                letter.packet.values.push_back(states_[r].values[pos]);
              }
              letters.push_back(std::move(letter));
            }
            return letters;
          },
          [&](rank_t r) {
            std::vector<rank_t> senders;
            if ((r & mask) == bit) senders.push_back(r ^ bit);
            return senders;
          },
          [&](rank_t r, std::vector<Letter<V>>&& inbox) {
            for (Letter<V>& letter : inbox) {
              // The answered set becomes this subtree root's full reduction
              // source for deeper levels.
              states_[r].out =
                  KeySet::from_sorted_keys(std::move(letter.packet.in_keys));
              states_[r].values = std::move(letter.packet.values);
            }
          });
    }

    std::vector<std::vector<V>> results(m);
    for (rank_t r = 0; r < m; ++r) {
      results[r].reserve(states_[r].in.size());
      for (key_t k : states_[r].in) {
        const std::size_t pos = states_[r].out.find(k);
        KYLIX_CHECK(pos != KeySet::npos);
        results[r].push_back(states_[r].values[pos]);
      }
    }
    states_.clear();
    return results;
  }

  /// Peak accumulated out-set size across nodes — the "intractably large
  /// middle" the paper warns about; read after reduce() via probe_peak().
  [[nodiscard]] std::size_t last_peak_out_size() const { return peak_out_; }

 private:
  struct State {
    KeySet in;           ///< own request set
    KeySet subtree_in;   ///< own ∪ absorbed children's requests
    KeySet out;
    std::vector<V> values;
    /// child_requests[t-1] is what the level-t child asked for.
    std::vector<KeySet> child_requests;
  };

  void absorb(rank_t r, Letter<V>&& letter) {
    State& s = states_[r];
    const KeySet child_in = KeySet::from_sorted_keys(
        std::move(letter.packet.in_keys));
    UnionResult in_union =
        merge_union(s.subtree_in.keys(), child_in.keys());
    s.subtree_in = KeySet::from_sorted_keys(std::move(in_union.keys));
    s.child_requests.push_back(child_in);

    UnionResult out_union =
        merge_union(s.out.keys(), letter.packet.out_keys);
    std::vector<V> merged(out_union.keys.size(), Op::template identity<V>());
    scatter_combine<V, Op>(std::span<V>(merged),
                           std::span<const V>(s.values), out_union.maps[0]);
    scatter_combine<V, Op>(std::span<V>(merged),
                           std::span<const V>(letter.packet.values),
                           out_union.maps[1]);
    s.out = KeySet::from_sorted_keys(std::move(out_union.keys));
    s.values = std::move(merged);
    peak_out_ = std::max(peak_out_, s.out.size());
  }

  Engine* engine_;
  std::uint16_t levels_ = 0;
  std::vector<State> states_;
  std::size_t peak_out_ = 0;
};

}  // namespace kylix
