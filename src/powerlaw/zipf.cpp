#include "powerlaw/zipf.hpp"

#include <cmath>

#include "common/check.hpp"

namespace kylix {

namespace {

/// log1p(x)/x, stable near 0.
double helper1(double x) {
  if (std::abs(x) > 1e-8) return std::log1p(x) / x;
  return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x));
}

/// expm1(x)/x, stable near 0.
double helper2(double x) {
  if (std::abs(x) > 1e-8) return std::expm1(x) / x;
  return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x));
}

}  // namespace

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha) {
  KYLIX_CHECK(n >= 1);
  KYLIX_CHECK(alpha > 0.0);
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  return helper2((1.0 - alpha_) * log_x) * log_x;
}

double ZipfSampler::h_integral_inverse(double x) const {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // guard against rounding below the pole
  return std::exp(helper1(t) * x);
}

double ZipfSampler::h(double x) const {
  return std::exp(-alpha_ * std::log(x));
}

std::uint64_t ZipfSampler::operator()(Rng& rng) const {
  if (n_ == 1) return 1;
  for (;;) {
    const double u =
        h_integral_n_ + rng.uniform() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) {
      k = 1;
    } else if (k > n_) {
      k = n_;
    }
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

}  // namespace kylix
