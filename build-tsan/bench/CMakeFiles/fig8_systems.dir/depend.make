# Empty dependencies file for fig8_systems.
# This may be replaced when dependencies are built.
