// Sorted sets of hashed index keys — the fundamental currency of Kylix.
//
// Every index set the allreduce touches (in/out sets, per-layer unions,
// per-neighbor partitions) is a KeySet: a strictly increasing vector of
// hashed keys. Keeping sets sorted makes unions linear-time merges (§VI-A)
// and makes equal-key-range partitioning a pair of binary searches.
#pragma once

#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/hash.hpp"
#include "common/types.hpp"

namespace kylix {

/// Half-open range [lo, hi) of the 64-bit hashed key space.
struct KeyRange {
  key_t lo = 0;
  key_t hi = 0;  ///< exclusive; hi == 0 with lo == 0 denotes the full space

  /// The full 2^64 key space, represented as [0, 2^64) via the wrap at 0.
  static constexpr KeyRange full() { return KeyRange{0, 0}; }

  [[nodiscard]] constexpr bool is_full() const { return lo == 0 && hi == 0; }

  [[nodiscard]] constexpr bool contains(key_t k) const {
    if (is_full()) return true;
    return k >= lo && (hi == 0 ? true : k < hi);
  }

  /// Width as a long double (2^64 for the full range) — used only for
  /// proportional splitting, where rounding is irrelevant.
  [[nodiscard]] long double width() const {
    if (is_full()) return 18446744073709551616.0L;  // 2^64
    return static_cast<long double>(hi - lo);       // wraps correctly: hi>lo
  }

  /// Split into `parts` nearly-equal subranges and return subrange `which`.
  /// Subranges tile [lo, hi) exactly: part k is [bound(k), bound(k+1)).
  [[nodiscard]] KeyRange subrange(std::uint32_t which,
                                  std::uint32_t parts) const;

  friend bool operator==(const KeyRange&, const KeyRange&) = default;
};

/// An immutable-after-build, strictly sorted, duplicate-free set of keys.
class KeySet {
 public:
  KeySet() = default;

  /// Hash, sort, and dedup raw user indices.
  static KeySet from_indices(std::span<const index_t> indices);

  /// Adopt keys that may be unsorted / contain duplicates.
  static KeySet from_keys(std::vector<key_t> keys);

  /// Adopt keys the caller guarantees are strictly increasing (checked in
  /// debug builds only).
  static KeySet from_sorted_keys(std::vector<key_t> keys);

  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] bool empty() const { return keys_.empty(); }
  [[nodiscard]] key_t operator[](std::size_t i) const { return keys_[i]; }
  [[nodiscard]] std::span<const key_t> keys() const { return keys_; }

  [[nodiscard]] auto begin() const { return keys_.begin(); }
  [[nodiscard]] auto end() const { return keys_.end(); }

  /// Un-hash all keys back to the original user indices, in key order.
  [[nodiscard]] std::vector<index_t> to_indices() const;

  /// Binary search for a key; returns its position or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  [[nodiscard]] std::size_t find(key_t key) const;

  [[nodiscard]] bool contains(key_t key) const { return find(key) != npos; }

  /// Positions [first, last) of keys lying inside `range` (binary searches).
  struct Slice {
    std::size_t first = 0;
    std::size_t last = 0;
    [[nodiscard]] std::size_t size() const { return last - first; }
  };
  [[nodiscard]] Slice slice(const KeyRange& range) const;

  /// The boundaries produced by splitting this set across `parts` equal
  /// subranges of `range`: result has parts+1 entries, entry p is the first
  /// position belonging to part >= p. Every key must lie inside `range`.
  [[nodiscard]] std::vector<std::size_t> split_points(
      const KeyRange& range, std::uint32_t parts) const;

  /// Copy out the keys at positions [first, last).
  [[nodiscard]] std::vector<key_t> extract(std::size_t first,
                                           std::size_t last) const;

  /// extract() into a caller-owned buffer (overwritten, capacity reused).
  void extract_into(std::size_t first, std::size_t last,
                    std::vector<key_t>& out) const;

  /// True iff every key of *this is also in `other` (both sorted: linear).
  [[nodiscard]] bool subset_of(const KeySet& other) const;

  friend bool operator==(const KeySet&, const KeySet&) = default;

 private:
  explicit KeySet(std::vector<key_t> sorted) : keys_(std::move(sorted)) {}

  std::vector<key_t> keys_;
};

}  // namespace kylix
