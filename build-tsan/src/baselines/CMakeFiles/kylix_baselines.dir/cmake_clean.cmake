file(REMOVE_RECURSE
  "CMakeFiles/kylix_baselines.dir/hadoop_model.cpp.o"
  "CMakeFiles/kylix_baselines.dir/hadoop_model.cpp.o.d"
  "libkylix_baselines.a"
  "libkylix_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kylix_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
