#include "cluster/fault_plan.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/check.hpp"

namespace kylix {
namespace {

TEST(FaultPlan, CrashAtRoundFiresExactlyOnce) {
  FaultPlan plan(4);
  plan.crash_at_round(2, 1);
  EXPECT_TRUE(plan.scripted());

  plan.begin_round(Phase::kConfig, 3);  // round 0
  EXPECT_FALSE(plan.failures().is_dead(2));
  plan.begin_round(Phase::kConfig, 2);  // round 1
  EXPECT_TRUE(plan.failures().is_dead(2));
  EXPECT_EQ(plan.stats().crashes, 1u);

  // The event does not re-fire even after an external revive.
  plan.failures().revive(2);
  plan.begin_round(Phase::kConfig, 1);  // round 2
  EXPECT_FALSE(plan.failures().is_dead(2));
  EXPECT_EQ(plan.stats().crashes, 1u);
}

TEST(FaultPlan, ReviveAtRoundRestoresNode) {
  FaultPlan plan(4);
  plan.crash_at_round(1, 0);
  plan.revive_at_round(1, 2);

  plan.begin_round(Phase::kReduceDown, 1);
  EXPECT_TRUE(plan.failures().is_dead(1));
  plan.begin_round(Phase::kReduceDown, 2);
  EXPECT_TRUE(plan.failures().is_dead(1));
  plan.begin_round(Phase::kReduceDown, 3);
  EXPECT_FALSE(plan.failures().is_dead(1));
  EXPECT_EQ(plan.stats().crashes, 1u);
  EXPECT_EQ(plan.stats().revivals, 1u);
}

TEST(FaultPlan, CrashOnDeadNodeAndReviveOnAliveNodeAreNoOps) {
  FaultPlan plan(4);
  plan.failures().kill(3);
  plan.crash_at_round(3, 0);   // already dead: no stat
  plan.revive_at_round(2, 1);  // already alive: no stat
  plan.begin_round(Phase::kConfig, 1);
  plan.begin_round(Phase::kConfig, 2);
  EXPECT_EQ(plan.stats().crashes, 0u);
  EXPECT_EQ(plan.stats().revivals, 0u);
}

TEST(FaultPlan, CrashAtPhaseLayerOccurrence) {
  FaultPlan plan(8);
  // The second time {reduce-up, layer 2} begins (occurrence 1).
  plan.crash_at(5, Phase::kReduceUp, 2, 1);

  plan.begin_round(Phase::kReduceUp, 2);  // occurrence 0
  EXPECT_FALSE(plan.failures().is_dead(5));
  plan.begin_round(Phase::kReduceDown, 2);  // different phase, same layer
  EXPECT_FALSE(plan.failures().is_dead(5));
  plan.begin_round(Phase::kReduceUp, 1);  // same phase, different layer
  EXPECT_FALSE(plan.failures().is_dead(5));
  plan.begin_round(Phase::kReduceUp, 2);  // occurrence 1 -> fires
  EXPECT_TRUE(plan.failures().is_dead(5));
}

TEST(FaultPlan, ReviveAtPhaseLayer) {
  FaultPlan plan(4);
  plan.crash_at(0, Phase::kConfig, 2);
  plan.revive_at(0, Phase::kReduceUp, 2);
  plan.begin_round(Phase::kConfig, 2);
  EXPECT_TRUE(plan.failures().is_dead(0));
  plan.begin_round(Phase::kReduceDown, 2);
  EXPECT_TRUE(plan.failures().is_dead(0));
  plan.begin_round(Phase::kReduceUp, 2);
  EXPECT_FALSE(plan.failures().is_dead(0));
}

TEST(FaultPlan, RoundCounters) {
  FaultPlan plan(2);
  EXPECT_EQ(plan.rounds_begun(), 0u);
  plan.begin_round(Phase::kConfig, 1);
  plan.begin_round(Phase::kReduceDown, 1);
  EXPECT_EQ(plan.rounds_begun(), 2u);
  EXPECT_EQ(plan.current_round(), 1u);
}

TEST(FaultPlan, CurrentRoundBeforeAnyRoundThrows) {
  FaultPlan plan(2);
  EXPECT_THROW((void)plan.current_round(), check_error);
}

TEST(FaultPlan, OutOfRangeNodesThrow) {
  FaultPlan plan(4);
  EXPECT_THROW(plan.crash_at_round(4, 0), check_error);
  EXPECT_THROW(plan.revive_at_round(7, 0), check_error);
  EXPECT_THROW(plan.crash_at(4, Phase::kConfig, 1), check_error);
  EXPECT_THROW(plan.add_edge_rule({4, 0}), check_error);
}

TEST(FaultPlan, EdgeRuleCountsDownAndExpires) {
  FaultPlan plan(4);
  FaultPlan::EdgeRule rule;
  rule.src = 1;
  rule.dst = 2;
  rule.action = FaultAction::kDrop;
  rule.count = 2;
  plan.add_edge_rule(rule);
  plan.begin_round(Phase::kReduceDown, 1);

  EXPECT_EQ(plan.classify(1, 2).action, FaultAction::kDrop);
  EXPECT_EQ(plan.classify(2, 1).action, FaultAction::kDeliver);  // other edge
  EXPECT_EQ(plan.classify(1, 2).action, FaultAction::kDrop);
  EXPECT_EQ(plan.classify(1, 2).action, FaultAction::kDeliver);  // expired
  EXPECT_EQ(plan.stats().dropped, 2u);
}

TEST(FaultPlan, EdgeRuleDelayCarriesDelayRounds) {
  FaultPlan plan(4);
  FaultPlan::EdgeRule rule;
  rule.src = 0;
  rule.dst = 3;
  rule.action = FaultAction::kDelay;
  rule.delay_rounds = 2;
  plan.add_edge_rule(rule);
  plan.begin_round(Phase::kConfig, 1);

  const FaultPlan::Decision d = plan.classify(0, 3);
  EXPECT_EQ(d.action, FaultAction::kDelay);
  EXPECT_EQ(d.delay_rounds, 2u);
  EXPECT_EQ(plan.stats().delayed, 1u);
}

TEST(FaultPlan, EdgeRuleDelayNeedsPositiveDelay) {
  FaultPlan plan(4);
  FaultPlan::EdgeRule rule;
  rule.src = 0;
  rule.dst = 1;
  rule.action = FaultAction::kDelay;
  rule.delay_rounds = 0;
  EXPECT_THROW(plan.add_edge_rule(rule), check_error);
}

TEST(FaultPlan, TransientRatesAreSeedDeterministic) {
  FaultPlan::TransientRates rates;
  rates.drop = 0.2;
  rates.duplicate = 0.2;
  rates.delay = 0.2;

  FaultPlan a(8, /*seed=*/7);
  FaultPlan b(8, /*seed=*/7);
  a.set_transient_rates(rates);
  b.set_transient_rates(rates);
  a.begin_round(Phase::kReduceDown, 1);
  b.begin_round(Phase::kReduceDown, 1);

  bool saw_fault = false;
  for (int i = 0; i < 200; ++i) {
    const FaultPlan::Decision da = a.classify(0, 1);
    const FaultPlan::Decision db = b.classify(0, 1);
    EXPECT_EQ(da.action, db.action);
    if (da.action != FaultAction::kDeliver) saw_fault = true;
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_EQ(a.stats().dropped, b.stats().dropped);
  EXPECT_EQ(a.stats().duplicated, b.stats().duplicated);
  EXPECT_EQ(a.stats().delayed, b.stats().delayed);
  // All three actions appear at these rates over 200 draws (whp).
  EXPECT_GT(a.stats().dropped, 0u);
  EXPECT_GT(a.stats().duplicated, 0u);
  EXPECT_GT(a.stats().delayed, 0u);
}

TEST(FaultPlan, TransientRatesRespectPhaseMask) {
  FaultPlan::TransientRates rates;
  rates.drop = 1.0;  // every message, when the phase is enabled
  rates.config = false;
  rates.reduce_up = false;
  FaultPlan plan(4, 3);
  plan.set_transient_rates(rates);

  plan.begin_round(Phase::kConfig, 1);
  EXPECT_EQ(plan.classify(0, 1).action, FaultAction::kDeliver);
  plan.begin_round(Phase::kReduceDown, 1);
  EXPECT_EQ(plan.classify(0, 1).action, FaultAction::kDrop);
  plan.begin_round(Phase::kReduceUp, 1);
  EXPECT_EQ(plan.classify(0, 1).action, FaultAction::kDeliver);
}

TEST(FaultPlan, TransientRatesValidate) {
  FaultPlan plan(4);
  FaultPlan::TransientRates bad;
  bad.drop = 0.7;
  bad.duplicate = 0.7;  // sums past 1
  EXPECT_THROW(plan.set_transient_rates(bad), check_error);
  FaultPlan::TransientRates delay;
  delay.delay = 0.1;
  delay.delay_rounds = 0;
  EXPECT_THROW(plan.set_transient_rates(delay), check_error);
}

TEST(FaultPlan, EdgeRulesTakePrecedenceOverRates) {
  FaultPlan::TransientRates rates;
  rates.drop = 1.0;
  FaultPlan plan(4, 11);
  plan.set_transient_rates(rates);
  FaultPlan::EdgeRule rule;
  rule.src = 0;
  rule.dst = 1;
  rule.action = FaultAction::kDuplicate;
  plan.add_edge_rule(rule);
  plan.begin_round(Phase::kReduceDown, 1);

  EXPECT_EQ(plan.classify(0, 1).action, FaultAction::kDuplicate);
  EXPECT_EQ(plan.classify(0, 1).action, FaultAction::kDrop);  // rule spent
}

TEST(FaultPlan, RandomCrashesPickDistinctVictimsDeterministically) {
  FaultPlan a(16, 21);
  FaultPlan b(16, 21);
  a.random_crashes(5, /*round_horizon=*/9);
  b.random_crashes(5, 9);
  for (std::uint64_t round = 0; round < 9; ++round) {
    a.begin_round(Phase::kReduceDown, 1);
    b.begin_round(Phase::kReduceDown, 1);
  }
  EXPECT_EQ(a.stats().crashes, 5u);
  EXPECT_EQ(a.failures().dead_nodes(), b.failures().dead_nodes());
  EXPECT_EQ(a.failures().num_dead(), 5u);

  FaultPlan c(16, 22);
  c.random_crashes(5, 9);
  for (std::uint64_t round = 0; round < 9; ++round) {
    c.begin_round(Phase::kReduceDown, 1);
  }
  EXPECT_NE(c.failures().dead_nodes(), a.failures().dead_nodes());
}

TEST(FaultPlan, RandomCrashesValidate) {
  FaultPlan plan(4);
  EXPECT_THROW(plan.random_crashes(5, 3), check_error);  // > num_nodes
  EXPECT_THROW(plan.random_crashes(1, 0), check_error);  // empty horizon
  plan.random_crashes(0, 0);                             // no-op is fine
  EXPECT_FALSE(plan.scripted());
}

TEST(FaultPlan, KillsBumpFailureModelVersion) {
  FaultPlan plan(4);
  plan.crash_at_round(1, 0);
  const std::uint64_t before = plan.failures().version();
  plan.begin_round(Phase::kConfig, 1);
  EXPECT_GT(plan.failures().version(), before);
}

}  // namespace
}  // namespace kylix
