# Empty compiler generated dependencies file for allreduce_fuzz_test.
# This may be replaced when dependencies are built.
