file(REMOVE_RECURSE
  "CMakeFiles/allreduce_parallel_test.dir/core/allreduce_parallel_test.cpp.o"
  "CMakeFiles/allreduce_parallel_test.dir/core/allreduce_parallel_test.cpp.o.d"
  "allreduce_parallel_test"
  "allreduce_parallel_test.pdb"
  "allreduce_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allreduce_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
