# Empty compiler generated dependencies file for autotune_test.
# This may be replaced when dependencies are built.
