// ThreadPool behavior and ParallelBspEngine round-level parity with
// BspEngine: same delivered state, same trace event sequence, same modeled
// timing — with observers, failures, and compute charges in play.
#include "comm/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "comm/bsp.hpp"
#include "common/thread_pool.hpp"

namespace kylix {
namespace {

TEST(ThreadPool, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(n, [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ReusableAcrossManyBatches) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int batch = 0; batch < 200; ++batch) {
    pool.parallel_for(17, [&](std::size_t i) {
      total.fetch_add(i + 1, std::memory_order_relaxed);
    });
  }
  // 200 batches of sum 1..17 = 153 each.
  EXPECT_EQ(total.load(), 200u * 153u);
}

TEST(ThreadPool, RethrowsWorkerException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_for(64,
                                 [&](std::size_t i) {
                                   ran.fetch_add(1);
                                   if (i == 7) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // Remaining indices still ran to completion.
  EXPECT_EQ(ran.load(), 64);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::vector<int> order;
  pool.parallel_for(5, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, ZeroItemsIsANoOp) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "should not run"; });
}

// ---------------------------------------------------------------------------
// Engine parity. A synthetic round: rank r sends (r+1)%m and (r+3)%m a
// packet of values; consumers sum what they receive and charge compute
// proportional to the received element count.

using Engine = BspEngine<float>;
using Parallel = ParallelBspEngine<float>;

bool same_event(const MsgEvent& a, const MsgEvent& b) {
  return a.phase == b.phase && a.layer == b.layer && a.src == b.src &&
         a.dst == b.dst && a.bytes == b.bytes;
}

void expect_same_trace(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    EXPECT_TRUE(same_event(a.events()[i], b.events()[i])) << "event " << i;
  }
}

template <typename E>
std::vector<float> run_synthetic_rounds(E& engine, rank_t m) {
  std::vector<float> state(m, 0.0f);
  std::vector<std::vector<Letter<float>>> outboxes(m);
  std::vector<std::vector<rank_t>> groups(m);
  for (rank_t r = 0; r < m; ++r) {
    groups[r] = {static_cast<rank_t>((r + m - 1) % m),
                 static_cast<rank_t>((r + m - 3) % m)};
  }
  for (std::uint16_t layer = 1; layer <= 3; ++layer) {
    engine.round(
        Phase::kReduceDown, layer,
        [&](rank_t r) -> std::vector<Letter<float>>& {
          auto& out = outboxes[r];
          out.clear();
          for (rank_t offset : {rank_t{1}, rank_t{3}}) {
            Letter<float> letter;
            letter.src = r;
            letter.dst = static_cast<rank_t>((r + offset) % m);
            for (rank_t v = 0; v < 4 + r; ++v) {
              letter.packet.values.push_back(
                  static_cast<float>(r * 100 + layer * 10 + v));
            }
            out.push_back(std::move(letter));
          }
          return out;
        },
        [&](rank_t r) -> const std::vector<rank_t>& { return groups[r]; },
        [&](rank_t r, std::vector<Letter<float>>&& inbox) {
          std::size_t elements = 0;
          for (const Letter<float>& letter : inbox) {
            for (float v : letter.packet.values) state[r] += v;
            elements += letter.packet.values.size();
          }
          engine.charge_compute(Phase::kReduceDown, layer, r,
                                1e-7 * static_cast<double>(elements));
        });
  }
  return state;
}

TEST(ParallelBspEngine, MatchesBspStateTraceAndTimingExactly) {
  const rank_t m = 12;
  const NetworkModel net = NetworkModel::ec2_like();
  const ComputeModel compute;

  Trace seq_trace, par_trace;
  TimingAccumulator seq_timing(m, net, compute, 16);
  TimingAccumulator par_timing(m, net, compute, 16);

  Engine seq(m, nullptr, &seq_trace, &seq_timing);
  Parallel par(m, 4, nullptr, &par_trace, &par_timing);

  const auto seq_state = run_synthetic_rounds(seq, m);
  const auto par_state = run_synthetic_rounds(par, m);

  EXPECT_EQ(seq_state, par_state);
  expect_same_trace(seq_trace, par_trace);
  EXPECT_EQ(seq_timing.times().total(), par_timing.times().total());
  for (std::uint16_t layer = 1; layer <= 3; ++layer) {
    EXPECT_EQ(seq_timing.round_time(Phase::kReduceDown, layer),
              par_timing.round_time(Phase::kReduceDown, layer))
        << "layer " << layer;
  }
}

TEST(ParallelBspEngine, MatchesBspUnderFailures) {
  const rank_t m = 12;
  FailureModel failures(m);
  failures.kill(2);
  failures.kill(9);

  Trace seq_trace, par_trace;
  Engine seq(m, &failures, &seq_trace, nullptr);
  Parallel par(m, 4, &failures, &par_trace, nullptr);

  const auto seq_state = run_synthetic_rounds(seq, m);
  const auto par_state = run_synthetic_rounds(par, m);

  EXPECT_EQ(seq_state, par_state);
  expect_same_trace(seq_trace, par_trace);
  EXPECT_TRUE(par.is_dead(2));
  EXPECT_FALSE(par.is_dead(3));
}

TEST(ParallelBspEngine, SingleThreadDegeneratesToBsp) {
  const rank_t m = 6;
  Trace seq_trace, par_trace;
  Engine seq(m, nullptr, &seq_trace, nullptr);
  Parallel par(m, 1, nullptr, &par_trace, nullptr);
  EXPECT_EQ(par.num_threads(), 1u);

  EXPECT_EQ(run_synthetic_rounds(seq, m), run_synthetic_rounds(par, m));
  expect_same_trace(seq_trace, par_trace);
}

}  // namespace
}  // namespace kylix
