#!/usr/bin/env bash
# Kernel perf regression gate: rebuilds bench/micro_kernels in Release,
# re-measures every kernel row, and compares kernel_eps against the
# committed BENCH_kernels.json. A row regressing by more than the tolerance
# fails the script (exit 1) and the table marks it REGRESS.
#
# Wall-clock microbenches are noisy across hosts, so the committed artifact
# is a same-machine baseline: refresh it (run micro_kernels, commit the
# JSON) whenever the kernels or the hardware change intentionally. The
# default 25% tolerance absorbs scheduler jitter on shared runners while
# still catching algorithmic regressions (the kernels win by 2-4x, not
# percents).
#
# The script also gates the chaos layer's no-fault overhead: with no
# FaultPlan attached, the FaultChannel hooks in every engine must cost
# nothing, so the engine wall-clock bench (BENCH_engines.json) is
# re-measured and compared too — see the second gate below.
#
# A third gate covers plan reuse: the same fresh wall_engines run records a
# plan_reuse block per preset, and cached-plan replay must beat running
# configuration every iteration (with strided replay bit-identical to
# independent reduces) — see the plan-reuse gate at the bottom.
#
# A fourth gate covers streaming: each preset's streaming block must show
# the pipelined chunked reduce beating barriered letter-at-once by 1.15x on
# the modeled clock, with streamed results bit-identical.
#
# A fifth gate covers the async overlapped executor (DESIGN §11): each
# preset's async block must show >= 1.3x aggregate reduces/sec vs the
# serialized (window=1) replay of the same streams at a window of >= 4,
# with per-stream p50/p99 completion latency reported and every overlapped
# stream bit-identical to its serialized replay.
#
# A sixth gate holds the observability overhead to a tight *absolute* band:
# the paired-ratio median in wall_engines kills measurement drift, so both
# the instrumented and dark columns must sit within +/-4% of bare — a
# negative reading outside the band is just as much a measurement bug as a
# positive one is a perf bug.
#
# Usage: tools/bench_check.sh [build-dir] [tolerance] [engine-tolerance]
#   build-dir defaults to build-bench (separate tree pinned to Release so a
#   Debug working tree never produces bogus regressions).
#   tolerance defaults to 0.25 (new_eps >= (1 - tol) * old_eps).
#   engine-tolerance defaults to 0.5 (new_s <= (1 + tol) * old_s).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-bench"}"
tolerance="${2:-0.25}"
engine_tolerance="${3:-0.5}"
baseline="${repo_root}/BENCH_kernels.json"

if [[ ! -f "${baseline}" ]]; then
  echo "error: no committed baseline at ${baseline}" >&2
  echo "       run bench/micro_kernels once and commit its output" >&2
  exit 2
fi

cmake -S "${repo_root}" -B "${build_dir}" -DCMAKE_BUILD_TYPE=Release
cmake --build "${build_dir}" -j "$(nproc)" --target micro_kernels

fresh="${build_dir}/BENCH_kernels_fresh.json"
"${build_dir}/bench/micro_kernels" "${fresh}" > /dev/null

python3 - "${baseline}" "${fresh}" "${tolerance}" <<'EOF'
import json
import sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
baseline = json.load(open(baseline_path))
fresh = json.load(open(fresh_path))

def rows(doc):
    return {(r["kernel"], r["size"], r["skew"]): r for r in doc["kernels"]}

old, new = rows(baseline), rows(fresh)
missing = sorted(set(old) - set(new))
if missing:
    print(f"error: fresh run lacks {len(missing)} baseline rows: {missing}")
    sys.exit(1)

print(f"{'kernel':<16}{'size':>9} {'skew':<15}{'old el/s':>11}"
      f"{'new el/s':>11}{'ratio':>7}  status")
failed = 0
for key in sorted(old):
    o, n = old[key]["kernel_eps"], new[key]["kernel_eps"]
    ratio = n / o if o else float("inf")
    ok = n >= (1.0 - tol) * o
    failed += not ok
    print(f"{key[0]:<16}{key[1]:>9} {key[2]:<15}{o:>11.3g}{n:>11.3g}"
          f"{ratio:>7.2f}  {'ok' if ok else 'REGRESS'}")

if failed:
    print(f"\n{failed} kernel row(s) regressed beyond "
          f"{tol:.0%} tolerance vs {baseline_path}")
    sys.exit(1)
print(f"\nall {len(old)} kernel rows within {tol:.0%} of the baseline")
EOF

# ---- No-fault-overhead gate ------------------------------------------------
# The chaos layer adds a delivery hook to every engine; with fault hooks
# disabled (no FaultChannel attached — exactly what wall_engines runs) the
# engines must not get slower. Wall times are far noisier than throughput
# ratios, so the tolerance is wide by default (50%): this catches accidental
# per-letter work on the no-fault path, not percent-level jitter. Refresh
# the committed artifact the same way as the kernel baseline.
engines_baseline="${repo_root}/BENCH_engines.json"
if [[ ! -f "${engines_baseline}" ]]; then
  echo "error: no committed baseline at ${engines_baseline}" >&2
  echo "       run bench/wall_engines once and commit its output" >&2
  exit 2
fi

cmake --build "${build_dir}" -j "$(nproc)" --target wall_engines
engines_fresh="${build_dir}/BENCH_engines_fresh.json"
engines_threads="$(python3 -c \
  'import json,sys; print(json.load(open(sys.argv[1]))["engine_threads"])' \
  "${engines_baseline}")"
"${build_dir}/bench/wall_engines" "${engines_threads}" "${engines_fresh}" \
  > /dev/null

python3 - "${engines_baseline}" "${engines_fresh}" "${engine_tolerance}" <<'EOF'
import json
import sys

baseline_path, fresh_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])
baseline = json.load(open(baseline_path))
fresh = json.load(open(fresh_path))

def rows(doc):
    out = {}
    for preset in doc["presets"]:
        for engine in ("sequential", "parallel"):
            for metric in ("configure_s", "warm_reduce_mean_s"):
                out[(preset["name"], engine, metric)] = \
                    preset[engine][metric]
    return out

old, new = rows(baseline), rows(fresh)
missing = sorted(set(old) - set(new))
if missing:
    print(f"error: fresh run lacks {len(missing)} baseline rows: {missing}")
    sys.exit(1)

print(f"\n{'preset':<14}{'engine':<12}{'metric':<20}{'old s':>10}"
      f"{'new s':>10}{'ratio':>7}  status")
failed = 0
for key in sorted(old):
    o, n = old[key], new[key]
    ratio = n / o if o else float("inf")
    ok = n <= (1.0 + tol) * o
    failed += not ok
    print(f"{key[0]:<14}{key[1]:<12}{key[2]:<20}{o:>10.4f}{n:>10.4f}"
          f"{ratio:>7.2f}  {'ok' if ok else 'REGRESS'}")

if failed:
    print(f"\n{failed} engine row(s) slower than {tol:.0%} over "
          f"{baseline_path} — the no-fault path grew overhead")
    sys.exit(1)
print(f"\nall {len(old)} engine rows within {tol:.0%} of the baseline: "
      "fault hooks are free when disabled")
EOF

# ---- Plan-reuse gate -------------------------------------------------------
# The plan/executor split exists to make recurring sparsity patterns cheap:
# a warm cached replay (configure_cached hit + reduce) must beat running
# configuration every iteration (reduce_with_config), or the cache is dead
# weight. The margin is deliberately modest (1.2x) — the measured advantage
# is 2-4x, dominated by the skipped config rounds — and the strided path
# must stay bit-identical to independent replays.
python3 - "${engines_fresh}" <<'EOF'
import json
import sys

doc = json.load(open(sys.argv[1]))
min_speedup = 1.2

print(f"\n{'preset':<14}{'combined s/it':>14}{'replay s/it':>13}"
      f"{'speedup':>9}  status")
failed = 0
for preset in doc["presets"]:
    reuse = preset["plan_reuse"]
    ok = reuse["cached_replay_speedup"] >= min_speedup
    identical = reuse["strided_bit_identical"]
    failed += (not ok) + (not identical)
    status = "ok" if ok else "REGRESS"
    if not identical:
        status += " STRIDED-MISMATCH"
    print(f"{preset['name']:<14}{reuse['combined_per_iter_s']:>14.4f}"
          f"{reuse['cached_replay_per_iter_s']:>13.4f}"
          f"{reuse['cached_replay_speedup']:>8.2f}x  {status}")

if failed:
    print(f"\nplan-reuse gate FAILED: cached replay must beat per-iteration "
          f"configure+reduce by {min_speedup}x and strided replay must be "
          f"bit-identical")
    sys.exit(1)
print(f"\nplan-reuse gate passed: cached replay >= {min_speedup}x on every "
      "preset, strided replay bit-identical")
EOF

# ---- Streaming gate --------------------------------------------------------
# The streaming executor (DESIGN §9) exists to overlap scatter-reduce with
# allgather: on the modeled network clock, the pipelined chunked reduce must
# beat the barriered letter-at-once reduce by at least 1.15x on every
# preset, and the streamed results must be bit-identical to letter-at-once
# (the determinism contract — same combine order, not just same sums). The
# ablation runs the stride-16 big-letter regime and sweeps chunk sizes
# around the efficiency knee (the optimum lands on min_efficient_packet at
# k = 3-4, measured 1.35-1.50x); dipping below 1.15x means per-chunk
# overheads ate the overlap.
python3 - "${engines_fresh}" <<'EOF'
import json
import sys

doc = json.load(open(sys.argv[1]))
min_speedup = 1.15

print(f"\n{'preset':<14}{'letter s':>10}{'streamed s':>12}{'speedup':>9}"
      f"{'k':>4}{'overlap':>9}  status")
failed = 0
for preset in doc["presets"]:
    s = preset["streaming"]
    ok = s["modeled_speedup"] >= min_speedup
    identical = s["stream_bit_identical"]
    failed += (not ok) + (not identical)
    status = "ok" if ok else "REGRESS"
    if not identical:
        status += " STREAM-MISMATCH"
    print(f"{preset['name']:<14}{s['letter_modeled_s']:>10.4f}"
          f"{s['streamed_modeled_s']:>12.4f}{s['modeled_speedup']:>8.2f}x"
          f"{s['max_chunks_per_letter']:>4}{s['overlap_ratio']:>9.2f}"
          f"  {status}")

if failed:
    print(f"\nstreaming gate FAILED: pipelined chunked reduce must beat "
          f"letter-at-once by {min_speedup}x on the modeled clock and stay "
          f"bit-identical")
    sys.exit(1)
print(f"\nstreaming gate passed: streamed reduce >= {min_speedup}x letter-"
      "at-once on every preset, results bit-identical")
EOF

# ---- Observability-overhead gate -------------------------------------------
# The flight recorder, percentile histograms, and anomaly watchdog ride the
# warm replay path; the same fresh wall_engines run replays each preset
# bare, fully instrumented, and with every sink disabled, interleaved
# pairwise so host-load drift cancels inside each repeat. The gate is on
# the ABSOLUTE deviation: instrumented and dark must both sit within +/-4%
# of bare. An impossible negative reading (instrumented "faster" than
# bare) outside the band means the measurement drifted, and that is a
# failure too — it used to hide real overhead behind -5% noise.
python3 - "${engines_fresh}" <<'EOF'
import json
import sys

doc = json.load(open(sys.argv[1]))
max_overhead = 0.04

print(f"\n{'preset':<14}{'bare s':>10}{'instr s':>10}{'dark s':>10}"
      f"{'instr ovh':>11}{'dark ovh':>10}  status")
failed = 0
for preset in doc["presets"]:
    o = preset["observability"]
    ok_instr = abs(o["overhead_instrumented"]) <= max_overhead
    ok_dark = abs(o["overhead_disabled"]) <= max_overhead
    failed += (not ok_instr) + (not ok_dark)
    status = "ok" if (ok_instr and ok_dark) else "REGRESS"
    print(f"{preset['name']:<14}{o['bare_warm_min_s']:>10.4f}"
          f"{o['instrumented_warm_min_s']:>10.4f}"
          f"{o['disabled_warm_min_s']:>10.4f}"
          f"{o['overhead_instrumented']:>10.1%}"
          f"{o['overhead_disabled']:>9.1%}  {status}")

if failed:
    print(f"\nobservability gate FAILED: recorder+watchdog overhead must "
          f"stay within +/-{max_overhead:.0%} of the bare warm replay "
          f"(absolute band: negative drift is a measurement bug)")
    sys.exit(1)
print(f"\nobservability gate passed: instrumented and disabled replays "
      f"within +/-{max_overhead:.0%} of bare on every preset")
EOF

# ---- Async-overlap gate ----------------------------------------------------
# The async executor (DESIGN §11) exists to keep the modeled NICs busy with
# other streams' letters while any one stream waits out handshake gaps and
# compute: the overlapped window must push aggregate reduces/sec to at
# least 1.3x the serialized (window=1) replay of the exact same streams, at
# a window of at least 4, with per-stream p50/p99 completion latency
# reported and every overlapped stream bit-identical to its serialized
# replay (measured 1.5-1.7x at a window of 8 over 16 streams, ~95%+
# bottleneck-NIC occupancy).
python3 - "${engines_fresh}" <<'PYGATE'
import json
import sys

doc = json.load(open(sys.argv[1]))
min_speedup = 1.3
min_inflight = 4

print(f"\n{'preset':<14}{'serial s':>10}{'async s':>10}{'speedup':>9}"
      f"{'k':>4}{'p50 s':>9}{'p99 s':>9}{'NIC':>6}  status")
failed = 0
for preset in doc["presets"]:
    a = preset["async"]
    ok = a["aggregate_speedup"] >= min_speedup
    ok_window = a["inflight"] >= min_inflight
    ok_latency = a["latency_p50_s"] > 0 and a["latency_p99_s"] > 0
    identical = a["bit_identical"]
    failed += (not ok) + (not ok_window) + (not ok_latency) + (not identical)
    status = "ok" if ok else "REGRESS"
    if not ok_window:
        status += " WINDOW<4"
    if not ok_latency:
        status += " NO-LATENCY"
    if not identical:
        status += " STREAM-MISMATCH"
    print(f"{preset['name']:<14}{a['serialized_modeled_s']:>10.4f}"
          f"{a['async_modeled_s']:>10.4f}{a['aggregate_speedup']:>8.2f}x"
          f"{a['inflight']:>4}{a['latency_p50_s']:>9.4f}"
          f"{a['latency_p99_s']:>9.4f}{a['tx_utilization']:>6.0%}  {status}")

if failed:
    print(f"\nasync-overlap gate FAILED: overlapped window must deliver "
          f">= {min_speedup}x aggregate reduces/sec vs serialized replay "
          f"at >= {min_inflight} in flight, bit-identical, with latency "
          f"percentiles reported")
    sys.exit(1)
print(f"\nasync-overlap gate passed: >= {min_speedup}x serialized at "
      f">= {min_inflight} in flight on every preset, streams bit-identical")
PYGATE

# ---- Hierarchy gate --------------------------------------------------------
# The two-tier topology (DESIGN §13) folds the preset's first butterfly
# degree into cores-per-machine: the degree-d_1 network round becomes the
# leader's single-copy pass over co-located member buffers. On the modeled
# clock the hierarchical reduce must beat the flat butterfly by at least
# 1.2x on every (multi-core) preset, bit-identically. The wall-clock half —
# ParallelBspEngine beating the sequential engine by > 1.5x on the
# hierarchical plan — only means something with real cores to shard hosts
# across, so it is enforced when >= 4 CPUs are visible and skipped with a
# logged reason otherwise.
python3 - "${engines_fresh}" <<'PYHIER'
import json
import sys

doc = json.load(open(sys.argv[1]))
min_modeled = 1.2
min_warm = 1.5
cpus = doc["affinity_cpus"]

print(f"\n{'preset':<14}{'cores':>6}{'flat s':>10}{'hier s':>10}"
      f"{'modeled':>9}{'warm':>7}  status")
failed = 0
for preset in doc["presets"]:
    h = preset["hierarchy"]
    ok_modeled = h["modeled_reduce_speedup"] >= min_modeled
    identical = h["results_bit_identical"]
    ok_warm = h["warm_speedup"] > min_warm if cpus >= 4 else True
    failed += (not ok_modeled) + (not identical) + (not ok_warm)
    status = "ok" if ok_modeled else "REGRESS"
    if not identical:
        status += " HIER-MISMATCH"
    if not ok_warm:
        status += " WARM-SLOW"
    print(f"{preset['name']:<14}{h['cores_per_machine']:>6}"
          f"{h['flat_modeled_reduce_s']:>10.4f}"
          f"{h['hier_modeled_reduce_s']:>10.4f}"
          f"{h['modeled_reduce_speedup']:>8.2f}x"
          f"{h['warm_speedup']:>6.2f}x  {status}")

if cpus < 4:
    print(f"warm-speedup half skipped: only {cpus} CPU(s) visible to this "
          f"process (needs >= 4 to shard hosts across pool workers)")
if failed:
    print(f"\nhierarchy gate FAILED: the two-tier reduce must beat the flat "
          f"butterfly by {min_modeled}x on the modeled clock (bit-identical)"
          f"{f' and {min_warm}x warm on >= 4 CPUs' if cpus >= 4 else ''}")
    sys.exit(1)
print(f"\nhierarchy gate passed: intra tier >= {min_modeled}x modeled on "
      "every preset" + (f", parallel warm > {min_warm}x" if cpus >= 4
                        else " (warm half skipped: < 4 CPUs)"))
PYHIER

# ---- Healing gate ----------------------------------------------------------
# Elastic membership (DESIGN §12) must keep re-planning cheap: after a
# kill-group is confirmed dead, the EpochedPlanManager's re-plan on the
# survivor set may cost at most 1.5x a cold configure on that same survivor
# set (it runs the same config rounds plus the epoch bookkeeping — salted
# fingerprints, density-hint capture, cache insert). The loop itself is the
# correctness gate: `kylix_cli heal` exits nonzero unless every healed
# reduce is bit-identical to a fresh survivor configure and every rejoin
# restores the cached epoch-0 plan.
cmake --build "${build_dir}" -j "$(nproc)" --target kylix_cli
heal_json="${build_dir}/BENCH_heal_fresh.json"
"${build_dir}/tools/kylix_cli" heal --machines 32 --features 65536 \
  --density 0.15 --replication 2 --cycles 3 --group-size 2 \
  --heal-out "${heal_json}" > /dev/null

python3 - "${heal_json}" <<'PYHEAL'
import json
import sys

doc = json.load(open(sys.argv[1]))
max_ratio = 1.5

ratio = doc["replan_over_cold_ratio"]
ok_ratio = 0 < ratio <= max_ratio
ok_sound = doc["all_sound"]
ok_degraded = doc["mean_degraded_rounds"] > 0
ok_epochs = doc["epochs"] == 2 * doc["cycles"]  # one death + one rejoin each

print(f"\n{'machines':>9}{'repl':>6}{'group':>7}{'cycles':>8}"
      f"{'replan s':>10}{'cold s':>9}{'ratio':>7}{'degraded':>10}  status")
status = "ok"
if not ok_ratio:
    status = "REGRESS"
if not ok_sound:
    status += " UNSOUND"
if not ok_degraded:
    status += " NO-DEGRADED-ROUNDS"
if not ok_epochs:
    status += " EPOCH-MISCOUNT"
print(f"{doc['machines']:>9}{doc['replication']:>6}{doc['group_size']:>7}"
      f"{doc['cycles']:>8}{doc['mean_replan_s']:>10.4f}"
      f"{doc['mean_survivor_cold_s']:>9.4f}{ratio:>7.2f}"
      f"{doc['mean_degraded_rounds']:>10.1f}  {status}")

if not (ok_ratio and ok_sound and ok_degraded and ok_epochs):
    print(f"\nhealing gate FAILED: re-plan must cost <= {max_ratio}x a cold "
          f"survivor configure, with sound heals, degraded rounds observed, "
          f"and a death+rejoin epoch pair per cycle")
    sys.exit(1)
print(f"\nhealing gate passed: re-plan {ratio:.2f}x cold survivor configure "
      f"(<= {max_ratio}x), all heals and rejoins bit-identical")
PYHEAL
