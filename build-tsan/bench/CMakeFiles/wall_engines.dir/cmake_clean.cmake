file(REMOVE_RECURSE
  "CMakeFiles/wall_engines.dir/wall_engines.cpp.o"
  "CMakeFiles/wall_engines.dir/wall_engines.cpp.o.d"
  "wall_engines"
  "wall_engines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wall_engines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
