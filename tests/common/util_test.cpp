#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/timer.hpp"
#include "common/units.hpp"

namespace kylix {
namespace {

TEST(Check, PassingCheckDoesNothing) {
  EXPECT_NO_THROW(KYLIX_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsCheckError) {
  EXPECT_THROW(KYLIX_CHECK(1 + 1 == 3), check_error);
}

TEST(Check, MessageIsIncluded) {
  try {
    KYLIX_CHECK_MSG(false, "value was " << 42);
    FAIL() << "expected throw";
  } catch (const check_error& e) {
    EXPECT_NE(std::string(e.what()).find("value was 42"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
  }
}

TEST(FormatBytes, PicksSensibleUnits) {
  EXPECT_EQ(format_bytes(12), "12.00 B");
  EXPECT_EQ(format_bytes(1500), "1.50 KB");
  EXPECT_EQ(format_bytes(5e6), "5.00 MB");
  EXPECT_EQ(format_bytes(1.25e9), "1.25 GB");
}

TEST(FormatSeconds, PicksSensibleUnits) {
  EXPECT_EQ(format_seconds(2.5), "2.5 s");
  EXPECT_EQ(format_seconds(0.0042), "4.2 ms");
  EXPECT_EQ(format_seconds(3.2e-5), "32 us");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer timer;
  const double t0 = timer.seconds();
  EXPECT_GE(t0, 0.0);
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);
}

}  // namespace
}  // namespace kylix
