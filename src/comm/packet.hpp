// Wire units exchanged between simulated machines.
//
// A Packet carries index keys (configuration), values (reduction), or both
// (the combined configure+reduce mode used for minibatch workloads, §III).
// wire_bytes() is what the timing model charges: 8 bytes per key, sizeof(V)
// per value, plus a fixed header per wire frame — matching the paper's 12
// bytes-per-element accounting for key+float traffic. A payload larger than
// one frame pays one header per frame, so oversized letters no longer ride
// on a single header (exactly the regime Fig. 2's utilization curve models).
//
// Streaming (DESIGN §9): a letter may be one chunk of a larger logical
// letter. chunk_index/chunk_count frame the split; every chunk is its own
// Packet and therefore pays its own header(s). Engines order inboxes by
// (src, chunk_index), never by arrival, so eager per-chunk combining stays
// bit-identical to letter-at-once delivery.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/trace.hpp"
#include "common/types.hpp"

namespace kylix {

/// Fixed framing cost per wire frame.
inline constexpr std::uint64_t kPacketHeaderBytes = 32;

/// Payload bytes one header covers. A packet of P payload bytes occupies
/// ceil(P / kWireFrameBytes) frames (min 1) and is charged a header each.
inline constexpr std::uint64_t kWireFrameBytes = 256 * 1024;

/// Frames (== headers charged) for a payload of `payload_bytes`.
[[nodiscard]] inline std::uint64_t wire_frames(std::uint64_t payload_bytes) {
  return payload_bytes <= kWireFrameBytes
             ? 1
             : (payload_bytes + kWireFrameBytes - 1) / kWireFrameBytes;
}

template <typename V>
struct Packet {
  std::vector<key_t> in_keys;   ///< configuration: indices requested
  std::vector<key_t> out_keys;  ///< configuration: indices contributed
  std::vector<V> values;        ///< reduction payload (aligned to out_keys
                                ///< in combined mode)
  /// Multi-payload stride: `stride` value vectors interleaved key-major, so
  /// values carries stride x piece_elements() entries routed by one key set.
  /// Keys are never repeated per payload — that is the amortization the
  /// strided reduce exists for.
  std::uint32_t stride = 1;
  /// Streaming chunk framing: this packet is chunk `chunk_index` of
  /// `chunk_count` the logical letter was split into. Letter-at-once
  /// packets are the degenerate 1-chunk split (0 of 1).
  std::uint32_t chunk_index = 0;
  std::uint32_t chunk_count = 1;

  /// Logical piece length in key positions (what the configured piece sizes
  /// are checked against, independent of how many payloads ride along).
  [[nodiscard]] std::size_t piece_elements() const {
    return stride <= 1 ? values.size() : values.size() / stride;
  }

  [[nodiscard]] std::uint64_t payload_bytes() const {
    return 8 * (in_keys.size() + out_keys.size()) + sizeof(V) * values.size();
  }

  [[nodiscard]] std::uint64_t wire_bytes() const {
    const std::uint64_t payload = payload_bytes();
    return wire_frames(payload) * kPacketHeaderBytes + payload;
  }
};

/// An addressed packet. `src`/`dst` are ranks in whatever space the engine
/// operates on (logical for the replication wrapper, physical otherwise).
template <typename V>
struct Letter {
  rank_t src = 0;
  rank_t dst = 0;
  /// Tombstone flag: the payload was lost to an injected fault. Engines
  /// with blocking receives (ThreadedBsp) deliver an empty tombstone so
  /// the receiver unblocks, then discard it before consume. Tombstones keep
  /// the lost packet's chunk framing so receivers still know how many
  /// letters the edge carries.
  bool faulted = false;
  Packet<V> packet;
};

/// Canonical inbox order: ascending (src, chunk_index). Every engine sorts
/// with this before consume, so the per-position combine order — and hence
/// every floating-point sum — is independent of delivery interleaving and
/// of whether letters were chunked at all.
template <typename V>
[[nodiscard]] inline bool letter_before(const Letter<V>& a,
                                        const Letter<V>& b) {
  if (a.src != b.src) return a.src < b.src;
  return a.packet.chunk_index < b.packet.chunk_index;
}

/// True when two letters occupy the same delivery slot (same logical letter
/// chunk): the supersede rule for delayed-letter redelivery — a delayed
/// chunk is stale only if a fresh copy of the *same chunk* already arrived.
template <typename V>
[[nodiscard]] inline bool same_slot(const Letter<V>& a, const Letter<V>& b) {
  return a.src == b.src && a.packet.chunk_index == b.packet.chunk_index;
}

}  // namespace kylix
