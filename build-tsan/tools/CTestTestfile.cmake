# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build-tsan/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_autotune "/root/repo/build-tsan/tools/kylix_cli" "--machines" "16" "--features" "16384" "--density" "0.15")
set_tests_properties(cli_autotune PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_explicit_degrees "/root/repo/build-tsan/tools/kylix_cli" "--machines" "12" "--features" "8192" "--density" "0.1" "--degrees" "3x2x2" "--threads" "4")
set_tests_properties(cli_explicit_degrees PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_replicated_with_failures "/root/repo/build-tsan/tools/kylix_cli" "--machines" "16" "--features" "16384" "--density" "0.1" "--replication" "2" "--failures" "3")
set_tests_properties(cli_replicated_with_failures PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
