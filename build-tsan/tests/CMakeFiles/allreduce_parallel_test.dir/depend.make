# Empty dependencies file for allreduce_parallel_test.
# This may be replaced when dependencies are built.
