#include "baselines/hadoop_model.hpp"

#include "common/check.hpp"

namespace kylix {

double HadoopModel::iteration_time(std::uint64_t num_edges,
                                   std::uint32_t num_machines) const {
  KYLIX_CHECK(num_machines >= 1);
  const double edges_per_node =
      static_cast<double>(num_edges) / num_machines;
  const double bytes_per_node = edges_per_node * bytes_per_edge;
  return job_overhead_s +
         disk_passes * bytes_per_node / disk_bw_bytes_per_s;
}

}  // namespace kylix
