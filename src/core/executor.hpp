// ReduceExecutor — value-only replay of a compiled CollectivePlan.
//
// The executor is the mutable half of the plan/executor split: it binds an
// engine and per-rank value buffers to an immutable plan and replays the
// frozen schedule. A replayed reduce touches no routing state — no nodes are
// rebuilt, no sets are unioned, no splits recomputed — and performs the
// exact same kernel calls in the exact same order as the node-driven path
// (slice by out_split, scatter_combine by out_maps in ascending sender
// digit, bottom gather by bottom_map, gather by in_maps, concatenate by
// in_split), so results, traces, and modeled timing are bit-identical to
// configure()+reduce() on every engine.
//
// Multi-payload: reduce_strided() pushes `stride` value vectors, interleaved
// key-major, through one replay. Every piece carries stride x the configured
// elements; keys are never resent. The strided kernels apply the reduction
// op per component in the same order a stride-1 replay would, so a strided
// reduce of k payloads is bit-identical to k independent reduces.
//
// Allocation discipline: per-rank ExecState mirrors NodeScratch's buffer
// economy (letter shells per layer, recycled value pools, ping-pong
// merge/below buffers), so warm replays allocate nothing in the rounds and
// stay within the same m+1 API-boundary budget as the node path
// (tests/core/alloc_test).
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "cluster/netmodel.hpp"
#include "comm/packet.hpp"
#include "core/node.hpp"  // NodeWork + the kernels the replay must mirror
#include "core/plan.hpp"
#include "sparse/ops.hpp"

namespace kylix {

template <typename V, typename Op = OpSum, typename Engine = void>
class ReduceExecutor {
 public:
  ReduceExecutor() = default;

  /// Bind to `engine` (not owned, must outlive the executor) and `plan`.
  /// Rebinding to the same plan is a no-op; a different plan keeps the
  /// warmed buffers (they only ever grow). `compute` is optional.
  void bind(Engine* engine, std::shared_ptr<const CollectivePlan> plan,
            const ComputeModel* compute = nullptr) {
    KYLIX_CHECK(engine != nullptr && plan != nullptr);
    KYLIX_CHECK_MSG(engine->num_ranks() == plan->topology().num_machines(),
                    "engine/plan machine count mismatch");
    KYLIX_CHECK_MSG(plan->any_configured(),
                    "plan holds no configured rank to replay");
    engine_ = engine;
    compute_ = compute;
    if (plan_ == plan) return;
    plan_ = std::move(plan);
    const std::uint16_t l = plan_->topology().num_layers();
    if (state_.size() < plan_->num_ranks()) state_.resize(plan_->num_ranks());
    for (ExecState& s : state_) {
      if (s.letters.size() < l) s.letters.resize(l);
    }
  }

  [[nodiscard]] bool bound() const { return plan_ != nullptr; }
  [[nodiscard]] const std::shared_ptr<const CollectivePlan>& plan() const {
    return plan_;
  }

  /// Replay one reduce. `out_values[r]` aligns with rank r's contributed
  /// key order; result[r] aligns with its requested key order. Dead or
  /// plan-unconfigured ranks yield empty results.
  [[nodiscard]] std::vector<std::vector<V>> reduce(
      std::vector<std::vector<V>> out_values) {
    return reduce_strided(std::move(out_values), 1);
  }

  /// Replay one reduce moving `stride` payloads at once: `out_values[r]`
  /// holds stride values per contributed key, interleaved key-major
  /// (the stride values of key p occupy [p*stride, (p+1)*stride)); the
  /// result uses the same layout over the requested keys.
  [[nodiscard]] std::vector<std::vector<V>> reduce_strided(
      std::vector<std::vector<V>> out_values, std::uint32_t stride) {
    KYLIX_CHECK(bound());
    KYLIX_CHECK(stride >= 1);
    KYLIX_CHECK(out_values.size() == plan_->num_ranks());
    stride_ = stride;
    const Topology& topo = plan_->topology();
    const std::uint16_t l = topo.num_layers();
    for (rank_t r = 0; r < plan_->num_ranks(); ++r) {
      // Recovery-capable engines price group deaths by input mass; noted
      // for dead and unconfigured ranks too, exactly as the node path's
      // load_values does — a dead-from-start group's mass IS the loss.
      if constexpr (std::is_arithmetic_v<V> &&
                    requires(Engine& e) { e.note_input_mass(r, 0.0); }) {
        double mass = 0.0;
        for (const V& v : out_values[r]) {
          mass += std::abs(static_cast<double>(v));
        }
        engine_->note_input_mass(r, mass);
      }
      const RankPlan& rp = plan_->rank_plan(r);
      if (!rp.configured) {
        // A rank the plan does not cover died during compilation; it can
        // only replay if it is still dead (same FaultPlan semantics as the
        // node path, where an unconfigured node never produces).
        KYLIX_CHECK_MSG(engine_->is_dead(r),
                        "alive rank not covered by the bound plan");
        continue;
      }
      KYLIX_CHECK_MSG(out_values[r].size() == rp.out0_size * stride_,
                      "contribution length does not match plan out set");
      ExecState& s = state_[r];
      refill(s.value_pool, s.v);
      s.v.assign(out_values[r].begin(), out_values[r].end());
      recycle(s.value_pool, out_values[r]);
    }
    for (std::uint16_t layer = 1; layer <= l; ++layer) {
      run_round(Phase::kReduceDown, layer,
                &ReduceExecutor::down_produce, &ReduceExecutor::down_consume);
    }
    for (rank_t r = 0; r < plan_->num_ranks(); ++r) {
      if (engine_->is_dead(r) || !plan_->rank_plan(r).configured) continue;
      begin_up(r);
      charge(Phase::kReduceDown, l, r);
    }
    for (std::uint16_t layer = l; layer >= 1; --layer) {
      run_round(Phase::kReduceUp, layer,
                &ReduceExecutor::up_produce, &ReduceExecutor::up_consume);
    }
    std::vector<std::vector<V>> results(plan_->num_ranks());
    for (rank_t r = 0; r < plan_->num_ranks(); ++r) {
      if (!engine_->is_dead(r) && plan_->rank_plan(r).configured) {
        results[r] = std::move(state_[r].vin);
      }
    }
    return results;
  }

 private:
  /// Mutable per-rank replay state; same buffer economy as NodeScratch.
  struct ExecState {
    std::vector<std::vector<Letter<V>>> letters;  ///< per comm layer shells
    std::vector<std::vector<V>> value_pool;       ///< recycled packet buffers
    std::vector<V> v;       ///< downward (scatter-reduce) buffer
    std::vector<V> vin;     ///< upward (allgather) buffer
    std::vector<V> merged;  ///< ping-pong partner
    NodeWork work;
  };

  std::vector<Letter<V>>& down_produce(rank_t r, std::uint16_t layer) {
    const PlanLayer& cfg = plan_->rank_plan(r).layers[layer - 1];
    ExecState& s = state_[r];
    std::vector<Letter<V>>& letters = s.letters[layer - 1];
    letters.resize(cfg.group.size());
    for (std::uint32_t q = 0; q < cfg.group.size(); ++q) {
      Letter<V>& letter = letters[q];
      letter.src = r;
      letter.dst = cfg.group[q];
      letter.packet.in_keys.clear();
      letter.packet.out_keys.clear();
      letter.packet.stride = stride_;
      refill(s.value_pool, letter.packet.values);
      letter.packet.values.assign(
          s.v.begin() +
              static_cast<std::ptrdiff_t>(cfg.out_split[q] * stride_),
          s.v.begin() +
              static_cast<std::ptrdiff_t>(cfg.out_split[q + 1] * stride_));
      s.work.gather_elements +=
          static_cast<double>(letter.packet.values.size());
    }
    return letters;
  }

  void down_consume(rank_t r, std::uint16_t layer,
                    std::vector<Letter<V>>&& inbox) {
    const PlanLayer& cfg = plan_->rank_plan(r).layers[layer - 1];
    ExecState& s = state_[r];
    std::vector<V>& merged = s.merged;
    merged.assign(cfg.out_union_size * stride_, Op::template identity<V>());
    for (Letter<V>& letter : inbox) {
      const std::uint32_t q =
          plan_->topology().digit(layer, letter.src);
      KYLIX_CHECK_MSG(
          letter.packet.values.size() == cfg.recv_out_sizes[q] * stride_,
          "reduce payload does not match planned piece size");
      scatter_combine_strided<V, Op>(std::span<V>(merged),
                                     std::span<const V>(letter.packet.values),
                                     cfg.out_maps[q], stride_);
      s.work.combine_elements +=
          static_cast<double>(letter.packet.values.size());
      recycle(s.value_pool, letter.packet.values);
    }
    std::swap(s.v, merged);
  }

  void begin_up(rank_t r) {
    const RankPlan& rp = plan_->rank_plan(r);
    ExecState& s = state_[r];
    KYLIX_DCHECK(s.v.size() ==
                 rp.out_sizes[plan_->topology().num_layers()] * stride_);
    refill(s.value_pool, s.vin);
    s.vin.reserve(std::max(rp.up_capacity, rp.bottom_map.size()) * stride_);
    if (rp.missing_bottom.empty()) {
      gather_strided_into(std::span<const V>(s.v), rp.bottom_map, stride_,
                          s.vin);
    } else {
      // Degraded cold path: kMissingPos entries resolve to identity.
      s.vin.clear();
      for (const pos_t pos : rp.bottom_map) {
        for (std::uint32_t c = 0; c < stride_; ++c) {
          s.vin.push_back(pos == kMissingPos
                              ? Op::template identity<V>()
                              : s.v[pos * stride_ + c]);
        }
      }
    }
    s.work.gather_elements += static_cast<double>(rp.bottom_map.size());
  }

  std::vector<Letter<V>>& up_produce(rank_t r, std::uint16_t layer) {
    const PlanLayer& cfg = plan_->rank_plan(r).layers[layer - 1];
    ExecState& s = state_[r];
    std::vector<Letter<V>>& letters = s.letters[layer - 1];
    letters.resize(cfg.group.size());
    for (std::uint32_t q = 0; q < cfg.group.size(); ++q) {
      Letter<V>& letter = letters[q];
      letter.src = r;
      letter.dst = cfg.group[q];
      letter.packet.in_keys.clear();
      letter.packet.out_keys.clear();
      letter.packet.stride = stride_;
      refill(s.value_pool, letter.packet.values);
      gather_strided_into(std::span<const V>(s.vin), cfg.in_maps[q], stride_,
                          letter.packet.values);
      s.work.gather_elements +=
          static_cast<double>(letter.packet.values.size());
    }
    return letters;
  }

  void up_consume(rank_t r, std::uint16_t layer,
                  std::vector<Letter<V>>&& inbox) {
    const PlanLayer& cfg = plan_->rank_plan(r).layers[layer - 1];
    ExecState& s = state_[r];
    std::vector<V>& below = s.merged;
    below.assign(cfg.in_prev_size * stride_, Op::template identity<V>());
    for (Letter<V>& letter : inbox) {
      const std::uint32_t q =
          plan_->topology().digit(layer, letter.src);
      const std::size_t first = cfg.in_split[q] * stride_;
      KYLIX_CHECK_MSG(letter.packet.values.size() ==
                          (cfg.in_split[q + 1] - cfg.in_split[q]) * stride_,
                      "allgather payload does not match planned piece size");
      std::copy(letter.packet.values.begin(), letter.packet.values.end(),
                below.begin() + static_cast<std::ptrdiff_t>(first));
      recycle(s.value_pool, letter.packet.values);
    }
    std::swap(s.vin, below);
  }

  template <typename ProduceFn, typename ConsumeFn>
  void run_round(Phase phase, std::uint16_t layer, ProduceFn produce,
                 ConsumeFn consume) {
    engine_->round(
        phase, layer,
        [&](rank_t r) -> std::vector<Letter<V>>& {
          return (this->*produce)(r, layer);
        },
        [&](rank_t r) -> const std::vector<rank_t>& {
          return plan_->rank_plan(r).layers[layer - 1].group;
        },
        [&](rank_t r, std::vector<Letter<V>>&& inbox) {
          (this->*consume)(r, layer, std::move(inbox));
          charge(phase, layer, r);
        });
  }

  void charge(Phase phase, std::uint16_t layer, rank_t r) {
    const NodeWork work = std::exchange(state_[r].work, NodeWork{});
    if (compute_ == nullptr || layer == 0) return;
    const double seconds =
        compute_->merge_time(work.merge_elements, work.merge_ways) +
        compute_->combine_time(work.combine_elements) +
        compute_->gather_time(work.gather_elements);
    engine_->charge_compute(phase, layer, r, seconds);
  }

  template <typename T>
  static void refill(std::vector<std::vector<T>>& pool, std::vector<T>& buf) {
    if (buf.capacity() == 0 && !pool.empty()) {
      buf = std::move(pool.back());
      pool.pop_back();
      buf.clear();
    }
  }
  template <typename T>
  static void recycle(std::vector<std::vector<T>>& pool, std::vector<T>& buf) {
    if (buf.capacity() > 0) pool.push_back(std::move(buf));
  }

  Engine* engine_ = nullptr;
  const ComputeModel* compute_ = nullptr;
  std::shared_ptr<const CollectivePlan> plan_;
  std::uint32_t stride_ = 1;
  std::vector<ExecState> state_;
};

}  // namespace kylix
