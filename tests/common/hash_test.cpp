#include "common/hash.hpp"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace kylix {
namespace {

TEST(HashIndex, RoundTripsSmallValues) {
  for (index_t x = 0; x < 10000; ++x) {
    EXPECT_EQ(unhash_index(hash_index(x)), x);
  }
}

TEST(HashIndex, RoundTripsRandom64BitValues) {
  Rng rng(42);
  for (int i = 0; i < 100000; ++i) {
    const index_t x = rng();
    EXPECT_EQ(unhash_index(hash_index(x)), x);
  }
}

TEST(HashIndex, RoundTripsBoundaryValues) {
  for (index_t x : {index_t{0}, index_t{1}, ~index_t{0}, ~index_t{0} - 1,
                    index_t{1} << 63, (index_t{1} << 63) - 1}) {
    EXPECT_EQ(unhash_index(hash_index(x)), x);
    EXPECT_EQ(hash_index(unhash_index(x)), x);  // inverse both ways
  }
}

TEST(HashIndex, IsInjectiveOnARange) {
  std::set<key_t> keys;
  for (index_t x = 0; x < 200000; ++x) {
    keys.insert(hash_index(x));
  }
  EXPECT_EQ(keys.size(), 200000u);
}

TEST(HashIndex, SpreadsConsecutiveIndicesAcrossKeySpace) {
  // Partition balance depends on consecutive indices landing in uniformly
  // random key-space buckets.
  constexpr int kBuckets = 16;
  constexpr int kCount = 160000;
  int counts[kBuckets] = {};
  for (index_t x = 0; x < kCount; ++x) {
    ++counts[hash_index(x) >> 60];
  }
  for (int b = 0; b < kBuckets; ++b) {
    EXPECT_NEAR(counts[b], kCount / kBuckets, kCount / kBuckets / 10.0)
        << "bucket " << b;
  }
}

TEST(HashIndex, IsConstexprUsable) {
  static_assert(unhash_index(hash_index(123456789)) == 123456789);
  // The splitmix64 finalizer fixes 0 (0 -> 0); that is fine for a bijection.
  static_assert(hash_index(0) == 0);
  static_assert(hash_index(1) != 1);
  SUCCEED();
}

TEST(Mix64, DiffersFromHashIndexAndVaries) {
  EXPECT_NE(mix64(0), hash_index(0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 1000; ++i) seen.insert(mix64(i));
  EXPECT_EQ(seen.size(), 1000u);
}

}  // namespace
}  // namespace kylix
