// Replica-recovery policy and bookkeeping for the §V replication layer.
//
// When every copy of a letter faults in transit (but the sender's replica
// group survives), the receiver re-requests it from a surviving replica:
// bounded retries with escalating per-attempt backoff, each attempt charged
// to the timing model (control headers both ways, backoff compute on the
// stalled receiver), and a final reliable-path fallback — the simulator's
// stand-in for TCP eventually delivering — so recovery cannot fail while any
// replica lives. When a whole replica group is dead, nothing can be
// recovered: the engine records a DeathRecord per {phase, layer} it notices
// the group missing in, and the allreduce completes in degraded mode
// (core/degraded.hpp) instead of aborting.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/trace.hpp"
#include "common/types.hpp"

namespace kylix {

struct RecoveryPolicy {
  /// Re-request attempts per missing letter before the reliable fallback.
  std::uint32_t max_attempts = 4;
  /// Attempt k stalls the receiver for k * backoff_base_s modeled seconds.
  double backoff_base_s = 1e-4;
  /// Modeled bytes of the re-request control message (each direction pays
  /// one header; the successful retransmit then pays full wire cost).
  std::uint64_t request_bytes = 32;
  /// When false, detecting a dead replica group throws instead of degrading.
  bool degraded_completion = true;
};

struct RecoveryStats {
  std::uint64_t detections = 0;  ///< letters found missing after delivery
  std::uint64_t retries = 0;     ///< re-request attempts issued
  std::uint64_t promotions = 0;  ///< surviving replicas that served a letter
  std::uint64_t forced = 0;      ///< reliable-path fallbacks (retries spent)
  std::uint64_t group_deaths = 0;  ///< distinct {phase, layer, rank} records
};

/// A replica group observed fully dead while it was an expected sender.
/// The allreduce maps records to lost key ranges: a down/config death at
/// layer i loses the group's node-layer i-1 range, an up death at layer i
/// loses its node-layer i range (core/allreduce.hpp degraded_report()).
struct DeathRecord {
  Phase phase = Phase::kConfig;
  std::uint16_t layer = 0;
  rank_t logical = 0;
};

}  // namespace kylix
