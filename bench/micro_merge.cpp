// §VI-A microbenchmark — tree merge vs. hash union.
//
// The paper reports the sorted tree merge is ~5x faster than a hash-table
// union for the configuration step. Inputs mimic that workload: d sorted
// key sets drawn from a Zipf head + uniform tail, heavy overlap.
#include <benchmark/benchmark.h>

#include <set>

#include "common/rng.hpp"
#include "powerlaw/zipf.hpp"
#include "sparse/merge.hpp"

namespace {



std::vector<std::vector<kylix::key_t>> make_inputs(std::size_t ways,
                                            std::size_t per_set) {
  kylix::Rng rng(ways * 131 + per_set);
  const kylix::ZipfSampler zipf(1 << 22, 1.1);
  std::vector<std::vector<kylix::key_t>> inputs;
  for (std::size_t i = 0; i < ways; ++i) {
    std::set<kylix::key_t> keys;
    while (keys.size() < per_set) {
      keys.insert(kylix::hash_index(zipf(rng)));
    }
    inputs.emplace_back(keys.begin(), keys.end());
  }
  return inputs;
}

void BM_TreeMerge(benchmark::State& state) {
  const auto inputs =
      make_inputs(static_cast<std::size_t>(state.range(0)),
                  static_cast<std::size_t>(state.range(1)));
  std::size_t total = 0;
  for (const auto& in : inputs) total += in.size();
  for (auto _ : state) {
    kylix::UnionResult result = kylix::tree_merge(inputs);
    benchmark::DoNotOptimize(result.keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total) *
                          state.iterations());
}

void BM_HashUnion(benchmark::State& state) {
  const auto input_vecs =
      make_inputs(static_cast<std::size_t>(state.range(0)),
                  static_cast<std::size_t>(state.range(1)));
  std::vector<std::span<const kylix::key_t>> inputs(input_vecs.begin(),
                                             input_vecs.end());
  std::size_t total = 0;
  for (const auto& in : inputs) total += in.size();
  for (auto _ : state) {
    kylix::UnionResult result = kylix::hash_union(inputs);
    benchmark::DoNotOptimize(result.keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(total) *
                          state.iterations());
}

void BM_PairwiseMergeUnion(benchmark::State& state) {
  const auto inputs = make_inputs(2, static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    kylix::UnionResult result = kylix::merge_union(inputs[0], inputs[1]);
    benchmark::DoNotOptimize(result.keys.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(inputs[0].size() +
                                                    inputs[1].size()) *
                          state.iterations());
}

BENCHMARK(BM_TreeMerge)
    ->Args({8, 50000})
    ->Args({16, 50000})
    ->Args({8, 200000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HashUnion)
    ->Args({8, 50000})
    ->Args({16, 50000})
    ->Args({8, 200000})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_PairwiseMergeUnion)->Arg(100000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
