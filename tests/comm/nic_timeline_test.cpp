#include "comm/async_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace kylix {
namespace {

// The modeled-clock properties the async speedups rest on (DESIGN §11):
// the tx NIC is work-conserving regardless of the order the simulation
// discovers sends in. A scalar "free-at" clock fails most of these.

void expect_sorted_disjoint(const NicTimeline& line) {
  for (std::size_t i = 0; i < line.busy.size(); ++i) {
    EXPECT_LT(line.busy[i].first, line.busy[i].second);
    if (i > 0) EXPECT_LE(line.busy[i - 1].second, line.busy[i].first);
  }
}

TEST(NicTimeline, BackToBackClaimsSerialize) {
  NicTimeline line;
  EXPECT_DOUBLE_EQ(line.claim(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(line.claim(0.0, 3.0), 2.0);  // pushed past the first
  EXPECT_DOUBLE_EQ(line.claim(1.0, 1.0), 5.0);  // ready mid-busy: queues
  expect_sorted_disjoint(line);
}

TEST(NicTimeline, ClaimAfterAllBusyStartsOnTime) {
  NicTimeline line;
  (void)line.claim(0.0, 2.0);
  EXPECT_DOUBLE_EQ(line.claim(10.0, 1.0), 10.0);
  expect_sorted_disjoint(line);
}

TEST(NicTimeline, FillsTheEarliestFittingGap) {
  NicTimeline line;
  (void)line.claim(0.0, 10.0);    // [0, 10)
  (void)line.claim(20.0, 10.0);   // [20, 30)
  // Ready at 0, needs 5: the wire is busy until 10 and the [10, 20) gap
  // fits, so the claim starts there — not after everything.
  EXPECT_DOUBLE_EQ(line.claim(0.0, 5.0), 10.0);
  // An exact-fit claim takes the rest of the gap.
  EXPECT_DOUBLE_EQ(line.claim(0.0, 5.0), 15.0);
  // The gap is now gone; the next claim queues behind [20, 30).
  EXPECT_DOUBLE_EQ(line.claim(0.0, 1.0), 30.0);
  expect_sorted_disjoint(line);
}

TEST(NicTimeline, TooSmallGapIsSkipped) {
  NicTimeline line;
  (void)line.claim(0.0, 10.0);   // [0, 10)
  (void)line.claim(12.0, 8.0);   // [12, 20)
  EXPECT_DOUBLE_EQ(line.claim(0.0, 3.0), 20.0);  // 2s gap can't hold 3s
  expect_sorted_disjoint(line);
}

TEST(NicTimeline, LateClaimDoesNotFenceAnEarlierOne) {
  // The anti-convoy property: a stream that books the wire at t=5 must
  // not delay a letter that was ready at t=0 (claim order != time order
  // when many lanes are simulated breadth-first).
  NicTimeline line;
  EXPECT_DOUBLE_EQ(line.claim(5.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(line.claim(0.0, 5.0), 0.0);  // fills [0, 5) before it
  expect_sorted_disjoint(line);
}

TEST(NicTimeline, AllReadyAtZeroPacksGaplesslyInAnyOrder) {
  // When every send is ready at t=0 the wire must run saturated: one
  // contiguous busy block of sum-of-durations length, whatever order the
  // simulation happens to claim in. (A scalar free-at clock also passes
  // this one; the staggered cases above/below are where it fails.)
  std::vector<double> durations = {4.0, 2.0, 3.0, 1.0, 5.0};
  std::sort(durations.begin(), durations.end());
  double sum = 0;
  for (const double d : durations) sum += d;
  do {
    NicTimeline line;
    for (const double d : durations) (void)line.claim(0.0, d);
    expect_sorted_disjoint(line);
    // Intervals are stored unmerged; contiguity means each abuts the next.
    EXPECT_DOUBLE_EQ(line.busy.front().first, 0.0);
    EXPECT_DOUBLE_EQ(line.busy.back().second, sum);
    for (std::size_t i = 1; i < line.busy.size(); ++i) {
      EXPECT_DOUBLE_EQ(line.busy[i].first, line.busy[i - 1].second);
    }
  } while (std::next_permutation(durations.begin(), durations.end()));
}

TEST(NicTimeline, WorkConservingUnderAnyClaimOrder) {
  // The property the async makespans rest on: in the final schedule, no
  // send sits queued past an idle window that could have carried it.
  // Verified against every claim order of a staggered send set — later
  // claims only add busy time, so a gap that was infeasible at claim
  // time stays infeasible in the final timeline.
  const std::vector<std::pair<double, double>> sends = {
      {0.0, 4.0}, {1.0, 2.0}, {0.5, 3.0}, {9.0, 1.0}, {2.0, 5.0}};
  std::vector<std::size_t> order = {0, 1, 2, 3, 4};
  do {
    NicTimeline line;
    std::vector<double> starts(sends.size());
    for (const std::size_t i : order) {
      starts[i] = line.claim(sends[i].first, sends[i].second);
    }
    expect_sorted_disjoint(line);
    for (std::size_t i = 0; i < sends.size(); ++i) {
      const double ready = sends[i].first;
      const double dur = sends[i].second;
      EXPECT_GE(starts[i], ready);
      // Every idle window [gap_start, gap_end) wholly before this send's
      // start must be too late or too small for it.
      double prev_end = 0.0;
      for (const auto& iv : line.busy) {
        const double gap_start = std::max(prev_end, ready);
        const double gap_end = std::min(iv.first, starts[i]);
        EXPECT_LT(gap_end - gap_start, dur)
            << "send " << i << " idled past a usable gap";
        prev_end = iv.second;
      }
    }
  } while (std::next_permutation(order.begin(), order.end()));
}

TEST(NicTimeline, ClearForgetsEverything) {
  NicTimeline line;
  (void)line.claim(0.0, 10.0);
  line.clear();
  EXPECT_DOUBLE_EQ(line.claim(0.0, 1.0), 0.0);
}

}  // namespace
}  // namespace kylix
