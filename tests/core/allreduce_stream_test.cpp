// Streaming packetized reduction (DESIGN §9): wire-frame header accounting,
// compiled chunk sizes, the pipelined timing model, and — the core contract
// — bit-identity of streamed replay against letter-at-once delivery on all
// four engines, for float and double, plain and strided, across seeds.
// Streamed combining is eager but ordered: every engine sorts its inbox by
// (src, chunk_index) before consume, so the per-position op order is the
// letter-at-once order no matter how chunks interleave in flight.
#include <gtest/gtest.h>

#include <memory>
#include <type_traits>
#include <vector>

#include "cluster/timing.hpp"
#include "comm/bsp.hpp"
#include "comm/parallel.hpp"
#include "comm/replicated.hpp"
#include "comm/threaded.hpp"
#include "core/allreduce.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

using testing::random_workload;

// ---- Wire-frame accounting (satellite: per-chunk header cost) -------------

TEST(WireFrames, OneHeaderPerFrame) {
  EXPECT_EQ(wire_frames(0), 1u);
  EXPECT_EQ(wire_frames(1), 1u);
  EXPECT_EQ(wire_frames(kWireFrameBytes), 1u);
  EXPECT_EQ(wire_frames(kWireFrameBytes + 1), 2u);
  EXPECT_EQ(wire_frames(2 * kWireFrameBytes), 2u);
  EXPECT_EQ(wire_frames(2 * kWireFrameBytes + 1), 3u);
}

TEST(WireFrames, OversizedLetterPaysPerFrameHeaders) {
  Packet<float> p;
  p.values.resize(2 * (kWireFrameBytes / sizeof(float)) + 1);
  const std::uint64_t payload = p.payload_bytes();
  ASSERT_GT(payload, 2 * kWireFrameBytes);
  EXPECT_EQ(p.wire_bytes(), 3 * kPacketHeaderBytes + payload);
}

TEST(WireFrames, LetterSplitIntoKChunksIsChargedKHeaders) {
  Packet<float> whole;
  whole.values.resize(1024);
  EXPECT_EQ(whole.wire_bytes(), kPacketHeaderBytes + whole.payload_bytes());

  constexpr std::uint32_t k = 4;
  std::uint64_t split_wire = 0;
  std::uint64_t split_payload = 0;
  for (std::uint32_t c = 0; c < k; ++c) {
    Packet<float> chunk;
    chunk.chunk_index = c;
    chunk.chunk_count = k;
    chunk.values.resize(1024 / k);
    split_wire += chunk.wire_bytes();
    split_payload += chunk.payload_bytes();
  }
  EXPECT_EQ(split_payload, whole.payload_bytes());
  EXPECT_EQ(split_wire, whole.payload_bytes() + k * kPacketHeaderBytes);
}

// ---- Compiled chunk schedule ----------------------------------------------

TEST(StreamPlan, ChunkBytesCompileFromTheNetworkModel) {
  const Topology topo({2, 2});
  const auto w = random_workload<float>(4, 80, 0.3, 0.4, 7);
  BspEngine<float> engine(4);
  SparseAllreduce<float, OpSum, BspEngine<float>> ar(&engine, topo);

  // No network model: no chunk schedule is compiled in.
  auto plan = ar.compile(w.in_sets, w.out_sets);
  EXPECT_EQ(plan->chunk_bytes(), 0u);

  const NetworkModel net = NetworkModel::ec2_like();
  ar.set_network(&net);
  plan = ar.compile(w.in_sets, w.out_sets);
  EXPECT_EQ(plan->chunk_bytes(),
            static_cast<std::uint64_t>(net.min_efficient_packet()));

  // The tuning override beats the compiled value; 0 restores it.
  ar.set_chunk_bytes(4096);
  plan = ar.compile(w.in_sets, w.out_sets);
  EXPECT_EQ(plan->chunk_bytes(), 4096u);
  ar.set_chunk_bytes(0);
  plan = ar.compile(w.in_sets, w.out_sets);
  EXPECT_EQ(plan->chunk_bytes(),
            static_cast<std::uint64_t>(net.min_efficient_packet()));
}

// ---- Pipelined timing model -----------------------------------------------

TEST(PipelinedTiming, DegeneratesToBarrieredSumAndApproachesBottleneck) {
  const NetworkModel net = NetworkModel::ec2_like();
  TimingAccumulator timing(4, net, ComputeModel{}, 1);
  timing.on_message({Phase::kConfig, 1, 0, 1, 1u << 16});  // excluded
  timing.on_message({Phase::kReduceDown, 1, 0, 1, 4u << 20});
  timing.on_message({Phase::kReduceDown, 2, 1, 2, 8u << 20});  // bottleneck
  timing.on_message({Phase::kReduceUp, 1, 2, 3, 2u << 20});

  // k = 1 barriers every stage: the reduce-phase sum, base latency once per
  // pipeline instead of once per round.
  const double k1 = timing.pipelined_reduce_time(1);
  EXPECT_NEAR(k1, timing.times().reduce() - 2 * net.base_latency_s, 1e-12);

  // Monotone non-increasing in k, bounded below by the bottleneck stage.
  const double bottleneck =
      timing.round_time(Phase::kReduceDown, 2) - net.base_latency_s;
  double prev = k1;
  for (std::uint32_t k : {2u, 4u, 8u, 64u, 1024u}) {
    const double t = timing.pipelined_reduce_time(k);
    EXPECT_LE(t, prev) << "k = " << k;
    EXPECT_GE(t, bottleneck + net.base_latency_s) << "k = " << k;
    prev = t;
  }
  EXPECT_NEAR(timing.pipelined_reduce_time(1 << 20),
              bottleneck + net.base_latency_s, bottleneck * 1e-3);
}

// ---- Bit-identity fuzz: streamed == letter-at-once, all engines -----------

template <typename Engine, typename V>
std::vector<std::vector<V>> run_once(const Topology& topo,
                                     const testing::Workload<V>& w,
                                     const std::vector<std::vector<V>>& values,
                                     std::uint32_t stride,
                                     std::uint64_t chunk_bytes,
                                     StreamStats* stats = nullptr) {
  const rank_t m = topo.num_machines();
  std::unique_ptr<Engine> engine;
  if constexpr (std::is_same_v<Engine, ReplicatedBsp<V>>) {
    engine = std::make_unique<Engine>(m, 2);
  } else {
    engine = std::make_unique<Engine>(m);
  }
  SparseAllreduce<V, OpSum, Engine> ar(engine.get(), topo);
  ar.set_streaming(chunk_bytes != 0);
  ar.set_chunk_bytes(chunk_bytes);
  ar.configure(w.in_sets, w.out_sets);
  auto results =
      stride <= 1 ? ar.reduce(values) : ar.reduce_strided(values, stride);
  if (stats != nullptr) *stats = ar.stream_stats();
  return results;
}

template <typename V>
void fuzz_engines(std::uint64_t seed) {
  static const std::vector<std::vector<std::uint32_t>> schedules = {
      {}, {2}, {2, 2}, {3, 2}, {2, 2, 2}};
  const Topology topo(schedules[seed % schedules.size()]);
  const rank_t m = topo.num_machines();
  const auto w = random_workload<V>(m, 40 + 7 * (seed % 9), 0.25, 0.4,
                                    900 + seed);
  // Tiny chunks so nearly every letter splits; varies per seed to cover
  // exact-fit, one-position, and ragged-tail chunkings.
  const std::uint64_t chunk = 32 + 16 * (seed % 5);

  for (const std::uint32_t stride : {1u, 3u}) {
    SCOPED_TRACE("stride " + std::to_string(stride));
    std::vector<std::vector<V>> values(m);
    for (rank_t r = 0; r < m; ++r) {
      values[r].resize(w.out_values[r].size() * stride);
      for (std::size_t p = 0; p < w.out_values[r].size(); ++p) {
        for (std::uint32_t c = 0; c < stride; ++c) {
          values[r][p * stride + c] = w.out_values[r][p] + static_cast<V>(c);
        }
      }
    }

    const auto check = [&](const char* name, const auto& letter,
                           const auto& streamed, const StreamStats& stats) {
      SCOPED_TRACE(name);
      EXPECT_EQ(streamed, letter) << "streamed replay diverged";
      EXPECT_TRUE(stats.streamed);
      EXPECT_GE(stats.chunks, stats.letters);
      if (stride == 1) testing::expect_matches_oracle<V>(w, letter);
    };

    StreamStats stats;
    {
      const auto letter =
          run_once<BspEngine<V>, V>(topo, w, values, stride, 0);
      const auto streamed =
          run_once<BspEngine<V>, V>(topo, w, values, stride, chunk, &stats);
      check("bsp", letter, streamed, stats);
    }
    {
      const auto letter =
          run_once<ParallelBspEngine<V>, V>(topo, w, values, stride, 0);
      const auto streamed = run_once<ParallelBspEngine<V>, V>(
          topo, w, values, stride, chunk, &stats);
      check("parallel", letter, streamed, stats);
    }
    {
      const auto letter =
          run_once<ThreadedBsp<V>, V>(topo, w, values, stride, 0);
      const auto streamed =
          run_once<ThreadedBsp<V>, V>(topo, w, values, stride, chunk, &stats);
      check("threaded", letter, streamed, stats);
    }
    {
      const auto letter =
          run_once<ReplicatedBsp<V>, V>(topo, w, values, stride, 0);
      const auto streamed = run_once<ReplicatedBsp<V>, V>(
          topo, w, values, stride, chunk, &stats);
      check("replicated", letter, streamed, stats);
    }
  }
}

class StreamBitIdentityFuzzTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StreamBitIdentityFuzzTest, StreamedEqualsLetterAtOnceEverywhere) {
  fuzz_engines<float>(GetParam());
  fuzz_engines<double>(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamBitIdentityFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 25));

// ---- Buffer envelopes and stream telemetry --------------------------------

TEST(StreamEnvelope, StreamedPeakIsBoundedByTheLetterPeak) {
  const Topology topo({2, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 3000, 0.2, 0.3, 31);

  StreamStats letter;
  (void)run_once<BspEngine<float>, float>(topo, w, w.out_values, 1, 0,
                                          &letter);
  EXPECT_FALSE(letter.streamed);
  EXPECT_GT(letter.peak_letter_buffer_bytes, 0u);
  // Letter-at-once has no chunk discipline: its "stream" envelope is the
  // full inbox too.
  EXPECT_EQ(letter.peak_stream_buffer_bytes, letter.peak_letter_buffer_bytes);
  EXPECT_EQ(letter.max_chunks_per_letter, 1u);
  EXPECT_EQ(letter.chunks, letter.letters);

  StreamStats streamed;
  (void)run_once<BspEngine<float>, float>(topo, w, w.out_values, 1, 512,
                                          &streamed);
  EXPECT_TRUE(streamed.streamed);
  EXPECT_EQ(streamed.chunk_bytes, 512u);
  EXPECT_GT(streamed.max_chunks_per_letter, 1u);
  EXPECT_GT(streamed.chunks, streamed.letters);
  EXPECT_GT(streamed.blocks_flushed, 0u);
  EXPECT_GE(streamed.overlap_ratio(), 0.0);
  EXPECT_LE(streamed.overlap_ratio(), 1.0);
  // The envelope win the streaming mode exists for: one in-flight chunk per
  // in-edge instead of whole inboxes.
  EXPECT_LT(streamed.peak_stream_buffer_bytes,
            streamed.peak_letter_buffer_bytes);
  // Same workload, same letters: the letter envelope itself must agree
  // (modulo nothing — both runs deliver identical logical letters).
  EXPECT_EQ(streamed.peak_letter_buffer_bytes,
            letter.peak_letter_buffer_bytes);
}

TEST(StreamEnvelope, HalvingTheChunkDoublesTheSplit) {
  const Topology topo({4});
  const auto w = random_workload<float>(4, 200, 0.9, 0.9, 41);
  StreamStats coarse;
  (void)run_once<BspEngine<float>, float>(topo, w, w.out_values, 1,
                                          64 * sizeof(float), &coarse);
  StreamStats fine;
  (void)run_once<BspEngine<float>, float>(topo, w, w.out_values, 1,
                                          32 * sizeof(float), &fine);
  EXPECT_TRUE(coarse.streamed);
  EXPECT_TRUE(fine.streamed);
  EXPECT_EQ(fine.letters, coarse.letters);  // same schedule, same edges
  EXPECT_GT(fine.chunks, coarse.chunks);
  EXPECT_GE(fine.max_chunks_per_letter,
            2 * coarse.max_chunks_per_letter - 1);
  EXPECT_LE(fine.peak_stream_buffer_bytes, coarse.peak_stream_buffer_bytes);
}

// Streaming through an adopted (cache-served) plan behaves identically: the
// chunk schedule rides on the plan, the toggle on the executor.
TEST(StreamPlan, AdoptedPlanReplayStreamsBitIdentically) {
  const Topology topo({2, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 500, 0.2, 0.3, 53);

  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> compiler(&engine, topo);
  const auto plan = compiler.compile(w.in_sets, w.out_sets);
  const auto letter = compiler.reduce(w.out_values);

  SparseAllreduce<float, OpSum, BspEngine<float>> replayer(&engine, topo);
  replayer.set_streaming(true);
  replayer.set_chunk_bytes(128);  // 32 positions: ~50-position pieces split
  replayer.configure(plan);
  const auto streamed = replayer.reduce(w.out_values);
  EXPECT_EQ(streamed, letter);
  EXPECT_TRUE(replayer.stream_stats().streamed);
  EXPECT_GT(replayer.stream_stats().max_chunks_per_letter, 1u);
}

}  // namespace
}  // namespace kylix
