#include "cluster/failure.hpp"

#include "common/check.hpp"

namespace kylix {

FailureModel FailureModel::random_failures(rank_t num_nodes, rank_t count,
                                           std::uint64_t seed) {
  KYLIX_CHECK(count <= num_nodes);
  FailureModel model(num_nodes);
  Rng rng(mix64(seed));
  rank_t killed = 0;
  while (killed < count) {
    const auto victim = static_cast<rank_t>(rng.below(num_nodes));
    if (!model.dead_[victim]) {
      model.dead_[victim] = true;
      ++model.version_;
      ++killed;
    }
  }
  return model;
}

void FailureModel::kill(rank_t node) {
  KYLIX_CHECK(node < dead_.size());
  dead_[node] = true;
  ++version_;
}

void FailureModel::revive(rank_t node) {
  KYLIX_CHECK(node < dead_.size());
  dead_[node] = false;
  ++version_;
}

rank_t FailureModel::num_dead() const {
  rank_t count = 0;
  for (bool d : dead_) count += d ? 1 : 0;
  return count;
}

std::vector<rank_t> FailureModel::dead_nodes() const {
  std::vector<rank_t> nodes;
  for (rank_t i = 0; i < dead_.size(); ++i) {
    if (dead_[i]) nodes.push_back(i);
  }
  return nodes;
}

}  // namespace kylix
