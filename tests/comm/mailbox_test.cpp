#include "comm/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace kylix {
namespace {

Letter<float> make_letter(rank_t src, rank_t dst, float value) {
  Letter<float> letter;
  letter.src = src;
  letter.dst = dst;
  letter.packet.values = {value};
  return letter;
}

TEST(Mailbox, TakeReturnsMatchingSource) {
  Mailbox<float> box;
  box.put(make_letter(3, 0, 3.0f));
  box.put(make_letter(1, 0, 1.0f));
  const Letter<float> from1 = box.take(1);
  EXPECT_EQ(from1.src, 1);
  EXPECT_EQ(from1.packet.values[0], 1.0f);
  const Letter<float> from3 = box.take(3);
  EXPECT_EQ(from3.src, 3);
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, TakeBlocksUntilArrival) {
  Mailbox<float> box;
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    box.put(make_letter(2, 0, 2.0f));
  });
  const Letter<float> letter = box.take(2);
  EXPECT_EQ(letter.src, 2);
  producer.join();
}

TEST(Mailbox, TakeTimesOutLoudly) {
  Mailbox<float> box;
  EXPECT_THROW(box.take(9, std::chrono::milliseconds(20)), mailbox_timeout);
}

TEST(Mailbox, TakeAnyReturnsFirstOfGroup) {
  Mailbox<float> box;
  box.put(make_letter(5, 0, 5.0f));
  const std::vector<rank_t> group = {4, 5, 6};
  const Letter<float> winner = box.take_any(group);
  EXPECT_EQ(winner.src, 5);
}

TEST(Mailbox, TakeAnyCancelsLosers) {
  Mailbox<float> box;
  const std::vector<rank_t> group = {1, 2};
  box.put(make_letter(1, 0, 1.0f));
  (void)box.take_any(group);
  // The losing replica's copy arrives late and is discarded on arrival.
  box.put(make_letter(2, 0, 2.0f));
  EXPECT_EQ(box.pending(), 0u);
}

TEST(Mailbox, ResetClearsCancellationsAndLetters) {
  Mailbox<float> box;
  const std::vector<rank_t> group = {1, 2};
  box.put(make_letter(1, 0, 1.0f));
  (void)box.take_any(group);
  box.reset();
  box.put(make_letter(2, 0, 2.0f));  // accepted again after reset
  EXPECT_EQ(box.pending(), 1u);
}

TEST(Mailbox, ConcurrentProducersAllDelivered) {
  Mailbox<float> box;
  constexpr int kSenders = 8;
  std::vector<std::thread> threads;
  for (int s = 0; s < kSenders; ++s) {
    threads.emplace_back([&box, s] {
      box.put(make_letter(static_cast<rank_t>(s), 0,
                          static_cast<float>(s)));
    });
  }
  float total = 0;
  for (int s = 0; s < kSenders; ++s) {
    total += box.take(static_cast<rank_t>(s)).packet.values[0];
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(total, 28.0f);  // 0+1+...+7
}

}  // namespace
}  // namespace kylix
