// Quickstart: the smallest complete Kylix program.
//
// Eight simulated machines each contribute values for a few indices and
// request values for a few (different) indices; one sparse sum-allreduce
// routes everything. Demonstrates the §III API surface: per-machine in/out
// index sets, configure() once, reduce() returning exactly the requested
// values, and where to find the per-layer structure.
#include <cstdio>

#include "kylix.hpp"

int main() {
  using namespace kylix;

  // An 8-machine nested butterfly with degrees 4 x 2 (Fig. 3's shape).
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);

  // Machine r contributes 1.0 to indices {r, r+1, 100} and asks for the
  // totals of {r, 100}. Index 100 is shared by everyone, so its total is m.
  std::vector<KeySet> in_sets;
  std::vector<KeySet> out_sets;
  std::vector<std::vector<float>> out_values;
  for (rank_t r = 0; r < m; ++r) {
    const std::vector<index_t> outs = {r, r + 1, 100};
    const std::vector<index_t> ins = {r, 100};
    out_sets.push_back(KeySet::from_indices(outs));
    out_values.emplace_back(out_sets.back().size(), 1.0f);
    in_sets.push_back(KeySet::from_indices(ins));
  }

  // Step 1 (configuration): exchange and union index sets, build maps.
  allreduce.configure(in_sets, out_sets);

  // Step 2 (reduction): scatter-reduce down, allgather up.
  const auto results = allreduce.reduce(std::move(out_values));

  std::printf("machine | index -> reduced total\n");
  for (rank_t r = 0; r < m; ++r) {
    // Results align with the machine's in set in hashed-key order; recover
    // the original indices for printing.
    const std::vector<index_t> ids = in_sets[r].to_indices();
    std::printf("   %u    |", r);
    for (std::size_t p = 0; p < ids.size(); ++p) {
      std::printf("  %llu -> %.0f",
                  static_cast<unsigned long long>(ids[p]), results[r][p]);
    }
    std::printf("\n");
  }

  // Index 100 was contributed once per machine; interior indices r get 1
  // from machine r and 1 from machine r-1 (which contributed to r-1+1).
  std::printf("\nexpected: index 100 totals %u everywhere; index r totals "
              "2 for r in 1..%u, 1 for r = 0\n",
              m, m - 1);
  return 0;
}
