// The §IV design workflow, end to end, narrated.
//
// Walks through exactly what the paper prescribes: measure the partition
// density of the workload, fit the Poisson–power-law scaling factor λ0,
// walk down the network reading densities off the f(λ) curve (Fig. 4 /
// Proposition 4.1), and pick each layer's degree as the largest divisor
// keeping packets above the minimum efficient size (Fig. 2).
#include <cstdio>

#include "kylix.hpp"

int main() {
  using namespace kylix;

  constexpr rank_t kMachines = 64;
  const GraphSpec spec = twitter_like(1u << 18);
  std::printf("workload: %s, n = %llu, %llu edges, m = %u\n", spec.name,
              static_cast<unsigned long long>(spec.num_vertices),
              static_cast<unsigned long long>(spec.num_edges), kMachines);

  const auto edges = generate_zipf_graph(spec);
  const auto parts = random_edge_partition(edges, kMachines, 11);

  // Step 1: measure the density of one machine's partition.
  const double density = measure_partition_density(parts, spec.num_vertices);
  std::printf("step 1 — measured partition density: %.4f\n", density);

  // Step 2: the network's minimum efficient packet (Fig. 2).
  NetworkModel net = NetworkModel::ec2_like();
  net.stack_overhead_s = 3.2e-5;  // scaled testbed (bench_common.hpp)
  net.handshake_latency_s = 0.8e-5;
  const double floor_bytes = net.min_efficient_packet(0.5);
  std::printf("step 2 — minimum efficient packet: %s\n",
              format_bytes(floor_bytes).c_str());

  // Step 3: fit λ0 and walk the f(λ) curve down the layers.
  const PowerLawModel model(spec.num_vertices, spec.alpha_in);
  const double lambda0 = model.lambda_for_density(density);
  std::printf("step 3 — fitted lambda0 = %.1f (alpha = %.2f)\n", lambda0,
              spec.alpha_in);

  AutotuneInput input;
  input.num_features = spec.num_vertices;
  input.num_machines = kMachines;
  input.alpha = spec.alpha_in;
  input.partition_density = density;
  input.network = net;
  input.target_utilization = 0.5;
  const DesignResult design = autotune(input);
  std::printf("step 4 — greedy degree selection:\n%s",
              design.to_string().c_str());

  // Show the Proposition 4.1 walk the selection was based on.
  const auto stats = model.layer_stats(lambda0, design.degrees);
  std::printf("\nProposition 4.1 walk (per machine):\n");
  std::printf("%-8s %-10s %-12s %-16s\n", "layer", "fan-in", "density",
              "data per node");
  for (std::size_t i = 0; i < stats.size(); ++i) {
    std::printf("%-8zu %-10llu %-12.4f %-16s\n", i,
                static_cast<unsigned long long>(stats[i].fan_in),
                stats[i].density,
                format_bytes(stats[i].elements_per_node * 12).c_str());
  }
  std::printf("\npaper's schedule at full scale: 8 x 4 x 2 — ours: %s\n",
              Topology(design.degrees).to_string().c_str());
  return 0;
}
