#include "apps/reference.hpp"

#include <algorithm>
#include <numeric>

#include "common/check.hpp"

namespace kylix {

std::vector<double> reference_pagerank(std::span<const Edge> edges,
                                       std::uint64_t num_vertices,
                                       std::uint32_t iterations,
                                       double damping) {
  KYLIX_CHECK(num_vertices >= 1);
  std::vector<double> out_degree(num_vertices, 0.0);
  for (const Edge& e : edges) {
    KYLIX_CHECK(e.src < num_vertices && e.dst < num_vertices);
    out_degree[e.src] += 1.0;
  }
  const double n = static_cast<double>(num_vertices);
  std::vector<double> v(num_vertices, 1.0 / n);
  std::vector<double> next(num_vertices);
  for (std::uint32_t iter = 0; iter < iterations; ++iter) {
    std::fill(next.begin(), next.end(), (1.0 - damping) / n);
    for (const Edge& e : edges) {
      next[e.dst] += damping * v[e.src] / out_degree[e.src];
    }
    v.swap(next);
  }
  return v;
}

std::vector<std::uint64_t> reference_components(std::span<const Edge> edges,
                                                std::uint64_t num_vertices) {
  // Union-find with path halving.
  std::vector<std::uint64_t> parent(num_vertices);
  std::iota(parent.begin(), parent.end(), 0);
  const auto find = [&](std::uint64_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const Edge& e : edges) {
    KYLIX_CHECK(e.src < num_vertices && e.dst < num_vertices);
    const std::uint64_t a = find(e.src);
    const std::uint64_t b = find(e.dst);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
  std::vector<std::uint64_t> labels(num_vertices);
  for (std::uint64_t v = 0; v < num_vertices; ++v) labels[v] = find(v);
  return labels;
}

}  // namespace kylix
