file(REMOVE_RECURSE
  "CMakeFiles/allreduce_test.dir/core/allreduce_test.cpp.o"
  "CMakeFiles/allreduce_test.dir/core/allreduce_test.cpp.o.d"
  "allreduce_test"
  "allreduce_test.pdb"
  "allreduce_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allreduce_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
