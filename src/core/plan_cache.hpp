// Fingerprint-keyed LRU cache of compiled CollectivePlans.
//
// Minibatch workloads (§VI: SGD, LDA) revisit sparsity patterns: a recurring
// batch means recurring {in, out} key sets, and the expensive part of the
// step — the downward configuration pass — depends on nothing else. The
// cache keys plans by fingerprint_key_sets (chained mix64 over every rank's
// keys, common/hash.hpp), so a hit replaces configuration with one hash of
// the inputs plus a pointer copy.
//
// Hit/miss/evict counts feed both local counters (always on, for tests) and
// the obs::MetricsRegistry (plan_cache.hits / plan_cache.misses /
// plan_cache.evictions), registered once at construction so the hot path is
// a relaxed atomic add. A hit performs no heap allocation (asserted by
// tests/core/alloc_test): lookup is one unordered_map find plus a list
// splice, both allocation-free on a warm cache.
//
// Not thread-safe: one cache per driving thread, like SparseAllreduce.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>

#include "core/plan.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace kylix {

class PlanCache {
 public:
  /// `capacity` bounds retained plans (>= 1); the least recently used plan
  /// is evicted on overflow. `metrics` (not owned, may be null) receives the
  /// hit/miss/evict counters; defaults to the process-wide registry.
  explicit PlanCache(std::size_t capacity = 16,
                     obs::MetricsRegistry* metrics =
                         &obs::MetricsRegistry::global());

  /// Fingerprint of per-rank {in, out} key sets — the cache key.
  [[nodiscard]] static std::uint64_t fingerprint(
      std::span<const KeySet> in_sets, std::span<const KeySet> out_sets) {
    return fingerprint_key_sets(in_sets, out_sets);
  }

  /// Look a plan up and mark it most recently used. Returns null on miss.
  [[nodiscard]] std::shared_ptr<const CollectivePlan> find(
      std::uint64_t fingerprint);

  /// Insert (or refresh) a plan under its own fingerprint, evicting the LRU
  /// entry when full. Plans with fingerprint 0 (anonymous) are not cached.
  void insert(std::shared_ptr<const CollectivePlan> plan);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }

  /// Attach a flight recorder (optional, not owned): every find() records a
  /// kPlanCacheHit/kPlanCacheMiss event carrying the fingerprint.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

 private:
  struct Entry {
    std::uint64_t fingerprint = 0;
    std::shared_ptr<const CollectivePlan> plan;
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  ///< front == most recently used
  std::unordered_map<std::uint64_t, std::list<Entry>::iterator> entries_;

  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
  obs::Counter* hit_counter_ = nullptr;    ///< registry-owned, may be null
  obs::Counter* miss_counter_ = nullptr;
  obs::Counter* evict_counter_ = nullptr;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace kylix
