#include "obs/watchdog.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace kylix::obs {
namespace {

constexpr rank_t kRanks = 8;

struct Fixture {
  MetricsRegistry metrics;
  FlightRecorder recorder{kRanks};
  AnomalyWatchdog watchdog;
  std::vector<double> offsets;
  std::vector<std::uint64_t> bytes;

  explicit Fixture(AnomalyWatchdog::Options opts = {})
      : watchdog(kRanks,
                 [&] {
                   opts.metrics = &metrics;
                   opts.recorder = &recorder;
                   return opts;
                 }()),
        offsets(kRanks, 100.0),
        bytes(kRanks, 1 << 20) {}

  void feed(double round_s) {
    watchdog.observe_round(Phase::kReduceDown, 1, round_s, offsets, bytes);
  }

  std::uint64_t count_events(FlightEventKind kind) const {
    std::uint64_t n = 0;
    for (const FlightEvent& e : recorder.merged_events()) {
      if (e.kind == kind) ++n;
    }
    return n;
  }
};

TEST(AnomalyWatchdog, QuietBaselineFlagsNothing) {
  Fixture fx;
  for (int i = 0; i < 50; ++i) fx.feed(0.001);
  EXPECT_EQ(fx.watchdog.slow_rounds(), 0u);
  EXPECT_EQ(fx.watchdog.stragglers(), 0u);
  EXPECT_EQ(fx.watchdog.byte_imbalances(), 0u);
  EXPECT_EQ(fx.watchdog.rounds_seen(), 50u);
  EXPECT_EQ(fx.watchdog.last_straggler(), kGlobalRank);
}

TEST(AnomalyWatchdog, WarmupSuppressesVerdicts) {
  Fixture fx;
  // A wild outlier inside the warmup window must not fire: the baseline has
  // no statistical standing yet.
  for (std::uint32_t i = 0; i < 8; ++i) fx.feed(i == 4 ? 10.0 : 0.001);
  EXPECT_EQ(fx.watchdog.slow_rounds(), 0u);
}

TEST(AnomalyWatchdog, FlagsSlowRoundAfterBaseline) {
  Fixture fx;
  for (int i = 0; i < 20; ++i) fx.feed(0.001);
  fx.feed(0.5);  // 500x the baseline
  EXPECT_EQ(fx.watchdog.slow_rounds(), 1u);
  EXPECT_EQ(fx.count_events(FlightEventKind::kSlowRound), 1u);
  EXPECT_EQ(fx.metrics.counter("engine.anomaly.slow_rounds").value(), 1u);
}

TEST(AnomalyWatchdog, FlagsStragglerRankWithMetricsAndEvent) {
  Fixture fx;
  for (int i = 0; i < 10; ++i) fx.feed(0.001);
  // Rank 5 finishes 50 ms after the pack's 100 us median.
  fx.offsets[5] = 50'000.0;
  fx.feed(0.001);
  EXPECT_EQ(fx.watchdog.stragglers(), 1u);
  EXPECT_EQ(fx.watchdog.last_straggler(), 5u);
  EXPECT_EQ(fx.metrics.counter("engine.anomaly.stragglers").value(), 1u);
  EXPECT_DOUBLE_EQ(
      fx.metrics.gauge("engine.anomaly.last_straggler").value(), 5.0);
  const auto events = fx.recorder.merged_events();
  const FlightEvent* straggle = nullptr;
  for (const FlightEvent& e : events) {
    if (e.kind == FlightEventKind::kStraggler) straggle = &e;
  }
  ASSERT_NE(straggle, nullptr);
  EXPECT_EQ(straggle->rank, 5u);
  EXPECT_GT(straggle->value, 40'000.0);  // microseconds behind the median
}

TEST(AnomalyWatchdog, MicrosecondJitterIsNotAStraggler) {
  Fixture fx;
  for (int i = 0; i < 10; ++i) fx.feed(0.001);
  // 400 us behind a 100 us median clears the MAD gate but not the absolute
  // floor (min_straggler_us = 5 ms): sequential-engine jitter stays quiet.
  fx.offsets[3] = 500.0;
  fx.feed(0.001);
  EXPECT_EQ(fx.watchdog.stragglers(), 0u);
}

TEST(AnomalyWatchdog, SilentRanksAreExcludedNotFlagged) {
  Fixture fx;
  fx.offsets[0] = 0.0;  // never sends: not participating, not a straggler
  for (int i = 0; i < 20; ++i) fx.feed(0.001);
  EXPECT_EQ(fx.watchdog.stragglers(), 0u);
}

TEST(AnomalyWatchdog, FlagsByteImbalance) {
  Fixture fx;
  for (int i = 0; i < 10; ++i) fx.feed(0.001);
  fx.bytes[2] = (1 << 20) + (64 << 20);  // 64 MB over the 1 MB median
  fx.feed(0.001);
  EXPECT_EQ(fx.watchdog.byte_imbalances(), 1u);
  EXPECT_EQ(fx.metrics.counter("engine.anomaly.byte_imbalance").value(), 1u);
  EXPECT_EQ(fx.count_events(FlightEventKind::kByteImbalance), 1u);
}

TEST(AnomalyWatchdog, RejectsWrongVectorSizes) {
  MetricsRegistry metrics;
  AnomalyWatchdog::Options opts;
  opts.metrics = &metrics;
  AnomalyWatchdog watchdog(kRanks, opts);
  const std::vector<double> short_offsets(kRanks - 1, 0.0);
  const std::vector<std::uint64_t> bytes(kRanks, 0);
  EXPECT_THROW(watchdog.observe_round(Phase::kConfig, 1, 0.001, short_offsets,
                                      bytes),
               check_error);
}

TEST(AnomalyWatchdog, NullSinksStillCount) {
  AnomalyWatchdog watchdog(kRanks, AnomalyWatchdog::Options{});
  const std::vector<double> offsets(kRanks, 100.0);
  const std::vector<std::uint64_t> bytes(kRanks, 1 << 20);
  for (int i = 0; i < 20; ++i) {
    watchdog.observe_round(Phase::kReduceDown, 1, 0.001, offsets, bytes);
  }
  watchdog.observe_round(Phase::kReduceDown, 1, 1.0, offsets, bytes);
  EXPECT_EQ(watchdog.slow_rounds(), 1u);
}

}  // namespace
}  // namespace kylix::obs
