
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/failure.cpp" "src/cluster/CMakeFiles/kylix_cluster.dir/failure.cpp.o" "gcc" "src/cluster/CMakeFiles/kylix_cluster.dir/failure.cpp.o.d"
  "/root/repo/src/cluster/netmodel.cpp" "src/cluster/CMakeFiles/kylix_cluster.dir/netmodel.cpp.o" "gcc" "src/cluster/CMakeFiles/kylix_cluster.dir/netmodel.cpp.o.d"
  "/root/repo/src/cluster/timing.cpp" "src/cluster/CMakeFiles/kylix_cluster.dir/timing.cpp.o" "gcc" "src/cluster/CMakeFiles/kylix_cluster.dir/timing.cpp.o.d"
  "/root/repo/src/cluster/trace.cpp" "src/cluster/CMakeFiles/kylix_cluster.dir/trace.cpp.o" "gcc" "src/cluster/CMakeFiles/kylix_cluster.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/kylix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
