# Empty dependencies file for trace_timing_test.
# This may be replaced when dependencies are built.
