# Empty dependencies file for kylix_common.
# This may be replaced when dependencies are built.
