// Span tracing with Chrome trace-event export (DESIGN.md "Observability").
//
// SpanTracer collects timestamped events — RAII spans, counter samples,
// instants — against a monotonic microsecond clock started at construction,
// and serializes them as Chrome trace-event JSON ("traceEvents" array of
// "ph":"X"/"C"/"i" records) loadable by Perfetto (https://ui.perfetto.dev)
// or chrome://tracing. Tracks map onto trace "tid"s: the engine observer
// uses one track per simulated rank plus counter tracks for wire bytes and
// measured layer density, so a run renders as the per-rank round timeline
// the paper's figures describe.
//
// Recording takes one mutex per event (events are rare next to the per-
// message hot path, which only touches pre-sized arrays in the observer);
// the tracer itself is never touched when no observer is attached.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/timer.hpp"

namespace kylix::obs {

class SpanTracer {
 public:
  /// Microseconds since the tracer was constructed.
  [[nodiscard]] double now_us() const { return timer_.seconds() * 1e6; }

  /// A finished span ("ph":"X") on `track`. `arg_bytes`/`arg_msgs` become
  /// the span's args when `has_args` is set.
  void complete(std::string name, std::uint32_t track, double ts_us,
                double dur_us, bool has_args = false,
                std::uint64_t arg_bytes = 0, std::uint64_t arg_msgs = 0);

  /// A counter sample ("ph":"C"): one series named `name` over time.
  void counter(std::string name, double ts_us, double value);

  /// An instant event ("ph":"i", thread scope).
  void instant(std::string name, std::uint32_t track, double ts_us);

  /// Human-readable track label emitted as thread_name metadata.
  void set_track_name(std::uint32_t track, std::string name);

  /// RAII scope: records a complete event from construction to destruction.
  class Span {
   public:
    Span(SpanTracer* tracer, std::string name, std::uint32_t track)
        : tracer_(tracer),
          name_(std::move(name)),
          track_(track),
          start_us_(tracer->now_us()) {}
    Span(Span&& other) noexcept
        : tracer_(std::exchange(other.tracer_, nullptr)),
          name_(std::move(other.name_)),
          track_(other.track_),
          start_us_(other.start_us_) {}
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    Span& operator=(Span&&) = delete;
    ~Span() {
      if (tracer_ != nullptr) {
        tracer_->complete(std::move(name_), track_, start_us_,
                          tracer_->now_us() - start_us_);
      }
    }

   private:
    SpanTracer* tracer_;
    std::string name_;
    std::uint32_t track_;
    double start_us_;
  };

  [[nodiscard]] Span span(std::string name, std::uint32_t track = 0) {
    return Span(this, std::move(name), track);
  }

  [[nodiscard]] std::size_t num_events() const;
  void clear();

  /// The full {"traceEvents":[...]} document.
  void write_chrome_trace(std::ostream& out) const;

 private:
  struct Event {
    std::string name;
    char ph = 'X';  ///< 'X' complete, 'C' counter, 'i' instant
    std::uint32_t track = 0;
    double ts_us = 0;
    double dur_us = 0;
    double value = 0;  ///< counter series value
    bool has_args = false;
    std::uint64_t arg_bytes = 0;
    std::uint64_t arg_msgs = 0;
  };

  Timer timer_;
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::vector<std::pair<std::uint32_t, std::string>> track_names_;
};

}  // namespace kylix::obs
