// Precondition / invariant checking macros.
//
// KYLIX_CHECK is always on (argument validation on public APIs); KYLIX_DCHECK
// compiles out in NDEBUG builds (hot-loop invariants). Failures throw rather
// than abort so tests can assert on them and long simulations fail cleanly.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace kylix {

/// Thrown when a KYLIX_CHECK fails: a caller violated an API contract.
class check_error : public std::logic_error {
 public:
  explicit check_error(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "KYLIX_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw check_error(os.str());
}
}  // namespace detail

}  // namespace kylix

#define KYLIX_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr))                                                       \
      ::kylix::detail::check_failed(#expr, __FILE__, __LINE__, "");    \
  } while (0)

#define KYLIX_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream kylix_os_;                                    \
      kylix_os_ << msg;                                                \
      ::kylix::detail::check_failed(#expr, __FILE__, __LINE__,         \
                                    kylix_os_.str());                  \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define KYLIX_DCHECK(expr) \
  do {                     \
  } while (0)
#else
#define KYLIX_DCHECK(expr) KYLIX_CHECK(expr)
#endif
