# Empty dependencies file for key_set_test.
# This may be replaced when dependencies are built.
