// Minimal leveled logger.
//
// Benches and examples narrate progress through this instead of raw stderr so
// verbosity is controlled in one place (KYLIX_LOG_LEVEL env var or set_level).
#pragma once

#include <sstream>
#include <string>

namespace kylix {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

namespace log {

/// Global threshold; messages below it are discarded.
void set_level(LogLevel level);
LogLevel level();

/// Emit one line to stderr with a level prefix. Thread-safe.
void write(LogLevel level, const std::string& message);

}  // namespace log

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel lvl) : level_(lvl) {}
  ~LogLine() { log::write(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace kylix

#define KYLIX_LOG(lvl)                                      \
  if (static_cast<int>(lvl) < static_cast<int>(::kylix::log::level())) { \
  } else                                                    \
    ::kylix::detail::LogLine(lvl)

#define KYLIX_DEBUG KYLIX_LOG(::kylix::LogLevel::kDebug)
#define KYLIX_INFO KYLIX_LOG(::kylix::LogLevel::kInfo)
#define KYLIX_WARN KYLIX_LOG(::kylix::LogLevel::kWarn)
#define KYLIX_ERROR KYLIX_LOG(::kylix::LogLevel::kError)
