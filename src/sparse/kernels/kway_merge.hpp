// Single-pass k-way union via a loser tree, with positional maps.
//
// The binary merge cascade (merge.hpp tree_merge_into) re-copies every
// surviving key log2(k) times and composes every leaf map level by level —
// at the paper's degrees (up to 16) that is four full passes over the data.
// The loser tree pops the global minimum in log2(k) *compares* against a
// 2k-entry tournament array that lives in L1, writes each union key exactly
// once, and writes each map entry exactly once, directly: one pass, total
// O(N log k) compares but O(N) memory traffic.
//
// Output contract is identical to tree_merge_into: sorted duplicate-free
// union, maps[i][p] = union position of inputs[i][p] (asserted equivalent by
// tests/sparse/kernels_test.cpp). Call-sites choose between the two through
// kernels::choose_union_kernel.
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace kylix {
struct UnionResult;  // sparse/merge.hpp
}

namespace kylix::kernels {

/// Reusable loser-tree storage; buffers only ever grow, so steady-state
/// repeated unions are allocation-free (same discipline as MergeScratch).
struct KWayScratch {
  std::vector<std::uint32_t> losers;   ///< tournament: [0] winner, [1,K) losers
  std::vector<std::uint32_t> winners;  ///< build-time winner tree
  std::vector<key_t> cur;              ///< current head key per run
  std::vector<std::size_t> pos;        ///< cursor per run
  std::vector<unsigned char> alive;    ///< run not yet exhausted
};

/// Union of k strictly-sorted sequences in one pass. `out` is overwritten
/// (buffers reused); accepts k == 0/1 and arbitrarily many empty inputs.
void kway_merge_into(std::span<const std::span<const key_t>> inputs,
                     UnionResult& out, KWayScratch& scratch);

}  // namespace kylix::kernels
