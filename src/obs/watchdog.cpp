#include "obs/watchdog.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace kylix::obs {

AnomalyWatchdog::AnomalyWatchdog(rank_t num_ranks, const Options& options)
    : num_ranks_(num_ranks), opts_(options) {
  KYLIX_CHECK(num_ranks >= 1);
  KYLIX_CHECK(opts_.ewma_alpha > 0 && opts_.ewma_alpha <= 1);
  scratch_.reserve(num_ranks);
  deviat_.reserve(num_ranks);
  active_.reserve(num_ranks);
  if (opts_.metrics != nullptr) {
    MetricsRegistry& m = *opts_.metrics;
    slow_counter_ = &m.counter("engine.anomaly.slow_rounds");
    straggler_counter_ = &m.counter("engine.anomaly.stragglers");
    imbalance_counter_ = &m.counter("engine.anomaly.byte_imbalance");
    last_straggler_gauge_ = &m.gauge("engine.anomaly.last_straggler");
  }
}

double AnomalyWatchdog::median_into_scratch(
    const std::vector<double>& values) {
  scratch_.assign(values.begin(), values.end());
  const auto mid = scratch_.begin() +
                   static_cast<std::ptrdiff_t>(scratch_.size() / 2);
  std::nth_element(scratch_.begin(), mid, scratch_.end());
  return *mid;
}

void AnomalyWatchdog::observe_round(
    Phase phase, std::uint16_t layer, double round_s,
    const std::vector<double>& completion_offset_us,
    const std::vector<std::uint64_t>& send_bytes) {
  KYLIX_CHECK(completion_offset_us.size() == num_ranks_ &&
              send_bytes.size() == num_ranks_);
  ++rounds_seen_;
  const bool warm = rounds_seen_ > opts_.min_samples;

  // ---- Slow rounds: EWMA mean + EWMA absolute deviation ----
  if (rounds_seen_ == 1) {
    ewma_mean_s_ = round_s;
  } else {
    const double excess = round_s - ewma_mean_s_;
    if (warm && excess > opts_.slow_k * std::max(ewma_dev_s_,
                                                 opts_.min_round_s)) {
      ++slow_rounds_;
      if (slow_counter_ != nullptr) slow_counter_->add(1);
      if (opts_.recorder != nullptr) {
        FlightEvent e;
        e.kind = FlightEventKind::kSlowRound;
        e.phase = phase;
        e.layer = layer;
        e.value = round_s;
        opts_.recorder->record(e);
      }
    }
    const double a = opts_.ewma_alpha;
    ewma_dev_s_ = (1 - a) * ewma_dev_s_ + a * std::abs(excess);
    ewma_mean_s_ = (1 - a) * ewma_mean_s_ + a * round_s;
  }

  // ---- Stragglers: MAD over the round's active ranks' last-send offsets.
  // A rank that sent nothing this round (offset <= 0) is not a straggler,
  // it is simply not participating — exclude it from the statistics.
  active_.clear();
  for (rank_t r = 0; r < num_ranks_; ++r) {
    if (completion_offset_us[r] > 0) active_.push_back(completion_offset_us[r]);
  }
  if (warm && active_.size() >= 3) {
    const double median = median_into_scratch(active_);
    deviat_.clear();
    for (const double off : active_) deviat_.push_back(std::abs(off - median));
    const double mad = median_into_scratch(deviat_);
    const double gate =
        std::max(opts_.straggler_k * std::max(mad, opts_.min_mad_us),
                 opts_.min_straggler_us);
    for (rank_t r = 0; r < num_ranks_; ++r) {
      const double off = completion_offset_us[r];
      if (off <= 0 || off - median <= gate) continue;
      ++stragglers_;
      last_straggler_ = r;
      if (straggler_counter_ != nullptr) {
        straggler_counter_->add(1);
        last_straggler_gauge_->set(static_cast<double>(r));
      }
      if (opts_.recorder != nullptr) {
        FlightEvent e;
        e.kind = FlightEventKind::kStraggler;
        e.phase = phase;
        e.layer = layer;
        e.rank = r;
        e.value = off - median;  // microseconds behind the pack
        opts_.recorder->record(e);
      }
    }
  }

  // ---- Byte imbalance: MAD over per-rank send volume ----
  active_.clear();
  for (rank_t r = 0; r < num_ranks_; ++r) {
    if (send_bytes[r] > 0) {
      active_.push_back(static_cast<double>(send_bytes[r]));
    }
  }
  if (warm && active_.size() >= 3) {
    const double median = median_into_scratch(active_);
    deviat_.clear();
    for (const double b : active_) deviat_.push_back(std::abs(b - median));
    const double mad = median_into_scratch(deviat_);
    const double gate =
        std::max(opts_.imbalance_k * std::max(mad, 1.0),
                 opts_.min_imbalance_bytes);
    for (rank_t r = 0; r < num_ranks_; ++r) {
      const double b = static_cast<double>(send_bytes[r]);
      if (send_bytes[r] == 0 || std::abs(b - median) <= gate) continue;
      ++byte_imbalances_;
      if (imbalance_counter_ != nullptr) imbalance_counter_->add(1);
      if (opts_.recorder != nullptr) {
        FlightEvent e;
        e.kind = FlightEventKind::kByteImbalance;
        e.phase = phase;
        e.layer = layer;
        e.rank = r;
        e.value = b - median;
        e.bytes = send_bytes[r];
        opts_.recorder->record(e);
      }
    }
  }
}

}  // namespace kylix::obs
