file(REMOVE_RECURSE
  "CMakeFiles/alpha_fit_test.dir/powerlaw/alpha_fit_test.cpp.o"
  "CMakeFiles/alpha_fit_test.dir/powerlaw/alpha_fit_test.cpp.o.d"
  "alpha_fit_test"
  "alpha_fit_test.pdb"
  "alpha_fit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpha_fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
