// Shared helpers for the Kylix test suite: random sparse workload
// generation with the ∪in ⊆ ∪out invariant, and brute-force oracles.
#pragma once

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "sparse/key_set.hpp"
#include "sparse/ops.hpp"

namespace kylix::testing {

/// A complete random sparse-allreduce instance over m machines.
template <typename V>
struct Workload {
  std::vector<KeySet> in_sets;
  std::vector<KeySet> out_sets;
  std::vector<std::vector<V>> out_values;  ///< aligned with out_sets
};

/// Machines contribute random subsets of [0, n); every machine requests a
/// random subset of the union of contributions (so ∪in ⊆ ∪out holds by
/// construction). Values are small integers stored exactly in float, so
/// sums are exact and comparisons can be ==.
template <typename V>
Workload<V> random_workload(rank_t machines, std::uint64_t num_features,
                            double out_prob, double in_prob,
                            std::uint64_t seed) {
  Rng rng(seed);
  Workload<V> w;
  std::set<index_t> contributed;
  for (rank_t r = 0; r < machines; ++r) {
    std::vector<index_t> out;
    for (index_t f = 0; f < num_features; ++f) {
      if (rng.uniform() < out_prob) {
        out.push_back(f);
        contributed.insert(f);
      }
    }
    // Guarantee non-empty contributions so every machine participates.
    if (out.empty()) {
      out.push_back(rng.below(num_features));
      contributed.insert(out.back());
    }
    w.out_sets.push_back(KeySet::from_indices(out));
    std::vector<V> values;
    for (std::size_t p = 0; p < w.out_sets.back().size(); ++p) {
      values.push_back(static_cast<V>(rng.below(100)));
    }
    w.out_values.push_back(std::move(values));
  }
  const std::vector<index_t> pool(contributed.begin(), contributed.end());
  for (rank_t r = 0; r < machines; ++r) {
    std::vector<index_t> in;
    for (index_t f : pool) {
      if (rng.uniform() < in_prob) in.push_back(f);
    }
    if (in.empty()) in.push_back(pool[rng.below(pool.size())]);
    w.in_sets.push_back(KeySet::from_indices(in));
  }
  return w;
}

/// Brute-force oracle: per-index totals via a std::map.
template <typename V, typename Op = OpSum>
std::map<key_t, V> brute_force_totals(const Workload<V>& w, Op op = {}) {
  std::map<key_t, V> totals;
  for (std::size_t r = 0; r < w.out_sets.size(); ++r) {
    for (std::size_t p = 0; p < w.out_sets[r].size(); ++p) {
      const key_t k = w.out_sets[r][p];
      auto [it, inserted] =
          totals.emplace(k, Op::template identity<V>());
      op(it->second, w.out_values[r][p]);
    }
  }
  return totals;
}

/// Assert that `results` (aligned with w.in_sets, key order) equals the
/// brute-force reduction exactly.
template <typename V, typename Op = OpSum>
void expect_matches_oracle(const Workload<V>& w,
                           const std::vector<std::vector<V>>& results) {
  const auto totals = brute_force_totals<V, Op>(w);
  ASSERT_EQ(results.size(), w.in_sets.size());
  for (std::size_t r = 0; r < w.in_sets.size(); ++r) {
    ASSERT_EQ(results[r].size(), w.in_sets[r].size()) << "machine " << r;
    for (std::size_t p = 0; p < w.in_sets[r].size(); ++p) {
      const key_t k = w.in_sets[r][p];
      ASSERT_TRUE(totals.contains(k));
      EXPECT_EQ(results[r][p], totals.at(k))
          << "machine " << r << " position " << p << " index "
          << unhash_index(k);
    }
  }
}

}  // namespace kylix::testing
