# Empty dependencies file for sgd_test.
# This may be replaced when dependencies are built.
