// Per-layer "Kylix-shape" run report (DESIGN.md "Observability").
//
// Aggregates one allreduce run — the message trace, the configured topology,
// optionally the Section IV model inputs, the allreduce's measured per-layer
// set sizes, the modeled timing, and the engines' drop/race counters — into
// a single machine-readable record:
//
//   * per layer: measured bytes per phase (matching the trace's
//     bytes_by_layer exactly), message counts, measured density D_i and
//     per-node elements P_i next to Proposition 4.1's predictions, and the
//     modeled round times;
//   * run totals: volume, messages, drops, replica-race wins/losses,
//     modeled phase times.
//
// Renders as JSON (kylix_cli report, benches) and as an ASCII chart of the
// paper's Fig. 5: per-layer volume bars centered so the shrinking layers
// draw the drinking-cup silhouette the system is named after.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "cluster/timing.hpp"
#include "cluster/trace.hpp"
#include "core/topology.hpp"

namespace kylix::obs {

struct RunReportInputs {
  const Trace* trace = nullptr;        ///< required
  const Topology* topology = nullptr;  ///< required
  const TimingAccumulator* timing = nullptr;  ///< optional modeled times

  /// Section IV model parameters; features == 0 disables the predicted
  /// D_i / P_i columns.
  std::uint64_t features = 0;
  double alpha = 1.0;
  double partition_density = 0;  ///< measured density of one machine's data

  /// Mean out-set size at node layers 0..l (from
  /// SparseAllreduce::measured_layer_elements()); empty disables the
  /// measured D_i / P_i columns.
  std::vector<double> measured_elements;

  std::uint64_t dropped_messages = 0;
  std::uint64_t race_wins = 0;
  std::uint64_t race_losses = 0;
  std::string workload;  ///< free-form label for the JSON header
};

struct LayerReport {
  std::uint16_t layer = 0;  ///< 1-based, as in the paper
  std::uint32_t degree = 0;
  std::uint64_t bytes_config = 0;
  std::uint64_t bytes_reduce_down = 0;
  std::uint64_t bytes_reduce_up = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t messages = 0;
  // Measured workload shape (valid when has_measured_shape).
  double measured_elements_per_node = 0;  ///< P_i entering this layer
  double measured_density = 0;            ///< D_i = P_i * K_i / n
  // Section IV predictions (valid when has_model).
  double model_elements_per_node = 0;
  double model_density = 0;
  // Modeled round times (valid when inputs supplied timing).
  double time_config_s = 0;
  double time_reduce_down_s = 0;
  double time_reduce_up_s = 0;
};

struct RunReport {
  std::string workload;
  rank_t machines = 0;
  std::vector<std::uint32_t> degrees;  ///< inter-node butterfly degrees
  /// Two-tier host model (DESIGN §13): when the topology is hierarchical,
  /// `degrees` spans the inter-node layers only and the shape model folds
  /// cores_per_machine in as a zeroth shared-memory merge — Prop 4.1's
  /// predictions for inter layer i are evaluated at fan-in c * K_{i-1}.
  std::uint32_t cores_per_machine = 1;
  bool hierarchical = false;
  std::uint64_t features = 0;
  double alpha = 0;
  double partition_density = 0;
  double lambda0 = 0;  ///< fitted scaling factor (0 when no model)
  bool has_model = false;
  bool has_measured_shape = false;
  bool has_timing = false;

  std::vector<LayerReport> layers;  ///< one per communication layer
  /// The would-be extra layer: fully reduced data at the bottom.
  double bottom_measured_elements = 0;
  double bottom_model_elements = 0;

  std::uint64_t total_bytes = 0;
  std::uint64_t total_messages = 0;
  std::uint64_t dropped_messages = 0;
  std::uint64_t race_wins = 0;
  std::uint64_t race_losses = 0;
  double time_config_s = 0;
  double time_reduce_s = 0;  ///< both tiers: inter rounds + intra stages
  // The intra/inter split (valid when has_timing and hierarchical): the
  // shared-memory tier's modeled seconds next to the wire schedule's.
  double time_intra_config_s = 0;
  double time_intra_reduce_s = 0;  ///< leader fold + member gather
  double time_inter_reduce_s = 0;  ///< inter-node rounds only

  /// Centered per-layer volume bars — the Kylix silhouette.
  [[nodiscard]] std::string ascii_chart(std::size_t width = 56) const;

  void write_json(std::ostream& out) const;
  [[nodiscard]] std::string to_json() const;
};

/// Aggregate a finished run. Throws check_error when trace/topology are
/// missing or measured_elements has the wrong length.
[[nodiscard]] RunReport build_run_report(const RunReportInputs& inputs);

}  // namespace kylix::obs
