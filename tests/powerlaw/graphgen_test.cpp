#include "powerlaw/graphgen.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <algorithm>
#include <cmath>

#include "powerlaw/alpha_fit.hpp"
#include "powerlaw/model.hpp"

namespace kylix {
namespace {

GraphSpec small_spec() {
  GraphSpec spec;
  spec.num_vertices = 5000;
  spec.num_edges = 40000;
  spec.alpha_out = 1.3;
  spec.alpha_in = 1.1;
  spec.seed = 5;
  return spec;
}

TEST(ZipfGraph, HasRequestedShape) {
  const GraphSpec spec = small_spec();
  const std::vector<Edge> edges = generate_zipf_graph(spec);
  EXPECT_EQ(edges.size(), spec.num_edges);
  for (const Edge& e : edges) {
    EXPECT_LT(e.src, spec.num_vertices);
    EXPECT_LT(e.dst, spec.num_vertices);
  }
}

TEST(ZipfGraph, DeterministicInSeed) {
  const GraphSpec spec = small_spec();
  EXPECT_EQ(generate_zipf_graph(spec), generate_zipf_graph(spec));
  GraphSpec other = spec;
  other.seed = 6;
  EXPECT_NE(generate_zipf_graph(other), generate_zipf_graph(spec));
}

TEST(ZipfGraph, InDegreesFollowTheInExponent) {
  GraphSpec spec = small_spec();
  spec.num_edges = 400000;
  const std::vector<Edge> edges = generate_zipf_graph(spec);
  std::vector<std::uint64_t> in_counts(spec.num_vertices, 0);
  for (const Edge& e : edges) ++in_counts[e.dst];
  std::sort(in_counts.begin(), in_counts.end(), std::greater<>());
  in_counts.resize(100);  // fit the head
  EXPECT_NEAR(fit_alpha_rank_frequency(in_counts), spec.alpha_in, 0.15);
}

TEST(Rmat, ShapeAndDeterminism) {
  const std::vector<Edge> edges = generate_rmat(10, 5000, 3);
  EXPECT_EQ(edges.size(), 5000u);
  for (const Edge& e : edges) {
    EXPECT_LT(e.src, 1u << 10);
    EXPECT_LT(e.dst, 1u << 10);
  }
  EXPECT_EQ(generate_rmat(10, 5000, 3), edges);
  EXPECT_NE(generate_rmat(10, 5000, 4), edges);
}

TEST(Rmat, SkewsTowardLowIds) {
  const std::vector<Edge> edges = generate_rmat(12, 40000, 7);
  std::size_t low = 0;
  for (const Edge& e : edges) {
    if (e.src < (1u << 11)) ++low;  // lower half of the id space
  }
  // a + b = 0.76 of mass goes to the low-src half at every recursion level.
  EXPECT_GT(low, edges.size() * 0.65);
}

TEST(Rmat, RejectsBadParameters) {
  EXPECT_THROW(generate_rmat(0, 10, 1), check_error);
  EXPECT_THROW(generate_rmat(10, 10, 1, 0.5, 0.3, 0.3), check_error);
}

TEST(RandomEdgePartition, PreservesAndBalancesEdges) {
  const std::vector<Edge> edges = generate_zipf_graph(small_spec());
  const auto parts = random_edge_partition(edges, 8, 42);
  ASSERT_EQ(parts.size(), 8u);
  std::size_t total = 0;
  for (const auto& p : parts) {
    total += p.size();
    // Balanced within ~5 sigma of the binomial spread.
    EXPECT_NEAR(static_cast<double>(p.size()), edges.size() / 8.0,
                5 * std::sqrt(edges.size() / 8.0));
  }
  EXPECT_EQ(total, edges.size());
  EXPECT_EQ(random_edge_partition(edges, 8, 42), parts);
}

TEST(RandomEdgePartition, SingleMachineTakesEverything) {
  const std::vector<Edge> edges = generate_zipf_graph(small_spec());
  const auto parts = random_edge_partition(edges, 1, 1);
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], edges);
}

TEST(EdgesForPartitionDensity, HitsTheDensityTarget) {
  // The sizing formula plus the generator should land near the requested
  // partition density (this is the calibration the presets rely on).
  const std::uint64_t n = 1 << 15;
  const double target = 0.15;
  GraphSpec spec;
  spec.num_vertices = n;
  spec.alpha_in = 1.1;
  spec.alpha_out = 1.3;
  spec.num_edges = edges_for_partition_density(n, spec.alpha_in, 8, target);
  spec.seed = 19;
  const auto edges = generate_zipf_graph(spec);
  const auto parts = random_edge_partition(edges, 8, 20);
  const double measured = measure_partition_density(parts, n);
  EXPECT_NEAR(measured, target, target * 0.15);
}

TEST(Presets, AreScaledToThePaperDensities) {
  const GraphSpec twitter = twitter_like(1 << 16);
  const GraphSpec yahoo = yahoo_like(1 << 16);
  EXPECT_GT(twitter.num_edges, 0u);
  EXPECT_GT(yahoo.num_edges, 0u);
  // Twitter-like partitions are much denser than yahoo-like ones, so at the
  // same vertex count it needs many more edges.
  EXPECT_GT(twitter.num_edges, yahoo.num_edges);
  EXPECT_STREQ(twitter.name, "twitter-like");
  EXPECT_STREQ(yahoo.name, "yahoo-like");
}

TEST(MeasurePartitionDensity, CountsUniqueDestinations) {
  const std::vector<std::vector<Edge>> parts = {
      {{0, 1}, {2, 1}, {3, 4}},  // dsts {1, 4} -> density 2/10
      {{0, 5}, {1, 5}},          // dsts {5}    -> density 1/10
  };
  EXPECT_NEAR(measure_partition_density(parts, 10), 0.15, 1e-12);
}

}  // namespace
}  // namespace kylix
