// Figure 5 — total communication volume per layer: the "Kylix shape".
//
// For each dataset the allreduce actually runs on 64 simulated machines
// with the paper's optimal degrees (8x4x2 twitter-like, 16x4 yahoo-like);
// the trace records every scatter-reduce message including self-packets,
// exactly the quantity Fig. 5 plots. The final row is the volume of fully
// reduced values at the bottom ("the communication volume if there were an
// additional layer"). Proposition 4.1's predictions are printed alongside
// the measurement — the model drives the design workflow, so its fit
// matters.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace kylix;

void run(const bench::Dataset& data) {
  const Topology& topo = data.paper_topology;
  const std::uint16_t layers = topo.num_layers();
  std::printf("\n== %s: n = %llu, %llu edges, partition density %.3f, "
              "degrees %s ==\n",
              data.name.c_str(),
              static_cast<unsigned long long>(data.spec.num_vertices),
              static_cast<unsigned long long>(data.spec.num_edges),
              data.measured_density, topo.to_string().c_str());

  Trace trace;
  BspEngine<real_t> engine(topo.num_machines(), nullptr, &trace);
  SparseAllreduce<real_t, OpSum, BspEngine<real_t>> allreduce(&engine, topo);
  allreduce.configure(data.in_sets, data.out_sets);
  (void)allreduce.reduce(data.out_values);

  // Model predictions from the measured density (Prop. 4.1). Each machine's
  // P_i elements are transmitted once per scatter-reduce layer; total
  // volume at layer i is m * P_i * bytes_per_element.
  const PowerLawModel model(data.spec.num_vertices, data.spec.alpha_in);
  const double lambda0 = model.lambda_for_density(data.measured_density);
  const auto stats = model.layer_stats(lambda0, topo.degrees());

  // Measured volumes carry 4 bytes per value plus small per-message
  // headers; the prediction counts 4 bytes per expected element.
  const auto volumes = trace.bytes_by_layer(Phase::kReduceDown, layers);
  std::printf("%-8s %-18s %-18s %-10s\n", "layer", "measured_volume",
              "prop4.1_volume", "ratio");
  for (std::uint16_t layer = 1; layer <= layers; ++layer) {
    const double measured = static_cast<double>(volumes[layer - 1]);
    const double predicted = 64.0 * stats[layer - 1].elements_per_node * 4.0;
    std::printf("%-8u %-18s %-18s %-10.2f\n", layer,
                format_bytes(measured).c_str(),
                format_bytes(predicted).c_str(), measured / predicted);
  }
  // Bottom row: fully reduced data (the would-be extra layer).
  double bottom_elements = 0;
  for (rank_t r = 0; r < topo.num_machines(); ++r) {
    bottom_elements +=
        static_cast<double>(allreduce.node(r).out_set(layers).size());
  }
  std::printf("%-8s %-18s %-18s\n", "bottom",
              format_bytes(bottom_elements * 4.0).c_str(),
              format_bytes(64.0 * stats[layers].elements_per_node * 4.0)
                  .c_str());
}

}  // namespace

int main() {
  std::printf("# Figure 5: total communication volume across layers "
              "(scatter-reduce, self-packets included)\n");
  run(bench::make_dataset("twitter"));
  run(bench::make_dataset("yahoo"));
  return 0;
}
