// End-to-end elastic-membership healing: seeded kill-group → degraded
// rounds → detector-confirmed re-plan → post-heal reduces bit-identical to
// a fresh configure on the survivor set → rejoin at a later epoch restores
// the original plan from the PlanCache. Runs on all four engines plus the
// AsyncExecutor, and carries the PlanCache-across-epochs satellite tests.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/fault_plan.hpp"
#include "cluster/membership.hpp"
#include "comm/bsp.hpp"
#include "comm/parallel.hpp"
#include "comm/replicated.hpp"
#include "comm/threaded.hpp"
#include "core/allreduce.hpp"
#include "core/async_executor.hpp"
#include "core/epoch_manager.hpp"
#include "core/plan_cache.hpp"
#include "core/topology.hpp"
#include "obs/flight_recorder.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

template <typename Engine>
std::unique_ptr<Engine> make_engine(rank_t m, const FailureModel* fm) {
  if constexpr (std::is_same_v<Engine, ParallelBspEngine<float>>) {
    return std::make_unique<Engine>(m, 2, fm);
  } else {
    return std::make_unique<Engine>(m, fm);
  }
}

template <typename Engine>
class FlatHealTest : public ::testing::Test {};

using FlatEngines = ::testing::Types<BspEngine<float>, ParallelBspEngine<float>,
                                     ThreadedBsp<float>>;
TYPED_TEST_SUITE(FlatHealTest, FlatEngines);

// Kill one rank mid-run, confirm via the heartbeat detector, re-plan, and
// verify the healed plan is indistinguishable from a cold configure on the
// survivor set; then rejoin the rank and verify the original epoch-0 plan
// is served back from the cache.
TYPED_TEST(FlatHealTest, KillHealRejoinBitIdentical) {
  using Engine = TypeParam;
  using Allreduce = SparseAllreduce<float, OpSum, Engine>;
  const rank_t m = 8;
  const Topology topo({4, 2});
  const auto w = testing::random_workload<float>(m, 256, 0.3, 0.5, 99);

  FailureModel fm(m);
  auto engine = make_engine<Engine>(m, &fm);
  Allreduce ar(engine.get(), topo);
  MembershipView view(m, &fm);
  PlanCache cache(8);
  typename EpochedPlanManager<float, OpSum, Engine>::Options mopts;
  mopts.cache = &cache;
  EpochedPlanManager<float, OpSum, Engine> mgr(&ar, &view, mopts);
  mgr.set_engine(engine.get());

  mgr.configure(w.in_sets, w.out_sets);
  const std::uint64_t fp0 = ar.plan()->fingerprint();
  const auto r0 = ar.reduce(w.out_values);
  testing::expect_matches_oracle(w, r0);

  // Seeded kill: rank 3 dies. The detector holds it in suspicion, so the
  // next rounds run degraded on the old plan — cost, not a dead cluster.
  fm.kill(3);
  EXPECT_FALSE(mgr.heal(0.0));  // suspect only: no re-plan yet
  EXPECT_EQ(view.state(3), MembershipView::State::kSuspect);
  const auto degraded = ar.reduce(w.out_values);
  EXPECT_TRUE(degraded[3].empty());

  // Probes exhaust → confirmed dead → epoch 1 → re-plan on survivors.
  ASSERT_TRUE(mgr.heal_settled(1.0));
  EXPECT_EQ(mgr.epoch(), 1u);
  const std::uint64_t fp1 = ar.plan()->fingerprint();
  EXPECT_NE(fp1, fp0);  // alive-set salt keeps per-epoch plans distinct
  const auto healed = ar.reduce(w.out_values);

  // Oracle: a cold configure on the survivor set must be bit-identical.
  FailureModel fm2(m);
  fm2.kill(3);
  auto engine2 = make_engine<Engine>(m, &fm2);
  Allreduce fresh(engine2.get(), topo);
  fresh.configure(w.in_sets, w.out_sets);
  EXPECT_EQ(fresh.plan()->fingerprint(), fp1);
  const auto expected = fresh.reduce(w.out_values);
  EXPECT_EQ(healed, expected);

  // Rejoin at a later epoch: full membership again, so the salted
  // fingerprint folds back to fp0 and the cache serves the epoch-0 plan.
  fm.revive(3);
  ASSERT_TRUE(mgr.heal(2.0));
  EXPECT_EQ(mgr.epoch(), 2u);
  EXPECT_EQ(ar.plan()->fingerprint(), fp0);
  ASSERT_EQ(mgr.timeline().size(), 3u);
  EXPECT_TRUE(mgr.timeline().back().cache_hit);
  const auto rejoined = ar.reduce(w.out_values);
  EXPECT_EQ(rejoined, r0);
}

// The replicated engine heals at group granularity: a single replica death
// changes nothing, a whole-group death triggers re-plan, and post-heal
// DegradedReports describe only the new epoch (dead-at-start, exactly what
// a fresh configure on the survivor set reports).
TEST(ReplicatedHealTest, GroupDeathHealRejoin) {
  using Engine = ReplicatedBsp<float>;
  using Allreduce = SparseAllreduce<float, OpSum, Engine>;
  const rank_t m = 8;
  const std::uint32_t s = 2;
  const Topology topo({4, 2});
  const auto w = testing::random_workload<float>(m, 128, 0.3, 0.5, 7);

  FailureModel fm(m * s);
  Engine engine(m, s, &fm);
  Allreduce ar(&engine, topo);
  MembershipOptions vopts;
  vopts.replication = s;
  MembershipView view(m, &fm, vopts);
  PlanCache cache(8);
  EpochedPlanManager<float, OpSum, Engine>::Options mopts;
  mopts.cache = &cache;
  EpochedPlanManager<float, OpSum, Engine> mgr(&ar, &view, mopts);
  mgr.set_engine(&engine);

  mgr.configure(w.in_sets, w.out_sets);
  const auto r0 = ar.reduce(w.out_values);
  testing::expect_matches_oracle(w, r0);

  // One replica down: replication absorbs it, membership unchanged.
  fm.kill(3);
  EXPECT_FALSE(mgr.heal_settled(1.0));
  EXPECT_EQ(mgr.epoch(), 0u);
  EXPECT_EQ(ar.reduce(w.out_values), r0);

  // The whole group dies mid-run: degraded rounds until the detector
  // confirms, with mid-run death records in the report.
  fm.kill(3 + m);
  EXPECT_FALSE(mgr.heal(2.0));
  const auto degraded = ar.reduce(w.out_values);
  const auto pre = ar.degraded_report();
  EXPECT_TRUE(pre.degraded);
  EXPECT_EQ(pre.lost_logical, std::vector<rank_t>{3});
  EXPECT_TRUE(pre.lost_from_start.empty());  // it died mid-run, not at start
  EXPECT_TRUE(degraded[3].empty());

  // Heal. Post-heal reports must cover only the new epoch: rank 3 is
  // dead-at-start of the healed plan, matching a fresh survivor configure.
  ASSERT_TRUE(mgr.heal_settled(3.0));
  EXPECT_EQ(mgr.epoch(), 1u);
  const auto healed = ar.reduce(w.out_values);
  const auto post = ar.degraded_report();

  FailureModel fm2(m * s);
  fm2.kill(3);
  fm2.kill(3 + m);
  Engine engine2(m, s, &fm2);
  Allreduce fresh(&engine2, topo);
  fresh.configure(w.in_sets, w.out_sets);
  EXPECT_EQ(fresh.plan()->fingerprint(), ar.plan()->fingerprint());
  const auto expected = fresh.reduce(w.out_values);
  const auto fresh_report = fresh.degraded_report();

  EXPECT_EQ(healed, expected);
  EXPECT_TRUE(post.degraded);
  EXPECT_EQ(post.lost_logical, fresh_report.lost_logical);
  EXPECT_EQ(post.lost_from_start, fresh_report.lost_from_start);
  EXPECT_EQ(post.lost_from_start, std::vector<rank_t>{3});
  EXPECT_EQ(post.lost_keys, fresh_report.lost_keys);

  // Rejoin: revive both replicas → epoch 2 → exact reduces again, with a
  // clean report (epoch scoping forgot the old deaths).
  fm.revive(3);
  fm.revive(3 + m);
  ASSERT_TRUE(mgr.heal(4.0));
  EXPECT_EQ(mgr.epoch(), 2u);
  EXPECT_TRUE(mgr.timeline().back().cache_hit);
  EXPECT_EQ(ar.reduce(w.out_values), r0);
  EXPECT_FALSE(ar.degraded_report().degraded);
}

// AsyncExecutor across epochs: streams are tagged with the epoch they were
// admitted under, old-epoch streams complete against the old plan, and the
// manager rebinds + re-stamps the executor at each heal.
TEST(AsyncHealTest, EpochTaggedStreamsAcrossHeal) {
  using Engine = BspEngine<float>;
  using Allreduce = SparseAllreduce<float, OpSum, Engine>;
  const rank_t m = 8;
  const Topology topo({4, 2});
  const auto w = testing::random_workload<float>(m, 128, 0.3, 0.5, 17);

  FailureModel fm(m);
  Engine engine(m, &fm);
  Allreduce ar(&engine, topo);
  MembershipView view(m, &fm);
  PlanCache cache(8);
  AsyncExecutor<float, OpSum> async;
  obs::FlightRecorder recorder(m);
  EpochedPlanManager<float, OpSum, Engine>::Options mopts;
  mopts.cache = &cache;
  mopts.async = &async;
  mopts.async_options.window = 2;
  mopts.async_options.recorder = &recorder;
  EpochedPlanManager<float, OpSum, Engine> mgr(&ar, &view, mopts);
  mgr.set_engine(&engine);

  mgr.configure(w.in_sets, w.out_sets);
  const auto serial0 = ar.reduce(w.out_values);

  const std::uint32_t t0 = async.submit(w.out_values);
  const std::uint32_t t1 = async.submit(w.out_values);
  async.drain();
  EXPECT_EQ(async.stream_epoch(t0), 0u);
  EXPECT_EQ(async.stream_epoch(t1), 0u);
  EXPECT_EQ(async.take_result(t0), serial0);
  EXPECT_EQ(async.take_result(t1), serial0);

  fm.kill(5);
  ASSERT_TRUE(mgr.heal_settled(1.0));
  EXPECT_EQ(async.epoch(), 1u);
  EXPECT_EQ(async.plan().get(), ar.plan().get());  // rebound to healed plan

  // New submissions run on the new epoch; the dead rank rides a FaultPlan
  // marking it dead (the executor's contract for unconfigured ranks).
  FaultPlan stream_faults(m);
  stream_faults.failures().kill(5);
  const std::uint32_t t2 = async.submit(w.out_values, &stream_faults);
  async.drain();
  EXPECT_EQ(async.stream_epoch(t2), 1u);
  const auto healed_serial = ar.reduce(w.out_values);
  EXPECT_EQ(async.take_result(t2), healed_serial);

  // Admission events carry the epoch tag in `value`.
  int epoch0_admits = 0, epoch1_admits = 0;
  for (const obs::FlightEvent& e : recorder.merged_events()) {
    if (e.kind != obs::FlightEventKind::kStreamAdmit) continue;
    if (e.value == 0.0) ++epoch0_admits;
    if (e.value == 1.0) ++epoch1_admits;
  }
  EXPECT_EQ(epoch0_admits, 2);
  EXPECT_EQ(epoch1_admits, 1);
}

// Satellite: plans of different epochs never collide in the cache, and the
// salted fingerprint is deterministic per alive-set.
TEST(PlanCacheEpochTest, FingerprintSaltedByAliveSet) {
  using Engine = BspEngine<float>;
  const rank_t m = 8;
  const Topology topo({4, 2});
  const auto w = testing::random_workload<float>(m, 128, 0.3, 0.5, 23);

  FailureModel fm(m);
  Engine engine(m, &fm);
  SparseAllreduce<float, OpSum, Engine> ar(&engine, topo);
  const auto p0 = ar.compile(w.in_sets, w.out_sets);
  fm.kill(2);
  const auto p1 = ar.compile(w.in_sets, w.out_sets);
  EXPECT_NE(p1->fingerprint(), p0->fingerprint());
  const auto p1_again = ar.compile(w.in_sets, w.out_sets);
  EXPECT_EQ(p1_again->fingerprint(), p1->fingerprint());
  fm.kill(6);
  const auto p2 = ar.compile(w.in_sets, w.out_sets);
  EXPECT_NE(p2->fingerprint(), p1->fingerprint());
  EXPECT_NE(p2->fingerprint(), p0->fingerprint());
  fm.revive(2);
  fm.revive(6);
  const auto p3 = ar.compile(w.in_sets, w.out_sets);
  EXPECT_EQ(p3->fingerprint(), p0->fingerprint());  // rejoin folds back
}

// Satellite: an old-epoch plan evicted from the cache stays alive while the
// async executor still references it (in-flight old-epoch streams), and
// becomes reclaimable once the executor rebinds to the new epoch.
TEST(PlanCacheEpochTest, OldEpochPlanPinnedByAsyncThenEvictable) {
  using Engine = BspEngine<float>;
  const rank_t m = 8;
  const Topology topo({4, 2});
  const auto w = testing::random_workload<float>(m, 128, 0.3, 0.5, 31);

  FailureModel fm(m);
  Engine engine(m, &fm);
  SparseAllreduce<float, OpSum, Engine> ar(&engine, topo);
  PlanCache cache(1);  // one slot: the epoch-1 insert evicts epoch 0

  AsyncExecutor<float, OpSum> async;
  AsyncExecutor<float, OpSum>::Options aopts;
  aopts.window = 2;

  auto plan0 = ar.compile(w.in_sets, w.out_sets);
  cache.insert(plan0);
  async.bind(plan0, aopts);
  const auto r0 = ar.reduce(w.out_values);
  std::weak_ptr<const CollectivePlan> watch0 = plan0;
  plan0.reset();

  // Epoch 1: rank 2 dies, survivors re-plan; the tiny cache evicts plan 0.
  fm.kill(2);
  auto plan1 = ar.compile(w.in_sets, w.out_sets);
  cache.insert(plan1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_FALSE(watch0.expired());  // pinned: the executor still holds it

  // Old-epoch streams keep completing against the evicted plan.
  const std::uint32_t tag = async.submit(w.out_values);
  async.drain();
  EXPECT_EQ(async.take_result(tag), r0);

  // Once the executor moves to the new epoch, the old plan is reclaimed.
  async.bind(plan1, aopts);
  EXPECT_TRUE(watch0.expired());
}

}  // namespace
}  // namespace kylix
