// Zipf-distributed sampling.
//
// The paper's workloads are power-law ("natural graph") datasets: feature r
// occurs with probability proportional to r^-alpha. ZipfSampler draws ranks
// in [1, n] in O(1) expected time for any alpha > 0 using Hörmann &
// Derflinger's rejection-inversion scheme (the same algorithm as Apache
// Commons RNG's RejectionInversionZipfSampler).
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace kylix {

class ZipfSampler {
 public:
  /// `n` is the number of ranks, `alpha` > 0 the exponent (alpha == 1 is
  /// handled exactly).
  ZipfSampler(std::uint64_t n, double alpha);

  /// Draw a rank in [1, n].
  [[nodiscard]] std::uint64_t operator()(Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const { return n_; }
  [[nodiscard]] double alpha() const { return alpha_; }

 private:
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h_integral_inverse(double x) const;
  [[nodiscard]] double h(double x) const;

  std::uint64_t n_;
  double alpha_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

}  // namespace kylix
