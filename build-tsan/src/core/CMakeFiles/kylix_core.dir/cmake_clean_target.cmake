file(REMOVE_RECURSE
  "libkylix_core.a"
)
