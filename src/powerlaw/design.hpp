// The §IV network-design workflow: choose butterfly degrees for a workload.
//
// Goal (paper): minimize the number of layers subject to per-message packets
// staying above the network's minimum efficient size. Walking down the
// network: compute per-node data P_i entering layer i from Proposition 4.1,
// then pick the largest divisor d of the remaining machine count with
// P_i / d >= min_packet. When even the smallest possible split would drop
// below the threshold, the workload is latency-bound and we fall back to the
// smallest prime factor (binary-like layers maximize packet size per
// message), which is the degenerate regime the paper's binary butterfly
// occupies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "powerlaw/model.hpp"

namespace kylix {

struct DesignInput {
  std::uint64_t num_features = 0;  ///< n
  std::uint32_t num_machines = 0;  ///< m; the degree product must equal m
  double alpha = 1.0;              ///< power-law exponent of the workload
  double partition_density = 0;    ///< measured density of one machine's data
  double bytes_per_element = 12;   ///< wire bytes per nonzero (key + value)
  double min_packet_bytes = 0;     ///< minimum efficient packet size (Fig. 2)
};

struct DesignLayer {
  std::uint32_t degree = 0;
  double density = 0;             ///< D_i entering this layer
  double elements_per_node = 0;   ///< P_i entering this layer
  double node_bytes = 0;          ///< P_i * bytes_per_element
  double message_bytes = 0;       ///< node_bytes / degree
  bool latency_bound = false;     ///< fallback rule was used at this layer
};

struct DesignResult {
  std::vector<std::uint32_t> degrees;  ///< top-to-bottom, product == m
  std::vector<DesignLayer> layers;     ///< one entry per degree
  double lambda0 = 0;                  ///< fitted scaling factor
  [[nodiscard]] std::string to_string() const;
};

/// Run the workflow. Throws check_error on invalid input (m == 0, density
/// outside (0,1), ...).
[[nodiscard]] DesignResult choose_degrees(const DesignInput& input);

/// All divisors > 1 of x, descending.
[[nodiscard]] std::vector<std::uint32_t> divisors_descending(std::uint32_t x);

/// Smallest prime factor of x >= 2.
[[nodiscard]] std::uint32_t smallest_prime_factor(std::uint32_t x);

}  // namespace kylix
