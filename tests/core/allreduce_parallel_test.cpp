// End-to-end determinism of the host-parallel engine: SparseAllreduce on
// ParallelBspEngine must be *bit-identical* to BspEngine — results, trace
// event sequences, and modeled timing — across configure/reduce, the
// combined minibatch mode, failure injection, and the PageRank / SGD apps.
#include "core/allreduce.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "apps/pagerank.hpp"
#include "apps/sgd.hpp"
#include "comm/bsp.hpp"
#include "comm/parallel.hpp"
#include "powerlaw/graphgen.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

using Seq = BspEngine<float>;
using Par = ParallelBspEngine<float>;

void expect_same_trace(const Trace& a, const Trace& b) {
  ASSERT_EQ(a.events().size(), b.events().size());
  for (std::size_t i = 0; i < a.events().size(); ++i) {
    const MsgEvent& x = a.events()[i];
    const MsgEvent& y = b.events()[i];
    EXPECT_TRUE(x.phase == y.phase && x.layer == y.layer && x.src == y.src &&
                x.dst == y.dst && x.bytes == y.bytes)
        << "event " << i;
  }
}

void expect_same_times(const TimingAccumulator::PhaseTimes& a,
                       const TimingAccumulator::PhaseTimes& b) {
  EXPECT_EQ(a.config, b.config);
  EXPECT_EQ(a.reduce_down, b.reduce_down);
  EXPECT_EQ(a.reduce_up, b.reduce_up);
}

class ParallelParityTest
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(ParallelParityTest, ReduceIsBitIdenticalToSequential) {
  const Topology topo(GetParam());
  const rank_t m = topo.num_machines();
  const auto w =
      testing::random_workload<float>(m, 4000, 0.05, 0.1, 90 + m);
  const NetworkModel net = NetworkModel::ec2_like();
  const ComputeModel compute;

  Trace seq_trace, par_trace;
  TimingAccumulator seq_timing(m, net, compute, 16);
  TimingAccumulator par_timing(m, net, compute, 16);

  Seq seq_engine(m, nullptr, &seq_trace, &seq_timing);
  SparseAllreduce<float, OpSum, Seq> seq(&seq_engine, topo, &compute);
  seq.configure(w.in_sets, w.out_sets);

  Par par_engine(m, 4, nullptr, &par_trace, &par_timing);
  SparseAllreduce<float, OpSum, Par> par(&par_engine, topo, &compute);
  par.configure(w.in_sets, w.out_sets);

  // Several reductions: the steady-state (buffer-recycling) path must stay
  // identical, not just the cold first pass.
  for (int iter = 0; iter < 3; ++iter) {
    const auto seq_results = seq.reduce(w.out_values);
    const auto par_results = par.reduce(w.out_values);
    ASSERT_EQ(seq_results, par_results) << "iteration " << iter;
    if (iter == 0) testing::expect_matches_oracle<float>(w, par_results);
  }
  expect_same_trace(seq_trace, par_trace);
  expect_same_times(seq_timing.times(), par_timing.times());
}

INSTANTIATE_TEST_SUITE_P(Topologies, ParallelParityTest,
                         ::testing::Values(std::vector<std::uint32_t>{4, 2},
                                           std::vector<std::uint32_t>{2, 2, 2},
                                           std::vector<std::uint32_t>{16},
                                           std::vector<std::uint32_t>{3, 5}));

TEST(ParallelParity, CombinedModeWithFailuresIsBitIdentical) {
  const Topology topo({4, 2, 2});
  const rank_t m = topo.num_machines();
  const NetworkModel net = NetworkModel::ec2_like();
  const ComputeModel compute;

  FailureModel failures(m);
  failures.kill(3);
  failures.kill(11);

  Trace seq_trace, par_trace;
  TimingAccumulator seq_timing(m, net, compute, 16);
  TimingAccumulator par_timing(m, net, compute, 16);

  Seq seq_engine(m, &failures, &seq_trace, &seq_timing);
  SparseAllreduce<float, OpSum, Seq> seq(&seq_engine, topo, &compute);
  Par par_engine(m, 4, &failures, &par_trace, &par_timing);
  SparseAllreduce<float, OpSum, Par> par(&par_engine, topo, &compute);

  // Minibatch-style: combined configure+reduce every step, new sets each
  // time, with dead machines dropping traffic identically on both engines.
  // Plain (non-replicated) BSP only tolerates failures when the killed
  // machines' contributions are redundant at every routing layer, so every
  // machine contributes the full feature set (out_prob = 1); otherwise
  // configure correctly rejects the workload (∪in ⊄ ∪out).
  for (int step = 0; step < 4; ++step) {
    const auto w =
        testing::random_workload<float>(m, 1200, 1.0, 0.1, 500 + step);
    const auto seq_results =
        seq.reduce_with_config(w.in_sets, w.out_sets, w.out_values);
    const auto par_results =
        par.reduce_with_config(w.in_sets, w.out_sets, w.out_values);
    ASSERT_EQ(seq_results, par_results) << "step " << step;
  }
  expect_same_trace(seq_trace, par_trace);
  expect_same_times(seq_timing.times(), par_timing.times());
}

TEST(ParallelParity, ReduceWithFailuresMatchesSequential) {
  const Topology topo({4, 4});
  const rank_t m = topo.num_machines();
  // Full contribution redundancy (see CombinedModeWithFailuresIsBitIdentical
  // for why plain failures need out_prob = 1).
  const auto w = testing::random_workload<float>(m, 1500, 1.0, 0.15, 321);

  FailureModel failures(m);
  failures.kill(5);

  Trace seq_trace, par_trace;
  Seq seq_engine(m, &failures, &seq_trace, nullptr);
  SparseAllreduce<float, OpSum, Seq> seq(&seq_engine, topo);
  Par par_engine(m, 4, &failures, &par_trace, nullptr);
  SparseAllreduce<float, OpSum, Par> par(&par_engine, topo);

  seq.configure(w.in_sets, w.out_sets);
  par.configure(w.in_sets, w.out_sets);
  EXPECT_EQ(seq.reduce(w.out_values), par.reduce(w.out_values));
  expect_same_trace(seq_trace, par_trace);
}

TEST(ParallelParity, PageRankRanksAreBitIdentical) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  GraphSpec spec;
  spec.num_vertices = 2000;
  spec.num_edges = 20000;
  spec.alpha_out = 1.2;
  spec.alpha_in = 1.1;
  spec.seed = 7;
  const auto edges = generate_zipf_graph(spec);
  const auto parts = random_edge_partition(edges, m, spec.seed);

  using SeqReal = BspEngine<real_t>;
  using ParReal = ParallelBspEngine<real_t>;
  SeqReal seq_engine(m);
  DistributedPageRank<SeqReal> seq_pr(&seq_engine, topo, parts,
                                      spec.num_vertices);
  ParReal par_engine(m, 4);
  DistributedPageRank<ParReal> par_pr(&par_engine, topo, parts,
                                      spec.num_vertices);

  const auto seq_result = seq_pr.run({.damping = 0.85, .iterations = 6});
  const auto par_result = par_pr.run({.damping = 0.85, .iterations = 6});
  ASSERT_EQ(seq_result.iterations.size(), par_result.iterations.size());
  for (rank_t r = 0; r < m; ++r) {
    const auto seq_vals = seq_pr.machine_values(r);
    const auto par_vals = par_pr.machine_values(r);
    ASSERT_EQ(seq_vals.size(), par_vals.size()) << "machine " << r;
    for (std::size_t p = 0; p < seq_vals.size(); ++p) {
      EXPECT_EQ(seq_vals[p], par_vals[p]) << "machine " << r << " pos " << p;
    }
  }
}

TEST(ParallelParity, SgdLossTrajectoryIsBitIdentical) {
  const Topology topo({2, 2});
  using SeqReal = BspEngine<real_t>;
  using ParReal = ParallelBspEngine<real_t>;

  DistributedSgd<SeqReal>::Options seq_options;
  seq_options.num_features = 1 << 10;
  seq_options.samples_per_batch = 128;
  seq_options.features_per_sample = 8;
  seq_options.alpha = 1.1;
  seq_options.learning_rate = 0.3;
  seq_options.steps = 8;
  seq_options.seed = 61;
  DistributedSgd<ParReal>::Options par_options;
  par_options.num_features = seq_options.num_features;
  par_options.samples_per_batch = seq_options.samples_per_batch;
  par_options.features_per_sample = seq_options.features_per_sample;
  par_options.alpha = seq_options.alpha;
  par_options.learning_rate = seq_options.learning_rate;
  par_options.steps = seq_options.steps;
  par_options.seed = seq_options.seed;

  SeqReal seq_engine(4);
  DistributedSgd<SeqReal> seq_sgd(&seq_engine, topo, seq_options);
  ParReal par_engine(4, 4);
  DistributedSgd<ParReal> par_sgd(&par_engine, topo, par_options);

  const auto seq_stats = seq_sgd.run();
  const auto par_stats = par_sgd.run();
  ASSERT_EQ(seq_stats.size(), par_stats.size());
  for (std::size_t s = 0; s < seq_stats.size(); ++s) {
    EXPECT_EQ(seq_stats[s].loss, par_stats[s].loss) << "step " << s;
  }
}

}  // namespace
}  // namespace kylix
