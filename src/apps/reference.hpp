// Single-node reference implementations of the distributed apps.
//
// These compute the same quantities as the distributed versions directly on
// the full edge list, and serve as the correctness oracle in tests and the
// sanity baseline in examples.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sparse/csr.hpp"

namespace kylix {

/// Power iteration v' = (1-damping)/n + damping * X v where X is the
/// column-(out-degree)-normalized adjacency matrix; identical formula to
/// apps/pagerank.hpp. Returns the rank vector after `iterations`.
[[nodiscard]] std::vector<double> reference_pagerank(
    std::span<const Edge> edges, std::uint64_t num_vertices,
    std::uint32_t iterations, double damping = 0.85);

/// Connected-component labels (min vertex id per component), treating edges
/// as undirected. labels[v] == v for isolated/absent vertices.
[[nodiscard]] std::vector<std::uint64_t> reference_components(
    std::span<const Edge> edges, std::uint64_t num_vertices);

}  // namespace kylix
