// SparseAllreduce — the public orchestration API (§III).
//
// Drives a vector of KylixNodes through the configuration and reduction
// rounds on any engine satisfying the comm/bsp.hpp concept. Supports the two
// usage patterns from the paper:
//
//   * configure() once, reduce() many times — graph algorithms whose in/out
//     vertex sets are fixed across iterations (PageRank, §III).
//   * reduce_with_config() — minibatch workloads whose sets change every
//     step; configuration and reduction share combined messages, saving a
//     full downward pass.
//
// Modeled compute (tree merges, scatter-adds, gathers) is charged to the
// engine per round when a ComputeModel is supplied, so timing reports
// include local work, not just wire time.
#pragma once

#include <utility>
#include <vector>

#include "cluster/netmodel.hpp"
#include "core/node.hpp"
#include "core/topology.hpp"

namespace kylix {

template <typename V, typename Op = OpSum, typename Engine = void>
class SparseAllreduce {
 public:
  /// `engine` must outlive the allreduce; its rank count must match the
  /// topology. `compute` is optional (no compute charging when null).
  SparseAllreduce(Engine* engine, Topology topology,
                  const ComputeModel* compute = nullptr)
      : engine_(engine), topo_(std::move(topology)), compute_(compute) {
    KYLIX_CHECK(engine_ != nullptr);
    KYLIX_CHECK_MSG(engine_->num_ranks() == topo_.num_machines(),
                    "engine/topology machine count mismatch");
  }

  [[nodiscard]] const Topology& topology() const { return topo_; }

  /// Step 1, separate form: exchange and union index sets. `in_sets[r]` /
  /// `out_sets[r]` are machine r's requested / contributed key sets.
  void configure(std::vector<KeySet> in_sets, std::vector<KeySet> out_sets) {
    build_nodes(std::move(in_sets), std::move(out_sets));
    for (std::uint16_t layer = 1; layer <= topo_.num_layers(); ++layer) {
      run_round(Phase::kConfig, layer, &Node::config_produce,
                &Node::config_consume);
    }
    finish_configure();
  }

  /// Step 2: push contributions down and pull requested values back up.
  /// `out_values[r]` aligns with the key order of machine r's out set;
  /// the result[r] aligns with the key order of machine r's in set.
  /// Reusable: call any number of times after one configure().
  [[nodiscard]] std::vector<std::vector<V>> reduce(
      std::vector<std::vector<V>> out_values) {
    KYLIX_CHECK_MSG(!nodes_.empty() && nodes_.front().configured(),
                    "reduce() before configure()");
    load_values(std::move(out_values));
    for (std::uint16_t layer = 1; layer <= topo_.num_layers(); ++layer) {
      run_round(Phase::kReduceDown, layer, &Node::down_produce,
                &Node::down_consume);
    }
    return run_up_pass();
  }

  /// Combined configuration + reduction (minibatch mode): config messages
  /// carry values, so the separate downward value pass disappears.
  [[nodiscard]] std::vector<std::vector<V>> reduce_with_config(
      std::vector<KeySet> in_sets, std::vector<KeySet> out_sets,
      std::vector<std::vector<V>> out_values) {
    build_nodes(std::move(in_sets), std::move(out_sets));
    load_values(std::move(out_values));
    for (Node& node : nodes_) node.set_combined(true);
    for (std::uint16_t layer = 1; layer <= topo_.num_layers(); ++layer) {
      run_round(Phase::kConfig, layer, &Node::config_produce,
                &Node::config_consume);
    }
    for (Node& node : nodes_) node.set_combined(false);
    finish_configure();
    return run_up_pass();
  }

  /// Machine r's node, for tests and volume introspection (Fig. 5 reads the
  /// per-layer set sizes off these).
  [[nodiscard]] const KylixNode<V, Op>& node(rank_t rank) const {
    return nodes_[rank];
  }

  /// Mean out-set size over alive machines at node layers 0..l: the
  /// measured per-node elements P_i entering communication layer i is
  /// entry i-1, and the last entry is the fully reduced bottom. This is the
  /// measured column of the run report's D_i / P_i comparison (src/obs).
  [[nodiscard]] std::vector<double> measured_layer_elements() const {
    KYLIX_CHECK_MSG(!nodes_.empty(), "no configured nodes to measure");
    std::vector<double> mean(topo_.num_layers() + 1, 0.0);
    rank_t alive = 0;
    for (const Node& node : nodes_) {
      if (engine_->is_dead(node.rank())) continue;
      ++alive;
      for (std::uint16_t i = 0; i <= topo_.num_layers(); ++i) {
        mean[i] += static_cast<double>(node.out_set(i).size());
      }
    }
    if (alive > 0) {
      for (double& v : mean) v /= static_cast<double>(alive);
    }
    return mean;
  }

 private:
  using Node = KylixNode<V, Op>;

  void build_nodes(std::vector<KeySet> in_sets, std::vector<KeySet> out_sets) {
    const rank_t m = topo_.num_machines();
    KYLIX_CHECK(in_sets.size() == m && out_sets.size() == m);
    // Nodes are rebuilt per configure/reduce_with_config call, but their
    // working storage persists here, so repeated minibatch steps reuse
    // warmed buffers instead of re-allocating every letter and union.
    nodes_.clear();
    if (scratch_.size() < m) scratch_.resize(m);
    nodes_.reserve(m);
    for (rank_t r = 0; r < m; ++r) {
      nodes_.emplace_back(&topo_, r, std::move(in_sets[r]),
                          std::move(out_sets[r]), &scratch_[r]);
    }
  }

  void load_values(std::vector<std::vector<V>> out_values) {
    KYLIX_CHECK(out_values.size() == nodes_.size());
    for (rank_t r = 0; r < nodes_.size(); ++r) {
      nodes_[r].begin_reduce(std::move(out_values[r]));
    }
  }

  void finish_configure() {
    for (Node& node : nodes_) {
      if (!engine_->is_dead(node.rank())) node.finish_configure();
    }
  }

  std::vector<std::vector<V>> run_up_pass() {
    const std::uint16_t l = topo_.num_layers();
    for (Node& node : nodes_) {
      if (engine_->is_dead(node.rank())) continue;
      node.begin_up();
      charge(Phase::kReduceDown, l, node);
    }
    for (std::uint16_t layer = l; layer >= 1; --layer) {
      run_round(Phase::kReduceUp, layer, &Node::up_produce,
                &Node::up_consume);
    }
    std::vector<std::vector<V>> results(nodes_.size());
    for (rank_t r = 0; r < nodes_.size(); ++r) {
      if (!engine_->is_dead(r)) results[r] = nodes_[r].take_result();
    }
    return results;
  }

  template <typename ProduceFn, typename ConsumeFn>
  void run_round(Phase phase, std::uint16_t layer, ProduceFn produce,
                 ConsumeFn consume) {
    engine_->round(
        phase, layer,
        // Reference returns: produce hands out the node's reusable letter
        // shells; expected hands out the cached group (no copies per round).
        [&](rank_t r) -> std::vector<Letter<V>>& {
          return (nodes_[r].*produce)(layer);
        },
        [&](rank_t r) -> const std::vector<rank_t>& {
          return nodes_[r].expected(layer);
        },
        [&](rank_t r, std::vector<Letter<V>>&& inbox) {
          (nodes_[r].*consume)(layer, std::move(inbox));
          charge(phase, layer, nodes_[r]);
        });
  }

  void charge(Phase phase, std::uint16_t layer, Node& node) {
    const NodeWork work = node.take_work();
    if (compute_ == nullptr || layer == 0) return;
    const double seconds =
        compute_->merge_time(work.merge_elements, work.merge_ways) +
        compute_->combine_time(work.combine_elements) +
        compute_->gather_time(work.gather_elements);
    engine_->charge_compute(phase, layer, node.rank(), seconds);
  }

  Engine* engine_;
  Topology topo_;
  const ComputeModel* compute_;
  std::vector<Node> nodes_;
  std::vector<NodeScratch<V>> scratch_;  ///< per-rank, survives build_nodes
};

}  // namespace kylix
