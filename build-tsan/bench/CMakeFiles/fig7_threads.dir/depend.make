# Empty dependencies file for fig7_threads.
# This may be replaced when dependencies are built.
