// Whole-pipeline integration tests: generate a paper-like workload, run the
// §IV design workflow, execute the allreduce on the simulated cluster, and
// check the paper's qualitative claims end to end.
#include <gtest/gtest.h>

#include <numeric>

#include "kylix.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

struct Workbench {
  GraphSpec spec;
  std::vector<Edge> edges;
  std::vector<std::vector<Edge>> parts;
  std::vector<KeySet> in_sets;
  std::vector<KeySet> out_sets;
  std::vector<std::vector<real_t>> values;
};

Workbench make_workbench(rank_t m, std::uint64_t vertices, double density) {
  Workbench w;
  w.spec.num_vertices = vertices;
  w.spec.alpha_in = 1.1;
  w.spec.alpha_out = 1.2;
  w.spec.num_edges =
      edges_for_partition_density(vertices, w.spec.alpha_in, m, density);
  w.spec.seed = 1234;
  w.edges = generate_zipf_graph(w.spec);
  w.parts = random_edge_partition(w.edges, m, 4321);
  for (const auto& part : w.parts) {
    const LocalGraph g{std::span<const Edge>(part)};
    UnionResult u = merge_union(g.sources().keys(), g.destinations().keys());
    w.in_sets.push_back(g.sources());
    w.out_sets.push_back(KeySet::from_sorted_keys(std::move(u.keys)));
    std::vector<real_t> values(w.out_sets.back().size());
    for (std::size_t p = 0; p < values.size(); ++p) {
      values[p] = static_cast<real_t>((p % 7) + 1);
    }
    w.values.push_back(std::move(values));
  }
  return w;
}

TEST(EndToEnd, CommunicationVolumeHasTheKylixShape) {
  // Fig. 5's qualitative claim: per-layer volume decreases going down the
  // scatter-reduce on power-law data.
  const rank_t m = 16;
  const Workbench w = make_workbench(m, 1 << 14, 0.2);
  const Topology topo({4, 2, 2});
  Trace trace;
  BspEngine<real_t> engine(m, nullptr, &trace);
  SparseAllreduce<real_t, OpSum, BspEngine<real_t>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  (void)allreduce.reduce(w.values);
  const auto volumes = trace.bytes_by_layer(Phase::kReduceDown, 3);
  EXPECT_GT(volumes[0], volumes[1]);
  EXPECT_GT(volumes[1], volumes[2]);
  // The nested return pass mirrors the shape upward.
  const auto up = trace.bytes_by_layer(Phase::kReduceUp, 3);
  EXPECT_GT(up[0], up[2]);
}

TEST(EndToEnd, TotalVolumeIsASmallConstantTimesTheTopLayer) {
  // "total communication across all layers a small constant larger than
  // the top layer, which is close to optimal" (abstract).
  const rank_t m = 16;
  const Workbench w = make_workbench(m, 1 << 14, 0.2);
  Trace trace;
  BspEngine<real_t> engine(m, nullptr, &trace);
  SparseAllreduce<real_t, OpSum, BspEngine<real_t>> allreduce(
      &engine, Topology({4, 2, 2}));
  allreduce.configure(w.in_sets, w.out_sets);
  (void)allreduce.reduce(w.values);
  const auto volumes = trace.bytes_by_layer(Phase::kReduceDown, 3);
  const double total = static_cast<double>(
      std::accumulate(volumes.begin(), volumes.end(), std::uint64_t{0}));
  EXPECT_LT(total, 3.0 * static_cast<double>(volumes[0]));
}

TEST(EndToEnd, TunedButterflyBeatsDirectAndBinaryOnModeledTime) {
  // Fig. 6's qualitative claim, on a scaled testbed: the autotuned
  // heterogeneous butterfly is faster than both degenerate schedules.
  const rank_t m = 16;
  const Workbench w = make_workbench(m, 1 << 15, 0.2);

  NetworkModel net = NetworkModel::ec2_like();
  net.set_message_overhead(2e-4);  // scaled to the smaller dataset
  const ComputeModel compute;

  const auto run_with = [&](const Topology& topo) {
    TimingAccumulator timing(m, net, compute, 16);
    BspEngine<real_t> engine(m, nullptr, nullptr, &timing);
    SparseAllreduce<real_t, OpSum, BspEngine<real_t>> allreduce(
        &engine, topo, &compute);
    allreduce.configure(w.in_sets, w.out_sets);
    (void)allreduce.reduce(w.values);
    return timing.times().total();
  };

  AutotuneInput input;
  input.num_features = w.spec.num_vertices;
  input.num_machines = m;
  input.alpha = w.spec.alpha_in;
  input.partition_density =
      measure_density(std::span<const KeySet>(w.out_sets),
                      w.spec.num_vertices);
  input.network = net;
  const Topology tuned = autotune_topology(input);

  const double tuned_time = run_with(tuned);
  const double direct_time = run_with(Topology::direct(m));
  const double binary_time = run_with(Topology::binary(m));
  EXPECT_LT(tuned_time, direct_time);
  EXPECT_LE(tuned_time, binary_time * 1.05);
}

TEST(EndToEnd, ThreadsImproveModeledRuntimeWithDiminishingReturns) {
  // Fig. 7's shape: strong gains from 1 to ~4 threads, marginal beyond 16.
  const rank_t m = 16;
  const Workbench w = make_workbench(m, 1 << 14, 0.2);
  NetworkModel net = NetworkModel::ec2_like();
  const ComputeModel compute;
  const auto run_with_threads = [&](std::uint32_t threads) {
    TimingAccumulator timing(m, net, compute, threads);
    BspEngine<real_t> engine(m, nullptr, nullptr, &timing);
    SparseAllreduce<real_t, OpSum, BspEngine<real_t>> allreduce(
        &engine, Topology({4, 2, 2}), &compute);
    allreduce.configure(w.in_sets, w.out_sets);
    (void)allreduce.reduce(w.values);
    return timing.times().total();
  };
  const double t1 = run_with_threads(1);
  const double t4 = run_with_threads(4);
  const double t16 = run_with_threads(16);
  const double t32 = run_with_threads(32);
  EXPECT_LT(t4, t1);
  EXPECT_LE(t16, t4);
  EXPECT_NEAR(t32, t16, t16 * 0.05);  // saturation beyond 16 threads
}

TEST(EndToEnd, ReplicationCostIsModestAndFailureCountIndependent) {
  // Table I's shape: replication adds a modest constant factor, and the
  // runtime does not depend on how many (surviving-group) nodes died.
  const rank_t logical = 16;
  const Workbench w = make_workbench(logical, 1 << 14, 0.2);
  const Topology topo({4, 2, 2});
  NetworkModel net = NetworkModel::ec2_like();
  net.set_message_overhead(2e-4);
  const ComputeModel compute;

  const auto replicated_time = [&](rank_t failures) {
    FailureModel failure_model(logical * 2);
    for (rank_t f = 0; f < failures; ++f) {
      failure_model.kill(f * 2 + (f % 2) * logical);
    }
    TimingAccumulator timing(logical * 2, net, compute, 16);
    ReplicatedBsp<real_t> engine(logical, 2, &failure_model, nullptr,
                                 &timing);
    SparseAllreduce<real_t, OpSum, ReplicatedBsp<real_t>> allreduce(
        &engine, topo, &compute);
    allreduce.configure(w.in_sets, w.out_sets);
    const auto results = allreduce.reduce(w.values);
    testing::Workload<real_t> check{w.in_sets, w.out_sets, w.values};
    testing::expect_matches_oracle<real_t>(check, results);
    return timing.times().total();
  };

  TimingAccumulator unreplicated_timing(logical, net, compute, 16);
  double unreplicated = 0;
  {
    BspEngine<real_t> engine(logical, nullptr, nullptr,
                             &unreplicated_timing);
    SparseAllreduce<real_t, OpSum, BspEngine<real_t>> allreduce(
        &engine, topo, &compute);
    allreduce.configure(w.in_sets, w.out_sets);
    (void)allreduce.reduce(w.values);
    unreplicated = unreplicated_timing.times().total();
  }

  const double with_0 = replicated_time(0);
  const double with_3 = replicated_time(3);
  EXPECT_GT(with_0, unreplicated);        // replication costs something
  EXPECT_LT(with_0, unreplicated * 3.0);  // ...but stays modest
  EXPECT_NEAR(with_3, with_0, with_0 * 0.10);  // failures do not matter
}

}  // namespace
}  // namespace kylix
