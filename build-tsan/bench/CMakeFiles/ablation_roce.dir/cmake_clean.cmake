file(REMOVE_RECURSE
  "CMakeFiles/ablation_roce.dir/ablation_roce.cpp.o"
  "CMakeFiles/ablation_roce.dir/ablation_roce.cpp.o.d"
  "ablation_roce"
  "ablation_roce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_roce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
