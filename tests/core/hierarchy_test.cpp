// Two-tier hierarchy properties (DESIGN §13).
//
// The theorem under test: a hierarchical topology {d_1 x ... x d_l | c
// cores} over h*c ranks is *bit-identical* per key to the flat topology
// {c, d_1, ..., d_l} over the same ranks, because the per-key accumulation
// expression trees coincide — the leader folds its host's members in
// ascending rank order exactly as a flat layer-1 group merge would, and
// the up pass is pure gathers. The suite checks that identity on all four
// engines (float, double, strided), the c == 1 degeneration (results,
// traces, and fingerprint all equal the flat run), PlanCache coexistence
// of hierarchical and flat plans over the same key sets, the intra/inter
// timing split, and canonical-leader degraded semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "cluster/failure.hpp"
#include "common/check.hpp"
#include "cluster/netmodel.hpp"
#include "cluster/timing.hpp"
#include "cluster/trace.hpp"
#include "comm/bsp.hpp"
#include "comm/parallel.hpp"
#include "comm/replicated.hpp"
#include "comm/threaded.hpp"
#include "core/allreduce.hpp"
#include "core/plan_cache.hpp"
#include "core/topology.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

using testing::random_workload;
using testing::Workload;

/// Scale the integer workload values into non-representable float
/// territory so that any reordering of the accumulation tree would change
/// the bits — the bit-identity checks then have teeth.
template <typename V>
void roughen(Workload<V>& w) {
  for (auto& values : w.out_values) {
    for (auto& v : values) v = v * static_cast<V>(0.001) + static_cast<V>(0.1);
  }
}

// ---- The host model itself ----

TEST(HierarchyTopology, HostModelAccessors) {
  const Topology topo({4, 2}, 4);
  EXPECT_EQ(topo.num_hosts(), 8u);
  EXPECT_EQ(topo.num_machines(), 32u);
  EXPECT_EQ(topo.cores_per_machine(), 4u);
  EXPECT_TRUE(topo.hierarchical());
  EXPECT_EQ(topo.host_of(13), 3u);
  EXPECT_EQ(topo.core_of(13), 1u);
  EXPECT_EQ(topo.leader_rank(3), 12u);
  EXPECT_TRUE(topo.is_leader(12));
  EXPECT_FALSE(topo.is_leader(13));
  EXPECT_EQ(topo.to_string(), "4 x 2 | 4 cores");

  const Topology flat({4, 2});
  EXPECT_FALSE(flat.hierarchical());
  EXPECT_EQ(flat.cores_per_machine(), 1u);
  EXPECT_EQ(flat.num_hosts(), flat.num_machines());
  EXPECT_EQ(flat.to_string(), "4 x 2");
  EXPECT_FALSE(Topology({4, 2}, 1).hierarchical());
}

TEST(HierarchyTopology, GroupReturnsCanonicalLeadersSharedByAllCores) {
  const Topology topo({4, 2}, 4);
  for (std::uint16_t layer = 1; layer <= topo.num_layers(); ++layer) {
    for (rank_t r = 0; r < topo.num_machines(); ++r) {
      const auto group = topo.group(layer, r);
      ASSERT_EQ(group.size(), topo.degree(layer));
      // Every member is a canonical leader; the rank's own host leader sits
      // at the rank's digit; every core of a host sees the same group.
      for (const rank_t g : group) EXPECT_TRUE(topo.is_leader(g));
      EXPECT_EQ(group[topo.digit(layer, r)],
                topo.leader_rank(topo.host_of(r)));
      EXPECT_EQ(group, topo.group(layer, topo.leader_rank(topo.host_of(r))));
      EXPECT_EQ(topo.digit(layer, r),
                topo.digit(layer, topo.leader_rank(topo.host_of(r))));
    }
  }
}

TEST(HierarchyTopology, CoresOneDegeneratesToFlatAccessors) {
  const Topology flat({4, 2});
  const Topology one({4, 2}, 1);
  ASSERT_EQ(one.num_machines(), flat.num_machines());
  for (rank_t r = 0; r < flat.num_machines(); ++r) {
    EXPECT_EQ(one.host_of(r), r);
    EXPECT_EQ(one.core_of(r), 0u);
    EXPECT_TRUE(one.is_leader(r));
    for (std::uint16_t layer = 1; layer <= flat.num_layers(); ++layer) {
      EXPECT_EQ(one.group(layer, r), flat.group(layer, r));
      EXPECT_EQ(one.digit(layer, r), flat.digit(layer, r));
    }
  }
}

// ---- c == 1: bit-identical to flat, fingerprint unchanged ----

TEST(HierarchyDegenerate, CoresOneMatchesFlatResultsTraceAndFingerprint) {
  const Topology flat({4, 2});
  const Topology one({4, 2}, 1);
  const rank_t m = flat.num_machines();
  auto w = random_workload<float>(m, 150, 0.2, 0.4, 71);
  roughen(w);

  Trace flat_trace;
  BspEngine<float> flat_engine(m, nullptr, &flat_trace);
  SparseAllreduce<float, OpSum, BspEngine<float>> flat_ar(&flat_engine, flat);
  const auto flat_plan = flat_ar.compile(w.in_sets, w.out_sets);
  const auto flat_results = flat_ar.reduce(w.out_values);

  Trace one_trace;
  BspEngine<float> one_engine(m, nullptr, &one_trace);
  SparseAllreduce<float, OpSum, BspEngine<float>> one_ar(&one_engine, one);
  const auto one_plan = one_ar.compile(w.in_sets, w.out_sets);
  const auto one_results = one_ar.reduce(w.out_values);

  EXPECT_EQ(one_results, flat_results);
  EXPECT_EQ(one_plan->fingerprint(), flat_plan->fingerprint());
  EXPECT_FALSE(one_plan->hierarchical());
  // Identical wire traffic, message for message.
  ASSERT_EQ(one_trace.num_messages(), flat_trace.num_messages());
  EXPECT_EQ(one_trace.total_bytes(), flat_trace.total_bytes());
  EXPECT_EQ(one_trace.bytes_by_layer_all_phases(flat.num_layers()),
            flat_trace.bytes_by_layer_all_phases(flat.num_layers()));
  // Both runs were exact.
  EXPECT_FALSE(flat_ar.degraded_report().degraded);
  EXPECT_FALSE(one_ar.degraded_report().degraded);
}

TEST(HierarchyDegenerate, CoresOneHitsTheFlatPlanInTheCache) {
  const Topology flat({4, 2});
  const rank_t m = flat.num_machines();
  const auto w = random_workload<float>(m, 120, 0.2, 0.4, 72);

  PlanCache cache(8);
  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> flat_ar(&engine, flat);
  EXPECT_FALSE(flat_ar.configure_cached(cache, w.in_sets, w.out_sets));

  // cores_per_machine == 1 does not salt the fingerprint: the degenerate
  // hierarchical topology is served the very plan the flat run compiled.
  SparseAllreduce<float, OpSum, BspEngine<float>> one_ar(
      &engine, Topology({4, 2}, 1));
  EXPECT_TRUE(one_ar.configure_cached(cache, w.in_sets, w.out_sets));
  EXPECT_EQ(one_ar.plan().get(), flat_ar.plan().get());
  EXPECT_EQ(one_ar.reduce(w.out_values), flat_ar.reduce(w.out_values));
}

// ---- c > 1: bit-identical to the flat-expanded topology ----

/// Compile + reduce `w` on `engine` over `topo`, returning the results.
template <typename V, typename Engine>
std::vector<std::vector<V>> run_once(Engine& engine, const Topology& topo,
                                     const Workload<V>& w) {
  SparseAllreduce<V, OpSum, Engine> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  auto results = allreduce.reduce(w.out_values);
  EXPECT_FALSE(allreduce.degraded_report().degraded);
  return results;
}

TEST(HierarchyBitIdentity, MatchesFlatExpandedOnAllFourEngines) {
  // {2 x 2 | 2 cores} over 8 ranks vs flat {2, 2, 2}: the intra stage must
  // reproduce flat layer 1 bit for bit, non-associative floats included.
  const Topology hier({2, 2}, 2);
  const Topology flat({2, 2, 2});
  const rank_t m = hier.num_machines();
  ASSERT_EQ(m, flat.num_machines());
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    auto w = random_workload<float>(m, 120, 0.25, 0.4, 500 + seed);
    roughen(w);
    {
      BspEngine<float> fe(m);
      BspEngine<float> he(m);
      EXPECT_EQ(run_once(he, hier, w), run_once(fe, flat, w));
    }
    {
      ParallelBspEngine<float> fe(m);
      ParallelBspEngine<float> he(m);
      EXPECT_EQ(run_once(he, hier, w), run_once(fe, flat, w));
    }
    {
      ThreadedBsp<float> fe(m);
      ThreadedBsp<float> he(m);
      EXPECT_EQ(run_once(he, hier, w), run_once(fe, flat, w));
    }
    {
      ReplicatedBsp<float> fe(m, 2);
      ReplicatedBsp<float> he(m, 2);
      EXPECT_EQ(run_once(he, hier, w), run_once(fe, flat, w));
    }
  }
}

TEST(HierarchyBitIdentity, WideHostsAndHeterogeneousInterLayers) {
  // {4 x 2 | 4 cores} over 32 ranks vs flat {4, 4, 2}: wide hosts, and the
  // exact-integer workload also passes the brute-force oracle.
  const Topology hier({4, 2}, 4);
  const Topology flat({4, 4, 2});
  const rank_t m = hier.num_machines();
  ASSERT_EQ(m, flat.num_machines());
  const auto w = random_workload<float>(m, 200, 0.15, 0.3, 600);
  BspEngine<float> fe(m);
  BspEngine<float> he(m);
  const auto flat_results = run_once(fe, flat, w);
  const auto hier_results = run_once(he, hier, w);
  EXPECT_EQ(hier_results, flat_results);
  testing::expect_matches_oracle<float>(w, hier_results);
}

TEST(HierarchyBitIdentity, DoubleStridedReplayMatchesFlatExpanded) {
  const Topology hier({2, 2}, 2);
  const Topology flat({2, 2, 2});
  const rank_t m = hier.num_machines();
  const std::uint32_t stride = 3;
  auto w = random_workload<double>(m, 100, 0.25, 0.4, 700);
  roughen(w);
  // Interleave `stride` perturbed copies of each payload key-major.
  std::vector<std::vector<double>> strided(m);
  for (rank_t r = 0; r < m; ++r) {
    for (const double v : w.out_values[r]) {
      for (std::uint32_t s = 0; s < stride; ++s) {
        strided[r].push_back(v + 0.013 * s);
      }
    }
  }
  BspEngine<double> fe(m);
  SparseAllreduce<double, OpSum, BspEngine<double>> flat_ar(&fe, flat);
  flat_ar.configure(w.in_sets, w.out_sets);
  BspEngine<double> he(m);
  SparseAllreduce<double, OpSum, BspEngine<double>> hier_ar(&he, hier);
  hier_ar.configure(w.in_sets, w.out_sets);
  EXPECT_EQ(hier_ar.reduce_strided(strided, stride),
            flat_ar.reduce_strided(strided, stride));
}

TEST(HierarchyBitIdentity, StreamedReplayMatchesLetterAtOnce) {
  const Topology hier({2, 2}, 2);
  const rank_t m = hier.num_machines();
  auto w = random_workload<float>(m, 150, 0.25, 0.4, 800);
  roughen(w);
  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, hier);
  allreduce.configure(w.in_sets, w.out_sets);
  const auto whole = allreduce.reduce(w.out_values);
  allreduce.set_chunk_bytes(64);
  allreduce.set_streaming(true);
  EXPECT_EQ(allreduce.reduce(w.out_values), whole);
}

// ---- Fingerprint salting and plan-cache coexistence ----

TEST(HierarchyPlanCache, HierarchicalAndFlatPlansCoexist) {
  const Topology hier({2, 2}, 2);
  const Topology flat({2, 2, 2});
  const rank_t m = hier.num_machines();
  const auto w = random_workload<float>(m, 120, 0.2, 0.4, 900);

  PlanCache cache(8);
  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> flat_ar(&engine, flat);
  EXPECT_FALSE(flat_ar.configure_cached(cache, w.in_sets, w.out_sets));
  SparseAllreduce<float, OpSum, BspEngine<float>> hier_ar(&engine, hier);
  EXPECT_FALSE(hier_ar.configure_cached(cache, w.in_sets, w.out_sets));

  // Same key sets, distinct fingerprints: both plans live in the cache.
  ASSERT_NE(flat_ar.plan(), nullptr);
  ASSERT_NE(hier_ar.plan(), nullptr);
  EXPECT_NE(hier_ar.plan()->fingerprint(), flat_ar.plan()->fingerprint());
  EXPECT_TRUE(hier_ar.plan()->hierarchical());
  EXPECT_NE(cache.find(flat_ar.plan()->fingerprint()), nullptr);
  EXPECT_NE(cache.find(hier_ar.plan()->fingerprint()), nullptr);

  // A second hierarchical allreduce over the same sets is a cache hit and
  // replays to the same bits.
  SparseAllreduce<float, OpSum, BspEngine<float>> again(&engine, hier);
  EXPECT_TRUE(again.configure_cached(cache, w.in_sets, w.out_sets));
  EXPECT_EQ(again.plan().get(), hier_ar.plan().get());
  EXPECT_EQ(again.reduce(w.out_values), hier_ar.reduce(w.out_values));
}

// ---- The intra/inter timing split ----

TEST(HierarchyTiming, IntraTierIsChargedOnHierarchicalRunsOnly) {
  const Topology hier({2, 2}, 2);
  const Topology flat({2, 2, 2});
  const rank_t m = hier.num_machines();
  const auto w = random_workload<float>(m, 150, 0.25, 0.4, 1000);
  const NetworkModel net;
  const ComputeModel compute;

  TimingAccumulator flat_timing(m, net, compute);
  BspEngine<float> fe(m, nullptr, nullptr, &flat_timing);
  SparseAllreduce<float, OpSum, BspEngine<float>> flat_ar(&fe, flat,
                                                          &compute);
  flat_ar.set_network(&net);
  flat_ar.configure(w.in_sets, w.out_sets);
  (void)flat_ar.reduce(w.out_values);

  TimingAccumulator hier_timing(m, net, compute);
  BspEngine<float> he(m, nullptr, nullptr, &hier_timing);
  SparseAllreduce<float, OpSum, BspEngine<float>> hier_ar(&he, hier,
                                                          &compute);
  hier_ar.set_network(&net);
  hier_ar.configure(w.in_sets, w.out_sets);
  (void)hier_ar.reduce(w.out_values);

  const auto flat_times = flat_timing.times();
  const auto hier_times = hier_timing.times();
  EXPECT_EQ(flat_times.intra(), 0.0);
  EXPECT_GT(hier_times.intra_config, 0.0);
  EXPECT_GT(hier_times.intra_down, 0.0);
  EXPECT_GT(hier_times.intra_up, 0.0);
  // The split is additive: reduce() includes both tiers.
  EXPECT_DOUBLE_EQ(hier_times.reduce(), hier_times.reduce_down +
                                            hier_times.reduce_up +
                                            hier_times.intra_down +
                                            hier_times.intra_up);
  // The inter-node tier shrank (2 layers over hosts vs 3 flat rounds) while
  // the intra tier picked up the difference.
  EXPECT_LT(hier_times.reduce_down + hier_times.reduce_up,
            flat_times.reduce_down + flat_times.reduce_up);
}

// ---- Canonical-leader degraded semantics ----

TEST(HierarchyDegraded, DeadCanonicalLeaderSitsTheHostOut) {
  // Host 1's canonical leader (rank 2) is dead at compile time: the host
  // contributes nothing and its union never enters the inter-node exchange,
  // the surviving member completes with every requested key at identity,
  // and the dead leader is also a dead *butterfly node* — survivors read
  // subset sums of the surviving hosts' contributions (keys routed through
  // the dead node come back partial, never inflated).
  const Topology hier({2, 2}, 2);
  const rank_t m = hier.num_machines();
  const auto w = random_workload<float>(m, 120, 0.25, 0.4, 1100);
  const rank_t leader = hier.leader_rank(1);
  const rank_t member = leader + 1;

  FailureModel failures(m);
  failures.kill(leader);
  BspEngine<float> engine(m, &failures);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, hier);
  allreduce.configure(w.in_sets, w.out_sets);
  const auto results = allreduce.reduce(w.out_values);

  ASSERT_EQ(results.size(), w.in_sets.size());
  EXPECT_TRUE(results[leader].empty());
  // The orphaned member is alive but leaderless: full-size result, all
  // identity.
  ASSERT_EQ(results[member].size(), w.in_sets[member].size());
  for (std::size_t p = 0; p < results[member].size(); ++p) {
    EXPECT_EQ(results[member][p], 0.0f) << "member position " << p;
  }
  // Survivors: the workload's values are non-negative, so every returned
  // value is bounded by the exact sum over the surviving hosts (host 1's
  // inputs were excluded at compile; drops only shrink subset sums).
  std::map<key_t, float> totals;
  for (rank_t r = 0; r < m; ++r) {
    if (hier.host_of(r) == 1) continue;
    for (std::size_t p = 0; p < w.out_sets[r].size(); ++p) {
      totals[w.out_sets[r][p]] += w.out_values[r][p];
    }
  }
  for (rank_t r = 0; r < m; ++r) {
    if (hier.host_of(r) == 1) continue;
    ASSERT_EQ(results[r].size(), w.in_sets[r].size()) << "rank " << r;
    for (std::size_t p = 0; p < w.in_sets[r].size(); ++p) {
      const auto it = totals.find(w.in_sets[r][p]);
      EXPECT_LE(results[r][p], it == totals.end() ? 0.0f : it->second)
          << "rank " << r << " position " << p;
    }
  }

  // The orphaned member's exclusion is already total: additionally killing
  // it changes nothing for the rest of the cluster.
  FailureModel both_failures(m);
  both_failures.kill(leader);
  both_failures.kill(member);
  BspEngine<float> be(m, &both_failures);
  SparseAllreduce<float, OpSum, BspEngine<float>> both_ar(&be, hier);
  both_ar.configure(w.in_sets, w.out_sets);
  const auto both = both_ar.reduce(w.out_values);
  EXPECT_TRUE(both[member].empty());
  for (rank_t r = 0; r < m; ++r) {
    if (hier.host_of(r) == 1) continue;
    EXPECT_EQ(results[r], both[r]) << "rank " << r;
  }
}

TEST(HierarchyDegraded, DeadMemberAtCompileIsExactOverSurvivors) {
  // A dead non-leader member is a compile-time exclusion from its host's
  // unions: it never routes through the butterfly, so the hierarchical run
  // stays *exact* over the survivors. The flat expansion cannot match that
  // — there the same dead rank is a butterfly node and every key routed
  // through it is lost for its group.
  const Topology hier({2, 2}, 2);
  const Topology flat({2, 2, 2});
  const rank_t m = hier.num_machines();
  const auto w = random_workload<float>(m, 120, 0.25, 0.4, 1200);
  const rank_t victim = 3;  // core 1 of host 1
  ASSERT_FALSE(hier.is_leader(victim));

  FailureModel hier_failures(m);
  hier_failures.kill(victim);
  BspEngine<float> he(m, &hier_failures);
  SparseAllreduce<float, OpSum, BspEngine<float>> hier_ar(&he, hier);
  hier_ar.configure(w.in_sets, w.out_sets);
  const auto hier_results = hier_ar.reduce(w.out_values);

  FailureModel flat_failures(m);
  flat_failures.kill(victim);
  BspEngine<float> fe(m, &flat_failures);
  SparseAllreduce<float, OpSum, BspEngine<float>> flat_ar(&fe, flat);
  flat_ar.configure(w.in_sets, w.out_sets);
  const auto flat_results = flat_ar.reduce(w.out_values);

  EXPECT_TRUE(hier_results[victim].empty());
  // Survivors see the exact sum without the victim's contribution.
  std::map<key_t, float> totals;
  for (rank_t r = 0; r < m; ++r) {
    if (r == victim) continue;
    for (std::size_t p = 0; p < w.out_sets[r].size(); ++p) {
      totals[w.out_sets[r][p]] += w.out_values[r][p];
    }
  }
  std::size_t flat_divergences = 0;
  for (rank_t r = 0; r < m; ++r) {
    if (r == victim) continue;
    ASSERT_EQ(hier_results[r].size(), w.in_sets[r].size());
    for (std::size_t p = 0; p < w.in_sets[r].size(); ++p) {
      const auto it = totals.find(w.in_sets[r][p]);
      const float exact = it == totals.end() ? 0.0f : it->second;
      EXPECT_EQ(hier_results[r][p], exact)
          << "rank " << r << " position " << p;
      flat_divergences += flat_results[r][p] != exact;
    }
  }
  // The flat run really is more degraded on this workload: some keys
  // routed through the dead butterfly node and came back wrong.
  EXPECT_GT(flat_divergences, 0u);
}

// ---- Guard rails ----

TEST(HierarchyGuards, CombinedModeRejectsHierarchicalTopologies) {
  const Topology hier({2, 2}, 2);
  const rank_t m = hier.num_machines();
  const auto w = random_workload<float>(m, 60, 0.25, 0.4, 1300);
  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, hier);
  EXPECT_THROW(
      (void)allreduce.reduce_with_config(w.in_sets, w.out_sets, w.out_values),
      check_error);
}

}  // namespace
}  // namespace kylix
