#include <gtest/gtest.h>

#include "common/check.hpp"

#include "comm/bsp.hpp"
#include "comm/threaded.hpp"
#include "core/allreduce.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

using testing::random_workload;

class ThreadedScheduleTest
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(ThreadedScheduleTest, MatchesTheSequentialEngineBitForBit) {
  const Topology topo(GetParam());
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 150, 0.2, 0.4, 500 + m);

  std::vector<std::vector<float>> sequential;
  {
    BspEngine<float> engine(m);
    SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
    allreduce.configure(w.in_sets, w.out_sets);
    sequential = allreduce.reduce(w.out_values);
  }
  std::vector<std::vector<float>> threaded;
  {
    ThreadedBsp<float> engine(m);
    SparseAllreduce<float, OpSum, ThreadedBsp<float>> allreduce(&engine,
                                                                topo);
    allreduce.configure(w.in_sets, w.out_sets);
    threaded = allreduce.reduce(w.out_values);
  }
  EXPECT_EQ(threaded, sequential);
  testing::expect_matches_oracle<float>(w, threaded);
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, ThreadedScheduleTest,
    ::testing::Values(std::vector<std::uint32_t>{},
                      std::vector<std::uint32_t>{4},
                      std::vector<std::uint32_t>{2, 2},
                      std::vector<std::uint32_t>{4, 2},
                      std::vector<std::uint32_t>{3, 3}));

TEST(ThreadedAllreduce, CombinedModeWorksConcurrently) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 100, 0.3, 0.4, 77);
  ThreadedBsp<float> engine(m);
  SparseAllreduce<float, OpSum, ThreadedBsp<float>> allreduce(&engine, topo);
  const auto results =
      allreduce.reduce_with_config(w.in_sets, w.out_sets, w.out_values);
  testing::expect_matches_oracle<float>(w, results);
}

TEST(ThreadedAllreduce, RepeatedReductionsStayCorrect) {
  const Topology topo({2, 2, 2});
  const rank_t m = topo.num_machines();
  auto w = random_workload<float>(m, 120, 0.25, 0.4, 88);
  ThreadedBsp<float> engine(m);
  SparseAllreduce<float, OpSum, ThreadedBsp<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  for (int round = 0; round < 5; ++round) {
    testing::expect_matches_oracle<float>(w, allreduce.reduce(w.out_values));
  }
}

TEST(ThreadedBspEngine, RecordsTraceLikeSequential) {
  const Topology topo({2, 2});
  const auto w = random_workload<float>(4, 60, 0.3, 0.5, 99);

  Trace seq_trace;
  {
    BspEngine<float> engine(4, nullptr, &seq_trace);
    SparseAllreduce<float, OpSum, BspEngine<float>> ar(&engine, topo);
    ar.configure(w.in_sets, w.out_sets);
    (void)ar.reduce(w.out_values);
  }
  Trace thr_trace;
  {
    ThreadedBsp<float> engine(4, nullptr, &thr_trace);
    SparseAllreduce<float, OpSum, ThreadedBsp<float>> ar(&engine, topo);
    ar.configure(w.in_sets, w.out_sets);
    (void)ar.reduce(w.out_values);
  }
  EXPECT_EQ(thr_trace.num_messages(), seq_trace.num_messages());
  EXPECT_EQ(thr_trace.total_bytes(), seq_trace.total_bytes());
  EXPECT_EQ(thr_trace.bytes_by_layer_all_phases(2),
            seq_trace.bytes_by_layer_all_phases(2));
}

TEST(ThreadedBspEngine, DeadNodesAreSkipped) {
  FailureModel failures(4);
  failures.kill(3);
  ThreadedBsp<float> engine(4, &failures);
  std::vector<int> received(4, 0);
  engine.round(
      Phase::kConfig, 1,
      [&](rank_t r) {
        std::vector<Letter<float>> letters;
        for (rank_t dst = 0; dst < 4; ++dst) {
          Letter<float> letter;
          letter.src = r;
          letter.dst = dst;
          letters.push_back(std::move(letter));
        }
        return letters;
      },
      [&](rank_t) {
        return std::vector<rank_t>{0, 1, 2, 3};
      },
      [&](rank_t r, std::vector<Letter<float>>&& inbox) {
        received[r] = static_cast<int>(inbox.size());
      });
  EXPECT_EQ(received, (std::vector<int>{3, 3, 3, 0}));
}

TEST(ThreadedBspEngine, WorkerExceptionsPropagate) {
  ThreadedBsp<float> engine(2);
  EXPECT_THROW(
      engine.round(
          Phase::kConfig, 1,
          [&](rank_t r) -> std::vector<Letter<float>> {
            if (r == 1) throw check_error("boom");
            return {};
          },
          [&](rank_t) { return std::vector<rank_t>{}; },
          [&](rank_t, std::vector<Letter<float>>&&) {}),
      check_error);
  // The engine stays usable after a worker error.
  engine.round(
      Phase::kConfig, 2, [&](rank_t) { return std::vector<Letter<float>>{}; },
      [&](rank_t) { return std::vector<rank_t>{}; },
      [&](rank_t, std::vector<Letter<float>>&&) {});
}

}  // namespace
}  // namespace kylix
