// Replaying message traces against the cluster cost models.
//
// The engines run the real algorithm bulk-synchronously: each (phase, layer)
// pair is one communication round in which every node sends to its group
// neighbors and waits for theirs. TimingAccumulator reconstructs the wall
// time of each round from the per-node message counts/bytes and modeled
// local compute:
//
//   node_time  = max(send path, recv path) + compute        (full duplex)
//   send path  = send_bytes/B + a * ceil(send_msgs / threads)
//   round time = max over nodes of node_time, + base latency
//
// Threads hide per-message overheads (the §VI-B effect benchmarked in
// Fig. 7) but cannot exceed the NIC's serialization bandwidth; modeled
// compute parallelizes up to ComputeModel::cores.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "cluster/netmodel.hpp"
#include "cluster/trace.hpp"

namespace kylix {

class TimingAccumulator {
 public:
  TimingAccumulator(rank_t num_nodes, NetworkModel net, ComputeModel compute,
                    std::uint32_t threads = 16);

  /// Record one delivered message. Self-messages (src == dst) are local
  /// memory traffic and cost nothing here.
  void on_message(const MsgEvent& event);

  /// Finer-grained charging for the replication layer: every transmitted
  /// copy costs its sender, but a racing receiver only pays for the winning
  /// copy (losers are canceled, §V-B).
  void on_send(Phase phase, std::uint16_t layer, rank_t rank,
               std::uint64_t bytes);
  void on_recv(Phase phase, std::uint16_t layer, rank_t rank,
               std::uint64_t bytes);

  /// Record modeled local compute performed by `rank` within a round.
  void on_compute(Phase phase, std::uint16_t layer, rank_t rank,
                  double seconds);

  /// Record intra-node (shared-memory tier, DESIGN §13) time spent by
  /// `rank` — typically a host leader reducing or scattering peer buffers.
  /// Hosts run concurrently, so the tier's wall time is the max over ranks,
  /// not a message-model round. Thread-safe across distinct ranks (the
  /// parallel engine charges hosts concurrently): per-rank slots are
  /// preallocated and never rehashed.
  void on_intra(Phase phase, rank_t rank, double seconds);

  /// Wall time of one phase's intra-node tier: max over ranks of the
  /// accumulated intra seconds (0 when the tier never ran).
  [[nodiscard]] double intra_time(Phase phase) const;

  /// Wall time of one round (0 if the round never happened).
  [[nodiscard]] double round_time(Phase phase, std::uint16_t layer) const;

  struct PhaseTimes {
    double config = 0;
    double reduce_down = 0;
    double reduce_up = 0;
    double intra_config = 0;  ///< intra-node tier of the config pass
    double intra_down = 0;    ///< leader scatter-reduce from peer buffers
    double intra_up = 0;      ///< member gather from the leader's result
    [[nodiscard]] double intra() const {
      return intra_config + intra_down + intra_up;
    }
    [[nodiscard]] double reduce() const {
      return reduce_down + reduce_up + intra_down + intra_up;
    }
    [[nodiscard]] double total() const {
      return config + intra_config + reduce_down + reduce_up + intra_down +
             intra_up;
    }
  };
  [[nodiscard]] PhaseTimes times() const;

  /// Modeled wall time of the reduce phases if the recorded reduce rounds
  /// ran as a chunk pipeline instead of barriering (DESIGN §9): with R
  /// stages of barriered time T_r (base latency excluded) and k chunks per
  /// letter, stage r forwards each flushed block after T_r/k, so
  ///
  ///   T_stream(k) = sum_r T_r / k + (k-1)/k * max_r T_r + base_latency
  ///
  /// — the first chunk ripples through every stage while the bottleneck
  /// stage spaces the remaining k-1. k = 1 degenerates to the barriered sum
  /// and k -> inf approaches the bottleneck stage alone; per-chunk message
  /// overheads are already inside the recorded T_r, which is what makes the
  /// chunk-size sweep U-shaped (bench/fig2_packet_size). Config rounds are
  /// not pipelined and are excluded.
  [[nodiscard]] double pipelined_reduce_time(
      std::uint32_t chunks_per_letter) const;

  /// Every recorded round with its modeled wall time, in (phase, layer)
  /// order — the run report's per-round timing table.
  struct RoundTime {
    Phase phase = Phase::kConfig;
    std::uint16_t layer = 0;
    double seconds = 0;
  };
  [[nodiscard]] std::vector<RoundTime> per_round_times() const;

  /// Quantile (q in [0, 1]) over the modeled wall times of every recorded
  /// round — p50/p99 of round latency for the run report. Linear
  /// interpolation between order statistics; 0 when no rounds exist.
  [[nodiscard]] double round_time_quantile(double q) const;

  /// Close out one reduce: records times().reduce() minus the previous
  /// mark as the latency of the reduce that just completed. Call once per
  /// allreduce when the accumulator spans multiple reduces.
  void mark_reduce_complete();

  /// Quantile over the per-reduce latencies recorded by
  /// mark_reduce_complete(); 0 when no reduce has been marked.
  [[nodiscard]] double reduce_latency_quantile(double q) const;

  [[nodiscard]] const std::vector<double>& reduce_latencies() const {
    return reduce_latencies_;
  }

  [[nodiscard]] std::uint32_t threads() const { return threads_; }
  void set_threads(std::uint32_t threads);

  void clear() {
    rounds_.clear();
    for (auto& phase : intra_) phase.assign(phase.size(), 0.0);
    reduce_latencies_.clear();
    last_reduce_mark_ = 0.0;
  }

 private:
  struct Round {
    std::vector<std::uint64_t> send_bytes;
    std::vector<std::uint32_t> send_msgs;
    std::vector<std::uint64_t> recv_bytes;
    std::vector<std::uint32_t> recv_msgs;
    std::vector<double> compute_s;
  };

  Round& round(Phase phase, std::uint16_t layer);
  [[nodiscard]] double eval_round(const Round& r) const;

  rank_t num_nodes_;
  NetworkModel net_;
  ComputeModel compute_;
  std::uint32_t threads_;
  std::map<std::pair<std::uint8_t, std::uint16_t>, Round> rounds_;
  /// Per-phase per-rank intra-node seconds; index = uint8(Phase). Sized at
  /// construction so concurrent charges to distinct ranks never reallocate
  /// (the parallel engine charges hosts from worker threads).
  std::array<std::vector<double>, 3> intra_;
  std::vector<double> reduce_latencies_;
  double last_reduce_mark_ = 0.0;
};

}  // namespace kylix
