file(REMOVE_RECURSE
  "CMakeFiles/fig2_packet_size.dir/fig2_packet_size.cpp.o"
  "CMakeFiles/fig2_packet_size.dir/fig2_packet_size.cpp.o.d"
  "fig2_packet_size"
  "fig2_packet_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_packet_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
