file(REMOVE_RECURSE
  "CMakeFiles/ablation_combined.dir/ablation_combined.cpp.o"
  "CMakeFiles/ablation_combined.dir/ablation_combined.cpp.o.d"
  "ablation_combined"
  "ablation_combined.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_combined.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
