#include "apps/pagerank.hpp"

#include <gtest/gtest.h>

#include <map>

#include "apps/reference.hpp"
#include "comm/bsp.hpp"
#include "powerlaw/graphgen.hpp"

namespace kylix {
namespace {

using Engine = BspEngine<real_t>;

/// Compare the distributed ranks against the single-node reference for
/// every vertex any machine tracks.
void expect_matches_reference(
    const DistributedPageRank<Engine>& pagerank, rank_t machines,
    const std::vector<double>& reference, double tolerance) {
  std::size_t checked = 0;
  for (rank_t r = 0; r < machines; ++r) {
    const auto ids = pagerank.machine_sources(r).to_indices();
    const auto values = pagerank.machine_values(r);
    ASSERT_EQ(ids.size(), values.size());
    for (std::size_t p = 0; p < ids.size(); ++p) {
      ASSERT_LT(ids[p], reference.size());
      EXPECT_NEAR(values[p], reference[ids[p]],
                  tolerance * reference[ids[p]] + 1e-9)
          << "vertex " << ids[p] << " on machine " << r;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

class PageRankTopologyTest
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(PageRankTopologyTest, MatchesSingleNodeReference) {
  const Topology topo(GetParam());
  const rank_t m = topo.num_machines();
  GraphSpec spec;
  spec.num_vertices = 3000;
  spec.num_edges = 30000;
  spec.alpha_out = 1.2;
  spec.alpha_in = 1.1;
  spec.seed = 100 + m;
  const auto edges = generate_zipf_graph(spec);
  const auto parts = random_edge_partition(edges, m, spec.seed);

  Engine engine(m);
  DistributedPageRank<Engine> pagerank(&engine, topo, parts,
                                       spec.num_vertices);
  DistributedPageRank<Engine>::Options options;
  options.iterations = 8;
  const auto result = pagerank.run(options);
  EXPECT_EQ(result.iterations.size(), 8u);

  const auto reference =
      reference_pagerank(edges, spec.num_vertices, 8, options.damping);
  expect_matches_reference(pagerank, m, reference, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, PageRankTopologyTest,
    ::testing::Values(std::vector<std::uint32_t>{},      // single machine
                      std::vector<std::uint32_t>{4},     // direct
                      std::vector<std::uint32_t>{4, 2},  // kylix shape
                      std::vector<std::uint32_t>{2, 2, 2}));

TEST(PageRank, SecondRunAdoptsCachedPlanAndMatchesBitForBit) {
  // Same partitions => same {in, out} fingerprint: run 1 compiles and
  // inserts, run 2 adopts the plan (skipping configuration) and must
  // produce identical ranks to a cache-less run.
  const Topology topo({4, 2});
  const auto edges = generate_rmat(10, 12000, 61);
  const auto parts = random_edge_partition(edges, 8, 62);
  PlanCache cache(4);

  Engine plain_engine(8);
  DistributedPageRank<Engine> plain(&plain_engine, topo, parts, 1u << 10);
  (void)plain.run({.damping = 0.85, .iterations = 5});

  Engine miss_engine(8);
  DistributedPageRank<Engine> first(&miss_engine, topo, parts, 1u << 10,
                                    nullptr, nullptr, &cache);
  EXPECT_FALSE(first.plan_cache_hit());
  (void)first.run({.damping = 0.85, .iterations = 5});
  EXPECT_EQ(cache.size(), 1u);

  Engine hit_engine(8);
  DistributedPageRank<Engine> second(&hit_engine, topo, parts, 1u << 10,
                                     nullptr, nullptr, &cache);
  EXPECT_TRUE(second.plan_cache_hit());
  (void)second.run({.damping = 0.85, .iterations = 5});
  for (rank_t r = 0; r < 8; ++r) {
    const auto expected = plain.machine_values(r);
    const auto cached = second.machine_values(r);
    ASSERT_EQ(cached.size(), expected.size());
    for (std::size_t p = 0; p < expected.size(); ++p) {
      EXPECT_EQ(cached[p], expected[p]) << "machine " << r << " pos " << p;
    }
  }
}

TEST(PageRank, ResidualShrinksAcrossIterations) {
  const Topology topo({4, 2});
  const auto edges = generate_rmat(11, 20000, 55);
  const auto parts = random_edge_partition(edges, 8, 56);
  Engine engine(8);
  DistributedPageRank<Engine> pagerank(&engine, topo, parts, 1u << 11);
  DistributedPageRank<Engine>::Options options;
  options.iterations = 10;
  const auto result = pagerank.run(options);
  EXPECT_LT(result.iterations.back().residual,
            result.iterations.front().residual / 4);
}

TEST(PageRank, TimingIsPopulatedWhenModelsAttached) {
  const Topology topo({2, 2});
  const auto edges = generate_rmat(10, 8000, 57);
  const auto parts = random_edge_partition(edges, 4, 58);
  const NetworkModel net = NetworkModel::ec2_like();
  const ComputeModel compute;
  TimingAccumulator timing(4, net, compute, 16);
  Engine engine(4, nullptr, nullptr, &timing);
  DistributedPageRank<Engine> pagerank(&engine, topo, parts, 1u << 10,
                                       &compute, &timing);
  const auto result = pagerank.run({.damping = 0.85, .iterations = 3});
  EXPECT_GT(result.setup_times.total(), 0.0);
  for (const auto& iter : result.iterations) {
    EXPECT_GT(iter.comm_s, 0.0);
    EXPECT_GT(iter.compute_s, 0.0);
  }
}

TEST(PageRank, RanksSumToAtMostOne) {
  // Without dangling redistribution the total mass is <= 1 and > damping
  // complement; per-vertex ranks must be positive.
  const Topology topo({4});
  GraphSpec spec;
  spec.num_vertices = 500;
  spec.num_edges = 5000;
  spec.seed = 59;
  const auto edges = generate_zipf_graph(spec);
  const auto parts = random_edge_partition(edges, 4, 60);
  Engine engine(4);
  DistributedPageRank<Engine> pagerank(&engine, topo, parts,
                                       spec.num_vertices);
  (void)pagerank.run({.damping = 0.85, .iterations = 6});
  // Collect each vertex once (machines overlap).
  std::map<index_t, real_t> ranks;
  for (rank_t r = 0; r < 4; ++r) {
    const auto ids = pagerank.machine_sources(r).to_indices();
    const auto values = pagerank.machine_values(r);
    for (std::size_t p = 0; p < ids.size(); ++p) {
      ranks[ids[p]] = values[p];
      EXPECT_GT(values[p], 0.0f);
    }
  }
  double total = 0;
  for (const auto& [id, value] : ranks) total += value;
  EXPECT_LE(total, 1.0 + 1e-3);
}

}  // namespace
}  // namespace kylix
