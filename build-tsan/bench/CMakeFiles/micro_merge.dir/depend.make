# Empty dependencies file for micro_merge.
# This may be replaced when dependencies are built.
