// White-box tests of the KylixNode layer structure — the §III-A invariants
// that make the nested butterfly work.
#include <gtest/gtest.h>

#include <map>

#include "comm/bsp.hpp"
#include "core/allreduce.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

using testing::random_workload;
using Allreduce = SparseAllreduce<float, OpSum, BspEngine<float>>;

struct Configured {
  Topology topo{{}};
  BspEngine<float> engine;
  Allreduce allreduce;
  testing::Workload<float> workload;

  explicit Configured(std::vector<std::uint32_t> degrees,
                      double out_prob = 0.3)
      : topo(std::move(degrees)),
        engine(topo.num_machines()),
        allreduce(&engine, topo),
        workload(random_workload<float>(topo.num_machines(), 150, out_prob,
                                        0.4, 321)) {
    allreduce.configure(workload.in_sets, workload.out_sets);
  }
};

TEST(KylixNode, LayerSetsStayInsideTheNodesKeyRange) {
  Configured c({4, 2});
  for (rank_t r = 0; r < c.topo.num_machines(); ++r) {
    for (std::uint16_t layer = 0; layer <= c.topo.num_layers(); ++layer) {
      const KeyRange range = c.topo.key_range(layer, r);
      for (key_t k : c.allreduce.node(r).out_set(layer)) {
        EXPECT_TRUE(range.contains(k))
            << "rank " << r << " layer " << layer;
      }
      for (key_t k : c.allreduce.node(r).in_set(layer)) {
        EXPECT_TRUE(range.contains(k));
      }
    }
  }
}

TEST(KylixNode, BottomOutSetsPartitionTheGlobalUnion) {
  Configured c({2, 2, 2});
  const auto totals = testing::brute_force_totals<float>(c.workload);
  std::map<key_t, int> owners;
  const std::uint16_t l = c.topo.num_layers();
  for (rank_t r = 0; r < c.topo.num_machines(); ++r) {
    for (key_t k : c.allreduce.node(r).out_set(l)) {
      ++owners[k];
    }
  }
  // Every contributed key lands on exactly one bottom node.
  EXPECT_EQ(owners.size(), totals.size());
  for (const auto& [key, count] : owners) {
    EXPECT_EQ(count, 1) << "key " << key;
    EXPECT_TRUE(totals.contains(key));
  }
}

TEST(KylixNode, BottomInSetsAreSubsetsOfBottomOutSets) {
  Configured c({4, 2});
  const std::uint16_t l = c.topo.num_layers();
  for (rank_t r = 0; r < c.topo.num_machines(); ++r) {
    EXPECT_TRUE(c.allreduce.node(r).in_set(l).subset_of(
        c.allreduce.node(r).out_set(l)));
  }
}

TEST(KylixNode, LayerZeroSetsAreTheUserSets) {
  Configured c({2, 2});
  for (rank_t r = 0; r < c.topo.num_machines(); ++r) {
    EXPECT_EQ(c.allreduce.node(r).in_set(0), c.workload.in_sets[r]);
    EXPECT_EQ(c.allreduce.node(r).out_set(0), c.workload.out_sets[r]);
  }
}

TEST(KylixNode, ExpectedSendersAreTheLayerGroup) {
  Configured c({4, 2});
  for (rank_t r = 0; r < c.topo.num_machines(); ++r) {
    for (std::uint16_t layer = 1; layer <= c.topo.num_layers(); ++layer) {
      EXPECT_EQ(c.allreduce.node(r).expected(layer),
                c.topo.group(layer, r));
    }
  }
}

TEST(KylixNode, TotalLayerElementsNeverGrowOnOverlappingData) {
  // Σ_nodes |out^i| is non-increasing in i: collisions only collapse.
  Configured c({4, 2, 2}, /*out_prob=*/0.5);
  const std::uint16_t l = c.topo.num_layers();
  std::size_t previous = static_cast<std::size_t>(-1);
  for (std::uint16_t layer = 0; layer <= l; ++layer) {
    std::size_t total = 0;
    for (rank_t r = 0; r < c.topo.num_machines(); ++r) {
      total += c.allreduce.node(r).out_set(layer).size();
    }
    EXPECT_LE(total, previous) << "layer " << layer;
    previous = total;
  }
}

TEST(KylixNode, CombinedModeProducesIdenticalResultsToSeparate) {
  const Topology topo({4, 2});
  const auto w = random_workload<float>(topo.num_machines(), 120, 0.3, 0.4,
                                        654);
  std::vector<std::vector<float>> separate;
  {
    BspEngine<float> engine(topo.num_machines());
    Allreduce ar(&engine, topo);
    ar.configure(w.in_sets, w.out_sets);
    separate = ar.reduce(w.out_values);
  }
  std::vector<std::vector<float>> combined;
  {
    BspEngine<float> engine(topo.num_machines());
    Allreduce ar(&engine, topo);
    combined = ar.reduce_with_config(w.in_sets, w.out_sets, w.out_values);
  }
  EXPECT_EQ(combined, separate);
}

TEST(KylixNode, CombinedModeSavesTheDownwardValuePass) {
  const Topology topo({4, 2});
  const auto w = random_workload<float>(topo.num_machines(), 120, 0.3, 0.4,
                                        654);
  Trace separate_trace;
  {
    BspEngine<float> engine(topo.num_machines(), nullptr, &separate_trace);
    Allreduce ar(&engine, topo);
    ar.configure(w.in_sets, w.out_sets);
    (void)ar.reduce(w.out_values);
  }
  Trace combined_trace;
  {
    BspEngine<float> engine(topo.num_machines(), nullptr, &combined_trace);
    Allreduce ar(&engine, topo);
    (void)ar.reduce_with_config(w.in_sets, w.out_sets, w.out_values);
  }
  // A third fewer messages (config + up instead of config + down + up)...
  EXPECT_EQ(combined_trace.num_messages(),
            separate_trace.num_messages() * 2 / 3);
  // ...and strictly fewer bytes (value payloads ride config messages, so
  // only the per-message headers of the down pass disappear).
  EXPECT_LT(combined_trace.total_bytes(), separate_trace.total_bytes());
  // The combined run sends no kReduceDown messages at all.
  EXPECT_TRUE(combined_trace
                  .bytes_by_layer(Phase::kReduceDown, topo.num_layers())
                  .front() == 0);
}

TEST(Packet, WireBytesCountKeysValuesAndHeader) {
  Packet<float> packet;
  EXPECT_EQ(packet.wire_bytes(), kPacketHeaderBytes);
  packet.in_keys = {1, 2, 3};
  packet.out_keys = {4};
  packet.values = {1.0f, 2.0f};
  EXPECT_EQ(packet.wire_bytes(), kPacketHeaderBytes + 8 * 4 + 4 * 2);
  Packet<std::uint64_t> wide;
  wide.values = {1, 2};
  EXPECT_EQ(wide.wire_bytes(), kPacketHeaderBytes + 16);
}

}  // namespace
}  // namespace kylix
