#include "comm/bsp.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace kylix {
namespace {

/// A toy exchange: every node sends its rank*10 to every node (incl. self);
/// consume sums what arrived.
template <typename Engine>
std::vector<int> run_all_to_all(Engine& engine,
                                std::vector<rank_t> participants = {}) {
  const rank_t m = engine.num_ranks();
  std::vector<int> sums(m, 0);
  engine.round(
      Phase::kConfig, 1,
      [&](rank_t r) {
        std::vector<Letter<float>> letters;
        for (rank_t dst = 0; dst < m; ++dst) {
          Letter<float> letter;
          letter.src = r;
          letter.dst = dst;
          letter.packet.values = {static_cast<float>(r * 10)};
          letters.push_back(std::move(letter));
        }
        return letters;
      },
      [&](rank_t) {
        std::vector<rank_t> all(m);
        for (rank_t s = 0; s < m; ++s) all[s] = s;
        return all;
      },
      [&](rank_t r, std::vector<Letter<float>>&& inbox) {
        for (const auto& letter : inbox) {
          sums[r] += static_cast<int>(letter.packet.values[0]);
        }
      });
  (void)participants;
  return sums;
}

TEST(BspEngine, DeliversAllToAll) {
  BspEngine<float> engine(4);
  const std::vector<int> sums = run_all_to_all(engine);
  EXPECT_EQ(sums, (std::vector<int>{60, 60, 60, 60}));
}

TEST(BspEngine, RecordsTraceEvents) {
  Trace trace;
  BspEngine<float> engine(3, nullptr, &trace);
  run_all_to_all(engine);
  EXPECT_EQ(trace.num_messages(), 9u);  // self-messages traced too (Fig. 5)
  for (const MsgEvent& e : trace.events()) {
    EXPECT_EQ(e.phase, Phase::kConfig);
    EXPECT_EQ(e.layer, 1);
    EXPECT_EQ(e.bytes, kPacketHeaderBytes + sizeof(float));
  }
}

TEST(BspEngine, ChargesTiming) {
  NetworkModel net;
  TimingAccumulator timing(3, net, ComputeModel{}, 1);
  BspEngine<float> engine(3, nullptr, nullptr, &timing);
  run_all_to_all(engine);
  EXPECT_GT(timing.times().config, 0.0);
  engine.charge_compute(Phase::kConfig, 1, 0, 1.0);
  EXPECT_GT(timing.times().config, 1.0);
}

TEST(BspEngine, DeadNodesNeitherSendNorReceive) {
  FailureModel failures(4);
  failures.kill(2);
  BspEngine<float> engine(4, &failures);
  EXPECT_TRUE(engine.is_dead(2));
  const std::vector<int> sums = run_all_to_all(engine);
  // Node 2 (value 20) contributed nothing; node 2 consumed nothing.
  EXPECT_EQ(sums, (std::vector<int>{40, 40, 0, 40}));
}

TEST(BspEngine, SendToDeadNodeStillCostsTheSender) {
  FailureModel failures(2);
  failures.kill(1);
  Trace trace;
  BspEngine<float> engine(2, &failures, &trace);
  run_all_to_all(engine);
  // Node 0 sent to itself and to dead node 1: both traced.
  EXPECT_EQ(trace.num_messages(), 2u);
}

TEST(BspEngine, LetterToInvalidRankThrows) {
  BspEngine<float> engine(2);
  const auto bad_produce = [&](rank_t r) {
    std::vector<Letter<float>> letters(1);
    letters[0].src = r;
    letters[0].dst = 7;
    return letters;
  };
  const auto expected = [](rank_t) { return std::vector<rank_t>{}; };
  const auto consume = [](rank_t, std::vector<Letter<float>>&&) {};
  EXPECT_THROW(
      engine.round(Phase::kConfig, 1, bad_produce, expected, consume),
      check_error);
}

TEST(BspEngine, InboxArrivesSortedBySource) {
  BspEngine<float> engine(5);
  engine.round(
      Phase::kReduceDown, 2,
      [&](rank_t r) {
        std::vector<Letter<float>> letters(1);
        letters[0].src = r;
        letters[0].dst = 0;
        return letters;
      },
      [&](rank_t) {
        return std::vector<rank_t>{0, 1, 2, 3, 4};
      },
      [&](rank_t r, std::vector<Letter<float>>&& inbox) {
        if (r == 0) {
          ASSERT_EQ(inbox.size(), 5u);
          for (rank_t s = 0; s < 5; ++s) {
            EXPECT_EQ(inbox[s].src, s);
          }
        } else {
          EXPECT_TRUE(inbox.empty());
        }
      });
}

TEST(BspEngine, FailureModelMustCoverEngineRanks) {
  // FailureModel::is_dead answers false out of range, so an undersized
  // model would silently make uncovered ranks immortal; the constructor
  // rejects it instead.
  FailureModel small(3);
  EXPECT_THROW(BspEngine<float>(4, &small), check_error);
  FailureModel exact(4);
  BspEngine<float> ok(4, &exact);  // must not throw
  EXPECT_EQ(ok.num_ranks(), 4u);
}

}  // namespace
}  // namespace kylix
