# Empty dependencies file for kylix_baselines.
# This may be replaced when dependencies are built.
