// Minibatch SGD over Kylix — the §I-A.1 workload, using the combined
// configure+reduce mode (in/out sets change every step, so configuration
// piggybacks on reduction messages).
//
// Trains distributed logistic regression on synthetic power-law data with
// a planted model, printing per-step loss and modeled communication time.
#include <cstdio>

#include "kylix.hpp"

int main() {
  using namespace kylix;

  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();

  DistributedSgd<BspEngine<real_t>>::Options options;
  options.num_features = 1u << 14;
  options.samples_per_batch = 256;
  options.features_per_sample = 12;
  options.alpha = 1.1;
  options.learning_rate = 0.3;
  options.steps = 30;
  options.seed = 2014;

  NetworkModel net = NetworkModel::ec2_like();
  net.set_message_overhead(4e-5);
  const ComputeModel compute;
  TimingAccumulator timing(m, net, compute, 16);
  BspEngine<real_t> engine(m, nullptr, nullptr, &timing);

  std::printf("distributed logistic regression: %llu features, %u machines, "
              "topology %s, one combined configure+reduce per step\n\n",
              static_cast<unsigned long long>(options.num_features), m,
              topo.to_string().c_str());

  DistributedSgd<BspEngine<real_t>> sgd(&engine, topo, options, &compute,
                                        &timing);
  const auto stats = sgd.run();

  std::printf("%-6s %-10s %-14s\n", "step", "loss", "comm(model)");
  for (std::size_t s = 0; s < stats.size(); ++s) {
    if (s % 3 == 0 || s + 1 == stats.size()) {
      std::printf("%-6zu %-10.4f %-14s\n", s + 1, stats[s].loss,
                  format_seconds(stats[s].comm_s).c_str());
    }
  }

  const double early = stats.front().loss;
  const double late = stats.back().loss;
  std::printf("\nloss %.4f -> %.4f (%s)\n", early, late,
              late < early ? "learning: PASS" : "not learning: FAIL");
  std::printf("weight of hottest feature (planted vs learned sign match): "
              "w[0] = %+.3f\n",
              sgd.weight(0));
  return late < early ? 0 : 1;
}
