# Empty compiler generated dependencies file for pagerank_example.
# This may be replaced when dependencies are built.
