// The concurrent engine: one std::thread per simulated machine.
//
// Same round() contract as BspEngine, but every node runs its
// produce/send/receive/consume cycle on its own thread with blocking
// mailboxes — real concurrency, real interleavings, opportunistic message
// arrival (§VI-B). Received letters are sorted by source before consume, so
// results are bit-identical to the sequential engine regardless of arrival
// order (asserted by tests/comm, which run both engines on the same inputs).
//
// Failures are supported (dead nodes neither run nor receive); replication
// racing at the wire level is exercised by the Mailbox::take_any unit tests
// and the sequential ReplicatedBsp — this engine intentionally stays the
// minimal concurrent counterpart of BspEngine.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/timing.hpp"
#include "cluster/trace.hpp"
#include "comm/mailbox.hpp"
#include "comm/packet.hpp"
#include "common/check.hpp"
#include "obs/observer.hpp"

namespace kylix {

template <typename V>
class ThreadedBsp {
 public:
  ThreadedBsp(rank_t num_nodes, const FailureModel* failures = nullptr,
              Trace* trace = nullptr, TimingAccumulator* timing = nullptr)
      : num_nodes_(num_nodes),
        failures_(failures),
        trace_(trace),
        timing_(timing),
        mailboxes_(num_nodes) {
    KYLIX_CHECK(num_nodes >= 1);
    workers_.reserve(num_nodes);
    for (rank_t rank = 0; rank < num_nodes; ++rank) {
      workers_.emplace_back([this, rank] { worker_loop(rank); });
    }
  }

  ~ThreadedBsp() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    start_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadedBsp(const ThreadedBsp&) = delete;
  ThreadedBsp& operator=(const ThreadedBsp&) = delete;

  [[nodiscard]] rank_t num_ranks() const { return num_nodes_; }

  [[nodiscard]] bool is_dead(rank_t rank) const {
    return failures_ != nullptr && failures_->is_dead(rank);
  }

  /// Telemetry hook (src/obs); optional, not owned. on_message/on_drop fire
  /// from worker threads under the observer mutex; round begin/end fire on
  /// the calling thread.
  void set_observer(EngineObserver* observer) { observer_ = observer; }

  /// Messages transmitted to dead destinations since construction.
  [[nodiscard]] std::uint64_t dropped_messages() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Attribute modeled local compute to a rank within a round (thread-safe).
  void charge_compute(Phase phase, std::uint16_t layer, rank_t rank,
                      double seconds) {
    if (timing_ == nullptr) return;
    std::lock_guard<std::mutex> lock(observer_mutex_);
    timing_->on_compute(phase, layer, rank, seconds);
  }

  template <typename ProduceFn, typename ExpectedFn, typename ConsumeFn>
  void round(Phase phase, std::uint16_t layer, ProduceFn&& produce,
             ExpectedFn&& expected, ConsumeFn&& consume) {
    if (observer_ != nullptr) observer_->on_round_begin(phase, layer);
    // Type-erase this round's work; each worker runs it for its own rank.
    task_ = [&, phase, layer](rank_t rank) {
      if (is_dead(rank)) return;
      for (Letter<V>& letter : produce(rank)) {
        KYLIX_DCHECK(letter.src == rank);
        send(phase, layer, std::move(letter));
      }
      std::vector<Letter<V>> inbox;
      for (rank_t src : expected(rank)) {
        if (is_dead(src)) continue;  // an unreplicated dead sender: no letter
        inbox.push_back(mailboxes_[rank].take(src));
      }
      std::sort(inbox.begin(), inbox.end(),
                [](const Letter<V>& a, const Letter<V>& b) {
                  return a.src < b.src;
                });
      consume(rank, std::move(inbox));
    };
    run_task();
    if (observer_ != nullptr) observer_->on_round_end(phase, layer);
  }

 private:
  void send(Phase phase, std::uint16_t layer, Letter<V>&& letter) {
    KYLIX_CHECK_MSG(letter.dst < num_nodes_, "letter to invalid rank");
    const std::uint64_t bytes = letter.packet.wire_bytes();
    const MsgEvent event{phase, layer, letter.src, letter.dst, bytes};
    {
      std::lock_guard<std::mutex> lock(observer_mutex_);
      if (trace_ != nullptr) trace_->add(event);
      if (timing_ != nullptr) timing_->on_message(event);
      if (observer_ != nullptr) observer_->on_message(event);
    }
    if (is_dead(letter.dst)) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      if (observer_ != nullptr) {
        std::lock_guard<std::mutex> lock(observer_mutex_);
        observer_->on_drop(event);
      }
      return;
    }
    mailboxes_[letter.dst].put(std::move(letter));
  }

  void run_task() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_ = num_nodes_;
      ++generation_;
    }
    start_cv_.notify_all();
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    if (worker_error_) {
      auto error = worker_error_;
      worker_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }

  void worker_loop(rank_t rank) {
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock, [&] {
          return shutdown_ || generation_ > seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
      }
      try {
        task_(rank);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!worker_error_) worker_error_ = std::current_exception();
      }
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        last = (--pending_ == 0);
      }
      if (last) done_cv_.notify_all();
    }
  }

  rank_t num_nodes_;
  const FailureModel* failures_;
  Trace* trace_;
  TimingAccumulator* timing_;
  EngineObserver* observer_ = nullptr;
  std::atomic<std::uint64_t> dropped_{0};

  std::vector<Mailbox<V>> mailboxes_;
  std::vector<std::thread> workers_;
  std::function<void(rank_t)> task_;

  std::mutex mutex_;
  std::mutex observer_mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  rank_t pending_ = 0;
  bool shutdown_ = false;
  std::exception_ptr worker_error_;
};

}  // namespace kylix
