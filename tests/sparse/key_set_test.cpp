#include "sparse/key_set.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace kylix {
namespace {

TEST(KeyRange, FullRangeContainsEverything) {
  const KeyRange full = KeyRange::full();
  EXPECT_TRUE(full.is_full());
  EXPECT_TRUE(full.contains(0));
  EXPECT_TRUE(full.contains(~key_t{0}));
  EXPECT_TRUE(full.contains(123456789));
}

TEST(KeyRange, SubrangesTileTheParentExactly) {
  const KeyRange full = KeyRange::full();
  for (std::uint32_t parts : {2u, 3u, 4u, 7u, 64u}) {
    key_t expected_lo = 0;
    for (std::uint32_t p = 0; p < parts; ++p) {
      const KeyRange sub = full.subrange(p, parts);
      EXPECT_EQ(sub.lo, expected_lo) << parts << " parts, part " << p;
      expected_lo = sub.hi;
    }
    EXPECT_EQ(expected_lo, 0u);  // last hi wraps to 2^64 == 0
  }
}

TEST(KeyRange, NestedSubrangesTileToo) {
  const KeyRange outer = KeyRange::full().subrange(2, 5);
  key_t expected_lo = outer.lo;
  for (std::uint32_t p = 0; p < 3; ++p) {
    const KeyRange sub = outer.subrange(p, 3);
    EXPECT_EQ(sub.lo, expected_lo);
    expected_lo = sub.hi;
  }
  EXPECT_EQ(expected_lo, outer.hi);
}

TEST(KeyRange, ContainsMatchesBounds) {
  const KeyRange range{100, 200};
  EXPECT_FALSE(range.contains(99));
  EXPECT_TRUE(range.contains(100));
  EXPECT_TRUE(range.contains(199));
  EXPECT_FALSE(range.contains(200));
}

TEST(KeyRange, EveryKeyBelongsToExactlyOneSubrange) {
  Rng rng(5);
  const KeyRange full = KeyRange::full();
  for (int trial = 0; trial < 2000; ++trial) {
    const key_t k = rng();
    int owners = 0;
    for (std::uint32_t p = 0; p < 8; ++p) {
      if (full.subrange(p, 8).contains(k)) ++owners;
    }
    EXPECT_EQ(owners, 1) << "key " << k;
  }
}

TEST(KeyRange, SubrangeRejectsBadArguments) {
  EXPECT_THROW(KeyRange::full().subrange(3, 3), check_error);
  EXPECT_THROW(KeyRange::full().subrange(0, 0), check_error);
}

TEST(KeySet, FromIndicesSortsAndDedups) {
  const std::vector<index_t> ids = {5, 1, 5, 9, 1, 1};
  const KeySet set = KeySet::from_indices(ids);
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
}

TEST(KeySet, ToIndicesRoundTrips) {
  const std::vector<index_t> ids = {42, 7, 1000000, 3};
  const KeySet set = KeySet::from_indices(ids);
  std::vector<index_t> back = set.to_indices();
  std::sort(back.begin(), back.end());
  EXPECT_EQ(back, (std::vector<index_t>{3, 7, 42, 1000000}));
}

TEST(KeySet, FindLocatesAllMembers) {
  const std::vector<index_t> ids = {10, 20, 30, 40};
  const KeySet set = KeySet::from_indices(ids);
  for (index_t id : ids) {
    const std::size_t pos = set.find(hash_index(id));
    ASSERT_NE(pos, KeySet::npos);
    EXPECT_EQ(set[pos], hash_index(id));
  }
  EXPECT_EQ(set.find(hash_index(99)), KeySet::npos);
  EXPECT_TRUE(set.contains(hash_index(10)));
  EXPECT_FALSE(set.contains(hash_index(11)));
}

TEST(KeySet, EmptySetBehaves) {
  const KeySet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.find(123), KeySet::npos);
  EXPECT_EQ(set.slice(KeyRange::full()).size(), 0u);
  EXPECT_TRUE(set.subset_of(set));
}

TEST(KeySet, SliceMatchesLinearScan) {
  Rng rng(21);
  std::vector<key_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng());
  const KeySet set = KeySet::from_keys(keys);
  for (std::uint32_t p = 0; p < 4; ++p) {
    const KeyRange range = KeyRange::full().subrange(p, 4);
    const KeySet::Slice slice = set.slice(range);
    std::size_t expected = 0;
    for (key_t k : set) {
      if (range.contains(k)) ++expected;
    }
    EXPECT_EQ(slice.size(), expected);
    for (std::size_t i = slice.first; i < slice.last; ++i) {
      EXPECT_TRUE(range.contains(set[i]));
    }
  }
}

class SplitPointsTest
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, int>> {};

TEST_P(SplitPointsTest, TilesTheSet) {
  const auto [parts, size] = GetParam();
  Rng rng(parts * 1000 + size);
  std::vector<key_t> keys;
  for (int i = 0; i < size; ++i) keys.push_back(rng());
  const KeySet set = KeySet::from_keys(keys);
  const auto bounds = set.split_points(KeyRange::full(), parts);
  ASSERT_EQ(bounds.size(), parts + 1);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), set.size());
  for (std::uint32_t p = 0; p < parts; ++p) {
    EXPECT_LE(bounds[p], bounds[p + 1]);
    const KeyRange sub = KeyRange::full().subrange(p, parts);
    for (std::size_t i = bounds[p]; i < bounds[p + 1]; ++i) {
      EXPECT_TRUE(sub.contains(set[i]));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SplitPointsTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 8u, 64u),
                       ::testing::Values(0, 1, 17, 1000)));

TEST(KeySet, SplitPointsRejectsKeysOutsideRange) {
  const KeySet set = KeySet::from_keys({1, ~key_t{0} / 2, ~key_t{0} - 1});
  const KeyRange narrow = KeyRange::full().subrange(0, 4);
  EXPECT_THROW(set.split_points(narrow, 2), check_error);
}

TEST(KeySet, ExtractCopiesSlice) {
  const KeySet set = KeySet::from_keys({10, 20, 30, 40, 50});
  EXPECT_EQ(set.extract(1, 4), (std::vector<key_t>{20, 30, 40}));
  EXPECT_TRUE(set.extract(2, 2).empty());
}

TEST(KeySet, SubsetOf) {
  const KeySet small = KeySet::from_keys({2, 4});
  const KeySet big = KeySet::from_keys({1, 2, 3, 4});
  EXPECT_TRUE(small.subset_of(big));
  EXPECT_FALSE(big.subset_of(small));
  EXPECT_TRUE(KeySet().subset_of(small));
}

}  // namespace
}  // namespace kylix
