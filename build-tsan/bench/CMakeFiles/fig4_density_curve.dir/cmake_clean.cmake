file(REMOVE_RECURSE
  "CMakeFiles/fig4_density_curve.dir/fig4_density_curve.cpp.o"
  "CMakeFiles/fig4_density_curve.dir/fig4_density_curve.cpp.o.d"
  "fig4_density_curve"
  "fig4_density_curve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_density_curve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
