#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace kylix::log {

namespace {

std::atomic<int>& threshold() {
  static std::atomic<int> value = [] {
    if (const char* env = std::getenv("KYLIX_LOG_LEVEL")) {
      return std::atoi(env);
    }
    return static_cast<int>(LogLevel::kInfo);
  }();
  return value;
}

const char* prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "[debug] ";
    case LogLevel::kInfo:
      return "[info ] ";
    case LogLevel::kWarn:
      return "[warn ] ";
    case LogLevel::kError:
      return "[error] ";
  }
  return "[?    ] ";
}

}  // namespace

void set_level(LogLevel level) {
  threshold().store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel level() {
  return static_cast<LogLevel>(threshold().load(std::memory_order_relaxed));
}

void write(LogLevel lvl, const std::string& message) {
  static std::mutex mutex;
  std::lock_guard<std::mutex> lock(mutex);
  std::fprintf(stderr, "%s%s\n", prefix(lvl), message.c_str());
}

}  // namespace kylix::log
