file(REMOVE_RECURSE
  "CMakeFiles/diameter_test.dir/apps/diameter_test.cpp.o"
  "CMakeFiles/diameter_test.dir/apps/diameter_test.cpp.o.d"
  "diameter_test"
  "diameter_test.pdb"
  "diameter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diameter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
