// Distributed connected components — label propagation over a min-allreduce
// (§I-A.2's "connected components … can be computed from such matrix-vector
// products", using the min ⊕ semiring instead of +).
//
// Edges are symmetrized, every vertex starts with its own id as label, and
// each iteration propagates the minimum label across local edges and then
// across machines through a min sparse allreduce with in = out = the local
// vertex set. Fixed point = component labeling (minimum vertex id per
// component).
#pragma once

#include <span>
#include <vector>

#include "core/allreduce.hpp"
#include "sparse/csr.hpp"

namespace kylix {

template <typename Engine>
class DistributedComponents {
 public:
  struct Result {
    std::uint32_t iterations = 0;  ///< rounds until the labels fixed
    /// Per machine: (vertex key set, final labels), key-order aligned.
    std::vector<KeySet> vertex_sets;
    std::vector<std::vector<std::uint64_t>> labels;
  };

  DistributedComponents(Engine* engine, Topology topology,
                        std::span<const std::vector<Edge>> partitions,
                        const ComputeModel* compute = nullptr)
      : engine_(engine), topology_(std::move(topology)), compute_(compute) {
    KYLIX_CHECK(partitions.size() == topology_.num_machines());
    graphs_.reserve(partitions.size());
    for (const auto& part : partitions) {
      // Symmetrize so labels flow both ways along each edge.
      std::vector<Edge> sym;
      sym.reserve(part.size() * 2);
      for (const Edge& e : part) {
        sym.push_back(e);
        sym.push_back(Edge{e.dst, e.src});
      }
      graphs_.emplace_back(std::span<const Edge>(sym));
      KYLIX_CHECK(graphs_.back().sources() == graphs_.back().destinations());
    }
  }

  [[nodiscard]] Result run(std::uint32_t max_iterations = 64) {
    const rank_t m = topology_.num_machines();
    SparseAllreduce<std::uint64_t, OpMin, Engine> allreduce(
        engine_, topology_, compute_);
    {
      std::vector<KeySet> in_sets;
      std::vector<KeySet> out_sets;
      for (const LocalGraph& g : graphs_) {
        in_sets.push_back(g.sources());
        out_sets.push_back(g.sources());
      }
      allreduce.configure(std::move(in_sets), std::move(out_sets));
    }

    Result result;
    // Labels start as the vertex's own id.
    std::vector<std::vector<std::uint64_t>> labels(m);
    for (rank_t r = 0; r < m; ++r) {
      labels[r] = graphs_[r].sources().to_indices();
    }

    for (std::uint32_t iter = 0; iter < max_iterations; ++iter) {
      std::vector<std::vector<std::uint64_t>> proposed(m);
      for (rank_t r = 0; r < m; ++r) {
        proposed[r] = labels[r];
        graphs_[r].min_propagate_into<std::uint64_t>(labels[r], proposed[r]);
      }
      auto reduced = allreduce.reduce(std::move(proposed));
      bool changed = false;
      for (rank_t r = 0; r < m; ++r) {
        for (std::size_t p = 0; p < labels[r].size(); ++p) {
          if (reduced[r][p] != labels[r][p]) changed = true;
        }
        labels[r] = std::move(reduced[r]);
      }
      ++result.iterations;
      // In a deployment this flag would ride a one-key sum allreduce; the
      // simulation inspects it directly (no extra traffic recorded).
      if (!changed) break;
    }

    for (rank_t r = 0; r < m; ++r) {
      result.vertex_sets.push_back(graphs_[r].sources());
    }
    result.labels = std::move(labels);
    return result;
  }

 private:
  Engine* engine_;
  Topology topology_;
  const ComputeModel* compute_;
  std::vector<LocalGraph> graphs_;
};

}  // namespace kylix
