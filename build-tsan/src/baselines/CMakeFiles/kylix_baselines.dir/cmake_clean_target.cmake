file(REMOVE_RECURSE
  "libkylix_baselines.a"
)
