// The deterministic bulk-synchronous engine.
//
// One round = one communication layer of one phase: every alive node
// produces its outgoing letters, the engine applies failure drops and
// records trace/timing, then every alive node consumes its inbox (sorted by
// source rank, so results are independent of delivery order — the same
// property the threaded engine guarantees by sorting after collecting).
//
// Node algorithms are expressed as produce/expected/consume callbacks, which
// lets this engine, the replication wrapper, and the threaded engine drive
// the *same* algorithm code (DESIGN.md decision 3).
#pragma once

#include <algorithm>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/timing.hpp"
#include "cluster/trace.hpp"
#include "comm/fault_channel.hpp"
#include "comm/packet.hpp"
#include "common/check.hpp"
#include "obs/observer.hpp"

namespace kylix {

/// Engine concept shared by BspEngine / ReplicatedBsp / ThreadedBsp:
///   rank_t num_ranks() const;
///   round(phase, layer, produce, expected, consume);
/// where, for each alive rank r,
///   produce(r)  -> std::vector<Letter<V>>   letters to send (self allowed)
///   expected(r) -> std::vector<rank_t>      ranks r awaits a letter from
///   consume(r, std::vector<Letter<V>>&&)    inbox sorted by src
template <typename V>
class BspEngine {
 public:
  /// All observer pointers are optional and not owned.
  BspEngine(rank_t num_nodes, const FailureModel* failures = nullptr,
            Trace* trace = nullptr, TimingAccumulator* timing = nullptr)
      : num_nodes_(num_nodes),
        failures_(failures),
        trace_(trace),
        timing_(timing) {
    KYLIX_CHECK(num_nodes >= 1);
    KYLIX_CHECK_MSG(failures == nullptr || failures->num_nodes() >= num_nodes,
                    "FailureModel covers fewer ranks than the engine");
  }

  [[nodiscard]] rank_t num_ranks() const { return num_nodes_; }

  [[nodiscard]] bool is_dead(rank_t rank) const {
    return failures_ != nullptr && failures_->is_dead(rank);
  }

  /// Elastic membership: an unreplicated engine with any dead rank can only
  /// complete in degraded mode — there is no replica to recover the dead
  /// rank's exclusive keys from, so surviving nodes resolve them to the
  /// reduction identity (core/degraded.hpp) instead of aborting
  /// finish_configure(). Lets survivors re-plan around confirmed deaths.
  [[nodiscard]] bool has_failed() const {
    return failures_ != nullptr && failures_->num_dead() > 0;
  }
  [[nodiscard]] bool degraded_allowed() const { return true; }

  /// Telemetry hook (src/obs); optional and not owned, like trace/timing.
  void set_observer(EngineObserver* observer) { observer_ = observer; }

  /// Attach a chaos-engine fault channel (optional, not owned, one engine
  /// per channel). When the engine has no FailureModel of its own it adopts
  /// the plan's, so scripted crashes take effect without extra plumbing.
  void set_fault_channel(FaultChannel<V>* channel) {
    channel_ = channel;
    if (channel_ != nullptr && failures_ == nullptr) {
      failures_ = &channel_->plan().failures();
    }
    KYLIX_CHECK_MSG(
        channel_ == nullptr ||
            channel_->plan().num_nodes() >= num_nodes_,
        "FaultPlan covers fewer ranks than the engine");
  }

  /// Messages transmitted to dead destinations (sender paid, nothing
  /// arrived) since construction.
  [[nodiscard]] std::uint64_t dropped_messages() const { return dropped_; }

  /// Attribute modeled local compute to a rank within a round.
  void charge_compute(Phase phase, std::uint16_t layer, rank_t rank,
                      double seconds) {
    if (timing_ != nullptr) timing_->on_compute(phase, layer, rank, seconds);
  }

  /// Attribute modeled intra-node (shared-memory tier) time to a rank.
  void charge_intra(Phase phase, rank_t rank, double seconds) {
    if (timing_ != nullptr) timing_->on_intra(phase, rank, seconds);
  }

  /// Intra-node stage of a hierarchical topology (DESIGN §13): run
  /// `fn(host)` for every host. No letters, no trace/observer events — the
  /// leader reduces directly from co-located peer buffers (single copy), so
  /// there is nothing on the wire to record. fn must skip dead ranks itself
  /// (it sees the member list; the engine only sees hosts here).
  template <typename Fn>
  void intra_round(Phase phase, rank_t num_hosts, Fn&& fn) {
    (void)phase;
    for (rank_t h = 0; h < num_hosts; ++h) fn(h);
  }

  template <typename ProduceFn, typename ExpectedFn, typename ConsumeFn>
  void round(Phase phase, std::uint16_t layer, ProduceFn&& produce,
             ExpectedFn&& expected, ConsumeFn&& consume) {
    // The fault plan's scripted crashes fire first, so a node killed "at"
    // this round neither produces nor receives in it.
    if (channel_ != nullptr) channel_->begin_round(phase, layer);
    if (observer_ != nullptr) observer_->on_round_begin(phase, layer);
    // Inboxes persist across rounds: clear() keeps both the outer vector's
    // capacity and each inbox's letter-shell capacity, so steady-state
    // rounds perform no heap allocation here.
    if (inboxes_.size() < num_nodes_) inboxes_.resize(num_nodes_);
    for (auto& inbox : inboxes_) inbox.clear();
    for (rank_t rank = 0; rank < num_nodes_; ++rank) {
      if (is_dead(rank)) continue;
      for (Letter<V>& letter : produce(rank)) {
        KYLIX_DCHECK(letter.src == rank);
        KYLIX_CHECK_MSG(letter.dst < num_nodes_, "letter to invalid rank");
        deliver(phase, layer, std::move(letter), inboxes_);
      }
    }
    if (channel_ != nullptr) drain_due(phase, layer);
    for (rank_t rank = 0; rank < num_nodes_; ++rank) {
      if (is_dead(rank)) continue;
      auto& inbox = inboxes_[rank];
      std::sort(inbox.begin(), inbox.end(), letter_before<V>);
#ifndef NDEBUG
      if (!inbox.empty()) {
        // Sanity: only expected senders may appear. Sort a copy once and
        // binary-search instead of a linear scan per letter.
        std::vector<rank_t> senders(expected(rank).begin(),
                                    expected(rank).end());
        std::sort(senders.begin(), senders.end());
        for (const Letter<V>& letter : inbox) {
          KYLIX_DCHECK(
              std::binary_search(senders.begin(), senders.end(), letter.src));
        }
      }
#else
      (void)expected;
#endif
      consume(rank, std::move(inbox));
    }
    if (observer_ != nullptr) observer_->on_round_end(phase, layer);
  }

 private:
  void deliver(Phase phase, std::uint16_t layer, Letter<V>&& letter,
               std::vector<std::vector<Letter<V>>>& inboxes) {
    const std::uint64_t bytes = letter.packet.wire_bytes();
    const MsgEvent event{phase, layer, letter.src, letter.dst, bytes};
    if (trace_ != nullptr) trace_->add(event);
    if (timing_ != nullptr) timing_->on_message(event);
    if (observer_ != nullptr) observer_->on_message(event);
    // A send to a dead node costs the sender (charged above) but never
    // arrives.
    if (failures_ != nullptr && failures_->is_dead(letter.dst)) {
      ++dropped_;
      if (observer_ != nullptr) observer_->on_drop(event);
      return;
    }
    if (channel_ != nullptr) {
      const FaultAction action = channel_->route(phase, layer, letter);
      if (action != FaultAction::kDeliver) {
        if (observer_ != nullptr) observer_->on_fault(event, action);
        if (action == FaultAction::kDuplicate) {
          // The wire carried the letter twice; charge the second copy.
          if (trace_ != nullptr) trace_->add(event);
          if (timing_ != nullptr) timing_->on_message(event);
          if (observer_ != nullptr) observer_->on_message(event);
        } else {
          return;  // kDrop is lost; kDelay is stashed in the channel.
        }
      }
    }
    inboxes[letter.dst].push_back(std::move(letter));
  }

  /// Move delayed letters that are due this round into their inboxes. A
  /// letter is discarded as stale when its destination died meanwhile or a
  /// fresh letter for the same (sender, chunk) slot already arrived this
  /// round — sibling chunks of the same logical letter never supersede.
  void drain_due(Phase phase, std::uint16_t layer) {
    for (Letter<V>& letter : channel_->due()) {
      const MsgEvent event{phase, layer, letter.src, letter.dst,
                           letter.packet.wire_bytes()};
      if (letter.dst >= num_nodes_ ||
          (failures_ != nullptr && failures_->is_dead(letter.dst))) {
        channel_->note_stale();
        if (observer_ != nullptr) observer_->on_redelivery(event, true);
        continue;
      }
      auto& inbox = inboxes_[letter.dst];
      const bool superseded =
          std::any_of(inbox.begin(), inbox.end(), [&](const Letter<V>& l) {
            return same_slot(l, letter);
          });
      if (superseded) {
        channel_->note_stale();
        if (observer_ != nullptr) observer_->on_redelivery(event, true);
        continue;
      }
      inbox.push_back(std::move(letter));
      channel_->note_redelivered();
      if (observer_ != nullptr) observer_->on_redelivery(event, false);
    }
    channel_->due().clear();
  }

  rank_t num_nodes_;
  const FailureModel* failures_;
  Trace* trace_;
  TimingAccumulator* timing_;
  EngineObserver* observer_ = nullptr;
  FaultChannel<V>* channel_ = nullptr;
  std::uint64_t dropped_ = 0;
  std::vector<std::vector<Letter<V>>> inboxes_;  ///< reused across rounds
};

}  // namespace kylix
