// Asserts the zero-allocation claims about the steady-state hot paths.
//
// This binary installs a counting global operator new, so AllocGauge scopes
// measure real heap traffic. The strict zero assertions hold in NDEBUG
// builds (the default RelWithDebInfo); debug builds run the same code but
// the engines' expected-sender sanity checks intentionally allocate, so
// those assertions relax to "does not grow between iterations".
#include "common/alloc_gauge.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <vector>

#include "comm/bsp.hpp"
#include "comm/replicated.hpp"
#include "core/allreduce.hpp"
#include "core/async_executor.hpp"
#include "core/node.hpp"
#include "core/plan_cache.hpp"
#include "obs/engine_obs.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "obs/watchdog.hpp"
#include "sparse/merge.hpp"
#include "test_util.hpp"

// --- counting global allocator ---------------------------------------------

namespace {
void* counted_alloc(std::size_t size) {
  kylix::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  kylix::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  kylix::g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace kylix {
namespace {

using kylix::testing::random_workload;

TEST(AllocGauge, CountsThisBinarysAllocations) {
  AllocGauge gauge;
  auto* p = new int(7);
  EXPECT_GE(gauge.count(), 1u);
  delete p;
}

TEST(AllocHotPath, WarmTreeMergeIsAllocationFree) {
  Rng rng(11);
  std::vector<std::vector<key_t>> inputs;
  for (int i = 0; i < 13; ++i) {
    std::vector<key_t> keys;
    for (int j = 0; j < 60; ++j) keys.push_back(rng.below(500));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    inputs.push_back(std::move(keys));
  }
  std::vector<std::span<const key_t>> spans(inputs.begin(), inputs.end());

  MergeScratch scratch;
  UnionResult out;
  // Warm until the buffer rotation (runs ping-pong between arenas and the
  // output, so capacities circulate in cycles) reaches its fixed point.
  for (int i = 0; i < 10; ++i) tree_merge_into(spans, out, scratch);
  const UnionResult expected = tree_merge(spans);

  AllocGauge gauge;
  tree_merge_into(spans, out, scratch);
  EXPECT_EQ(gauge.count(), 0u);
  EXPECT_EQ(out.keys, expected.keys);
  EXPECT_EQ(out.maps, expected.maps);
}

TEST(AllocHotPath, WarmKWayMergeIsAllocationFree) {
  Rng rng(12);
  std::vector<std::vector<key_t>> inputs;
  for (int i = 0; i < 16; ++i) {
    std::vector<key_t> keys;
    for (int j = 0; j < 80; ++j) keys.push_back(rng.below(700));
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    inputs.push_back(std::move(keys));
  }
  std::vector<std::span<const key_t>> spans(inputs.begin(), inputs.end());

  kernels::KWayScratch scratch;
  UnionResult out;
  for (int i = 0; i < 3; ++i) kernels::kway_merge_into(spans, out, scratch);
  const UnionResult expected = tree_merge(spans);

  AllocGauge gauge;
  kernels::kway_merge_into(spans, out, scratch);
  EXPECT_EQ(gauge.count(), 0u);
  EXPECT_EQ(out.keys, expected.keys);
  EXPECT_EQ(out.maps, expected.maps);
}

TEST(AllocHotPath, WarmPairwiseMergeIsAllocationFree) {
  const std::vector<key_t> a = {1, 3, 5, 7, 9, 11};
  const std::vector<key_t> b = {2, 3, 8, 9, 20};
  std::vector<key_t> keys;
  PosMap map_a, map_b;
  merge_union_into(a, b, keys, map_a, map_b);  // warm

  AllocGauge gauge;
  merge_union_into(a, b, keys, map_a, map_b);
  EXPECT_EQ(gauge.count(), 0u);
  EXPECT_EQ(keys, (std::vector<key_t>{1, 2, 3, 5, 7, 8, 9, 11, 20}));
}

// Drives the engine rounds exactly as SparseAllreduce does, but with the
// warm-up / measurement boundary inside one reduction: after warm-up, the
// down rounds and up rounds (the per-iteration hot path) must not allocate
// at all. begin_up and take_result are the accepted API boundary: the
// result buffer leaves the system with the caller each iteration.
TEST(AllocHotPath, SteadyStateReduceRoundsAreAllocationFree) {
  using Node = KylixNode<float, OpSum>;
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 2000, 0.08, 0.15, 42);

  BspEngine<float> engine(m);
  std::vector<NodeScratch<float>> scratch(m);
  std::vector<Node> nodes;
  nodes.reserve(m);
  for (rank_t r = 0; r < m; ++r) {
    nodes.emplace_back(&topo, r, w.in_sets[r], w.out_sets[r], &scratch[r]);
  }
  const auto run_round = [&](Phase phase, std::uint16_t layer, auto produce,
                             auto consume) {
    engine.round(
        phase, layer,
        [&](rank_t r) -> std::vector<Letter<float>>& {
          return (nodes[r].*produce)(layer);
        },
        [&](rank_t r) -> const std::vector<rank_t>& {
          return nodes[r].expected(layer);
        },
        [&](rank_t r, std::vector<Letter<float>>&& inbox) {
          (nodes[r].*consume)(layer, std::move(inbox));
        });
  };

  for (std::uint16_t layer = 1; layer <= topo.num_layers(); ++layer) {
    run_round(Phase::kConfig, layer, &Node::config_produce,
              &Node::config_consume);
  }
  for (Node& node : nodes) node.finish_configure();

  const auto reduce_once = [&](std::vector<std::vector<float>> values,
                               std::uint64_t* down_allocs,
                               std::uint64_t* up_allocs) {
    for (rank_t r = 0; r < m; ++r) {
      nodes[r].begin_reduce(std::move(values[r]));
    }
    {
      AllocGauge gauge;
      for (std::uint16_t layer = 1; layer <= topo.num_layers(); ++layer) {
        run_round(Phase::kReduceDown, layer, &Node::down_produce,
                  &Node::down_consume);
      }
      if (down_allocs != nullptr) *down_allocs = gauge.count();
    }
    for (Node& node : nodes) node.begin_up();
    {
      AllocGauge gauge;
      for (std::uint16_t layer = topo.num_layers(); layer >= 1; --layer) {
        run_round(Phase::kReduceUp, layer, &Node::up_produce,
                  &Node::up_consume);
      }
      if (up_allocs != nullptr) *up_allocs = gauge.count();
    }
    std::vector<std::vector<float>> results;
    results.reserve(m);
    for (Node& node : nodes) results.push_back(node.take_result());
    return results;
  };

  // Warm-up: lets every pool, letter shell, and engine inbox reach its
  // steady-state capacity. Buffers rotate through pool roles in a cycle, so
  // give the rotation several full periods to ratchet every capacity up.
  for (int iter = 0; iter < 10; ++iter) {
    (void)reduce_once(w.out_values, nullptr, nullptr);
  }

  std::uint64_t down_allocs = 0;
  std::uint64_t up_allocs = 0;
  const auto results = reduce_once(w.out_values, &down_allocs, &up_allocs);
  testing::expect_matches_oracle<float>(w, results);
#ifdef NDEBUG
  EXPECT_EQ(down_allocs, 0u) << "scatter-reduce rounds hit the allocator";
  EXPECT_EQ(up_allocs, 0u) << "allgather rounds hit the allocator";
#else
  // Debug builds allocate in the engines' sender sanity checks; just make
  // sure repetition doesn't grow.
  std::uint64_t down2 = 0;
  std::uint64_t up2 = 0;
  (void)reduce_once(w.out_values, &down2, &up2);
  EXPECT_EQ(down_allocs, down2);
  EXPECT_EQ(up_allocs, up2);
#endif
}

TEST(AllocHotPath, FullReduceStaysWithinApiBoundaryBudget) {
  const Topology topo({2, 2, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 3000, 0.06, 0.12, 99);

  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  for (int iter = 0; iter < 8; ++iter) {
    (void)allreduce.reduce(w.out_values);  // warm
  }

  const auto measure = [&] {
    auto values = w.out_values;  // copied outside the gauge
    AllocGauge gauge;
    const auto results = allreduce.reduce(std::move(values));
    const std::uint64_t count = gauge.count();
    EXPECT_EQ(results.size(), m);
    return count;
  };
  const std::uint64_t first = measure();
  const std::uint64_t second = measure();
#ifdef NDEBUG
  // Accepted allocations: the per-rank result buffer that leaves with the
  // caller (grown in begin_up) and the outer results vector. Everything
  // else — letters, unions, merges, inboxes — must recycle.
  EXPECT_LE(first, static_cast<std::uint64_t>(m) + 1);
#endif
  EXPECT_EQ(first, second) << "steady-state reduce() is not steady";
}

// The observability hooks must be pay-for-what-you-use: after detaching an
// observer, the steady-state reduce path is exactly as allocation-free as
// it is on an engine that never had one (the null checks cost nothing).
TEST(AllocHotPath, ObserverDetachRestoresSteadyStateBudget) {
  const Topology topo({2, 2, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 3000, 0.06, 0.12, 99);

  BspEngine<float> engine(m);
  obs::SpanTracer tracer;
  obs::TelemetryObserver observer(&tracer, m, obs::TelemetryObserver::Options{});
  engine.set_observer(&observer);

  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  for (int iter = 0; iter < 8; ++iter) {
    (void)allreduce.reduce(w.out_values);  // warm with telemetry attached
  }
  EXPECT_GT(observer.total_messages(), 0u);

  engine.set_observer(nullptr);
  (void)allreduce.reduce(w.out_values);  // settle

  const auto measure = [&] {
    auto values = w.out_values;
    AllocGauge gauge;
    const auto results = allreduce.reduce(std::move(values));
    const std::uint64_t count = gauge.count();
    EXPECT_EQ(results.size(), m);
    return count;
  };
  const std::uint64_t first = measure();
  const std::uint64_t second = measure();
#ifdef NDEBUG
  // Same budget as FullReduceStaysWithinApiBoundaryBudget: only the result
  // buffers that leave with the caller.
  EXPECT_LE(first, static_cast<std::uint64_t>(m) + 1);
#endif
  EXPECT_EQ(first, second);
  const std::size_t events_after_detach = tracer.num_events();
  (void)measure();
  EXPECT_EQ(tracer.num_events(), events_after_detach)
      << "detached observer still received events";
}

// The other direction: with the FULL observability v2 stack attached —
// metrics, flight recorder, and anomaly watchdog — the steady-state reduce
// obeys the same API-boundary budget. Flight-recorder slots are fixed at
// construction, the watchdog's median scratch is pre-sized, and histogram
// observes are bucket increments, so instrumentation adds zero allocations
// per iteration (the <3% wall-clock gate in tools/bench_check.sh rests on
// this).
TEST(AllocHotPath, FullyInstrumentedSteadyStateReduceStaysWithinBudget) {
  const Topology topo({2, 2, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 3000, 0.06, 0.12, 99);

  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(m, 128, 512);
  obs::AnomalyWatchdog::Options wopt;
  wopt.metrics = &metrics;
  wopt.recorder = &recorder;
  obs::AnomalyWatchdog watchdog(m, wopt);

  obs::TelemetryObserver::Options topt;
  topt.metrics = &metrics;
  topt.recorder = &recorder;
  topt.watchdog = &watchdog;
  obs::TelemetryObserver observer(/*tracer=*/nullptr, m, topt);

  BspEngine<float> engine(m);
  engine.set_observer(&observer);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  for (int iter = 0; iter < 8; ++iter) {
    (void)allreduce.reduce(w.out_values);  // warm
  }
  EXPECT_GT(observer.total_messages(), 0u);
  EXPECT_GT(recorder.recorded(), 0u);
  EXPECT_GT(watchdog.rounds_seen(), 0u);

  const auto measure = [&] {
    auto values = w.out_values;  // copied outside the gauge
    AllocGauge gauge;
    const auto results = allreduce.reduce(std::move(values));
    const std::uint64_t count = gauge.count();
    EXPECT_EQ(results.size(), m);
    return count;
  };
  const std::uint64_t first = measure();
  const std::uint64_t second = measure();
#ifdef NDEBUG
  // Identical budget to the uninstrumented engine: only the result buffers
  // that leave with the caller.
  EXPECT_LE(first, static_cast<std::uint64_t>(m) + 1);
#endif
  EXPECT_EQ(first, second) << "instrumented steady state is not steady";
}

// KYLIX_METRICS=off must make the whole observability stack a no-op at
// construction: instruments stop counting and the flight recorder stops
// writing, while the reduce itself is unaffected.
TEST(AllocHotPath, MetricsEnvOffSilencesTheWholeStack) {
  ::setenv("KYLIX_METRICS", "off", 1);
  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(8);
  ::unsetenv("KYLIX_METRICS");
  EXPECT_FALSE(metrics.enabled());
  EXPECT_FALSE(recorder.enabled());

  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 1000, 0.1, 0.2, 31);

  obs::TelemetryObserver::Options topt;
  topt.metrics = &metrics;
  topt.recorder = &recorder;
  obs::TelemetryObserver observer(/*tracer=*/nullptr, m, topt);

  BspEngine<float> engine(m);
  engine.set_observer(&observer);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  const auto results = allreduce.reduce(w.out_values);
  testing::expect_matches_oracle<float>(w, results);

  // The observer's own totals still count (they are plain members), but
  // nothing reached the disabled sinks.
  EXPECT_GT(observer.total_messages(), 0u);
  EXPECT_EQ(metrics.counter("engine.messages").value(), 0u);
  EXPECT_EQ(metrics.histogram("engine.round_seconds",
                              obs::exponential_bounds(1e-6, 10, 8))
                .count(),
            0u);
  EXPECT_EQ(recorder.recorded(), 0u);
  EXPECT_TRUE(recorder.merged_events().empty());
}

// The replication layer's alive-replica lookups used to build a fresh
// std::vector per call; they are now served from a cache revalidated
// against FailureModel::version(), so queries — and cache rebuilds after a
// kill, once warm — touch the allocator not at all.
TEST(AllocHotPath, ReplicatedAliveMaskQueriesAreAllocationFree) {
  FailureModel failures(16);
  failures.kill(3);   // replica 0 of logical 3
  failures.kill(12);  // replica 1 of logical 4
  ReplicatedBsp<float> engine(8, 2, &failures);
  (void)engine.alive_replicas(0);  // build the cache
  std::size_t total = 0;
  {
    AllocGauge gauge;
    for (int iter = 0; iter < 100; ++iter) {
      for (rank_t j = 0; j < 8; ++j) {
        total += engine.alive_replicas(j).size();
        total += engine.is_dead(j) ? 1 : 0;
      }
      total += engine.has_failed() ? 1 : 0;
    }
    EXPECT_EQ(gauge.count(), 0u) << "alive-mask queries hit the allocator";
  }
  EXPECT_EQ(total, 100u * 14u);  // 14 alive replicas over 8 groups

  // A mid-run kill invalidates the cache; the rebuild reuses the warmed
  // per-group vectors (clear() keeps capacity), so it is allocation-free
  // too once every group has seen its full replica count.
  AllocGauge gauge;
  failures.kill(5);
  EXPECT_EQ(engine.alive_replicas(5).size(), 1u);
  EXPECT_FALSE(engine.has_failed());
  failures.revive(5);
  EXPECT_EQ(engine.alive_replicas(5).size(), 2u);
  EXPECT_EQ(gauge.count(), 0u) << "cache rebuild after kill allocated";
}

// Steady-state replicated reduce: same API-boundary budget as the flat
// engine — only the result buffers that leave with the caller — including
// with dead replicas forcing the racing paths.
TEST(AllocHotPath, ReplicatedSteadyStateReduceStaysWithinBudget) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 2000, 0.08, 0.15, 57);

  FailureModel failures(m * 2);
  failures.kill(2);      // replica 0 of logical 2
  failures.kill(m + 5);  // replica 1 of logical 5
  ReplicatedBsp<float> engine(m, 2, &failures);
  SparseAllreduce<float, OpSum, ReplicatedBsp<float>> allreduce(&engine,
                                                                topo);
  allreduce.configure(w.in_sets, w.out_sets);
  for (int iter = 0; iter < 8; ++iter) {
    (void)allreduce.reduce(w.out_values);  // warm
  }

  const auto measure = [&] {
    auto values = w.out_values;  // copied outside the gauge
    AllocGauge gauge;
    const auto results = allreduce.reduce(std::move(values));
    const std::uint64_t count = gauge.count();
    EXPECT_EQ(results.size(), m);
    return count;
  };
  const std::uint64_t first = measure();
  const std::uint64_t second = measure();
#ifdef NDEBUG
  EXPECT_LE(first, static_cast<std::uint64_t>(m) + 1);
#endif
  EXPECT_EQ(first, second) << "steady-state replicated reduce not steady";
}

// Plan replay through an *adopted* plan (no nodes exist at all) obeys the
// same API-boundary budget as the compiling allreduce: only the result
// buffers that leave with the caller.
TEST(AllocHotPath, AdoptedPlanReplayStaysWithinBudget) {
  const Topology topo({2, 2, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 3000, 0.06, 0.12, 17);

  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> compiler(&engine, topo);
  const auto plan = compiler.compile(w.in_sets, w.out_sets);

  SparseAllreduce<float, OpSum, BspEngine<float>> replayer(&engine, topo);
  replayer.configure(plan);
  for (int iter = 0; iter < 8; ++iter) {
    (void)replayer.reduce(w.out_values);  // warm
  }

  const auto measure = [&] {
    auto values = w.out_values;  // copied outside the gauge
    AllocGauge gauge;
    const auto results = replayer.reduce(std::move(values));
    const std::uint64_t count = gauge.count();
    EXPECT_EQ(results.size(), m);
    return count;
  };
  const std::uint64_t first = measure();
  const std::uint64_t second = measure();
#ifdef NDEBUG
  EXPECT_LE(first, static_cast<std::uint64_t>(m) + 1);
#endif
  EXPECT_EQ(first, second) << "adopted-plan replay is not steady";
}

// Multi-payload replay moves stride x the values through the same frozen
// schedule; warm iterations must stay within the identical budget — the
// payload count changes buffer sizes, never buffer counts.
TEST(AllocHotPath, StridedPlanReplayStaysWithinBudget) {
  const Topology topo({2, 2, 2});
  const rank_t m = topo.num_machines();
  const std::uint32_t stride = 3;
  const auto w = random_workload<float>(m, 3000, 0.06, 0.12, 19);
  std::vector<std::vector<float>> interleaved(m);
  for (rank_t r = 0; r < m; ++r) {
    interleaved[r].resize(w.out_values[r].size() * stride);
    for (std::size_t p = 0; p < w.out_values[r].size(); ++p) {
      for (std::uint32_t c = 0; c < stride; ++c) {
        interleaved[r][p * stride + c] =
            w.out_values[r][p] + static_cast<float>(c);
      }
    }
  }

  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  for (int iter = 0; iter < 8; ++iter) {
    (void)allreduce.reduce_strided(interleaved, stride);  // warm
  }

  const auto measure = [&] {
    auto values = interleaved;  // copied outside the gauge
    AllocGauge gauge;
    const auto results = allreduce.reduce_strided(std::move(values), stride);
    const std::uint64_t count = gauge.count();
    EXPECT_EQ(results.size(), m);
    return count;
  };
  const std::uint64_t first = measure();
  const std::uint64_t second = measure();
#ifdef NDEBUG
  EXPECT_LE(first, static_cast<std::uint64_t>(m) + 1);
#endif
  EXPECT_EQ(first, second) << "strided replay is not steady";
}

// Streaming splits every letter into chunk-sized frames, but the chunk
// shells and the block-watermark scratch are pooled like everything else:
// warm streamed replay obeys the identical API-boundary budget — only the
// result buffers that leave with the caller.
TEST(AllocHotPath, StreamedStridedReplayStaysWithinBudget) {
  const Topology topo({2, 2, 2});
  const rank_t m = topo.num_machines();
  const std::uint32_t stride = 3;
  const auto w = random_workload<float>(m, 3000, 0.06, 0.12, 29);
  std::vector<std::vector<float>> interleaved(m);
  for (rank_t r = 0; r < m; ++r) {
    interleaved[r].resize(w.out_values[r].size() * stride);
    for (std::size_t p = 0; p < w.out_values[r].size(); ++p) {
      for (std::uint32_t c = 0; c < stride; ++c) {
        interleaved[r][p * stride + c] =
            w.out_values[r][p] + static_cast<float>(c);
      }
    }
  }

  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.set_streaming(true);
  allreduce.set_chunk_bytes(512);  // small chunks: every letter splits
  allreduce.configure(w.in_sets, w.out_sets);
  for (int iter = 0; iter < 8; ++iter) {
    (void)allreduce.reduce_strided(interleaved, stride);  // warm
  }
  EXPECT_GT(allreduce.stream_stats().max_chunks_per_letter, 1u)
      << "chunk size too large to exercise streaming";

  const auto measure = [&] {
    auto values = interleaved;  // copied outside the gauge
    AllocGauge gauge;
    const auto results = allreduce.reduce_strided(std::move(values), stride);
    const std::uint64_t count = gauge.count();
    EXPECT_EQ(results.size(), m);
    return count;
  };
  const std::uint64_t first = measure();
  const std::uint64_t second = measure();
#ifdef NDEBUG
  EXPECT_LE(first, static_cast<std::uint64_t>(m) + 1);
#endif
  EXPECT_EQ(first, second) << "streamed strided replay is not steady";
}

// Async steady state: k in-flight streams multiplexed over the shared
// channel obey the per-stream API-boundary budget. Every lane pools its
// scratch and recycles spent value buffers to their senders (the async
// analogue of the executor's collect_spent), mailbox shells are reserved to
// the frozen expected counts, and reset() keeps every warmed buffer — so a
// warm submit/drain/take_result/reset batch allocates only what leaves with
// the caller: per stream, the m result buffers grown in begin_up plus the
// outer results vector (re-grown because take_result moved it out).
TEST(AllocHotPath, AsyncSteadyStateStreamsStayWithinBudget) {
  const Topology topo({2, 2, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 3000, 0.06, 0.12, 61);

  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> compiler(&engine, topo);
  const auto plan = compiler.compile(w.in_sets, w.out_sets);
  ASSERT_NE(plan, nullptr);

  AsyncExecutor<float> ax;
  AsyncExecutor<float>::Options opts;
  opts.window = 2;  // < streams: the pending queue is part of the hot path
  ax.bind(plan, opts);
  const int streams = 5;

  std::vector<std::uint32_t> tags;
  tags.reserve(streams);
  std::vector<std::vector<std::vector<float>>> results;
  results.reserve(streams);

  const auto batch = [&] {
    // Input copies made outside the gauge: submit takes values by value.
    std::vector<std::vector<std::vector<float>>> inputs;
    inputs.reserve(streams);
    for (int i = 0; i < streams; ++i) inputs.push_back(w.out_values);
    tags.clear();
    results.clear();
    AllocGauge gauge;
    for (int i = 0; i < streams; ++i) {
      tags.push_back(ax.submit(std::move(inputs[i])));
    }
    ax.drain();
    for (const std::uint32_t tag : tags) {
      results.push_back(ax.take_result(tag));
    }
    ax.reset();
    return gauge.count();
  };

  // Warm until pools, mailboxes, the scheduler heap, and the stream table
  // reach their steady-state capacities (buffer rotation, as above).
  for (int iter = 0; iter < 10; ++iter) {
    (void)batch();
  }
  const std::uint64_t first = batch();
  for (int i = 0; i < streams; ++i) {
    testing::expect_matches_oracle<float>(w, results[i]);
  }
  const std::uint64_t second = batch();
#ifdef NDEBUG
  // Per stream: the m result buffers that leave with the caller plus the
  // outer results vector. Everything else — letters, mailboxes, pools,
  // fault scripts, heap entries — must recycle across batches.
  EXPECT_LE(first, static_cast<std::uint64_t>(streams) * (m + 1));
#endif
  EXPECT_EQ(first, second) << "async steady state is not steady";
}

// Serving a plan from the cache is pointer traffic only: the LRU refresh is
// a list splice and the lookup a hash probe — no allocator contact. Nor
// does re-adopting the plan an allreduce is already bound to.
TEST(AllocHotPath, PlanCacheHitsAllocateNothing) {
  const Topology topo({2, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 500, 0.2, 0.3, 23);

  BspEngine<float> engine(m);
  PlanCache cache(4);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  const std::uint64_t fp = PlanCache::fingerprint(w.in_sets, w.out_sets);
  cache.insert(allreduce.compile(w.in_sets, w.out_sets));

  AllocGauge gauge;
  for (int iter = 0; iter < 100; ++iter) {
    const auto plan = cache.find(fp);
    ASSERT_NE(plan, nullptr);
  }
  auto plan = cache.find(fp);
  allreduce.configure(std::move(plan));  // same-plan rebind: a no-op
  EXPECT_EQ(gauge.count(), 0u) << "plan-cache hits hit the allocator";
  EXPECT_EQ(cache.hits(), 101u);
}

TEST(AllocHotPath, RepeatedCombinedConfigReduceStabilizes) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 1500, 0.08, 0.15, 7);

  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);

  const auto step = [&] {
    // Copies made outside the gauge: the API takes sets/values by value.
    auto in_sets = w.in_sets;
    auto out_sets = w.out_sets;
    auto values = w.out_values;
    AllocGauge gauge;
    const auto results = allreduce.reduce_with_config(
        std::move(in_sets), std::move(out_sets), std::move(values));
    const std::uint64_t count = gauge.count();
    EXPECT_EQ(results.size(), m);
    return count;
  };

  const std::uint64_t cold = step();
  // Buffers rotate through pool/letter/union roles in long deterministic
  // cycles, so capacities ratchet down-slope for a while; counts are
  // non-increasing and must reach a fixed point. Warm until two consecutive
  // steps agree (bounded, so a genuine leak/churn still fails).
  std::uint64_t warm_a = step();
  std::uint64_t warm_b = step();
  int extra = 0;
  while (warm_a != warm_b && extra < 40) {
    warm_a = warm_b;
    warm_b = step();
    ++extra;
  }
  // NodeScratch persistence: identical steps settle to an identical (and
  // much smaller) allocation count instead of re-allocating every union.
  EXPECT_EQ(warm_a, warm_b) << "no fixed point after " << extra << " extra";
  EXPECT_LT(warm_a, cold / 2);
}

}  // namespace
}  // namespace kylix
