#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/json_writer.hpp"

namespace kylix::obs {

namespace {

bool env_disables_metrics() {
  const char* env = std::getenv("KYLIX_METRICS");
  if (env == nullptr) return false;
  return std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
         std::strcmp(env, "false") == 0;
}

}  // namespace

Histogram::Histogram(const std::atomic<bool>* enabled,
                     std::vector<double> upper_bounds)
    : enabled_(enabled), bounds_(std::move(upper_bounds)) {
  KYLIX_CHECK_MSG(!bounds_.empty() &&
                      std::is_sorted(bounds_.begin(), bounds_.end()) &&
                      std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                          bounds_.end(),
                  "histogram bounds must be non-empty, strictly increasing");
  buckets_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i] = 0;
}

void Histogram::observe(double v) {
  if (!enabled_->load(std::memory_order_relaxed)) return;
  // First bucket whose upper bound admits v; miss -> overflow bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> snapshot(bounds_.size() + 1);
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snapshot;
}

Histogram::Snapshot Histogram::snapshot() const {
  // observe() bumps bucket, then sum, then count — so a stable read is one
  // where count did not move across the bucket scan and the buckets sum to
  // it. Retry a few times under contention; fall back to the bucket sum as
  // the authoritative total (every bucket increment is a real observation).
  Snapshot snap;
  snap.upper_bounds = bounds_;
  for (int attempt = 0; attempt < 16; ++attempt) {
    const std::uint64_t before = count_.load(std::memory_order_acquire);
    snap.counts = counts();
    snap.sum = sum_.load(std::memory_order_relaxed);
    const std::uint64_t after = count_.load(std::memory_order_acquire);
    std::uint64_t total = 0;
    for (const std::uint64_t c : snap.counts) total += c;
    if (before == after && total == after) {
      snap.count = total;
      return snap;
    }
    snap.count = total;
  }
  return snap;  // contended: counts are self-consistent by construction
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double target = q * static_cast<double>(count);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const std::uint64_t in_bucket = counts[i];
    if (in_bucket == 0) continue;
    const double cum_after = static_cast<double>(cum + in_bucket);
    if (cum_after >= target) {
      if (i >= upper_bounds.size()) {
        // Overflow bucket has no finite upper edge; clamp to the last
        // finite bound rather than invent an extrapolation.
        return upper_bounds.empty() ? 0.0 : upper_bounds.back();
      }
      const double lower = i == 0 ? 0.0 : upper_bounds[i - 1];
      const double upper = upper_bounds[i];
      const double frac = (target - static_cast<double>(cum)) /
                          static_cast<double>(in_bucket);
      return lower + frac * (upper - lower);
    }
    cum += in_bucket;
  }
  return upper_bounds.empty() ? 0.0 : upper_bounds.back();
}

std::vector<double> exponential_bounds(double start, double factor,
                                       std::size_t count) {
  KYLIX_CHECK(start > 0 && factor > 1);
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(b);
    b *= factor;
  }
  return bounds;
}

MetricsRegistry::MetricsRegistry() : enabled_(!env_disables_metrics()) {}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<Counter>(&enabled_))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::make_unique<Gauge>(&enabled_))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(&enabled_, std::move(bounds)))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::write_json(JsonWriter& json) const {
  std::lock_guard<std::mutex> lock(mu_);
  json.begin_object();
  json.key("counters");
  json.begin_object();
  for (const auto& [name, c] : counters_) json.key_value(name, c->value());
  json.end_object();
  json.key("gauges");
  json.begin_object();
  for (const auto& [name, g] : gauges_) json.key_value(name, g->value());
  json.end_object();
  json.key("histograms");
  json.begin_object();
  for (const auto& [name, h] : histograms_) {
    json.key(name);
    json.begin_object();
    json.key("upper_bounds");
    json.begin_array();
    for (double b : h->upper_bounds()) json.value(b);
    json.end_array();
    json.key("counts");
    json.begin_array();
    for (std::uint64_t c : h->counts()) json.value(c);
    json.end_array();
    json.key_value("count", h->count());
    json.key_value("sum", h->sum());
    json.key_value("mean", h->mean());
    const Histogram::Snapshot snap = h->snapshot();
    json.key("quantiles");
    json.begin_object();
    json.key_value("p50", snap.quantile(0.50));
    json.key_value("p90", snap.quantile(0.90));
    json.key_value("p99", snap.quantile(0.99));
    json.key_value("p999", snap.quantile(0.999));
    json.end_object();
    json.end_object();
  }
  json.end_object();
  json.end_object();
}

void MetricsRegistry::write_json(std::ostream& out) const {
  JsonWriter json(out);
  write_json(json);
}

std::string MetricsRegistry::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace kylix::obs
