# Empty compiler generated dependencies file for fig4_density_curve.
# This may be replaced when dependencies are built.
