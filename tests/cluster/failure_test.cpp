#include "cluster/failure.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace kylix {
namespace {

TEST(FailureModel, NoneIsAllAlive) {
  const FailureModel model = FailureModel::none(8);
  EXPECT_EQ(model.num_dead(), 0u);
  for (rank_t r = 0; r < 8; ++r) {
    EXPECT_FALSE(model.is_dead(r));
  }
  EXPECT_FALSE(model.drops(0, 7));
}

TEST(FailureModel, KillAndRevive) {
  FailureModel model(4);
  model.kill(2);
  EXPECT_TRUE(model.is_dead(2));
  EXPECT_TRUE(model.drops(2, 0));
  EXPECT_TRUE(model.drops(0, 2));
  EXPECT_FALSE(model.drops(0, 1));
  EXPECT_EQ(model.dead_nodes(), (std::vector<rank_t>{2}));
  model.revive(2);
  EXPECT_EQ(model.num_dead(), 0u);
}

TEST(FailureModel, KillOutOfRangeThrows) {
  FailureModel model(4);
  EXPECT_THROW(model.kill(4), check_error);
  EXPECT_THROW(model.revive(9), check_error);
}

TEST(FailureModel, RandomFailuresAreDistinctAndSeeded) {
  const FailureModel a = FailureModel::random_failures(64, 5, 17);
  const FailureModel b = FailureModel::random_failures(64, 5, 17);
  EXPECT_EQ(a.num_dead(), 5u);
  EXPECT_EQ(a.dead_nodes(), b.dead_nodes());
  const FailureModel c = FailureModel::random_failures(64, 5, 18);
  EXPECT_NE(c.dead_nodes(), a.dead_nodes());
}

TEST(FailureModel, CanKillEveryone) {
  const FailureModel model = FailureModel::random_failures(4, 4, 1);
  EXPECT_EQ(model.num_dead(), 4u);
  EXPECT_THROW(FailureModel::random_failures(4, 5, 1), check_error);
}

}  // namespace
}  // namespace kylix
