// ReduceExecutor — value-only replay of a compiled CollectivePlan.
//
// The executor is the mutable half of the plan/executor split: it binds an
// engine and per-rank value buffers to an immutable plan and replays the
// frozen schedule. A replayed reduce touches no routing state — no nodes are
// rebuilt, no sets are unioned, no splits recomputed — and performs the
// exact same kernel calls in the exact same order as the node-driven path
// (slice by out_split, scatter_combine by out_maps in ascending sender
// digit, bottom gather by bottom_map, gather by in_maps, concatenate by
// in_split), so results, traces, and modeled timing are bit-identical to
// configure()+reduce() on every engine.
//
// Multi-payload: reduce_strided() pushes `stride` value vectors, interleaved
// key-major, through one replay. Every piece carries stride x the configured
// elements; keys are never resent. The strided kernels apply the reduction
// op per component in the same order a stride-1 replay would, so a strided
// reduce of k payloads is bit-identical to k independent reduces.
//
// Streaming mode (DESIGN §9): set_streaming(true) splits every reduce
// letter into chunks of the plan's compiled chunk_bytes (overridable via
// set_chunk_bytes_override), one Letter per chunk, and scatter-combines each
// chunk into the rank's union through a PosMap subspan as it is consumed.
// Chunks are processed in ascending (src, chunk_index) order — the exact
// per-position op order of letter-at-once delivery, since each sender
// touches each union position at most once — so streamed results are
// bit-identical on every engine. Block watermarks (blocks of chunk-size
// key ranges, flushed once their last contributing chunk lands) and the
// letter/stream buffer envelopes are accumulated into StreamStats; the
// pipelining payoff is priced by TimingAccumulator::pipelined_reduce_time.
//
// Allocation discipline: per-rank ExecState mirrors NodeScratch's buffer
// economy (letter shells per layer, recycled value pools, ping-pong
// merge/below buffers, pooled block-watermark scratch), so warm replays —
// streamed or not — allocate nothing in the rounds and stay within the same
// m+1 API-boundary budget as the node path (tests/core/alloc_test).
#pragma once

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "cluster/netmodel.hpp"
#include "comm/packet.hpp"
#include "core/node.hpp"  // NodeWork + the kernels the replay must mirror
#include "core/plan.hpp"
#include "core/stream_stats.hpp"
#include "obs/flight_recorder.hpp"  // header-only; no kylix_obs link needed
#include "sparse/ops.hpp"

namespace kylix {

template <typename V, typename Op = OpSum, typename Engine = void>
class ReduceExecutor {
 public:
  ReduceExecutor() = default;

  /// Bind to `engine` (not owned, must outlive the executor) and `plan`.
  /// Rebinding to the same plan is a no-op; a different plan keeps the
  /// warmed buffers (they only ever grow). `compute` is optional.
  void bind(Engine* engine, std::shared_ptr<const CollectivePlan> plan,
            const ComputeModel* compute = nullptr) {
    KYLIX_CHECK(engine != nullptr && plan != nullptr);
    KYLIX_CHECK_MSG(engine->num_ranks() == plan->topology().num_machines(),
                    "engine/plan machine count mismatch");
    KYLIX_CHECK_MSG(plan->any_configured(),
                    "plan holds no configured rank to replay");
    engine_ = engine;
    compute_ = compute;
    if (plan_ == plan) return;
    plan_ = std::move(plan);
    const std::uint16_t l = plan_->topology().num_layers();
    if (state_.size() < plan_->num_ranks()) state_.resize(plan_->num_ranks());
    for (ExecState& s : state_) {
      if (s.letters.size() < l) s.letters.resize(l);
    }
  }

  [[nodiscard]] bool bound() const { return plan_ != nullptr; }
  [[nodiscard]] const std::shared_ptr<const CollectivePlan>& plan() const {
    return plan_;
  }

  /// Toggle streamed replay. Takes effect on the next reduce; a streamed
  /// reduce with no chunk size (plan compiled without a network model and
  /// no override) degenerates to letter-at-once.
  void set_streaming(bool on) { streaming_ = on; }
  [[nodiscard]] bool streaming() const { return streaming_; }

  /// Tuning override for the plan's compiled chunk size, in payload bytes
  /// (0 restores the plan's value).
  void set_chunk_bytes_override(std::uint64_t bytes) {
    chunk_bytes_override_ = bytes;
  }

  /// Telemetry of the last reduce (valid after reduce()/reduce_strided()
  /// returns; merged over ranks in ascending order, so deterministic).
  [[nodiscard]] const StreamStats& stream_stats() const {
    return stream_stats_;
  }

  /// Attach a flight recorder (optional, not owned): replay begin/end
  /// markers (plan fingerprint in `bytes`) plus per-round stream-flush and
  /// buffer-watermark events, all recorded from the driving thread at the
  /// round barrier — allocation-free on warm replays.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    recorder_ = recorder;
  }

  /// Replay one reduce. `out_values[r]` aligns with rank r's contributed
  /// key order; result[r] aligns with its requested key order. Dead or
  /// plan-unconfigured ranks yield empty results.
  [[nodiscard]] std::vector<std::vector<V>> reduce(
      std::vector<std::vector<V>> out_values) {
    return reduce_strided(std::move(out_values), 1);
  }

  /// Replay one reduce moving `stride` payloads at once: `out_values[r]`
  /// holds stride values per contributed key, interleaved key-major
  /// (the stride values of key p occupy [p*stride, (p+1)*stride)); the
  /// result uses the same layout over the requested keys.
  [[nodiscard]] std::vector<std::vector<V>> reduce_strided(
      std::vector<std::vector<V>> out_values, std::uint32_t stride) {
    KYLIX_CHECK(bound());
    KYLIX_CHECK(stride >= 1);
    KYLIX_CHECK(out_values.size() == plan_->num_ranks());
    stride_ = stride;
    // Freeze this reduce's chunk schedule: payload bytes -> key positions.
    // One plan serves every value type and stride because the conversion
    // happens here, not at compile time.
    const std::uint64_t chunk_bytes = chunk_bytes_override_ != 0
                                          ? chunk_bytes_override_
                                          : plan_->chunk_bytes();
    chunk_positions_ =
        streaming_ && chunk_bytes != 0
            ? std::max<std::size_t>(
                  1, static_cast<std::size_t>(
                         chunk_bytes / (sizeof(V) * std::uint64_t{stride_})))
            : 0;
    stream_stats_ = StreamStats{};
    stream_stats_.streamed = chunk_positions_ != 0;
    stream_stats_.chunk_bytes =
        chunk_positions_ == 0
            ? 0
            : std::uint64_t{chunk_positions_} * sizeof(V) * stride_;
    double replay_start_us = 0;
    round_blocks_flushed_ = 0;
    round_peak_stream_bytes_ = 0;
    if (recorder_ != nullptr) {
      replay_start_us = recorder_->now_us();
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kReplayBegin;
      e.value = stride_;
      e.bytes = plan_->fingerprint();
      recorder_->record(e);
    }
    const Topology& topo = plan_->topology();
    const std::uint16_t l = topo.num_layers();
    for (ExecState& s : state_) s.stream = StreamStats{};
    for (rank_t r = 0; r < plan_->num_ranks(); ++r) {
      // Recovery-capable engines price group deaths by input mass; noted
      // for dead and unconfigured ranks too, exactly as the node path's
      // load_values does — a dead-from-start group's mass IS the loss.
      if constexpr (std::is_arithmetic_v<V> &&
                    requires(Engine& e) { e.note_input_mass(r, 0.0); }) {
        double mass = 0.0;
        for (const V& v : out_values[r]) {
          mass += std::abs(static_cast<double>(v));
        }
        engine_->note_input_mass(r, mass);
      }
      const RankPlan& rp = plan_->rank_plan(r);
      if (!rp.configured) {
        // A rank the plan does not cover died during compilation; it can
        // only replay if it is still dead (same FaultPlan semantics as the
        // node path, where an unconfigured node never produces).
        KYLIX_CHECK_MSG(engine_->is_dead(r),
                        "alive rank not covered by the bound plan");
        continue;
      }
      KYLIX_CHECK_MSG(out_values[r].size() == rp.out0_size * stride_,
                      "contribution length does not match plan out set");
      ExecState& s = state_[r];
      refill(s.value_pool, s.v);
      s.v.assign(out_values[r].begin(), out_values[r].end());
      recycle(s.value_pool, out_values[r]);
    }
    for (std::uint16_t layer = 1; layer <= l; ++layer) {
      run_round(Phase::kReduceDown, layer,
                &ReduceExecutor::down_produce, &ReduceExecutor::down_consume);
      collect_spent();
      record_stream_round(Phase::kReduceDown, layer);
    }
    for (rank_t r = 0; r < plan_->num_ranks(); ++r) {
      if (engine_->is_dead(r) || !plan_->rank_plan(r).configured) continue;
      begin_up(r);
      charge(Phase::kReduceDown, l, r);
    }
    for (std::uint16_t layer = l; layer >= 1; --layer) {
      run_round(Phase::kReduceUp, layer,
                &ReduceExecutor::up_produce, &ReduceExecutor::up_consume);
      collect_spent();
      record_stream_round(Phase::kReduceUp, layer);
    }
    std::vector<std::vector<V>> results(plan_->num_ranks());
    for (rank_t r = 0; r < plan_->num_ranks(); ++r) {
      if (!engine_->is_dead(r) && plan_->rank_plan(r).configured) {
        results[r] = std::move(state_[r].vin);
      }
    }
    // Per-rank round stats were written by whichever thread consumed that
    // rank; merging here, after every round barrier, in ascending rank
    // order keeps the aggregate deterministic across engines.
    for (const ExecState& s : state_) stream_stats_.merge(s.stream);
    if (recorder_ != nullptr) {
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kReplayEnd;
      e.value = (recorder_->now_us() - replay_start_us) * 1e-6;
      e.bytes = plan_->fingerprint();
      recorder_->record(e);
    }
    return results;
  }

 private:
  /// Mutable per-rank replay state; same buffer economy as NodeScratch.
  struct ExecState {
    std::vector<std::vector<Letter<V>>> letters;  ///< per comm layer shells
    std::vector<std::vector<V>> value_pool;       ///< recycled packet buffers
    std::vector<V> v;       ///< downward (scatter-reduce) buffer
    std::vector<V> vin;     ///< upward (allgather) buffer
    std::vector<V> merged;  ///< ping-pong partner
    std::vector<std::uint32_t> last_touch;  ///< block-watermark scratch
    /// Consumed value buffers awaiting return to their sender's pool. Only
    /// the buffers move here — the inbox vector and its letter shells stay
    /// with the engine, which pools them round to round.
    std::vector<std::pair<rank_t, std::vector<V>>> spent;
    NodeWork work;
    StreamStats stream;  ///< this rank's round-local telemetry
  };

  /// Chunks a piece of `positions` key positions splits into (>= 1: empty
  /// pieces still send one letter so blocking receives stay balanced).
  [[nodiscard]] std::uint32_t chunks_for(std::size_t positions) const {
    if (chunk_positions_ == 0 || positions <= chunk_positions_) return 1;
    return static_cast<std::uint32_t>(
        (positions + chunk_positions_ - 1) / chunk_positions_);
  }

  /// Resize a letter-shell vector, recycling the value buffers of shells
  /// about to be destroyed (mode switches shrink the chunk count; their
  /// capacity must flow back to the pool, not to the heap).
  void resize_letters(ExecState& s, std::vector<Letter<V>>& letters,
                      std::size_t count) {
    for (std::size_t i = count; i < letters.size(); ++i) {
      recycle(s.value_pool, letters[i].packet.values);
    }
    letters.resize(count);
  }

  std::vector<Letter<V>>& down_produce(rank_t r, std::uint16_t layer) {
    const PlanLayer& cfg = plan_->rank_plan(r).layers[layer - 1];
    ExecState& s = state_[r];
    std::vector<Letter<V>>& letters = s.letters[layer - 1];
    std::size_t total = 0;
    for (std::uint32_t q = 0; q < cfg.group.size(); ++q) {
      total += chunks_for(cfg.out_split[q + 1] - cfg.out_split[q]);
    }
    resize_letters(s, letters, total);
    std::size_t slot = 0;
    for (std::uint32_t q = 0; q < cfg.group.size(); ++q) {
      const std::size_t piece = cfg.out_split[q + 1] - cfg.out_split[q];
      const std::uint32_t k = chunks_for(piece);
      for (std::uint32_t c = 0; c < k; ++c) {
        Letter<V>& letter = letters[slot++];
        letter.src = r;
        letter.dst = cfg.group[q];
        letter.packet.in_keys.clear();
        letter.packet.out_keys.clear();
        letter.packet.stride = stride_;
        letter.packet.chunk_index = c;
        letter.packet.chunk_count = k;
        const std::size_t lo =
            cfg.out_split[q] + std::size_t{c} * chunk_positions_;
        const std::size_t hi =
            k == 1 ? cfg.out_split[q + 1]
                   : std::min(cfg.out_split[q + 1], lo + chunk_positions_);
        refill(s.value_pool, letter.packet.values);
        letter.packet.values.assign(
            s.v.begin() + static_cast<std::ptrdiff_t>(lo * stride_),
            s.v.begin() + static_cast<std::ptrdiff_t>(hi * stride_));
        s.work.gather_elements +=
            static_cast<double>(letter.packet.values.size());
      }
      ++s.stream.letters;
      s.stream.chunks += k;
      s.stream.max_chunks_per_letter =
          std::max(s.stream.max_chunks_per_letter, k);
    }
    return letters;
  }

  void down_consume(rank_t r, std::uint16_t layer,
                    std::vector<Letter<V>>&& inbox) {
    const PlanLayer& cfg = plan_->rank_plan(r).layers[layer - 1];
    ExecState& s = state_[r];
    note_buffer_envelopes(s, inbox);
    note_block_flushes(s, inbox, cfg.out_union_size,
                       [&](const Letter<V>& letter, std::size_t offset,
                           std::size_t positions) {
                         const std::uint32_t q =
                             plan_->topology().digit(layer, letter.src);
                         const std::span<const pos_t> map(cfg.out_maps[q]);
                         // Maps are strictly increasing within one piece,
                         // so the chunk's union footprint is [front, back].
                         return std::pair<std::size_t, std::size_t>(
                             map[offset], map[offset + positions - 1]);
                       });
    std::vector<V>& merged = s.merged;
    merged.assign(cfg.out_union_size * stride_, Op::template identity<V>());
    // Inbox is sorted by (src, chunk): ascending sender digit, ascending
    // chunk within a sender — the letter-at-once per-position combine order
    // exactly, so eager chunk scatters are bit-identical.
    for (Letter<V>& letter : inbox) {
      const std::uint32_t q =
          plan_->topology().digit(layer, letter.src);
      const std::size_t piece = cfg.recv_out_sizes[q];
      const auto [offset, positions] =
          chunk_slice(letter.packet, piece,
                      "reduce payload does not match planned piece size");
      scatter_combine_strided<V, Op>(
          std::span<V>(merged), std::span<const V>(letter.packet.values),
          std::span<const pos_t>(cfg.out_maps[q]).subspan(offset, positions),
          stride_);
      s.work.combine_elements +=
          static_cast<double>(letter.packet.values.size());
      s.spent.emplace_back(letter.src, std::move(letter.packet.values));
    }
    std::swap(s.v, merged);
  }

  void begin_up(rank_t r) {
    const RankPlan& rp = plan_->rank_plan(r);
    ExecState& s = state_[r];
    KYLIX_DCHECK(s.v.size() ==
                 rp.out_sizes[plan_->topology().num_layers()] * stride_);
    refill(s.value_pool, s.vin);
    s.vin.reserve(std::max(rp.up_capacity, rp.bottom_map.size()) * stride_);
    if (rp.missing_bottom.empty()) {
      gather_strided_into(std::span<const V>(s.v), rp.bottom_map, stride_,
                          s.vin);
    } else {
      // Degraded cold path: kMissingPos entries resolve to identity.
      s.vin.clear();
      for (const pos_t pos : rp.bottom_map) {
        for (std::uint32_t c = 0; c < stride_; ++c) {
          s.vin.push_back(pos == kMissingPos
                              ? Op::template identity<V>()
                              : s.v[pos * stride_ + c]);
        }
      }
    }
    s.work.gather_elements += static_cast<double>(rp.bottom_map.size());
  }

  std::vector<Letter<V>>& up_produce(rank_t r, std::uint16_t layer) {
    const PlanLayer& cfg = plan_->rank_plan(r).layers[layer - 1];
    ExecState& s = state_[r];
    std::vector<Letter<V>>& letters = s.letters[layer - 1];
    std::size_t total = 0;
    for (std::uint32_t q = 0; q < cfg.group.size(); ++q) {
      total += chunks_for(cfg.in_maps[q].size());
    }
    resize_letters(s, letters, total);
    std::size_t slot = 0;
    for (std::uint32_t q = 0; q < cfg.group.size(); ++q) {
      const std::size_t piece = cfg.in_maps[q].size();
      const std::uint32_t k = chunks_for(piece);
      for (std::uint32_t c = 0; c < k; ++c) {
        Letter<V>& letter = letters[slot++];
        letter.src = r;
        letter.dst = cfg.group[q];
        letter.packet.in_keys.clear();
        letter.packet.out_keys.clear();
        letter.packet.stride = stride_;
        letter.packet.chunk_index = c;
        letter.packet.chunk_count = k;
        const std::size_t lo = std::size_t{c} * chunk_positions_;
        const std::size_t hi =
            k == 1 ? piece : std::min(piece, lo + chunk_positions_);
        refill(s.value_pool, letter.packet.values);
        gather_strided_into(
            std::span<const V>(s.vin),
            std::span<const pos_t>(cfg.in_maps[q]).subspan(lo, hi - lo),
            stride_, letter.packet.values);
        s.work.gather_elements +=
            static_cast<double>(letter.packet.values.size());
      }
      ++s.stream.letters;
      s.stream.chunks += k;
      s.stream.max_chunks_per_letter =
          std::max(s.stream.max_chunks_per_letter, k);
    }
    return letters;
  }

  void up_consume(rank_t r, std::uint16_t layer,
                  std::vector<Letter<V>>&& inbox) {
    const PlanLayer& cfg = plan_->rank_plan(r).layers[layer - 1];
    ExecState& s = state_[r];
    note_buffer_envelopes(s, inbox);
    note_block_flushes(s, inbox, cfg.in_prev_size,
                       [&](const Letter<V>& letter, std::size_t offset,
                           std::size_t positions) {
                         const std::uint32_t q =
                             plan_->topology().digit(layer, letter.src);
                         // Allgather chunks land contiguously at the piece's
                         // split boundary.
                         const std::size_t lo = cfg.in_split[q] + offset;
                         return std::pair<std::size_t, std::size_t>(
                             lo, lo + positions - 1);
                       });
    std::vector<V>& below = s.merged;
    below.assign(cfg.in_prev_size * stride_, Op::template identity<V>());
    for (Letter<V>& letter : inbox) {
      const std::uint32_t q =
          plan_->topology().digit(layer, letter.src);
      const std::size_t piece = cfg.in_split[q + 1] - cfg.in_split[q];
      const auto [offset, positions] =
          chunk_slice(letter.packet, piece,
                      "allgather payload does not match planned piece size");
      const std::size_t first = (cfg.in_split[q] + offset) * stride_;
      std::copy(letter.packet.values.begin(), letter.packet.values.end(),
                below.begin() + static_cast<std::ptrdiff_t>(first));
      s.spent.emplace_back(letter.src, std::move(letter.packet.values));
    }
    std::swap(s.vin, below);
  }

  /// Validate one letter's chunk framing against the planned piece length
  /// and return its {position offset, position count} within the piece.
  [[nodiscard]] std::pair<std::size_t, std::size_t> chunk_slice(
      const Packet<V>& packet, std::size_t piece, const char* what) const {
    std::size_t offset = 0;
    std::size_t positions = piece;
    if (packet.chunk_count > 1) {
      KYLIX_CHECK_MSG(chunk_positions_ != 0 &&
                          packet.chunk_count == chunks_for(piece) &&
                          packet.chunk_index < packet.chunk_count,
                      "chunk framing does not match the plan's schedule");
      offset = std::size_t{packet.chunk_index} * chunk_positions_;
      positions = std::min(chunk_positions_, piece - offset);
    }
    KYLIX_CHECK_MSG(packet.values.size() == positions * stride_, what);
    return {offset, positions};
  }

  /// Record what this consume had to buffer: the whole inbox (letter-at-once
  /// envelope) vs. one in-flight chunk per sender (streamed envelope, the
  /// O(chunk x in-degree) cap eager combining buys). Requires the inbox to
  /// be (src, chunk)-sorted, which every engine guarantees.
  void note_buffer_envelopes(ExecState& s,
                             const std::vector<Letter<V>>& inbox) const {
    std::uint64_t letter_bytes = 0;
    std::uint64_t stream_bytes = 0;
    std::uint64_t src_max = 0;
    rank_t src = 0;
    bool first = true;
    for (const Letter<V>& letter : inbox) {
      const std::uint64_t bytes =
          sizeof(V) * std::uint64_t{letter.packet.values.size()};
      letter_bytes += bytes;
      if (first || letter.src != src) {
        stream_bytes += src_max;
        src_max = 0;
        src = letter.src;
        first = false;
      }
      src_max = std::max(src_max, bytes);
    }
    stream_bytes += src_max;
    s.stream.peak_letter_buffer_bytes =
        std::max(s.stream.peak_letter_buffer_bytes, letter_bytes);
    s.stream.peak_stream_buffer_bytes =
        std::max(s.stream.peak_stream_buffer_bytes,
                 chunk_positions_ == 0 ? letter_bytes : stream_bytes);
  }

  /// Block watermarks: the round's target buffer is partitioned into blocks
  /// of chunk_positions_ key positions; block b flushes downstream after the
  /// last chunk touching it (index t_b in the deterministic processing
  /// order) combines. `range` maps (letter, piece offset, positions) to the
  /// inclusive target-position range the chunk writes. The flush timeline is
  /// what pipelined_reduce_time prices; here it feeds blocks_flushed and the
  /// overlap ratio. Scratch is pooled (last_touch keeps capacity), so warm
  /// streamed rounds allocate nothing.
  template <typename RangeFn>
  void note_block_flushes(ExecState& s, const std::vector<Letter<V>>& inbox,
                          std::size_t target_positions,
                          RangeFn&& range) const {
    const std::size_t span = chunk_positions_;
    if (span == 0 || target_positions == 0 || inbox.empty()) return;
    const std::size_t blocks = (target_positions + span - 1) / span;
    s.last_touch.assign(blocks, 0);
    for (std::uint32_t i = 0; i < inbox.size(); ++i) {
      const Letter<V>& letter = inbox[i];
      if (letter.packet.values.empty()) continue;
      const std::size_t positions = letter.packet.values.size() / stride_;
      const std::size_t offset =
          std::size_t{letter.packet.chunk_index} * span;
      const auto [lo, hi] = range(letter, offset, positions);
      for (std::size_t b = lo / span; b <= hi / span; ++b) {
        s.last_touch[b] = i;
      }
    }
    const double last = static_cast<double>(inbox.size()) - 1.0;
    for (std::size_t b = 0; b < blocks; ++b) {
      ++s.stream.blocks_flushed;
      ++s.stream.overlap_blocks;
      if (last > 0.0) {
        s.stream.overlap_weight +=
            (last - static_cast<double>(s.last_touch[b])) / last;
      }
    }
  }

  /// After each round barrier, diff the summed per-rank stream telemetry
  /// against the reduce-so-far totals and turn the deltas into flight
  /// events: one kStreamFlush per round that flushed blocks, one kWatermark
  /// whenever the peak stream-buffer envelope grew. Driving thread only.
  void record_stream_round(Phase phase, std::uint16_t layer) {
    if (recorder_ == nullptr || chunk_positions_ == 0) return;
    std::uint64_t blocks = 0;
    std::uint64_t peak = 0;
    for (const ExecState& s : state_) {
      blocks += s.stream.blocks_flushed;
      peak = std::max(peak, s.stream.peak_stream_buffer_bytes);
    }
    if (blocks > round_blocks_flushed_) {
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kStreamFlush;
      e.phase = phase;
      e.layer = layer;
      e.value = static_cast<double>(blocks - round_blocks_flushed_);
      recorder_->record(e);
      round_blocks_flushed_ = blocks;
    }
    if (peak > round_peak_stream_bytes_) {
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kWatermark;
      e.phase = phase;
      e.layer = layer;
      e.bytes = peak;
      recorder_->record(e);
      round_peak_stream_bytes_ = peak;
    }
  }

  template <typename ProduceFn, typename ConsumeFn>
  void run_round(Phase phase, std::uint16_t layer, ProduceFn produce,
                 ConsumeFn consume) {
    engine_->round(
        phase, layer,
        [&](rank_t r) -> std::vector<Letter<V>>& {
          return (this->*produce)(r, layer);
        },
        [&](rank_t r) -> const std::vector<rank_t>& {
          return plan_->rank_plan(r).layers[layer - 1].group;
        },
        [&](rank_t r, std::vector<Letter<V>>&& inbox) {
          (this->*consume)(r, layer, std::move(inbox));
          charge(phase, layer, r);
        });
  }

  void charge(Phase phase, std::uint16_t layer, rank_t r) {
    const NodeWork work = std::exchange(state_[r].work, NodeWork{});
    if (compute_ == nullptr || layer == 0) return;
    const double seconds =
        compute_->merge_time(work.merge_elements, work.merge_ways) +
        compute_->combine_time(work.combine_elements) +
        compute_->gather_time(work.gather_elements);
    engine_->charge_compute(phase, layer, r, seconds);
  }

  /// Chunked schedules are asymmetric — a rank rarely receives as many
  /// chunks as it sends — so recycling a spent buffer into the consumer's
  /// pool would slowly drain producer pools and hit the allocator on every
  /// warm replay. Consumers instead park their consumed inbox in `spent`;
  /// at the single-threaded barrier after each round the value buffers go
  /// back to the pool of the rank that sent them, so every producer opens
  /// the next round holding exactly the buffers (and capacities) it used
  /// last time.
  void collect_spent() {
    for (ExecState& s : state_) {
      for (auto& [src, buf] : s.spent) {
        KYLIX_DCHECK(src < state_.size());
        recycle(state_[src].value_pool, buf);
      }
      s.spent.clear();
    }
  }

  template <typename T>
  static void refill(std::vector<std::vector<T>>& pool, std::vector<T>& buf) {
    if (buf.capacity() == 0 && !pool.empty()) {
      buf = std::move(pool.back());
      pool.pop_back();
      buf.clear();
    }
  }
  template <typename T>
  static void recycle(std::vector<std::vector<T>>& pool, std::vector<T>& buf) {
    if (buf.capacity() > 0) pool.push_back(std::move(buf));
  }

  Engine* engine_ = nullptr;
  const ComputeModel* compute_ = nullptr;
  std::shared_ptr<const CollectivePlan> plan_;
  std::uint32_t stride_ = 1;
  bool streaming_ = false;
  std::uint64_t chunk_bytes_override_ = 0;
  /// Chunk length in key positions for the reduce in flight (0 means
  /// letter-at-once); frozen at the top of reduce_strided.
  std::size_t chunk_positions_ = 0;
  StreamStats stream_stats_;
  obs::FlightRecorder* recorder_ = nullptr;
  std::uint64_t round_blocks_flushed_ = 0;   ///< reduce-so-far flush total
  std::uint64_t round_peak_stream_bytes_ = 0;  ///< reduce-so-far watermark
  std::vector<ExecState> state_;
};

}  // namespace kylix
