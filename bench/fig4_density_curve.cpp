// Figure 4 — partition density as a function of the normalized Poisson
// scaling factor λ/λ_0.9, for power-law exponents α ∈ {0.5, 1.0, 1.5, 2.0}.
//
// This is the lookup chart driving the §IV design workflow ("measure the
// density … read off the λ value … multiply by the layer degree … read off
// the new density"). The paper notes the curve shape depends only modestly
// on α; the series below show exactly that.
#include <cstdio>
#include <vector>

#include "powerlaw/model.hpp"

int main() {
  using kylix::PowerLawModel;
  constexpr std::uint64_t kFeatures = 1 << 18;
  const std::vector<double> alphas = {0.5, 1.0, 1.5, 2.0};
  std::vector<PowerLawModel> models;
  std::vector<double> lambda09;
  for (double alpha : alphas) {
    models.emplace_back(kFeatures, alpha);
    lambda09.push_back(models.back().lambda_for_density(0.9));
  }

  std::printf("# Figure 4: density f(lambda) vs normalized lambda "
              "(n = 2^18)\n");
  std::printf("%-14s", "lambda/l0.9");
  for (double alpha : alphas) std::printf(" alpha=%-8.1f", alpha);
  std::printf("\n");
  for (double norm = 1.0 / (1 << 20); norm <= 1.0 + 1e-9; norm *= 2) {
    std::printf("%-14.3g", norm);
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      std::printf(" %-14.6f", models[i].density(norm * lambda09[i]));
    }
    std::printf("\n");
  }

  std::printf("\n# zoomed low-density region (the regime of sparse "
              "partitions)\n");
  std::printf("%-14s", "lambda/l0.9");
  for (double alpha : alphas) std::printf(" alpha=%-8.1f", alpha);
  std::printf("\n");
  for (double norm = 1e-6; norm <= 1e-3 + 1e-12; norm *= 4) {
    std::printf("%-14.3g", norm);
    for (std::size_t i = 0; i < alphas.size(); ++i) {
      std::printf(" %-14.8f", models[i].density(norm * lambda09[i]));
    }
    std::printf("\n");
  }
  return 0;
}
