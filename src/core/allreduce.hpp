// SparseAllreduce — the public orchestration API (§III).
//
// Configuration is a *compiler*: configure()/compile() run the downward
// configuration pass once and freeze every rank's routing state (unions,
// positional maps, split boundaries, per-round piece sizes) into an
// immutable CollectivePlan (core/plan.hpp). Value traffic is *replay*:
// reduce() hands the plan to a ReduceExecutor (core/executor.hpp) that
// re-runs the frozen schedule with fresh buffers — bit-identically to
// driving the nodes directly, but touching no routing state. Usage patterns:
//
//   * configure() once, reduce() many times — graph algorithms whose in/out
//     vertex sets are fixed across iterations (PageRank, §III). The first
//     call compiles; every reduce is a plan replay.
//   * configure(plan) / configure_cached() — adopt a previously compiled
//     (possibly PlanCache-served) plan, skipping configuration entirely.
//   * reduce_strided() — push k interleaved payload vectors through one
//     replay, amortizing routing across payloads.
//   * reduce_with_config() — minibatch workloads whose sets change every
//     step; configuration and reduction share combined messages, saving a
//     full downward pass. This path stays node-driven (no plan is frozen:
//     the routing would be thrown away next step anyway).
//
// Modeled compute (tree merges, scatter-adds, gathers) is charged to the
// engine per round when a ComputeModel is supplied, so timing reports
// include local work, not just wire time.
#pragma once

#include <algorithm>
#include <cmath>
#include <concepts>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "cluster/netmodel.hpp"
#include "common/hash.hpp"
#include "core/autotune.hpp"
#include "core/degraded.hpp"
#include "core/executor.hpp"
#include "core/node.hpp"
#include "core/plan.hpp"
#include "core/plan_cache.hpp"
#include "core/topology.hpp"

namespace kylix {

template <typename V, typename Op = OpSum, typename Engine = void>
class SparseAllreduce {
 public:
  /// `engine` must outlive the allreduce; its rank count must match the
  /// topology. `compute` is optional (no compute charging when null).
  SparseAllreduce(Engine* engine, Topology topology,
                  const ComputeModel* compute = nullptr)
      : engine_(engine), topo_(std::move(topology)), compute_(compute) {
    KYLIX_CHECK(engine_ != nullptr);
    KYLIX_CHECK_MSG(engine_->num_ranks() == topo_.num_machines(),
                    "engine/topology machine count mismatch");
  }

  [[nodiscard]] const Topology& topology() const { return topo_; }

  /// Tell the compiler what network it is scheduling for (optional, not
  /// owned, must outlive the allreduce): compile() then stamps the plan's
  /// streaming chunk size with NetworkModel::min_efficient_packet — the
  /// Fig. 2 knee, the smallest chunk that still runs the wire efficiently.
  void set_network(const NetworkModel* net) { net_ = net; }

  /// Tuning override for the streaming chunk size in payload bytes: applies
  /// to plans compiled afterwards AND to replays of already-adopted plans
  /// (0 clears both, restoring the compiled value).
  void set_chunk_bytes(std::uint64_t bytes) {
    chunk_bytes_ = bytes;
    executor_.set_chunk_bytes_override(bytes);
  }

  /// Toggle streamed replay (chunked letters, eager per-chunk combining —
  /// DESIGN §9). Applies to plan-based reduces; the combined node-driven
  /// path ignores it. Bit-identical to letter-at-once on every engine.
  void set_streaming(bool on) { executor_.set_streaming(on); }
  [[nodiscard]] bool streaming() const { return executor_.streaming(); }

  /// Telemetry of the last plan-based reduce (chunks, block flushes,
  /// buffer envelopes, overlap ratio).
  [[nodiscard]] const StreamStats& stream_stats() const {
    return executor_.stream_stats();
  }

  /// Attach a flight recorder to plan-based replays (optional, not owned):
  /// replay markers plus per-round stream-flush/watermark events.
  void set_flight_recorder(obs::FlightRecorder* recorder) {
    executor_.set_flight_recorder(recorder);
  }

  /// Step 1, separate form: exchange and union index sets, compiling the
  /// routing into a plan. `in_sets[r]` / `out_sets[r]` are machine r's
  /// requested / contributed key sets.
  void configure(std::vector<KeySet> in_sets, std::vector<KeySet> out_sets) {
    (void)compile(std::move(in_sets), std::move(out_sets));
  }

  /// Run the configuration pass and freeze its result into a shareable
  /// CollectivePlan; this allreduce is left configured against it (nodes
  /// are retained for introspection). The plan is keyed by a fingerprint of
  /// the input sets, so PlanCache can serve it to later iterations.
  [[nodiscard]] std::shared_ptr<const CollectivePlan> compile(
      std::vector<KeySet> in_sets, std::vector<KeySet> out_sets) {
    if (topo_.hierarchical()) {
      return compile_hierarchical(std::move(in_sets), std::move(out_sets));
    }
    const std::uint64_t fp =
        salt_fingerprint(fingerprint_key_sets(in_sets, out_sets));
    mode_ = Mode::kNone;
    build_nodes(std::move(in_sets), std::move(out_sets));
    for (std::uint16_t layer = 1; layer <= topo_.num_layers(); ++layer) {
      run_round(Phase::kConfig, layer, &Node::config_produce,
                &Node::config_consume);
    }
    finish_configure();
    auto plan = std::make_shared<CollectivePlan>(topo_, fp);
    for (const Node& node : nodes_) {
      if (node.configured()) {
        node.freeze_into(plan->mutable_rank_plan(node.rank()));
      }
    }
    freeze_union_kernels(*plan);
    plan->set_chunk_bytes(
        chunk_bytes_ != 0
            ? chunk_bytes_
            : (net_ != nullptr
                   ? static_cast<std::uint64_t>(net_->min_efficient_packet())
                   : 0));
    plan_ = std::move(plan);
    if (plan_->any_configured()) {
      executor_.bind(engine_, plan_, compute_, net_);
      mode_ = Mode::kPlan;
    }
    return plan_;
  }

  /// Adopt a previously compiled plan (e.g. a PlanCache hit), skipping the
  /// configuration pass entirely. The plan's topology must match. node() is
  /// unavailable on this path — the whole point is that no nodes exist.
  void configure(std::shared_ptr<const CollectivePlan> plan) {
    KYLIX_CHECK(plan != nullptr);
    KYLIX_CHECK_MSG(
        plan->topology().num_machines() == topo_.num_machines() &&
            plan->topology().cores_per_machine() ==
                topo_.cores_per_machine() &&
            std::equal(plan->topology().degrees().begin(),
                       plan->topology().degrees().end(),
                       topo_.degrees().begin(), topo_.degrees().end()),
        "adopted plan was compiled for a different topology");
    mode_ = Mode::kNone;
    nodes_.clear();
    plan_ = std::move(plan);
    executor_.bind(engine_, plan_, compute_, net_);
    mode_ = Mode::kPlan;
  }

  /// Cache-aware configure: fingerprint the sets, adopt on a hit, compile
  /// and insert on a miss. Returns true iff the cache served the plan.
  bool configure_cached(PlanCache& cache, std::vector<KeySet> in_sets,
                        std::vector<KeySet> out_sets) {
    const std::uint64_t fp =
        salt_fingerprint(PlanCache::fingerprint(in_sets, out_sets));
    if (std::shared_ptr<const CollectivePlan> plan = cache.find(fp)) {
      configure(std::move(plan));
      return true;
    }
    cache.insert(compile(std::move(in_sets), std::move(out_sets)));
    return false;
  }

  /// The plan the last configure()/compile() produced or adopted (null
  /// before any, and untouched by reduce_with_config()).
  [[nodiscard]] const std::shared_ptr<const CollectivePlan>& plan() const {
    return plan_;
  }

  /// Step 2: push contributions down and pull requested values back up.
  /// `out_values[r]` aligns with the key order of machine r's out set;
  /// the result[r] aligns with the key order of machine r's in set.
  /// Reusable: call any number of times after one configure(). Plan-based
  /// configurations replay the compiled schedule (no routing state is
  /// touched); after reduce_with_config() the retained nodes re-reduce.
  [[nodiscard]] std::vector<std::vector<V>> reduce(
      std::vector<std::vector<V>> out_values) {
    if (mode_ == Mode::kPlan) return executor_.reduce(std::move(out_values));
    // Dead ranks never configure (degraded completion), so the precondition
    // is that some alive node finished configuring.
    KYLIX_CHECK_MSG(mode_ == Mode::kCombined &&
                        std::any_of(nodes_.begin(), nodes_.end(),
                                    [](const Node& n) {
                                      return n.configured();
                                    }),
                    "reduce() before configure()");
    load_values(std::move(out_values));
    for (std::uint16_t layer = 1; layer <= topo_.num_layers(); ++layer) {
      run_round(Phase::kReduceDown, layer, &Node::down_produce,
                &Node::down_consume);
    }
    return run_up_pass();
  }

  /// Multi-payload replay: reduce `stride` value vectors through one pass.
  /// `out_values[r]` interleaves the payloads key-major (the stride values
  /// of contributed key p occupy [p*stride, (p+1)*stride)); results use the
  /// same layout over requested keys. Bit-identical to `stride` independent
  /// reduce() calls per component. Requires a plan-based configuration.
  [[nodiscard]] std::vector<std::vector<V>> reduce_strided(
      std::vector<std::vector<V>> out_values, std::uint32_t stride) {
    KYLIX_CHECK_MSG(mode_ == Mode::kPlan,
                    "reduce_strided() requires a compiled plan");
    return executor_.reduce_strided(std::move(out_values), stride);
  }

  /// Combined configuration + reduction (minibatch mode): config messages
  /// carry values, so the separate downward value pass disappears.
  [[nodiscard]] std::vector<std::vector<V>> reduce_with_config(
      std::vector<KeySet> in_sets, std::vector<KeySet> out_sets,
      std::vector<std::vector<V>> out_values) {
    // Combined mode is node-driven and throws its routing away per step;
    // the shared-memory tier only pays off on replayed plans, so the
    // hierarchical path deliberately does not exist here.
    KYLIX_CHECK_MSG(!topo_.hierarchical(),
                    "reduce_with_config() supports flat topologies only "
                    "(compile a hierarchical plan and replay it instead)");
    mode_ = Mode::kCombined;
    build_nodes(std::move(in_sets), std::move(out_sets));
    load_values(std::move(out_values));
    for (Node& node : nodes_) node.set_combined(true);
    for (std::uint16_t layer = 1; layer <= topo_.num_layers(); ++layer) {
      run_round(Phase::kConfig, layer, &Node::config_produce,
                &Node::config_consume);
    }
    for (Node& node : nodes_) node.set_combined(false);
    finish_configure();
    return run_up_pass();
  }

  /// Machine r's node, for tests and volume introspection (Fig. 5 reads the
  /// per-layer set sizes off these). Unavailable after adopting a
  /// precompiled plan (no nodes exist on that path — read the plan instead).
  [[nodiscard]] const KylixNode<V, Op>& node(rank_t rank) const {
    KYLIX_CHECK_MSG(rank < nodes_.size(),
                    "node() unavailable: configuration was adopted from a "
                    "precompiled plan");
    return nodes_[rank];
  }

  /// Mean out-set size over alive machines at node layers 0..l: the
  /// measured per-node elements P_i entering communication layer i is
  /// entry i-1, and the last entry is the fully reduced bottom. This is the
  /// measured column of the run report's D_i / P_i comparison (src/obs).
  /// Served from the nodes when they exist, from the adopted plan otherwise.
  [[nodiscard]] std::vector<double> measured_layer_elements() const {
    if (nodes_.empty()) {
      KYLIX_CHECK_MSG(plan_ != nullptr, "no configured state to measure");
      std::vector<double> mean(topo_.num_layers() + 1, 0.0);
      rank_t alive = 0;
      for (rank_t r = 0; r < plan_->num_ranks(); ++r) {
        const RankPlan& rp = plan_->rank_plan(r);
        // Hierarchical members carry no per-layer sizes; only union-holding
        // ranks (flat ranks, host leaders) enter the Prop 4.1 averages.
        if (!rp.configured || engine_->is_dead(r) ||
            rp.out_sizes.size() != mean.size()) {
          continue;
        }
        ++alive;
        for (std::uint16_t i = 0; i <= topo_.num_layers(); ++i) {
          mean[i] += static_cast<double>(rp.out_sizes[i]);
        }
      }
      if (alive > 0) {
        for (double& v : mean) v /= static_cast<double>(alive);
      }
      return mean;
    }
    std::vector<double> mean(topo_.num_layers() + 1, 0.0);
    rank_t alive = 0;
    for (const Node& node : nodes_) {
      // Unconfigured nodes (dead ranks, hierarchical non-leaders) hold no
      // per-layer unions to measure.
      if (engine_->is_dead(node.rank()) || !node.configured()) continue;
      ++alive;
      for (std::uint16_t i = 0; i <= topo_.num_layers(); ++i) {
        mean[i] += static_cast<double>(node.out_set(i).size());
      }
    }
    if (alive > 0) {
      for (double& v : mean) v /= static_cast<double>(alive);
    }
    return mean;
  }

  /// Feed the next compile() measured per-layer densities from a previous
  /// epoch (same l+1 shape as measured_layer_elements()): the union-kernel
  /// autotune then sizes itself from observed survivor volumes instead of
  /// the fresh pass's own measurement. One-shot — consumed by the next
  /// compile, cleared afterwards. The EpochedPlanManager uses this to carry
  /// the old epoch's measurements into the healed plan.
  void set_layer_density_hints(std::vector<double> mean_elements) {
    layer_hints_ = std::move(mean_elements);
  }

  /// What the last completed run lost, if anything (core/degraded.hpp).
  /// Engines without recovery support (BspEngine & friends) always report
  /// an exact run. Call after reduce() / reduce_with_config() returns.
  [[nodiscard]] DegradedReport degraded_report() const {
    DegradedReport rep;
    if constexpr (requires(const Engine& e) {
                    e.death_records();
                    e.recovery_stats();
                    { e.was_dead_at_start(rank_t{0}) }
                        -> std::convertible_to<bool>;
                    { e.lost_mass_fraction() }
                        -> std::convertible_to<double>;
                  }) {
      rep.deaths = engine_->death_records();
      rep.recovery = engine_->recovery_stats();
      rep.degraded = !rep.deaths.empty();
      if (!rep.degraded) return rep;
      rep.mass_lost_fraction = engine_->lost_mass_fraction();
      for (const DeathRecord& d : rep.deaths) {
        if (!contains(rep.lost_logical, d.logical)) {
          rep.lost_logical.push_back(d.logical);
          if (engine_->was_dead_at_start(d.logical)) {
            rep.lost_from_start.push_back(d.logical);
          }
          // A group's inputs entered the reduction iff it completed its
          // first reduce-down merge. Its chronologically first record
          // tells: dead during config, at {down, 1}, or from the start
          // means the contribution never left the group.
          if (engine_->was_dead_at_start(d.logical) ||
              d.phase == Phase::kConfig ||
              (d.phase == Phase::kReduceDown && d.layer <= 1)) {
            rep.inputs_lost.push_back(d.logical);
          }
        }
        rep.degraded_ranges.push_back(
            topo_.key_range(record_node_layer(d), d.logical));
      }
      std::sort(rep.lost_logical.begin(), rep.lost_logical.end());
      std::sort(rep.lost_from_start.begin(), rep.lost_from_start.end());
      std::sort(rep.inputs_lost.begin(), rep.inputs_lost.end());
      prune_ranges(rep.degraded_ranges);
      // Requested indices that resolved to no surviving contributor, per
      // alive requester and globally (sorted, deduplicated). Per-rank state
      // comes from the nodes when they exist, from the adopted plan's
      // frozen copies otherwise.
      const bool from_plan = nodes_.empty() && plan_ != nullptr;
      const rank_t m = topo_.num_machines();
      const auto rank_configured = [&](rank_t r) {
        return from_plan ? plan_->rank_plan(r).configured
                         : (r < nodes_.size() && nodes_[r].configured());
      };
      const auto rank_missing =
          [&](rank_t r) -> const std::vector<key_t>& {
        return from_plan ? plan_->rank_plan(r).missing_bottom
                         : nodes_[r].missing_bottom_keys();
      };
      const auto rank_in0 = [&](rank_t r) -> const KeySet& {
        return from_plan ? plan_->rank_plan(r).in0 : nodes_[r].in_set(0);
      };
      rep.lost_keys_per_rank.resize(m);
      for (rank_t r = 0; r < m; ++r) {
        if (engine_->is_dead(r) || !rank_configured(r)) continue;
        for (const key_t key : rank_missing(r)) {
          rep.lost_keys.push_back(key);
        }
      }
      std::sort(rep.lost_keys.begin(), rep.lost_keys.end());
      rep.lost_keys.erase(
          std::unique(rep.lost_keys.begin(), rep.lost_keys.end()),
          rep.lost_keys.end());
      for (rank_t r = 0; r < m; ++r) {
        if (engine_->is_dead(r) || !rank_configured(r)) continue;
        const KeySet& in0 = rank_in0(r);
        for (std::size_t p = 0; p < in0.size(); ++p) {
          const key_t key = in0[p];
          if (rep.covers(key) ||
              std::binary_search(rep.lost_keys.begin(), rep.lost_keys.end(),
                                 key)) {
            rep.lost_keys_per_rank[r].push_back(key);
          }
        }
      }
    }
    return rep;
  }

 private:
  using Node = KylixNode<V, Op>;

  /// Hierarchical compile (DESIGN §13). The shared-memory tier is compiled
  /// here: per-host unions of the alive members' {in, out} sets, whose
  /// piece->union positional maps from union_into ARE the intra-stage
  /// scatter/gather maps. The inter-node butterfly is then the ordinary
  /// flat configuration pass over host leaders (canonical rank host*c)
  /// holding those unions — config rounds are gated to leaders, so the wire
  /// schedule is exactly the flat schedule over one rank per host. Members
  /// get API-surface RankPlans (in0, out0_size, missing_bottom; no layers);
  /// leaders keep host-level replay state but member-level in0/out0_size,
  /// since contributions and results align with each rank's own sets.
  [[nodiscard]] std::shared_ptr<const CollectivePlan> compile_hierarchical(
      std::vector<KeySet> in_sets, std::vector<KeySet> out_sets) {
    const rank_t m = topo_.num_machines();
    KYLIX_CHECK(in_sets.size() == m && out_sets.size() == m);
    const std::uint64_t fp =
        salt_fingerprint(fingerprint_key_sets(in_sets, out_sets));
    mode_ = Mode::kNone;
    const rank_t hosts = topo_.num_hosts();
    const std::uint32_t c = topo_.cores_per_machine();

    std::vector<IntraHost> intra(hosts);
    std::vector<KeySet> node_in(m);
    std::vector<KeySet> node_out(m);
    UnionResult host_union;
    MergeScratch merge_scratch;
    std::vector<std::span<const key_t>> member_keys;
    for (rank_t h = 0; h < hosts; ++h) {
      IntraHost& ih = intra[h];
      const rank_t canonical = topo_.leader_rank(h);
      for (std::uint32_t k = 0; k < c; ++k) {
        const rank_t r = canonical + k;
        if (!engine_->is_dead(r)) ih.members.push_back(r);
      }
      // Canonical-leader policy: no election, no rank rewriting. A host
      // whose canonical leader is dead at compile time contributes nothing
      // to the inter-node exchange; its surviving members complete
      // degraded (every requested key resolves to identity, filled below).
      if (ih.members.empty() || engine_->is_dead(canonical)) continue;
      ih.leader = canonical;
      member_keys.clear();
      for (const rank_t r : ih.members) {
        member_keys.push_back(out_sets[r].keys());
      }
      union_into(member_keys, host_union, merge_scratch);
      ih.out_maps = std::move(host_union.maps);
      ih.out_union_size = host_union.keys.size();
      node_out[canonical] =
          KeySet::from_sorted_keys(std::vector<key_t>(host_union.keys));
      member_keys.clear();
      for (const rank_t r : ih.members) {
        member_keys.push_back(in_sets[r].keys());
      }
      union_into(member_keys, host_union, merge_scratch);
      ih.in_maps = std::move(host_union.maps);
      node_in[canonical] =
          KeySet::from_sorted_keys(std::vector<key_t>(host_union.keys));
      // Price the leader-side set unions of the config stage: the leader
      // walks every co-located member's key sets once over the memory bus.
      if constexpr (requires(Engine& e) {
                      e.charge_intra(Phase::kConfig, rank_t{0}, 0.0);
                    }) {
        double elements = 0.0;
        for (const rank_t r : ih.members) {
          elements +=
              static_cast<double>(in_sets[r].size() + out_sets[r].size());
        }
        const auto peers = static_cast<std::uint32_t>(ih.members.size());
        double seconds = 0.0;
        if (net_ != nullptr) {
          seconds += net_->intra_copy_time(elements * sizeof(key_t), peers);
        }
        if (compute_ != nullptr) {
          seconds += compute_->merge_time(elements, peers);
        }
        if (seconds > 0.0) {
          engine_->charge_intra(Phase::kConfig, ih.leader, seconds);
        }
      }
    }

    build_nodes(std::move(node_in), std::move(node_out));
    for (std::uint16_t layer = 1; layer <= topo_.num_layers(); ++layer) {
      run_round(Phase::kConfig, layer, &Node::config_produce,
                &Node::config_consume);
    }
    finish_configure();
    auto plan = std::make_shared<CollectivePlan>(topo_, fp);
    for (const Node& node : nodes_) {
      if (node.configured()) {
        node.freeze_into(plan->mutable_rank_plan(node.rank()));
      }
    }
    freeze_union_kernels(*plan);
    plan->set_chunk_bytes(
        chunk_bytes_ != 0
            ? chunk_bytes_
            : (net_ != nullptr
                   ? static_cast<std::uint64_t>(net_->min_efficient_packet())
                   : 0));
    for (rank_t h = 0; h < hosts; ++h) {
      const IntraHost& ih = intra[h];
      const std::vector<key_t>* host_missing =
          ih.leader != kNoLeader
              ? &plan->rank_plan(ih.leader).missing_bottom
              : nullptr;
      for (const rank_t r : ih.members) {
        RankPlan& rp = plan->mutable_rank_plan(r);
        rp.configured = true;
        rp.in0 = std::move(in_sets[r]);
        rp.out0_size = out_sets[r].size();
        // The leader keeps its host-level missing set (begin_up's degraded
        // cold path keys off it); members intersect their own requested
        // keys with it. A leaderless host lost every requested key.
        if (r == ih.leader) continue;
        rp.missing_bottom.clear();
        if (host_missing == nullptr) {
          rp.missing_bottom.assign(rp.in0.begin(), rp.in0.end());
        } else if (!host_missing->empty()) {
          for (const key_t key : rp.in0) {
            if (std::binary_search(host_missing->begin(),
                                   host_missing->end(), key)) {
              rp.missing_bottom.push_back(key);
            }
          }
        }
      }
    }
    plan->set_intra_hosts(std::move(intra));
    plan_ = std::move(plan);
    if (plan_->any_configured()) {
      executor_.bind(engine_, plan_, compute_, net_);
      mode_ = Mode::kPlan;
    }
    return plan_;
  }

  void build_nodes(std::vector<KeySet> in_sets, std::vector<KeySet> out_sets) {
    const rank_t m = topo_.num_machines();
    KYLIX_CHECK(in_sets.size() == m && out_sets.size() == m);
    // Nodes are rebuilt per configure/reduce_with_config call, but their
    // working storage persists here, so repeated minibatch steps reuse
    // warmed buffers instead of re-allocating every letter and union.
    nodes_.clear();
    if (scratch_.size() < m) scratch_.resize(m);
    nodes_.reserve(m);
    for (rank_t r = 0; r < m; ++r) {
      nodes_.emplace_back(&topo_, r, std::move(in_sets[r]),
                          std::move(out_sets[r]), &scratch_[r]);
    }
  }

  void load_values(std::vector<std::vector<V>> out_values) {
    KYLIX_CHECK(out_values.size() == nodes_.size());
    for (rank_t r = 0; r < nodes_.size(); ++r) {
      // Recovery-capable engines price group deaths by input mass Σ|v|.
      if constexpr (std::is_arithmetic_v<V> &&
                    requires(Engine& e) { e.note_input_mass(r, 0.0); }) {
        double mass = 0.0;
        for (const V& v : out_values[r]) {
          mass += std::abs(static_cast<double>(v));
        }
        engine_->note_input_mass(r, mass);
      }
      nodes_[r].begin_reduce(std::move(out_values[r]));
    }
  }

  void finish_configure() {
    // A recovery-capable engine that already lost a whole replica group
    // switches surviving nodes to degraded completion: unresolvable
    // requested indices become identity instead of aborting the run.
    bool degraded = false;
    if constexpr (requires(Engine& e) {
                    { e.degraded_allowed() } -> std::convertible_to<bool>;
                    { e.has_failed() } -> std::convertible_to<bool>;
                  }) {
      degraded = engine_->degraded_allowed() && engine_->has_failed();
    }
    for (Node& node : nodes_) {
      if (engine_->is_dead(node.rank())) continue;
      // Hierarchical non-leaders never configure as nodes; their RankPlans
      // are filled from the intra tier in compile_hierarchical.
      if (topo_.hierarchical() && !topo_.is_leader(node.rank())) continue;
      node.set_degraded(degraded);
      node.finish_configure();
    }
  }

  std::vector<std::vector<V>> run_up_pass() {
    const std::uint16_t l = topo_.num_layers();
    for (Node& node : nodes_) {
      if (engine_->is_dead(node.rank())) continue;
      node.begin_up();
      charge(Phase::kReduceDown, l, node);
    }
    for (std::uint16_t layer = l; layer >= 1; --layer) {
      run_round(Phase::kReduceUp, layer, &Node::up_produce,
                &Node::up_consume);
    }
    std::vector<std::vector<V>> results(nodes_.size());
    for (rank_t r = 0; r < nodes_.size(); ++r) {
      if (!engine_->is_dead(r)) results[r] = nodes_[r].take_result();
    }
    return results;
  }

  template <typename ProduceFn, typename ConsumeFn>
  void run_round(Phase phase, std::uint16_t layer, ProduceFn produce,
                 ConsumeFn consume) {
    // Hierarchical topologies exchange between host leaders only: the other
    // cores of a host hold no per-layer routing state (their unions live at
    // the leader), so they neither produce, expect, nor consume letters.
    const bool gate = topo_.hierarchical();
    engine_->round(
        phase, layer,
        // Reference returns: produce hands out the node's reusable letter
        // shells; expected hands out the cached group (no copies per round).
        [&](rank_t r) -> std::vector<Letter<V>>& {
          if (gate && !topo_.is_leader(r)) return empty_letters_;
          return (nodes_[r].*produce)(layer);
        },
        [&](rank_t r) -> const std::vector<rank_t>& {
          if (gate && !topo_.is_leader(r)) return empty_ranks_;
          return nodes_[r].expected(layer);
        },
        [&](rank_t r, std::vector<Letter<V>>&& inbox) {
          if (gate && !topo_.is_leader(r)) return;
          (nodes_[r].*consume)(layer, std::move(inbox));
          charge(phase, layer, nodes_[r]);
        });
  }

  static bool contains(const std::vector<rank_t>& v, rank_t x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  }

  /// Node layer whose key range a death record takes down. A group dying at
  /// {down, i} held its layer i-1 merged partial; one noticed at {up, i}
  /// was the only path to its layer-i fully-reduced values. Config deaths
  /// follow the down rule in combined mode (values ride config letters);
  /// in separate mode only key routing through the group is lost, which is
  /// the layer-i subrange. Clamped at 1: a group that never merged anything
  /// loses at most its layer-1 range (its own inputs are priced by
  /// inputs_lost, not by a range).
  [[nodiscard]] std::uint16_t record_node_layer(const DeathRecord& d) const {
    if (d.phase == Phase::kReduceUp) return d.layer;
    if (d.phase == Phase::kConfig && mode_ != Mode::kCombined) return d.layer;
    return std::max<std::uint16_t>(d.layer, 2) - 1;
  }

  /// Dead ranks can't answer configuration, so two compiles of the *same*
  /// key sets under different alive sets produce different plans. Fold the
  /// dead set into the fingerprint (order-independent xor of per-rank
  /// digests) so per-epoch plans never collide in the PlanCache; identity
  /// when every rank is alive, so full-membership fingerprints — including
  /// after a rejoin — are unchanged and still hit their original entries.
  [[nodiscard]] std::uint64_t salt_fingerprint(std::uint64_t fp) const {
    if (fp == 0) return 0;  // anonymous plans stay anonymous
    for (rank_t r = 0; r < topo_.num_machines(); ++r) {
      if (engine_->is_dead(r)) {
        fp ^= mix64(0x6d656d62ULL ^ static_cast<std::uint64_t>(r));
      }
    }
    // The intra tier reshapes the whole schedule, so hierarchical and flat
    // plans over the same key sets must coexist in a PlanCache. Salted only
    // when cores > 1: a one-core "hierarchical" topology compiles the exact
    // flat plan, and keeping the fingerprint unchanged lets it hit the flat
    // entry (tested by the hierarchy lane).
    if (topo_.hierarchical()) {
      fp = mix64(fp ^ (0x686f7374ULL << 8) ^
                 static_cast<std::uint64_t>(topo_.cores_per_machine()));
      if (fp == 0) fp = 1;
    }
    return fp;
  }

  /// Freeze the union-kernel choices the configuration pass dispatched
  /// with, sized by the measured per-layer union volume (autotune's
  /// union_kernel_plan — the same heuristic union_into consults). A pending
  /// density hint (set_layer_density_hints) overrides the fresh measurement.
  void freeze_union_kernels(CollectivePlan& plan) {
    const std::uint16_t l = topo_.num_layers();
    if (l == 0 || nodes_.empty()) return;
    std::vector<double> mean;
    if (layer_hints_.size() == static_cast<std::size_t>(l) + 1) {
      mean = std::move(layer_hints_);
    } else {
      mean = measured_layer_elements();
    }
    layer_hints_.clear();
    // Elements entering communication layer i — what one node unions there.
    std::vector<double> layer_elements(l, 0.0);
    for (std::uint16_t i = 1; i <= l; ++i) {
      layer_elements[i - 1] = mean[i - 1];
    }
    plan.set_union_kernels(union_kernel_plan(topo_, layer_elements));
  }

  /// True iff `inner` ⊆ `outer` (hi == 0 with lo != 0 means "up to 2^64").
  static bool range_within(const KeyRange& inner, const KeyRange& outer) {
    if (outer.is_full()) return true;
    if (inner.is_full()) return false;
    if (inner.lo < outer.lo) return false;
    if (outer.hi == 0) return true;
    return inner.hi != 0 && inner.hi <= outer.hi;
  }

  /// Drop ranges contained in another (death records repeat across rounds
  /// at nested layers); collapse to the full space if any record was.
  static void prune_ranges(std::vector<KeyRange>& ranges) {
    for (const KeyRange& range : ranges) {
      if (range.is_full()) {
        ranges.assign(1, KeyRange::full());
        return;
      }
    }
    std::vector<KeyRange> kept;
    for (std::size_t i = 0; i < ranges.size(); ++i) {
      bool dominated = false;
      for (std::size_t k = 0; k < ranges.size() && !dominated; ++k) {
        if (k == i) continue;
        if (range_within(ranges[i], ranges[k]) &&
            !(range_within(ranges[k], ranges[i]) && k > i)) {
          dominated = true;
        }
      }
      if (!dominated) kept.push_back(ranges[i]);
    }
    ranges.swap(kept);
  }

  void charge(Phase phase, std::uint16_t layer, Node& node) {
    const NodeWork work = node.take_work();
    if (compute_ == nullptr || layer == 0) return;
    const double seconds =
        compute_->merge_time(work.merge_elements, work.merge_ways) +
        compute_->combine_time(work.combine_elements) +
        compute_->gather_time(work.gather_elements);
    engine_->charge_compute(phase, layer, node.rank(), seconds);
  }

  /// How the allreduce was last configured: plan-based configurations
  /// replay through the executor; combined mode re-reduces the nodes.
  enum class Mode { kNone, kPlan, kCombined };

  Engine* engine_;
  Topology topo_;
  const ComputeModel* compute_;
  const NetworkModel* net_ = nullptr;  ///< chunk-size compiler input
  std::uint64_t chunk_bytes_ = 0;      ///< tuning override (0 = compiled)
  std::vector<double> layer_hints_;    ///< one-shot measured-density carry
  Mode mode_ = Mode::kNone;
  std::vector<Node> nodes_;
  std::vector<Letter<V>> empty_letters_;  ///< hierarchical non-leader rounds
  std::vector<rank_t> empty_ranks_;
  std::vector<NodeScratch<V>> scratch_;  ///< per-rank, survives build_nodes
  std::shared_ptr<const CollectivePlan> plan_;
  ReduceExecutor<V, Op, Engine> executor_;
};

}  // namespace kylix
