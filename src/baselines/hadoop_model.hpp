// Analytic cost model for Hadoop/Pegasus-class systems (Fig. 8's third
// series).
//
// The paper itself *estimates* Pegasus runtimes by scaling a published
// measurement linearly in edge count; we model the same regime from first
// principles: every iteration is a MapReduce job whose matrix-vector
// multiply shuffles the edge data through disk ("the disk-caching and
// disk-buffering philosophy of Hadoop", §VIII), paying fixed job-scheduling
// overhead plus several disk passes over each node's share of the edges.
// The constants put a 1.5 B-edge PageRank iteration in the hundreds of
// seconds on ~64 nodes — the order of magnitude the paper quotes (~500x
// slower than Kylix).
#pragma once

#include <cstdint>

namespace kylix {

struct HadoopModel {
  double job_overhead_s = 20.0;       ///< JVM spin-up, scheduling, barriers
  double disk_bw_bytes_per_s = 60e6;  ///< effective sequential disk rate
  double disk_passes = 3.0;           ///< map spill + shuffle + reduce merge
  double bytes_per_edge = 16.0;       ///< serialized (src, dst) pair

  /// Seconds for one PageRank-style iteration over `num_edges` edges on
  /// `num_machines` nodes.
  [[nodiscard]] double iteration_time(std::uint64_t num_edges,
                                      std::uint32_t num_machines) const;
};

}  // namespace kylix
