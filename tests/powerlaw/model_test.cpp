#include "powerlaw/model.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <cmath>

#include "common/rng.hpp"

namespace kylix {
namespace {

TEST(PowerLawModel, DensityIsZeroAtZeroLambda) {
  const PowerLawModel model(1000, 1.1);
  EXPECT_EQ(model.density(0.0), 0.0);
  EXPECT_EQ(model.density(-1.0), 0.0);
}

TEST(PowerLawModel, DensityApproachesOneForHugeLambda) {
  const PowerLawModel model(1000, 1.1);
  EXPECT_GT(model.density(1e12), 0.99);
  EXPECT_LE(model.density(1e12), 1.0 + 1e-9);
}

TEST(PowerLawModel, DensityIsStrictlyIncreasingUntilSaturation) {
  const PowerLawModel model(10000, 0.9);
  double previous = 0;
  for (double lambda = 0.01; lambda < 1e6; lambda *= 3) {
    const double d = model.density(lambda);
    if (previous < 0.9999) {
      EXPECT_GT(d, previous);
    } else {
      EXPECT_GE(d, previous);  // saturated to 1 within double precision
    }
    previous = d;
  }
}

TEST(PowerLawModel, DensityMatchesDirectSummation) {
  // The integral-tail shortcut must agree with the exact O(n) sum.
  const std::uint64_t n = 20000;
  for (double alpha : {0.5, 1.0, 1.5}) {
    const PowerLawModel model(n, alpha);
    for (double lambda : {0.5, 10.0, 500.0}) {
      double exact = 0;
      for (std::uint64_t r = 1; r <= n; ++r) {
        exact += -std::expm1(-lambda *
                             std::pow(static_cast<double>(r), -alpha));
      }
      exact /= static_cast<double>(n);
      EXPECT_NEAR(model.density(lambda), exact, exact * 1e-4 + 1e-12)
          << "alpha " << alpha << " lambda " << lambda;
    }
  }
}

TEST(PowerLawModel, DensityMatchesMonteCarloPoissonDraws) {
  // Eq. 7 against an actual Poisson simulation of the partition process.
  const std::uint64_t n = 2000;
  const double alpha = 1.1;
  const double lambda = 50.0;
  const PowerLawModel model(n, alpha);
  Rng rng(23);
  constexpr int kTrials = 60;
  double mean_density = 0;
  for (int t = 0; t < kTrials; ++t) {
    std::uint64_t nonzero = 0;
    for (std::uint64_t r = 1; r <= n; ++r) {
      if (rng.poisson(lambda * std::pow(static_cast<double>(r), -alpha)) >
          0) {
        ++nonzero;
      }
    }
    mean_density += static_cast<double>(nonzero) / static_cast<double>(n);
  }
  mean_density /= kTrials;
  EXPECT_NEAR(model.density(lambda), mean_density, 0.01);
}

class LambdaInversionTest : public ::testing::TestWithParam<double> {};

TEST_P(LambdaInversionTest, RoundTripsThroughDensity) {
  const double target = GetParam();
  for (double alpha : {0.6, 1.0, 1.4}) {
    const PowerLawModel model(100000, alpha);
    const double lambda = model.lambda_for_density(target);
    EXPECT_NEAR(model.density(lambda), target, target * 1e-5 + 1e-9)
        << "alpha " << alpha;
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, LambdaInversionTest,
                         ::testing::Values(0.001, 0.035, 0.21, 0.5, 0.9));

TEST(PowerLawModel, LambdaForDensityRejectsBadTargets) {
  const PowerLawModel model(100, 1.0);
  EXPECT_THROW(model.lambda_for_density(0.0), check_error);
  EXPECT_THROW(model.lambda_for_density(1.0), check_error);
  EXPECT_THROW(model.lambda_for_density(-0.5), check_error);
}

TEST(PowerLawModel, HarmonicMatchesDirectSum) {
  for (double alpha : {0.5, 1.0, 1.7}) {
    const std::uint64_t n = 50000;
    const PowerLawModel model(n, alpha);
    double exact = 0;
    for (std::uint64_t r = 1; r <= n; ++r) {
      exact += std::pow(static_cast<double>(r), -alpha);
    }
    EXPECT_NEAR(model.harmonic(), exact, exact * 1e-4);
  }
}

TEST(Proposition41, FanInAccumulatesDegreeProducts) {
  const PowerLawModel model(1 << 20, 1.1);
  const std::vector<std::uint32_t> degrees = {8, 4, 2};
  const auto stats = model.layer_stats(100.0, degrees);
  ASSERT_EQ(stats.size(), 4u);  // layers 1..3 plus the reduced bottom
  EXPECT_EQ(stats[0].fan_in, 1u);   // K_1 = d_0 = 1
  EXPECT_EQ(stats[1].fan_in, 8u);   // K_2 = d_1
  EXPECT_EQ(stats[2].fan_in, 32u);  // K_3 = d_1 d_2
  EXPECT_EQ(stats[3].fan_in, 64u);  // full reduction
}

TEST(Proposition41, DensityGrowsAndPerNodeDataShrinks) {
  // The Kylix shape: D_i increases with fan-in, but P_i = n D_i / K_i
  // decreases because collisions collapse duplicates.
  const PowerLawModel model(1 << 20, 1.1);
  const double lambda0 = model.lambda_for_density(0.21);
  const std::vector<std::uint32_t> degrees = {8, 4, 2};
  const auto stats = model.layer_stats(lambda0, degrees);
  for (std::size_t i = 1; i < stats.size(); ++i) {
    EXPECT_GT(stats[i].density, stats[i - 1].density);
    EXPECT_LT(stats[i].elements_per_node, stats[i - 1].elements_per_node);
  }
}

TEST(Proposition41, FirstLayerMatchesMeasuredInputs) {
  const PowerLawModel model(1 << 16, 0.9);
  const double lambda0 = model.lambda_for_density(0.035);
  const std::vector<std::uint32_t> degrees = {16, 4};
  const auto stats = model.layer_stats(lambda0, degrees);
  EXPECT_NEAR(stats[0].density, 0.035, 1e-6);
  EXPECT_NEAR(stats[0].elements_per_node, 0.035 * (1 << 16), 1.0);
}

TEST(Proposition41, EmptyDegreeListGivesJustLayerZero) {
  const PowerLawModel model(100, 1.0);
  const auto stats = model.layer_stats(1.0, {});
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].fan_in, 1u);
}

}  // namespace
}  // namespace kylix
