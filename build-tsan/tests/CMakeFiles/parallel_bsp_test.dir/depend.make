# Empty dependencies file for parallel_bsp_test.
# This may be replaced when dependencies are built.
