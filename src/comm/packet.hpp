// Wire units exchanged between simulated machines.
//
// A Packet carries index keys (configuration), values (reduction), or both
// (the combined configure+reduce mode used for minibatch workloads, §III).
// wire_bytes() is what the timing model charges: 8 bytes per key, sizeof(V)
// per value, plus a small fixed header — matching the paper's 12
// bytes-per-element accounting for key+float traffic.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/trace.hpp"
#include "common/types.hpp"

namespace kylix {

/// Fixed framing cost per message on the wire.
inline constexpr std::uint64_t kPacketHeaderBytes = 32;

template <typename V>
struct Packet {
  std::vector<key_t> in_keys;   ///< configuration: indices requested
  std::vector<key_t> out_keys;  ///< configuration: indices contributed
  std::vector<V> values;        ///< reduction payload (aligned to out_keys
                                ///< in combined mode)
  /// Multi-payload stride: `stride` value vectors interleaved key-major, so
  /// values carries stride x piece_elements() entries routed by one key set.
  /// Keys are never repeated per payload — that is the amortization the
  /// strided reduce exists for.
  std::uint32_t stride = 1;

  /// Logical piece length in key positions (what the configured piece sizes
  /// are checked against, independent of how many payloads ride along).
  [[nodiscard]] std::size_t piece_elements() const {
    return stride <= 1 ? values.size() : values.size() / stride;
  }

  [[nodiscard]] std::uint64_t wire_bytes() const {
    return kPacketHeaderBytes + 8 * (in_keys.size() + out_keys.size()) +
           sizeof(V) * values.size();
  }
};

/// An addressed packet. `src`/`dst` are ranks in whatever space the engine
/// operates on (logical for the replication wrapper, physical otherwise).
template <typename V>
struct Letter {
  rank_t src = 0;
  rank_t dst = 0;
  /// Tombstone flag: the payload was lost to an injected fault. Engines
  /// with blocking receives (ThreadedBsp) deliver an empty tombstone so
  /// the receiver unblocks, then discard it before consume.
  bool faulted = false;
  Packet<V> packet;
};

}  // namespace kylix
