// Human-readable formatting of byte counts and durations for bench output.
#pragma once

#include <cstdint>
#include <string>

namespace kylix {

/// "1.50 MB", "320 KB", "12 B" — decimal units, matching the paper's usage.
[[nodiscard]] std::string format_bytes(double bytes);

/// "1.23 s", "4.56 ms", "789 us".
[[nodiscard]] std::string format_seconds(double seconds);

}  // namespace kylix
