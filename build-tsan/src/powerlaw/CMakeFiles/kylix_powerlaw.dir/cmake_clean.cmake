file(REMOVE_RECURSE
  "CMakeFiles/kylix_powerlaw.dir/alpha_fit.cpp.o"
  "CMakeFiles/kylix_powerlaw.dir/alpha_fit.cpp.o.d"
  "CMakeFiles/kylix_powerlaw.dir/design.cpp.o"
  "CMakeFiles/kylix_powerlaw.dir/design.cpp.o.d"
  "CMakeFiles/kylix_powerlaw.dir/graphgen.cpp.o"
  "CMakeFiles/kylix_powerlaw.dir/graphgen.cpp.o.d"
  "CMakeFiles/kylix_powerlaw.dir/model.cpp.o"
  "CMakeFiles/kylix_powerlaw.dir/model.cpp.o.d"
  "CMakeFiles/kylix_powerlaw.dir/zipf.cpp.o"
  "CMakeFiles/kylix_powerlaw.dir/zipf.cpp.o.d"
  "libkylix_powerlaw.a"
  "libkylix_powerlaw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kylix_powerlaw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
