#include "core/topology.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <algorithm>
#include <set>

namespace kylix {
namespace {

TEST(Topology, MachineCountIsDegreeProduct) {
  EXPECT_EQ(Topology({8, 4, 2}).num_machines(), 64u);
  EXPECT_EQ(Topology({16, 4}).num_machines(), 64u);
  EXPECT_EQ(Topology({3, 5}).num_machines(), 15u);
  EXPECT_EQ(Topology({}).num_machines(), 1u);
}

TEST(Topology, FactoriesProduceExpectedSchedules) {
  const Topology direct = Topology::direct(12);
  EXPECT_EQ(direct.num_layers(), 1);
  EXPECT_EQ(direct.degree(1), 12u);

  const Topology binary = Topology::binary(16);
  EXPECT_EQ(binary.num_layers(), 4);
  for (std::uint16_t layer = 1; layer <= 4; ++layer) {
    EXPECT_EQ(binary.degree(layer), 2u);
  }

  EXPECT_EQ(Topology::direct(1).num_layers(), 0);
  EXPECT_EQ(Topology::binary(1).num_layers(), 0);
  EXPECT_THROW(Topology::binary(12), check_error);
}

TEST(Topology, ToStringFormats) {
  EXPECT_EQ(Topology({8, 4, 2}).to_string(), "8 x 4 x 2");
  EXPECT_EQ(Topology({}).to_string(), "1");
}

TEST(Topology, DigitsAreMixedRadixCoordinates) {
  const Topology topo({4, 3, 2});  // strides 1, 4, 12
  const rank_t rank = 1 + 2 * 4 + 1 * 12;  // digits (1, 2, 1)
  EXPECT_EQ(topo.digit(1, rank), 1u);
  EXPECT_EQ(topo.digit(2, rank), 2u);
  EXPECT_EQ(topo.digit(3, rank), 1u);
}

TEST(Topology, GroupsContainSelfAtOwnDigitPosition) {
  const Topology topo({4, 3, 2});
  for (rank_t rank = 0; rank < topo.num_machines(); ++rank) {
    for (std::uint16_t layer = 1; layer <= topo.num_layers(); ++layer) {
      const std::vector<rank_t> group = topo.group(layer, rank);
      ASSERT_EQ(group.size(), topo.degree(layer));
      EXPECT_EQ(group[topo.digit(layer, rank)], rank);
      // Group members agree on all digits except this layer's.
      for (std::uint32_t q = 0; q < group.size(); ++q) {
        EXPECT_EQ(topo.digit(layer, group[q]), q);
        for (std::uint16_t other = 1; other <= topo.num_layers(); ++other) {
          if (other != layer) {
            EXPECT_EQ(topo.digit(other, group[q]),
                      topo.digit(other, rank));
          }
        }
      }
    }
  }
}

TEST(Topology, GroupsPartitionTheMachinesAtEveryLayer) {
  const Topology topo({3, 2, 4});
  for (std::uint16_t layer = 1; layer <= topo.num_layers(); ++layer) {
    std::set<rank_t> covered;
    for (rank_t rank = 0; rank < topo.num_machines(); ++rank) {
      const std::vector<rank_t> group = topo.group(layer, rank);
      // Every member sees the identical group.
      for (rank_t member : group) {
        EXPECT_EQ(topo.group(layer, member), group);
      }
      covered.insert(group.begin(), group.end());
    }
    EXPECT_EQ(covered.size(), topo.num_machines());
  }
}

TEST(Topology, KeyRangesNarrowByDigitDownTheLayers) {
  const Topology topo({4, 2});
  for (rank_t rank = 0; rank < topo.num_machines(); ++rank) {
    EXPECT_TRUE(topo.key_range(0, rank).is_full());
    const KeyRange l1 = topo.key_range(1, rank);
    EXPECT_EQ(l1, KeyRange::full().subrange(topo.digit(1, rank), 4));
    const KeyRange l2 = topo.key_range(2, rank);
    EXPECT_EQ(l2, l1.subrange(topo.digit(2, rank), 2));
  }
}

TEST(Topology, BottomRangesTileTheKeySpace) {
  // Every machine's bottom range is disjoint and together they cover all
  // keys — the property that gives every index a unique home.
  const Topology topo({3, 2, 2});
  std::vector<KeyRange> ranges;
  for (rank_t rank = 0; rank < topo.num_machines(); ++rank) {
    ranges.push_back(topo.key_range(topo.num_layers(), rank));
  }
  for (key_t probe :
       {key_t{0}, key_t{1} << 20, key_t{1} << 40, key_t{1} << 63,
        ~key_t{0}, key_t{0x123456789abcdef0}}) {
    int owners = 0;
    for (const KeyRange& range : ranges) {
      if (range.contains(probe)) ++owners;
    }
    EXPECT_EQ(owners, 1) << "key " << probe;
  }
}

TEST(Topology, RejectsInvalidArguments) {
  EXPECT_THROW(Topology({0, 4}), check_error);
  EXPECT_THROW(Topology({8, 4}).degree(0), check_error);
  EXPECT_THROW(Topology({8, 4}).degree(3), check_error);
  EXPECT_THROW(Topology({8, 4}).key_range(3, 0), check_error);
  EXPECT_THROW(Topology::direct(0), check_error);
}

TEST(Topology, DegreeOneLayersAreAllowed) {
  // Degenerate but legal: a degree-1 layer is a no-op round.
  const Topology topo({2, 1, 2});
  EXPECT_EQ(topo.num_machines(), 4u);
  EXPECT_EQ(topo.group(2, 3), (std::vector<rank_t>{3}));
}

}  // namespace
}  // namespace kylix
