file(REMOVE_RECURSE
  "CMakeFiles/fig5_comm_volume.dir/fig5_comm_volume.cpp.o"
  "CMakeFiles/fig5_comm_volume.dir/fig5_comm_volume.cpp.o.d"
  "fig5_comm_volume"
  "fig5_comm_volume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_comm_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
