// Ablation — combined configure+reduce vs. separate passes (§III: "it is
// more efficient to do configuration and reduction concurrently with
// combined network messages" when in/out sets change every step).
//
// For a minibatch-style workload whose sets change every call, the
// combined mode removes the standalone downward value pass; for a fixed
// workload reused many times (PageRank), configuring once amortizes far
// better. Both effects are quantified.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace kylix;

TimingAccumulator::PhaseTimes run_combined(const bench::Dataset& data,
                                           const Topology& topo) {
  const NetworkModel net = bench::scaled_network();
  const ComputeModel compute;
  TimingAccumulator timing(topo.num_machines(), net, compute, 16);
  BspEngine<real_t> engine(topo.num_machines(), nullptr, nullptr, &timing);
  SparseAllreduce<real_t, OpSum, BspEngine<real_t>> allreduce(&engine, topo,
                                                              &compute);
  (void)allreduce.reduce_with_config(data.in_sets, data.out_sets,
                                     data.out_values);
  return timing.times();
}

}  // namespace

int main() {
  std::printf("# Ablation: combined vs separate configuration "
              "(twitter-like, 8 x 4 x 2)\n\n");
  const bench::Dataset data = bench::make_dataset("twitter");
  const Topology topo = data.paper_topology;

  const auto separate = bench::run_allreduce(data, topo, 16);
  const auto combined = run_combined(data, topo);

  std::printf("%-34s %-12s %-12s %-12s\n", "mode", "config_s", "reduce_s",
              "total_s");
  std::printf("%-34s %-12.4f %-12.4f %-12.4f\n",
              "separate (config + 2-pass reduce)", separate.config,
              separate.reduce(), separate.total());
  std::printf("%-34s %-12.4f %-12.4f %-12.4f\n",
              "combined (piggybacked values)", combined.config,
              combined.reduce(), combined.total());
  std::printf("\none-shot speedup from combining: %.2fx\n",
              separate.total() / combined.total());

  // Amortization: k reduces against one configure.
  std::printf("\n%-10s %-22s %-22s\n", "steps", "separate_total_s",
              "combined_total_s");
  for (int steps : {1, 2, 5, 10, 50}) {
    const double sep = separate.config + steps * separate.reduce();
    const double comb = steps * combined.total();
    std::printf("%-10d %-22.4f %-22.4f%s\n", steps, sep, comb,
                sep < comb ? "  <- configure-once wins" : "");
  }
  return 0;
}
