file(REMOVE_RECURSE
  "CMakeFiles/fig8_systems.dir/fig8_systems.cpp.o"
  "CMakeFiles/fig8_systems.dir/fig8_systems.cpp.o.d"
  "fig8_systems"
  "fig8_systems.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
