file(REMOVE_RECURSE
  "CMakeFiles/graph_mining.dir/graph_mining.cpp.o"
  "CMakeFiles/graph_mining.dir/graph_mining.cpp.o.d"
  "graph_mining"
  "graph_mining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_mining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
