# Empty dependencies file for fig6_config_reduce.
# This may be replaced when dependencies are built.
