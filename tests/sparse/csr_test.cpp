#include "sparse/csr.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include <map>

#include "common/rng.hpp"

namespace kylix {
namespace {

const std::vector<Edge> kDiamond = {
    {0, 1}, {0, 2}, {1, 3}, {2, 3}, {0, 1}};  // parallel edge 0->1

TEST(LocalGraph, CompactsVertexSets) {
  const LocalGraph g(kDiamond);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.num_local_sources(), 3u);       // 0, 1, 2
  EXPECT_EQ(g.num_local_destinations(), 3u);  // 1, 2, 3
  EXPECT_TRUE(g.sources().contains(hash_index(0)));
  EXPECT_FALSE(g.sources().contains(hash_index(3)));
  EXPECT_TRUE(g.destinations().contains(hash_index(3)));
  EXPECT_FALSE(g.destinations().contains(hash_index(0)));
}

TEST(LocalGraph, OutDegreesCountParallelEdges) {
  const LocalGraph g(kDiamond);
  const std::vector<float> deg = g.local_out_degrees();
  const std::size_t p0 = g.sources().find(hash_index(0));
  const std::size_t p1 = g.sources().find(hash_index(1));
  const std::size_t p2 = g.sources().find(hash_index(2));
  EXPECT_EQ(deg[p0], 3.0f);  // 0->1 twice, 0->2 once
  EXPECT_EQ(deg[p1], 1.0f);
  EXPECT_EQ(deg[p2], 1.0f);
}

TEST(LocalGraph, EmptyGraph) {
  const LocalGraph g{std::span<const Edge>{}};
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.num_local_sources(), 0u);
  std::vector<float> w;
  g.multiply_into<float>({}, {}, w);  // no-op, no crash
}

TEST(LocalGraph, MultiplyMatchesBruteForce) {
  Rng rng(31);
  std::vector<Edge> edges;
  for (int i = 0; i < 400; ++i) {
    edges.push_back(Edge{rng.below(50), rng.below(50)});
  }
  const LocalGraph g(edges);
  std::vector<float> v(g.num_local_sources());
  std::vector<float> scale(g.num_local_sources());
  for (std::size_t p = 0; p < v.size(); ++p) {
    v[p] = static_cast<float>(rng.below(10));
    scale[p] = static_cast<float>(1 + rng.below(3));
  }
  std::vector<float> w(g.num_local_destinations(), 0.0f);
  g.multiply_into<float>(v, scale, w);

  std::map<index_t, float> expected;
  for (const Edge& e : edges) {
    const std::size_t s = g.sources().find(hash_index(e.src));
    expected[e.dst] += v[s] * scale[s];
  }
  for (const auto& [dst, total] : expected) {
    const std::size_t d = g.destinations().find(hash_index(dst));
    EXPECT_FLOAT_EQ(w[d], total) << "dst " << dst;
  }
}

TEST(LocalGraph, MultiplyWithoutScale) {
  const std::vector<Edge> edges = {{0, 2}, {1, 2}};
  const LocalGraph g(edges);
  std::vector<float> v(g.num_local_sources(), 1.5f);
  std::vector<float> w(g.num_local_destinations(), 0.25f);
  g.multiply_into<float>(v, {}, w);
  const std::size_t d = g.destinations().find(hash_index(2));
  EXPECT_FLOAT_EQ(w[d], 0.25f + 3.0f);
}

TEST(LocalGraph, MinPropagateTakesNeighborMinimum) {
  // 5 -> 0, 7 -> 0: label of 0 becomes min(its own in w, labels of 5 and 7).
  const std::vector<Edge> edges = {{5, 0}, {7, 0}, {7, 1}};
  const LocalGraph g(edges);
  std::vector<std::uint64_t> labels(g.num_local_sources());
  const std::size_t s5 = g.sources().find(hash_index(5));
  const std::size_t s7 = g.sources().find(hash_index(7));
  labels[s5] = 5;
  labels[s7] = 7;
  std::vector<std::uint64_t> w(g.num_local_destinations(), 99);
  g.min_propagate_into<std::uint64_t>(labels, w);
  EXPECT_EQ(w[g.destinations().find(hash_index(0))], 5u);
  EXPECT_EQ(w[g.destinations().find(hash_index(1))], 7u);
}

TEST(LocalGraph, OrPropagateUnionsBits) {
  const std::vector<Edge> edges = {{5, 0}, {7, 0}};
  const LocalGraph g(edges);
  std::vector<std::uint64_t> sketches(g.num_local_sources());
  sketches[g.sources().find(hash_index(5))] = 0b001;
  sketches[g.sources().find(hash_index(7))] = 0b100;
  std::vector<std::uint64_t> w(g.num_local_destinations(), 0b010);
  g.or_propagate_into<std::uint64_t>(sketches, w);
  EXPECT_EQ(w[g.destinations().find(hash_index(0))], 0b111u);
}

TEST(LocalGraph, SizeMismatchThrows) {
  const LocalGraph g(kDiamond);
  std::vector<float> v(g.num_local_sources() + 1);
  std::vector<float> w(g.num_local_destinations());
  EXPECT_THROW(g.multiply_into<float>(v, {}, w), check_error);
}

}  // namespace
}  // namespace kylix
