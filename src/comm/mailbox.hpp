// A blocking per-node mailbox for the threaded engine.
//
// Senders push letters concurrently; the owning node blocks on take() until
// a letter from a given source arrives, or on take_any() until a letter from
// any source in a replica group arrives (the §V-B packet race: first copy
// wins, the rest are discarded on arrival via cancel()).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <span>

#include "comm/packet.hpp"
#include "common/check.hpp"

namespace kylix {

/// Thrown when a blocking receive outlives its deadline — in this in-process
/// setting that always indicates a protocol bug or an unreplicated dead
/// sender, so failing loudly beats hanging a test run.
class mailbox_timeout : public std::runtime_error {
 public:
  explicit mailbox_timeout(const std::string& what)
      : std::runtime_error(what) {}
};

template <typename V>
class Mailbox {
 public:
  void put(Letter<V> letter) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (canceled(letter.src)) return;  // losing replica copy: discard
      letters_.push_back(std::move(letter));
    }
    arrived_.notify_all();
  }

  /// Block until a letter from `src` arrives, then remove and return it.
  Letter<V> take(rank_t src,
                 std::chrono::milliseconds timeout =
                     std::chrono::milliseconds(30000)) {
    std::unique_lock<std::mutex> lock(mutex_);
    Letter<V> result;
    const bool got = arrived_.wait_for(lock, timeout, [&] {
      return try_pop(src, &result);
    });
    if (!got) throw mailbox_timeout("Mailbox::take timed out");
    return result;
  }

  /// Block until a letter from any rank in `group` arrives; the winner is
  /// returned and the rest of the group is marked canceled so late copies
  /// are dropped on arrival.
  Letter<V> take_any(std::span<const rank_t> group,
                     std::chrono::milliseconds timeout =
                         std::chrono::milliseconds(30000)) {
    std::unique_lock<std::mutex> lock(mutex_);
    Letter<V> result;
    const bool got = arrived_.wait_for(lock, timeout, [&] {
      for (rank_t src : group) {
        if (try_pop(src, &result)) return true;
      }
      return false;
    });
    if (!got) throw mailbox_timeout("Mailbox::take_any timed out");
    for (rank_t src : group) {
      if (src != result.src) canceled_.push_back(src);
    }
    return result;
  }

  /// Forget all cancellations and pending letters (between rounds).
  void reset() {
    std::lock_guard<std::mutex> lock(mutex_);
    letters_.clear();
    canceled_.clear();
  }

  [[nodiscard]] std::size_t pending() {
    std::lock_guard<std::mutex> lock(mutex_);
    return letters_.size();
  }

 private:
  /// Pop the matching letter with the smallest chunk_index (FIFO among
  /// equals). Senders emit chunks in ascending order, so per-src FIFO would
  /// already yield them sorted — this makes ascending chunk delivery a
  /// mailbox invariant instead of a sender-discipline assumption.
  bool try_pop(rank_t src, Letter<V>* out) {
    auto best = letters_.end();
    for (auto it = letters_.begin(); it != letters_.end(); ++it) {
      if (it->src != src) continue;
      if (best == letters_.end() ||
          it->packet.chunk_index < best->packet.chunk_index) {
        best = it;
      }
    }
    if (best == letters_.end()) return false;
    *out = std::move(*best);
    letters_.erase(best);
    return true;
  }

  bool canceled(rank_t src) const {
    for (rank_t c : canceled_) {
      if (c == src) return true;
    }
    return false;
  }

  std::mutex mutex_;
  std::condition_variable arrived_;
  std::deque<Letter<V>> letters_;
  std::vector<rank_t> canceled_;
};

}  // namespace kylix
