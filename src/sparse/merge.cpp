#include "sparse/merge.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"

namespace kylix {

void merge_union_into(std::span<const key_t> a, std::span<const key_t> b,
                      std::vector<key_t>& keys, PosMap& map_a, PosMap& map_b) {
  keys.clear();
  keys.reserve(a.size() + b.size());
  map_a.resize(a.size());
  map_b.resize(b.size());

  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const auto out = static_cast<pos_t>(keys.size());
    if (a[i] < b[j]) {
      keys.push_back(a[i]);
      map_a[i++] = out;
    } else if (b[j] < a[i]) {
      keys.push_back(b[j]);
      map_b[j++] = out;
    } else {
      keys.push_back(a[i]);
      map_a[i++] = out;
      map_b[j++] = out;
    }
  }
  for (; i < a.size(); ++i) {
    map_a[i] = static_cast<pos_t>(keys.size());
    keys.push_back(a[i]);
  }
  for (; j < b.size(); ++j) {
    map_b[j] = static_cast<pos_t>(keys.size());
    keys.push_back(b[j]);
  }
}

UnionResult merge_union(std::span<const key_t> a, std::span<const key_t> b) {
  UnionResult result;
  result.maps.assign(2, {});
  merge_union_into(a, b, result.keys, result.maps[0], result.maps[1]);
  return result;
}

namespace {

void identity_map(PosMap& map, std::size_t n) {
  map.resize(n);
  for (std::size_t p = 0; p < n; ++p) map[p] = static_cast<pos_t>(p);
}

}  // namespace

void tree_merge_into(std::span<const std::span<const key_t>> inputs,
                     UnionResult& out, MergeScratch& scratch) {
  const std::size_t k = inputs.size();
  out.maps.resize(k);
  if (k == 0) {
    out.keys.clear();
    return;
  }
  if (k == 1) {
    out.keys.assign(inputs[0].begin(), inputs[0].end());
    identity_map(out.maps[0], inputs[0].size());
    return;
  }

  // Level 0: 2-way merge adjacent input pairs; the pair maps ARE the leaf
  // maps at this level, so write them straight into the output slots. (Not
  // via map_a/map_b + swap: that would rotate buffers between the output
  // and the scratch on every call, so warm capacities never settle.)
  auto& runs0 = scratch.runs[0];
  const std::size_t nruns0 = (k + 1) / 2;
  if (runs0.size() < nruns0) runs0.resize(nruns0);
  for (std::size_t j = 0; j < k / 2; ++j) {
    merge_union_into(inputs[2 * j], inputs[2 * j + 1], runs0[j],
                     out.maps[2 * j], out.maps[2 * j + 1]);
  }
  if (k % 2 == 1) {
    runs0[nruns0 - 1].assign(inputs[k - 1].begin(), inputs[k - 1].end());
    identity_map(out.maps[k - 1], inputs[k - 1].size());
  }

  // Upper levels: ping-pong runs between the two arenas, composing every
  // affected leaf map with its side's 2-way map. Run j at the level with
  // `leaf_span` leaves per run covers leaves [j·leaf_span, (j+1)·leaf_span).
  std::size_t count = nruns0;
  std::size_t level = 0;
  while (count > 1) {
    auto& cur = scratch.runs[level & 1];
    auto& nxt = scratch.runs[(level + 1) & 1];
    const std::size_t nnext = (count + 1) / 2;
    if (nxt.size() < nnext) nxt.resize(nnext);
    const std::size_t leaf_span = std::size_t{1} << (level + 1);
    for (std::size_t j = 0; j < count / 2; ++j) {
      merge_union_into(cur[2 * j], cur[2 * j + 1], nxt[j], scratch.map_a,
                       scratch.map_b);
      const std::size_t a_lo = 2 * j * leaf_span;
      const std::size_t a_hi = std::min(a_lo + leaf_span, k);
      const std::size_t b_hi = std::min(a_hi + leaf_span, k);
      for (std::size_t leaf = a_lo; leaf < a_hi; ++leaf) {
        for (pos_t& p : out.maps[leaf]) p = scratch.map_a[p];
      }
      for (std::size_t leaf = a_hi; leaf < b_hi; ++leaf) {
        for (pos_t& p : out.maps[leaf]) p = scratch.map_b[p];
      }
    }
    // An odd trailing run passes through unchanged (its leaf maps already
    // address its keys); swap keeps both buffers inside the scratch.
    if (count % 2 == 1) std::swap(nxt[nnext - 1], cur[count - 1]);
    count = nnext;
    ++level;
  }
  std::swap(out.keys, scratch.runs[level & 1][0]);
}

UnionResult tree_merge(std::span<const std::span<const key_t>> inputs) {
  UnionResult out;
  MergeScratch scratch;
  tree_merge_into(inputs, out, scratch);
  return out;
}

UnionResult tree_merge(const std::vector<std::vector<key_t>>& inputs) {
  std::vector<std::span<const key_t>> spans(inputs.begin(), inputs.end());
  return tree_merge(spans);
}

UnionResult hash_union(std::span<const std::span<const key_t>> inputs) {
  UnionResult result;
  std::unordered_map<key_t, pos_t> positions;
  std::size_t total = 0;
  for (const auto& in : inputs) total += in.size();
  positions.reserve(total);
  result.maps.reserve(inputs.size());
  for (const auto& in : inputs) {
    PosMap map(in.size());
    for (std::size_t p = 0; p < in.size(); ++p) {
      const auto [it, inserted] = positions.try_emplace(
          in[p], static_cast<pos_t>(result.keys.size()));
      if (inserted) result.keys.push_back(in[p]);
      map[p] = it->second;
    }
    result.maps.push_back(std::move(map));
  }
  return result;
}

}  // namespace kylix
