#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/check.hpp"

namespace kylix::obs {
namespace {

TEST(Counter, AddsAndReads) {
  MetricsRegistry registry;
  Counter& c = registry.counter("messages");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAdd) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("density");
  g.set(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.25);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST(Histogram, BucketsByUpperBoundWithOverflow) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("packet_bytes", {10.0, 100.0, 1000.0});
  // A value lands in the first bucket whose upper bound is >= the value.
  h.observe(5);     // <= 10
  h.observe(10);    // <= 10 (bounds are inclusive)
  h.observe(11);    // <= 100
  h.observe(1000);  // <= 1000
  h.observe(5000);  // overflow
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 6026.0);
  EXPECT_DOUBLE_EQ(h.mean(), 6026.0 / 5.0);
}

TEST(Histogram, EmptyMeanIsZero) {
  MetricsRegistry registry;
  EXPECT_DOUBLE_EQ(registry.histogram("empty", {1.0}).mean(), 0.0);
}

TEST(Histogram, RejectsNonIncreasingBounds) {
  MetricsRegistry registry;
  EXPECT_THROW(registry.histogram("bad", {1.0, 1.0}), check_error);
  EXPECT_THROW(registry.histogram("bad2", {2.0, 1.0}), check_error);
  EXPECT_THROW(registry.histogram("bad3", {}), check_error);
}

TEST(ExponentialBounds, GeneratesGeometricGrid) {
  const auto bounds = exponential_bounds(64, 4, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 64);
  EXPECT_DOUBLE_EQ(bounds[1], 256);
  EXPECT_DOUBLE_EQ(bounds[2], 1024);
  EXPECT_DOUBLE_EQ(bounds[3], 4096);
}

TEST(MetricsRegistry, LookupOrCreateReturnsStableInstruments) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  a.add(3);
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  // A histogram re-registered under an existing name keeps original bounds.
  Histogram& h1 = registry.histogram("h", {1.0, 2.0});
  Histogram& h2 = registry.histogram("h", {5.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.upper_bounds(), (std::vector<double>{1.0, 2.0}));
  // The three namespaces are independent: same name, distinct instruments.
  registry.gauge("x").set(1.5);
  EXPECT_EQ(registry.counter("x").value(), 3u);
}

TEST(MetricsRegistry, DisabledInstrumentsAreNoOps) {
  MetricsRegistry registry;
  Counter& c = registry.counter("c");
  Gauge& g = registry.gauge("g");
  Histogram& h = registry.histogram("h", {1.0});
  registry.set_enabled(false);
  EXPECT_FALSE(registry.enabled());
  c.add(10);
  g.set(3.0);
  h.observe(0.5);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  // Re-enabling resumes collection on the same instruments.
  registry.set_enabled(true);
  c.add(10);
  EXPECT_EQ(c.value(), 10u);
}

TEST(MetricsRegistry, EnvVarDisablesCollectionAtConstruction) {
  ::setenv("KYLIX_METRICS", "off", 1);
  MetricsRegistry off;
  EXPECT_FALSE(off.enabled());
  ::setenv("KYLIX_METRICS", "1", 1);
  MetricsRegistry on;
  EXPECT_TRUE(on.enabled());
  ::unsetenv("KYLIX_METRICS");
  MetricsRegistry unset;
  EXPECT_TRUE(unset.enabled());
}

TEST(MetricsRegistry, JsonSnapshotContainsAllSections) {
  MetricsRegistry registry;
  registry.counter("engine.messages").add(7);
  registry.gauge("run.density").set(0.125);
  registry.histogram("engine.packet_bytes", {10.0, 100.0}).observe(42);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.messages\":7"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"run.density\":0.125"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"upper_bounds\":[10,100]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\":[0,1,0]"), std::string::npos);
}

TEST(MetricsRegistry, ConcurrentRegistrationAndUpdatesAreSafe) {
  MetricsRegistry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&registry] {
      Counter& c = registry.counter("shared");
      Histogram& h = registry.histogram("lat", exponential_bounds(1, 2, 8));
      for (int i = 0; i < 1000; ++i) {
        c.add();
        h.observe(static_cast<double>(i % 200));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.counter("shared").value(), 4000u);
  EXPECT_EQ(registry.histogram("lat", {}).count(), 4000u);
}

TEST(MetricsRegistry, GlobalIsOneSharedInstance) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

TEST(HistogramQuantile, InterpolatesWithinBuckets) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {10.0, 20.0, 40.0});
  // 10 observations uniform in the (10, 20] bucket.
  for (int i = 0; i < 10; ++i) h.observe(15);
  // Median target sits halfway through the only populated bucket, so the
  // interpolated estimate is the bucket midpoint, not an edge.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 15.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 20.0);
  // First-bucket interpolation anchors the lower edge at 0.
  Histogram& lo = registry.histogram("lo", {10.0, 20.0});
  for (int i = 0; i < 4; ++i) lo.observe(5);
  EXPECT_DOUBLE_EQ(lo.quantile(0.5), 5.0);
}

TEST(HistogramQuantile, EmptyAndClampedEdges) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.observe(1.5);
  EXPECT_DOUBLE_EQ(h.quantile(-3.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(7.0), h.quantile(1.0));
}

TEST(HistogramQuantile, OverflowBucketReportsLastBound) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {1.0, 2.0});
  for (int i = 0; i < 100; ++i) h.observe(50.0);  // all overflow
  // The overflow bucket has no upper edge; the quantile saturates at the
  // largest finite bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 2.0);
}

TEST(HistogramSnapshot, SelfConsistentUnderConcurrentObserve) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", exponential_bounds(1, 2, 10));
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop] {
      std::uint64_t x = 1;
      while (!stop.load(std::memory_order_relaxed)) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        h.observe(static_cast<double>(x % 700));
      }
    });
  }
  for (int i = 0; i < 200; ++i) {
    const Histogram::Snapshot snap = h.snapshot();
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t c : snap.counts) bucket_total += c;
    // The contract: bucket counts always sum to the snapshot's count, even
    // while writers race — quantiles derived from it are never off-by-a-race.
    EXPECT_EQ(bucket_total, snap.count);
    const double q = snap.quantile(0.99);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1024.0);
  }
  stop.store(true);
  for (std::thread& t : writers) t.join();
  const Histogram::Snapshot final_snap = h.snapshot();
  EXPECT_EQ(final_snap.count, h.count());
}

TEST(MetricsRegistry, JsonExportsQuantiles) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat", {10.0, 100.0});
  for (int i = 0; i < 8; ++i) h.observe(50);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"quantiles\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  EXPECT_NE(json.find("\"p999\""), std::string::npos);
  // upper_bounds + counts stay exported so external tools can re-derive any
  // quantile, not just the four we precompute.
  EXPECT_NE(json.find("\"upper_bounds\":[10,100]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\":[0,8,0]"), std::string::npos);
}

}  // namespace
}  // namespace kylix::obs
