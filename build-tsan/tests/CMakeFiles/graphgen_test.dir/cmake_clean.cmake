file(REMOVE_RECURSE
  "CMakeFiles/graphgen_test.dir/powerlaw/graphgen_test.cpp.o"
  "CMakeFiles/graphgen_test.dir/powerlaw/graphgen_test.cpp.o.d"
  "graphgen_test"
  "graphgen_test.pdb"
  "graphgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graphgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
