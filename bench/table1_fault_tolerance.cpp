// Table I — cost of fault tolerance.
//
// Columns mirror the paper:
//   * 8x4x2, replication 1, 64 nodes (the unreplicated optimum)
//   * 8x4,   replication 1, 32 nodes (reference for the replicated runs)
//   * 8x4,   replication 2, 64 physical nodes, with 0..3 dead nodes
//
// Paper findings to reproduce in shape: replication adds ~25% to config and
// ~60% to reduce; the runtime is independent of the number of failures (the
// packet race absorbs them); results remain exact until a whole replica
// group dies (≈ √m failures at s = 2).
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace kylix;

struct Row {
  const char* label;
  double config_s;
  double reduce_s;
};

Row run_unreplicated(const bench::Dataset& data, const Topology& topo,
                     const char* label) {
  const auto times = bench::run_allreduce(data, topo, 16);
  return Row{label, times.config, times.reduce()};
}

Row run_replicated(const bench::Dataset& data, const Topology& topo,
                   rank_t failures, const char* label) {
  const NetworkModel net = bench::scaled_network();
  const ComputeModel compute;
  const rank_t logical = topo.num_machines();
  FailureModel failure_model(logical * 2);
  // Distinct replica groups, alternating replica halves (worst case short
  // of killing a whole group).
  for (rank_t f = 0; f < failures; ++f) {
    failure_model.kill(f * 5 + (f % 2) * logical);
  }
  TimingAccumulator timing(logical * 2, net, compute, 16);
  ReplicatedBsp<real_t> engine(logical, 2, &failure_model, nullptr,
                               &timing);
  KYLIX_CHECK(!engine.has_failed());
  SparseAllreduce<real_t, OpSum, ReplicatedBsp<real_t>> allreduce(
      &engine, topo, &compute);
  allreduce.configure(data.in_sets, data.out_sets);
  (void)allreduce.reduce(data.out_values);
  const auto times = timing.times();
  return Row{label, times.config, times.reduce()};
}

}  // namespace

int main() {
  std::printf("# Table I: cost of fault tolerance (twitter-like "
              "workload)\n\n");

  // 64-way partition for the unreplicated optimum; 32-way for the
  // replicated network (its data is partitioned into 32 logical parts).
  const bench::Dataset data64 = bench::make_dataset("twitter", 64);
  const bench::Dataset data32 = bench::make_dataset("twitter", 32);

  std::vector<Row> rows;
  rows.push_back(
      run_unreplicated(data64, Topology({8, 4, 2}), "8x4x2 rep=1 (64n)"));
  rows.push_back(
      run_unreplicated(data32, Topology({8, 4}), "8x4   rep=1 (32n)"));
  rows.push_back(run_replicated(data32, Topology({8, 4}), 0,
                                "8x4   rep=2 (64n) 0 dead"));
  rows.push_back(run_replicated(data32, Topology({8, 4}), 1,
                                "8x4   rep=2 (64n) 1 dead"));
  rows.push_back(run_replicated(data32, Topology({8, 4}), 2,
                                "8x4   rep=2 (64n) 2 dead"));
  rows.push_back(run_replicated(data32, Topology({8, 4}), 3,
                                "8x4   rep=2 (64n) 3 dead"));

  std::printf("%-28s %-12s %-12s\n", "configuration", "config_s",
              "reduce_s");
  for (const Row& row : rows) {
    std::printf("%-28s %-12.4f %-12.4f\n", row.label, row.config_s,
                row.reduce_s);
  }

  const double config_overhead = rows[2].config_s / rows[1].config_s - 1.0;
  const double reduce_overhead = rows[2].reduce_s / rows[1].reduce_s - 1.0;
  std::printf("\nreplication overhead vs unreplicated 32-node network: "
              "config +%.0f%%, reduce +%.0f%% (paper: +25%%, +60%%)\n",
              config_overhead * 100, reduce_overhead * 100);
  std::printf("runtime across 0-3 failures: %.4f / %.4f / %.4f / %.4f s "
              "(paper: independent of failures)\n",
              rows[2].config_s + rows[2].reduce_s,
              rows[3].config_s + rows[3].reduce_s,
              rows[4].config_s + rows[4].reduce_s,
              rows[5].config_s + rows[5].reduce_s);
  return 0;
}
