// CollectivePlan — the compiled, immutable routing state of one allreduce.
//
// Kylix's configuration pass (§III-A) derives everything value traffic will
// ever need: per-layer unions, the f/g positional maps, split boundaries,
// received-piece sizes, and the bottom in->out map. None of it depends on
// values, only on the {in, out} key sets — so it can be computed once,
// frozen, and replayed. A CollectivePlan holds exactly that frozen state for
// every rank, plus the topology and a fingerprint of the key sets it was
// compiled from, making it shareable (cache it, hand it to many executors,
// replay it across iterations) and value-type independent: the same plan
// drives float and double reduces alike.
//
// Plans are produced by SparseAllreduce::compile() (which runs the ordinary
// configuration rounds and then freezes the nodes) and consumed by
// ReduceExecutor (core/executor.hpp), which binds value buffers to a plan
// and replays the schedule without touching any routing state. PlanCache
// (core/plan_cache.hpp) keys plans by fingerprint so recurring minibatch
// patterns skip configuration entirely.
//
// The class is mutable only while being built; everything downstream holds
// it behind shared_ptr<const CollectivePlan>.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/trace.hpp"
#include "common/types.hpp"
#include "core/topology.hpp"
#include "sparse/kernels/kernels.hpp"
#include "sparse/key_set.hpp"
#include "sparse/merge.hpp"

namespace kylix {

/// Frozen per-communication-layer routing state of one rank (the LayerCfg a
/// KylixNode derives during configuration, minus anything mutable).
struct PlanLayer {
  std::vector<rank_t> group;             ///< members == expected senders
  std::vector<std::size_t> in_split;     ///< piece boundaries of in^{i-1}
  std::vector<std::size_t> out_split;    ///< piece boundaries of out^{i-1}
  std::vector<PosMap> in_maps;           ///< g maps (piece -> in union)
  std::vector<PosMap> out_maps;          ///< f maps (piece -> out union)
  std::vector<std::size_t> recv_out_sizes;  ///< per-sender piece lengths
  std::size_t out_union_size = 0;        ///< |out^i| (scatter target size)
  std::size_t in_prev_size = 0;          ///< |in^{i-1}| (allgather target)
};

/// Everything one rank needs to replay reduces against a compiled plan.
struct RankPlan {
  bool configured = false;  ///< dead ranks never finish configuration
  KeySet in0;               ///< requested set (result alignment, loss report)
  std::size_t out0_size = 0;             ///< contributed-set length
  std::vector<std::size_t> in_sizes;     ///< |in^i| for node layers 0..l
  std::vector<std::size_t> out_sizes;    ///< |out^i| for node layers 0..l
  std::vector<PlanLayer> layers;         ///< index i-1 holds comm layer i
  PosMap bottom_map;                     ///< in^l within out^l (kMissingPos
                                         ///< marks degraded holes)
  std::vector<key_t> missing_bottom;     ///< degraded: unresolvable in-keys
  std::size_t up_capacity = 0;           ///< max |in^i| buffer watermark
};

/// Sentinel: a host with no alive canonical leader at compile time (its
/// members complete degraded — identity results, contributions lost).
inline constexpr rank_t kNoLeader = static_cast<rank_t>(-1);

/// Frozen intra-node tier of one host (DESIGN §13): the alive members at
/// compile time, the canonical leader carrying the host union through the
/// inter-node layers, and the member piece -> host union positional maps
/// that drive the single-copy shared-memory stage. maps[i] belongs to
/// members[i]; out_maps scatter member contributions into the host out
/// union, in_maps gather member results from the host in union.
struct IntraHost {
  rank_t leader = kNoLeader;
  std::vector<rank_t> members;  ///< alive at compile, ascending
  std::vector<PosMap> out_maps;
  std::vector<PosMap> in_maps;
  std::size_t out_union_size = 0;  ///< |host out union| (scatter target)
};

/// One edge of the frozen message schedule (cold-path introspection).
struct ScheduledMessage {
  Phase phase = Phase::kConfig;
  std::uint16_t layer = 0;  ///< communication layer, 1-based
  rank_t src = 0;
  rank_t dst = 0;
  std::size_t elements = 0;  ///< key positions (config: in+out keys)
};

class CollectivePlan {
 public:
  /// `fingerprint` identifies the {in, out} key sets this plan was compiled
  /// from (PlanCache::fingerprint); 0 is allowed for anonymous plans.
  CollectivePlan(Topology topology, std::uint64_t fingerprint)
      : topo_(std::move(topology)), fingerprint_(fingerprint) {
    ranks_.resize(topo_.num_machines());
  }

  [[nodiscard]] const Topology& topology() const { return topo_; }
  [[nodiscard]] std::uint64_t fingerprint() const { return fingerprint_; }
  [[nodiscard]] rank_t num_ranks() const {
    return static_cast<rank_t>(ranks_.size());
  }

  [[nodiscard]] const RankPlan& rank_plan(rank_t rank) const {
    KYLIX_CHECK(rank < ranks_.size());
    return ranks_[rank];
  }

  /// Build-time access; never call through a const (shared) plan.
  [[nodiscard]] RankPlan& mutable_rank_plan(rank_t rank) {
    KYLIX_CHECK(rank < ranks_.size());
    return ranks_[rank];
  }

  /// True iff any rank finished configuration (a plan compiled under total
  /// failure has nothing to replay).
  [[nodiscard]] bool any_configured() const {
    for (const RankPlan& r : ranks_) {
      if (r.configured) return true;
    }
    return false;
  }

  /// True iff some rank holds degraded holes (compiled after a whole
  /// replica group died): replayed results carry identity at lost keys.
  [[nodiscard]] bool degraded() const {
    for (const RankPlan& r : ranks_) {
      if (!r.missing_bottom.empty()) return true;
    }
    return false;
  }

  /// Streaming chunk size in payload bytes, compiled from
  /// NetworkModel::min_efficient_packet when the allreduce knows its network
  /// (SparseAllreduce::set_network) and overridable via tuning before the
  /// plan is shared. 0 means "no chunk schedule": a streamed executor falls
  /// back to letter-at-once. The executor converts bytes to key positions
  /// per reduce (max(1, chunk_bytes / (sizeof(V) * stride))), so one plan
  /// still serves every value type and stride.
  [[nodiscard]] std::uint64_t chunk_bytes() const { return chunk_bytes_; }
  void set_chunk_bytes(std::uint64_t bytes) { chunk_bytes_ = bytes; }

  /// Union kernel frozen per communication layer at compile time (the
  /// autotune choice the configuration pass actually ran with).
  [[nodiscard]] const std::vector<kernels::UnionKernel>& union_kernels()
      const {
    return union_kernels_;
  }
  void set_union_kernels(std::vector<kernels::UnionKernel> kernels) {
    union_kernels_ = std::move(kernels);
  }

  /// Intra-node tier of a hierarchical plan, one entry per host (empty for
  /// flat plans). Set once by the compiler before the plan is shared.
  [[nodiscard]] bool hierarchical() const { return !intra_.empty(); }
  [[nodiscard]] const std::vector<IntraHost>& intra_hosts() const {
    return intra_;
  }
  [[nodiscard]] const IntraHost& intra_host(rank_t host) const {
    KYLIX_CHECK(host < intra_.size());
    return intra_[host];
  }
  void set_intra_hosts(std::vector<IntraHost> intra) {
    intra_ = std::move(intra);
  }

  /// Mean out-set size over configured ranks at node layers 0..l — the
  /// measured P_i column of the run report, off the frozen plan.
  /// Hierarchical plans average over host leaders (the ranks that hold the
  /// per-layer unions), so Prop 4.1 shape checks stay per inter-node layer.
  [[nodiscard]] std::vector<double> mean_layer_elements() const;

  /// The full frozen per-round message schedule: who sends what to whom at
  /// which (phase, layer), in element counts. Cold path (allocates); the
  /// executor replays this implicitly, this form exists for reports/CLI.
  [[nodiscard]] std::vector<ScheduledMessage> message_schedule() const;

  /// Total wire bytes one replayed reduce moves (no config traffic), for
  /// `stride` interleaved payloads of `value_bytes` each: piece keys are
  /// never resent, so bytes grow sublinearly in stride.
  [[nodiscard]] std::uint64_t reduce_wire_bytes(std::size_t value_bytes,
                                                std::uint32_t stride) const;

 private:
  Topology topo_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t chunk_bytes_ = 0;
  std::vector<RankPlan> ranks_;
  std::vector<IntraHost> intra_;  ///< per host; empty for flat plans
  std::vector<kernels::UnionKernel> union_kernels_;
};

/// Order- and role-sensitive fingerprint of per-rank {in, out} key sets:
/// two workloads collide only if every rank requests and contributes the
/// same keys. Chained mix64 over lengths and keys (common/hash.hpp);
/// allocation-free, O(total keys).
[[nodiscard]] std::uint64_t fingerprint_key_sets(
    std::span<const KeySet> in_sets, std::span<const KeySet> out_sets);

}  // namespace kylix
