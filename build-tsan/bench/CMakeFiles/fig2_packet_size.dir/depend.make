# Empty dependencies file for fig2_packet_size.
# This may be replaced when dependencies are built.
