// Degraded-completion report (chaos engine).
//
// When an entire replica group dies mid-run, the exact allreduce result is
// unreachable — but the protocol still terminates: surviving machines treat
// the dead group's pieces as empty/identity and finish over whatever key
// ranges survive. This report tells the caller precisely what was lost:
//
//   lost_logical        the logical ranks whose whole group died in-run
//   inputs_lost         the subset whose *contributions* never entered the
//                       reduction (dead at start, or dead before their
//                       first reduce-down merge): their out-values are
//                       missing from every sum, everywhere
//   degraded_ranges     hashed-key ranges whose sums may be partial or
//                       identity. A group that died at {down, layer i}
//                       having merged through layer i-1 takes its
//                       node-layer i-1 range down with it; a death noticed
//                       at {up, layer i} loses the group's node-layer i
//                       range (it was the requesters' only path to those
//                       fully-reduced values). A death that persists into
//                       the up pass therefore widens to the group's
//                       node-layer 1 range — group death is expensive.
//   lost_keys           requested indices no surviving machine contributed;
//                       those result positions hold the reduction identity
//   lost_keys_per_rank  unreliable in-keys per alive requester (in
//                       lost_keys or inside a degraded range)
//   mass_lost_fraction  fraction of total input mass Σ|v| on dead groups
//
// The contract (asserted by tests/integration/chaos_test): for every alive
// requester, result values at keys outside degraded_ranges ∪ lost_keys
// exactly equal the brute-force sum over all machines except inputs_lost —
// those contributions were fully merged before the death.
#pragma once

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "comm/recovery.hpp"
#include "common/types.hpp"
#include "sparse/key_set.hpp"

namespace kylix {

struct DegradedReport {
  bool degraded = false;  ///< false: the run was exact, rest is empty
  std::vector<rank_t> lost_logical;     ///< groups observed dead in-run
  std::vector<rank_t> lost_from_start;  ///< subset dead before round one
  /// Subset whose contributions never entered any sum (dead at start or
  /// before their first reduce-down merge). Comparison oracles must
  /// exclude these ranks' out-values.
  std::vector<rank_t> inputs_lost;
  std::vector<KeyRange> degraded_ranges;  ///< possibly-partial sums
  std::vector<key_t> lost_keys;           ///< identity-valued result keys
  /// lost_keys restricted to each alive requester's in-set, indexed by
  /// logical rank (empty vector for dead ranks).
  std::vector<std::vector<key_t>> lost_keys_per_rank;
  double mass_lost_fraction = 0.0;
  RecoveryStats recovery;            ///< engine-wide recovery counters
  std::vector<DeathRecord> deaths;   ///< raw {phase, layer, group} records

  /// True if `key`'s sum may be partial (inside some degraded range).
  [[nodiscard]] bool covers(key_t key) const {
    for (const KeyRange& range : degraded_ranges) {
      if (range.contains(key)) return true;
    }
    return false;
  }

  [[nodiscard]] std::string summary() const {
    std::ostringstream out;
    if (!degraded) {
      out << "exact completion (no replica group lost)";
      return out.str();
    }
    out << "degraded completion: lost " << lost_logical.size()
        << " logical rank(s) (" << inputs_lost.size()
        << " with inputs lost), " << degraded_ranges.size()
        << " degraded key range(s), " << lost_keys.size()
        << " unresolvable key(s), mass lost " << mass_lost_fraction;
    return out.str();
  }
};

}  // namespace kylix
