// The engine observer hook (DESIGN.md "Observability").
//
// Every engine already carries optional Trace / TimingAccumulator pointers;
// EngineObserver is the third — and last — slot of that pattern: a virtual
// interface the telemetry layer (src/obs) implements so the engines stay
// ignorant of metrics registries and span tracers. All hooks are no-ops by
// default; engines guard every call with a null check, so the hot path stays
// zero-allocation (and virtually call-free) when no observer is attached,
// exactly like the trace/timing slots (asserted by tests/core/alloc_test).
//
// Hook order within one engine round:
//   on_round_begin -> {on_message | on_drop | on_redelivery}* -> on_round_end
// ThreadedBsp calls on_message/on_drop from worker threads (serialized by
// its observer mutex); all other engines call every hook from the driving
// thread. ReplicatedBsp reports one on_message per transmitted *copy*, in
// physical ranks, mirroring what it records into the Trace.
#pragma once

#include <cstdint>

#include "cluster/fault_plan.hpp"
#include "cluster/trace.hpp"

namespace kylix {

/// What a recovery-capable engine (ReplicatedBsp) just did about a missing
/// letter or a dead replica group.
enum class RecoveryAction : std::uint8_t {
  kDetect = 0,      ///< a letter had no surviving on-time copy
  kRetry = 1,       ///< one re-request attempt went out
  kPromote = 2,     ///< a surviving replica served the letter
  kForce = 3,       ///< retries exhausted; reliable-path fallback delivered
  kGroupDeath = 4,  ///< an expected sender's whole replica group is dead
};

[[nodiscard]] constexpr const char* recovery_action_name(
    RecoveryAction action) {
  switch (action) {
    case RecoveryAction::kDetect:
      return "detect";
    case RecoveryAction::kRetry:
      return "retry";
    case RecoveryAction::kPromote:
      return "promote";
    case RecoveryAction::kForce:
      return "force";
    case RecoveryAction::kGroupDeath:
      return "group-death";
  }
  return "?";
}

struct RecoveryEvent {
  Phase phase = Phase::kConfig;
  std::uint16_t layer = 0;
  rank_t src = 0;  ///< logical sender (the dead group for kGroupDeath)
  rank_t dst = 0;  ///< logical receiver
  RecoveryAction action = RecoveryAction::kDetect;
  std::uint32_t attempt = 0;  ///< retry ordinal (1-based) where applicable
};

class EngineObserver {
 public:
  virtual ~EngineObserver() = default;

  /// A communication round (one phase × layer) is starting.
  virtual void on_round_begin(Phase phase, std::uint16_t layer) {
    (void)phase;
    (void)layer;
  }

  /// One message was put on the (simulated) wire.
  virtual void on_message(const MsgEvent& event) { (void)event; }

  /// A transmitted message was dropped (dead destination): the sender paid,
  /// nothing arrives.
  virtual void on_drop(const MsgEvent& event) { (void)event; }

  /// An injected fault hit this message copy (chaos engine; the matching
  /// on_message already fired). kDrop/kDelay copies never arrive; a
  /// kDuplicate copy arrives once but was charged twice.
  virtual void on_fault(const MsgEvent& event, FaultAction action) {
    (void)event;
    (void)action;
  }

  /// The replication layer detected / retried / recovered a missing letter,
  /// or noticed a dead replica group (see RecoveryAction).
  virtual void on_recovery(const RecoveryEvent& event) { (void)event; }

  /// A copy delayed in an earlier round surfaced in this round's inbox:
  /// merged as fresh input (`stale == false`) or superseded by a newer
  /// letter from the same sender and discarded (`stale == true`). Fired
  /// from drain_due alongside the channel's redelivered/stale accounting.
  virtual void on_redelivery(const MsgEvent& event, bool stale) {
    (void)event;
    (void)stale;
  }

  /// The round completed; every inbox has been consumed.
  virtual void on_round_end(Phase phase, std::uint16_t layer) {
    (void)phase;
    (void)layer;
  }
};

}  // namespace kylix
