// Distributed effective-diameter estimation — the §I-A.2 reference to
// HADI-style probabilistic bit-string counting [13], on an OR-allreduce.
//
// Every vertex carries a Flajolet–Martin sketch (a 64-bit word whose bit r
// is set at initialization with probability 2^-(r+1)). Each round ORs
// neighbor sketches into each vertex, first locally along edges, then
// globally through a bit-or sparse allreduce; after h rounds a vertex's
// sketch summarizes its h-hop neighborhood, and the neighborhood function
//
//     N(h) = Σ_v 2^(R_v) / 0.77351        (R_v = lowest zero bit)
//
// saturates once h reaches the graph diameter. Several independent sketch
// passes are averaged to tame the estimator's variance.
#pragma once

#include <cmath>
#include <span>
#include <vector>

#include "core/allreduce.hpp"
#include "sparse/csr.hpp"

namespace kylix {

template <typename Engine>
class DistributedDiameter {
 public:
  struct Result {
    std::uint32_t diameter = 0;  ///< rounds until N(h) stopped growing
    std::vector<double> neighborhood;  ///< N(h), h = 1..diameter(+1)
  };

  DistributedDiameter(Engine* engine, Topology topology,
                      std::span<const std::vector<Edge>> partitions,
                      const ComputeModel* compute = nullptr)
      : engine_(engine), topology_(std::move(topology)), compute_(compute) {
    KYLIX_CHECK(partitions.size() == topology_.num_machines());
    graphs_.reserve(partitions.size());
    for (const auto& part : partitions) {
      std::vector<Edge> sym;
      sym.reserve(part.size() * 2);
      for (const Edge& e : part) {
        sym.push_back(e);
        sym.push_back(Edge{e.dst, e.src});
      }
      graphs_.emplace_back(std::span<const Edge>(sym));
    }
  }

  /// Run `passes` independent sketch passes. Per-vertex FM statistics
  /// R_v(h) (lowest zero bit after h rounds) are averaged over passes and
  /// exponentiated in the standard Flajolet–Martin form
  ///   N(h) = Σ_v 2^(mean_p R_v(h)) / 0.77351
  /// (averaging before exponentiation; E[2^R] itself diverges). Vertices
  /// replicated on several machines are counted per copy, consistently
  /// across h, so the curve's saturation point — the quantity HADI-style
  /// diameter estimation reads off — is unaffected.
  [[nodiscard]] Result run(std::uint32_t max_rounds = 64,
                           std::uint32_t passes = 4,
                           std::uint64_t seed = 99) {
    const rank_t m = topology_.num_machines();
    SparseAllreduce<std::uint64_t, OpBitOr, Engine> allreduce(
        engine_, topology_, compute_);
    {
      std::vector<KeySet> in_sets;
      std::vector<KeySet> out_sets;
      for (const LocalGraph& g : graphs_) {
        in_sets.push_back(g.sources());
        out_sets.push_back(g.sources());
      }
      allreduce.configure(std::move(in_sets), std::move(out_sets));
    }

    // histories[pass][h][machine][v] = R, ragged in h (passes stop early
    // once their sketches saturate; the final entry then holds).
    std::vector<History> histories;
    std::size_t longest = 0;
    for (std::uint32_t pass = 0; pass < passes; ++pass) {
      histories.push_back(
          run_pass(allreduce, max_rounds, mix64(seed + pass)));
      longest = std::max(longest, histories.back().size());
    }

    Result result;
    for (std::size_t h = 0; h < longest; ++h) {
      double total = 0;
      for (rank_t r = 0; r < m; ++r) {
        const std::size_t count = graphs_[r].sources().size();
        for (std::size_t v = 0; v < count; ++v) {
          double mean_r = 0;
          for (const History& history : histories) {
            const auto& round = h < history.size() ? history[h]
                                                   : history.back();
            mean_r += round[r][v];
          }
          mean_r /= static_cast<double>(histories.size());
          total += std::pow(2.0, mean_r) / 0.77351;
        }
      }
      result.neighborhood.push_back(total);
    }
    result.diameter =
        longest == 0 ? 0 : static_cast<std::uint32_t>(longest - 1);
    return result;
  }

 private:
  /// Per round, per machine, per local vertex: the FM statistic R.
  using History = std::vector<std::vector<std::vector<std::uint8_t>>>;

  /// FM sketch for a vertex: one geometric bit per word.
  static std::uint64_t make_sketch(index_t vertex, std::uint64_t seed) {
    std::uint64_t u = mix64(hash_index(vertex) ^ seed);
    // Lowest set bit of a uniform word is geometric(1/2) — exactly the FM
    // initialization probability schedule.
    if (u == 0) u = 1;
    return u & (~u + 1);
  }

  /// R = index of the lowest zero bit.
  static std::uint8_t lowest_zero_bit(std::uint64_t word) {
    std::uint8_t r = 0;
    while (r < 64 && ((word >> r) & 1)) ++r;
    return r;
  }

  [[nodiscard]] std::vector<std::vector<std::uint8_t>> snapshot(
      const std::vector<std::vector<std::uint64_t>>& sketches) const {
    std::vector<std::vector<std::uint8_t>> rs(sketches.size());
    for (std::size_t r = 0; r < sketches.size(); ++r) {
      rs[r].reserve(sketches[r].size());
      for (std::uint64_t word : sketches[r]) {
        rs[r].push_back(lowest_zero_bit(word));
      }
    }
    return rs;
  }

  History run_pass(
      SparseAllreduce<std::uint64_t, OpBitOr, Engine>& allreduce,
      std::uint32_t max_rounds, std::uint64_t seed) {
    const rank_t m = topology_.num_machines();
    std::vector<std::vector<std::uint64_t>> sketches(m);
    for (rank_t r = 0; r < m; ++r) {
      const auto ids = graphs_[r].sources().to_indices();
      sketches[r].reserve(ids.size());
      for (index_t v : ids) sketches[r].push_back(make_sketch(v, seed));
    }

    History history;
    for (std::uint32_t round = 0; round < max_rounds; ++round) {
      std::vector<std::vector<std::uint64_t>> proposed(m);
      for (rank_t r = 0; r < m; ++r) {
        proposed[r] = sketches[r];
        graphs_[r].or_propagate_into<std::uint64_t>(sketches[r],
                                                    proposed[r]);
      }
      auto reduced = allreduce.reduce(std::move(proposed));
      const bool changed = reduced != sketches;
      sketches = std::move(reduced);
      history.push_back(snapshot(sketches));
      if (!changed) break;  // saturated: the sketches cover the graph
    }
    return history;
  }

  Engine* engine_;
  Topology topology_;
  const ComputeModel* compute_;
  std::vector<LocalGraph> graphs_;
};

}  // namespace kylix
