// The §V replication layer: s-fold data replication with packet racing.
//
// A logical network of m nodes is mapped onto s·m physical machines; the
// data of logical node j lives on physical machines j, j+m, …, j+(s-1)m.
// Every message from logical j to logical k is transmitted by *each alive
// replica* of j to *each replica* of k (s copies per physical sender, s²
// per logical edge, the "per-node communication increases by s" worst case).
// A receiver listens to the whole replica group of the expected sender and
// uses the first copy that arrives, canceling the rest — so it pays receive
// cost for the winning copy only, while every transmitted copy costs its
// sender. The protocol completes unless an entire replica group is dead
// (has_failed()), which by the birthday argument takes ≈ √m failures at
// s = 2.
//
// Exposes the same round() interface as BspEngine, addressed in *logical*
// ranks, so the identical node algorithm runs unmodified on top of it.
#pragma once

#include <algorithm>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/timing.hpp"
#include "cluster/trace.hpp"
#include "comm/packet.hpp"
#include "common/check.hpp"
#include "common/hash.hpp"
#include "obs/observer.hpp"

namespace kylix {

template <typename V>
class ReplicatedBsp {
 public:
  /// `failures`, `trace`, `timing` all address *physical* ranks in
  /// [0, logical_nodes * replication). Observers optional, not owned.
  ReplicatedBsp(rank_t logical_nodes, std::uint32_t replication,
                const FailureModel* failures = nullptr,
                Trace* trace = nullptr, TimingAccumulator* timing = nullptr)
      : logical_(logical_nodes),
        replication_(replication),
        failures_(failures),
        trace_(trace),
        timing_(timing) {
    KYLIX_CHECK(logical_nodes >= 1);
    KYLIX_CHECK(replication >= 1);
  }

  [[nodiscard]] rank_t num_ranks() const { return logical_; }
  [[nodiscard]] rank_t num_physical() const {
    return logical_ * replication_;
  }

  /// Physical rank of replica r of logical node j.
  [[nodiscard]] rank_t physical(rank_t logical, std::uint32_t replica) const {
    return logical + replica * logical_;
  }

  /// Alive replicas of a logical node, in replica order.
  [[nodiscard]] std::vector<rank_t> alive_replicas(rank_t logical) const {
    std::vector<rank_t> alive;
    for (std::uint32_t r = 0; r < replication_; ++r) {
      const rank_t p = physical(logical, r);
      if (failures_ == nullptr || !failures_->is_dead(p)) alive.push_back(p);
    }
    return alive;
  }

  /// A logical node fails only when its whole replica group is dead.
  [[nodiscard]] bool is_dead(rank_t logical) const {
    return alive_replicas(logical).empty();
  }

  /// True if any logical node has lost all replicas (allreduce cannot
  /// complete correctly).
  [[nodiscard]] bool has_failed() const {
    for (rank_t j = 0; j < logical_; ++j) {
      if (is_dead(j)) return true;
    }
    return false;
  }

  /// Telemetry hook (src/obs); optional, not owned. Sees one on_message per
  /// transmitted copy, in physical ranks, mirroring the trace.
  void set_observer(EngineObserver* observer) { observer_ = observer; }

  /// §V-B racing outcomes since construction: a receiver consumes the first
  /// arriving copy (win) and cancels the rest (losses); copies addressed to
  /// dead physical receivers are drops.
  struct RaceStats {
    std::uint64_t wins = 0;
    std::uint64_t losses = 0;
    std::uint64_t drops = 0;
  };
  [[nodiscard]] const RaceStats& race_stats() const { return races_; }

  /// Copies transmitted to dead physical destinations since construction.
  [[nodiscard]] std::uint64_t dropped_messages() const { return races_.drops; }

  /// Modeled compute runs on every alive replica of the logical rank.
  void charge_compute(Phase phase, std::uint16_t layer, rank_t logical,
                      double seconds) {
    if (timing_ == nullptr) return;
    for (rank_t p : alive_replicas(logical)) {
      timing_->on_compute(phase, layer, p, seconds);
    }
  }

  template <typename ProduceFn, typename ExpectedFn, typename ConsumeFn>
  void round(Phase phase, std::uint16_t layer, ProduceFn&& produce,
             ExpectedFn&& expected, ConsumeFn&& consume) {
    if (observer_ != nullptr) observer_->on_round_begin(phase, layer);
    std::vector<std::vector<Letter<V>>> inboxes(logical_);
    for (rank_t j = 0; j < logical_; ++j) {
      if (is_dead(j)) continue;
      for (Letter<V>& letter : produce(j)) {
        KYLIX_DCHECK(letter.src == j);
        KYLIX_CHECK_MSG(letter.dst < logical_, "letter to invalid rank");
        transmit(phase, layer, std::move(letter), inboxes);
      }
    }
    for (rank_t j = 0; j < logical_; ++j) {
      if (is_dead(j)) continue;
      auto& inbox = inboxes[j];
      std::sort(inbox.begin(), inbox.end(),
                [](const Letter<V>& a, const Letter<V>& b) {
                  return a.src < b.src;
                });
#ifndef NDEBUG
      if (!inbox.empty()) {
        // Sanity: only expected senders may appear (sorted + binary search).
        std::vector<rank_t> senders(expected(j).begin(), expected(j).end());
        std::sort(senders.begin(), senders.end());
        for (const Letter<V>& letter : inbox) {
          KYLIX_DCHECK(
              std::binary_search(senders.begin(), senders.end(), letter.src));
        }
      }
#else
      (void)expected;
#endif
      consume(j, std::move(inbox));
    }
    if (observer_ != nullptr) observer_->on_round_end(phase, layer);
  }

 private:
  void transmit(Phase phase, std::uint16_t layer, Letter<V>&& letter,
                std::vector<std::vector<Letter<V>>>& inboxes) {
    const std::uint64_t bytes = letter.packet.wire_bytes();
    const std::vector<rank_t> senders = alive_replicas(letter.src);
    KYLIX_DCHECK(!senders.empty());

    if (letter.src == letter.dst) {
      // Replicas run identical programs, so each already has its own copy
      // of a self-message: no wire traffic.
      inboxes[letter.dst].push_back(std::move(letter));
      return;
    }

    for (std::uint32_t r = 0; r < replication_; ++r) {
      const rank_t dst_phys = physical(letter.dst, r);
      const bool dst_dead =
          failures_ != nullptr && failures_->is_dead(dst_phys);
      // Every alive sender replica transmits a copy (charged to it), even
      // to dead destinations.
      for (rank_t src_phys : senders) {
        const MsgEvent event{phase, layer, src_phys, dst_phys, bytes};
        if (trace_ != nullptr) trace_->add(event);
        if (timing_ != nullptr) {
          timing_->on_send(phase, layer, src_phys, bytes);
        }
        if (observer_ != nullptr) observer_->on_message(event);
        if (dst_dead) {
          ++races_.drops;
          if (observer_ != nullptr) observer_->on_drop(event);
        }
      }
      // The receiver races the copies and pays for the winner only.
      if (dst_dead) continue;
      races_.wins += 1;
      races_.losses += senders.size() - 1;
      if (timing_ != nullptr) {
        timing_->on_recv(phase, layer, dst_phys, bytes);
      }
    }
    inboxes[letter.dst].push_back(std::move(letter));
  }

  rank_t logical_;
  std::uint32_t replication_;
  const FailureModel* failures_;
  Trace* trace_;
  TimingAccumulator* timing_;
  EngineObserver* observer_ = nullptr;
  RaceStats races_;
};

}  // namespace kylix
