// Invertible 64-bit index hashing.
//
// The paper partitions index sets into equal *hashed* key ranges so that the
// skewed head of power-law data spreads uniformly over machines ("we ensure
// that the original indices are hashed to the values used for partitioning",
// §III-A). We use the splitmix64 finalizer, which is a bijection on 64-bit
// words: internal sets store only hashed keys, and the original index is
// recovered exactly via unhash_index() when results are handed back.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace kylix {

/// splitmix64 finalizer: bijective, well-mixed, ~3ns. hash_index(a) ==
/// hash_index(b) iff a == b, so key collisions cannot occur.
[[nodiscard]] constexpr key_t hash_index(index_t x) noexcept {
  std::uint64_t z = x;
  z ^= z >> 30;
  z *= 0xbf58476d1ce4e5b9ULL;
  z ^= z >> 27;
  z *= 0x94d049bb133111ebULL;
  z ^= z >> 31;
  return z;
}

/// Exact inverse of hash_index (inverse multiplies are the modular inverses
/// of the two mixing constants mod 2^64; xorshifts invert by iteration).
[[nodiscard]] constexpr index_t unhash_index(key_t z) noexcept {
  // Invert z ^= z >> 31: one reapplication suffices since 31 >= 64/2... it
  // does not in general, so fold until fixed (64/31 -> 2 steps are enough).
  z ^= z >> 31;
  z ^= z >> 62;
  z *= 0x319642b2d24d8ec3ULL;  // inverse of 0x94d049bb133111eb mod 2^64
  z ^= z >> 27;
  z ^= z >> 54;
  z *= 0x96de1b173f119089ULL;  // inverse of 0xbf58476d1ce4e5b9 mod 2^64
  z ^= z >> 30;
  z ^= z >> 60;
  return z;
}

/// A general-purpose mixing step for seeding RNG streams.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  return hash_index(x + 0x9e3779b97f4a7c15ULL);
}

}  // namespace kylix
