#include "apps/components.hpp"

#include <gtest/gtest.h>

#include <map>

#include "apps/reference.hpp"
#include "comm/bsp.hpp"
#include "powerlaw/graphgen.hpp"

namespace kylix {
namespace {

using Engine = BspEngine<std::uint64_t>;

void expect_matches_reference(
    const DistributedComponents<Engine>::Result& result,
    std::span<const Edge> edges, std::uint64_t num_vertices) {
  const auto reference = reference_components(edges, num_vertices);
  std::size_t checked = 0;
  for (std::size_t r = 0; r < result.vertex_sets.size(); ++r) {
    const auto ids = result.vertex_sets[r].to_indices();
    for (std::size_t p = 0; p < ids.size(); ++p) {
      EXPECT_EQ(result.labels[r][p], reference[ids[p]])
          << "vertex " << ids[p] << " machine " << r;
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
}

TEST(DistributedComponents, TwoTrianglesAndAnEdge) {
  // {0,1,2} and {3,4,5} triangles joined 2-3, plus isolated pair {7,8}.
  const std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 0}, {3, 4},
                                   {4, 5}, {5, 3}, {2, 3}, {7, 8}};
  const Topology topo({2});
  Engine engine(2);
  const auto parts = random_edge_partition(edges, 2, 5);
  DistributedComponents<Engine> cc(&engine, topo, parts);
  const auto result = cc.run();
  expect_matches_reference(result, edges, 9);
}

class ComponentsTopologyTest
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(ComponentsTopologyTest, MatchesUnionFindOnRandomGraphs) {
  const Topology topo(GetParam());
  const rank_t m = topo.num_machines();
  GraphSpec spec;
  spec.num_vertices = 2000;
  spec.num_edges = 4000;  // sparse: many components
  spec.alpha_out = 1.0;
  spec.alpha_in = 1.0;
  spec.seed = 200 + m;
  const auto edges = generate_zipf_graph(spec);
  const auto parts = random_edge_partition(edges, m, spec.seed);
  Engine engine(m);
  DistributedComponents<Engine> cc(&engine, topo, parts);
  const auto result = cc.run(256);
  EXPECT_GT(result.iterations, 0u);
  expect_matches_reference(result, edges, spec.num_vertices);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, ComponentsTopologyTest,
    ::testing::Values(std::vector<std::uint32_t>{},
                      std::vector<std::uint32_t>{4},
                      std::vector<std::uint32_t>{2, 2},
                      std::vector<std::uint32_t>{3, 2}));

TEST(DistributedComponents, PathGraphNeedsManyIterations) {
  // A long path propagates the minimum one hop per round (doubling via
  // symmetric propagation): iterations grow with the path length.
  std::vector<Edge> path;
  for (index_t v = 0; v + 1 < 64; ++v) path.push_back(Edge{v, v + 1});
  const Topology topo({2, 2});
  Engine engine(4);
  const auto parts = random_edge_partition(path, 4, 6);
  DistributedComponents<Engine> cc(&engine, topo, parts);
  const auto result = cc.run(256);
  EXPECT_GT(result.iterations, 5u);
  expect_matches_reference(result, path, 64);
}

TEST(DistributedComponents, ReplicatedVerticesAgreeAcrossMachines) {
  GraphSpec spec;
  spec.num_vertices = 500;
  spec.num_edges = 3000;
  spec.seed = 77;
  const auto edges = generate_zipf_graph(spec);
  const Topology topo({2, 2});
  Engine engine(4);
  const auto parts = random_edge_partition(edges, 4, 7);
  DistributedComponents<Engine> cc(&engine, topo, parts);
  const auto result = cc.run();
  std::map<index_t, std::uint64_t> seen;
  for (std::size_t r = 0; r < 4; ++r) {
    const auto ids = result.vertex_sets[r].to_indices();
    for (std::size_t p = 0; p < ids.size(); ++p) {
      const auto [it, inserted] = seen.emplace(ids[p], result.labels[r][p]);
      EXPECT_EQ(it->second, result.labels[r][p]) << "vertex " << ids[p];
    }
  }
}

}  // namespace
}  // namespace kylix
