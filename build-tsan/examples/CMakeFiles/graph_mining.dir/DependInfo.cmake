
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/graph_mining.cpp" "examples/CMakeFiles/graph_mining.dir/graph_mining.cpp.o" "gcc" "examples/CMakeFiles/graph_mining.dir/graph_mining.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/core/CMakeFiles/kylix_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/apps/CMakeFiles/kylix_apps.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/baselines/CMakeFiles/kylix_baselines.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/powerlaw/CMakeFiles/kylix_powerlaw.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sparse/CMakeFiles/kylix_sparse.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/cluster/CMakeFiles/kylix_cluster.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/common/CMakeFiles/kylix_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
