#include "cluster/fault_plan.hpp"

#include "common/check.hpp"

namespace kylix {

const char* fault_action_name(FaultAction action) {
  switch (action) {
    case FaultAction::kDeliver:
      return "deliver";
    case FaultAction::kDrop:
      return "drop";
    case FaultAction::kDuplicate:
      return "duplicate";
    case FaultAction::kDelay:
      return "delay";
  }
  return "?";
}

FaultPlan::FaultPlan(rank_t num_nodes, std::uint64_t seed)
    : failures_(num_nodes), rng_(mix64(seed ^ 0xc4a05ULL)) {
  KYLIX_CHECK(num_nodes >= 1);
}

void FaultPlan::crash_at_round(rank_t node, std::uint64_t round) {
  KYLIX_CHECK(node < num_nodes());
  Event e;
  e.crash = true;
  e.node = node;
  e.by_round = true;
  e.round = round;
  events_.push_back(e);
}

void FaultPlan::revive_at_round(rank_t node, std::uint64_t round) {
  KYLIX_CHECK(node < num_nodes());
  Event e;
  e.crash = false;
  e.node = node;
  e.by_round = true;
  e.round = round;
  events_.push_back(e);
}

void FaultPlan::crash_at(rank_t node, Phase phase, std::uint16_t layer,
                         std::uint32_t occurrence) {
  KYLIX_CHECK(node < num_nodes());
  Event e;
  e.crash = true;
  e.node = node;
  e.by_round = false;
  e.phase = phase;
  e.layer = layer;
  e.occurrence = occurrence;
  events_.push_back(e);
}

void FaultPlan::revive_at(rank_t node, Phase phase, std::uint16_t layer,
                          std::uint32_t occurrence) {
  KYLIX_CHECK(node < num_nodes());
  Event e;
  e.crash = false;
  e.node = node;
  e.by_round = false;
  e.phase = phase;
  e.layer = layer;
  e.occurrence = occurrence;
  events_.push_back(e);
}

void FaultPlan::random_crashes(rank_t count, std::uint64_t round_horizon) {
  KYLIX_CHECK(count <= num_nodes());
  KYLIX_CHECK(count == 0 || round_horizon >= 1);
  std::vector<bool> chosen(num_nodes(), false);
  rank_t placed = 0;
  while (placed < count) {
    const auto victim = static_cast<rank_t>(rng_.below(num_nodes()));
    if (chosen[victim]) continue;
    chosen[victim] = true;
    crash_at_round(victim, rng_.below(round_horizon));
    ++placed;
  }
}

void FaultPlan::add_edge_rule(const EdgeRule& rule) {
  KYLIX_CHECK(rule.src < num_nodes() && rule.dst < num_nodes());
  KYLIX_CHECK(rule.action != FaultAction::kDelay || rule.delay_rounds >= 1);
  edge_rules_.push_back(rule);
}

void FaultPlan::set_transient_rates(const TransientRates& rates) {
  KYLIX_CHECK(rates.drop >= 0 && rates.duplicate >= 0 && rates.delay >= 0);
  KYLIX_CHECK(rates.drop + rates.duplicate + rates.delay <= 1.0);
  KYLIX_CHECK(rates.delay == 0 || rates.delay_rounds >= 1);
  rates_ = rates;
  has_rates_ = rates.drop > 0 || rates.duplicate > 0 || rates.delay > 0;
}

std::uint32_t FaultPlan::bump_occurrence(Phase phase, std::uint16_t layer) {
  const std::uint32_t key =
      (static_cast<std::uint32_t>(phase) << 16) | layer;
  for (auto& [k, count] : occurrences_) {
    if (k == key) return count++;
  }
  occurrences_.emplace_back(key, 1);
  return 0;
}

void FaultPlan::begin_round(Phase phase, std::uint16_t layer) {
  const std::uint64_t round = rounds_begun_++;
  const std::uint32_t occurrence = bump_occurrence(phase, layer);
  for (Event& e : events_) {
    if (e.fired) continue;
    const bool match =
        e.by_round ? e.round == round
                   : (e.phase == phase && e.layer == layer &&
                      e.occurrence == occurrence);
    if (!match) continue;
    e.fired = true;
    if (e.crash) {
      if (!failures_.is_dead(e.node)) {
        failures_.kill(e.node);
        ++stats_.crashes;
      }
    } else if (failures_.is_dead(e.node)) {
      failures_.revive(e.node);
      ++stats_.revivals;
    }
  }
  const bool phase_on = (phase == Phase::kConfig && rates_.config) ||
                        (phase == Phase::kReduceDown && rates_.reduce_down) ||
                        (phase == Phase::kReduceUp && rates_.reduce_up);
  rates_live_ = has_rates_ && phase_on;
}

void FaultPlan::note_action(FaultAction action) {
  switch (action) {
    case FaultAction::kDeliver:
      break;
    case FaultAction::kDrop:
      ++stats_.dropped;
      break;
    case FaultAction::kDuplicate:
      ++stats_.duplicated;
      break;
    case FaultAction::kDelay:
      ++stats_.delayed;
      break;
  }
}

FaultPlan::Decision FaultPlan::classify(rank_t src, rank_t dst) {
  for (EdgeRule& rule : edge_rules_) {
    if (rule.count == 0 || rule.src != src || rule.dst != dst) continue;
    --rule.count;
    note_action(rule.action);
    return {rule.action,
            rule.action == FaultAction::kDelay ? rule.delay_rounds : 0};
  }
  if (rates_live_) {
    const double u = rng_.uniform();
    if (u < rates_.drop) {
      ++stats_.dropped;
      return {FaultAction::kDrop, 0};
    }
    if (u < rates_.drop + rates_.duplicate) {
      ++stats_.duplicated;
      return {FaultAction::kDuplicate, 0};
    }
    if (u < rates_.drop + rates_.duplicate + rates_.delay) {
      ++stats_.delayed;
      return {FaultAction::kDelay, rates_.delay_rounds};
    }
  }
  return {};
}

std::uint64_t FaultPlan::current_round() const {
  KYLIX_CHECK(rounds_begun_ > 0);
  return rounds_begun_ - 1;
}

bool FaultPlan::scripted() const {
  return !events_.empty() || !edge_rules_.empty() || has_rates_;
}

}  // namespace kylix
