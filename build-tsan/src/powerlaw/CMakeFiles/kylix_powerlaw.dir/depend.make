# Empty dependencies file for kylix_powerlaw.
# This may be replaced when dependencies are built.
