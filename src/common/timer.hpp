// Wall-clock timing helpers for benches and the threaded runtime.
#pragma once

#include <chrono>

namespace kylix {

/// Simple monotonic stopwatch; seconds() returns elapsed time since start or
/// the last reset().
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace kylix
