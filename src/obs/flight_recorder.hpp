// Flight recorder — a lock-free, fixed-capacity black box of structured
// engine events (DESIGN.md "Observability v2").
//
// One ring buffer per simulated rank plus a global ring for rank-less
// events (round boundaries, plan-cache traffic, replay markers). record()
// is allocation-free and wait-free: a global sequence fetch_add, a ring
// head fetch_add, and a slot write — safe to call from engine worker
// threads. When a ring wraps, the oldest events are overwritten (that is
// the point: the recorder always holds the most recent history, and
// dropped() says how much was lost). Concurrent writers to the *same* ring
// can tear a slot only when they race a full capacity apart; the recorder
// is a diagnostic black box, so a torn event under overwrite pressure is
// acceptable — readers must only inspect it at quiescence anyway.
//
// Header-only on purpose: the executor and the plan cache (kylix_core,
// which kylix_obs links against) record replay and cache events directly,
// so the recorder cannot live behind a kylix_obs link symbol.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "cluster/trace.hpp"
#include "common/check.hpp"
#include "common/timer.hpp"

namespace kylix::obs {

/// What happened. Kinds cover the engine observer seam (rounds, faults,
/// recovery, redelivery), the executor (replay + streaming), the plan
/// cache, the watchdog's verdicts, and terminal conditions.
enum class FlightEventKind : std::uint8_t {
  kRoundBegin = 0,
  kRoundEnd = 1,
  kDrop = 2,           ///< dead-destination drop (sender paid, nothing lands)
  kFault = 3,          ///< injected fault; code = FaultAction
  kRecovery = 4,       ///< recovery transition; code = RecoveryAction
  kRedelivered = 5,    ///< a delayed copy surfaced and was merged
  kStaleDrop = 6,      ///< a delayed copy surfaced but was superseded
  kStreamFlush = 7,    ///< streamed blocks flushed this round (value = count)
  kWatermark = 8,      ///< peak stream-buffer watermark moved (bytes = peak)
  kPlanCacheHit = 9,   ///< bytes = plan fingerprint
  kPlanCacheMiss = 10,  ///< bytes = fingerprint of the missing plan
  kReplayBegin = 11,   ///< executor reduce started (bytes = fingerprint)
  kReplayEnd = 12,     ///< executor reduce finished (value = seconds)
  kSlowRound = 13,     ///< watchdog: round slower than baseline (value = s)
  kStraggler = 14,     ///< watchdog: rank finished late (value = offset us)
  kByteImbalance = 15,  ///< watchdog: rank's send volume off-median (value)
  kDegraded = 16,      ///< degraded completion was declared
  kCheckFail = 17,     ///< a KYLIX_CHECK fired (postmortem path)
  kStreamAdmit = 18,   ///< async stream admitted (code = stream id)
  kStreamComplete = 19,  ///< async stream finished (value = modeled seconds)
  kEpochChange = 20,   ///< membership epoch advanced (code = new epoch)
  kRankSuspect = 21,   ///< heartbeat missed; rank on probation (rank = who)
  kRankDead = 22,      ///< probes exhausted; rank declared dead (rank = who)
  kRankJoined = 23,    ///< dead rank back alive at a later epoch (rank = who)
};

[[nodiscard]] constexpr const char* flight_event_kind_name(
    FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kRoundBegin:
      return "round-begin";
    case FlightEventKind::kRoundEnd:
      return "round-end";
    case FlightEventKind::kDrop:
      return "drop";
    case FlightEventKind::kFault:
      return "fault";
    case FlightEventKind::kRecovery:
      return "recovery";
    case FlightEventKind::kRedelivered:
      return "redelivered";
    case FlightEventKind::kStaleDrop:
      return "stale-drop";
    case FlightEventKind::kStreamFlush:
      return "stream-flush";
    case FlightEventKind::kWatermark:
      return "watermark";
    case FlightEventKind::kPlanCacheHit:
      return "plan-cache-hit";
    case FlightEventKind::kPlanCacheMiss:
      return "plan-cache-miss";
    case FlightEventKind::kReplayBegin:
      return "replay-begin";
    case FlightEventKind::kReplayEnd:
      return "replay-end";
    case FlightEventKind::kSlowRound:
      return "slow-round";
    case FlightEventKind::kStraggler:
      return "straggler";
    case FlightEventKind::kByteImbalance:
      return "byte-imbalance";
    case FlightEventKind::kDegraded:
      return "degraded";
    case FlightEventKind::kCheckFail:
      return "check-fail";
    case FlightEventKind::kStreamAdmit:
      return "stream-admit";
    case FlightEventKind::kStreamComplete:
      return "stream-complete";
    case FlightEventKind::kEpochChange:
      return "epoch-change";
    case FlightEventKind::kRankSuspect:
      return "rank-suspect";
    case FlightEventKind::kRankDead:
      return "rank-dead";
    case FlightEventKind::kRankJoined:
      return "rank-joined";
  }
  return "?";
}

/// Sentinel rank for events that belong to the run, not to a machine.
inline constexpr rank_t kGlobalRank = std::numeric_limits<rank_t>::max();

/// One slot of the black box. Plain data, fixed size, no owned storage —
/// record() copies it into a pre-allocated ring.
struct FlightEvent {
  std::uint64_t seq = 0;  ///< global order, assigned by record()
  double t_us = 0;        ///< microseconds since recorder construction
  FlightEventKind kind = FlightEventKind::kRoundBegin;
  Phase phase = Phase::kConfig;
  std::uint16_t layer = 0;
  rank_t rank = kGlobalRank;  ///< owning ring; kGlobalRank -> global ring
  rank_t src = kGlobalRank;
  rank_t dst = kGlobalRank;
  std::uint32_t code = 0;  ///< FaultAction / RecoveryAction / retry attempt
  double value = 0;        ///< kind-specific magnitude (seconds, offsets, …)
  std::uint64_t bytes = 0;  ///< wire bytes, watermark, or plan fingerprint
};

class FlightRecorder {
 public:
  /// `num_ranks` per-rank rings of `per_rank_capacity` slots plus one
  /// global ring of `global_capacity`. Recording starts enabled unless
  /// KYLIX_METRICS disables telemetry ("0"/"off"/"false"), mirroring the
  /// metrics registry.
  explicit FlightRecorder(rank_t num_ranks,
                          std::size_t per_rank_capacity = 128,
                          std::size_t global_capacity = 512)
      : num_ranks_(num_ranks), enabled_(!env_disables()) {
    KYLIX_CHECK(num_ranks >= 1);
    KYLIX_CHECK(per_rank_capacity >= 1 && global_capacity >= 1);
    rings_.reserve(static_cast<std::size_t>(num_ranks) + 1);
    for (rank_t r = 0; r < num_ranks; ++r) {
      rings_.emplace_back(std::make_unique<Ring>(per_rank_capacity));
    }
    rings_.emplace_back(std::make_unique<Ring>(global_capacity));
  }

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  [[nodiscard]] rank_t num_ranks() const { return num_ranks_; }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Stamp and store one event. Wait-free, allocation-free; a no-op while
  /// disabled. The event's seq and t_us fields are overwritten here.
  void record(FlightEvent event) {
    if (!enabled_.load(std::memory_order_relaxed)) return;
    event.seq = seq_.fetch_add(1, std::memory_order_relaxed);
    event.t_us = timer_.seconds() * 1e6;
    Ring& ring = *rings_[ring_index(event.rank)];
    const std::uint64_t head =
        ring.head.fetch_add(1, std::memory_order_relaxed);
    ring.slots[head % ring.capacity] = event;
  }

  /// Events accepted so far (including any later overwritten).
  [[nodiscard]] std::uint64_t recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }

  /// Events lost to ring wraparound, summed over all rings.
  [[nodiscard]] std::uint64_t dropped() const {
    std::uint64_t lost = 0;
    for (const auto& ring : rings_) {
      const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
      if (head > ring->capacity) lost += head - ring->capacity;
    }
    return lost;
  }

  /// Microseconds since construction, on the recorder's own clock — lets
  /// callers stamp external context in the same time base.
  [[nodiscard]] double now_us() const { return timer_.seconds() * 1e6; }

  /// Surviving events from every ring, merged into one global-seq-ordered
  /// timeline. Call only at quiescence (no concurrent record()); a slot
  /// being overwritten mid-copy can otherwise tear.
  [[nodiscard]] std::vector<FlightEvent> merged_events() const {
    std::vector<FlightEvent> merged;
    std::size_t total = 0;
    for (const auto& ring : rings_) {
      total += static_cast<std::size_t>(
          std::min<std::uint64_t>(ring->head.load(std::memory_order_relaxed),
                                  ring->capacity));
    }
    merged.reserve(total);
    for (const auto& ring : rings_) {
      const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
      const std::uint64_t live = std::min<std::uint64_t>(head, ring->capacity);
      for (std::uint64_t i = head - live; i < head; ++i) {
        merged.push_back(ring->slots[i % ring->capacity]);
      }
    }
    std::sort(merged.begin(), merged.end(),
              [](const FlightEvent& a, const FlightEvent& b) {
                return a.seq < b.seq;
              });
    return merged;
  }

  /// Drop all recorded history (heads reset; sequence numbering continues).
  void clear() {
    for (auto& ring : rings_) ring->head.store(0, std::memory_order_relaxed);
  }

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap), slots(std::make_unique<FlightEvent[]>(cap)) {}
    const std::uint64_t capacity;
    std::unique_ptr<FlightEvent[]> slots;
    std::atomic<std::uint64_t> head{0};
  };

  [[nodiscard]] std::size_t ring_index(rank_t rank) const {
    return rank < num_ranks_ ? static_cast<std::size_t>(rank)
                             : static_cast<std::size_t>(num_ranks_);
  }

  static bool env_disables() {
    const char* env = std::getenv("KYLIX_METRICS");
    if (env == nullptr) return false;
    return std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
           std::strcmp(env, "false") == 0;
  }

  rank_t num_ranks_;
  Timer timer_;
  std::atomic<bool> enabled_;
  std::atomic<std::uint64_t> seq_{0};
  std::vector<std::unique_ptr<Ring>> rings_;
};

}  // namespace kylix::obs
