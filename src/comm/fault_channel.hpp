// FaultChannel — the one delivery hook every engine shares (chaos engine).
//
// Wraps a FaultPlan for a single engine instance: begin_round() fires the
// plan's scripted crash/revive events and collects previously-delayed
// letters that are due again, route() classifies one letter (stashing it on
// kDelay), classify_copy() classifies one physical copy for engines that
// account per copy (ReplicatedBsp). Because all four engines call the same
// two entry points at the same protocol positions, fault semantics are
// identical everywhere:
//
//   kDrop      — the letter is lost; the sender already paid for it.
//   kDuplicate — delivered once, but the wire carried it twice (the engine
//                charges trace/timing for the extra copy). Consuming twice
//                would double-count sums, so this models TCP-level dedup.
//   kDelay     — the letter misses its round and is redelivered at the next
//                round with the same {phase, layer} signature at least
//                delay_rounds later — unless a fresh letter from the same
//                sender is already in the destination inbox, in which case
//                the stale copy is discarded (counted stale). The §V
//                replication layer instead treats a delayed copy as a lost
//                race (late copies are canceled) and recovers total losses.
//
// One channel serves one engine; it is not thread-safe by itself
// (ThreadedBsp serializes its calls under the engine's observer mutex).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/fault_plan.hpp"
#include "comm/packet.hpp"
#include "common/check.hpp"

namespace kylix {

template <typename V>
class FaultChannel {
 public:
  /// `plan` is not owned and must outlive the channel.
  explicit FaultChannel(FaultPlan* plan) : plan_(plan) {
    KYLIX_CHECK(plan != nullptr);
  }

  [[nodiscard]] FaultPlan& plan() { return *plan_; }
  [[nodiscard]] const FaultPlan& plan() const { return *plan_; }

  /// Round boundary: fire scripted node events, then stage every delayed
  /// letter whose {phase, layer} signature matches and whose due round has
  /// arrived into due() for the engine to drain after fresh delivery.
  void begin_round(Phase phase, std::uint16_t layer) {
    plan_->begin_round(phase, layer);
    due_.clear();
    const std::uint64_t now = plan_->current_round();
    for (std::size_t i = 0; i < delayed_.size();) {
      Delayed& d = delayed_[i];
      if (d.phase == phase && d.layer == layer && d.due_round <= now) {
        due_.push_back(std::move(d.letter));
        delayed_[i] = std::move(delayed_.back());
        delayed_.pop_back();
      } else {
        ++i;
      }
    }
  }

  /// Classify one letter about to be delivered. On kDelay the letter is
  /// moved into the channel; on every other action the caller keeps it.
  [[nodiscard]] FaultAction route(Phase phase, std::uint16_t layer,
                                  Letter<V>& letter) {
    if (letter.src == letter.dst) return FaultAction::kDeliver;  // loopback
    const FaultPlan::Decision d = plan_->classify(letter.src, letter.dst);
    if (d.action == FaultAction::kDelay) {
      delayed_.push_back(Delayed{phase, layer,
                                 plan_->current_round() + d.delay_rounds,
                                 std::move(letter)});
    }
    return d.action;
  }

  /// Copy-level classification for per-copy accounting engines; never takes
  /// ownership (a delayed copy simply loses the replica race).
  [[nodiscard]] FaultAction classify_copy(rank_t src, rank_t dst) {
    return plan_->classify(src, dst).action;
  }

  /// Delayed letters due in the round begin_round() last started. The
  /// engine moves deliverable entries out, calls note_redelivered() /
  /// note_stale() per entry, and clears the vector.
  [[nodiscard]] std::vector<Letter<V>>& due() { return due_; }

  void note_redelivered() { ++redelivered_; }
  void note_stale() { ++stale_; }

  [[nodiscard]] std::size_t pending_delayed() const { return delayed_.size(); }
  [[nodiscard]] std::uint64_t redelivered() const { return redelivered_; }
  [[nodiscard]] std::uint64_t stale() const { return stale_; }

 private:
  struct Delayed {
    Phase phase;
    std::uint16_t layer;
    std::uint64_t due_round;
    Letter<V> letter;
  };

  FaultPlan* plan_;
  std::vector<Delayed> delayed_;
  std::vector<Letter<V>> due_;
  std::uint64_t redelivered_ = 0;
  std::uint64_t stale_ = 0;
};

}  // namespace kylix
