#include <gtest/gtest.h>

#include "common/check.hpp"

#include "baselines/direct.hpp"
#include "baselines/hadoop_model.hpp"
#include "baselines/tree.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

using testing::random_workload;

TEST(DirectAllreduce, MatchesOracle) {
  BspEngine<float> engine(6);
  auto allreduce = make_direct_allreduce<float, OpSum>(&engine);
  const auto w = random_workload<float>(6, 100, 0.3, 0.5, 21);
  allreduce.configure(w.in_sets, w.out_sets);
  testing::expect_matches_oracle<float>(w, allreduce.reduce(w.out_values));
}

TEST(DirectAllreduce, SendsQuadraticallyManyMessages) {
  // The §II-A.2 pathology: every machine talks to every other machine in a
  // single round per phase.
  const rank_t m = 8;
  Trace trace;
  BspEngine<float> engine(m, nullptr, &trace);
  auto allreduce = make_direct_allreduce<float, OpSum>(&engine);
  const auto w = random_workload<float>(m, 80, 0.3, 0.5, 22);
  allreduce.configure(w.in_sets, w.out_sets);
  (void)allreduce.reduce(w.out_values);
  // config + reduce-down + reduce-up, m^2 letters each (self included).
  EXPECT_EQ(trace.num_messages(), 3u * m * m);
  for (const MsgEvent& e : trace.events()) {
    EXPECT_EQ(e.layer, 1);
  }
}

TEST(BinaryAllreduce, MatchesOracleAndUsesLog2Layers) {
  const rank_t m = 16;
  Trace trace;
  BspEngine<float> engine(m, nullptr, &trace);
  auto allreduce = make_binary_allreduce<float, OpSum>(&engine);
  EXPECT_EQ(allreduce.topology().num_layers(), 4);
  const auto w = random_workload<float>(m, 100, 0.25, 0.4, 23);
  allreduce.configure(w.in_sets, w.out_sets);
  testing::expect_matches_oracle<float>(w, allreduce.reduce(w.out_values));
  // Every letter targets a group of size 2.
  for (const MsgEvent& e : trace.events()) {
    EXPECT_GE(e.layer, 1);
    EXPECT_LE(e.layer, 4);
  }
}

TEST(BinaryAllreduce, RequiresPowerOfTwo) {
  BspEngine<float> engine(6);
  EXPECT_THROW((make_binary_allreduce<float, OpSum>(&engine)), check_error);
}

class TreeAllreduceTest : public ::testing::TestWithParam<rank_t> {};

TEST_P(TreeAllreduceTest, MatchesOracle) {
  const rank_t m = GetParam();
  BspEngine<float> engine(m);
  TreeAllreduce<float> tree(&engine);
  const auto w = random_workload<float>(m, 120, 0.3, 0.4, 24 + m);
  const auto results = tree.reduce(w.in_sets, w.out_sets, w.out_values);
  testing::expect_matches_oracle<float>(w, results);
}

INSTANTIATE_TEST_SUITE_P(Machines, TreeAllreduceTest,
                         ::testing::Values(1, 2, 4, 8, 16));

TEST(TreeAllreduce, RootAccumulatesTheFullUnion) {
  // §II-A.1: "the middle (full reduction) node will have complete data" —
  // the peak set size equals the global union.
  const rank_t m = 8;
  BspEngine<float> engine(m);
  TreeAllreduce<float> tree(&engine);
  const auto w = random_workload<float>(m, 200, 0.4, 0.3, 29);
  (void)tree.reduce(w.in_sets, w.out_sets, w.out_values);
  EXPECT_EQ(tree.last_peak_out_size(),
            testing::brute_force_totals<float>(w).size());
}

TEST(TreeAllreduce, RejectsNonPowerOfTwo) {
  BspEngine<float> engine(6);
  EXPECT_THROW((void)TreeAllreduce<float>{&engine}, check_error);
}

TEST(TreeAllreduce, MinOpWorks) {
  const rank_t m = 4;
  BspEngine<std::uint32_t> engine(m);
  TreeAllreduce<std::uint32_t, OpMin, BspEngine<std::uint32_t>> tree(
      &engine);
  const auto w = random_workload<std::uint32_t>(m, 60, 0.4, 0.5, 31);
  const auto results = tree.reduce(w.in_sets, w.out_sets, w.out_values);
  testing::expect_matches_oracle<std::uint32_t, OpMin>(w, results);
}

TEST(HadoopModel, ScalesWithEdgesAndMachines) {
  const HadoopModel hadoop;
  const double small = hadoop.iteration_time(100'000'000, 64);
  const double big = hadoop.iteration_time(1'000'000'000, 64);
  EXPECT_GT(big, small);
  EXPECT_GT(small, hadoop.job_overhead_s);
  // More machines shrink the per-node share but never beat the overhead.
  const double wide = hadoop.iteration_time(1'000'000'000, 256);
  EXPECT_LT(wide, big);
  EXPECT_GT(wide, hadoop.job_overhead_s);
}

TEST(HadoopModel, PaperScaleSanity) {
  // A 1.5B-edge PageRank iteration on 64-90 Hadoop nodes sits in the
  // hundreds of seconds (the paper quotes ~500x slower than Kylix's 0.55 s).
  const HadoopModel hadoop;
  const double t = hadoop.iteration_time(1'500'000'000, 90);
  EXPECT_GT(t, 30.0);
  EXPECT_LT(t, 1000.0);
}

}  // namespace
}  // namespace kylix
