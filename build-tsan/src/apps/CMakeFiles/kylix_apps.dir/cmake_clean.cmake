file(REMOVE_RECURSE
  "CMakeFiles/kylix_apps.dir/reference.cpp.o"
  "CMakeFiles/kylix_apps.dir/reference.cpp.o.d"
  "libkylix_apps.a"
  "libkylix_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kylix_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
