// Branchless, unrolled, software-prefetched scatter/gather kernels.
//
// scatter_combine and gather are map-driven: every element chases
// acc[map[p]], a data-dependent address the hardware prefetcher cannot
// predict once the union no longer fits in cache. The map itself *is*
// sequential though, so the target address is known kPrefetchAhead elements
// early — a software prefetch hides the DRAM latency behind the arithmetic
// of the intervening elements. The body is unrolled 4-wide; within one
// scatter call the map is strictly increasing (piece keys are strictly
// sorted), so the unrolled ops never alias and the combine order — hence
// every floating-point sum — is bit-identical to the scalar loop.
//
// KYLIX_NATIVE builds (-march=native) additionally let the compiler
// vectorize the gather side with native gather instructions where available;
// the code is identical, only the flags differ.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"
#include "common/types.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define KYLIX_PREFETCH_READ(addr) __builtin_prefetch((addr), 0)
#define KYLIX_PREFETCH_WRITE(addr) __builtin_prefetch((addr), 1)
#else
#define KYLIX_PREFETCH_READ(addr) ((void)0)
#define KYLIX_PREFETCH_WRITE(addr) ((void)0)
#endif

namespace kylix::kernels {

/// Prefetch lookahead in elements. One map entry is 4 bytes, so 16 elements
/// of lookahead keep ~1 cache line of map reads in flight while covering the
/// ~100 ns DRAM latency of the value-line fetch at typical combine rates.
/// KYLIX_NATIVE builds vectorize the body and consume map entries faster,
/// so the lookahead doubles. (kernels.hpp KernelTuning::prefetch_distance
/// documents the default for tuning reports; this constant is compiled into
/// the loop.)
#if defined(KYLIX_NATIVE)
inline constexpr std::size_t kPrefetchAhead = 32;
#else
inline constexpr std::size_t kPrefetchAhead = 16;
#endif

/// acc[map[p]] = op(acc[map[p]], values[p]) for all p, in ascending p.
template <typename V, typename Op>
void scatter_combine(std::span<V> acc, std::span<const V> values,
                     std::span<const pos_t> map, Op op = {}) {
  KYLIX_CHECK(values.size() == map.size());
  const std::size_t n = map.size();
  const pos_t* m = map.data();
  const V* v = values.data();
  V* a = acc.data();
  std::size_t p = 0;
  if (n > kPrefetchAhead + 4) {
    const std::size_t fenced = n - kPrefetchAhead;
    for (; p + 4 <= fenced; p += 4) {
      KYLIX_PREFETCH_WRITE(a + m[p + kPrefetchAhead]);
      KYLIX_PREFETCH_WRITE(a + m[p + kPrefetchAhead + 2]);
      KYLIX_DCHECK(m[p] < acc.size() && m[p + 1] < acc.size() &&
                   m[p + 2] < acc.size() && m[p + 3] < acc.size());
      op(a[m[p]], v[p]);
      op(a[m[p + 1]], v[p + 1]);
      op(a[m[p + 2]], v[p + 2]);
      op(a[m[p + 3]], v[p + 3]);
    }
  }
  for (; p < n; ++p) {
    KYLIX_DCHECK(m[p] < acc.size());
    op(a[m[p]], v[p]);
  }
}

/// out[p] = values[map[p]] for all p; `out` must already have map.size()
/// elements (the resize policy stays with the caller).
template <typename V>
void gather(std::span<const V> values, std::span<const pos_t> map, V* out) {
  const std::size_t n = map.size();
  const pos_t* m = map.data();
  const V* v = values.data();
  std::size_t p = 0;
  if (n > kPrefetchAhead + 4) {
    const std::size_t fenced = n - kPrefetchAhead;
    for (; p + 4 <= fenced; p += 4) {
      KYLIX_PREFETCH_READ(v + m[p + kPrefetchAhead]);
      KYLIX_PREFETCH_READ(v + m[p + kPrefetchAhead + 2]);
      KYLIX_DCHECK(m[p] < values.size() && m[p + 1] < values.size() &&
                   m[p + 2] < values.size() && m[p + 3] < values.size());
      out[p] = v[m[p]];
      out[p + 1] = v[m[p + 1]];
      out[p + 2] = v[m[p + 2]];
      out[p + 3] = v[m[p + 3]];
    }
  }
  for (; p < n; ++p) {
    KYLIX_DCHECK(m[p] < values.size());
    out[p] = v[m[p]];
  }
}

// ---- strided (multi-payload) forms ----------------------------------------
//
// A strided buffer interleaves `stride` payload vectors key-major: the
// stride values of key position p occupy [p*stride, (p+1)*stride). One map
// entry then routes a whole block, so k payloads share one positional
// lookup (and, one level up, one set of routing keys on the wire). The
// per-component op order is exactly the order a stride-1 call would apply
// for that component, so a strided reduce is bit-identical to k independent
// reduces. stride == 1 degrades to the plain kernels above.

/// acc[map[p]*stride + c] = op(acc[map[p]*stride + c], values[p*stride + c])
/// for all p in ascending order and all c < stride.
template <typename V, typename Op>
void scatter_combine_strided(std::span<V> acc, std::span<const V> values,
                             std::span<const pos_t> map, std::size_t stride,
                             Op op = {}) {
  if (stride == 1) {
    scatter_combine<V, Op>(acc, values, map, op);
    return;
  }
  KYLIX_CHECK(values.size() == map.size() * stride);
  const std::size_t n = map.size();
  const pos_t* m = map.data();
  const V* v = values.data();
  V* a = acc.data();
  std::size_t p = 0;
  if (n > kPrefetchAhead) {
    const std::size_t fenced = n - kPrefetchAhead;
    for (; p < fenced; ++p) {
      KYLIX_PREFETCH_WRITE(a + static_cast<std::size_t>(m[p + kPrefetchAhead]) *
                                   stride);
      KYLIX_DCHECK((static_cast<std::size_t>(m[p]) + 1) * stride <=
                   acc.size());
      V* block = a + static_cast<std::size_t>(m[p]) * stride;
      const V* src = v + p * stride;
      for (std::size_t c = 0; c < stride; ++c) op(block[c], src[c]);
    }
  }
  for (; p < n; ++p) {
    KYLIX_DCHECK((static_cast<std::size_t>(m[p]) + 1) * stride <= acc.size());
    V* block = a + static_cast<std::size_t>(m[p]) * stride;
    const V* src = v + p * stride;
    for (std::size_t c = 0; c < stride; ++c) op(block[c], src[c]);
  }
}

/// out[p*stride + c] = values[map[p]*stride + c]; `out` must already have
/// map.size() * stride elements.
template <typename V>
void gather_strided(std::span<const V> values, std::span<const pos_t> map,
                    std::size_t stride, V* out) {
  if (stride == 1) {
    gather<V>(values, map, out);
    return;
  }
  const std::size_t n = map.size();
  const pos_t* m = map.data();
  const V* v = values.data();
  std::size_t p = 0;
  if (n > kPrefetchAhead) {
    const std::size_t fenced = n - kPrefetchAhead;
    for (; p < fenced; ++p) {
      KYLIX_PREFETCH_READ(v + static_cast<std::size_t>(m[p + kPrefetchAhead]) *
                                  stride);
      KYLIX_DCHECK((static_cast<std::size_t>(m[p]) + 1) * stride <=
                   values.size());
      const V* block = v + static_cast<std::size_t>(m[p]) * stride;
      V* dst = out + p * stride;
      for (std::size_t c = 0; c < stride; ++c) dst[c] = block[c];
    }
  }
  for (; p < n; ++p) {
    KYLIX_DCHECK((static_cast<std::size_t>(m[p]) + 1) * stride <=
                 values.size());
    const V* block = v + static_cast<std::size_t>(m[p]) * stride;
    V* dst = out + p * stride;
    for (std::size_t c = 0; c < stride; ++c) dst[c] = block[c];
  }
}

/// Scalar reference forms, kept for bench/micro_kernels to measure the
/// prefetched kernels against (and for tests to assert equivalence).
template <typename V, typename Op>
void scatter_combine_scalar(std::span<V> acc, std::span<const V> values,
                            std::span<const pos_t> map, Op op = {}) {
  KYLIX_CHECK(values.size() == map.size());
  for (std::size_t p = 0; p < values.size(); ++p) {
    KYLIX_DCHECK(map[p] < acc.size());
    op(acc[map[p]], values[p]);
  }
}

template <typename V>
void gather_scalar(std::span<const V> values, std::span<const pos_t> map,
                   V* out) {
  for (std::size_t p = 0; p < map.size(); ++p) {
    KYLIX_DCHECK(map[p] < values.size());
    out[p] = values[map[p]];
  }
}

}  // namespace kylix::kernels
