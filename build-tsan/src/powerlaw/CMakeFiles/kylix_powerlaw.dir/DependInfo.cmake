
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/powerlaw/alpha_fit.cpp" "src/powerlaw/CMakeFiles/kylix_powerlaw.dir/alpha_fit.cpp.o" "gcc" "src/powerlaw/CMakeFiles/kylix_powerlaw.dir/alpha_fit.cpp.o.d"
  "/root/repo/src/powerlaw/design.cpp" "src/powerlaw/CMakeFiles/kylix_powerlaw.dir/design.cpp.o" "gcc" "src/powerlaw/CMakeFiles/kylix_powerlaw.dir/design.cpp.o.d"
  "/root/repo/src/powerlaw/graphgen.cpp" "src/powerlaw/CMakeFiles/kylix_powerlaw.dir/graphgen.cpp.o" "gcc" "src/powerlaw/CMakeFiles/kylix_powerlaw.dir/graphgen.cpp.o.d"
  "/root/repo/src/powerlaw/model.cpp" "src/powerlaw/CMakeFiles/kylix_powerlaw.dir/model.cpp.o" "gcc" "src/powerlaw/CMakeFiles/kylix_powerlaw.dir/model.cpp.o.d"
  "/root/repo/src/powerlaw/zipf.cpp" "src/powerlaw/CMakeFiles/kylix_powerlaw.dir/zipf.cpp.o" "gcc" "src/powerlaw/CMakeFiles/kylix_powerlaw.dir/zipf.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/common/CMakeFiles/kylix_common.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/sparse/CMakeFiles/kylix_sparse.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
