file(REMOVE_RECURSE
  "libkylix_common.a"
)
