// TelemetryObserver — the EngineObserver that feeds the span tracer and the
// metrics registry from a live engine (DESIGN.md "Observability").
//
// Per round it accumulates per-rank send/receive bytes and message counts in
// pre-sized arrays (no allocation after construction; per-message work is a
// few array increments plus an optional histogram observe), then at round
// end emits:
//   * one span per participating rank on that rank's track, named
//     "<phase>/L<layer>" with bytes/messages args — the per-rank timeline;
//   * a "wire bytes" counter sample (this round's total volume);
//   * when a topology and feature count are supplied, a "density" counter
//     sample for scatter-reduce rounds: the measured per-node element count
//     converted through Proposition 4.1's D_i = P_i * K_i / n — the live
//     view of the Kylix shape.
// Metrics (optional): message/drop/byte counters and a packet-size
// histogram, all registered once at construction.
//
// Thread safety matches the engine contract: hooks are serialized by the
// calling engine (ThreadedBsp holds its observer mutex around
// on_message/on_drop).
#pragma once

#include <cstdint>
#include <vector>

#include "common/timer.hpp"
#include "core/stream_stats.hpp"
#include "core/topology.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/span_tracer.hpp"
#include "obs/watchdog.hpp"

namespace kylix::obs {

class TelemetryObserver : public EngineObserver {
 public:
  struct Options {
    /// Enables the density counter track (needs features too).
    const Topology* topology = nullptr;
    /// Index-space size n; 0 disables the density track.
    std::uint64_t features = 0;
    /// Wire bytes per scatter-reduce element (value payload); used only to
    /// convert round volume back to elements for the density estimate.
    double bytes_per_element = 4;
    /// Optional metrics sink; counters/histograms register at construction.
    MetricsRegistry* metrics = nullptr;
    /// Optional flight recorder: round boundaries, drops, faults, recovery
    /// and redelivery land as structured events.
    FlightRecorder* recorder = nullptr;
    /// Optional watchdog fed per-round with wall time, per-rank last-send
    /// offsets, and per-rank send volume.
    AnomalyWatchdog* watchdog = nullptr;
  };

  /// `tracer` may be null (metrics-only observation). `num_ranks` sizes the
  /// per-rank accumulators and track metadata.
  TelemetryObserver(SpanTracer* tracer, rank_t num_ranks,
                    const Options& options);
  TelemetryObserver(SpanTracer* tracer, rank_t num_ranks)
      : TelemetryObserver(tracer, num_ranks, Options{}) {}

  void on_round_begin(Phase phase, std::uint16_t layer) override;
  void on_message(const MsgEvent& event) override;
  void on_drop(const MsgEvent& event) override;
  void on_fault(const MsgEvent& event, FaultAction action) override;
  void on_recovery(const RecoveryEvent& event) override;
  void on_redelivery(const MsgEvent& event, bool stale) override;
  void on_round_end(Phase phase, std::uint16_t layer) override;

  [[nodiscard]] std::uint64_t total_messages() const { return messages_; }
  [[nodiscard]] std::uint64_t total_bytes() const { return cum_bytes_; }
  [[nodiscard]] std::uint64_t total_drops() const { return drops_; }
  /// Injected faults seen (chaos engine), summed over drop/dup/delay.
  [[nodiscard]] std::uint64_t total_faults() const { return faults_; }
  /// Recovery events seen, summed over all RecoveryActions.
  [[nodiscard]] std::uint64_t total_recoveries() const { return recoveries_; }

 private:
  /// Microseconds on the tracer's clock when attached, else on an internal
  /// stopwatch — so round durations and straggler offsets exist in
  /// metrics-only mode too.
  [[nodiscard]] double now_us() const {
    return tracer_ != nullptr ? tracer_->now_us() : clock_.seconds() * 1e6;
  }

  SpanTracer* tracer_;
  rank_t num_ranks_;
  Options opts_;
  Timer clock_;

  double round_start_us_ = 0;
  std::uint64_t round_bytes_ = 0;
  std::uint32_t round_msgs_ = 0;
  std::uint64_t cum_bytes_ = 0;
  std::uint64_t messages_ = 0;
  std::uint64_t drops_ = 0;
  std::uint64_t faults_ = 0;
  std::uint64_t recoveries_ = 0;
  std::vector<std::uint64_t> send_bytes_;  ///< per rank, this round
  std::vector<std::uint32_t> send_msgs_;
  std::vector<std::uint64_t> recv_bytes_;
  std::vector<double> last_send_us_;  ///< per rank; 0 = silent this round
  std::vector<double> offsets_us_;    ///< watchdog scratch (last send - start)

  // Registered-once metrics instruments (null when metrics are off).
  Counter* msg_counter_ = nullptr;
  Counter* byte_counter_ = nullptr;
  Counter* drop_counter_ = nullptr;
  Counter* round_counter_ = nullptr;
  Histogram* packet_bytes_ = nullptr;
  Histogram* round_seconds_ = nullptr;
  // Chaos-engine instruments: injected faults by action, recovery
  // state-machine transitions by action.
  Counter* fault_dropped_ = nullptr;
  Counter* fault_duplicated_ = nullptr;
  Counter* fault_delayed_ = nullptr;
  Counter* rec_detections_ = nullptr;
  Counter* rec_retries_ = nullptr;
  Counter* rec_promotions_ = nullptr;
  Counter* rec_forced_ = nullptr;
  Counter* rec_group_deaths_ = nullptr;
  Counter* redeliv_merged_ = nullptr;
  Counter* redeliv_stale_ = nullptr;
};

/// Publish one reduce's StreamStats (core/stream_stats.hpp) into a registry:
/// `engine.stream.*` counters (chunks sent, letters, blocks flushed) plus
/// the `engine.stream.overlap_ratio` and buffer-envelope gauges — notably
/// `engine.peak_buffer_bytes`, the streamed envelope when streaming was on
/// and the letter envelope otherwise. Counters accumulate across calls (one
/// call per reduce); gauges are last-write-wins.
void publish_stream_stats(MetricsRegistry& metrics, const StreamStats& stats);

}  // namespace kylix::obs
