// The concurrent engine: one std::thread per simulated machine.
//
// Same round() contract as BspEngine, but every node runs its
// produce/send/receive/consume cycle on its own thread with blocking
// mailboxes — real concurrency, real interleavings, opportunistic message
// arrival (§VI-B). Received letters are sorted by source before consume, so
// results are bit-identical to the sequential engine regardless of arrival
// order (asserted by tests/comm, which run both engines on the same inputs).
//
// Failures are supported (dead nodes neither run nor receive); replication
// racing at the wire level is exercised by the Mailbox::take_any unit tests
// and the sequential ReplicatedBsp — this engine intentionally stays the
// minimal concurrent counterpart of BspEngine.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/timing.hpp"
#include "cluster/trace.hpp"
#include "comm/fault_channel.hpp"
#include "comm/mailbox.hpp"
#include "comm/packet.hpp"
#include "common/check.hpp"
#include "obs/observer.hpp"

namespace kylix {

template <typename V>
class ThreadedBsp {
 public:
  ThreadedBsp(rank_t num_nodes, const FailureModel* failures = nullptr,
              Trace* trace = nullptr, TimingAccumulator* timing = nullptr)
      : num_nodes_(num_nodes),
        failures_(failures),
        trace_(trace),
        timing_(timing),
        mailboxes_(num_nodes),
        due_by_rank_(num_nodes) {
    KYLIX_CHECK(num_nodes >= 1);
    KYLIX_CHECK_MSG(failures == nullptr || failures->num_nodes() >= num_nodes,
                    "FailureModel covers fewer ranks than the engine");
    workers_.reserve(num_nodes);
    for (rank_t rank = 0; rank < num_nodes; ++rank) {
      workers_.emplace_back([this, rank] { worker_loop(rank); });
    }
  }

  ~ThreadedBsp() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      shutdown_ = true;
    }
    start_cv_.notify_all();
    for (auto& t : workers_) t.join();
  }

  ThreadedBsp(const ThreadedBsp&) = delete;
  ThreadedBsp& operator=(const ThreadedBsp&) = delete;

  [[nodiscard]] rank_t num_ranks() const { return num_nodes_; }

  [[nodiscard]] bool is_dead(rank_t rank) const {
    return failures_ != nullptr && failures_->is_dead(rank);
  }

  /// Degraded completion around dead ranks; see BspEngine::has_failed().
  [[nodiscard]] bool has_failed() const {
    return failures_ != nullptr && failures_->num_dead() > 0;
  }
  [[nodiscard]] bool degraded_allowed() const { return true; }

  /// Telemetry hook (src/obs); optional, not owned. on_message/on_drop fire
  /// from worker threads under the observer mutex; round begin/end fire on
  /// the calling thread.
  void set_observer(EngineObserver* observer) { observer_ = observer; }

  /// Attach a chaos-engine fault channel (optional, not owned). Workers
  /// classify sends under the observer mutex — the plan's RNG is consumed in
  /// whatever order threads reach it, so fault *placement* is scheduling-
  /// dependent here (unlike the sequential engines), while fault *semantics*
  /// are identical: dropped and delayed copies become tombstone letters so
  /// blocking receives still unblock.
  void set_fault_channel(FaultChannel<V>* channel) {
    channel_ = channel;
    if (channel_ != nullptr && failures_ == nullptr) {
      failures_ = &channel_->plan().failures();
    }
    KYLIX_CHECK_MSG(
        channel_ == nullptr ||
            channel_->plan().num_nodes() >= num_nodes_,
        "FaultPlan covers fewer ranks than the engine");
  }

  /// Messages transmitted to dead destinations since construction.
  [[nodiscard]] std::uint64_t dropped_messages() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// Attribute modeled local compute to a rank within a round (thread-safe).
  void charge_compute(Phase phase, std::uint16_t layer, rank_t rank,
                      double seconds) {
    if (timing_ == nullptr) return;
    std::lock_guard<std::mutex> lock(observer_mutex_);
    timing_->on_compute(phase, layer, rank, seconds);
  }

  /// Attribute modeled intra-node (shared-memory tier) time to a rank.
  /// Called from intra_round, which runs on the calling thread here, so no
  /// lock is needed (the per-rank worker threads are parked between rounds).
  void charge_intra(Phase phase, rank_t rank, double seconds) {
    if (timing_ != nullptr) timing_->on_intra(phase, rank, seconds);
  }

  /// Intra-node stage of a hierarchical topology: runs sequentially on the
  /// calling thread. The per-rank worker threads model the *wire*, and the
  /// shared-memory tier has no wire traffic to interleave — a leader reads
  /// its co-located members' buffers directly (single copy, no Letters).
  template <typename Fn>
  void intra_round(Phase phase, rank_t num_hosts, Fn&& fn) {
    (void)phase;
    for (rank_t h = 0; h < num_hosts; ++h) fn(h);
  }

  template <typename ProduceFn, typename ExpectedFn, typename ConsumeFn>
  void round(Phase phase, std::uint16_t layer, ProduceFn&& produce,
             ExpectedFn&& expected, ConsumeFn&& consume) {
    stale_at_staging_.clear();
    if (channel_ != nullptr) {
      // Scripted crashes fire on the calling thread before workers start, so
      // is_dead() is stable for the whole round. Due delayed letters are
      // staged per destination rank here; the generation handshake in
      // run_task() makes the staging visible to the workers.
      channel_->begin_round(phase, layer);
      for (Letter<V>& letter : channel_->due()) {
        if (letter.dst >= num_nodes_ || is_dead(letter.dst)) {
          channel_->note_stale();
          // Defer the observer hook: it must fire inside the round.
          stale_at_staging_.push_back(MsgEvent{phase, layer, letter.src,
                                               letter.dst,
                                               letter.packet.wire_bytes()});
          continue;
        }
        due_by_rank_[letter.dst].push_back(std::move(letter));
      }
      channel_->due().clear();
    }
    if (observer_ != nullptr) {
      observer_->on_round_begin(phase, layer);
      for (const MsgEvent& event : stale_at_staging_) {
        observer_->on_redelivery(event, true);
      }
    }
    // Type-erase this round's work; each worker runs it for its own rank.
    task_ = [&, phase, layer](rank_t rank) {
      if (is_dead(rank)) return;
      for (Letter<V>& letter : produce(rank)) {
        KYLIX_DCHECK(letter.src == rank);
        send(phase, layer, std::move(letter));
      }
      std::vector<Letter<V>> inbox;
      for (rank_t src : expected(rank)) {
        if (is_dead(src)) continue;  // an unreplicated dead sender: no letter
        // A streamed edge carries chunk_count letters; how many is learned
        // from the first arrival (every chunk — tombstones included —
        // carries the full framing), so the receiver keeps taking until the
        // edge is drained. Letter-at-once edges degenerate to one take.
        std::uint32_t want = 1;
        for (std::uint32_t got = 0; got < want; ++got) {
          Letter<V> letter = mailboxes_[rank].take(src);
          want = std::max(want,
                          std::max<std::uint32_t>(
                              1, letter.packet.chunk_count));
          // Tombstones stand in for dropped/delayed copies (the sender
          // still paid); they only exist to unblock this take.
          if (!letter.faulted) inbox.push_back(std::move(letter));
        }
      }
      if (channel_ != nullptr) drain_due(rank, phase, layer, inbox);
      std::sort(inbox.begin(), inbox.end(), letter_before<V>);
      consume(rank, std::move(inbox));
    };
    run_task();
    if (observer_ != nullptr) observer_->on_round_end(phase, layer);
  }

 private:
  void send(Phase phase, std::uint16_t layer, Letter<V>&& letter) {
    KYLIX_CHECK_MSG(letter.dst < num_nodes_, "letter to invalid rank");
    const rank_t src = letter.src;
    const rank_t dst = letter.dst;
    const std::uint64_t bytes = letter.packet.wire_bytes();
    const MsgEvent event{phase, layer, src, dst, bytes};
    const bool dead_dst = is_dead(dst);
    FaultAction action = FaultAction::kDeliver;
    {
      std::lock_guard<std::mutex> lock(observer_mutex_);
      if (trace_ != nullptr) trace_->add(event);
      if (timing_ != nullptr) timing_->on_message(event);
      if (observer_ != nullptr) observer_->on_message(event);
      // Classify under the same lock: the plan's RNG is not thread-safe.
      // Letters to dead destinations never consume plan randomness,
      // matching the sequential engines' order of checks.
      if (channel_ != nullptr && !dead_dst) {
        action = channel_->route(phase, layer, letter);
        if (action != FaultAction::kDeliver) {
          if (observer_ != nullptr) observer_->on_fault(event, action);
          if (action == FaultAction::kDuplicate) {
            // The wire carried the letter twice; charge the second copy.
            if (trace_ != nullptr) trace_->add(event);
            if (timing_ != nullptr) timing_->on_message(event);
            if (observer_ != nullptr) observer_->on_message(event);
          }
        }
      }
    }
    if (dead_dst) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      if (observer_ != nullptr) {
        std::lock_guard<std::mutex> lock(observer_mutex_);
        observer_->on_drop(event);
      }
      return;
    }
    if (action == FaultAction::kDrop || action == FaultAction::kDelay) {
      // The payload is gone (lost or stashed in the channel), but the
      // receiver blocks on take(src) — deliver a tombstone to unblock it.
      // The tombstone keeps the chunk framing so the receiver still counts
      // it toward the edge's chunk_count letters.
      Letter<V> tombstone;
      tombstone.src = src;
      tombstone.dst = dst;
      tombstone.faulted = true;
      tombstone.packet.chunk_index = letter.packet.chunk_index;
      tombstone.packet.chunk_count = letter.packet.chunk_count;
      mailboxes_[dst].put(std::move(tombstone));
      return;
    }
    mailboxes_[dst].put(std::move(letter));
  }

  /// Merge this rank's staged due letters into its inbox: a fresh letter
  /// for the same (sender, chunk) slot supersedes the stale delayed copy
  /// (sibling chunks never do). Channel counters are bumped under the
  /// observer mutex (the channel itself is not thread-safe).
  void drain_due(rank_t rank, Phase phase, std::uint16_t layer,
                 std::vector<Letter<V>>& inbox) {
    auto& due = due_by_rank_[rank];
    if (due.empty()) return;
    std::lock_guard<std::mutex> lock(observer_mutex_);
    for (Letter<V>& letter : due) {
      const MsgEvent event{phase, layer, letter.src, letter.dst,
                           letter.packet.wire_bytes()};
      const bool superseded =
          std::any_of(inbox.begin(), inbox.end(), [&](const Letter<V>& l) {
            return same_slot(l, letter);
          });
      if (superseded) {
        channel_->note_stale();
      } else {
        inbox.push_back(std::move(letter));
        channel_->note_redelivered();
      }
      if (observer_ != nullptr) observer_->on_redelivery(event, superseded);
    }
    due.clear();
  }

  void run_task() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      pending_ = num_nodes_;
      ++generation_;
    }
    start_cv_.notify_all();
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return pending_ == 0; });
    if (worker_error_) {
      auto error = worker_error_;
      worker_error_ = nullptr;
      std::rethrow_exception(error);
    }
  }

  void worker_loop(rank_t rank) {
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        start_cv_.wait(lock, [&] {
          return shutdown_ || generation_ > seen_generation;
        });
        if (shutdown_) return;
        seen_generation = generation_;
      }
      try {
        task_(rank);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!worker_error_) worker_error_ = std::current_exception();
      }
      bool last = false;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        last = (--pending_ == 0);
      }
      if (last) done_cv_.notify_all();
    }
  }

  rank_t num_nodes_;
  const FailureModel* failures_;
  Trace* trace_;
  TimingAccumulator* timing_;
  EngineObserver* observer_ = nullptr;
  FaultChannel<V>* channel_ = nullptr;
  std::atomic<std::uint64_t> dropped_{0};

  std::vector<Mailbox<V>> mailboxes_;
  /// Delayed letters due this round, staged per destination by the calling
  /// thread before the workers are released (run_task's mutex handshake
  /// publishes the staging); each worker drains only its own slot.
  std::vector<std::vector<Letter<V>>> due_by_rank_;
  /// Delayed copies discarded at staging (dead/invalid destination); their
  /// on_redelivery hooks fire right after on_round_begin.
  std::vector<MsgEvent> stale_at_staging_;
  std::vector<std::thread> workers_;
  std::function<void(rank_t)> task_;

  std::mutex mutex_;
  std::mutex observer_mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  std::uint64_t generation_ = 0;
  rank_t pending_ = 0;
  bool shutdown_ = false;
  std::exception_ptr worker_error_;
};

}  // namespace kylix
