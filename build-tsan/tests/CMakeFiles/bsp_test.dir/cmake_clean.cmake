file(REMOVE_RECURSE
  "CMakeFiles/bsp_test.dir/comm/bsp_test.cpp.o"
  "CMakeFiles/bsp_test.dir/comm/bsp_test.cpp.o.d"
  "bsp_test"
  "bsp_test.pdb"
  "bsp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
