# Empty compiler generated dependencies file for diameter_test.
# This may be replaced when dependencies are built.
