#include "sparse/key_set.hpp"

#include <algorithm>

#include "sparse/kernels/radix_sort.hpp"

namespace kylix {

KeyRange KeyRange::subrange(std::uint32_t which, std::uint32_t parts) const {
  KYLIX_CHECK(parts > 0 && which < parts);
  // Width as a 128-bit count so the full space (2^64) is representable.
  const __uint128_t width128 =
      is_full() ? (static_cast<__uint128_t>(1) << 64)
                : static_cast<__uint128_t>(static_cast<key_t>(hi - lo));
  const auto offset_at = [&](std::uint32_t part) -> key_t {
    return lo + static_cast<key_t>(width128 * part / parts);
  };
  // Note offset_at(parts) wraps to `hi` exactly (mod 2^64), so subranges tile
  // the parent range with no gaps or overlaps.
  return KeyRange{offset_at(which), offset_at(which + 1)};
}

KeySet KeySet::from_indices(std::span<const index_t> indices) {
  std::vector<key_t> keys;
  keys.reserve(indices.size());
  for (index_t id : indices) keys.push_back(hash_index(id));
  return from_keys(std::move(keys));
}

KeySet KeySet::from_keys(std::vector<key_t> keys) {
  // Hashed keys are uniform over the 64-bit space — the ideal radix-sort
  // input. Below the tuning threshold this falls back to std::sort.
  kernels::radix_sort_dedup(keys);
  return KeySet(std::move(keys));
}

KeySet KeySet::from_sorted_keys(std::vector<key_t> keys) {
  KYLIX_DCHECK(std::is_sorted(keys.begin(), keys.end()));
  KYLIX_DCHECK(std::adjacent_find(keys.begin(), keys.end()) == keys.end());
  return KeySet(std::move(keys));
}

std::vector<index_t> KeySet::to_indices() const {
  std::vector<index_t> out;
  out.reserve(keys_.size());
  for (key_t k : keys_) out.push_back(unhash_index(k));
  return out;
}

std::size_t KeySet::find(key_t key) const {
  const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  if (it == keys_.end() || *it != key) return npos;
  return static_cast<std::size_t>(it - keys_.begin());
}

KeySet::Slice KeySet::slice(const KeyRange& range) const {
  if (range.is_full()) return Slice{0, keys_.size()};
  const auto first = std::lower_bound(keys_.begin(), keys_.end(), range.lo);
  const auto last = range.hi == 0
                        ? keys_.end()
                        : std::lower_bound(first, keys_.end(), range.hi);
  return Slice{static_cast<std::size_t>(first - keys_.begin()),
               static_cast<std::size_t>(last - keys_.begin())};
}

std::vector<std::size_t> KeySet::split_points(const KeyRange& range,
                                              std::uint32_t parts) const {
  KYLIX_CHECK(parts > 0);
  std::vector<std::size_t> bounds(parts + 1);
  bounds[0] = 0;
  // Subrange upper bounds are monotone, so part p's search can resume where
  // part p-1 ended: a d-way split is one monotone sweep of narrowing binary
  // searches instead of d searches over the whole set.
  for (std::uint32_t p = 0; p < parts; ++p) {
    const KeyRange sub = range.subrange(p, parts);
    const auto first = keys_.begin() + static_cast<std::ptrdiff_t>(bounds[p]);
    const auto last = sub.hi == 0
                          ? keys_.end()
                          : std::lower_bound(first, keys_.end(), sub.hi);
    bounds[p + 1] = static_cast<std::size_t>(last - keys_.begin());
  }
  KYLIX_CHECK_MSG(bounds[parts] == keys_.size() &&
                      slice(range).size() == keys_.size(),
                  "split_points: keys outside the partition range");
  return bounds;
}

std::vector<key_t> KeySet::extract(std::size_t first, std::size_t last) const {
  KYLIX_DCHECK(first <= last && last <= keys_.size());
  return std::vector<key_t>(keys_.begin() + static_cast<std::ptrdiff_t>(first),
                            keys_.begin() + static_cast<std::ptrdiff_t>(last));
}

void KeySet::extract_into(std::size_t first, std::size_t last,
                          std::vector<key_t>& out) const {
  KYLIX_DCHECK(first <= last && last <= keys_.size());
  out.assign(keys_.begin() + static_cast<std::ptrdiff_t>(first),
             keys_.begin() + static_cast<std::ptrdiff_t>(last));
}

bool KeySet::subset_of(const KeySet& other) const {
  return std::includes(other.keys_.begin(), other.keys_.end(), keys_.begin(),
                       keys_.end());
}

}  // namespace kylix
