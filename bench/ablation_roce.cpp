// Ablation / future-work projection (§IX): what RDMA over Converged
// Ethernet would buy.
//
// The paper measures ~3 Gb/s of the rated 10 Gb/s through Java sockets and
// names RoCE as the fix ("bypasses copies in several layers of the TCP/IP
// stack"). This bench replays the same twitter-like allreduce under the
// socket-calibrated model and a RoCE-like model (full link rate, >10x lower
// per-message costs), for each topology — also showing that cheaper messages
// shift the optimal schedule toward direct all-to-all, exactly what the §IV
// workflow predicts when the packet floor drops.
#include <cstdio>

#include "bench_common.hpp"

namespace {

using namespace kylix;

TimingAccumulator::PhaseTimes run_with_net(const bench::Dataset& data,
                                           const Topology& topo,
                                           const NetworkModel& net) {
  const ComputeModel compute;
  TimingAccumulator timing(topo.num_machines(), net, compute, 16);
  BspEngine<real_t> engine(topo.num_machines(), nullptr, nullptr, &timing);
  SparseAllreduce<real_t, OpSum, BspEngine<real_t>> allreduce(&engine, topo,
                                                              &compute);
  allreduce.configure(data.in_sets, data.out_sets);
  (void)allreduce.reduce(data.out_values);
  return timing.times();
}

}  // namespace

int main() {
  std::printf("# Ablation (SIX future work): sockets vs RoCE-class "
              "transport (twitter-like, m = 64)\n\n");
  const bench::Dataset data = bench::make_dataset("twitter");
  const NetworkModel sockets = bench::scaled_network();
  NetworkModel roce = NetworkModel::roce_like();
  // Scale RoCE's per-message costs by the same factor as the socket model
  // so the two columns compare like for like on the scaled dataset.
  roce.stack_overhead_s = sockets.stack_overhead_s / 10;
  roce.handshake_latency_s = sockets.handshake_latency_s / 10;
  roce.base_latency_s = sockets.base_latency_s / 4;

  std::printf("%-22s %-14s %-14s %-10s\n", "topology", "sockets_total_s",
              "roce_total_s", "gain");
  for (const auto& [label, topo] :
       std::vector<std::pair<const char*, Topology>>{
           {"direct all-to-all", Topology::direct(64)},
           {"optimal butterfly", data.paper_topology},
           {"binary butterfly", Topology::binary(64)}}) {
    const double socket_t = run_with_net(data, topo, sockets).total();
    const double roce_t = run_with_net(data, topo, roce).total();
    std::printf("%-22s %-14.4f %-14.4f %-10.2fx\n", label, socket_t,
                roce_t, socket_t / roce_t);
  }

  std::printf("\nretuned schedule under RoCE (floor %s vs %s): ",
              format_bytes(roce.min_efficient_packet(0.5)).c_str(),
              format_bytes(sockets.min_efficient_packet(0.5)).c_str());
  AutotuneInput input;
  input.num_features = data.spec.num_vertices;
  input.num_machines = 64;
  input.alpha = data.spec.alpha_in;
  input.partition_density = data.measured_density;
  input.network = roce;
  input.target_utilization = bench::kPacketFloorUtil;
  std::printf("%s\n", Topology(autotune(input).degrees).to_string().c_str());
  return 0;
}
