#!/usr/bin/env bash
# Address-sanitized test run: configures a dedicated build tree with
# -DKYLIX_SANITIZE=address, builds everything, and runs the full ctest
# suite under ASan (the thread-sanitized twin is `ctest -L tsan` on a
# -DKYLIX_SANITIZE=thread tree; see tests/CMakeLists.txt).
#
# Usage: tools/asan_ctest.sh [build-dir] [ctest-args...]
#   build-dir defaults to build-asan (kept separate from the plain tree so
#   switching sanitizers never forces a full reconfigure of either).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-"${repo_root}/build-asan"}"
shift || true

cmake -S "${repo_root}" -B "${build_dir}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DKYLIX_SANITIZE=address
cmake --build "${build_dir}" -j "$(nproc)"

# halt_on_error keeps CI signal crisp: the first ASan report fails the test
# instead of scrolling past; leaks are on by default with ASan on Linux.
export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:strict_string_checks=1}"
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" "$@"

# Focused chaos pass: the fault-injection/recovery tests exercise the
# gnarliest lifetime paths (delayed-letter staging, mid-round kills,
# degraded teardown), so run them again by label — this keeps them covered
# even when extra ctest args above filtered the full suite down.
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" -L chaos

# Focused plan pass: the compiled-plan suite stresses shared-ownership
# lifetimes ASan is good at — plans outliving their compiler, adoption
# across allreduce instances and value types, executor scratch reuse, and
# LRU eviction dropping the last reference mid-replay sequence.
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" -L plan

# Focused stream pass: the chunked produce/consume paths slice PosMaps into
# subspans and recycle chunk-sized value buffers through the pool — exactly
# the off-by-one-span and use-after-recycle bugs ASan exists to catch, plus
# the threaded engine's multi-letter-per-edge receive loop.
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" -L stream

# Focused obs pass: the observability layer rides every hot path — the
# lock-free flight-recorder ring racing concurrent writers, histogram
# snapshots under concurrent observe(), watchdog scratch reuse, and the
# postmortem JSON round-trip — so it gets its own labeled lane.
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" -L obs

# Focused async pass: the overlapped executor multiplexes many in-flight
# streams over one shared channel — pooled letter shells migrating between
# lanes, value buffers recycled to their senders mid-drain, the threaded
# scheduler's park/wake edges — exactly where use-after-recycle and lost
# wakeups hide (the tsan tree runs the same label for the race half).
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" -L async

# Focused hierarchy pass: the two-tier replay reads peer value buffers
# directly from the leader (single-copy intra-node path) and slices
# union-position maps per member — exactly where a stale span into a
# swapped ping-pong buffer or an off-by-one member map would surface.
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" -L hierarchy

# Focused membership pass: the elastic-membership loop swaps whole plans at
# epoch boundaries — old-epoch plans kept alive only by the async executor's
# shared_ptr after cache eviction, per-epoch degraded state reset, and the
# heal/rejoin recompile path — the exact place a stale plan pointer or a
# dropped last reference would surface as a use-after-free.
ctest --test-dir "${build_dir}" --output-on-failure -j "$(nproc)" -L membership
