// Replica-recovery policy and bookkeeping for the §V replication layer.
//
// When every copy of a letter faults in transit (but the sender's replica
// group survives), the receiver re-requests it from a surviving replica:
// bounded retries with escalating per-attempt backoff, each attempt charged
// to the timing model (control headers both ways, backoff compute on the
// stalled receiver), and a final reliable-path fallback — the simulator's
// stand-in for TCP eventually delivering — so recovery cannot fail while any
// replica lives. When a whole replica group is dead, nothing can be
// recovered: the engine records a DeathRecord per {phase, layer} it notices
// the group missing in, and the allreduce completes in degraded mode
// (core/degraded.hpp) instead of aborting.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "cluster/trace.hpp"
#include "common/types.hpp"

namespace kylix {

/// Configurable bounded-retry backoff: attempt k (1-based) stalls for
/// base_s * multiplier^(k-1) modeled seconds, capped at cap_s. Shared by the
/// replica-recovery loop below and the membership heartbeat suspect timer
/// (cluster/membership.hpp), so both escalate on the same schedule family.
struct BackoffSchedule {
  double base_s = 1e-4;     ///< delay of the first attempt
  double multiplier = 2.0;  ///< geometric escalation per further attempt
  double cap_s = 1e-2;      ///< upper bound on any single attempt's delay

  /// Delay charged before attempt `attempt` (1-based; 0 maps to attempt 1).
  [[nodiscard]] double delay(std::uint32_t attempt) const {
    double d = base_s;
    for (std::uint32_t k = 1; k < std::max<std::uint32_t>(attempt, 1); ++k) {
      d *= multiplier;
      if (d >= cap_s) break;
    }
    return std::min(d, cap_s);
  }

  /// Total stall across attempts 1..n — the worst-case time a bounded-retry
  /// loop (or a heartbeat detector) spends before giving up on a peer.
  [[nodiscard]] double total(std::uint32_t attempts) const {
    double sum = 0;
    for (std::uint32_t k = 1; k <= attempts; ++k) sum += delay(k);
    return sum;
  }
};

struct RecoveryPolicy {
  /// Re-request attempts per missing letter before the reliable fallback.
  std::uint32_t max_attempts = 4;
  /// Per-attempt stall charged to the requesting receiver; attempt k waits
  /// backoff.delay(k) modeled seconds (exponential, capped).
  BackoffSchedule backoff{};
  /// Modeled bytes of the re-request control message (each direction pays
  /// one header; the successful retransmit then pays full wire cost).
  std::uint64_t request_bytes = 32;
  /// When false, detecting a dead replica group throws instead of degrading.
  bool degraded_completion = true;
};

struct RecoveryStats {
  std::uint64_t detections = 0;  ///< letters found missing after delivery
  std::uint64_t retries = 0;     ///< re-request attempts issued
  std::uint64_t promotions = 0;  ///< surviving replicas that served a letter
  std::uint64_t forced = 0;      ///< reliable-path fallbacks (retries spent)
  std::uint64_t group_deaths = 0;  ///< distinct {phase, layer, rank} records
};

/// A replica group observed fully dead while it was an expected sender.
/// The allreduce maps records to lost key ranges: a down/config death at
/// layer i loses the group's node-layer i-1 range, an up death at layer i
/// loses its node-layer i range (core/allreduce.hpp degraded_report()).
struct DeathRecord {
  Phase phase = Phase::kConfig;
  std::uint16_t layer = 0;
  rank_t logical = 0;
};

}  // namespace kylix
