#include "obs/span_tracer.hpp"

#include "obs/json_writer.hpp"

namespace kylix::obs {

void SpanTracer::complete(std::string name, std::uint32_t track, double ts_us,
                          double dur_us, bool has_args,
                          std::uint64_t arg_bytes, std::uint64_t arg_msgs) {
  Event e;
  e.name = std::move(name);
  e.ph = 'X';
  e.track = track;
  e.ts_us = ts_us;
  e.dur_us = dur_us;
  e.has_args = has_args;
  e.arg_bytes = arg_bytes;
  e.arg_msgs = arg_msgs;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void SpanTracer::counter(std::string name, double ts_us, double value) {
  Event e;
  e.name = std::move(name);
  e.ph = 'C';
  e.ts_us = ts_us;
  e.value = value;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void SpanTracer::instant(std::string name, std::uint32_t track,
                         double ts_us) {
  Event e;
  e.name = std::move(name);
  e.ph = 'i';
  e.track = track;
  e.ts_us = ts_us;
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(e));
}

void SpanTracer::set_track_name(std::uint32_t track, std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  track_names_.emplace_back(track, std::move(name));
}

std::size_t SpanTracer::num_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void SpanTracer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  track_names_.clear();
}

void SpanTracer::write_chrome_trace(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter json(out);
  json.begin_object();
  json.key("traceEvents");
  json.begin_array();
  for (const auto& [track, name] : track_names_) {
    json.begin_object();
    json.key_value("name", std::string("thread_name"));
    json.key_value("ph", std::string("M"));
    json.key_value("pid", 0);
    json.key_value("tid", track);
    json.key("args");
    json.begin_object();
    json.key_value("name", name);
    json.end_object();
    json.end_object();
  }
  for (const Event& e : events_) {
    json.begin_object();
    json.key_value("name", e.name);
    json.key_value("ph", std::string(1, e.ph));
    json.key_value("pid", 0);
    json.key_value("tid", e.track);
    json.key_value("ts", e.ts_us);
    switch (e.ph) {
      case 'X':
        json.key_value("dur", e.dur_us);
        if (e.has_args) {
          json.key("args");
          json.begin_object();
          json.key_value("bytes", e.arg_bytes);
          json.key_value("messages", e.arg_msgs);
          json.end_object();
        }
        break;
      case 'C':
        json.key("args");
        json.begin_object();
        json.key_value("value", e.value);
        json.end_object();
        break;
      case 'i':
        json.key_value("s", std::string("t"));
        break;
      default:
        break;
    }
    json.end_object();
  }
  json.end_array();
  json.key_value("displayTimeUnit", std::string("ms"));
  json.end_object();
  out << '\n';
}

}  // namespace kylix::obs
