file(REMOVE_RECURSE
  "CMakeFiles/micro_merge.dir/micro_merge.cpp.o"
  "CMakeFiles/micro_merge.dir/micro_merge.cpp.o.d"
  "micro_merge"
  "micro_merge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_merge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
