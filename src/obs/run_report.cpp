#include "obs/run_report.hpp"

#include <algorithm>
#include <sstream>

#include "common/check.hpp"
#include "common/units.hpp"
#include "obs/json_writer.hpp"
#include "powerlaw/model.hpp"

namespace kylix::obs {

RunReport build_run_report(const RunReportInputs& inputs) {
  KYLIX_CHECK_MSG(inputs.trace != nullptr && inputs.topology != nullptr,
                  "run report needs a trace and a topology");
  const Topology& topo = *inputs.topology;
  const std::uint16_t l = topo.num_layers();

  RunReport report;
  report.workload = inputs.workload;
  report.machines = topo.num_machines();
  report.degrees.assign(topo.degrees().begin(), topo.degrees().end());
  report.cores_per_machine = topo.cores_per_machine();
  report.hierarchical = topo.hierarchical();
  report.features = inputs.features;
  report.alpha = inputs.alpha;
  report.partition_density = inputs.partition_density;
  report.has_measured_shape = !inputs.measured_elements.empty();
  if (report.has_measured_shape) {
    KYLIX_CHECK_MSG(inputs.measured_elements.size() ==
                        static_cast<std::size_t>(l) + 1,
                    "measured_elements must cover node layers 0..l");
  }
  report.has_timing = inputs.timing != nullptr;
  report.dropped_messages = inputs.dropped_messages;
  report.race_wins = inputs.race_wins;
  report.race_losses = inputs.race_losses;

  // Section IV predictions from the supplied workload parameters. For a
  // hierarchical topology the shared-memory tier is Prop 4.1's first merge:
  // the predictions are evaluated over the flat expansion {c, d_1..d_l} and
  // the entry for the intra stage is skipped, so inter layer i lines up
  // with fan-in c * K_{i-1} — exactly what the leaders' host unions hold.
  // The expansion's per-node figure divides by the full K (including c),
  // but a leader is never scattered over its own members: it holds c of
  // those shares, so the per-node prediction is scaled back by c below.
  std::vector<PowerLawModel::LayerStats> model_stats;
  const std::size_t off = report.hierarchical ? 1 : 0;
  if (inputs.features > 0 && inputs.partition_density > 0) {
    const PowerLawModel model(inputs.features, inputs.alpha);
    report.lambda0 = model.lambda_for_density(inputs.partition_density);
    std::vector<std::uint32_t> shape(report.degrees);
    if (report.hierarchical) {
      shape.insert(shape.begin(), report.cores_per_machine);
    }
    model_stats = model.layer_stats(report.lambda0, shape);
    report.has_model = true;
  }

  const auto config = inputs.trace->bytes_by_layer(Phase::kConfig, l);
  const auto down = inputs.trace->bytes_by_layer(Phase::kReduceDown, l);
  const auto up = inputs.trace->bytes_by_layer(Phase::kReduceUp, l);
  std::vector<std::uint64_t> layer_messages(l, 0);
  for (const MsgEvent& e : inputs.trace->events()) {
    if (e.layer >= 1 && e.layer <= l) ++layer_messages[e.layer - 1];
  }

  // Measured density multiplier: the set a rank holds entering layer i is
  // one of K_{i-1} disjoint shards of the fan-in union. Hierarchical
  // leaders split across the *inter* degrees only (the intra fold gathers,
  // it never scatters), so the product starts at 1 in both modes.
  const double cores = static_cast<double>(report.cores_per_machine);
  double fan_in = 1.0;
  for (std::uint16_t layer = 1; layer <= l; ++layer) {
    LayerReport lr;
    lr.layer = layer;
    lr.degree = topo.degree(layer);
    lr.bytes_config = config[layer - 1];
    lr.bytes_reduce_down = down[layer - 1];
    lr.bytes_reduce_up = up[layer - 1];
    lr.bytes_total = lr.bytes_config + lr.bytes_reduce_down + lr.bytes_reduce_up;
    lr.messages = layer_messages[layer - 1];
    if (report.has_measured_shape) {
      lr.measured_elements_per_node = inputs.measured_elements[layer - 1];
      if (inputs.features > 0) {
        lr.measured_density = lr.measured_elements_per_node * fan_in /
                              static_cast<double>(inputs.features);
      }
    }
    if (report.has_model) {
      lr.model_elements_per_node =
          model_stats[layer - 1 + off].elements_per_node *
          (report.hierarchical ? cores : 1.0);
      lr.model_density = model_stats[layer - 1 + off].density;
    }
    if (report.has_timing) {
      lr.time_config_s = inputs.timing->round_time(Phase::kConfig, layer);
      lr.time_reduce_down_s =
          inputs.timing->round_time(Phase::kReduceDown, layer);
      lr.time_reduce_up_s = inputs.timing->round_time(Phase::kReduceUp, layer);
    }
    report.layers.push_back(lr);
    fan_in *= topo.degree(layer);
  }
  if (report.has_measured_shape) {
    report.bottom_measured_elements = inputs.measured_elements[l];
  }
  if (report.has_model) {
    report.bottom_model_elements = model_stats[l + off].elements_per_node *
                                   (report.hierarchical ? cores : 1.0);
  }

  report.total_bytes = inputs.trace->total_bytes();
  report.total_messages = inputs.trace->num_messages();
  if (report.has_timing) {
    const auto times = inputs.timing->times();
    report.time_config_s = times.config + times.intra_config;
    report.time_reduce_s = times.reduce();
    report.time_intra_config_s = times.intra_config;
    report.time_intra_reduce_s = times.intra_down + times.intra_up;
    report.time_inter_reduce_s = times.reduce_down + times.reduce_up;
  }
  return report;
}

std::string RunReport::ascii_chart(std::size_t width) const {
  std::uint64_t max_bytes = 1;
  for (const LayerReport& lr : layers) {
    max_bytes = std::max(max_bytes, lr.bytes_total);
  }
  std::ostringstream out;
  for (const LayerReport& lr : layers) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(lr.bytes_total) / static_cast<double>(max_bytes) *
        static_cast<double>(width));
    const std::size_t pad = (width - bar) / 2;
    out << "  layer " << lr.layer << "  |" << std::string(pad, ' ')
        << std::string(bar, '#')
        << std::string(width - pad - bar, ' ') << "|  "
        << format_bytes(static_cast<double>(lr.bytes_total)) << "\n";
  }
  return out.str();
}

void RunReport::write_json(std::ostream& out) const {
  JsonWriter json(out);
  json.begin_object();
  json.key_value("workload", workload);
  json.key_value("machines", static_cast<std::uint64_t>(machines));
  json.key("degrees");
  json.begin_array();
  for (std::uint32_t d : degrees) json.value(d);
  json.end_array();
  json.key_value("cores_per_machine",
                 static_cast<std::uint64_t>(cores_per_machine));
  json.key_value("hierarchical", hierarchical);
  if (has_model) {
    json.key_value("features", features);
    json.key_value("alpha", alpha);
    json.key_value("partition_density", partition_density);
    json.key_value("lambda0", lambda0);
  }
  json.key("layers");
  json.begin_array();
  for (const LayerReport& lr : layers) {
    json.begin_object();
    json.key_value("layer", static_cast<std::uint64_t>(lr.layer));
    json.key_value("degree", lr.degree);
    json.key_value("bytes_config", lr.bytes_config);
    json.key_value("bytes_reduce_down", lr.bytes_reduce_down);
    json.key_value("bytes_reduce_up", lr.bytes_reduce_up);
    json.key_value("bytes_total", lr.bytes_total);
    json.key_value("messages", lr.messages);
    if (has_measured_shape) {
      json.key_value("measured_elements_per_node",
                     lr.measured_elements_per_node);
      json.key_value("measured_density", lr.measured_density);
    }
    if (has_model) {
      json.key_value("model_elements_per_node", lr.model_elements_per_node);
      json.key_value("model_density", lr.model_density);
    }
    if (has_timing) {
      json.key_value("time_config_s", lr.time_config_s);
      json.key_value("time_reduce_down_s", lr.time_reduce_down_s);
      json.key_value("time_reduce_up_s", lr.time_reduce_up_s);
    }
    json.end_object();
  }
  json.end_array();
  json.key("bottom");
  json.begin_object();
  if (has_measured_shape) {
    json.key_value("measured_elements_per_node", bottom_measured_elements);
  }
  if (has_model) {
    json.key_value("model_elements_per_node", bottom_model_elements);
  }
  json.end_object();
  json.key_value("total_bytes", total_bytes);
  json.key_value("total_messages", total_messages);
  json.key_value("dropped_messages", dropped_messages);
  json.key_value("race_wins", race_wins);
  json.key_value("race_losses", race_losses);
  if (has_timing) {
    json.key_value("time_config_s", time_config_s);
    json.key_value("time_reduce_s", time_reduce_s);
    if (hierarchical) {
      json.key_value("time_intra_config_s", time_intra_config_s);
      json.key_value("time_intra_reduce_s", time_intra_reduce_s);
      json.key_value("time_inter_reduce_s", time_inter_reduce_s);
    }
  }
  json.end_object();
  out << '\n';
}

std::string RunReport::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

}  // namespace kylix::obs
