#include "cluster/timing.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace kylix {

TimingAccumulator::TimingAccumulator(rank_t num_nodes, NetworkModel net,
                                     ComputeModel compute,
                                     std::uint32_t threads)
    : num_nodes_(num_nodes),
      net_(net),
      compute_(compute),
      threads_(threads) {
  KYLIX_CHECK(num_nodes >= 1);
  KYLIX_CHECK(threads >= 1);
  for (auto& phase : intra_) phase.assign(num_nodes_, 0.0);
}

void TimingAccumulator::set_threads(std::uint32_t threads) {
  KYLIX_CHECK(threads >= 1);
  threads_ = threads;
}

TimingAccumulator::Round& TimingAccumulator::round(Phase phase,
                                                   std::uint16_t layer) {
  auto& r = rounds_[{static_cast<std::uint8_t>(phase), layer}];
  if (r.send_bytes.empty()) {
    r.send_bytes.assign(num_nodes_, 0);
    r.send_msgs.assign(num_nodes_, 0);
    r.recv_bytes.assign(num_nodes_, 0);
    r.recv_msgs.assign(num_nodes_, 0);
    r.compute_s.assign(num_nodes_, 0.0);
  }
  return r;
}

void TimingAccumulator::on_message(const MsgEvent& event) {
  if (event.src == event.dst) return;
  on_send(event.phase, event.layer, event.src, event.bytes);
  on_recv(event.phase, event.layer, event.dst, event.bytes);
}

void TimingAccumulator::on_send(Phase phase, std::uint16_t layer, rank_t rank,
                                std::uint64_t bytes) {
  KYLIX_DCHECK(rank < num_nodes_);
  Round& r = round(phase, layer);
  r.send_bytes[rank] += bytes;
  r.send_msgs[rank] += 1;
}

void TimingAccumulator::on_recv(Phase phase, std::uint16_t layer, rank_t rank,
                                std::uint64_t bytes) {
  KYLIX_DCHECK(rank < num_nodes_);
  Round& r = round(phase, layer);
  r.recv_bytes[rank] += bytes;
  r.recv_msgs[rank] += 1;
}

void TimingAccumulator::on_compute(Phase phase, std::uint16_t layer,
                                   rank_t rank, double seconds) {
  KYLIX_DCHECK(rank < num_nodes_);
  round(phase, layer).compute_s[rank] += seconds;
}

void TimingAccumulator::on_intra(Phase phase, rank_t rank, double seconds) {
  KYLIX_DCHECK(rank < num_nodes_);
  intra_[static_cast<std::uint8_t>(phase)][rank] += seconds;
}

double TimingAccumulator::intra_time(Phase phase) const {
  const auto& per_rank = intra_[static_cast<std::uint8_t>(phase)];
  double worst = 0.0;
  for (const double s : per_rank) worst = std::max(worst, s);
  return worst;
}

double TimingAccumulator::eval_round(const Round& r) const {
  const double bandwidth = net_.bandwidth_bytes_per_s;
  const auto path = [&](std::uint64_t bytes, std::uint32_t msgs) {
    // Stack costs serialize on the NIC path; handshakes overlap across up
    // to `threads_` concurrent message threads (see netmodel.hpp).
    const double batches =
        std::ceil(static_cast<double>(msgs) / static_cast<double>(threads_));
    return static_cast<double>(bytes) / bandwidth +
           net_.stack_overhead_s * static_cast<double>(msgs) +
           net_.handshake_latency_s * batches;
  };
  const double compute_ways =
      static_cast<double>(std::min(threads_, compute_.cores));
  double worst = 0.0;
  for (rank_t node = 0; node < num_nodes_; ++node) {
    const double send = path(r.send_bytes[node], r.send_msgs[node]);
    const double recv = path(r.recv_bytes[node], r.recv_msgs[node]);
    const double node_time =
        std::max(send, recv) + r.compute_s[node] / compute_ways;
    worst = std::max(worst, node_time);
  }
  return worst + net_.base_latency_s;
}

double TimingAccumulator::round_time(Phase phase, std::uint16_t layer) const {
  const auto it = rounds_.find({static_cast<std::uint8_t>(phase), layer});
  if (it == rounds_.end()) return 0.0;
  return eval_round(it->second);
}

std::vector<TimingAccumulator::RoundTime> TimingAccumulator::per_round_times()
    const {
  std::vector<RoundTime> result;
  result.reserve(rounds_.size());
  for (const auto& [key, r] : rounds_) {
    result.push_back(RoundTime{static_cast<Phase>(key.first), key.second,
                               eval_round(r)});
  }
  return result;
}

namespace {

// Quantile with linear interpolation between order statistics over an
// unsorted sample; sorts a copy.
double sample_quantile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  if (lo + 1 >= sample.size()) return sample.back();
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] + frac * (sample[lo + 1] - sample[lo]);
}

}  // namespace

double TimingAccumulator::round_time_quantile(double q) const {
  std::vector<double> sample;
  sample.reserve(rounds_.size());
  for (const auto& [key, r] : rounds_) sample.push_back(eval_round(r));
  return sample_quantile(std::move(sample), q);
}

void TimingAccumulator::mark_reduce_complete() {
  const double reduce_total = times().reduce();
  // Concurrent engines can make the modeled total non-monotone across
  // clears; clamp so a reordered mark never records a negative latency.
  const double latency = std::max(0.0, reduce_total - last_reduce_mark_);
  last_reduce_mark_ = reduce_total;
  reduce_latencies_.push_back(latency);
}

double TimingAccumulator::reduce_latency_quantile(double q) const {
  return sample_quantile(reduce_latencies_, q);
}

double TimingAccumulator::pipelined_reduce_time(
    std::uint32_t chunks_per_letter) const {
  const double k = static_cast<double>(std::max(1u, chunks_per_letter));
  double sum = 0.0;
  double bottleneck = 0.0;
  std::size_t stages = 0;
  for (const auto& [key, r] : rounds_) {
    if (static_cast<Phase>(key.first) == Phase::kConfig) continue;
    const double t = eval_round(r) - net_.base_latency_s;
    sum += t;
    bottleneck = std::max(bottleneck, t);
    ++stages;
  }
  if (stages == 0) return 0.0;
  // The intra-node tiers bracket the pipeline and are not chunked (the
  // leader reads peer buffers in place), so they add as constants.
  return sum / k + (k - 1.0) / k * bottleneck + net_.base_latency_s +
         intra_time(Phase::kReduceDown) + intra_time(Phase::kReduceUp);
}

TimingAccumulator::PhaseTimes TimingAccumulator::times() const {
  PhaseTimes result;
  for (const auto& [key, r] : rounds_) {
    const double t = eval_round(r);
    switch (static_cast<Phase>(key.first)) {
      case Phase::kConfig:
        result.config += t;
        break;
      case Phase::kReduceDown:
        result.reduce_down += t;
        break;
      case Phase::kReduceUp:
        result.reduce_up += t;
        break;
    }
  }
  result.intra_config = intra_time(Phase::kConfig);
  result.intra_down = intra_time(Phase::kReduceDown);
  result.intra_up = intra_time(Phase::kReduceUp);
  return result;
}

}  // namespace kylix
