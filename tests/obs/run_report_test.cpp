#include "obs/run_report.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cluster/failure.hpp"
#include "cluster/timing.hpp"
#include "cluster/trace.hpp"
#include "common/check.hpp"
#include "comm/bsp.hpp"
#include "comm/replicated.hpp"
#include "core/allreduce.hpp"
#include "core/topology.hpp"
#include "obs/engine_obs.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"
#include "test_util.hpp"

namespace kylix::obs {
namespace {

using kylix::testing::random_workload;

struct ObservedRun {
  Trace trace;
  SpanTracer tracer;
  MetricsRegistry metrics;
  std::vector<double> measured;
  std::uint64_t drops = 0;
  std::vector<std::vector<float>> results;
};

/// One BspEngine allreduce with the full telemetry stack attached. Fills a
/// caller-owned record (the tracer/registry members are not movable).
void observed_run(const Topology& topo, std::uint64_t features,
                  std::uint64_t seed, ObservedRun& run) {
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, features, 0.08, 0.15, seed);

  BspEngine<float> engine(m, nullptr, &run.trace, nullptr);
  TelemetryObserver::Options opt;
  opt.topology = &topo;
  opt.features = features;
  opt.metrics = &run.metrics;
  TelemetryObserver observer(&run.tracer, m, opt);
  engine.set_observer(&observer);

  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  run.results = allreduce.reduce(w.out_values);
  run.measured = allreduce.measured_layer_elements();
  run.drops = engine.dropped_messages();
}

TEST(RunReport, PerLayerBytesMatchTraceExactly) {
  const Topology topo({4, 2});
  ObservedRun run;
  observed_run(topo, 4000, 21, run);

  RunReportInputs inputs;
  inputs.trace = &run.trace;
  inputs.topology = &topo;
  inputs.measured_elements = run.measured;
  inputs.dropped_messages = run.drops;
  const RunReport report = build_run_report(inputs);

  const auto by_layer =
      run.trace.bytes_by_layer_all_phases(topo.num_layers());
  ASSERT_EQ(report.layers.size(), topo.num_layers());
  std::uint64_t sum = 0;
  for (std::uint16_t i = 0; i < topo.num_layers(); ++i) {
    const LayerReport& lr = report.layers[i];
    EXPECT_EQ(lr.layer, i + 1);
    EXPECT_EQ(lr.degree, topo.degrees()[i]);
    EXPECT_EQ(lr.bytes_total, by_layer[i]) << "layer " << i + 1;
    EXPECT_EQ(lr.bytes_total,
              lr.bytes_config + lr.bytes_reduce_down + lr.bytes_reduce_up);
    EXPECT_EQ(lr.bytes_config,
              run.trace.bytes_by_layer(Phase::kConfig, topo.num_layers())[i]);
    sum += lr.bytes_total;
  }
  EXPECT_EQ(report.total_bytes, run.trace.total_bytes());
  EXPECT_EQ(sum, report.total_bytes) << "no bytes outside the layer table";
  EXPECT_EQ(report.total_messages, run.trace.num_messages());
  EXPECT_EQ(report.dropped_messages, 0u);
  EXPECT_EQ(report.machines, topo.num_machines());
}

TEST(RunReport, MeasuredShapeAndModelColumns) {
  const Topology topo({4, 2});
  ObservedRun run;
  observed_run(topo, 4000, 22, run);

  RunReportInputs inputs;
  inputs.trace = &run.trace;
  inputs.topology = &topo;
  inputs.features = 4000;
  inputs.alpha = 1.1;
  // Layer-1 per-node elements over n is the partition density by definition.
  inputs.partition_density = run.measured[0] / 4000.0;
  inputs.measured_elements = run.measured;
  const RunReport report = build_run_report(inputs);

  ASSERT_TRUE(report.has_model);
  ASSERT_TRUE(report.has_measured_shape);
  EXPECT_FALSE(report.has_timing);
  EXPECT_GT(report.lambda0, 0.0);
  ASSERT_EQ(report.layers.size(), 2u);
  // Measured column: P_i entering layer i is measured_elements[i - 1];
  // D_i = P_i * K_i / n with fan-in K_1 = 1, K_2 = d_1.
  EXPECT_DOUBLE_EQ(report.layers[0].measured_elements_per_node,
                   run.measured[0]);
  EXPECT_DOUBLE_EQ(report.layers[0].measured_density,
                   run.measured[0] / 4000.0);
  EXPECT_DOUBLE_EQ(report.layers[1].measured_density,
                   run.measured[1] * 4 / 4000.0);
  EXPECT_DOUBLE_EQ(report.bottom_measured_elements, run.measured.back());
  // Model column: layer 1's density is the fitted partition density, and
  // densities grow monotonically toward the bottom of the cup.
  EXPECT_NEAR(report.layers[0].model_density, inputs.partition_density,
              1e-9);
  EXPECT_GT(report.layers[1].model_density,
            report.layers[0].model_density);
  EXPECT_GT(report.bottom_model_elements, 0.0);
}

TEST(RunReport, TimingColumnsComeFromTheAccumulator) {
  const Topology topo({2, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 2000, 0.08, 0.15, 5);
  Trace trace;
  TimingAccumulator timing(m, NetworkModel::ec2_like(), ComputeModel{}, 4);
  BspEngine<float> engine(m, nullptr, &trace, &timing);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  (void)allreduce.reduce(w.out_values);

  RunReportInputs inputs;
  inputs.trace = &trace;
  inputs.topology = &topo;
  inputs.timing = &timing;
  const RunReport report = build_run_report(inputs);
  ASSERT_TRUE(report.has_timing);
  const auto times = timing.times();
  EXPECT_DOUBLE_EQ(report.time_config_s, times.config);
  EXPECT_DOUBLE_EQ(report.time_reduce_s, times.reduce());
  double config_sum = 0;
  for (const LayerReport& lr : report.layers) {
    config_sum += lr.time_config_s;
    EXPECT_DOUBLE_EQ(lr.time_config_s,
                     timing.round_time(Phase::kConfig, lr.layer));
  }
  EXPECT_DOUBLE_EQ(config_sum, times.config);
}

TEST(RunReport, HierarchicalReportAlignsWithTheFlatExpansion) {
  // {2, 2 | c=4} against its flat expansion {4, 2, 2}: the leaders' host
  // unions are the expansion's layer-1 merge, so inter layer i must line
  // up with flat layer i + 1 — same union densities, per-node counts c×
  // bigger because a leader is never scattered over its own members.
  const Topology hier({2, 2}, 4);
  const Topology flat({4, 2, 2});
  ObservedRun h;
  ObservedRun f;
  observed_run(hier, 4000, 27, h);
  observed_run(flat, 4000, 27, f);

  const double density = f.measured[0] / 4000.0;
  RunReportInputs hi;
  hi.trace = &h.trace;
  hi.topology = &hier;
  hi.features = 4000;
  hi.alpha = 1.1;
  hi.partition_density = density;
  hi.measured_elements = h.measured;
  const RunReport hr = build_run_report(hi);
  RunReportInputs fi;
  fi.trace = &f.trace;
  fi.topology = &flat;
  fi.features = 4000;
  fi.alpha = 1.1;
  fi.partition_density = density;
  fi.measured_elements = f.measured;
  const RunReport fr = build_run_report(fi);

  EXPECT_TRUE(hr.hierarchical);
  EXPECT_EQ(hr.cores_per_machine, 4u);
  EXPECT_FALSE(fr.hierarchical);
  ASSERT_EQ(hr.layers.size(), 2u);
  ASSERT_EQ(fr.layers.size(), 3u);
  for (std::size_t i = 0; i < hr.layers.size(); ++i) {
    const LayerReport& hl = hr.layers[i];
    const LayerReport& fl = fr.layers[i + 1];
    EXPECT_EQ(hl.degree, fl.degree);
    EXPECT_NEAR(hl.measured_elements_per_node,
                4 * fl.measured_elements_per_node, 1e-6);
    EXPECT_NEAR(hl.measured_density, fl.measured_density, 1e-9);
    EXPECT_NEAR(hl.model_elements_per_node, 4 * fl.model_elements_per_node,
                1e-6);
    EXPECT_NEAR(hl.model_density, fl.model_density, 1e-12);
    EXPECT_GT(hl.measured_density, 0.0);
    EXPECT_LE(hl.measured_density, 1.0);
  }
  EXPECT_NEAR(hr.bottom_measured_elements, 4 * fr.bottom_measured_elements,
              1e-6);
  EXPECT_NEAR(hr.bottom_model_elements, 4 * fr.bottom_model_elements, 1e-6);
}

TEST(RunReport, HierarchicalTimingSplitsIntraFromInter) {
  const Topology topo({2, 2}, 4);
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 2000, 0.08, 0.15, 5);
  Trace trace;
  const NetworkModel net = NetworkModel::ec2_like();
  const ComputeModel compute;
  TimingAccumulator timing(m, net, compute, 4);
  BspEngine<float> engine(m, nullptr, &trace, &timing);
  // The intra stage is priced by the allreduce itself (it owns the
  // shared-memory schedule), so it needs the models too.
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo,
                                                            &compute);
  allreduce.set_network(&net);
  allreduce.configure(w.in_sets, w.out_sets);
  (void)allreduce.reduce(w.out_values);

  RunReportInputs inputs;
  inputs.trace = &trace;
  inputs.topology = &topo;
  inputs.timing = &timing;
  const RunReport report = build_run_report(inputs);
  ASSERT_TRUE(report.has_timing);
  ASSERT_TRUE(report.hierarchical);
  EXPECT_GT(report.time_intra_config_s, 0.0);
  EXPECT_GT(report.time_intra_reduce_s, 0.0);
  EXPECT_GT(report.time_inter_reduce_s, 0.0);
  EXPECT_NEAR(report.time_reduce_s,
              report.time_intra_reduce_s + report.time_inter_reduce_s,
              1e-12);
  const auto times = timing.times();
  EXPECT_DOUBLE_EQ(report.time_config_s, times.config + times.intra_config);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"hierarchical\":true"), std::string::npos);
  EXPECT_NE(json.find("\"cores_per_machine\":4"), std::string::npos);
  EXPECT_NE(json.find("\"time_intra_reduce_s\""), std::string::npos);
  EXPECT_NE(json.find("\"time_inter_reduce_s\""), std::string::npos);
}

TEST(RunReport, ObserverDoesNotChangeResults) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 4000, 0.08, 0.15, 23);

  BspEngine<float> plain(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce_plain(&plain,
                                                                 topo);
  allreduce_plain.configure(w.in_sets, w.out_sets);
  const auto expected = allreduce_plain.reduce(w.out_values);
  testing::expect_matches_oracle<float>(w, expected);

  ObservedRun run;
  observed_run(topo, 4000, 23, run);
  ASSERT_EQ(run.results.size(), expected.size());
  for (rank_t r = 0; r < m; ++r) {
    EXPECT_EQ(run.results[r], expected[r]) << "rank " << r;
  }
}

TEST(RunReport, TelemetryObserverCountsMatchTheTrace) {
  const Topology topo({4, 2});
  Trace trace;
  SpanTracer tracer;
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 4000, 0.08, 0.15, 9);

  BspEngine<float> engine(m, nullptr, &trace, nullptr);
  MetricsRegistry metrics;
  TelemetryObserver::Options opt;
  opt.metrics = &metrics;
  TelemetryObserver observer(&tracer, m, opt);
  engine.set_observer(&observer);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  (void)allreduce.reduce(w.out_values);

  EXPECT_EQ(observer.total_messages(), trace.num_messages());
  EXPECT_EQ(observer.total_bytes(), trace.total_bytes());
  EXPECT_EQ(observer.total_drops(), 0u);
  EXPECT_EQ(metrics.counter("engine.messages").value(),
            trace.num_messages());
  EXPECT_EQ(metrics.counter("engine.wire_bytes").value(),
            trace.total_bytes());
  // 3 phases x 2 layers of rounds; every message fell into some histogram
  // bucket; the tracer got at least one span per round.
  EXPECT_EQ(metrics.counter("engine.rounds").value(), 6u);
  EXPECT_EQ(metrics.histogram("engine.packet_bytes", {}).count(),
            trace.num_messages());
  EXPECT_GE(tracer.num_events(), 6u);
}

TEST(RunReport, ReplicatedRunReportsRacesAndDrops) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 4000, 0.08, 0.15, 31);
  const rank_t physical = m * 2;
  const FailureModel failures =
      FailureModel::random_failures(physical, 3, 77);
  Trace trace;
  ReplicatedBsp<float> engine(m, 2, &failures, &trace, nullptr);
  ASSERT_FALSE(engine.has_failed());
  SpanTracer tracer;
  TelemetryObserver observer(&tracer, physical, TelemetryObserver::Options{});
  engine.set_observer(&observer);
  SparseAllreduce<float, OpSum, ReplicatedBsp<float>> allreduce(&engine,
                                                                topo);
  allreduce.configure(w.in_sets, w.out_sets);
  const auto results = allreduce.reduce(w.out_values);
  testing::expect_matches_oracle<float>(w, results);

  RunReportInputs inputs;
  inputs.trace = &trace;
  inputs.topology = &topo;
  inputs.dropped_messages = engine.dropped_messages();
  inputs.race_wins = engine.race_stats().wins;
  inputs.race_losses = engine.race_stats().losses;
  const RunReport report = build_run_report(inputs);
  // 3 dead physical nodes keep receiving copies they never pay for.
  EXPECT_GT(report.dropped_messages, 0u);
  EXPECT_GT(report.race_wins, 0u);
  EXPECT_GT(report.race_losses, 0u);
  EXPECT_EQ(report.dropped_messages, observer.total_drops());
  // Every transmitted copy is either raced to a live dst or dropped.
  EXPECT_EQ(report.race_wins + report.race_losses + report.dropped_messages,
            trace.num_messages());
}

TEST(RunReport, AsciiChartDrawsOneBarPerLayer) {
  const Topology topo({4, 2});
  ObservedRun run;
  observed_run(topo, 4000, 3, run);
  RunReportInputs inputs;
  inputs.trace = &run.trace;
  inputs.topology = &topo;
  const RunReport report = build_run_report(inputs);
  const std::string chart = report.ascii_chart();
  EXPECT_NE(chart.find("layer 1"), std::string::npos);
  EXPECT_NE(chart.find("layer 2"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
}

TEST(RunReport, JsonContainsLayersAndTotals) {
  const Topology topo({4, 2});
  ObservedRun run;
  observed_run(topo, 4000, 4, run);
  RunReportInputs inputs;
  inputs.trace = &run.trace;
  inputs.topology = &topo;
  inputs.measured_elements = run.measured;
  inputs.workload = "unit-test";
  const RunReport report = build_run_report(inputs);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"workload\":\"unit-test\""), std::string::npos);
  EXPECT_NE(json.find("\"degrees\":[4,2]"), std::string::npos);
  EXPECT_NE(json.find("\"layers\":["), std::string::npos);
  EXPECT_NE(json.find("\"bytes_total\""), std::string::npos);
  EXPECT_NE(json.find("\"measured_density\""), std::string::npos);
  EXPECT_NE(json.find("\"total_bytes\""), std::string::npos);
}

TEST(RunReport, RejectsMissingOrMalformedInputs) {
  const Topology topo({4, 2});
  Trace trace;
  RunReportInputs inputs;
  EXPECT_THROW((void)build_run_report(inputs), check_error);
  inputs.trace = &trace;
  EXPECT_THROW((void)build_run_report(inputs), check_error);
  inputs.topology = &topo;
  EXPECT_NO_THROW((void)build_run_report(inputs));
  inputs.measured_elements = {1.0, 2.0};  // needs num_layers + 1 entries
  EXPECT_THROW((void)build_run_report(inputs), check_error);
}

}  // namespace
}  // namespace kylix::obs
