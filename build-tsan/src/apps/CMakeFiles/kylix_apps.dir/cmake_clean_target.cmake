file(REMOVE_RECURSE
  "libkylix_apps.a"
)
