// Hierarchy under chaos (DESIGN §13): the two-tier plan must degrade
// exactly like its flat twin. Three layers of identity, each across all
// four engines:
//
//   1. cores-per-machine == 1 under chaos (duplicate storms + a rank dead
//      from the start): results and DegradedReports are identical to the
//      flat topology's — the degenerate hierarchy *is* the flat run.
//   2. c > 1 under duplicate-only chaos, nobody dead: bit-identical to the
//      flat-expanded topology {c, d_1, d_2}, and both reports are exact.
//   3. c > 1 with a non-leader member dead from the start: the member is a
//      compile-time exclusion from its host union, so the hierarchical run
//      is *exact* over the survivors — bit-identical to the flat-expanded
//      run wherever the flat report promises exactness, and strictly no
//      more degraded than it (the flat replicated engine declares
//      conservative key ranges for the dead group; the hierarchical
//      compile never even routes through it).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "cluster/fault_plan.hpp"
#include "comm/bsp.hpp"
#include "comm/fault_channel.hpp"
#include "comm/parallel.hpp"
#include "comm/replicated.hpp"
#include "comm/threaded.hpp"
#include "core/allreduce.hpp"
#include "core/degraded.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

using testing::random_workload;
using testing::Workload;

void expect_reports_equal(const DegradedReport& a, const DegradedReport& b) {
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.lost_logical, b.lost_logical);
  EXPECT_EQ(a.lost_from_start, b.lost_from_start);
  EXPECT_EQ(a.inputs_lost, b.inputs_lost);
  EXPECT_EQ(a.lost_keys, b.lost_keys);
  EXPECT_EQ(a.lost_keys_per_rank, b.lost_keys_per_rank);
  EXPECT_DOUBLE_EQ(a.mass_lost_fraction, b.mass_lost_fraction);
  ASSERT_EQ(a.degraded_ranges.size(), b.degraded_ranges.size());
  for (std::size_t i = 0; i < a.degraded_ranges.size(); ++i) {
    EXPECT_EQ(a.degraded_ranges[i].lo, b.degraded_ranges[i].lo);
    EXPECT_EQ(a.degraded_ranges[i].hi, b.degraded_ranges[i].hi);
  }
}

struct RunOutcome {
  std::vector<std::vector<float>> results;
  DegradedReport report;
};

/// One chaotic run of `Engine` over `topo`: duplicate-only transient rates
/// (duplicates are delivered once, so an exact run stays exact) plus
/// optionally one logical rank fully dead from the start.
template <typename Engine>
RunOutcome chaotic_run(const Topology& topo, const Workload<float>& w,
                       std::uint64_t seed, rank_t dead, bool kill,
                       std::uint32_t replicas) {
  const rank_t m = topo.num_machines();
  const rank_t physical = m * replicas;
  FaultPlan plan(physical, seed);
  FaultPlan::TransientRates rates;
  rates.duplicate = 0.2;
  plan.set_transient_rates(rates);
  if (kill) {
    // Kill every physical replica of the logical victim so replicated
    // engines observe a true group death, matching the flat engines'
    // single dead rank.
    for (rank_t p = dead; p < physical; p += m) plan.failures().kill(p);
  }
  FaultChannel<float> channel(&plan);
  auto engine = [&] {
    if constexpr (std::is_same_v<Engine, ReplicatedBsp<float>>) {
      return std::make_unique<Engine>(m, replicas);
    } else {
      return std::make_unique<Engine>(m);
    }
  }();
  engine->set_fault_channel(&channel);
  SparseAllreduce<float, OpSum, Engine> allreduce(engine.get(), topo);
  allreduce.configure(w.in_sets, w.out_sets);
  RunOutcome out;
  out.results = allreduce.reduce(w.out_values);
  EXPECT_GT(plan.stats().duplicated, 0u) << "chaos never fired";
  out.report = allreduce.degraded_report();
  return out;
}

/// Exactness over survivors: every alive requester's value equals the
/// brute-force sum excluding the dead ranks' contributions.
void expect_exact_over_survivors(const Workload<float>& w,
                                 const std::vector<std::vector<float>>& results,
                                 const std::vector<rank_t>& dead) {
  std::map<key_t, float> totals;
  for (rank_t r = 0; r < w.out_sets.size(); ++r) {
    if (std::find(dead.begin(), dead.end(), r) != dead.end()) continue;
    for (std::size_t p = 0; p < w.out_sets[r].size(); ++p) {
      totals[w.out_sets[r][p]] += w.out_values[r][p];
    }
  }
  ASSERT_EQ(results.size(), w.in_sets.size());
  for (rank_t r = 0; r < w.in_sets.size(); ++r) {
    if (std::find(dead.begin(), dead.end(), r) != dead.end()) {
      EXPECT_TRUE(results[r].empty()) << "dead rank " << r << " has a result";
      continue;
    }
    ASSERT_EQ(results[r].size(), w.in_sets[r].size()) << "machine " << r;
    for (std::size_t p = 0; p < w.in_sets[r].size(); ++p) {
      const auto it = totals.find(w.in_sets[r][p]);
      EXPECT_EQ(results[r][p], it == totals.end() ? 0.0f : it->second)
          << "machine " << r << " position " << p;
    }
  }
}

template <typename Engine>
void sweep(std::uint32_t replicas) {
  // 1. The degenerate hierarchy is the flat run, chaos and deaths included.
  {
    const Topology flat({4, 2});
    const Topology one({4, 2}, 1);
    const rank_t m = flat.num_machines();
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      SCOPED_TRACE("c=1 seed " + std::to_string(seed));
      const auto w = random_workload<float>(m, 96, 0.25, 0.4, 4000 + seed);
      const bool kill = (seed % 2) == 1;
      const rank_t dead = seed % m;
      const auto f = chaotic_run<Engine>(flat, w, seed, dead, kill, replicas);
      const auto h = chaotic_run<Engine>(one, w, seed, dead, kill, replicas);
      EXPECT_EQ(h.results, f.results);
      expect_reports_equal(h.report, f.report);
    }
  }

  const Topology hier({2, 2}, 2);  // 8 ranks, 4 two-core hosts
  const Topology flat({2, 2, 2});  // the flat expansion over the same ranks
  const rank_t m = hier.num_machines();
  ASSERT_EQ(m, flat.num_machines());

  // 2. c > 1, transient chaos only: both runs are exact and bit-identical.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    const auto w = random_workload<float>(m, 96, 0.25, 0.4, 5000 + seed);
    const auto f =
        chaotic_run<Engine>(flat, w, seed, /*dead=*/0, false, replicas);
    const auto h =
        chaotic_run<Engine>(hier, w, seed, /*dead=*/0, false, replicas);
    EXPECT_EQ(h.results, f.results);
    EXPECT_FALSE(h.report.degraded);
    expect_reports_equal(h.report, f.report);
    testing::expect_matches_oracle<float>(w, h.results);
  }

  // 3. c > 1, a non-leader member dead from the start: compile-time
  // exclusion — the hierarchical run is exact over survivors and agrees
  // with the flat run everywhere the flat report promises exactness.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    SCOPED_TRACE("death seed " + std::to_string(seed));
    const auto w = random_workload<float>(m, 96, 0.25, 0.4, 6000 + seed);
    const rank_t dead = 2 * (seed % hier.num_hosts()) + 1;
    ASSERT_FALSE(hier.is_leader(dead));
    const auto f = chaotic_run<Engine>(flat, w, seed, dead, true, replicas);
    const auto h = chaotic_run<Engine>(hier, w, seed, dead, true, replicas);

    expect_exact_over_survivors(w, h.results, {dead});
    // The hierarchical report is never *more* degraded than the flat one.
    EXPECT_LE(h.report.degraded_ranges.size(),
              f.report.degraded_ranges.size());
    EXPECT_LE(h.report.lost_keys.size(), f.report.lost_keys.size());
    ASSERT_EQ(h.results.size(), f.results.size());
    for (rank_t r = 0; r < m; ++r) {
      if (r == dead) {
        EXPECT_TRUE(f.results[r].empty());
        EXPECT_TRUE(h.results[r].empty());
        continue;
      }
      ASSERT_EQ(h.results[r].size(), f.results[r].size());
      // Agreement wherever the flat run *promises* exact values. Only the
      // replicated engine tracks deaths into its report; the plain engines
      // report blind (non-degraded), promising nothing about the keys the
      // flat butterfly silently lost through its dead node.
      if (!f.report.degraded) continue;
      for (std::size_t p = 0; p < w.in_sets[r].size(); ++p) {
        const key_t key = w.in_sets[r][p];
        if (f.report.covers(key) ||
            std::binary_search(f.report.lost_keys.begin(),
                               f.report.lost_keys.end(), key)) {
          continue;
        }
        EXPECT_EQ(h.results[r][p], f.results[r][p])
            << "machine " << r << " position " << p;
      }
    }
  }
}

TEST(HierarchyChaos, BspMatchesFlatUnderChaos) {
  sweep<BspEngine<float>>(1);
}

TEST(HierarchyChaos, ParallelBspMatchesFlatUnderChaos) {
  sweep<ParallelBspEngine<float>>(1);
}

TEST(HierarchyChaos, ThreadedBspMatchesFlatUnderChaos) {
  sweep<ThreadedBsp<float>>(1);
}

TEST(HierarchyChaos, ReplicatedBspMatchesFlatUnderChaos) {
  sweep<ReplicatedBsp<float>>(2);
}

}  // namespace
}  // namespace kylix
