# Empty dependencies file for alpha_fit_test.
# This may be replaced when dependencies are built.
