// The nested heterogeneous-degree butterfly topology (§III, Fig. 3).
//
// m = d_1 · d_2 · … · d_l machines are laid out on a mixed-radix grid. At
// communication layer i the group of a node is the set of d_i nodes whose
// coordinates agree everywhere except digit i-1; allreduce is performed
// within each group by direct exchange (a generalized butterfly). Nesting
// falls out of the coordinate system: the key range a node is responsible
// for narrows at each layer to the subrange indexed by its digit, so the
// upward allgather retraces the downward partition exactly.
//
// Degrees need not be equal ("heterogeneous"): the degenerate schedules
// {m} and {2,2,…,2} recover the paper's direct-allreduce and binary-
// butterfly baselines, which is how src/baselines builds them.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sparse/key_set.hpp"

namespace kylix {

class Topology {
 public:
  /// `degrees` are the per-layer butterfly degrees, top (layer 1) first;
  /// every degree must be >= 1. A single machine is degrees == {}.
  explicit Topology(std::vector<std::uint32_t> degrees);

  /// Convenience: the 1-layer degree-m direct topology.
  static Topology direct(rank_t num_machines);

  /// The all-binary butterfly over 2^k machines.
  static Topology binary(rank_t num_machines);

  [[nodiscard]] rank_t num_machines() const { return num_machines_; }
  [[nodiscard]] std::uint16_t num_layers() const {
    return static_cast<std::uint16_t>(degrees_.size());
  }
  [[nodiscard]] std::span<const std::uint32_t> degrees() const {
    return degrees_;
  }
  [[nodiscard]] std::uint32_t degree(std::uint16_t layer) const;

  /// Digit of `rank` at layer `layer` (its position within its group).
  [[nodiscard]] std::uint32_t digit(std::uint16_t layer, rank_t rank) const;

  /// The d_layer group members of `rank` at `layer`, in group-position
  /// order (the member at position q owns subrange q). Includes rank.
  [[nodiscard]] std::vector<rank_t> group(std::uint16_t layer,
                                          rank_t rank) const;

  /// The hashed-key range `rank` is responsible for at *node layer* i
  /// (after i communication layers); node_layer 0 is the full space.
  [[nodiscard]] KeyRange key_range(std::uint16_t node_layer,
                                   rank_t rank) const;

  /// "8 x 4 x 2" (or "1" for a single machine).
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::uint32_t> degrees_;
  std::vector<rank_t> strides_;  ///< strides_[i] = d_1·…·d_i, strides_[0]=1
  rank_t num_machines_ = 1;
};

}  // namespace kylix
