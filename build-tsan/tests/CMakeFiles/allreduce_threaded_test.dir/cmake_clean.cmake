file(REMOVE_RECURSE
  "CMakeFiles/allreduce_threaded_test.dir/core/allreduce_threaded_test.cpp.o"
  "CMakeFiles/allreduce_threaded_test.dir/core/allreduce_threaded_test.cpp.o.d"
  "allreduce_threaded_test"
  "allreduce_threaded_test.pdb"
  "allreduce_threaded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allreduce_threaded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
