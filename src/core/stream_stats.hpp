// Aggregate telemetry of one streamed (or letter-at-once) executor reduce.
//
// The executor accumulates one StreamStats per rank during the rounds and
// merges them in ascending rank order after the reduce, so the struct is
// deterministic across engines and runs. It is a plain value type with no
// obs dependency: core fills it in, and the obs/CLI/bench layers publish it
// into a MetricsRegistry (obs::publish_stream_stats) or JSON.
//
// Buffer envelopes: `peak_letter_buffer_bytes` is the largest inbox any
// rank held for a single consume — what letter-at-once delivery must buffer.
// `peak_stream_buffer_bytes` prices the streamed discipline instead: eager
// per-chunk combining frees each chunk after its scatter, so at most one
// chunk per in-edge is in flight and the envelope is O(chunk x in-degree).
//
// Overlap: block b of a round's key range flushes downstream after the last
// chunk touching it (position t_b in the deterministic (src, chunk) order)
// has combined. overlap_ratio() averages the normalized earliness
// (T-1-t_b)/(T-1) over all blocks — 0 means every block waited for the
// whole inbox (no overlap to exploit), 1 means everything flushed at the
// first chunk.
#pragma once

#include <algorithm>
#include <cstdint>

namespace kylix {

struct StreamStats {
  bool streamed = false;          ///< chunked replay (vs letter-at-once)
  std::uint64_t chunk_bytes = 0;  ///< effective chunk payload bytes (0: off)
  std::uint64_t letters = 0;      ///< logical letters (edges) carried
  std::uint64_t chunks = 0;       ///< chunk packets sent
  std::uint64_t blocks_flushed = 0;  ///< key-range blocks flushed downstream
  std::uint32_t max_chunks_per_letter = 1;
  std::uint64_t peak_letter_buffer_bytes = 0;
  std::uint64_t peak_stream_buffer_bytes = 0;
  double overlap_weight = 0.0;       ///< sum of per-block flush earliness
  std::uint64_t overlap_blocks = 0;  ///< blocks the weight averages over

  [[nodiscard]] double overlap_ratio() const {
    return overlap_blocks == 0
               ? 0.0
               : overlap_weight / static_cast<double>(overlap_blocks);
  }

  /// Fold another rank's round-local stats into this one (rank order is
  /// fixed by the caller, so merged sums are deterministic).
  void merge(const StreamStats& other) {
    letters += other.letters;
    chunks += other.chunks;
    blocks_flushed += other.blocks_flushed;
    max_chunks_per_letter =
        std::max(max_chunks_per_letter, other.max_chunks_per_letter);
    peak_letter_buffer_bytes =
        std::max(peak_letter_buffer_bytes, other.peak_letter_buffer_bytes);
    peak_stream_buffer_bytes =
        std::max(peak_stream_buffer_bytes, other.peak_stream_buffer_bytes);
    overlap_weight += other.overlap_weight;
    overlap_blocks += other.overlap_blocks;
  }
};

}  // namespace kylix
