// Bridging the §IV design workflow to a runnable Topology.
//
// "Measure the density of the input data … find the largest d such that
// P/d is at least [the minimum efficient packet size]": autotune() measures
// (or accepts) the workload density, derives the packet floor from the
// NetworkModel, runs choose_degrees(), and returns a Topology ready to hand
// to SparseAllreduce.
#pragma once

#include <span>
#include <vector>

#include "cluster/netmodel.hpp"
#include "core/topology.hpp"
#include "powerlaw/design.hpp"
#include "sparse/kernels/kernels.hpp"

namespace kylix {

// The kernel-selection thresholds live next to the kernels
// (sparse/kernels/kernels.hpp) but are part of the autotune surface: the
// same workflow that picks degrees owns how each layer's union runs.
using kernels::KernelTuning;
using kernels::UnionKernel;
using kernels::choose_union_kernel;
using kernels::kernel_tuning;
using kernels::set_kernel_tuning;

struct AutotuneInput {
  std::uint64_t num_features = 0;
  rank_t num_machines = 0;
  double alpha = 1.0;
  double partition_density = 0;  ///< mean density of one machine's out set
  NetworkModel network;          ///< supplies the packet-size floor
  double target_utilization = 0.84;  ///< the paper's ~5 MB point on Fig. 2
  double bytes_per_element = 12;     ///< 8-byte key + 4-byte value
};

/// Mean density over machines: |set| / n averaged over the sets.
[[nodiscard]] double measure_density(std::span<const KeySet> sets,
                                     std::uint64_t num_features);

/// Run the full workflow; the returned report carries per-layer expectations
/// for printing, and degrees with product == num_machines.
[[nodiscard]] DesignResult autotune(const AutotuneInput& input);

/// Shorthand: run autotune() and wrap the degrees in a Topology.
[[nodiscard]] Topology autotune_topology(const AutotuneInput& input);

/// Which union kernel each comm layer of `topology` will run during
/// configuration. `layer_elements` (optional, one entry per layer) is the
/// expected total piece elements a node unions at that layer — e.g. the
/// design report's P_i x D_i — and defaults to "large enough", leaving the
/// choice to the fan-in alone.
[[nodiscard]] std::vector<UnionKernel> union_kernel_plan(
    const Topology& topology, std::span<const double> layer_elements = {});

}  // namespace kylix
