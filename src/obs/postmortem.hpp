// Postmortem black-box dumps (DESIGN.md "Observability v2").
//
// When a run goes wrong — injected faults, degraded completion, a CHECK
// failure — the flight-recorder tail, a metrics snapshot, and the plan
// fingerprint are serialized to one JSON document (`kylix_postmortem`
// schema, versioned). `kylix_cli postmortem <file>` parses it back with a
// dependency-free recursive-descent parser and pretty-prints the merged
// multi-rank timeline, so "what happened just before it died" is one
// command away from any saved black box.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace kylix::obs {

struct PostmortemInputs {
  /// Why the box was dumped: "fault-injection", "degraded-completion",
  /// "check-failure", ... — free-form, surfaced verbatim by the renderer.
  std::string reason;
  /// One-line human detail (the CHECK message, the dead group, ...).
  std::string detail;
  const FlightRecorder* recorder = nullptr;  ///< may be null (no events)
  const MetricsRegistry* metrics = nullptr;  ///< may be null (no snapshot)
  std::uint64_t plan_fingerprint = 0;        ///< 0 when no plan was active
};

/// Serialize the black box as one JSON object (schema documented in
/// DESIGN.md). Events come out already merged in global sequence order.
void write_postmortem(std::ostream& out, const PostmortemInputs& inputs);

/// write_postmortem to `path`. Returns false (never throws) when the file
/// cannot be written — the postmortem path must not turn one failure into
/// two.
bool dump_postmortem(const std::string& path, const PostmortemInputs& inputs);

/// Parse a postmortem JSON document and render the merged timeline as
/// human-readable text. Throws check_error on malformed input or a schema
/// the renderer does not understand.
[[nodiscard]] std::string render_postmortem(const std::string& json_text);

}  // namespace kylix::obs
