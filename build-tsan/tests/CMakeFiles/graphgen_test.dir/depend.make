# Empty dependencies file for graphgen_test.
# This may be replaced when dependencies are built.
