// Distributed minibatch SGD (logistic regression) — the §I-A.1 workload.
//
// The model lives *in the allreduce*: every feature has a home machine
// (hash-based), which keeps the authoritative weight. Each step one combined
// configure+reduce call does all of the work, exercising the mode the paper
// recommends when in/out sets change every minibatch ("it is more efficient
// to do configuration and reduction concurrently with combined network
// messages", §III):
//
//   out set  = my home features (contributing their stored weights)
//            ∪ my previous minibatch's features (contributing -lr·gradient)
//   in set   = my home features ∪ my next minibatch's features
//
// The sum allreduce then delivers weight + Σ updates = the new weight for
// every requested feature: home machines refresh their store from it, and
// the minibatch features arrive ready for the next gradient computation.
// (Each machine trains on the batch whose weights it fetched in the
// previous step — the usual one-step staleness of distributed SGD.)
//
// Training data is synthetic: power-law distributed feature sets with labels
// from a planted logistic model, so convergence is measurable.
//
// Two reduction modes: the default combined configure+reduce above, and
// `reuse_plans`, which fingerprints each step's {in, out} sets against a
// PlanCache — a hit adopts the compiled CollectivePlan (no configuration
// pass), a miss compiles and inserts. Fresh batches every step never repeat
// a fingerprint, so `distinct_batches = B` cycles B pre-drawn batches per
// machine to make the set sequence periodic and the cache actually hit.
#pragma once

#include <cmath>
#include <vector>

#include "cluster/timing.hpp"
#include "core/allreduce.hpp"
#include "core/plan_cache.hpp"
#include "powerlaw/zipf.hpp"
#include "sparse/ops.hpp"

namespace kylix {

template <typename Engine>
class DistributedSgd {
 public:
  struct Options {
    std::uint64_t num_features = 1 << 16;
    std::uint32_t samples_per_batch = 256;
    std::uint32_t features_per_sample = 16;
    double alpha = 1.1;           ///< feature popularity exponent
    double learning_rate = 0.25;
    std::uint32_t steps = 20;
    std::uint64_t seed = 7;
    /// Replay-mode switch: plan-cache lookup + reduce() instead of the
    /// combined configure+reduce. Defaults off (the paper's minibatch mode).
    bool reuse_plans = false;
    /// 0 = draw a fresh batch every step (fingerprints never repeat);
    /// B > 0 = cycle B pre-drawn batches per machine, so step t trains on
    /// batch t mod B and plan fingerprints repeat with period B.
    std::uint32_t distinct_batches = 0;
    std::size_t plan_cache_capacity = 16;
  };

  struct StepStats {
    double loss = 0;    ///< mean logistic loss over the machines' batches
    double comm_s = 0;  ///< modeled combined configure+reduce time
    bool plan_cache_hit = false;  ///< reuse_plans only: served from cache?
  };

  DistributedSgd(Engine* engine, Topology topology,
                 const Options& options,
                 const ComputeModel* compute = nullptr,
                 TimingAccumulator* timing = nullptr)
      : engine_(engine),
        topology_(std::move(topology)),
        options_(options),
        compute_(compute),
        timing_(timing),
        sampler_(options.num_features, options.alpha),
        rng_(options.seed) {
    const rank_t m = topology_.num_machines();
    // Planted ground-truth model: head features carry most of the signal.
    Rng truth_rng = rng_.fork(0xdead);
    truth_.resize(options_.num_features);
    for (auto& w : truth_) {
      w = static_cast<real_t>(2.0 * truth_rng.uniform() - 1.0);
    }
    // Home feature sets and stores: feature f lives on hash(f) % m.
    home_sets_.resize(m);
    home_store_.resize(m);
    {
      std::vector<std::vector<key_t>> home_keys(m);
      for (index_t f = 0; f < options_.num_features; ++f) {
        const key_t k = hash_index(f);
        home_keys[k % m].push_back(k);
      }
      for (rank_t r = 0; r < m; ++r) {
        home_sets_[r] = KeySet::from_keys(std::move(home_keys[r]));
        home_store_[r].assign(home_sets_[r].size(), 0.0f);
      }
    }
    machine_rngs_.reserve(m);
    for (rank_t r = 0; r < m; ++r) {
      machine_rngs_.push_back(rng_.fork(r + 1));
    }
    if (options_.distinct_batches > 0) {
      batch_pool_.resize(m);
      for (rank_t r = 0; r < m; ++r) {
        batch_pool_[r].reserve(options_.distinct_batches);
        for (std::uint32_t b = 0; b < options_.distinct_batches; ++b) {
          batch_pool_[r].push_back(draw_batch(r));
        }
      }
    }
    // Bootstrap: every machine fetches weights for its first batch.
    batches_.resize(m);
    batch_weights_.resize(m);
    for (rank_t r = 0; r < m; ++r) {
      batches_[r] = next_batch(r, 0);
      batch_weights_[r].assign(batches_[r].features.size(), 0.0f);
    }
  }

  /// Run options.steps SGD steps; one allreduce per step (combined mode by
  /// default, plan-cache replay when reuse_plans is set).
  [[nodiscard]] std::vector<StepStats> run() {
    std::vector<StepStats> stats;
    const rank_t m = topology_.num_machines();
    // Replay mode keeps one allreduce (and its executor buffers) warm
    // across steps; the cache key is the fingerprint of each step's sets.
    SparseAllreduce<real_t, OpSum, Engine> cached_ar(engine_, topology_,
                                                     compute_);
    PlanCache plan_cache(options_.plan_cache_capacity);
    for (std::uint32_t step = 0; step < options_.steps; ++step) {
      if (timing_ != nullptr) timing_->clear();
      StepStats s;

      // Local gradients on the current batches.
      std::vector<SparseVector<real_t>> updates(m);
      for (rank_t r = 0; r < m; ++r) {
        double loss = 0;
        updates[r] = gradient_update(r, &loss);
        s.loss += loss;
      }
      s.loss /= m;

      // Next batches (their features form the in sets).
      std::vector<Batch> next(m);
      for (rank_t r = 0; r < m; ++r) next[r] = next_batch(r, step + 1);

      // Combined configure+reduce.
      std::vector<KeySet> in_sets(m);
      std::vector<KeySet> out_sets(m);
      std::vector<std::vector<real_t>> out_values(m);
      std::vector<PosMap> home_in_map(m);   // home positions in the in set
      std::vector<PosMap> batch_in_map(m);  // batch positions in the in set
      for (rank_t r = 0; r < m; ++r) {
        UnionResult out_u =
            merge_union(home_sets_[r].keys(), updates[r].keys.keys());
        out_values[r].assign(out_u.keys.size(), 0.0f);
        scatter_combine<real_t, OpSum>(std::span<real_t>(out_values[r]),
                                       std::span<const real_t>(home_store_[r]),
                                       out_u.maps[0]);
        scatter_combine<real_t, OpSum>(
            std::span<real_t>(out_values[r]),
            std::span<const real_t>(updates[r].values), out_u.maps[1]);
        out_sets[r] = KeySet::from_sorted_keys(std::move(out_u.keys));

        UnionResult in_u =
            merge_union(home_sets_[r].keys(), next[r].features.keys());
        home_in_map[r] = std::move(in_u.maps[0]);
        batch_in_map[r] = std::move(in_u.maps[1]);
        in_sets[r] = KeySet::from_sorted_keys(std::move(in_u.keys));
      }

      std::vector<std::vector<real_t>> fresh;
      if (options_.reuse_plans) {
        s.plan_cache_hit = cached_ar.configure_cached(
            plan_cache, std::move(in_sets), std::move(out_sets));
        fresh = cached_ar.reduce(std::move(out_values));
      } else {
        SparseAllreduce<real_t, OpSum, Engine> allreduce(engine_, topology_,
                                                         compute_);
        fresh = allreduce.reduce_with_config(
            std::move(in_sets), std::move(out_sets), std::move(out_values));
      }

      // Refresh home stores and stage the next batches' weights.
      for (rank_t r = 0; r < m; ++r) {
        for (std::size_t p = 0; p < home_store_[r].size(); ++p) {
          home_store_[r][p] = fresh[r][home_in_map[r][p]];
        }
        batch_weights_[r] = gather(std::span<const real_t>(fresh[r]),
                                   batch_in_map[r]);
        batches_[r] = std::move(next[r]);
      }

      if (timing_ != nullptr) s.comm_s = timing_->times().total();
      stats.push_back(s);
    }
    return stats;
  }

  /// The authoritative weight of feature f, read from its home machine's
  /// store (test/diagnostic convenience, not a distributed operation).
  [[nodiscard]] real_t weight(index_t f) const {
    const key_t k = hash_index(f);
    const rank_t home = static_cast<rank_t>(k % home_sets_.size());
    const std::size_t pos = home_sets_[home].find(k);
    KYLIX_CHECK(pos != KeySet::npos);
    return home_store_[home][pos];
  }

 private:
  struct Sample {
    std::vector<pos_t> feature_pos;  ///< positions within the batch set
    real_t label = 0;
  };
  struct Batch {
    KeySet features;
    std::vector<Sample> samples;
  };

  /// Machine r's batch for training slot `slot`: a fresh draw by default,
  /// or a copy from the machine's fixed pool when distinct_batches > 0.
  [[nodiscard]] Batch next_batch(rank_t r, std::uint64_t slot) {
    if (options_.distinct_batches == 0) return draw_batch(r);
    return batch_pool_[r][slot % options_.distinct_batches];
  }

  /// Draw a minibatch: Zipf feature sets, labels from the planted model.
  [[nodiscard]] Batch draw_batch(rank_t r) {
    Rng& rng = machine_rngs_[r];
    Batch batch;
    std::vector<std::vector<index_t>> raw(options_.samples_per_batch);
    std::vector<index_t> all;
    for (auto& features : raw) {
      for (std::uint32_t k = 0; k < options_.features_per_sample; ++k) {
        features.push_back(sampler_(rng) - 1);
      }
      all.insert(all.end(), features.begin(), features.end());
    }
    batch.features = KeySet::from_indices(all);
    batch.samples.resize(raw.size());
    for (std::size_t i = 0; i < raw.size(); ++i) {
      Sample& sample = batch.samples[i];
      double margin = 0;
      for (index_t f : raw[i]) {
        const std::size_t pos = batch.features.find(hash_index(f));
        KYLIX_DCHECK(pos != KeySet::npos);
        sample.feature_pos.push_back(static_cast<pos_t>(pos));
        margin += truth_[f];
      }
      const double p = 1.0 / (1.0 + std::exp(-margin));
      sample.label = rng.uniform() < p ? 1.0f : 0.0f;
    }
    return batch;
  }

  /// -lr · ∂loss/∂w on machine r's current batch, as a sparse vector over
  /// the batch's features; also reports the mean loss.
  [[nodiscard]] SparseVector<real_t> gradient_update(rank_t r, double* loss) {
    const Batch& batch = batches_[r];
    const std::vector<real_t>& w = batch_weights_[r];
    std::vector<real_t> grad(batch.features.size(), 0.0f);
    double total_loss = 0;
    for (const Sample& sample : batch.samples) {
      double margin = 0;
      for (pos_t p : sample.feature_pos) margin += w[p];
      const double pred = 1.0 / (1.0 + std::exp(-margin));
      const double y = sample.label;
      total_loss += -(y * std::log(pred + 1e-12) +
                      (1.0 - y) * std::log(1.0 - pred + 1e-12));
      const auto err = static_cast<real_t>(pred - y);
      for (pos_t p : sample.feature_pos) grad[p] += err;
    }
    *loss = total_loss / batch.samples.size();
    const auto scale = static_cast<real_t>(-options_.learning_rate /
                                           batch.samples.size());
    SparseVector<real_t> update;
    update.keys = batch.features;
    update.values.resize(grad.size());
    for (std::size_t p = 0; p < grad.size(); ++p) {
      update.values[p] = scale * grad[p];
    }
    return update;
  }

  Engine* engine_;
  Topology topology_;
  Options options_;
  const ComputeModel* compute_;
  TimingAccumulator* timing_;
  ZipfSampler sampler_;
  Rng rng_;

  std::vector<real_t> truth_;
  std::vector<KeySet> home_sets_;
  std::vector<std::vector<real_t>> home_store_;
  std::vector<Rng> machine_rngs_;
  std::vector<std::vector<Batch>> batch_pool_;  ///< distinct_batches > 0 only
  std::vector<Batch> batches_;
  std::vector<std::vector<real_t>> batch_weights_;
};

}  // namespace kylix
