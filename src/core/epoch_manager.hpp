// EpochedPlanManager — self-healing re-planning on membership change.
//
// Couples a SparseAllreduce to a MembershipView: the caller runs reduces as
// usual and calls heal() at round barriers (between reduces — the only
// points where no letters are in flight). When the membership epoch has
// advanced (a rank was confirmed dead, or a dead rank rejoined), the
// manager re-plans:
//
//   1. capture the *measured* per-layer densities of the outgoing epoch
//      (measured_layer_elements, already restricted to survivors) and feed
//      them to the next compile as union-kernel sizing hints — the healed
//      plan is tuned from observed volumes, not the Poisson prior;
//   2. reset the engine's epoch-scoped degraded bookkeeping (begin_epoch,
//      when the engine has it) so post-heal DegradedReports describe only
//      rounds run on the new plan;
//   3. recompile the same key sets under the new alive set. Dead ranks
//      simply never answer configuration, so the compiler's split machinery
//      redistributes their key ranges across survivors and surviving nodes
//      resolve orphaned keys to identity. The plan fingerprint is salted
//      with the dead set (SparseAllreduce::salt_fingerprint), so per-epoch
//      plans coexist in the PlanCache and a full-membership rejoin hits the
//      original epoch-0 entry;
//   4. atomically swap: the allreduce is left configured against the new
//      plan, and an attached AsyncExecutor is drained (in-flight old-epoch
//      streams complete against the old plan, which its shared_ptr keeps
//      alive even if the cache evicted it), rebound, and stamped with the
//      new epoch for subsequent admissions.
//
// The epoch timeline (one entry per re-plan, with wall re-plan cost and a
// cache-hit flag) powers `kylix_cli heal` and the bench healing gate.
#pragma once

#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "cluster/membership.hpp"
#include "core/allreduce.hpp"
#include "core/async_executor.hpp"
#include "core/plan_cache.hpp"
#include "obs/metrics.hpp"

namespace kylix {

template <typename V, typename Op, typename Engine>
class EpochedPlanManager {
 public:
  struct Options {
    /// Optional, not owned: healed plans are inserted/served here (and the
    /// fingerprint salt keeps epochs from colliding).
    PlanCache* cache = nullptr;
    /// Optional, not owned: drained + rebound + epoch-stamped on each heal.
    /// Take pending results before heal() — rebinding rebases the stream
    /// table, so untaken old-epoch results are dropped.
    AsyncExecutor<V, Op>* async = nullptr;
    typename AsyncExecutor<V, Op>::Options async_options{};
    obs::MetricsRegistry* metrics = nullptr;
  };

  /// One row of the healing timeline; row 0 is the initial configure.
  struct EpochEntry {
    std::uint64_t epoch = 0;
    double replan_s = 0;        ///< wall seconds spent re-planning
    std::size_t alive = 0;      ///< members alive when the plan was cut
    std::vector<rank_t> dead;   ///< confirmed-dead members at this epoch
    bool cache_hit = false;     ///< plan served from the PlanCache
    std::uint64_t fingerprint = 0;
  };

  /// All pointers not owned and must outlive the manager.
  EpochedPlanManager(SparseAllreduce<V, Op, Engine>* allreduce,
                     MembershipView* view, Options options = {})
      : allreduce_(allreduce), view_(view), opts_(options) {
    KYLIX_CHECK(allreduce_ != nullptr && view_ != nullptr);
    KYLIX_CHECK_MSG(
        view_->num_members() == allreduce_->topology().num_machines(),
        "membership view / topology machine count mismatch");
  }

  /// Epoch-anchor configure: stores the key sets for later re-plans, then
  /// compiles (via the cache when one is attached) and binds the async
  /// executor when one is attached.
  void configure(std::vector<KeySet> in_sets, std::vector<KeySet> out_sets) {
    in_sets_ = std::move(in_sets);
    out_sets_ = std::move(out_sets);
    last_epoch_ = view_->epoch();
    timeline_.clear();
    timeline_.push_back(cut_plan());
  }

  /// Re-plan iff the membership epoch advanced by `now_s` (view time).
  /// Call at round barriers only. Returns true iff a new plan was cut.
  bool heal(double now_s) {
    view_->poll(now_s);
    return maybe_replan();
  }

  /// Like heal(), but first advances the view past every pending probe
  /// deadline — for drivers without a heartbeat clock of their own.
  bool heal_settled(double now_s) {
    view_->poll_settled(now_s);
    return maybe_replan();
  }

  /// Attach the engine driving the allreduce so epoch-scoped degraded
  /// bookkeeping (ReplicatedBsp::begin_epoch) resets on heal. Optional;
  /// engines without per-epoch state need nothing.
  void set_engine(Engine* engine) { engine_ = engine; }

  [[nodiscard]] std::uint64_t epoch() const { return last_epoch_; }
  [[nodiscard]] const std::vector<EpochEntry>& timeline() const {
    return timeline_;
  }
  /// Wall cost of the initial full-membership configure — the healing
  /// gate's baseline (re-plan ≤ 1.5× this).
  [[nodiscard]] double cold_configure_seconds() const {
    KYLIX_CHECK(!timeline_.empty());
    return timeline_.front().replan_s;
  }

 private:
  bool maybe_replan() {
    if (view_->epoch() == last_epoch_) return false;
    KYLIX_CHECK_MSG(!in_sets_.empty(), "heal() before configure()");
    last_epoch_ = view_->epoch();
    // Carry the outgoing epoch's measured survivor densities into the new
    // plan's union-kernel sizing.
    allreduce_->set_layer_density_hints(allreduce_->measured_layer_elements());
    if constexpr (requires(Engine& e) { e.begin_epoch(); }) {
      if (engine_ != nullptr) engine_->begin_epoch();
    }
    timeline_.push_back(cut_plan());
    // A cache hit adopts without compiling; drop the one-shot hints so they
    // can't leak into an unrelated later compile.
    allreduce_->set_layer_density_hints({});
    if (opts_.metrics != nullptr) {
      opts_.metrics->counter("membership.replans").add(1);
      opts_.metrics->gauge("membership.replan_seconds")
          .set(timeline_.back().replan_s);
    }
    return true;
  }

  /// Compile/adopt a plan for the current alive set and time it.
  [[nodiscard]] EpochEntry cut_plan() {
    const auto t0 = std::chrono::steady_clock::now();
    bool hit = false;
    if (opts_.cache != nullptr) {
      hit = allreduce_->configure_cached(*opts_.cache, in_sets_, out_sets_);
    } else {
      allreduce_->configure(in_sets_, out_sets_);
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (opts_.async != nullptr) {
      opts_.async->drain();  // old-epoch streams finish on the old plan
      opts_.async->bind(allreduce_->plan(), opts_.async_options);
      opts_.async->set_epoch(view_->epoch());
    }
    EpochEntry entry;
    entry.epoch = view_->epoch();
    entry.replan_s = std::chrono::duration<double>(t1 - t0).count();
    entry.dead = view_->dead_members();
    entry.alive = view_->num_members() - entry.dead.size();
    entry.cache_hit = hit;
    entry.fingerprint =
        allreduce_->plan() != nullptr ? allreduce_->plan()->fingerprint() : 0;
    return entry;
  }

  SparseAllreduce<V, Op, Engine>* allreduce_;
  MembershipView* view_;
  Engine* engine_ = nullptr;
  Options opts_;
  std::vector<KeySet> in_sets_;
  std::vector<KeySet> out_sets_;
  std::vector<EpochEntry> timeline_;
  std::uint64_t last_epoch_ = 0;
};

}  // namespace kylix
