#include "sparse/csr.hpp"

#include <algorithm>

namespace kylix {

LocalGraph::LocalGraph(std::span<const Edge> edges) {
  std::vector<index_t> srcs;
  std::vector<index_t> dsts;
  srcs.reserve(edges.size());
  dsts.reserve(edges.size());
  for (const Edge& e : edges) {
    srcs.push_back(e.src);
    dsts.push_back(e.dst);
  }
  sources_ = KeySet::from_indices(srcs);
  destinations_ = KeySet::from_indices(dsts);

  // Count edges per local destination, then fill CSR by a second pass.
  row_ptr_.assign(destinations_.size() + 1, 0);
  std::vector<std::pair<pos_t, pos_t>> local_edges;  // (dst_pos, src_pos)
  local_edges.reserve(edges.size());
  for (const Edge& e : edges) {
    const std::size_t d = destinations_.find(hash_index(e.dst));
    const std::size_t s = sources_.find(hash_index(e.src));
    KYLIX_DCHECK(d != KeySet::npos && s != KeySet::npos);
    local_edges.emplace_back(static_cast<pos_t>(d), static_cast<pos_t>(s));
    ++row_ptr_[d + 1];
  }
  for (std::size_t d = 0; d < destinations_.size(); ++d) {
    row_ptr_[d + 1] += row_ptr_[d];
  }
  cols_.resize(edges.size());
  std::vector<std::size_t> cursor(row_ptr_.begin(), row_ptr_.end() - 1);
  for (const auto& [d, s] : local_edges) {
    cols_[cursor[d]++] = s;
  }
}

std::vector<float> LocalGraph::local_out_degrees() const {
  std::vector<float> degrees(sources_.size(), 0.0f);
  for (pos_t s : cols_) degrees[s] += 1.0f;
  return degrees;
}

}  // namespace kylix
