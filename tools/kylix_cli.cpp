// kylix_cli — self-contained command-line driver for the sparse allreduce.
//
// The paper emphasizes that Kylix "can be run self-contained using shell
// scripting (it does not require an underlying distributed middleware)".
// This tool is that entry point for the simulator: it synthesizes a
// power-law workload, picks (or accepts) a degree schedule, runs the
// allreduce — optionally replicated, with injected failures — verifies the
// result against a single-node reference, and prints volumes and modeled
// times.
//
// The `report` subcommand additionally attaches the telemetry subsystem
// (src/obs): it runs the same workload on the host-parallel engine with a
// span tracer and metrics registry wired in, prints the per-layer
// Kylix-shape chart with measured vs. modeled D_i / P_i, and can write a
// Chrome trace-event file (open in Perfetto / chrome://tracing) plus a
// machine-readable run-report JSON.
//
// Usage examples:
//   kylix_cli --machines 64 --features 262144 --density 0.21 --alpha 1.1
//   kylix_cli --machines 64 --degrees 8x4x2 --threads 4
//   kylix_cli --machines 32 --replication 2 --failures 3
//   kylix_cli report --machines 64 --trace-out trace.json
//   kylix_cli report --machines 64 --cores-per-machine 8 --report-out r.json
//   kylix_cli chaos --machines 32 --replication 2 --max-failures 12
//
// The `chaos` subcommand sweeps seeded fault schedules (random mid-run
// crashes plus transient drop/duplicate/delay rates) through the replicated
// engine and prints a survival/degradation table: at each failure count it
// reports how many runs completed exactly, how many completed degraded but
// sound (values outside the reported degraded ranges match the oracle), and
// how many violated the contract (the gate: any "bad" run exits nonzero).
//
// The `plan` subcommand demonstrates the compiled-plan workflow: it
// compiles a CollectivePlan once, prints the frozen message schedule and
// the wire-byte amortization of multi-payload replay, exercises the
// fingerprint-keyed PlanCache (miss, then hit), wall-clocks cached replay
// against per-iteration configure+reduce, and verifies that a strided
// reduce of k payloads is bit-identical to k independent reduces.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "kylix.hpp"

namespace {

using namespace kylix;

struct Cli {
  bool report = false;
  bool chaos = false;
  bool plan = false;
  bool heal = false;
  bool postmortem = false;
  std::string postmortem_file;  // postmortem mode: the JSON black box to read
  std::string postmortem_out;   // report/chaos: dump the black box here
  rank_t machines = 64;
  std::uint64_t features = 1u << 18;
  double density = 0.21;
  double alpha = 1.1;
  std::uint32_t threads = 16;
  std::uint32_t replication = 1;
  rank_t failures = 0;
  std::uint64_t seed = 42;
  std::vector<std::uint32_t> degrees;  // empty -> autotune
  std::string trace_out;               // report mode: Chrome trace JSON
  std::string report_out;              // report mode: run-report JSON
  // report mode: two-tier hierarchical topology (DESIGN §13).
  std::uint32_t cores = 1;  // >1: fold C co-located ranks per host
  // report mode: streaming packetized reduction (DESIGN §9).
  bool stream = false;
  std::uint64_t chunk_bytes = 0;  // 0 -> compiled from min_efficient_packet
  // report mode: async overlapped replay ablation (DESIGN §11).
  std::uint32_t inflight = 1;  // >1: overlap this many reduce streams
  // chaos mode: sweep shape and background fault rates.
  std::uint64_t chaos_seeds = 16;
  rank_t max_failures = 8;
  double drop_rate = 0.02;
  double dup_rate = 0.01;
  double delay_rate = 0.01;
  // plan mode: replay iterations and interleaved payload count.
  std::uint32_t plan_iters = 20;
  std::uint32_t payloads = 4;
  // heal mode: kill→heal→rejoin cycles over the epoched plan manager.
  std::uint32_t heal_cycles = 3;
  rank_t group_size = 1;      // logical ranks killed per cycle
  double round_dt = 1e-3;     // view-time seconds per reduce round
  std::string heal_out;       // healing summary JSON (bench gate input)
};

[[noreturn]] void usage_and_exit() {
  std::fprintf(
      stderr,
      "usage: kylix_cli [report|chaos|plan|heal|postmortem <file>] "
      "[options]\n"
      "  --machines M      logical machine count (default 64)\n"
      "  --features N      index-space size (default 262144)\n"
      "  --density D       target partition density (default 0.21)\n"
      "  --alpha A         power-law exponent (default 1.1)\n"
      "  --degrees DxDxD   degree schedule (default: autotune per SIV)\n"
      "  --threads T       message threads in the timing model (default 16)\n"
      "  --replication S   replication factor (default 1)\n"
      "  --failures K      dead physical nodes to inject (default 0)\n"
      "  --seed X          workload seed (default 42)\n"
      "report mode only:\n"
      "  --trace-out F     write Chrome trace-event JSON (Perfetto) to F\n"
      "  --report-out F    write the run-report JSON to F\n"
      "  --cores-per-machine C  two-tier topology (DESIGN 13): C co-located\n"
      "                    ranks per host reduce over shared memory behind\n"
      "                    a leader; --degrees (or the autotuner) shapes the\n"
      "                    inter-node butterfly over the M/C hosts\n"
      "  --stream          stream MTU-sized chunks through the reduce\n"
      "  --chunk-bytes B   streaming chunk payload bytes (default: compiled\n"
      "                    from the network model's min efficient packet)\n"
      "  --inflight K      overlap K reduce streams through the async\n"
      "                    executor and report aggregate reduces/sec plus\n"
      "                    per-stream p50/p99 latency vs serialized replay\n"
      "report and chaos modes:\n"
      "  --postmortem-out F  write the flight-recorder black box (merged\n"
      "                    event timeline + metrics snapshot) as JSON to F;\n"
      "                    in chaos mode, dumps the first degraded/bad run\n"
      "chaos mode only (seeded fault sweep, survival table):\n"
      "  --seeds S         schedules per failure count (default 16)\n"
      "  --max-failures K  sweep 0..K scripted crashes (default 8)\n"
      "  --drop-rate P     per-copy drop probability (default 0.02)\n"
      "  --dup-rate P      per-copy duplicate probability (default 0.01)\n"
      "  --delay-rate P    per-copy delay probability (default 0.01)\n"
      "plan mode only (compiled-plan workflow demo):\n"
      "  --iters N         replay iterations to wall-clock (default 20)\n"
      "  --payloads K      interleaved payloads per strided reduce "
      "(default 4)\n"
      "heal mode only (elastic membership, kill→heal→rejoin loop):\n"
      "  --cycles N        kill→heal→rejoin cycles to run (default 3)\n"
      "  --group-size S    logical ranks killed per cycle (default 1)\n"
      "  --round-dt S      view-time seconds per reduce round (default\n"
      "                    1e-3; the heartbeat detector's clock advances\n"
      "                    this much per degraded round)\n"
      "  --heal-out F      write the healing summary JSON (epoch timeline,\n"
      "                    re-plan vs cold-configure cost) to F\n"
      "postmortem mode: render a saved black box as a readable timeline\n");
  std::exit(2);
}

std::vector<std::uint32_t> parse_degrees(const std::string& text) {
  std::vector<std::uint32_t> degrees;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t next = text.find('x', pos);
    if (next == std::string::npos) next = text.size();
    degrees.push_back(
        static_cast<std::uint32_t>(std::stoul(text.substr(pos, next - pos))));
    pos = next + 1;
  }
  return degrees;
}

Cli parse(int argc, char** argv) {
  Cli cli;
  int i = 1;
  if (i < argc && std::strcmp(argv[i], "report") == 0) {
    cli.report = true;
    ++i;
  } else if (i < argc && std::strcmp(argv[i], "chaos") == 0) {
    cli.chaos = true;
    ++i;
  } else if (i < argc && std::strcmp(argv[i], "plan") == 0) {
    cli.plan = true;
    ++i;
  } else if (i < argc && std::strcmp(argv[i], "heal") == 0) {
    cli.heal = true;
    ++i;
  } else if (i < argc && std::strcmp(argv[i], "postmortem") == 0) {
    cli.postmortem = true;
    ++i;
    if (i >= argc) usage_and_exit();
    cli.postmortem_file = argv[i];
    ++i;
  }
  for (; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) usage_and_exit();
      return argv[++i];
    };
    if (flag == "--machines") {
      cli.machines = static_cast<rank_t>(std::stoul(value()));
    } else if (flag == "--features") {
      cli.features = std::stoull(value());
    } else if (flag == "--density") {
      cli.density = std::stod(value());
    } else if (flag == "--alpha") {
      cli.alpha = std::stod(value());
    } else if (flag == "--degrees") {
      cli.degrees = parse_degrees(value());
    } else if (flag == "--threads") {
      cli.threads = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--replication") {
      cli.replication = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--failures") {
      cli.failures = static_cast<rank_t>(std::stoul(value()));
    } else if (flag == "--seed") {
      cli.seed = std::stoull(value());
    } else if (flag == "--trace-out" && cli.report) {
      cli.trace_out = value();
    } else if (flag == "--report-out" && cli.report) {
      cli.report_out = value();
    } else if (flag == "--cores-per-machine" && cli.report) {
      cli.cores = static_cast<std::uint32_t>(std::stoul(value()));
      if (cli.cores < 1) usage_and_exit();
    } else if (flag == "--stream" && cli.report) {
      cli.stream = true;
    } else if (flag == "--chunk-bytes" && cli.report) {
      cli.chunk_bytes = std::stoull(value());
    } else if (flag == "--inflight" && cli.report) {
      cli.inflight = static_cast<std::uint32_t>(std::stoul(value()));
      if (cli.inflight < 1) usage_and_exit();
    } else if (flag == "--seeds" && cli.chaos) {
      cli.chaos_seeds = std::stoull(value());
    } else if (flag == "--max-failures" && cli.chaos) {
      cli.max_failures = static_cast<rank_t>(std::stoul(value()));
    } else if (flag == "--drop-rate" && cli.chaos) {
      cli.drop_rate = std::stod(value());
    } else if (flag == "--dup-rate" && cli.chaos) {
      cli.dup_rate = std::stod(value());
    } else if (flag == "--delay-rate" && cli.chaos) {
      cli.delay_rate = std::stod(value());
    } else if (flag == "--postmortem-out" && (cli.report || cli.chaos)) {
      cli.postmortem_out = value();
    } else if (flag == "--iters" && cli.plan) {
      cli.plan_iters = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--payloads" && cli.plan) {
      cli.payloads = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--cycles" && cli.heal) {
      cli.heal_cycles = static_cast<std::uint32_t>(std::stoul(value()));
    } else if (flag == "--group-size" && cli.heal) {
      cli.group_size = static_cast<rank_t>(std::stoul(value()));
    } else if (flag == "--round-dt" && cli.heal) {
      cli.round_dt = std::stod(value());
    } else if (flag == "--heal-out" && cli.heal) {
      cli.heal_out = value();
    } else {
      usage_and_exit();
    }
  }
  return cli;
}

/// Synthesize the workload straight from the SIV Poisson model: machine r's
/// out set is a Zipf sample of the expected size, its in set likewise.
struct Workload {
  std::vector<KeySet> in_sets;
  std::vector<KeySet> out_sets;
  std::vector<std::vector<real_t>> values;
  double measured_density = 0;
};

Workload synthesize(const Cli& cli) {
  const PowerLawModel model(cli.features, cli.alpha);
  const double lambda0 = model.lambda_for_density(cli.density);
  const auto draws =
      static_cast<std::uint64_t>(lambda0 * model.harmonic());
  const ZipfSampler zipf(cli.features, cli.alpha);
  Rng rng(cli.seed);

  Workload w;
  const auto draw_set = [&](Rng& machine_rng) {
    std::vector<index_t> ids;
    ids.reserve(draws);
    for (std::uint64_t d = 0; d < draws; ++d) {
      ids.push_back(zipf(machine_rng) - 1);
    }
    return KeySet::from_indices(ids);
  };
  for (rank_t r = 0; r < cli.machines; ++r) {
    Rng machine_rng = rng.fork(r);
    KeySet out = draw_set(machine_rng);
    // Requests are drawn from each machine's own contributions plus the
    // shared head, so coverage (∪in ⊆ ∪out) holds by construction.
    w.in_sets.push_back(out);
    std::vector<real_t> values(out.size());
    for (std::size_t p = 0; p < values.size(); ++p) {
      values[p] = static_cast<real_t>(machine_rng.below(16));
    }
    w.out_sets.push_back(std::move(out));
    w.values.push_back(std::move(values));
    w.measured_density += static_cast<double>(w.out_sets.back().size());
  }
  w.measured_density /=
      static_cast<double>(cli.machines) * static_cast<double>(cli.features);
  return w;
}

NetworkModel scaled_network() {
  NetworkModel net = NetworkModel::ec2_like();
  net.stack_overhead_s = 3.2e-5;  // scaled testbed (see bench_common.hpp)
  net.handshake_latency_s = 0.8e-5;
  net.base_latency_s = 5e-5;
  return net;
}

Topology pick_topology(const Cli& cli, const Workload& w,
                       const NetworkModel& net, bool verbose) {
  // With --cores-per-machine C the degrees (explicit or autotuned) shape
  // the inter-node butterfly over the M/C hosts; C co-located ranks per
  // host fold over shared memory behind their canonical leader.
  KYLIX_CHECK_MSG(cli.cores >= 1 && cli.machines % cli.cores == 0,
                  "--cores-per-machine must divide --machines");
  const rank_t hosts = cli.machines / cli.cores;
  if (!cli.degrees.empty()) {
    Topology topo(cli.degrees, cli.cores);
    KYLIX_CHECK_MSG(topo.num_machines() == cli.machines,
                    "--degrees product times --cores-per-machine must "
                    "equal --machines");
    if (verbose) std::printf("degrees: %s\n", topo.to_string().c_str());
    return topo;
  }
  AutotuneInput input;
  input.num_features = cli.features;
  input.num_machines = hosts;
  input.alpha = cli.alpha;
  input.partition_density = w.measured_density;
  if (cli.cores > 1) {
    // The inter-node butterfly exchanges host unions, so the autotuner
    // must see the density after the c-way shared-memory merge (Prop 4.1
    // at fan-in c), not the per-rank partition density.
    const PowerLawModel model(cli.features, cli.alpha);
    const double lambda0 = model.lambda_for_density(w.measured_density);
    const std::vector<std::uint32_t> intra{cli.cores};
    input.partition_density = model.layer_stats(lambda0, intra)[1].density;
  }
  input.network = net;
  input.target_utilization = 0.5;
  const DesignResult design = autotune(input);
  Topology topo(design.degrees, cli.cores);
  if (verbose) {
    std::printf("autotuned (SIV workflow):\n%s", design.to_string().c_str());
  } else {
    std::printf("degrees: %s (autotuned%s)\n", topo.to_string().c_str(),
                cli.cores > 1 ? " over hosts" : "");
  }
  return topo;
}

std::size_t verify(const Cli& cli, const Workload& w,
                   const std::vector<std::vector<real_t>>& results) {
  std::vector<SparseVector<real_t>> contributions;
  for (rank_t r = 0; r < cli.machines; ++r) {
    contributions.push_back(SparseVector<real_t>{w.out_sets[r], w.values[r]});
  }
  const ReferenceReduce<real_t> reference(contributions);
  std::size_t errors = 0;
  for (rank_t r = 0; r < cli.machines; ++r) {
    const std::vector<real_t> expected = reference.lookup(w.in_sets[r]);
    for (std::size_t p = 0; p < expected.size(); ++p) {
      if (expected[p] != results[r][p]) ++errors;
    }
  }
  return errors;
}

struct SoundCheck {
  std::size_t errors = 0;   ///< mismatches at keys the report vouches for
  std::size_t checked = 0;  ///< reliable positions actually compared
};

/// Degraded-completion verification: the brute-force oracle minus
/// `inputs_lost` ranks, checked only at keys the report does not disclaim
/// (outside degraded_ranges ∪ lost_keys), skipping dead requesters. Keys
/// absent from the pruned oracle expect the reduction identity.
/// `dead_ranks` is the engine's post-run dead set — a superset of
/// report.lost_logical, since a group that dies after its last send is
/// never missed by anyone yet still returns no result.
SoundCheck verify_degraded(const Cli& cli, const Workload& w,
                           const std::vector<std::vector<real_t>>& results,
                           const DegradedReport& report,
                           const std::vector<rank_t>& dead_ranks) {
  const auto contains = [](const std::vector<rank_t>& v, rank_t r) {
    return std::find(v.begin(), v.end(), r) != v.end();
  };
  std::map<kylix::key_t, real_t> totals;  // ::key_t (sys/types.h) clashes
  for (rank_t r = 0; r < cli.machines; ++r) {
    if (contains(report.inputs_lost, r)) continue;
    for (std::size_t p = 0; p < w.out_sets[r].size(); ++p) {
      totals[w.out_sets[r][p]] += w.values[r][p];
    }
  }
  SoundCheck check;
  for (rank_t r = 0; r < cli.machines; ++r) {
    if (contains(dead_ranks, r)) {
      if (!results[r].empty()) ++check.errors;  // dead ranks return nothing
      continue;
    }
    if (results[r].size() != w.in_sets[r].size()) {
      ++check.errors;
      continue;
    }
    for (std::size_t p = 0; p < w.in_sets[r].size(); ++p) {
      const kylix::key_t key = w.in_sets[r][p];
      if (report.covers(key) ||
          std::binary_search(report.lost_keys.begin(),
                             report.lost_keys.end(), key)) {
        continue;  // declared unreliable; nothing is promised here
      }
      const auto it = totals.find(key);
      const real_t expected =
          it == totals.end() ? static_cast<real_t>(0) : it->second;
      if (results[r][p] != expected) {
        ++check.errors;
        if (std::getenv("KYLIX_CHAOS_DEBUG") != nullptr) {
          std::printf("    mismatch: rank %u pos %zu key %llu idx %llu "
                      "got %g want %g\n",
                      r, p, static_cast<unsigned long long>(key),
                      static_cast<unsigned long long>(unhash_index(key)),
                      static_cast<double>(results[r][p]),
                      static_cast<double>(expected));
        }
      }
      ++check.checked;
    }
  }
  return check;
}

/// Arms a crash dump for the lifetime of a run: if the scope unwinds with
/// an exception in flight (a CHECK failure mid-run), the destructor writes
/// the black box before the recorder dies with the stack frame — the one
/// moment the flight recorder earns its name.
class BlackBoxGuard {
 public:
  BlackBoxGuard(std::string path, obs::FlightRecorder* recorder,
                const obs::MetricsRegistry* metrics, std::uint64_t fingerprint)
      : path_(std::move(path)),
        recorder_(recorder),
        metrics_(metrics),
        fingerprint_(fingerprint) {}
  BlackBoxGuard(const BlackBoxGuard&) = delete;
  BlackBoxGuard& operator=(const BlackBoxGuard&) = delete;
  ~BlackBoxGuard() {
    if (path_.empty() || std::uncaught_exceptions() == 0) return;
    obs::FlightEvent e;
    e.kind = obs::FlightEventKind::kCheckFail;
    recorder_->record(e);
    obs::PostmortemInputs pm;
    pm.reason = "check-failure";
    pm.detail = "CHECK failed mid-run; see stderr";
    pm.recorder = recorder_;
    pm.metrics = metrics_;
    pm.plan_fingerprint = fingerprint_;
    if (obs::dump_postmortem(path_, pm)) {
      std::fprintf(stderr, "postmortem: %s\n", path_.c_str());
    }
  }

 private:
  std::string path_;
  obs::FlightRecorder* recorder_;
  const obs::MetricsRegistry* metrics_;
  std::uint64_t fingerprint_;
};

/// Render a saved black box (`--postmortem-out` JSON) as a readable merged
/// timeline.
int run_postmortem(const Cli& cli) {
  std::ifstream in(cli.postmortem_file);
  KYLIX_CHECK_MSG(in.good(), "cannot open postmortem file");
  std::ostringstream text;
  text << in.rdbuf();
  std::fputs(obs::render_postmortem(text.str()).c_str(), stdout);
  return 0;
}

int run_default(const Cli& cli) {
  const NetworkModel net = scaled_network();
  const ComputeModel compute;

  Workload w = synthesize(cli);
  std::printf("workload: n = %llu, m = %u, measured density %.4f, "
              "alpha %.2f\n",
              static_cast<unsigned long long>(cli.features), cli.machines,
              w.measured_density, cli.alpha);

  const Topology topo = pick_topology(cli, w, net, /*verbose=*/true);

  const rank_t physical = cli.machines * cli.replication;
  KYLIX_CHECK_MSG(cli.failures <= physical, "--failures exceeds nodes");
  const FailureModel failures =
      FailureModel::random_failures(physical, cli.failures, cli.seed + 1);
  Trace trace;
  TimingAccumulator timing(physical, net, compute, cli.threads);

  std::vector<std::vector<real_t>> results;
  DegradedReport degraded;
  std::vector<rank_t> dead_ranks;
  if (cli.replication == 1) {
    KYLIX_CHECK_MSG(cli.failures == 0,
                    "failures need --replication >= 2 to stay correct");
    BspEngine<real_t> engine(cli.machines, nullptr, &trace, &timing);
    SparseAllreduce<real_t, OpSum, BspEngine<real_t>> allreduce(
        &engine, topo, &compute);
    allreduce.configure(w.in_sets, w.out_sets);
    results = allreduce.reduce(w.values);
  } else {
    ReplicatedBsp<real_t> engine(cli.machines, cli.replication, &failures,
                                 &trace, &timing);
    if (engine.has_failed()) {
      // A whole replica group is dead (expected after ~sqrt(m) failures);
      // proceed anyway and report the degraded completion.
      std::printf("warning: a whole replica group is dead — completing "
                  "degraded over the surviving ranks\n");
    }
    SparseAllreduce<real_t, OpSum, ReplicatedBsp<real_t>> allreduce(
        &engine, topo, &compute);
    allreduce.configure(w.in_sets, w.out_sets);
    results = allreduce.reduce(w.values);
    degraded = allreduce.degraded_report();
    dead_ranks = engine.dead_logical_ranks();
  }

  std::size_t errors;
  std::size_t checked;
  if (degraded.degraded || !dead_ranks.empty()) {
    std::printf("%s\n", degraded.summary().c_str());
    const SoundCheck check =
        verify_degraded(cli, w, results, degraded, dead_ranks);
    errors = check.errors;
    checked = check.checked;
  } else {
    errors = verify(cli, w, results);
    checked = 0;
    for (rank_t r = 0; r < cli.machines; ++r) checked += w.in_sets[r].size();
  }

  const auto times = timing.times();
  std::printf("\nvolume: %s in %zu messages\n",
              format_bytes(static_cast<double>(trace.total_bytes())).c_str(),
              trace.num_messages());
  const auto layer_bytes =
      trace.bytes_by_layer_all_phases(topo.num_layers());
  for (std::uint16_t layer = 1; layer <= topo.num_layers(); ++layer) {
    std::printf("  layer %u: %s\n", layer,
                format_bytes(static_cast<double>(layer_bytes[layer - 1]))
                    .c_str());
  }
  std::printf("modeled config time: %s\nmodeled reduce time: %s\n",
              format_seconds(times.config).c_str(),
              format_seconds(times.reduce()).c_str());
  std::printf("verification: %zu mismatches over %zu reliable positions "
              "(%s)\n",
              errors, checked, errors == 0 ? "PASS" : "FAIL");
  return errors == 0 ? 0 : 1;
}

int run_report(const Cli& cli) {
  const NetworkModel net = scaled_network();
  const ComputeModel compute;

  Workload w = synthesize(cli);
  std::printf("workload: n = %llu, m = %u, measured density %.4f, "
              "alpha %.2f\n",
              static_cast<unsigned long long>(cli.features), cli.machines,
              w.measured_density, cli.alpha);
  const Topology topo = pick_topology(cli, w, net, /*verbose=*/false);

  const rank_t physical = cli.machines * cli.replication;
  KYLIX_CHECK_MSG(cli.failures <= physical, "--failures exceeds nodes");
  const FailureModel failures =
      FailureModel::random_failures(physical, cli.failures, cli.seed + 1);
  Trace trace;
  TimingAccumulator timing(physical, net, compute, cli.threads);
  obs::SpanTracer tracer;
  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(physical, /*per_rank_capacity=*/256,
                               /*global_capacity=*/2048);
  obs::AnomalyWatchdog::Options wopt;
  wopt.metrics = &metrics;
  wopt.recorder = &recorder;
  obs::AnomalyWatchdog watchdog(physical, wopt);

  obs::TelemetryObserver::Options opt;
  opt.topology = &topo;
  opt.features = cli.features;
  opt.bytes_per_element = sizeof(real_t);
  opt.metrics = &metrics;
  opt.recorder = &recorder;
  opt.watchdog = &watchdog;
  obs::TelemetryObserver observer(&tracer, physical, opt);

  const std::uint64_t fingerprint =
      PlanCache::fingerprint(w.in_sets, w.out_sets);
  const BlackBoxGuard black_box(cli.postmortem_out, &recorder, &metrics,
                                fingerprint);

  obs::RunReportInputs inputs;
  inputs.trace = &trace;
  inputs.topology = &topo;
  inputs.timing = &timing;
  inputs.features = cli.features;
  inputs.alpha = cli.alpha;
  inputs.partition_density = w.measured_density;
  inputs.workload = "powerlaw(seed=" + std::to_string(cli.seed) + ")";

  std::vector<std::vector<real_t>> results;
  DegradedReport degraded;
  std::vector<rank_t> dead_ranks;
  StreamStats sstats;
  if (cli.replication == 1) {
    KYLIX_CHECK_MSG(cli.failures == 0,
                    "failures need --replication >= 2 to stay correct");
    ParallelBspEngine<real_t> engine(cli.machines, 0, nullptr, &trace,
                                     &timing);
    engine.set_observer(&observer);
    SparseAllreduce<real_t, OpSum, ParallelBspEngine<real_t>> allreduce(
        &engine, topo, &compute);
    allreduce.set_network(&net);
    allreduce.set_flight_recorder(&recorder);
    allreduce.set_streaming(cli.stream);
    if (cli.chunk_bytes != 0) allreduce.set_chunk_bytes(cli.chunk_bytes);
    allreduce.configure(w.in_sets, w.out_sets);
    results = allreduce.reduce(w.values);
    sstats = allreduce.stream_stats();
    inputs.measured_elements = allreduce.measured_layer_elements();
    inputs.dropped_messages = engine.dropped_messages();
    std::printf("engine: parallel (%u threads)\n", engine.num_threads());
  } else {
    ReplicatedBsp<real_t> engine(cli.machines, cli.replication, &failures,
                                 &trace, &timing);
    if (engine.has_failed()) {
      // A whole replica group is dead (expected after ~sqrt(m) failures);
      // proceed anyway and report the degraded completion.
      std::printf("warning: a whole replica group is dead — completing "
                  "degraded over the surviving ranks\n");
    }
    engine.set_observer(&observer);
    SparseAllreduce<real_t, OpSum, ReplicatedBsp<real_t>> allreduce(
        &engine, topo, &compute);
    allreduce.set_network(&net);
    allreduce.set_flight_recorder(&recorder);
    allreduce.set_streaming(cli.stream);
    if (cli.chunk_bytes != 0) allreduce.set_chunk_bytes(cli.chunk_bytes);
    allreduce.configure(w.in_sets, w.out_sets);
    results = allreduce.reduce(w.values);
    sstats = allreduce.stream_stats();
    degraded = allreduce.degraded_report();
    dead_ranks = engine.dead_logical_ranks();
    inputs.measured_elements = allreduce.measured_layer_elements();
    inputs.dropped_messages = engine.dropped_messages();
    inputs.race_wins = engine.race_stats().wins;
    inputs.race_losses = engine.race_stats().losses;
    std::printf("engine: replicated x%u, %u failures injected\n",
                cli.replication, cli.failures);
  }
  obs::publish_stream_stats(metrics, sstats);
  timing.mark_reduce_complete();

  std::size_t errors;
  std::size_t checked;
  if (degraded.degraded || !dead_ranks.empty()) {
    std::printf("%s\n", degraded.summary().c_str());
    const SoundCheck check =
        verify_degraded(cli, w, results, degraded, dead_ranks);
    errors = check.errors;
    checked = check.checked;
  } else {
    errors = verify(cli, w, results);
    checked = 0;
    for (rank_t r = 0; r < cli.machines; ++r) checked += w.in_sets[r].size();
  }
  const obs::RunReport report = obs::build_run_report(inputs);

  std::printf("\n%s\n", report.ascii_chart().c_str());
  std::printf("layer   deg   P_i meas   P_i model   D_i meas   D_i model\n");
  for (const obs::LayerReport& lr : report.layers) {
    std::printf("%5u %5u %10.0f %11.0f %10.4f %11.4f\n", lr.layer,
                lr.degree, lr.measured_elements_per_node,
                lr.model_elements_per_node, lr.measured_density,
                lr.model_density);
  }
  std::printf("totals: %s in %llu messages, %llu dropped",
              format_bytes(static_cast<double>(report.total_bytes)).c_str(),
              static_cast<unsigned long long>(report.total_messages),
              static_cast<unsigned long long>(report.dropped_messages));
  if (cli.replication > 1) {
    std::printf(", races %llu won / %llu lost",
                static_cast<unsigned long long>(report.race_wins),
                static_cast<unsigned long long>(report.race_losses));
  }
  std::printf("\nmodeled config time: %s\nmodeled reduce time: %s\n",
              format_seconds(report.time_config_s).c_str(),
              format_seconds(report.time_reduce_s).c_str());
  if (report.hierarchical) {
    std::printf("  intra tier (c=%u): %s config + %s reduce  |  inter "
                "rounds: %s\n",
                report.cores_per_machine,
                format_seconds(report.time_intra_config_s).c_str(),
                format_seconds(report.time_intra_reduce_s).c_str(),
                format_seconds(report.time_inter_reduce_s).c_str());
  }
  // Latency percentiles: measured from the engine.round_seconds histogram
  // (the observer's wall clock), modeled from the timing accumulator's
  // per-round order statistics.
  {
    const obs::Histogram::Snapshot rounds =
        metrics
            .histogram("engine.round_seconds",
                       obs::exponential_bounds(1e-6, 10, 8))
            .snapshot();
    std::printf("round latency (measured, %llu rounds): p50 %s  p99 %s  "
                "p999 %s\n",
                static_cast<unsigned long long>(rounds.count),
                format_seconds(rounds.quantile(0.5)).c_str(),
                format_seconds(rounds.quantile(0.99)).c_str(),
                format_seconds(rounds.quantile(0.999)).c_str());
    std::printf("round latency (modeled):  p50 %s  p99 %s\n",
                format_seconds(timing.round_time_quantile(0.5)).c_str(),
                format_seconds(timing.round_time_quantile(0.99)).c_str());
    std::printf("anomaly watchdog: %llu slow rounds, %llu stragglers, "
                "%llu byte-imbalance flags over %llu rounds\n",
                static_cast<unsigned long long>(watchdog.slow_rounds()),
                static_cast<unsigned long long>(watchdog.stragglers()),
                static_cast<unsigned long long>(watchdog.byte_imbalances()),
                static_cast<unsigned long long>(watchdog.rounds_seen()));
  }
  if (sstats.streamed) {
    const double streamed_s =
        timing.pipelined_reduce_time(sstats.max_chunks_per_letter);
    std::printf(
        "streaming: chunk %s, %llu chunks over %llu letters (max %u/letter)\n"
        "  modeled streamed reduce time: %s (pipeline overlap %.2f)\n"
        "  peak buffer: %s streamed vs %s letter-at-once\n",
        format_bytes(static_cast<double>(sstats.chunk_bytes)).c_str(),
        static_cast<unsigned long long>(sstats.chunks),
        static_cast<unsigned long long>(sstats.letters),
        sstats.max_chunks_per_letter, format_seconds(streamed_s).c_str(),
        sstats.overlap_ratio(),
        format_bytes(static_cast<double>(sstats.peak_stream_buffer_bytes))
            .c_str(),
        format_bytes(static_cast<double>(sstats.peak_letter_buffer_bytes))
            .c_str());
  }

  if (cli.inflight > 1) {
    // Async overlapped replay (DESIGN §11): the same workload pushed
    // through the async executor as cli.inflight concurrent streams over
    // the shared modeled channel, against the serialized window=1 replay
    // of the identical streams. Stream admit/complete marks land in the
    // flight recorder alongside the main run's events.
    KYLIX_CHECK_MSG(cli.replication == 1 && cli.failures == 0,
                    "--inflight overlaps plain-channel replays; drop "
                    "--replication/--failures");
    BspEngine<real_t> compile_engine(cli.machines);
    SparseAllreduce<real_t, OpSum, BspEngine<real_t>> async_compiler(
        &compile_engine, topo, &compute);
    const auto plan = async_compiler.compile(w.in_sets, w.out_sets);
    const auto overlap = [&](std::uint32_t window, double& makespan,
                             std::vector<double>& latencies, double& tx_busy) {
      AsyncExecutor<real_t> ax;
      AsyncExecutor<real_t>::Options aopts;
      aopts.window = window;
      aopts.network = &net;
      aopts.compute = &compute;
      aopts.recorder = &recorder;
      ax.bind(plan, aopts);
      std::vector<std::uint32_t> tags;
      tags.reserve(cli.inflight);
      for (std::uint32_t i = 0; i < cli.inflight; ++i) {
        tags.push_back(ax.submit(w.values));
      }
      ax.drain();
      makespan = ax.makespan_seconds();
      latencies = ax.completion_latencies();
      tx_busy = ax.max_tx_busy_seconds();
      std::vector<std::vector<std::vector<real_t>>> outs;
      outs.reserve(cli.inflight);
      for (const std::uint32_t tag : tags) {
        outs.push_back(ax.take_result(tag));
      }
      return outs;
    };
    double serial_s = 0;
    double async_s = 0;
    double tx_busy = 0;
    std::vector<double> serial_lat;
    std::vector<double> async_lat;
    const auto serial_outs = overlap(1, serial_s, serial_lat, tx_busy);
    const auto async_outs =
        overlap(cli.inflight, async_s, async_lat, tx_busy);
    std::sort(async_lat.begin(), async_lat.end());
    const auto quantile = [&](double q) {
      const std::size_t i = static_cast<std::size_t>(
          q * static_cast<double>(async_lat.size() - 1) + 0.5);
      return async_lat[i];
    };
    std::printf(
        "async overlap (%u in flight): %s vs %s serialized (%.2fx)\n"
        "  aggregate: %.1f vs %.1f reduces/s; per-stream latency p50 %s "
        "p99 %s\n  bottleneck NIC occupancy %.0f%%; streams %s serialized "
        "replay\n",
        cli.inflight, format_seconds(async_s).c_str(),
        format_seconds(serial_s).c_str(),
        async_s > 0 ? serial_s / async_s : 0.0,
        async_s > 0 ? cli.inflight / async_s : 0.0,
        serial_s > 0 ? cli.inflight / serial_s : 0.0,
        format_seconds(quantile(0.5)).c_str(),
        format_seconds(quantile(0.99)).c_str(),
        async_s > 0 ? 100.0 * tx_busy / async_s : 0.0,
        async_outs == serial_outs ? "bit-identical to" : "DIVERGED from");
  }

  if (!cli.trace_out.empty()) {
    std::ofstream out(cli.trace_out);
    KYLIX_CHECK_MSG(out.good(), "cannot open --trace-out file");
    tracer.write_chrome_trace(out);
    std::printf("trace: %s (%zu events; open in Perfetto or "
                "chrome://tracing)\n",
                cli.trace_out.c_str(), tracer.num_events());
  }
  if (!cli.report_out.empty()) {
    std::ofstream out(cli.report_out);
    KYLIX_CHECK_MSG(out.good(), "cannot open --report-out file");
    // The run report plus the engine-side metrics snapshot, one document.
    out << "{\"report\":";
    report.write_json(out);
    out << ",\"metrics\":";
    metrics.write_json(out);
    out << "}\n";
    std::printf("report: %s\n", cli.report_out.c_str());
  }
  if (!cli.postmortem_out.empty()) {
    const bool went_degraded = degraded.degraded || !dead_ranks.empty();
    if (went_degraded) {
      obs::FlightEvent e;
      e.kind = obs::FlightEventKind::kDegraded;
      e.value = degraded.mass_lost_fraction;
      e.bytes = degraded.lost_keys.size();
      recorder.record(e);
    }
    obs::PostmortemInputs pm;
    pm.reason = went_degraded          ? "degraded-completion"
                : cli.failures > 0     ? "fault-injection"
                                       : "requested";
    pm.detail = went_degraded ? degraded.summary() : "run completed exactly";
    pm.recorder = &recorder;
    pm.metrics = &metrics;
    pm.plan_fingerprint = fingerprint;
    KYLIX_CHECK_MSG(obs::dump_postmortem(cli.postmortem_out, pm),
                    "cannot write --postmortem-out file");
    std::printf("postmortem: %s (%llu events)\n", cli.postmortem_out.c_str(),
                static_cast<unsigned long long>(recorder.recorded()));
  }
  std::printf("verification: %zu mismatches over %zu reliable positions "
              "(%s)\n",
              errors, checked, errors == 0 ? "PASS" : "FAIL");
  return errors == 0 ? 0 : 1;
}

/// The chaos sweep: for every failure count k in 0..max, run `--seeds`
/// independently seeded schedules (k scripted crashes at uniform rounds
/// plus background drop/duplicate/delay rates) through the replicated
/// engine, classify each run as exact / degraded-but-sound / bad, and
/// print the survival table. Any "bad" run — a mismatch at a key the
/// degraded report vouched for — fails the sweep.
int run_chaos(const Cli& cli) {
  const NetworkModel net = scaled_network();
  KYLIX_CHECK_MSG(cli.replication >= 1, "--replication must be >= 1");

  const Workload w = synthesize(cli);
  std::printf("workload: n = %llu, m = %u, measured density %.4f\n",
              static_cast<unsigned long long>(cli.features), cli.machines,
              w.measured_density);
  const Topology topo = pick_topology(cli, w, net, /*verbose=*/false);
  const rank_t physical = cli.machines * cli.replication;
  KYLIX_CHECK_MSG(cli.max_failures <= physical,
                  "--max-failures exceeds physical nodes");
  // One allreduce runs 3*l rounds (config down, reduce down, reduce up);
  // scripted crashes land uniformly inside that window.
  const std::uint64_t horizon = 3ull * topo.num_layers();

  std::printf("chaos sweep: replication %u (%u physical), %llu schedules "
              "per row, rates drop/dup/delay = %.3f/%.3f/%.3f\n\n",
              cli.replication, physical,
              static_cast<unsigned long long>(cli.chaos_seeds),
              cli.drop_rate, cli.dup_rate, cli.delay_rate);
  std::printf("%8s %6s %9s %4s %10s %10s %11s\n", "failures", "exact",
              "degraded", "bad", "recovered", "mean-mass", "mean-lostkeys");

  std::uint64_t total_bad = 0;
  bool box_dumped = false;
  for (rank_t k = 0; k <= cli.max_failures; ++k) {
    std::uint64_t exact = 0, sound = 0, bad = 0, recoveries = 0;
    double mass_lost = 0.0, lost_keys = 0.0;
    for (std::uint64_t s = 0; s < cli.chaos_seeds; ++s) {
      FaultPlan plan(physical, cli.seed + 1000ull * k + s);
      plan.random_crashes(k, horizon);
      if (cli.drop_rate > 0 || cli.dup_rate > 0 || cli.delay_rate > 0) {
        FaultPlan::TransientRates rates;
        rates.drop = cli.drop_rate;
        rates.duplicate = cli.dup_rate;
        rates.delay = cli.delay_rate;
        plan.set_transient_rates(rates);
      }
      FaultChannel<real_t> channel(&plan);
      ReplicatedBsp<real_t> engine(cli.machines, cli.replication);
      engine.set_fault_channel(&channel);
      // Fly a black box on every run until one dump lands: the first run
      // that degrades (or goes unsound) leaves its fault/retry/recovery
      // timeline behind at --postmortem-out.
      const bool arm_box = !cli.postmortem_out.empty() && !box_dumped;
      std::unique_ptr<obs::MetricsRegistry> run_metrics;
      std::unique_ptr<obs::FlightRecorder> run_recorder;
      std::unique_ptr<obs::TelemetryObserver> run_observer;
      if (arm_box) {
        run_metrics = std::make_unique<obs::MetricsRegistry>();
        run_recorder = std::make_unique<obs::FlightRecorder>(
            physical, /*per_rank_capacity=*/256, /*global_capacity=*/4096);
        obs::TelemetryObserver::Options topt;
        topt.metrics = run_metrics.get();
        topt.recorder = run_recorder.get();
        run_observer = std::make_unique<obs::TelemetryObserver>(
            /*tracer=*/nullptr, physical, topt);
        engine.set_observer(run_observer.get());
      }
      SparseAllreduce<real_t, OpSum, ReplicatedBsp<real_t>> allreduce(
          &engine, topo);
      allreduce.configure(w.in_sets, w.out_sets);
      const auto results = allreduce.reduce(w.values);
      const DegradedReport report = allreduce.degraded_report();
      const std::vector<rank_t> dead = engine.dead_logical_ranks();
      recoveries += engine.recovery_stats().promotions +
                    engine.recovery_stats().forced;

      const SoundCheck check =
          verify_degraded(cli, w, results, report, dead);
      if (check.errors > 0) {
        ++bad;
        std::printf("  BAD schedule: failures=%u seed=%llu — %zu mismatches "
                    "over %zu vouched positions (%s)\n",
                    k, static_cast<unsigned long long>(s), check.errors,
                    check.checked, report.summary().c_str());
      } else if (report.degraded || !dead.empty()) {
        ++sound;
        mass_lost += report.mass_lost_fraction;
        lost_keys += static_cast<double>(report.lost_keys.size());
      } else {
        ++exact;
      }
      if (arm_box &&
          (check.errors > 0 || report.degraded || !dead.empty())) {
        obs::FlightEvent e;
        e.kind = obs::FlightEventKind::kDegraded;
        e.value = report.mass_lost_fraction;
        e.bytes = report.lost_keys.size();
        run_recorder->record(e);
        obs::PostmortemInputs pm;
        pm.reason = check.errors > 0 ? "unsound-run" : "fault-injection";
        pm.detail = "failures=" + std::to_string(k) +
                    " seed=" + std::to_string(s) + " — " + report.summary();
        pm.recorder = run_recorder.get();
        pm.metrics = run_metrics.get();
        pm.plan_fingerprint = PlanCache::fingerprint(w.in_sets, w.out_sets);
        if (obs::dump_postmortem(cli.postmortem_out, pm)) {
          box_dumped = true;
          std::printf("  postmortem: %s (failures=%u seed=%llu, %llu "
                      "events)\n",
                      cli.postmortem_out.c_str(), k,
                      static_cast<unsigned long long>(s),
                      static_cast<unsigned long long>(
                          run_recorder->recorded()));
        }
      }
    }
    total_bad += bad;
    std::printf("%8u %6llu %9llu %4llu %10llu %10.4f %13.1f\n", k,
                static_cast<unsigned long long>(exact),
                static_cast<unsigned long long>(sound),
                static_cast<unsigned long long>(bad),
                static_cast<unsigned long long>(recoveries),
                sound > 0 ? mass_lost / static_cast<double>(sound) : 0.0,
                sound > 0 ? lost_keys / static_cast<double>(sound) : 0.0);
  }
  if (!cli.postmortem_out.empty() && !box_dumped) {
    std::printf("postmortem: every run completed exactly — nothing to dump\n");
  }
  std::printf("\n%s\n", total_bad == 0
                            ? "chaos sweep PASS: every run was exact or "
                              "degraded-but-sound"
                            : "chaos sweep FAIL: unsound degraded results");
  return total_bad == 0 ? 0 : 1;
}

/// The compiled-plan workflow demo: compile once, print the frozen message
/// schedule and the multi-payload wire amortization, exercise the
/// fingerprint-keyed cache (miss, then hit), wall-clock cached replay
/// against per-iteration configure+reduce, and gate the exit code on both
/// oracle correctness and strided-vs-independent bit-identity.
int run_plan(const Cli& cli) {
  const NetworkModel net = scaled_network();
  KYLIX_CHECK_MSG(cli.payloads >= 1, "--payloads must be >= 1");
  KYLIX_CHECK_MSG(cli.plan_iters >= 1, "--iters must be >= 1");

  Workload w = synthesize(cli);
  std::printf("workload: n = %llu, m = %u, measured density %.4f\n",
              static_cast<unsigned long long>(cli.features), cli.machines,
              w.measured_density);
  const Topology topo = pick_topology(cli, w, net, /*verbose=*/false);

  // Compile: run the configuration rounds once and freeze the plan.
  BspEngine<real_t> engine(cli.machines);
  SparseAllreduce<real_t, OpSum, BspEngine<real_t>> allreduce(&engine, topo);
  Timer timer;
  const auto plan = allreduce.compile(w.in_sets, w.out_sets);
  const double compile_s = timer.seconds();

  const auto schedule = plan->message_schedule();
  std::size_t msgs[3] = {0, 0, 0};
  std::uint64_t elements[3] = {0, 0, 0};
  for (const ScheduledMessage& msg : schedule) {
    const auto phase = static_cast<std::size_t>(msg.phase);
    ++msgs[phase];
    elements[phase] += msg.elements;
  }
  std::printf("\nplan: fingerprint %016llx, compiled in %s\n",
              static_cast<unsigned long long>(plan->fingerprint()),
              format_seconds(compile_s).c_str());
  static const char* const kPhaseNames[3] = {"config-down", "reduce-down",
                                             "reduce-up"};
  std::printf("frozen schedule (%zu messages):\n", schedule.size());
  for (std::size_t phase = 0; phase < 3; ++phase) {
    std::printf("  %-12s %6zu messages, %llu key positions\n",
                kPhaseNames[phase], msgs[phase],
                static_cast<unsigned long long>(elements[phase]));
  }

  // Multi-payload amortization: piece keys are sent once per replay, so k
  // interleaved payloads cost less than k separate reduces.
  const auto one = plan->reduce_wire_bytes(sizeof(real_t), 1);
  std::printf("reduce wire bytes by payload count (vs k separate replays):\n");
  for (std::uint32_t k = 1; k <= cli.payloads; ++k) {
    const auto bytes = plan->reduce_wire_bytes(sizeof(real_t), k);
    std::printf("  k=%-2u %12s  %.3fx\n", k,
                format_bytes(static_cast<double>(bytes)).c_str(),
                static_cast<double>(bytes) /
                    (static_cast<double>(k) * static_cast<double>(one)));
  }

  // Cache demo: the first configure compiles and inserts, the second hashes
  // the same sets and adopts the stored plan without any config rounds.
  PlanCache cache(4);
  SparseAllreduce<real_t, OpSum, BspEngine<real_t>> cached(&engine, topo);
  const bool first = cached.configure_cached(cache, w.in_sets, w.out_sets);
  const bool second = cached.configure_cached(cache, w.in_sets, w.out_sets);
  std::printf("plan cache: first configure %s, second %s "
              "(hits %llu, misses %llu, size %zu)\n",
              first ? "HIT" : "miss", second ? "HIT" : "miss",
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()), cache.size());

  // Wall-clock: warm cached replay vs per-iteration configure+reduce.
  const auto reference = cached.reduce(w.values);
  std::size_t errors = verify(cli, w, reference);

  timer.reset();
  for (std::uint32_t it = 0; it < cli.plan_iters; ++it) {
    (void)cached.configure_cached(cache, w.in_sets, w.out_sets);
    (void)cached.reduce(w.values);
  }
  const double replay_s = timer.seconds();
  timer.reset();
  for (std::uint32_t it = 0; it < cli.plan_iters; ++it) {
    SparseAllreduce<real_t, OpSum, BspEngine<real_t>> fresh(&engine, topo);
    (void)fresh.reduce_with_config(w.in_sets, w.out_sets, w.values);
  }
  const double combined_s = timer.seconds();
  std::printf("\nwall clock over %u iterations:\n", cli.plan_iters);
  std::printf("  configure+reduce each iteration: %s\n",
              format_seconds(combined_s).c_str());
  std::printf("  cached plan replay:              %s  (%.2fx)\n",
              format_seconds(replay_s).c_str(),
              replay_s > 0 ? combined_s / replay_s : 0.0);

  // Strided verification: k payloads through one plan must be bit-identical
  // to k independent reduces of the same payloads.
  const std::uint32_t k = cli.payloads;
  std::vector<std::vector<real_t>> strided_in(cli.machines);
  std::vector<std::vector<std::vector<real_t>>> independent(k);
  for (std::uint32_t j = 0; j < k; ++j) {
    auto payload = w.values;  // payload j shifts every value by j
    for (auto& values : payload) {
      for (auto& v : values) v += static_cast<real_t>(j);
    }
    independent[j] = allreduce.reduce(payload);
    for (rank_t r = 0; r < cli.machines; ++r) {
      auto& interleaved = strided_in[r];
      interleaved.resize(payload[r].size() * k);
      for (std::size_t p = 0; p < payload[r].size(); ++p) {
        interleaved[p * k + j] = payload[r][p];
      }
    }
  }
  const auto strided = allreduce.reduce_strided(std::move(strided_in), k);
  std::size_t strided_errors = 0;
  for (rank_t r = 0; r < cli.machines; ++r) {
    for (std::uint32_t j = 0; j < k; ++j) {
      for (std::size_t p = 0; p < independent[j][r].size(); ++p) {
        if (strided[r][p * k + j] != independent[j][r][p]) ++strided_errors;
      }
    }
  }
  std::printf("strided replay: %u payloads interleaved, %zu mismatches vs "
              "independent reduces (%s)\n",
              k, strided_errors, strided_errors == 0 ? "PASS" : "FAIL");
  std::printf("verification: %zu mismatches against the single-node "
              "reference (%s)\n",
              errors, errors == 0 ? "PASS" : "FAIL");
  return errors == 0 && strided_errors == 0 ? 0 : 1;
}

/// One kill→heal→rejoin cycle's worth of measurements for the healing table.
struct HealCycle {
  std::vector<rank_t> victims;         ///< logical ranks killed this cycle
  std::uint64_t degraded_rounds = 0;   ///< reduces run while the detector probed
  double detect_view_s = 0;            ///< view time from kill to epoch bump
  double replan_s = 0;                 ///< wall cost of the manager's re-plan
  double survivor_cold_s = 0;          ///< wall cost of a fresh survivor configure
  bool heal_identical = false;         ///< healed reduce == fresh survivor reduce
  bool rejoin_cache_hit = false;       ///< rejoin served the epoch-0 cached plan
  bool rejoin_identical = false;       ///< post-rejoin reduce == original baseline
};

/// The healing loop, generic over the engine: kill a group of logical ranks,
/// run degraded rounds on the old plan while the heartbeat detector probes,
/// let the EpochedPlanManager re-plan on confirmation, check the healed
/// reduce is bit-identical to a cold configure on the survivor set, then
/// revive the group and check the rejoin epoch restores the original plan
/// (cache hit) and baseline results.
template <typename Engine, typename MakeEngine>
int run_heal_engine(const Cli& cli, const Workload& w, const Topology& topo,
                    MakeEngine make_engine) {
  const rank_t m = cli.machines;
  const rank_t physical = m * cli.replication;
  KYLIX_CHECK_MSG(cli.group_size >= 1 && cli.group_size < m,
                  "--group-size must be in [1, machines)");
  KYLIX_CHECK_MSG(cli.heal_cycles >= 1, "--cycles must be >= 1");
  KYLIX_CHECK_MSG(cli.round_dt > 0, "--round-dt must be > 0");

  FailureModel fm(physical);
  auto engine = make_engine(&fm);
  SparseAllreduce<real_t, OpSum, Engine> allreduce(engine.get(), topo);

  obs::MetricsRegistry metrics;
  obs::FlightRecorder recorder(physical, /*per_rank_capacity=*/256,
                               /*global_capacity=*/4096);
  MembershipOptions vopts;
  vopts.replication = cli.replication;
  vopts.recorder = &recorder;
  vopts.metrics = &metrics;
  MembershipView view(m, &fm, vopts);
  PlanCache cache(8);
  typename EpochedPlanManager<real_t, OpSum, Engine>::Options mopts;
  mopts.cache = &cache;
  mopts.metrics = &metrics;
  EpochedPlanManager<real_t, OpSum, Engine> mgr(&allreduce, &view, mopts);
  mgr.set_engine(engine.get());

  mgr.configure(w.in_sets, w.out_sets);
  const double cold_s = mgr.cold_configure_seconds();
  const auto baseline = allreduce.reduce(w.values);
  const std::size_t baseline_errors = verify(cli, w, baseline);
  std::printf("baseline: configured in %s, %zu mismatches vs reference "
              "(%s)\n\n",
              format_seconds(cold_s).c_str(), baseline_errors,
              baseline_errors == 0 ? "PASS" : "FAIL");

  double clock = 0.0;
  std::vector<HealCycle> cycles;
  for (std::uint32_t c = 0; c < cli.heal_cycles; ++c) {
    HealCycle cyc;
    // Deterministic victim schedule: a fresh group of logical ranks each
    // cycle so every heal compiles a distinct survivor plan (no cache hit
    // masking the re-plan cost), while every rejoin returns to epoch 0.
    for (rank_t j = 0; j < cli.group_size; ++j) {
      cyc.victims.push_back((c * cli.group_size + j) % m);
    }
    const double killed_at = clock;
    for (const rank_t v : cyc.victims) {
      for (std::uint32_t rep = 0; rep < cli.replication; ++rep) {
        fm.kill(v + static_cast<rank_t>(rep) * m);
      }
    }
    // Degraded rounds on the old epoch until the detector's probe schedule
    // runs dry and the manager swaps plans at this round barrier.
    while (!mgr.heal(clock)) {
      (void)allreduce.reduce(w.values);
      ++cyc.degraded_rounds;
      clock += cli.round_dt;
      KYLIX_CHECK_MSG(cyc.degraded_rounds < 10000,
                      "heartbeat detector never confirmed the kill");
    }
    cyc.detect_view_s = clock - killed_at;
    cyc.replan_s = mgr.timeline().back().replan_s;

    // Healed epoch: bit-identical to a cold configure on the survivor set.
    const auto healed = allreduce.reduce(w.values);
    FailureModel fresh_fm(physical);
    for (rank_t p = 0; p < physical; ++p) {
      if (fm.is_dead(p)) fresh_fm.kill(p);
    }
    auto fresh_engine = make_engine(&fresh_fm);
    SparseAllreduce<real_t, OpSum, Engine> fresh(fresh_engine.get(), topo);
    Timer timer;
    fresh.configure(w.in_sets, w.out_sets);
    cyc.survivor_cold_s = timer.seconds();
    cyc.heal_identical = healed == fresh.reduce(w.values);

    // Rejoin: revive the group; the next heal bumps the epoch again and the
    // full-membership fingerprint hits the epoch-0 cache entry.
    clock += cli.round_dt;
    for (const rank_t v : cyc.victims) {
      for (std::uint32_t rep = 0; rep < cli.replication; ++rep) {
        fm.revive(v + static_cast<rank_t>(rep) * m);
      }
    }
    KYLIX_CHECK_MSG(mgr.heal(clock), "rejoin did not advance the epoch");
    cyc.rejoin_cache_hit = mgr.timeline().back().cache_hit;
    cyc.rejoin_identical = allreduce.reduce(w.values) == baseline;
    clock += cli.round_dt;
    cycles.push_back(std::move(cyc));
  }

  // Survival/healing table.
  std::printf("%5s %-14s %9s %10s %12s %14s %6s %5s %7s\n", "cycle",
              "victims", "degraded", "detect", "replan", "cold(surv)",
              "ratio", "heal", "rejoin");
  double sum_replan = 0, sum_cold = 0, sum_degraded = 0;
  bool all_sound = baseline_errors == 0;
  for (std::size_t c = 0; c < cycles.size(); ++c) {
    const HealCycle& cyc = cycles[c];
    std::string victims;
    for (const rank_t v : cyc.victims) {
      if (!victims.empty()) victims += ",";
      victims += std::to_string(v);
    }
    sum_replan += cyc.replan_s;
    sum_cold += cyc.survivor_cold_s;
    sum_degraded += static_cast<double>(cyc.degraded_rounds);
    all_sound = all_sound && cyc.heal_identical && cyc.rejoin_cache_hit &&
                cyc.rejoin_identical;
    std::printf("%5zu %-14s %9llu %10s %12s %14s %6.2f %5s %7s\n", c,
                victims.c_str(),
                static_cast<unsigned long long>(cyc.degraded_rounds),
                format_seconds(cyc.detect_view_s).c_str(),
                format_seconds(cyc.replan_s).c_str(),
                format_seconds(cyc.survivor_cold_s).c_str(),
                cyc.survivor_cold_s > 0 ? cyc.replan_s / cyc.survivor_cold_s
                                        : 0.0,
                cyc.heal_identical ? "PASS" : "FAIL",
                cyc.rejoin_cache_hit && cyc.rejoin_identical ? "PASS"
                                                             : "FAIL");
  }

  // Epoch timeline: the membership view's history joined with the
  // manager's per-epoch re-plan costs (row 0 is the initial configure).
  const auto& history = view.history();
  const auto& timeline = mgr.timeline();
  std::printf("\nepoch timeline:\n");
  std::printf("%6s %10s %6s %-14s %12s %6s %s\n", "epoch", "at(view)",
              "alive", "dead", "replan", "cache", "fingerprint");
  for (std::size_t i = 0; i < history.size() && i < timeline.size(); ++i) {
    std::string dead;
    for (const rank_t d : history[i].dead) {
      if (!dead.empty()) dead += ",";
      dead += std::to_string(d);
    }
    if (dead.empty()) dead = "-";
    std::printf("%6llu %10s %6zu %-14s %12s %6s %016llx\n",
                static_cast<unsigned long long>(history[i].epoch),
                format_seconds(history[i].at_s).c_str(), timeline[i].alive,
                dead.c_str(), format_seconds(timeline[i].replan_s).c_str(),
                timeline[i].cache_hit ? "HIT" : "miss",
                static_cast<unsigned long long>(timeline[i].fingerprint));
  }

  const auto n = static_cast<double>(cycles.size());
  const double mean_replan = sum_replan / n;
  const double mean_cold = sum_cold / n;
  const double ratio = mean_cold > 0 ? mean_replan / mean_cold : 0.0;
  std::printf("\nmembership: %llu suspects, %llu deaths, %llu joins, "
              "%llu probes, %llu epoch changes\n",
              static_cast<unsigned long long>(view.stats().suspects),
              static_cast<unsigned long long>(view.stats().deaths),
              static_cast<unsigned long long>(view.stats().joins),
              static_cast<unsigned long long>(view.stats().probes),
              static_cast<unsigned long long>(view.epoch()));
  std::printf("re-plan cost: mean %s vs mean survivor cold configure %s "
              "(%.2fx)\n",
              format_seconds(mean_replan).c_str(),
              format_seconds(mean_cold).c_str(), ratio);

  if (!cli.heal_out.empty()) {
    std::ofstream out(cli.heal_out);
    KYLIX_CHECK_MSG(out.good(), "cannot open --heal-out file");
    out << "{\"machines\":" << m << ",\"replication\":" << cli.replication
        << ",\"group_size\":" << cli.group_size
        << ",\"cycles\":" << cycles.size()
        << ",\"cold_configure_s\":" << cold_s
        << ",\"mean_replan_s\":" << mean_replan
        << ",\"mean_survivor_cold_s\":" << mean_cold
        << ",\"replan_over_cold_ratio\":" << ratio
        << ",\"mean_degraded_rounds\":" << sum_degraded / n
        << ",\"epochs\":" << view.epoch() << ",\"all_sound\":"
        << (all_sound ? "true" : "false") << "}\n";
    std::printf("healing summary: %s\n", cli.heal_out.c_str());
  }
  std::printf("healing loop: %s\n", all_sound ? "PASS" : "FAIL");
  return all_sound ? 0 : 1;
}

/// The elastic-membership demo: seeded kill-group → degraded rounds →
/// detector-confirmed re-plan → rejoin, printing the epoch timeline and the
/// survival/healing table. Replication >= 2 drives the replicated engine
/// (a group is dead only when every replica dies); replication 1 heals the
/// plain BSP engine around individual dead ranks.
int run_heal(const Cli& cli) {
  const NetworkModel net = scaled_network();
  const Workload w = synthesize(cli);
  std::printf("workload: n = %llu, m = %u, measured density %.4f\n",
              static_cast<unsigned long long>(cli.features), cli.machines,
              w.measured_density);
  const Topology topo = pick_topology(cli, w, net, /*verbose=*/false);
  std::printf("healing loop: %u cycles, group size %u, replication %u, "
              "round dt %s\n\n",
              cli.heal_cycles, cli.group_size, cli.replication,
              format_seconds(cli.round_dt).c_str());
  if (cli.replication == 1) {
    return run_heal_engine<BspEngine<real_t>>(
        cli, w, topo, [&](const FailureModel* fm) {
          return std::make_unique<BspEngine<real_t>>(cli.machines, fm);
        });
  }
  return run_heal_engine<ReplicatedBsp<real_t>>(
      cli, w, topo, [&](const FailureModel* fm) {
        return std::make_unique<ReplicatedBsp<real_t>>(cli.machines,
                                                       cli.replication, fm);
      });
}

}  // namespace

int main(int argc, char** argv) {
  const Cli cli = parse(argc, argv);
  try {
    if (cli.postmortem) return run_postmortem(cli);
    if (cli.chaos) return run_chaos(cli);
    if (cli.plan) return run_plan(cli);
    if (cli.heal) return run_heal(cli);
    return cli.report ? run_report(cli) : run_default(cli);
  } catch (const kylix::check_error& e) {
    // BlackBoxGuard has already dumped the flight recorder (if one was
    // armed) during unwinding; all that is left is a clean exit.
    std::fprintf(stderr, "fatal: %s\n", e.what());
    return 1;
  }
}
