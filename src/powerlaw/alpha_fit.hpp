// Estimating the power-law exponent of observed data.
//
// The design workflow needs α for the workload. Two standard estimators are
// provided: the discrete maximum-likelihood estimator of Clauset, Shalizi &
// Newman (continuous approximation, robust for heavy tails) and a rank-
// frequency log-log least-squares fit (what practitioners eyeball; kept for
// cross-checking and for the sampled-density construction mentioned at the
// end of §IV).
#pragma once

#include <cstdint>
#include <span>

namespace kylix {

/// CSN maximum-likelihood exponent from raw observations (e.g. vertex
/// degrees). Only samples >= x_min are used; returns the exponent of the
/// frequency law P(x) ∝ x^-(alpha_hat). Requires at least 2 usable samples.
[[nodiscard]] double fit_alpha_mle(std::span<const std::uint64_t> samples,
                                   std::uint64_t x_min = 1);

/// Least-squares slope of log(frequency) vs log(rank) over a rank-sorted
/// frequency table; returns the positive exponent α of F ∝ r^-α.
[[nodiscard]] double fit_alpha_rank_frequency(
    std::span<const std::uint64_t> frequencies_sorted_desc);

}  // namespace kylix
