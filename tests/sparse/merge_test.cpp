#include "sparse/merge.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"

namespace kylix {
namespace {

std::vector<key_t> random_sorted_unique(Rng& rng, std::size_t size,
                                        key_t universe) {
  std::set<key_t> keys;
  while (keys.size() < size) keys.insert(rng.below(universe));
  return std::vector<key_t>(keys.begin(), keys.end());
}

/// The defining property of a union-with-maps: union[map[p]] == input[p].
void expect_maps_valid(const UnionResult& result,
                       const std::vector<std::vector<key_t>>& inputs) {
  ASSERT_EQ(result.maps.size(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    ASSERT_EQ(result.maps[i].size(), inputs[i].size()) << "input " << i;
    for (std::size_t p = 0; p < inputs[i].size(); ++p) {
      ASSERT_LT(result.maps[i][p], result.keys.size());
      EXPECT_EQ(result.keys[result.maps[i][p]], inputs[i][p])
          << "input " << i << " position " << p;
    }
  }
}

std::vector<key_t> set_union_oracle(
    const std::vector<std::vector<key_t>>& inputs) {
  std::set<key_t> u;
  for (const auto& in : inputs) u.insert(in.begin(), in.end());
  return std::vector<key_t>(u.begin(), u.end());
}

TEST(MergeUnion, DisjointInputsConcatenate) {
  const UnionResult r = merge_union(std::vector<key_t>{1, 3, 5},
                                    std::vector<key_t>{2, 4, 6});
  EXPECT_EQ(r.keys, (std::vector<key_t>{1, 2, 3, 4, 5, 6}));
  expect_maps_valid(r, {{1, 3, 5}, {2, 4, 6}});
}

TEST(MergeUnion, OverlappingKeysCollapse) {
  const UnionResult r = merge_union(std::vector<key_t>{1, 2, 3},
                                    std::vector<key_t>{2, 3, 4});
  EXPECT_EQ(r.keys, (std::vector<key_t>{1, 2, 3, 4}));
  expect_maps_valid(r, {{1, 2, 3}, {2, 3, 4}});
  // Shared keys map to the same union slot (this is what makes reduction
  // collapse sparse contributions).
  EXPECT_EQ(r.maps[0][1], r.maps[1][0]);
  EXPECT_EQ(r.maps[0][2], r.maps[1][1]);
}

TEST(MergeUnion, EmptySides) {
  const std::vector<key_t> some = {7, 9};
  UnionResult r = merge_union(some, {});
  EXPECT_EQ(r.keys, some);
  r = merge_union({}, some);
  EXPECT_EQ(r.keys, some);
  r = merge_union({}, {});
  EXPECT_TRUE(r.keys.empty());
}

TEST(MergeUnion, IdenticalInputsGiveIdentityMaps) {
  const std::vector<key_t> keys = {1, 5, 9};
  const UnionResult r = merge_union(keys, keys);
  EXPECT_EQ(r.keys, keys);
  for (std::size_t p = 0; p < keys.size(); ++p) {
    EXPECT_EQ(r.maps[0][p], p);
    EXPECT_EQ(r.maps[1][p], p);
  }
}

class TreeMergeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TreeMergeTest, MatchesOracleWithValidMaps) {
  const std::size_t ways = GetParam();
  Rng rng(ways);
  std::vector<std::vector<key_t>> inputs;
  for (std::size_t i = 0; i < ways; ++i) {
    inputs.push_back(random_sorted_unique(rng, 20 + rng.below(50), 300));
  }
  const UnionResult r = tree_merge(inputs);
  EXPECT_EQ(r.keys, set_union_oracle(inputs));
  expect_maps_valid(r, inputs);
}

INSTANTIATE_TEST_SUITE_P(Ways, TreeMergeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8, 13, 16, 64));

TEST(TreeMerge, ZeroInputsGivesEmpty) {
  const UnionResult r = tree_merge(std::vector<std::vector<key_t>>{});
  EXPECT_TRUE(r.keys.empty());
  EXPECT_TRUE(r.maps.empty());
}

TEST(TreeMerge, SomeInputsEmpty) {
  std::vector<std::vector<key_t>> inputs = {{}, {1, 2}, {}, {2, 3}, {}};
  const UnionResult r = tree_merge(inputs);
  EXPECT_EQ(r.keys, (std::vector<key_t>{1, 2, 3}));
  expect_maps_valid(r, inputs);
}

TEST(TreeMerge, HeavilyOverlappingPowerLawLikeInputs) {
  // Mimics the workload the merge exists for: many sets sharing a hot head.
  Rng rng(77);
  std::vector<std::vector<key_t>> inputs;
  for (int i = 0; i < 16; ++i) {
    std::set<key_t> keys;
    for (int j = 0; j < 40; ++j) keys.insert(rng.below(30));    // hot head
    for (int j = 0; j < 10; ++j) keys.insert(rng.below(10000));  // tail
    inputs.emplace_back(keys.begin(), keys.end());
  }
  const UnionResult r = tree_merge(inputs);
  EXPECT_EQ(r.keys, set_union_oracle(inputs));
  expect_maps_valid(r, inputs);
  // Collapse happened: the union is far smaller than the total input.
  std::size_t total = 0;
  for (const auto& in : inputs) total += in.size();
  EXPECT_LT(r.keys.size(), total / 2);
}

class HashUnionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashUnionTest, SameSetAsTreeMergeWithValidMaps) {
  const std::size_t ways = GetParam();
  Rng rng(1000 + ways);
  std::vector<std::vector<key_t>> input_vecs;
  for (std::size_t i = 0; i < ways; ++i) {
    input_vecs.push_back(random_sorted_unique(rng, 30, 200));
  }
  std::vector<std::span<const key_t>> inputs(input_vecs.begin(),
                                             input_vecs.end());
  const UnionResult r = hash_union(inputs);
  // hash_union's union is insertion-ordered, not sorted; compare as sets.
  std::vector<key_t> sorted = r.keys;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, set_union_oracle(input_vecs));
  expect_maps_valid(r, input_vecs);
}

INSTANTIATE_TEST_SUITE_P(Ways, HashUnionTest, ::testing::Values(1, 2, 8, 16));

}  // namespace
}  // namespace kylix
