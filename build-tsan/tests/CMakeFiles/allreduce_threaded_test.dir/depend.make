# Empty dependencies file for allreduce_threaded_test.
# This may be replaced when dependencies are built.
