#include "sparse/merge.hpp"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/check.hpp"
#include "sparse/kernels/kernels.hpp"

namespace kylix {

namespace {

/// Append src[lo, hi) to the union in one bulk copy (vector::insert lowers
/// to memmove) and fill the matching map entries with consecutive union
/// positions — the memcpy-tail form of "everything left comes from one side".
void bulk_take(std::span<const key_t> src, std::size_t lo, std::size_t hi,
               std::vector<key_t>& keys, PosMap& map) {
  auto out = static_cast<pos_t>(keys.size());
  keys.insert(keys.end(), src.begin() + static_cast<std::ptrdiff_t>(lo),
              src.begin() + static_cast<std::ptrdiff_t>(hi));
  for (std::size_t p = lo; p < hi; ++p) map[p] = out++;
}

/// First index >= `from` with a[idx] >= key: exponential probe to bracket
/// the answer in a window of size <= 2^ceil(log gap), then binary search
/// only that window. O(log gap) instead of O(log n) per probe, and O(1)
/// when the next short-side key is nearby.
std::size_t gallop(std::span<const key_t> a, std::size_t from, key_t key) {
  if (from >= a.size() || a[from] >= key) return from;
  std::size_t offset = 1;
  while (from + offset < a.size() && a[from + offset] < key) offset <<= 1;
  const auto lo = a.begin() + static_cast<std::ptrdiff_t>(from + (offset >> 1));
  const auto hi = a.begin() + static_cast<std::ptrdiff_t>(
                                  std::min(from + offset, a.size()));
  return static_cast<std::size_t>(std::lower_bound(lo, hi, key) - a.begin());
}

/// Skewed-size union: for each key of the short side, gallop over the long
/// side and bulk-copy the keys it skips. Total cost O(short * log(long/short)
/// + long/memcpy-speed) instead of a compare+branch per long element.
void gallop_union(std::span<const key_t> lng, std::span<const key_t> shrt,
                  std::vector<key_t>& keys, PosMap& map_long,
                  PosMap& map_short) {
  std::size_t i = 0;
  for (std::size_t j = 0; j < shrt.size(); ++j) {
    const std::size_t idx = gallop(lng, i, shrt[j]);
    bulk_take(lng, i, idx, keys, map_long);
    i = idx;
    const auto out = static_cast<pos_t>(keys.size());
    if (i < lng.size() && lng[i] == shrt[j]) {
      keys.push_back(lng[i]);
      map_long[i++] = out;
    } else {
      keys.push_back(shrt[j]);
    }
    map_short[j] = out;
  }
  bulk_take(lng, i, lng.size(), keys, map_long);
}

}  // namespace

void merge_union_into(std::span<const key_t> a, std::span<const key_t> b,
                      std::vector<key_t>& keys, PosMap& map_a, PosMap& map_b) {
  keys.clear();
  keys.reserve(a.size() + b.size());
  map_a.resize(a.size());
  map_b.resize(b.size());

  const std::size_t ratio = kernels::kernel_tuning().gallop_ratio;
  if (a.size() >= ratio * b.size()) {
    gallop_union(a, b, keys, map_a, map_b);
    return;
  }
  if (b.size() >= ratio * a.size()) {
    gallop_union(b, a, keys, map_b, map_a);
    return;
  }

  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const auto out = static_cast<pos_t>(keys.size());
    if (a[i] < b[j]) {
      keys.push_back(a[i]);
      map_a[i++] = out;
    } else if (b[j] < a[i]) {
      keys.push_back(b[j]);
      map_b[j++] = out;
    } else {
      keys.push_back(a[i]);
      map_a[i++] = out;
      map_b[j++] = out;
    }
  }
  // One side is exhausted: the other tail transfers as a single bulk copy.
  bulk_take(a, i, a.size(), keys, map_a);
  bulk_take(b, j, b.size(), keys, map_b);
}

UnionResult merge_union(std::span<const key_t> a, std::span<const key_t> b) {
  UnionResult result;
  result.maps.assign(2, {});
  merge_union_into(a, b, result.keys, result.maps[0], result.maps[1]);
  return result;
}

namespace {

void identity_map(PosMap& map, std::size_t n) {
  map.resize(n);
  for (std::size_t p = 0; p < n; ++p) map[p] = static_cast<pos_t>(p);
}

}  // namespace

void tree_merge_into(std::span<const std::span<const key_t>> inputs,
                     UnionResult& out, MergeScratch& scratch) {
  const std::size_t k = inputs.size();
  out.maps.resize(k);
  if (k == 0) {
    out.keys.clear();
    return;
  }
  if (k == 1) {
    out.keys.assign(inputs[0].begin(), inputs[0].end());
    identity_map(out.maps[0], inputs[0].size());
    return;
  }

  // Level 0: 2-way merge adjacent input pairs; the pair maps ARE the leaf
  // maps at this level, so write them straight into the output slots. (Not
  // via map_a/map_b + swap: that would rotate buffers between the output
  // and the scratch on every call, so warm capacities never settle.)
  auto& runs0 = scratch.runs[0];
  const std::size_t nruns0 = (k + 1) / 2;
  if (runs0.size() < nruns0) runs0.resize(nruns0);
  for (std::size_t j = 0; j < k / 2; ++j) {
    merge_union_into(inputs[2 * j], inputs[2 * j + 1], runs0[j],
                     out.maps[2 * j], out.maps[2 * j + 1]);
  }
  if (k % 2 == 1) {
    runs0[nruns0 - 1].assign(inputs[k - 1].begin(), inputs[k - 1].end());
    identity_map(out.maps[k - 1], inputs[k - 1].size());
  }

  // Upper levels: ping-pong runs between the two arenas, composing every
  // affected leaf map with its side's 2-way map. Run j at the level with
  // `leaf_span` leaves per run covers leaves [j·leaf_span, (j+1)·leaf_span).
  std::size_t count = nruns0;
  std::size_t level = 0;
  while (count > 1) {
    auto& cur = scratch.runs[level & 1];
    auto& nxt = scratch.runs[(level + 1) & 1];
    const std::size_t nnext = (count + 1) / 2;
    if (nxt.size() < nnext) nxt.resize(nnext);
    const std::size_t leaf_span = std::size_t{1} << (level + 1);
    for (std::size_t j = 0; j < count / 2; ++j) {
      merge_union_into(cur[2 * j], cur[2 * j + 1], nxt[j], scratch.map_a,
                       scratch.map_b);
      const std::size_t a_lo = 2 * j * leaf_span;
      const std::size_t a_hi = std::min(a_lo + leaf_span, k);
      const std::size_t b_hi = std::min(a_hi + leaf_span, k);
      for (std::size_t leaf = a_lo; leaf < a_hi; ++leaf) {
        for (pos_t& p : out.maps[leaf]) p = scratch.map_a[p];
      }
      for (std::size_t leaf = a_hi; leaf < b_hi; ++leaf) {
        for (pos_t& p : out.maps[leaf]) p = scratch.map_b[p];
      }
    }
    // An odd trailing run passes through unchanged (its leaf maps already
    // address its keys); swap keeps both buffers inside the scratch.
    if (count % 2 == 1) std::swap(nxt[nnext - 1], cur[count - 1]);
    count = nnext;
    ++level;
  }
  std::swap(out.keys, scratch.runs[level & 1][0]);
}

void union_into(std::span<const std::span<const key_t>> inputs,
                UnionResult& out, MergeScratch& scratch) {
  std::size_t total = 0;
  for (const auto& in : inputs) total += in.size();
  if (kernels::choose_union_kernel(inputs.size(), total) ==
      kernels::UnionKernel::kKWay) {
    kernels::kway_merge_into(inputs, out, scratch.kway);
  } else {
    tree_merge_into(inputs, out, scratch);
  }
}

UnionResult tree_merge(std::span<const std::span<const key_t>> inputs) {
  UnionResult out;
  MergeScratch scratch;
  tree_merge_into(inputs, out, scratch);
  return out;
}

UnionResult tree_merge(const std::vector<std::vector<key_t>>& inputs) {
  std::vector<std::span<const key_t>> spans(inputs.begin(), inputs.end());
  return tree_merge(spans);
}

UnionResult hash_union(std::span<const std::span<const key_t>> inputs) {
  UnionResult result;
  std::unordered_map<key_t, pos_t> positions;
  std::size_t total = 0;
  for (const auto& in : inputs) total += in.size();
  positions.reserve(total);
  result.maps.reserve(inputs.size());
  for (const auto& in : inputs) {
    PosMap map(in.size());
    for (std::size_t p = 0; p < in.size(); ++p) {
      const auto [it, inserted] = positions.try_emplace(
          in[p], static_cast<pos_t>(result.keys.size()));
      if (inserted) result.keys.push_back(in[p]);
      map[p] = it->second;
    }
    result.maps.push_back(std::move(map));
  }
  return result;
}

}  // namespace kylix
