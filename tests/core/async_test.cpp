// AsyncExecutor functional suite: resumable-node multiplexing of many
// in-flight plan replays. Covers clean multi-stream bit-identity against
// the serial executor, the pending-admission path (more streams than
// lanes), strided and chunked-streaming replays, modeled-clock latency
// accounting (overlap must beat the serialized schedule), fault-script
// replays against the BspEngine+FaultChannel oracle, flight-recorder
// stream events, reset()/resubmit reuse, and the multi-worker scheduler
// (the tsan lane: values must not depend on thread interleaving).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "cluster/fault_plan.hpp"
#include "cluster/netmodel.hpp"
#include "comm/bsp.hpp"
#include "comm/fault_channel.hpp"
#include "core/allreduce.hpp"
#include "core/async_executor.hpp"
#include "obs/flight_recorder.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

using testing::Workload;
using testing::random_workload;

/// Compile one plan for the workload through a throwaway allreduce.
template <typename V>
std::shared_ptr<const CollectivePlan> compile_plan(const Topology& topo,
                                                   const Workload<V>& w) {
  BspEngine<V> engine(topo.num_machines());
  SparseAllreduce<V, OpSum, BspEngine<V>> compiler(&engine, topo);
  auto plan = compiler.compile(w.in_sets, w.out_sets);
  EXPECT_NE(plan, nullptr);
  return plan;
}

/// Serial reference: replay the plan once on a fresh BspEngine (optionally
/// fault-wrapped), mirroring one async stream.
template <typename V>
std::vector<std::vector<V>> serial_replay(
    const std::shared_ptr<const CollectivePlan>& plan,
    std::vector<std::vector<V>> values, std::uint32_t stride = 1,
    bool streaming = false, std::uint64_t chunk_override = 0,
    FaultPlan* faults = nullptr) {
  const rank_t m = plan->num_ranks();
  BspEngine<V> engine(m);
  std::optional<FaultChannel<V>> channel;
  if (faults != nullptr) {
    channel.emplace(faults);
    engine.set_fault_channel(&*channel);
  }
  SparseAllreduce<V, OpSum, BspEngine<V>> ar(&engine, plan->topology());
  ar.configure(plan);
  ar.set_streaming(streaming);
  ar.set_chunk_bytes(chunk_override);
  return ar.reduce_strided(std::move(values), stride);
}

TEST(AsyncExecutor, ManyStreamsBitIdenticalToSerialReplay) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  auto w = random_workload<float>(m, 180, 0.2, 0.4, 901);
  const auto plan = compile_plan(topo, w);

  AsyncExecutor<float> ax;
  typename AsyncExecutor<float>::Options opts;
  opts.window = 3;  // fewer lanes than streams: exercises pending admission
  ax.bind(plan, opts);

  constexpr int kStreams = 8;
  std::vector<Workload<float>> inputs;
  std::vector<std::uint32_t> tags;
  for (int i = 0; i < kStreams; ++i) {
    auto wi = w;
    for (auto& values : wi.out_values) {
      for (auto& v : values) v += static_cast<float>(i);
    }
    tags.push_back(ax.submit(wi.out_values));
    inputs.push_back(std::move(wi));
  }
  ax.drain();
  for (int i = 0; i < kStreams; ++i) {
    SCOPED_TRACE("stream " + std::to_string(i));
    const auto serial = serial_replay(plan, inputs[i].out_values);
    testing::expect_matches_oracle<float>(inputs[i], serial);
    EXPECT_EQ(ax.take_result(tags[i]), serial);
    EXPECT_FALSE(ax.degraded_report(tags[i]).degraded);
    // Per-stream telemetry matches the serial executor's.
    BspEngine<float> engine(m);
    SparseAllreduce<float, OpSum, BspEngine<float>> ar(&engine, topo);
    ar.configure(plan);
    (void)ar.reduce(inputs[i].out_values);
    EXPECT_EQ(ax.stream_stats(tags[i]).letters, ar.stream_stats().letters);
    EXPECT_EQ(ax.stream_stats(tags[i]).chunks, ar.stream_stats().chunks);
  }
}

TEST(AsyncExecutor, StridedAndStreamedReplaysMatchSerial) {
  const Topology topo({3, 3});
  const rank_t m = topo.num_machines();
  auto w = random_workload<double>(m, 150, 0.25, 0.4, 902);
  const auto plan = compile_plan(topo, w);

  // Interleave 2 payloads key-major, as reduce_strided expects.
  std::vector<std::vector<double>> strided(m);
  for (rank_t r = 0; r < m; ++r) {
    for (std::size_t p = 0; p < w.out_values[r].size(); ++p) {
      strided[r].push_back(w.out_values[r][p]);
      strided[r].push_back(w.out_values[r][p] * 3 + 1);
    }
  }

  AsyncExecutor<double> ax;
  typename AsyncExecutor<double>::Options opts;
  opts.window = 4;
  opts.stride = 2;
  opts.streaming = true;
  opts.chunk_bytes_override = 128;  // tiny chunks: force real chunking
  ax.bind(plan, opts);
  std::vector<std::uint32_t> tags;
  for (int i = 0; i < 4; ++i) tags.push_back(ax.submit(strided));
  ax.drain();
  const auto serial = serial_replay(plan, strided, 2, true, 128);
  for (const std::uint32_t tag : tags) {
    EXPECT_EQ(ax.take_result(tag), serial);
    EXPECT_TRUE(ax.stream_stats(tag).streamed);
    EXPECT_GT(ax.stream_stats(tag).max_chunks_per_letter, 1u);
  }
}

TEST(AsyncExecutor, OverlappedStreamsBeatSerializedModeledMakespan) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  auto w = random_workload<float>(m, 400, 0.3, 0.5, 903);
  const auto plan = compile_plan(topo, w);
  const NetworkModel net;
  const ComputeModel compute;

  constexpr int kStreams = 8;
  auto run = [&](std::uint32_t window) {
    AsyncExecutor<float> ax;
    typename AsyncExecutor<float>::Options opts;
    opts.window = window;
    opts.network = &net;
    opts.compute = &compute;
    ax.bind(plan, opts);
    for (int i = 0; i < kStreams; ++i) (void)ax.submit(w.out_values);
    ax.drain();
    EXPECT_EQ(ax.completion_latencies().size(), kStreams);
    for (const double lat : ax.completion_latencies()) EXPECT_GT(lat, 0.0);
    return ax.makespan_seconds();
  };
  const double serialized = run(1);
  const double overlapped = run(kStreams);
  EXPECT_GT(serialized, 0.0);
  // Overlap must recover real idle time, not round to the same schedule.
  EXPECT_LT(overlapped, serialized);
  EXPECT_GT(serialized / overlapped, 1.1);
}

TEST(AsyncExecutor, FaultedStreamsMatchSerialFaultChannelReplay) {
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  auto w = random_workload<float>(m, 160, 0.25, 0.45, 904);
  const auto plan = compile_plan(topo, w);

  auto make_faults = [&](std::uint64_t seed) {
    FaultPlan faults(m, seed);
    FaultPlan::TransientRates rates;
    rates.drop = 0.1;
    rates.duplicate = 0.08;
    rates.delay = 0.08;
    faults.set_transient_rates(rates);
    faults.crash_at_round(2, 1);  // rank 2 dies at the second down round
    return faults;
  };

  // Async: each stream gets its own identically-seeded FaultPlan.
  constexpr int kStreams = 3;
  std::vector<FaultPlan> async_faults;
  for (int i = 0; i < kStreams; ++i) {
    async_faults.push_back(make_faults(55));
  }
  AsyncExecutor<float> ax;
  typename AsyncExecutor<float>::Options opts;
  opts.window = kStreams;
  ax.bind(plan, opts);
  std::vector<std::uint32_t> tags;
  for (int i = 0; i < kStreams; ++i) {
    tags.push_back(ax.submit(w.out_values, &async_faults[i]));
  }
  ax.drain();

  FaultPlan serial_faults = make_faults(55);
  const auto serial = serial_replay(plan, w.out_values, 1, false, 0,
                                    &serial_faults);
  EXPECT_TRUE(serial[2].empty()) << "crashed rank yields no result";
  const FaultStats& oracle = serial_faults.stats();
  EXPECT_GT(oracle.dropped + oracle.duplicated + oracle.delayed, 0u);
  for (const std::uint32_t tag : tags) {
    EXPECT_EQ(ax.take_result(tag), serial);
    const FaultStats& got = ax.fault_stats(tag);
    EXPECT_EQ(got.crashes, oracle.crashes);
    EXPECT_EQ(got.dropped, oracle.dropped);
    EXPECT_EQ(got.duplicated, oracle.duplicated);
    EXPECT_EQ(got.delayed, oracle.delayed);
    EXPECT_FALSE(ax.degraded_report(tag).degraded)
        << "plain-channel faults degrade ranks, not groups";
  }
}

TEST(AsyncExecutor, RecorderSeesAdmitAndCompletePerStream) {
  const Topology topo({4});
  const rank_t m = topo.num_machines();
  auto w = random_workload<float>(m, 80, 0.3, 0.5, 905);
  const auto plan = compile_plan(topo, w);
  obs::FlightRecorder recorder(m);

  AsyncExecutor<float> ax;
  typename AsyncExecutor<float>::Options opts;
  opts.window = 2;
  opts.recorder = &recorder;
  ax.bind(plan, opts);
  constexpr int kStreams = 5;
  for (int i = 0; i < kStreams; ++i) (void)ax.submit(w.out_values);
  ax.drain();

  int admits = 0;
  int completes = 0;
  for (const obs::FlightEvent& e : recorder.merged_events()) {
    if (e.kind == obs::FlightEventKind::kStreamAdmit) ++admits;
    if (e.kind == obs::FlightEventKind::kStreamComplete) ++completes;
  }
  EXPECT_EQ(admits, kStreams);
  EXPECT_EQ(completes, kStreams);
  EXPECT_STREQ(obs::flight_event_kind_name(
                   obs::FlightEventKind::kStreamComplete),
               "stream-complete");
}

TEST(AsyncExecutor, ResetReplaysNextBatchIdentically) {
  const Topology topo({3, 2});
  const rank_t m = topo.num_machines();
  auto w = random_workload<float>(m, 120, 0.25, 0.4, 906);
  const auto plan = compile_plan(topo, w);
  const auto serial = serial_replay(plan, w.out_values);

  AsyncExecutor<float> ax;
  typename AsyncExecutor<float>::Options opts;
  opts.window = 2;
  ax.bind(plan, opts);
  for (int batch = 0; batch < 3; ++batch) {
    SCOPED_TRACE("batch " + std::to_string(batch));
    std::vector<std::uint32_t> tags;
    for (int i = 0; i < 4; ++i) tags.push_back(ax.submit(w.out_values));
    ax.drain();
    for (const std::uint32_t tag : tags) {
      EXPECT_EQ(ax.take_result(tag), serial);
    }
    ax.reset();
  }
}

TEST(AsyncExecutor, MultiWorkerSchedulerIsBitIdenticalToSingleWorker) {
  // The tsan lane: real threads drive the same nodes behind the scheduler
  // lock. Stream values depend only on sorted complete inboxes, so any
  // interleaving must reproduce the single-worker results exactly.
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  auto w = random_workload<float>(m, 250, 0.25, 0.45, 907);
  const auto plan = compile_plan(topo, w);

  constexpr int kStreams = 6;
  auto run = [&](std::uint32_t workers) {
    AsyncExecutor<float> ax;
    typename AsyncExecutor<float>::Options opts;
    opts.window = 4;
    opts.workers = workers;
    ax.bind(plan, opts);
    std::vector<std::uint32_t> tags;
    for (int i = 0; i < kStreams; ++i) {
      auto values = w.out_values;
      for (auto& v : values[0]) v += static_cast<float>(i);
      tags.push_back(ax.submit(std::move(values)));
    }
    ax.drain();
    std::vector<std::vector<std::vector<float>>> results;
    for (const std::uint32_t tag : tags) {
      results.push_back(ax.take_result(tag));
    }
    return results;
  };
  const auto single = run(1);
  const auto threaded = run(4);
  ASSERT_EQ(single.size(), threaded.size());
  for (std::size_t i = 0; i < single.size(); ++i) {
    EXPECT_EQ(single[i], threaded[i]) << "stream " << i;
  }
}

}  // namespace
}  // namespace kylix
