// Host wall-clock comparison of the simulation engines (BENCH_engines.json).
//
// Unlike the figure benches, which report the *modeled* cluster time, this
// bench measures real host seconds: how fast the simulator itself turns the
// crank. Three questions:
//   1. engine throughput — sequential BspEngine vs the host-parallel
//      ParallelBspEngine (same trace, same results, bit-identical);
//   2. steady-state vs cold — the scratch/pool recycling means iteration 2+
//      runs allocation-free, so warm reduces beat the cold first pass;
//   3. merge scratch ablation — allocating tree_merge vs the reusable
//      tree_merge_into on the same 64-way key sets;
//   4. plan reuse — per-iteration configure+reduce (the combined mode)
//      vs a warm cached-plan replay (configure_cached + reduce), plus the
//      strided multi-payload amortization (k interleaved payloads through
//      one plan vs k single replays). Gated by tools/bench_check.sh:
//      cached replay must beat per-iteration configuration;
//   5. async overlap — kInflight concurrent streams through the
//      AsyncExecutor (window=k) vs the same streams strictly serialized
//      (window=1), on the modeled network clock: aggregate reduces/sec and
//      per-stream p50/p99 completion latency. Gated >= 1.3x by
//      tools/bench_check.sh, with per-stream bit-identity required.
//
// Timing loops run without observers (measured engines are bare); a separate
// instrumented pass per preset then routes the run through the telemetry
// subsystem (src/obs): a MetricsRegistry fed by TelemetryObserver plus
// per-layer byte counters from the trace, embedded verbatim in the JSON as
// each preset's "telemetry" object.
//
// The parallel engine's speedup scales with physical cores; the JSON
// records hardware_concurrency, the affinity-visible CPU count, and
// engine_threads so a 1-core CI container's ~1x is interpretable.
// Threads: argv[1] or KYLIX_BENCH_THREADS, default
// hardware concurrency. Output: argv[2] or BENCH_engines.json.
#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <fstream>
#include <thread>

#ifdef __linux__
#include <sched.h>
#endif

#include "bench_common.hpp"

namespace {

using namespace kylix;

struct ReduceStats {
  double configure_s = 0;
  double cold_reduce_s = 0;
  double warm_mean_s = 0;
  double warm_min_s = 0;
  std::vector<std::vector<real_t>> results;
};

constexpr int kWarmups = 2;
constexpr int kTimed = 3;
constexpr std::uint32_t kPayloads = 4;

struct PlanReuseStats {
  double combined_per_iter_s = 0;   ///< reduce_with_config every iteration
  double replay_per_iter_s = 0;     ///< configure_cached (hit) + reduce
  double single_reduce_s = 0;       ///< one stride-1 replay
  double strided_reduce_s = 0;      ///< one k-payload strided replay
  bool strided_identical = false;   ///< strided == k independent replays
};

/// The plan-reuse ablation on a preset's real key sets: time the combined
/// per-iteration path against warm cached replay, then push kPayloads
/// interleaved vectors through the plan and check bit-identity against
/// independent replays.
PlanReuseStats run_plan_reuse(BspEngine<real_t>& engine,
                              const bench::Dataset& data,
                              const Topology& topology) {
  PlanReuseStats stats;
  PlanCache cache(4);
  SparseAllreduce<real_t, OpSum, BspEngine<real_t>> cached(&engine, topology);
  (void)cached.configure_cached(cache, data.in_sets, data.out_sets);
  for (int i = 0; i < kWarmups; ++i) (void)cached.reduce(data.out_values);
  for (int i = 0; i < kTimed; ++i) {
    bench::WallTimer t;
    (void)cached.configure_cached(cache, data.in_sets, data.out_sets);
    (void)cached.reduce(data.out_values);
    stats.replay_per_iter_s += t.seconds() / kTimed;
    bench::WallTimer t2;
    SparseAllreduce<real_t, OpSum, BspEngine<real_t>> fresh(&engine,
                                                            topology);
    (void)fresh.reduce_with_config(data.in_sets, data.out_sets,
                                   data.out_values);
    stats.combined_per_iter_s += t2.seconds() / kTimed;
  }

  // Multi-payload amortization: payload j shifts every value by j, so the
  // independent replays double as the bit-identity oracle.
  std::vector<std::vector<real_t>> strided(data.out_values.size());
  std::vector<std::vector<std::vector<real_t>>> independent(kPayloads);
  for (std::uint32_t j = 0; j < kPayloads; ++j) {
    auto payload = data.out_values;
    for (auto& values : payload) {
      for (auto& v : values) v += static_cast<real_t>(j);
    }
    independent[j] = cached.reduce(payload);
    for (std::size_t r = 0; r < payload.size(); ++r) {
      strided[r].resize(payload[r].size() * kPayloads);
      for (std::size_t p = 0; p < payload[r].size(); ++p) {
        strided[r][p * kPayloads + j] = payload[r][p];
      }
    }
  }
  stats.single_reduce_s = 1e30;
  stats.strided_reduce_s = 1e30;
  std::vector<std::vector<real_t>> strided_results;
  for (int i = 0; i < kTimed; ++i) {
    bench::WallTimer t;
    (void)cached.reduce(data.out_values);
    stats.single_reduce_s = std::min(stats.single_reduce_s, t.seconds());
    bench::WallTimer t2;
    strided_results = cached.reduce_strided(strided, kPayloads);
    stats.strided_reduce_s = std::min(stats.strided_reduce_s, t2.seconds());
  }
  stats.strided_identical = true;
  for (std::size_t r = 0; r < strided_results.size(); ++r) {
    for (std::uint32_t j = 0; j < kPayloads; ++j) {
      for (std::size_t p = 0; p < independent[j][r].size(); ++p) {
        if (strided_results[r][p * kPayloads + j] != independent[j][r][p]) {
          stats.strided_identical = false;
        }
      }
    }
  }
  return stats;
}

struct StreamingStats {
  std::uint64_t chunk_bytes = 0;
  std::uint32_t stride = 1;          ///< payloads interleaved per position
  std::uint32_t max_chunks = 1;      ///< chunks per letter at the widest edge
  std::uint64_t chunks_sent = 0;
  std::uint64_t blocks_flushed = 0;
  double overlap_ratio = 0;
  double letter_modeled_s = 0;       ///< barriered letter-at-once reduce
  double streamed_modeled_s = 0;     ///< pipelined chunked reduce
  std::uint64_t peak_stream_bytes = 0;
  std::uint64_t peak_letter_bytes = 0;
  bool identical = false;            ///< streamed results == letter results
};

/// Streaming pays off in the big-letter regime: chunks must stay at or
/// above the Fig. 2 efficiency knee, so the letters being split have to be
/// several knees wide. The presets' single-payload letters are *below* the
/// scaled knee (that is the autotuner's packet-floor operating point), so
/// the ablation drives the multi-payload strided replay — the repo's
/// natural large-payload mode — whose letters scale with the stride.
constexpr std::uint32_t kStreamStride = 16;

/// The streaming ablation (DESIGN §9), on the modeled network clock: replay
/// the stride-16 reduce letter-at-once and streamed, compare the barriered
/// time against the pipelined one, and check the streamed results are
/// bit-identical. The chunk size sweeps the knee's neighborhood and keeps
/// the best pipelined speedup — splitting finer multiplies the unhideable
/// per-chunk stack overhead, splitting coarser starves the pipeline, so
/// the sweep is U-shaped with an interior optimum.
StreamingStats run_streaming(const bench::Dataset& data,
                             const Topology& topology) {
  const NetworkModel net = bench::scaled_network();
  std::vector<std::vector<real_t>> interleaved(data.out_values.size());
  for (std::size_t r = 0; r < data.out_values.size(); ++r) {
    interleaved[r].resize(data.out_values[r].size() * kStreamStride);
    for (std::size_t p = 0; p < data.out_values[r].size(); ++p) {
      for (std::uint32_t c = 0; c < kStreamStride; ++c) {
        interleaved[r][p * kStreamStride + c] =
            data.out_values[r][p] + static_cast<real_t>(c);
      }
    }
  }
  const auto reduce_once = [&](std::uint64_t chunk_bytes,
                               TimingAccumulator& timing, StreamStats& stats) {
    BspEngine<real_t> engine(topology.num_machines(), nullptr, nullptr,
                             &timing);
    SparseAllreduce<real_t, OpSum, BspEngine<real_t>> allreduce(&engine,
                                                                topology);
    allreduce.set_streaming(chunk_bytes != 0);
    allreduce.set_chunk_bytes(chunk_bytes);
    allreduce.configure(data.in_sets, data.out_sets);
    auto results = allreduce.reduce_strided(interleaved, kStreamStride);
    stats = allreduce.stream_stats();
    return results;
  };

  StreamingStats out;
  out.stride = kStreamStride;
  TimingAccumulator letter_timing(topology.num_machines(), net,
                                  ComputeModel{}, /*threads=*/1);
  StreamStats letter_stats;
  const auto letter_results = reduce_once(0, letter_timing, letter_stats);
  out.letter_modeled_s = letter_timing.pipelined_reduce_time(1);
  out.peak_letter_bytes = letter_stats.peak_letter_buffer_bytes;

  for (std::uint64_t chunk = 512u << 10; chunk >= 32u << 10; chunk /= 2) {
    TimingAccumulator timing(topology.num_machines(), net, ComputeModel{},
                             /*threads=*/1);
    StreamStats stats;
    const auto streamed_results = reduce_once(chunk, timing, stats);
    const std::uint32_t k = std::max(1u, stats.max_chunks_per_letter);
    if (k < 2) continue;  // nothing split: not a streamed data point
    const double streamed_s = timing.pipelined_reduce_time(k);
    if (out.chunk_bytes != 0 && streamed_s >= out.streamed_modeled_s) {
      continue;
    }
    out.chunk_bytes = chunk;
    out.max_chunks = k;
    out.chunks_sent = stats.chunks;
    out.blocks_flushed = stats.blocks_flushed;
    out.overlap_ratio = stats.overlap_ratio();
    out.streamed_modeled_s = streamed_s;
    out.peak_stream_bytes = stats.peak_stream_buffer_bytes;
    out.identical = streamed_results == letter_results;
  }
  return out;
}

struct AsyncStats {
  std::uint32_t inflight = 0;  ///< in-flight window of the overlapped run
  std::uint32_t streams = 0;   ///< total reduces pushed through the window
  double serialized_modeled_s = 0;  ///< window=1: one stream at a time
  double async_modeled_s = 0;       ///< window=kInflight: overlapped makespan
  double aggregate_speedup = 0;     ///< serialized / async makespan
  double serialized_reduces_per_s = 0;
  double async_reduces_per_s = 0;
  double latency_p50_s = 0;  ///< per-stream completion latency percentiles
  double latency_p99_s = 0;
  double tx_busy_s = 0;         ///< bottleneck NIC occupancy (lower bound)
  double tx_utilization = 0;    ///< tx_busy / async makespan
  bool bit_identical = false;   ///< every overlapped stream == its w=1 replay
};

constexpr std::uint32_t kInflight = 8;      ///< overlapped window
constexpr std::uint32_t kAsyncStreams = 16; ///< reduces pushed through it

/// The async-overlap ablation (DESIGN §11), on the modeled network clock:
/// push kAsyncStreams independent reduces through one AsyncExecutor with a
/// kInflight-stream window, against the serialized baseline — the *same*
/// executor, same modeled clocks, window=1, so the only variable is
/// overlap. A serialized replay pays NIC, compute, and handshake/
/// propagation latency sequentially on every stream's critical path; the
/// overlapped window keeps the per-rank NIC timelines busy with other
/// streams' letters during those gaps, and the paced admissions plus
/// gap-filling NIC model (DESIGN §11) let it run the bottleneck NIC at
/// ~95%+ occupancy. Aggregate reduces/sec is gated >= 1.3x by
/// tools/bench_check.sh; the window=1 results double as the per-stream
/// bit-identity oracle (the async fuzz suite separately proves both equal
/// the barriered ReduceExecutor replay), and per-stream completion
/// latencies feed the histogram quantile machinery for the p50/p99
/// columns.
AsyncStats run_async(const bench::Dataset& data, const Topology& topology) {
  const NetworkModel net = bench::scaled_network();
  const ComputeModel compute{};
  const rank_t m = topology.num_machines();
  BspEngine<real_t> compile_engine(m);
  SparseAllreduce<real_t, OpSum, BspEngine<real_t>> compiler(&compile_engine,
                                                             topology);
  const auto plan = compiler.compile(data.in_sets, data.out_sets);

  // Stream i shifts every value by i so streams are distinguishable.
  std::vector<std::vector<std::vector<real_t>>> inputs(kAsyncStreams);
  for (std::uint32_t i = 0; i < kAsyncStreams; ++i) {
    inputs[i] = data.out_values;
    for (auto& values : inputs[i]) {
      for (auto& v : values) v += static_cast<real_t>(i);
    }
  }

  AsyncStats out;
  out.inflight = kInflight;
  out.streams = kAsyncStreams;

  const auto run = [&](std::uint32_t window, double& makespan,
                       std::vector<double>& latencies) {
    AsyncExecutor<real_t> ax;
    AsyncExecutor<real_t>::Options opts;
    opts.window = window;
    opts.network = &net;
    opts.compute = &compute;
    ax.bind(plan, opts);
    std::vector<std::uint32_t> tags;
    tags.reserve(kAsyncStreams);
    for (std::uint32_t i = 0; i < kAsyncStreams; ++i) {
      tags.push_back(ax.submit(inputs[i]));
    }
    ax.drain();
    makespan = ax.makespan_seconds();
    latencies = ax.completion_latencies();
    out.tx_busy_s = ax.max_tx_busy_seconds();
    std::vector<std::vector<std::vector<real_t>>> results;
    results.reserve(kAsyncStreams);
    for (const std::uint32_t tag : tags) {
      results.push_back(ax.take_result(tag));
    }
    return results;
  };

  double serial_makespan = 0;
  std::vector<double> serial_latencies;
  const auto serial_results = run(1, serial_makespan, serial_latencies);
  out.serialized_modeled_s = serial_makespan;

  std::vector<double> latencies;
  const auto async_results = run(kInflight, out.async_modeled_s, latencies);
  out.bit_identical = async_results == serial_results;
  out.tx_utilization =
      out.async_modeled_s > 0 ? out.tx_busy_s / out.async_modeled_s : 0;

  std::atomic<bool> on{true};
  obs::Histogram latency_hist(&on, obs::exponential_bounds(1e-5, 1.2, 80));
  for (const double s : latencies) latency_hist.observe(s);
  out.latency_p50_s = latency_hist.quantile(0.5);
  out.latency_p99_s = latency_hist.quantile(0.99);
  out.aggregate_speedup = out.async_modeled_s > 0
                              ? out.serialized_modeled_s / out.async_modeled_s
                              : 0;
  out.serialized_reduces_per_s = out.serialized_modeled_s > 0
                                     ? kAsyncStreams / out.serialized_modeled_s
                                     : 0;
  out.async_reduces_per_s =
      out.async_modeled_s > 0 ? kAsyncStreams / out.async_modeled_s : 0;
  return out;
}

struct ObservabilityStats {
  double bare_min_s = 0;          ///< warm replay, no observer attached
  double instrumented_min_s = 0;  ///< metrics + recorder + watchdog, no tracer
  double disabled_min_s = 0;      ///< observer attached, every sink dark
  double overhead_instrumented = 0;  ///< instrumented/bare - 1
  double overhead_disabled = 0;      ///< disabled/bare - 1
  double p50_round_s = 0;
  double p99_round_s = 0;
  double p999_round_s = 0;
  std::uint64_t events_recorded = 0;
  std::uint64_t slow_rounds = 0;
  std::uint64_t stragglers = 0;
};

/// More samples than the throughput loops: the overhead gate compares two
/// warm minima, so each side gets enough draws to shake scheduler noise.
constexpr int kObsTimed = 7;
/// The overhead estimate is the MEDIAN of kObsRepeats *paired* ratios.
/// Measuring all bare repeats and then all instrumented repeats lets host
/// load drift between the two blocks masquerade as (even negative)
/// overhead; instead each repeat times bare, instrumented, and dark
/// back-to-back and contributes one ratio, so drift cancels within the
/// pair and the median shakes off the one-sided scheduler outliers. This
/// keeps the column inside the tight absolute band bench_check.sh gates on.
constexpr int kObsRepeats = 5;

/// The observability-overhead ablation (gated by tools/bench_check.sh on
/// the *absolute* deviation): the same warm reduce replayed bare, fully
/// instrumented (flight recorder + percentile histograms + anomaly
/// watchdog; no span tracer), and with the observer attached but every sink
/// disabled. The instrumented pass also yields the round-latency
/// percentiles via the histogram quantile API.
ObservabilityStats run_observability(const bench::Dataset& data,
                                     const Topology& topology,
                                     unsigned threads) {
  ObservabilityStats out;
  ParallelBspEngine<real_t> engine(bench::kMachines, threads);
  SparseAllreduce<real_t, OpSum, ParallelBspEngine<real_t>> allreduce(
      &engine, topology);
  allreduce.configure(data.in_sets, data.out_sets);
  const auto warm_min = [&]() {
    for (int i = 0; i < kWarmups; ++i) (void)allreduce.reduce(data.out_values);
    double best = 1e30;
    for (int i = 0; i < kObsTimed; ++i) {
      bench::WallTimer t;
      (void)allreduce.reduce(data.out_values);
      best = std::min(best, t.seconds());
    }
    return best;
  };

  obs::MetricsRegistry registry;
  obs::FlightRecorder recorder(bench::kMachines, /*per_rank_capacity=*/256,
                               /*global_capacity=*/1024);
  obs::AnomalyWatchdog::Options wopt;
  wopt.metrics = &registry;
  wopt.recorder = &recorder;
  obs::AnomalyWatchdog watchdog(bench::kMachines, wopt);
  obs::TelemetryObserver::Options opt;
  opt.metrics = &registry;
  opt.recorder = &recorder;
  opt.watchdog = &watchdog;
  obs::TelemetryObserver observer(/*tracer=*/nullptr, bench::kMachines, opt);
  // Sinks dark: the observer still rides along, but the recorder is
  // switched off and no metrics/watchdog are attached — the cost of having
  // the seam at all.
  obs::TelemetryObserver::Options dark_opt;
  dark_opt.recorder = &recorder;
  obs::TelemetryObserver dark(/*tracer=*/nullptr, bench::kMachines, dark_opt);

  std::array<double, kObsRepeats> bare;
  std::array<double, kObsRepeats> instrumented;
  std::array<double, kObsRepeats> disabled;
  std::array<double, kObsRepeats> ratio_instrumented;
  std::array<double, kObsRepeats> ratio_disabled;
  for (int r = 0; r < kObsRepeats; ++r) {
    engine.set_observer(nullptr);
    bare[r] = warm_min();
    engine.set_observer(&observer);
    recorder.set_enabled(true);
    instrumented[r] = warm_min();
    engine.set_observer(&dark);
    recorder.set_enabled(false);
    disabled[r] = warm_min();
    engine.set_observer(nullptr);
    ratio_instrumented[r] = instrumented[r] / bare[r];
    ratio_disabled[r] = disabled[r] / bare[r];
  }
  const auto median = [](std::array<double, kObsRepeats>& v) {
    std::sort(v.begin(), v.end());
    return v[kObsRepeats / 2];
  };
  out.bare_min_s = median(bare);
  out.instrumented_min_s = median(instrumented);
  out.disabled_min_s = median(disabled);
  out.overhead_instrumented = median(ratio_instrumented) - 1.0;
  out.overhead_disabled = median(ratio_disabled) - 1.0;

  const obs::Histogram::Snapshot rounds =
      registry
          .histogram("engine.round_seconds",
                     obs::exponential_bounds(1e-6, 10, 8))
          .snapshot();
  out.p50_round_s = rounds.quantile(0.5);
  out.p99_round_s = rounds.quantile(0.99);
  out.p999_round_s = rounds.quantile(0.999);
  out.events_recorded = recorder.recorded();
  out.slow_rounds = watchdog.slow_rounds();
  out.stragglers = watchdog.stragglers();
  return out;
}

template <typename Engine>
ReduceStats run_engine(Engine& engine, const bench::Dataset& data,
                       const Topology& topology) {
  ReduceStats stats;
  SparseAllreduce<real_t, OpSum, Engine> allreduce(&engine, topology);
  {
    bench::WallTimer t;
    allreduce.configure(data.in_sets, data.out_sets);
    stats.configure_s = t.seconds();
  }
  {
    bench::WallTimer t;
    stats.results = allreduce.reduce(data.out_values);
    stats.cold_reduce_s = t.seconds();
  }
  for (int i = 0; i < kWarmups; ++i) (void)allreduce.reduce(data.out_values);
  stats.warm_min_s = 1e30;
  for (int i = 0; i < kTimed; ++i) {
    bench::WallTimer t;
    (void)allreduce.reduce(data.out_values);
    const double s = t.seconds();
    stats.warm_mean_s += s / kTimed;
    stats.warm_min_s = std::min(stats.warm_min_s, s);
  }
  return stats;
}

void emit_engine(obs::JsonWriter& json, const char* name,
                 const ReduceStats& stats) {
  json.key(name);
  json.begin_object();
  json.key_value("configure_s", stats.configure_s);
  json.key_value("cold_reduce_s", stats.cold_reduce_s);
  json.key_value("warm_reduce_mean_s", stats.warm_mean_s);
  json.key_value("warm_reduce_min_s", stats.warm_min_s);
  json.end_object();
}

struct HierarchyStats {
  std::uint32_t cores = 1;                 ///< cores per machine (c)
  std::vector<std::uint32_t> inter_degrees;
  double flat_modeled_reduce_s = 0;        ///< flat butterfly, modeled clock
  double hier_modeled_reduce_s = 0;        ///< two-tier, incl. intra stage
  double modeled_speedup = 0;
  double intra_config_s = 0;
  double intra_down_s = 0;
  double intra_up_s = 0;
  double inter_down_s = 0;
  double inter_up_s = 0;
  double seq_warm_mean_s = 0;              ///< BspEngine warm, hier topology
  double par_warm_mean_s = 0;              ///< ParallelBspEngine warm, same
  double warm_speedup = 0;
  bool identical = false;                  ///< hier == flat, bit for bit
};

/// The two-tier ablation (DESIGN §13): fold the preset's first (largest)
/// butterfly degree into cores-per-machine, so the flat expansion of the
/// hierarchical topology is exactly the paper topology — the degree-d_1
/// network round becomes the leader's single-copy pass over co-located
/// member buffers. Modeled clocks come from a TimingAccumulator on the
/// sequential engine (flat charges inter rounds only; hierarchical splits
/// into intra memory-bus time plus the shortened inter schedule); the warm
/// wall-clock pair reruns the sequential-vs-parallel comparison on the
/// hierarchical plan, where per-host sharding gives the pool workers
/// contention-free intra rounds.
HierarchyStats run_hierarchy(const bench::Dataset& data,
                             const Topology& flat, unsigned threads) {
  HierarchyStats stats;
  stats.cores = flat.degree(1);
  std::vector<std::uint32_t> inter;
  for (std::uint16_t i = 2; i <= flat.num_layers(); ++i) {
    inter.push_back(flat.degree(i));
  }
  stats.inter_degrees = inter;
  const Topology hier(inter, stats.cores);

  const NetworkModel net = bench::scaled_network();
  // Both schedules run on the same physical hosts: c co-located ranks share
  // one NIC. The flat butterfly therefore gives each rank 1/c of the link
  // (CPU-side per-message costs — stack, handshake — stay per-rank), while
  // the hierarchical leaders own the full link and the member traffic rides
  // the memory bus. That asymmetry is the two-tier plan's whole case.
  NetworkModel flat_net = net;
  flat_net.bandwidth_bytes_per_s /= stats.cores;
  const ComputeModel compute;
  const auto modeled = [&](const Topology& topo, const NetworkModel& model,
                           TimingAccumulator& timing) {
    BspEngine<real_t> engine(bench::kMachines, nullptr, nullptr, &timing);
    SparseAllreduce<real_t, OpSum, BspEngine<real_t>> allreduce(
        &engine, topo, &compute);
    allreduce.set_network(&model);
    allreduce.configure(data.in_sets, data.out_sets);
    return allreduce.reduce(data.out_values);
  };
  TimingAccumulator flat_timing(bench::kMachines, flat_net, compute);
  const auto flat_results = modeled(flat, flat_net, flat_timing);
  TimingAccumulator hier_timing(bench::kMachines, net, compute);
  const auto hier_results = modeled(hier, net, hier_timing);
  stats.identical = hier_results == flat_results;

  const auto ft = flat_timing.times();
  const auto ht = hier_timing.times();
  stats.flat_modeled_reduce_s = ft.reduce();
  stats.hier_modeled_reduce_s = ht.reduce();
  stats.modeled_speedup = stats.hier_modeled_reduce_s > 0
                              ? stats.flat_modeled_reduce_s /
                                    stats.hier_modeled_reduce_s
                              : 0;
  stats.intra_config_s = ht.intra_config;
  stats.intra_down_s = ht.intra_down;
  stats.intra_up_s = ht.intra_up;
  stats.inter_down_s = ht.reduce_down;
  stats.inter_up_s = ht.reduce_up;

  BspEngine<real_t> seq_engine(bench::kMachines);
  const ReduceStats seq = run_engine(seq_engine, data, hier);
  ParallelBspEngine<real_t> par_engine(bench::kMachines, threads);
  const ReduceStats par = run_engine(par_engine, data, hier);
  stats.seq_warm_mean_s = seq.warm_mean_s;
  stats.par_warm_mean_s = par.warm_mean_s;
  stats.warm_speedup =
      par.warm_mean_s > 0 ? seq.warm_mean_s / par.warm_mean_s : 0;
  stats.identical = stats.identical && seq.results == par.results &&
                    seq.results == hier_results;
  return stats;
}

/// One instrumented configure+reduce on the parallel engine, populating
/// `registry` with the engine.* instruments plus per-layer byte counters
/// (layer<i>.<phase>_bytes / layer<i>.total_bytes) read off the trace.
void telemetry_pass(const bench::Dataset& data, const Topology& topology,
                    unsigned threads, obs::MetricsRegistry& registry) {
  Trace trace;
  obs::SpanTracer tracer;
  obs::TelemetryObserver::Options opt;
  opt.topology = &topology;
  opt.features = data.spec.num_vertices;
  opt.bytes_per_element = sizeof(real_t);
  opt.metrics = &registry;
  obs::TelemetryObserver observer(&tracer, bench::kMachines, opt);

  ParallelBspEngine<real_t> engine(bench::kMachines, threads, nullptr,
                                   &trace, nullptr);
  engine.set_observer(&observer);
  SparseAllreduce<real_t, OpSum, ParallelBspEngine<real_t>> allreduce(
      &engine, topology);
  allreduce.configure(data.in_sets, data.out_sets);
  (void)allreduce.reduce(data.out_values);

  const std::uint16_t layers = topology.num_layers();
  const auto config = trace.bytes_by_layer(Phase::kConfig, layers);
  const auto down = trace.bytes_by_layer(Phase::kReduceDown, layers);
  const auto up = trace.bytes_by_layer(Phase::kReduceUp, layers);
  for (std::uint16_t i = 0; i < layers; ++i) {
    const std::string prefix = "layer" + std::to_string(i + 1) + ".";
    registry.counter(prefix + "config_bytes").add(config[i]);
    registry.counter(prefix + "reduce_down_bytes").add(down[i]);
    registry.counter(prefix + "reduce_up_bytes").add(up[i]);
    registry.counter(prefix + "total_bytes")
        .add(config[i] + down[i] + up[i]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const unsigned hardware = std::thread::hardware_concurrency();
  unsigned threads = hardware;
  if (const char* env = std::getenv("KYLIX_BENCH_THREADS")) {
    threads = static_cast<unsigned>(std::atoi(env));
  }
  if (argc > 1) threads = static_cast<unsigned>(std::atoi(argv[1]));
  if (threads == 0) threads = 1;
  const char* out_path = argc > 2 ? argv[2] : "BENCH_engines.json";

  std::printf("# wall-clock engine bench: %u engine threads, %u hardware\n",
              threads, hardware);
  std::ofstream out(out_path);
  obs::JsonWriter json(out);
  json.begin_object();
  json.key_value("benchmark", std::string("wall_engines"));
  json.key_value("machines", static_cast<int>(bench::kMachines));
  // Containers and taskset often pin the process to fewer CPUs than
  // hardware_concurrency() reports; record both so thread-count columns in
  // the artifact can be interpreted (an affinity_cpus < hardware_concurrency
  // run is oversubscribed when engine_threads exceeds affinity_cpus).
  unsigned affinity = hardware;
#ifdef __linux__
  cpu_set_t cpuset;
  if (sched_getaffinity(0, sizeof(cpuset), &cpuset) == 0) {
    affinity = static_cast<unsigned>(CPU_COUNT(&cpuset));
  }
#endif
  json.key_value("hardware_concurrency", static_cast<int>(hardware));
  json.key_value("affinity_cpus", static_cast<int>(affinity));
  json.key_value("engine_threads", static_cast<int>(threads));
  json.key_value("warm_iterations", kTimed);
  json.key("presets");
  json.begin_array();

  for (const char* which : {"twitter", "yahoo"}) {
    const bench::Dataset data = bench::make_dataset(which);
    const Topology& topology = data.paper_topology;

    BspEngine<real_t> seq_engine(bench::kMachines);
    const ReduceStats seq = run_engine(seq_engine, data, topology);
    ParallelBspEngine<real_t> par_engine(bench::kMachines, threads);
    const ReduceStats par = run_engine(par_engine, data, topology);
    const bool identical = seq.results == par.results;
    const double speedup = par.warm_mean_s > 0
                               ? seq.warm_mean_s / par.warm_mean_s
                               : 0;

    obs::MetricsRegistry registry;
    telemetry_pass(data, topology, threads, registry);

    // Merge ablation on this preset's real key sets: one allocating
    // tree_merge vs a warmed tree_merge_into per timed round.
    std::vector<std::span<const kylix::key_t>> spans;
    spans.reserve(data.out_sets.size());
    for (const KeySet& set : data.out_sets) spans.push_back(set.keys());
    MergeScratch scratch;
    UnionResult merged;
    for (int i = 0; i < kWarmups; ++i) tree_merge_into(spans, merged, scratch);
    double fresh_s = 1e30;
    double warm_s = 1e30;
    for (int i = 0; i < kTimed; ++i) {
      bench::WallTimer t;
      (void)tree_merge(spans);
      fresh_s = std::min(fresh_s, t.seconds());
      bench::WallTimer t2;
      tree_merge_into(spans, merged, scratch);
      warm_s = std::min(warm_s, t2.seconds());
    }

    std::printf("%-14s seq warm %.4fs  par warm %.4fs  speedup %.2fx  "
                "identical %s\n",
                data.name.c_str(), seq.warm_mean_s, par.warm_mean_s, speedup,
                identical ? "yes" : "NO");
    std::printf("%-14s merge fresh %.5fs  scratch %.5fs  (%.2fx)\n",
                data.name.c_str(), fresh_s, warm_s,
                warm_s > 0 ? fresh_s / warm_s : 0);

    const StreamingStats stream = run_streaming(data, topology);
    const double stream_speedup =
        stream.streamed_modeled_s > 0
            ? stream.letter_modeled_s / stream.streamed_modeled_s
            : 0;
    std::printf("%-14s streamed stride-%u, %s chunks (k=%u): modeled %.4fs "
                "vs %.4fs letter (%.2fx), overlap %.2f, identical %s\n",
                data.name.c_str(), stream.stride,
                format_bytes(static_cast<double>(stream.chunk_bytes)).c_str(),
                stream.max_chunks, stream.streamed_modeled_s,
                stream.letter_modeled_s, stream_speedup,
                stream.overlap_ratio, stream.identical ? "yes" : "NO");

    const AsyncStats async_stats = run_async(data, topology);
    std::printf("%-14s async %u-inflight (%u streams): modeled %.4fs vs "
                "%.4fs serialized (%.2fx, %.1f vs %.1f reduces/s), latency "
                "p50 %.4gs p99 %.4gs, NIC util %.0f%%, identical %s\n",
                data.name.c_str(), async_stats.inflight, async_stats.streams,
                async_stats.async_modeled_s, async_stats.serialized_modeled_s,
                async_stats.aggregate_speedup, async_stats.async_reduces_per_s,
                async_stats.serialized_reduces_per_s,
                async_stats.latency_p50_s, async_stats.latency_p99_s,
                100.0 * async_stats.tx_utilization,
                async_stats.bit_identical ? "yes" : "NO");

    const ObservabilityStats obs_stats =
        run_observability(data, topology, threads);
    std::printf("%-14s obs overhead: instrumented %+.2f%%  disabled %+.2f%%  "
                "round p50 %.4gs p99 %.4gs p999 %.4gs  (%llu events)\n",
                data.name.c_str(), obs_stats.overhead_instrumented * 100,
                obs_stats.overhead_disabled * 100, obs_stats.p50_round_s,
                obs_stats.p99_round_s, obs_stats.p999_round_s,
                static_cast<unsigned long long>(obs_stats.events_recorded));

    const HierarchyStats hier = run_hierarchy(data, topology, threads);
    std::printf("%-14s hier c=%u: modeled reduce %.4fs vs %.4fs flat "
                "(%.2fx), intra %.4fs, warm par %.4fs vs seq %.4fs (%.2fx), "
                "identical %s\n",
                data.name.c_str(), hier.cores, hier.hier_modeled_reduce_s,
                hier.flat_modeled_reduce_s, hier.modeled_speedup,
                hier.intra_down_s + hier.intra_up_s, hier.par_warm_mean_s,
                hier.seq_warm_mean_s, hier.warm_speedup,
                hier.identical ? "yes" : "NO");

    const PlanReuseStats reuse = run_plan_reuse(seq_engine, data, topology);
    const double replay_speedup =
        reuse.replay_per_iter_s > 0
            ? reuse.combined_per_iter_s / reuse.replay_per_iter_s
            : 0;
    const double amortization =
        reuse.strided_reduce_s > 0
            ? kPayloads * reuse.single_reduce_s / reuse.strided_reduce_s
            : 0;
    std::printf("%-14s combined %.4fs/it  cached replay %.4fs/it (%.2fx)  "
                "%u-payload strided %.2fx vs %u singles, identical %s\n",
                data.name.c_str(), reuse.combined_per_iter_s,
                reuse.replay_per_iter_s, replay_speedup, kPayloads,
                amortization, kPayloads,
                reuse.strided_identical ? "yes" : "NO");

    json.begin_object();
    json.key_value("name", data.name);
    json.key("topology");
    json.begin_array();
    for (std::uint16_t i = 1; i <= topology.num_layers(); ++i) {
      json.value(static_cast<int>(topology.degree(i)));
    }
    json.end_array();
    emit_engine(json, "sequential", seq);
    emit_engine(json, "parallel", par);
    json.key_value("warm_speedup", speedup);
    json.key_value("results_bit_identical", identical);
    json.key("merge_ablation");
    json.begin_object();
    json.key_value("fresh_tree_merge_s", fresh_s);
    json.key_value("warm_tree_merge_into_s", warm_s);
    json.key_value("speedup", warm_s > 0 ? fresh_s / warm_s : 0);
    json.end_object();
    json.key("plan_reuse");
    json.begin_object();
    json.key_value("combined_per_iter_s", reuse.combined_per_iter_s);
    json.key_value("cached_replay_per_iter_s", reuse.replay_per_iter_s);
    json.key_value("cached_replay_speedup", replay_speedup);
    json.key_value("payloads", static_cast<int>(kPayloads));
    json.key_value("single_reduce_s", reuse.single_reduce_s);
    json.key_value("strided_reduce_s", reuse.strided_reduce_s);
    json.key_value("payload_amortization", amortization);
    json.key_value("strided_bit_identical", reuse.strided_identical);
    json.end_object();
    json.key("streaming");
    json.begin_object();
    json.key_value("chunk_bytes", stream.chunk_bytes);
    json.key_value("stride", static_cast<int>(stream.stride));
    json.key_value("max_chunks_per_letter",
                   static_cast<int>(stream.max_chunks));
    json.key_value("chunks_sent", stream.chunks_sent);
    json.key_value("blocks_flushed", stream.blocks_flushed);
    json.key_value("overlap_ratio", stream.overlap_ratio);
    json.key_value("letter_modeled_s", stream.letter_modeled_s);
    json.key_value("streamed_modeled_s", stream.streamed_modeled_s);
    json.key_value("modeled_speedup", stream_speedup);
    json.key_value("peak_stream_buffer_bytes", stream.peak_stream_bytes);
    json.key_value("peak_letter_buffer_bytes", stream.peak_letter_bytes);
    json.key_value("stream_bit_identical", stream.identical);
    json.end_object();
    json.key("async");
    json.begin_object();
    json.key_value("inflight", static_cast<int>(async_stats.inflight));
    json.key_value("streams", static_cast<int>(async_stats.streams));
    json.key_value("serialized_modeled_s", async_stats.serialized_modeled_s);
    json.key_value("async_modeled_s", async_stats.async_modeled_s);
    json.key_value("aggregate_speedup", async_stats.aggregate_speedup);
    json.key_value("serialized_reduces_per_s",
                   async_stats.serialized_reduces_per_s);
    json.key_value("async_reduces_per_s", async_stats.async_reduces_per_s);
    json.key_value("latency_p50_s", async_stats.latency_p50_s);
    json.key_value("latency_p99_s", async_stats.latency_p99_s);
    json.key_value("tx_busy_s", async_stats.tx_busy_s);
    json.key_value("tx_utilization", async_stats.tx_utilization);
    json.key_value("bit_identical", async_stats.bit_identical);
    json.end_object();
    json.key("hierarchy");
    json.begin_object();
    json.key_value("cores_per_machine", static_cast<int>(hier.cores));
    json.key("inter_degrees");
    json.begin_array();
    for (const std::uint32_t d : hier.inter_degrees) {
      json.value(static_cast<int>(d));
    }
    json.end_array();
    json.key_value("flat_modeled_reduce_s", hier.flat_modeled_reduce_s);
    json.key_value("hier_modeled_reduce_s", hier.hier_modeled_reduce_s);
    json.key_value("modeled_reduce_speedup", hier.modeled_speedup);
    json.key_value("intra_config_s", hier.intra_config_s);
    json.key_value("intra_down_s", hier.intra_down_s);
    json.key_value("intra_up_s", hier.intra_up_s);
    json.key_value("inter_down_s", hier.inter_down_s);
    json.key_value("inter_up_s", hier.inter_up_s);
    json.key_value("seq_warm_mean_s", hier.seq_warm_mean_s);
    json.key_value("par_warm_mean_s", hier.par_warm_mean_s);
    json.key_value("warm_speedup", hier.warm_speedup);
    json.key_value("results_bit_identical", hier.identical);
    json.end_object();
    json.key("observability");
    json.begin_object();
    json.key_value("bare_warm_min_s", obs_stats.bare_min_s);
    json.key_value("instrumented_warm_min_s", obs_stats.instrumented_min_s);
    json.key_value("disabled_warm_min_s", obs_stats.disabled_min_s);
    json.key_value("overhead_instrumented", obs_stats.overhead_instrumented);
    json.key_value("overhead_disabled", obs_stats.overhead_disabled);
    json.key_value("round_latency_p50_s", obs_stats.p50_round_s);
    json.key_value("round_latency_p99_s", obs_stats.p99_round_s);
    json.key_value("round_latency_p999_s", obs_stats.p999_round_s);
    json.key_value("events_recorded", obs_stats.events_recorded);
    json.key_value("slow_rounds", obs_stats.slow_rounds);
    json.key_value("stragglers", obs_stats.stragglers);
    json.end_object();
    json.key("telemetry");
    registry.write_json(json);
    json.end_object();
  }

  json.end_array();
  json.end_object();
  out << '\n';
  out.flush();
  if (!out.good()) {
    std::fprintf(stderr, "error: could not write %s\n", out_path);
    return 1;
  }
  std::printf("wrote %s\n", out_path);
  return 0;
}
