file(REMOVE_RECURSE
  "CMakeFiles/fig6_config_reduce.dir/fig6_config_reduce.cpp.o"
  "CMakeFiles/fig6_config_reduce.dir/fig6_config_reduce.cpp.o.d"
  "fig6_config_reduce"
  "fig6_config_reduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_config_reduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
