file(REMOVE_RECURSE
  "CMakeFiles/ablation_degrees.dir/ablation_degrees.cpp.o"
  "CMakeFiles/ablation_degrees.dir/ablation_degrees.cpp.o.d"
  "ablation_degrees"
  "ablation_degrees.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_degrees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
