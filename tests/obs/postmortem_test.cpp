#include "obs/postmortem.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "common/check.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"

namespace kylix::obs {
namespace {

std::string dump_to_string(const PostmortemInputs& inputs) {
  std::ostringstream out;
  write_postmortem(out, inputs);
  return out.str();
}

PostmortemInputs sample_inputs(FlightRecorder& recorder,
                               MetricsRegistry& metrics) {
  FlightEvent fault;
  fault.kind = FlightEventKind::kFault;
  fault.phase = Phase::kReduceDown;
  fault.layer = 2;
  fault.rank = 1;
  fault.src = 1;
  fault.dst = 3;
  fault.code = 1;  // FaultAction::kDrop
  fault.bytes = 4096;
  recorder.record(fault);

  FlightEvent recovery;
  recovery.kind = FlightEventKind::kRecovery;
  recovery.rank = 3;
  recovery.src = 1;
  recovery.dst = 3;
  recovery.code = 1;  // RecoveryAction::kRetry
  recovery.value = 2;
  recorder.record(recovery);

  metrics.counter("engine.faults.dropped").add(1);

  PostmortemInputs inputs;
  inputs.reason = "fault-injection";
  inputs.detail = "unit test \"with quotes\"";
  inputs.recorder = &recorder;
  inputs.metrics = &metrics;
  inputs.plan_fingerprint = 0xdeadbeefcafef00dull;
  return inputs;
}

TEST(Postmortem, WritesVersionedSchemaWithEvents) {
  FlightRecorder recorder(4);
  MetricsRegistry metrics;
  const std::string json =
      dump_to_string(sample_inputs(recorder, metrics));
  EXPECT_NE(json.find("\"kylix_postmortem\":1"), std::string::npos);
  EXPECT_NE(json.find("\"reason\":\"fault-injection\""), std::string::npos);
  EXPECT_NE(json.find("\"plan_fingerprint\":\"deadbeefcafef00d\""),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"fault\""), std::string::npos);
  EXPECT_NE(json.find("\"code_name\":\"drop\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"recovery\""), std::string::npos);
  EXPECT_NE(json.find("\"code_name\":\"retry\""), std::string::npos);
  // The detail's embedded quotes must come out escaped, not truncating the
  // document.
  EXPECT_NE(json.find("unit test \\\"with quotes\\\""), std::string::npos);
  EXPECT_NE(json.find("\"engine.faults.dropped\":1"), std::string::npos);
}

TEST(Postmortem, NullRecorderAndMetricsStillValid) {
  PostmortemInputs inputs;
  inputs.reason = "check-failure";
  const std::string json = dump_to_string(inputs);
  EXPECT_NE(json.find("\"events\":[]"), std::string::npos);
  // The empty document still round-trips through the renderer.
  const std::string text = render_postmortem(json);
  EXPECT_NE(text.find("check-failure"), std::string::npos);
}

TEST(Postmortem, RendererRoundTripsTheTimeline) {
  FlightRecorder recorder(4);
  MetricsRegistry metrics;
  const std::string json =
      dump_to_string(sample_inputs(recorder, metrics));
  const std::string text = render_postmortem(json);
  EXPECT_NE(text.find("postmortem: fault-injection"), std::string::npos);
  EXPECT_NE(text.find("plan fingerprint: deadbeefcafef00d"),
            std::string::npos);
  EXPECT_NE(text.find("fault"), std::string::npos);
  EXPECT_NE(text.find("1->3"), std::string::npos);
  EXPECT_NE(text.find("drop"), std::string::npos);
  EXPECT_NE(text.find("retry"), std::string::npos);
  EXPECT_NE(text.find("engine.faults.dropped = 1"), std::string::npos);
}

TEST(Postmortem, GlobalRankSerializesAsMinusOne) {
  FlightRecorder recorder(4);
  FlightEvent e;
  e.kind = FlightEventKind::kRoundBegin;  // rank defaults to kGlobalRank
  recorder.record(e);
  PostmortemInputs inputs;
  inputs.reason = "r";
  inputs.recorder = &recorder;
  const std::string json = dump_to_string(inputs);
  EXPECT_NE(json.find("\"rank\":-1"), std::string::npos);
  // The renderer shows run-level events as rank "*".
  EXPECT_NE(render_postmortem(json).find("rank   *"), std::string::npos);
}

TEST(Postmortem, FingerprintEventsRoundTripExactly) {
  FlightRecorder recorder(2);
  FlightEvent e;
  e.kind = FlightEventKind::kPlanCacheHit;
  // A fingerprint with low bits set: a double round-trip would destroy it.
  e.bytes = 0xd273fbd5797fe6bfull;
  recorder.record(e);
  PostmortemInputs inputs;
  inputs.reason = "r";
  inputs.recorder = &recorder;
  const std::string json = dump_to_string(inputs);
  EXPECT_NE(json.find("\"fp\":\"d273fbd5797fe6bf\""), std::string::npos);
  EXPECT_NE(render_postmortem(json).find("fp=d273fbd5797fe6bf"),
            std::string::npos);
}

TEST(Postmortem, RendererRejectsMalformedInput) {
  EXPECT_THROW(render_postmortem("not json"), check_error);
  EXPECT_THROW(render_postmortem("[1,2,3]"), check_error);
  EXPECT_THROW(render_postmortem("{\"some\":\"object\"}"), check_error);
  EXPECT_THROW(render_postmortem("{\"kylix_postmortem\":99,\"events\":[]}"),
               check_error);
  EXPECT_THROW(render_postmortem("{\"kylix_postmortem\":1}"), check_error);
  EXPECT_THROW(render_postmortem("{\"kylix_postmortem\":1,\"events\":["),
               check_error);
}

TEST(Postmortem, DumpToUnwritablePathReturnsFalse) {
  PostmortemInputs inputs;
  inputs.reason = "r";
  EXPECT_FALSE(dump_postmortem("/nonexistent-dir/pm.json", inputs));
}

TEST(Postmortem, DumpAndReloadFromDisk) {
  FlightRecorder recorder(2);
  MetricsRegistry metrics;
  const PostmortemInputs inputs = sample_inputs(recorder, metrics);
  const std::string path =
      ::testing::TempDir() + "kylix_postmortem_test.json";
  ASSERT_TRUE(dump_postmortem(path, inputs));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(render_postmortem(text.str()).find("fault-injection"),
            std::string::npos);
}

}  // namespace
}  // namespace kylix::obs
