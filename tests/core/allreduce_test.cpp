#include "core/allreduce.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

#include "comm/bsp.hpp"
#include "test_util.hpp"

namespace kylix {
namespace {

using testing::random_workload;
using testing::Workload;

/// Degree schedules exercised by the property suite — heterogeneous,
/// homogeneous, direct, binary, degree-1 layers, non-powers-of-two.
const std::vector<std::vector<std::uint32_t>> kSchedules = {
    {},        // 1 machine
    {2},       // minimal direct
    {8},       // direct
    {2, 2, 2},  // binary
    {4, 2},    // the paper's decreasing shape
    {2, 4},    // increasing (legal, suboptimal)
    {3, 5},    // non-power-of-two
    {4, 1, 2},  // degree-1 middle layer
    {8, 4, 2},  // the Twitter schedule (64 machines)
};

class AllreduceScheduleTest
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(AllreduceScheduleTest, SeparateConfigureThenReduceMatchesOracle) {
  const Topology topo(GetParam());
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 200, 0.15, 0.3, 1000 + m);
  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  const auto results = allreduce.reduce(w.out_values);
  testing::expect_matches_oracle<float>(w, results);
}

TEST_P(AllreduceScheduleTest, CombinedConfigReduceMatchesOracle) {
  const Topology topo(GetParam());
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 150, 0.2, 0.4, 2000 + m);
  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  const auto results =
      allreduce.reduce_with_config(w.in_sets, w.out_sets, w.out_values);
  testing::expect_matches_oracle<float>(w, results);
}

TEST_P(AllreduceScheduleTest, RepeatedReduceReusesConfiguration) {
  const Topology topo(GetParam());
  const rank_t m = topo.num_machines();
  auto w = random_workload<float>(m, 100, 0.25, 0.5, 3000 + m);
  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  for (int round = 0; round < 3; ++round) {
    // New values, same sets: the PageRank pattern.
    for (auto& values : w.out_values) {
      for (auto& v : values) v += static_cast<float>(round);
    }
    const auto results = allreduce.reduce(w.out_values);
    testing::expect_matches_oracle<float>(w, results);
  }
}

INSTANTIATE_TEST_SUITE_P(Schedules, AllreduceScheduleTest,
                         ::testing::ValuesIn(kSchedules));

TEST(Allreduce, MinOperatorMatchesOracle) {
  const Topology topo({4, 2});
  const auto w =
      random_workload<std::uint32_t>(topo.num_machines(), 120, 0.3, 0.5, 4);
  BspEngine<std::uint32_t> engine(topo.num_machines());
  SparseAllreduce<std::uint32_t, OpMin, BspEngine<std::uint32_t>> allreduce(
      &engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  const auto results = allreduce.reduce(w.out_values);
  testing::expect_matches_oracle<std::uint32_t, OpMin>(w, results);
}

TEST(Allreduce, BitOrOperatorMatchesOracle) {
  const Topology topo({2, 3});
  const auto w =
      random_workload<std::uint64_t>(topo.num_machines(), 120, 0.3, 0.5, 5);
  BspEngine<std::uint64_t> engine(topo.num_machines());
  SparseAllreduce<std::uint64_t, OpBitOr, BspEngine<std::uint64_t>>
      allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  const auto results = allreduce.reduce(w.out_values);
  testing::expect_matches_oracle<std::uint64_t, OpBitOr>(w, results);
}

TEST(Allreduce, DoubleValuesMatchOracleAcrossModes) {
  // V = double instantiation coverage: the plan, executor, and node paths
  // are value-type templated and must agree with the oracle beyond float.
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<double>(m, 150, 0.2, 0.4, 60);
  BspEngine<double> engine(m);
  SparseAllreduce<double, OpSum, BspEngine<double>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  const auto separate = allreduce.reduce(w.out_values);
  testing::expect_matches_oracle<double>(w, separate);
  SparseAllreduce<double, OpSum, BspEngine<double>> combined(&engine, topo);
  EXPECT_EQ(
      combined.reduce_with_config(w.in_sets, w.out_sets, w.out_values),
      separate);
}

TEST(Allreduce, SingleMachineIsALocalReduction) {
  const Topology topo({});
  Workload<float> w;
  w.out_sets = {KeySet::from_indices(std::vector<index_t>{1, 2, 3})};
  w.out_values = {{10, 20, 30}};
  w.in_sets = {KeySet::from_indices(std::vector<index_t>{2})};
  BspEngine<float> engine(1);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  const auto results = allreduce.reduce(w.out_values);
  testing::expect_matches_oracle<float>(w, results);
}

TEST(Allreduce, RequestedButNeverContributedIndexThrows) {
  const Topology topo({2});
  std::vector<KeySet> in_sets = {
      KeySet::from_indices(std::vector<index_t>{1, 99}),
      KeySet::from_indices(std::vector<index_t>{1})};
  std::vector<KeySet> out_sets = {
      KeySet::from_indices(std::vector<index_t>{1, 2}),
      KeySet::from_indices(std::vector<index_t>{1})};
  BspEngine<float> engine(2);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  EXPECT_THROW(allreduce.configure(std::move(in_sets), std::move(out_sets)),
               check_error);
}

TEST(Allreduce, ReduceBeforeConfigureThrows) {
  BspEngine<float> engine(2);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine,
                                                            Topology({2}));
  EXPECT_THROW((void)allreduce.reduce({{1.0f}, {2.0f}}), check_error);
}

TEST(Allreduce, WrongValueLengthThrows) {
  const Topology topo({2});
  const auto w = random_workload<float>(2, 30, 0.5, 0.5, 6);
  BspEngine<float> engine(2);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  auto bad = w.out_values;
  bad[0].push_back(1.0f);
  EXPECT_THROW((void)allreduce.reduce(std::move(bad)), check_error);
}

TEST(Allreduce, EngineTopologyMismatchThrows) {
  BspEngine<float> engine(4);
  EXPECT_THROW((SparseAllreduce<float, OpSum, BspEngine<float>>(
                   &engine, Topology({2}))),
               check_error);
}

TEST(Allreduce, EmptyInSetsReceiveNothing) {
  const Topology topo({2, 2});
  std::vector<KeySet> in_sets(4);  // nobody requests anything
  std::vector<KeySet> out_sets;
  std::vector<std::vector<float>> values;
  for (rank_t r = 0; r < 4; ++r) {
    out_sets.push_back(KeySet::from_indices(std::vector<index_t>{r}));
    values.push_back({static_cast<float>(r)});
  }
  BspEngine<float> engine(4);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(std::move(in_sets), std::move(out_sets));
  const auto results = allreduce.reduce(std::move(values));
  for (const auto& r : results) {
    EXPECT_TRUE(r.empty());
  }
}

TEST(Allreduce, DenseIdenticalSetsBehaveLikeDenseAllreduce) {
  // Every machine contributes and requests the same index set: Kylix
  // degenerates to a dense butterfly allreduce.
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  std::vector<index_t> ids;
  for (index_t f = 0; f < 64; ++f) ids.push_back(f);
  Workload<float> w;
  for (rank_t r = 0; r < m; ++r) {
    w.in_sets.push_back(KeySet::from_indices(ids));
    w.out_sets.push_back(KeySet::from_indices(ids));
    std::vector<float> values(64);
    for (std::size_t p = 0; p < 64; ++p) {
      values[p] = static_cast<float>(r + p);
    }
    w.out_values.push_back(std::move(values));
  }
  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  const auto results = allreduce.reduce(w.out_values);
  testing::expect_matches_oracle<float>(w, results);
}

TEST(Allreduce, PerLayerSetsShrinkOnOverlappingData) {
  // The Kylix-shape precursor: per-node out sets shrink down the layers
  // when machines share indices (collision collapse).
  const Topology topo({4, 2});
  const rank_t m = topo.num_machines();
  const auto w = random_workload<float>(m, 100, 0.7, 0.5, 8);  // dense-ish
  BspEngine<float> engine(m);
  SparseAllreduce<float, OpSum, BspEngine<float>> allreduce(&engine, topo);
  allreduce.configure(w.in_sets, w.out_sets);
  double total_l1 = 0;
  double total_l2 = 0;
  for (rank_t r = 0; r < m; ++r) {
    total_l1 += static_cast<double>(allreduce.node(r).out_set(1).size());
    total_l2 += static_cast<double>(allreduce.node(r).out_set(2).size());
  }
  EXPECT_LT(total_l2, total_l1);
}

}  // namespace
}  // namespace kylix
