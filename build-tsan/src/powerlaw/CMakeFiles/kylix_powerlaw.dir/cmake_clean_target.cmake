file(REMOVE_RECURSE
  "libkylix_powerlaw.a"
)
