#include "sparse/merge.hpp"

#include <algorithm>
#include <unordered_map>

#include "common/check.hpp"

namespace kylix {

UnionResult merge_union(std::span<const key_t> a, std::span<const key_t> b) {
  UnionResult result;
  result.keys.reserve(a.size() + b.size());
  result.maps.assign(2, {});
  PosMap& map_a = result.maps[0];
  PosMap& map_b = result.maps[1];
  map_a.resize(a.size());
  map_b.resize(b.size());

  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const auto out = static_cast<pos_t>(result.keys.size());
    if (a[i] < b[j]) {
      result.keys.push_back(a[i]);
      map_a[i++] = out;
    } else if (b[j] < a[i]) {
      result.keys.push_back(b[j]);
      map_b[j++] = out;
    } else {
      result.keys.push_back(a[i]);
      map_a[i++] = out;
      map_b[j++] = out;
    }
  }
  for (; i < a.size(); ++i) {
    map_a[i] = static_cast<pos_t>(result.keys.size());
    result.keys.push_back(a[i]);
  }
  for (; j < b.size(); ++j) {
    map_b[j] = static_cast<pos_t>(result.keys.size());
    result.keys.push_back(b[j]);
  }
  return result;
}

namespace {

/// Recursive balanced tree merge over inputs[first, last).
UnionResult tree_merge_range(std::span<const std::span<const key_t>> inputs,
                             std::size_t first, std::size_t last) {
  UnionResult result;
  if (first == last) {
    return result;
  }
  if (last - first == 1) {
    const auto& in = inputs[first];
    result.keys.assign(in.begin(), in.end());
    result.maps.emplace_back(in.size());
    for (std::size_t p = 0; p < in.size(); ++p) {
      result.maps[0][p] = static_cast<pos_t>(p);
    }
    return result;
  }
  const std::size_t mid = first + (last - first) / 2;
  UnionResult left = tree_merge_range(inputs, first, mid);
  UnionResult right = tree_merge_range(inputs, mid, last);
  UnionResult merged = merge_union(left.keys, right.keys);

  result.keys = std::move(merged.keys);
  result.maps.reserve(left.maps.size() + right.maps.size());
  // Compose each leaf's map with its side's map into the merged union.
  for (auto& leaf_map : left.maps) {
    for (auto& p : leaf_map) p = merged.maps[0][p];
    result.maps.push_back(std::move(leaf_map));
  }
  for (auto& leaf_map : right.maps) {
    for (auto& p : leaf_map) p = merged.maps[1][p];
    result.maps.push_back(std::move(leaf_map));
  }
  return result;
}

}  // namespace

UnionResult tree_merge(std::span<const std::span<const key_t>> inputs) {
  return tree_merge_range(inputs, 0, inputs.size());
}

UnionResult tree_merge(const std::vector<std::vector<key_t>>& inputs) {
  std::vector<std::span<const key_t>> spans(inputs.begin(), inputs.end());
  return tree_merge(spans);
}

UnionResult hash_union(std::span<const std::span<const key_t>> inputs) {
  UnionResult result;
  std::unordered_map<key_t, pos_t> positions;
  std::size_t total = 0;
  for (const auto& in : inputs) total += in.size();
  positions.reserve(total);
  result.maps.reserve(inputs.size());
  for (const auto& in : inputs) {
    PosMap map(in.size());
    for (std::size_t p = 0; p < in.size(); ++p) {
      const auto [it, inserted] = positions.try_emplace(
          in[p], static_cast<pos_t>(result.keys.size()));
      if (inserted) result.keys.push_back(in[p]);
      map[p] = it->second;
    }
    result.maps.push_back(std::move(map));
  }
  return result;
}

}  // namespace kylix
