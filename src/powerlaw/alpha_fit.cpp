#include "powerlaw/alpha_fit.hpp"

#include <cmath>

#include "common/check.hpp"

namespace kylix {

double fit_alpha_mle(std::span<const std::uint64_t> samples,
                     std::uint64_t x_min) {
  KYLIX_CHECK(x_min >= 1);
  double log_sum = 0.0;
  std::size_t used = 0;
  const double denom = static_cast<double>(x_min) - 0.5;
  for (std::uint64_t x : samples) {
    if (x < x_min) continue;
    log_sum += std::log(static_cast<double>(x) / denom);
    ++used;
  }
  KYLIX_CHECK_MSG(used >= 2, "need at least 2 samples >= x_min");
  // P(x) ∝ x^-a with a = 1 + n / Σ ln(x_i/(x_min - 1/2)).
  return 1.0 + static_cast<double>(used) / log_sum;
}

double fit_alpha_rank_frequency(
    std::span<const std::uint64_t> frequencies_sorted_desc) {
  std::size_t count = 0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t r = 0; r < frequencies_sorted_desc.size(); ++r) {
    const std::uint64_t f = frequencies_sorted_desc[r];
    if (f == 0) break;  // rank-sorted: zeros only trail
    KYLIX_CHECK_MSG(r == 0 || f <= frequencies_sorted_desc[r - 1],
                    "frequencies must be sorted descending");
    const double x = std::log(static_cast<double>(r + 1));
    const double y = std::log(static_cast<double>(f));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++count;
  }
  KYLIX_CHECK_MSG(count >= 2, "need at least 2 nonzero frequencies");
  const double nd = static_cast<double>(count);
  const double slope = (nd * sxy - sx * sy) / (nd * sxx - sx * sx);
  return -slope;  // F ∝ r^-α means slope = -α
}

}  // namespace kylix
