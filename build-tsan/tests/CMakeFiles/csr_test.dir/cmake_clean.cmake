file(REMOVE_RECURSE
  "CMakeFiles/csr_test.dir/sparse/csr_test.cpp.o"
  "CMakeFiles/csr_test.dir/sparse/csr_test.cpp.o.d"
  "csr_test"
  "csr_test.pdb"
  "csr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
